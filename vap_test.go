package vap_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"vap"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end
// through the public façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	st, err := vap.OpenInMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ds := vap.GenerateDataset(vap.DatasetConfig{
		Seed: 1,
		Days: 30,
		Counts: map[vap.Pattern]int{
			vap.PatternBimodal:      10,
			vap.PatternEnergySaving: 10,
			vap.PatternConstantHigh: 10,
			vap.PatternEarlyBird:    10,
		},
	})
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	an := vap.NewAnalyzer(st)

	// S1: typical pattern discovery.
	view, err := an.TypicalPatterns(context.Background(), vap.TypicalConfig{
		Seed: 1, Method: vap.MethodMDS, Metric: vap.MetricPearson,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, rows, err := view.SelectBrush(vap.Brush{MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 40 {
		t.Fatalf("brush selected %d, want 40", len(ids))
	}
	profile, err := view.Profile(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.Mean) == 0 {
		t.Fatal("empty profile")
	}

	// S2: shift pattern discovery.
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	res, err := an.ShiftPatterns(vap.ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: vap.Gran4Hourly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.L1 <= 0 {
		t.Error("no shift signal in planted data")
	}

	// Presentation layer.
	hub := vap.NewStreamHub()
	srv := httptest.NewServer(vap.NewHTTPServer(an, hub))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("health status = %d", resp.StatusCode)
	}
}

// TestDurableStoreRoundTrip exercises the durability path via the façade.
func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := vap.Open(vap.StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m := vap.Meter{ID: 1, Location: vap.Point{Lon: 12.5, Lat: 55.7}, Zone: vap.ZoneResidential}
	if err := st.PutMeter(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if err := st.Append(1, vap.Sample{TS: int64(i) * 3600, Value: float64(i % 24)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := vap.Open(vap.StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Range(1, 0, 1<<40)
	if err != nil || len(got) != 48 {
		t.Fatalf("reopened range = %d samples (%v)", len(got), err)
	}
}
