// Command benchjson turns `go test -bench` output into a JSON trajectory
// artifact. Each invocation parses one bench run from stdin and appends a
// dated entry to the -out file (creating it when absent), so the file
// accumulates one entry per measurement over the repo's history and
// regressions show up as a trend, not a diff fight over raw bench text.
//
// Repeated benchmarks (-count=N) are averaged; every metric column go
// test emits (ns/op, B/op, allocs/op, custom ReportMetric units like
// samples/sec) is kept under a JSON-friendly name. When the run contains
// the paired VQLExec/Scalar and VQLExec/Vectorized benchmarks the ratio
// of their ns/op means is recorded as derived.vql_exec_speedup — the
// within-run, same-binary number the ≥5× vectorization floor is judged
// on. The paired VQLRollup/Raw and VQLRollup/Tier benchmarks likewise
// record derived.rollup_speedup, the ≥10× tier-serving floor, the
// paired Recover/V2Serial and Recover/V3Parallel benchmarks record
// derived.recover_speedup, the ≥4× cold-start recovery floor, and the
// paired GovernMixed/Unloaded and GovernMixed/Loaded benchmarks record
// derived.govern_cheap_p99_ms plus derived.govern_tail_ratio, the ≤5×
// cheap-query tail-latency bound governance must hold under load, and the
// paired WireQuery/Wire and WireQuery/HTTP benchmarks record
// derived.wire_overhead_ratio — the MySQL wire transport's per-round-trip
// cost relative to the HTTP JSON codec over the same warmed core.
//
// A trajectory file carries a series name (-series, default "vql") so
// different artifact files (BENCH_vql.json, BENCH_rollup.json) stay
// distinguishable; appending to a file whose series differs is an error.
//
// Usage:
//
//	go test -run XXX -bench 'VQLEndToEnd|VQLExec' -benchmem -count=3 . |
//	    go run ./tools/benchjson -out BENCH_vql.json -label "my change"
//	go test -run XXX -bench VQLRollup -benchmem -count=3 . |
//	    go run ./tools/benchjson -series rollup -out BENCH_rollup.json -label "my change"
//	VAP_RECOVER_FIXTURE=1000x100000 go test -run XXX -bench BenchmarkRecover -benchtime 1x . |
//	    go run ./tools/benchjson -series recover -out BENCH_recover.json -label "my change"
//	go test -run XXX -bench GovernMixed -benchtime 1000x . |
//	    go run ./tools/benchjson -series govern -out BENCH_govern.json -label "my change"
//	go test -run XXX -bench WireQuery -count=3 . |
//	    go run ./tools/benchjson -series wire -out BENCH_wire.json -label "my change"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

type run struct {
	Date       string                        `json:"date"`
	Label      string                        `json:"label,omitempty"`
	Goos       string                        `json:"goos,omitempty"`
	Goarch     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	Derived    map[string]float64            `json:"derived,omitempty"`
}

type trajectory struct {
	Series string `json:"series"`
	Runs   []run  `json:"runs"`
}

// benchLine matches one result row: name, iteration count, then
// whitespace-separated (value, unit) metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocs strips the trailing -N go test appends when GOMAXPROCS > 1,
// so artifact entries from different machines share benchmark names.
var gomaxprocs = regexp.MustCompile(`-\d+$`)

func metricKey(unit string) string {
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

func parse(r *bufio.Scanner) (run, error) {
	out := run{Benchmarks: map[string]map[string]float64{}}
	counts := map[string]map[string]int{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxprocs.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return out, fmt.Errorf("odd metric fields in %q", line)
		}
		if out.Benchmarks[name] == nil {
			out.Benchmarks[name] = map[string]float64{}
			counts[name] = map[string]int{}
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return out, fmt.Errorf("bad metric value in %q: %v", line, err)
			}
			k := metricKey(fields[i+1])
			out.Benchmarks[name][k] += v
			counts[name][k]++
		}
		out.Benchmarks[name]["runs"] = float64(counts[name]["ns_per_op"])
	}
	if err := r.Err(); err != nil {
		return out, err
	}
	for name, metrics := range out.Benchmarks {
		for k, n := range counts[name] {
			if n > 1 {
				metrics[k] /= float64(n)
			}
		}
	}
	if len(out.Benchmarks) == 0 {
		return out, fmt.Errorf("no benchmark lines on stdin")
	}
	sc, okS := out.Benchmarks["VQLExec/Scalar"]
	vec, okV := out.Benchmarks["VQLExec/Vectorized"]
	if okS && okV && vec["ns_per_op"] > 0 {
		out.Derived = map[string]float64{
			"vql_exec_speedup": round2(sc["ns_per_op"] / vec["ns_per_op"]),
		}
	}
	raw, okR := out.Benchmarks["VQLRollup/Raw"]
	tier, okT := out.Benchmarks["VQLRollup/Tier"]
	if okR && okT && tier["ns_per_op"] > 0 {
		if out.Derived == nil {
			out.Derived = map[string]float64{}
		}
		out.Derived["rollup_speedup"] = round2(raw["ns_per_op"] / tier["ns_per_op"])
	}
	v2s, ok2 := out.Benchmarks["Recover/V2Serial"]
	v3p, ok3 := out.Benchmarks["Recover/V3Parallel"]
	if ok2 && ok3 && v3p["ns_per_op"] > 0 {
		if out.Derived == nil {
			out.Derived = map[string]float64{}
		}
		out.Derived["recover_speedup"] = round2(v2s["ns_per_op"] / v3p["ns_per_op"])
	}
	wir, okW := out.Benchmarks["WireQuery/Wire"]
	htp, okH := out.Benchmarks["WireQuery/HTTP"]
	if okW && okH && htp["ns_per_op"] > 0 {
		if out.Derived == nil {
			out.Derived = map[string]float64{}
		}
		out.Derived["wire_overhead_ratio"] = round2(wir["ns_per_op"] / htp["ns_per_op"])
	}
	unl, okU := out.Benchmarks["GovernMixed/Unloaded"]
	lod, okL := out.Benchmarks["GovernMixed/Loaded"]
	if okU && okL && unl["p99_ms"] > 0 {
		if out.Derived == nil {
			out.Derived = map[string]float64{}
		}
		// Cheap-query p99 under two monster scans, and its ratio to the
		// unloaded p99 — the <= 5x ISSUE 9 governance acceptance bound.
		out.Derived["govern_cheap_p99_ms"] = round2(lod["p99_ms"])
		out.Derived["govern_tail_ratio"] = round2(lod["p99_ms"] / unl["p99_ms"])
	}
	return out, nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func main() {
	outPath := flag.String("out", "", "trajectory file to append this run to (stdout if empty)")
	label := flag.String("label", "", "short description of this run")
	series := flag.String("series", "vql", "trajectory series name; must match an existing -out file's series")
	flag.Parse()

	entry, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	entry.Date = time.Now().UTC().Format("2006-01-02")
	entry.Label = *label

	traj := trajectory{Series: *series}
	if *outPath != "" {
		if raw, err := os.ReadFile(*outPath); err == nil {
			if err := json.Unmarshal(raw, &traj); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a trajectory file: %v\n", *outPath, err)
				os.Exit(1)
			}
			// Appending a run under the wrong series would silently mislabel
			// the whole file's history; refuse instead.
			if traj.Series != *series {
				fmt.Fprintf(os.Stderr, "benchjson: %s holds series %q, refusing to append series %q\n", *outPath, traj.Series, *series)
				os.Exit(1)
			}
		}
	}
	traj.Runs = append(traj.Runs, entry)

	enc, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	note := ""
	if d := entry.Derived["vql_exec_speedup"]; d != 0 {
		note += fmt.Sprintf(" (vql_exec_speedup %.2fx)", d)
	}
	if d := entry.Derived["rollup_speedup"]; d != 0 {
		note += fmt.Sprintf(" (rollup_speedup %.2fx)", d)
	}
	if d := entry.Derived["recover_speedup"]; d != 0 {
		note += fmt.Sprintf(" (recover_speedup %.2fx)", d)
	}
	if d := entry.Derived["govern_tail_ratio"]; d != 0 {
		note += fmt.Sprintf(" (govern_tail_ratio %.2fx)", d)
	}
	if d := entry.Derived["wire_overhead_ratio"]; d != 0 {
		note += fmt.Sprintf(" (wire_overhead_ratio %.2fx)", d)
	}
	fmt.Printf("recorded %d benchmarks to %s%s\n", len(entry.Benchmarks), *outPath, note)
}
