// Typical-patterns example: demo scenario S1 end to end.
//
// It answers the scenario's four steps:
//  1. "Who are the early birds with a morning peak between 5:00-7:00?"
//  2. How do patterns transition as the brush moves across the view?
//  3. How do t-SNE and MDS layouts compare?
//  4. How does the k-means baseline compare with visual selection?
//
// It also writes view C as SVG files (one per reduction method) to the
// working directory so the layouts can be inspected in a browser.
//
// Run: go run ./examples/typical-patterns
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"vap"
	"vap/internal/cluster"
	"vap/internal/stat"
	"vap/internal/viz"
)

func main() {
	st, err := vap.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	ds := vap.GenerateDataset(vap.DatasetConfig{Seed: 7, Days: 365})
	if err := ds.LoadInto(st); err != nil {
		log.Fatal(err)
	}
	an := vap.NewAnalyzer(st)
	ctx := context.Background()
	truth := ds.Labels()

	// Step 1: the early-birds question, asked on the 24-hour day profile.
	dayView, err := an.TypicalPatterns(ctx, vap.TypicalConfig{Seed: 7, UseDailyProfile: true})
	if err != nil {
		log.Fatal(err)
	}
	ids, rows, err := dayView.SelectBrush(earlyBirdRegion(dayView, ds))
	if err != nil {
		log.Fatal(err)
	}
	prof, err := dayView.Profile(rows)
	if err != nil {
		log.Fatal(err)
	}
	peak := 0
	for h, v := range prof.Mean {
		if v > prof.Mean[peak] {
			peak = h
		}
	}
	fmt.Printf("S1.1 early birds: brushed %d customers, profile peaks at %02d:00, label=%s\n",
		len(ids), peak, prof.Label)

	// Step 2: pattern transition — slide a brush across the x axis and
	// watch the label change.
	fmt.Println("S1.2 pattern transition while sliding the brush left to right:")
	yearView, err := an.TypicalPatterns(ctx, vap.TypicalConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for x := 0.0; x < 1; x += 0.25 {
		b := vap.Brush{MinX: x, MinY: 0, MaxX: x + 0.25, MaxY: 1}
		sel, rowIdx, err := yearView.SelectBrush(b)
		if err != nil {
			fmt.Printf("  x in [%.2f,%.2f): empty\n", x, x+0.25)
			continue
		}
		p, err := yearView.Profile(rowIdx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  x in [%.2f,%.2f): %3d customers, label=%s\n", x, x+0.25, len(sel), p.Label)
	}

	// Step 3: t-SNE vs MDS layouts, rendered side by side.
	fmt.Println("S1.3 layout comparison (silhouette vs planted patterns):")
	for _, m := range []vap.ReductionMethod{vap.MethodTSNE, vap.MethodMDS} {
		v, err := an.TypicalPatterns(ctx, vap.TypicalConfig{Seed: 7, Method: m})
		if err != nil {
			log.Fatal(err)
		}
		sil, err := stat.Silhouette(len(v.Points), truth, func(i, j int) float64 {
			return v.Points.Dist(i, j)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s silhouette=%.3f\n", m, sil)
		svg := (&viz.ScatterView{Points: v.Points, Labels: truth,
			Title: fmt.Sprintf("view C: %s", m)}).Render()
		name := fmt.Sprintf("viewC_%s.svg", m)
		if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n", name)
	}

	// Step 4: k-means baseline on the raw series.
	_, _, series, err := an.Engine().MeterMatrix(vap.Selection{}, vap.GranDaily, "mean")
	if err != nil {
		log.Fatal(err)
	}
	km, err := cluster.KMeans(series, cluster.KMeansConfig{K: 5, Seed: 7, NormalizeZ: true})
	if err != nil {
		log.Fatal(err)
	}
	ari, _ := stat.AdjustedRandIndex(km.Labels, truth)
	fmt.Printf("S1.4 k-means (k=5) baseline: ARI vs planted patterns = %.3f\n", ari)
}

// earlyBirdRegion centers a brush on the embedding region where the
// ground-truth early-bird cohort sits — standing in for the conference
// attendee who lassos that cluster after spotting the morning peak.
func earlyBirdRegion(view *vap.TypicalView, ds *vap.Dataset) vap.Brush {
	var xs, ys []float64
	for i, c := range ds.Customers {
		if c.Pattern == vap.PatternEarlyBird {
			xs = append(xs, view.Points[i][0])
			ys = append(ys, view.Points[i][1])
		}
	}
	cx, cy := stat.Median(xs), stat.Median(ys)
	rx := 1.8*stat.MAD(xs) + 0.02
	ry := 1.8*stat.MAD(ys) + 0.02
	return vap.Brush{MinX: cx - rx, MinY: cy - ry, MaxX: cx + rx, MaxY: cy + ry}
}
