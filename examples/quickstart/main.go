// Quickstart: generate a synthetic smart-meter city, discover typical
// consumption patterns by brushing the reduced 2-D view, and compute one
// demand-shift flow map — the whole Figure 1 loop in ~60 lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vap"
)

func main() {
	// Data layer: in-memory store with a planted synthetic city.
	st, err := vap.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	ds := vap.GenerateDataset(vap.DatasetConfig{Seed: 1, Days: 120})
	if err := ds.LoadInto(st); err != nil {
		log.Fatal(err)
	}
	stats := st.Stats()
	fmt.Printf("loaded %d meters, %d readings (%.1fx compressed)\n",
		stats.Meters, stats.Samples, float64(stats.RawBytes)/float64(stats.CompressedBytes))

	// Models layer: reduce every meter's daily series to a 2-D point.
	an := vap.NewAnalyzer(st)
	view, err := an.TypicalPatterns(context.Background(), vap.TypicalConfig{
		Seed:            1,
		UseDailyProfile: true, // 24-hour day shapes: the labels read naturally
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view C ready: %d points from %d-dim series (%s, %s)\n",
		len(view.Points), view.FeatDim, view.Method, view.Metric)

	// User interaction: brush the four quadrants of the navigator and see
	// what consumption pattern each contains.
	quadrants := []vap.Brush{
		{MinX: 0.0, MinY: 0.5, MaxX: 0.5, MaxY: 1.0},
		{MinX: 0.5, MinY: 0.5, MaxX: 1.0, MaxY: 1.0},
		{MinX: 0.0, MinY: 0.0, MaxX: 0.5, MaxY: 0.5},
		{MinX: 0.5, MinY: 0.0, MaxX: 1.0, MaxY: 0.5},
	}
	for i, b := range quadrants {
		ids, rows, err := view.SelectBrush(b)
		if err != nil {
			fmt.Printf("quadrant %d: empty\n", i+1)
			continue
		}
		prof, err := view.Profile(rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quadrant %d: %3d customers, label=%s\n", i+1, len(ids), prof.Label)
	}

	// Shift patterns: afternoon vs evening of one winter day.
	noon := ds.Start.Unix() + 30*86400 + 12*3600
	res, err := an.ShiftPatterns(vap.ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: vap.Gran4Hourly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("demand shift 12-16h -> 20-24h: %d flows, centroid moved %.0f m at bearing %.0f°\n",
		len(res.Flows), res.Summary.ShiftMeters, res.Summary.ShiftBearing)
}
