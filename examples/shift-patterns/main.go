// Shift-patterns example: demo scenario S2 — Figure 2's flow map method.
//
// It computes the commercial->residential evening demand shift, sweeps the
// paper's seven temporal granularities and the 30%..90% consumption
// intensity quantiles, and writes the flow map as SVG.
//
// Run: go run ./examples/shift-patterns
package main

import (
	"fmt"
	"log"
	"os"

	"vap"
	"vap/internal/core"
	"vap/internal/viz"
)

func main() {
	st, err := vap.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	ds := vap.GenerateDataset(vap.DatasetConfig{Seed: 5, Days: 90})
	if err := ds.LoadInto(st); err != nil {
		log.Fatal(err)
	}
	an := vap.NewAnalyzer(st)
	noon := ds.Start.Unix() + 30*86400 + 12*3600

	// Figure 2: afternoon vs evening density difference.
	res, err := an.ShiftPatterns(vap.ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: vap.Gran4Hourly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow map 12-16h -> 20-24h: %d flows over %d meters\n", len(res.Flows), res.Meters)
	fmt.Printf("  demand centroid moved %.0f m (bearing %.0f°), L1 shift mass %.4f\n",
		res.Summary.ShiftMeters, res.Summary.ShiftBearing, res.Summary.L1)

	svg := (&viz.MapView{
		Box: res.Box, Heat: res.Shift, HeatDiv: true, Flows: res.Flows,
		Title: "demand shift: afternoon -> evening",
	}).Render()
	if err := os.WriteFile("flowmap.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  wrote flowmap.svg")

	// S2 step 1: granularity sensitivity.
	fmt.Println("\ngranularity sweep (same anchors):")
	gs, sums, err := an.GranularitySweep(core.ShiftConfig{T1: noon, T2: noon + 8*3600})
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range gs {
		if sums[i].L1 == 0 {
			fmt.Printf("  %-10s anchors fall in the same bucket\n", g)
			continue
		}
		fmt.Printf("  %-10s shift L1=%.4f centroid=%.0f m\n", g, sums[i].L1, sums[i].ShiftMeters)
	}

	// S2 step 2: intensity quantile sensitivity.
	fmt.Println("\nintensity quantile sweep (4-hourly):")
	quantiles := []float64{0.3, 0.5, 0.7, 0.9}
	isums, err := an.IntensitySweep(core.ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: vap.Gran4Hourly,
	}, quantiles)
	if err != nil {
		log.Fatal(err)
	}
	for i, q := range quantiles {
		fmt.Printf("  top %2.0f%%: shift L1=%.4f centroid=%.0f m\n",
			(1-q)*100, isums[i].L1, isums[i].ShiftMeters)
	}
}
