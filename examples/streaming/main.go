// Streaming example: demo scenario S2 step 3 — "if the data are fed to the
// system in a short time interval, e.g., every 10 seconds, we can observe
// the changes of patterns in near real time."
//
// Three days of hourly readings replay at an accelerated tick (200 ms per
// data-hour by default); the incremental KDE tracker reports where the
// city's demand hot spot sits after every tick.
//
// Run: go run ./examples/streaming [-interval 200ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"vap"
	"vap/internal/stream"
)

func main() {
	interval := flag.Duration("interval", 200*time.Millisecond, "wall-clock time per data-hour")
	flag.Parse()

	ds := vap.GenerateDataset(vap.DatasetConfig{Seed: 9, Days: 3})
	st, err := vap.OpenInMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	// Register meters only; readings arrive via the stream.
	for _, c := range ds.Customers {
		if err := st.PutMeter(c.Meter); err != nil {
			log.Fatal(err)
		}
	}
	box := st.Catalog().Bounds().Buffer(0.002)
	tracker, err := stream.NewTracker(box, 48, 48, 0.004, len(ds.Customers))
	if err != nil {
		log.Fatal(err)
	}
	hub := vap.NewStreamHub()
	events, cancel := hub.Subscribe()
	defer cancel()

	feeds := make([]stream.Feed, len(ds.Customers))
	for i, c := range ds.Customers {
		feeds[i] = stream.Feed{MeterID: c.Meter.ID, Loc: c.Meter.Location, Samples: ds.Readings[i]}
	}
	from := ds.Start.Unix()
	to := from + int64(ds.Hours)*3600
	rp := &stream.Replayer{St: st, Tracker: tracker, Hub: hub, Interval: *interval, Step: 3600}

	done := make(chan error, 1)
	go func() {
		_, err := rp.Run(context.Background(), feeds, from, to)
		done <- err
	}()

	fmt.Printf("replaying %d data-hours for %d meters at %v per hour\n",
		ds.Hours, len(feeds), *interval)
	for {
		select {
		case e := <-events:
			dt := time.Unix(e.DataTime, 0).UTC()
			fmt.Printf("%s  %4d readings  hot spot %.4f,%.4f  max density %8.2f\n",
				dt.Format("Mon 15:04"), e.Count,
				e.Summary.HotCell.Lon, e.Summary.HotCell.Lat, e.Summary.MaxDensity)
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
			stats := st.Stats()
			fmt.Printf("replay complete: %d readings stored\n", stats.Samples)
			return
		}
	}
}
