// Command vapd runs the VAP web application: it loads (or generates) a
// smart-meter dataset, starts the three-layer server, and optionally
// replays data in near real time for the S2 streaming demo.
//
// Usage:
//
//	vapd [-addr :8080] [-dir data/] [-seed 42] [-days 365] [-stream] [-interval 10s] [-shards 16]
//	     [-sync] [-segment-bytes N] [-commit-interval 2ms] [-snapshot-interval 5m]
//	     [-retain-raw 2160h] [-rollup-res 3600,86400] [-recover-workers N]
//	     [-max-concurrent N] [-mem-budget 512MiB] [-tenant-quotas 'dash=16,64MiB,2e6']
//	     [-query-deadline 30s] [-max-queue 256] [-max-queue-wait 5s] [-interactive-cutoff 2000000]
//	     [-handler-timeout 120s] [-max-ingest-bytes 1GiB]
//	     [-read-header-timeout 10s] [-read-timeout 15m] [-write-timeout 0] [-idle-timeout 2m]
//	     [-mysql-addr :3306] [-mysql-users users.txt] [-max-conns N] [-shutdown-timeout 5s]
//
// With -mysql-addr, a MySQL wire-protocol listener serves the same VQL
// statements to stock MySQL clients: mysql_native_password auth against
// the -mysql-users file (username:password:tenant per line; without the
// flag a single password-less "vap" user on the default tenant),
// governance rejections as ERR packets from the same error taxonomy the
// HTTP API uses, and -max-conns bounding open wire connections.
//
// With -dir, the store is durable (segmented WAL + snapshots); if the
// directory is empty a synthetic dataset is generated and snapshotted into
// it. -sync makes every append wait for its group commit (fsync-durable
// acks); -snapshot-interval runs background snapshots that retire covered
// WAL segments without blocking ingest (POST /api/admin/snapshot triggers
// one on demand). -retain-raw bounds how much raw history snapshots keep:
// sealed chunks wholly older than the horizon age out of disk and memory
// while the rollup tiers (-rollup-res) continue to serve coarse
// aggregates over the full history. With -stream, the last 7 days of data
// are withheld from the initial load and replayed live at -interval per
// hour of data.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"vap/internal/api"
	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/govern"
	"vap/internal/store"
	"vap/internal/stream"
	"vap/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "durability directory (empty = in-memory)")
	seed := flag.Int64("seed", 42, "synthetic data seed")
	days := flag.Int("days", 365, "days of synthetic data")
	doStream := flag.Bool("stream", false, "replay the last week live (S2 step 3)")
	interval := flag.Duration("interval", 10*time.Second, "streaming tick interval")
	workers := flag.Int("workers", 0, "parallel kernel fan-out (0 = NumCPU)")
	cacheEntries := flag.Int("cache", 0, "versioned result-cache entries (0 = default 64)")
	shards := flag.Int("shards", 0, "store lock shards, rounded up to a power of two (0 = default 16)")
	syncEvery := flag.Bool("sync", false, "fsync every append via group commit (durable acks)")
	segmentBytes := flag.Int64("segment-bytes", 0, "WAL segment rotation threshold (0 = default 64 MiB)")
	commitInterval := flag.Duration("commit-interval", 0, "WAL group-commit cadence (0 = default 2ms)")
	snapInterval := flag.Duration("snapshot-interval", 0, "background snapshot cadence; snapshots retire covered WAL segments without blocking ingest (0 = only on demand via POST /api/admin/snapshot)")
	retainRaw := flag.Duration("retain-raw", 0, "raw-sample retention horizon behind the newest sample; snapshots age older sealed chunks out of disk and memory while rollup tiers keep serving coarse aggregates (0 = keep raw data forever)")
	rollupRes := flag.String("rollup-res", "", "comma-separated rollup tier resolutions in seconds (empty = default 3600,86400; 'off' disables rollups)")
	recoverWorkers := flag.Int("recover-workers", 0, "recovery fan-out: workers installing snapshot sections and applying WAL records on open (0 = GOMAXPROCS, 1 = serial)")
	// Resource governance (admission control, budgets, shedding).
	maxConcurrent := flag.Int("max-concurrent", 0, "global concurrently-admitted request bound (0 = 4 x NumCPU)")
	memBudget := flag.String("mem-budget", "", "global in-flight memory budget, e.g. 512MiB (empty = default 512MiB)")
	tenantQuotas := flag.String("tenant-quotas", "", "per-tenant quotas: name=maxConcurrent,memBudget,maxCostSamples[;...] — 0 fields inherit the global bound; e.g. 'dash=16,64MiB,2e6;batch=2,256MiB,0'")
	queryDeadline := flag.Duration("query-deadline", 0, "per-query execution deadline enforced in the executor's batch loops (0 = only the handler timeout)")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth before lowest-priority work sheds with 429 (0 = default 256)")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "longest a request may queue before shedding with 429 (0 = default 5s)")
	interactiveCutoff := flag.Int64("interactive-cutoff", 0, "estimated-sample threshold separating interactive from analytics queries (0 = default 2000000)")
	// HTTP front-door hardening.
	handlerTimeout := flag.Duration("handler-timeout", 0, "per-request handler timeout; governance query deadlines supersede it per request (0 = default 120s)")
	maxIngestBytes := flag.String("max-ingest-bytes", "", "largest /api/ingest request body, e.g. 1GiB (empty = default 1GiB)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 0, "http.Server.ReadHeaderTimeout, the slowloris bound (0 = default 10s, negative disables)")
	readTimeout := flag.Duration("read-timeout", 0, "http.Server.ReadTimeout over the whole request incl. body (0 = default 15m, negative disables)")
	writeTimeout := flag.Duration("write-timeout", 0, "http.Server.WriteTimeout (0 = default disabled: /api/stream is long-lived SSE)")
	idleTimeout := flag.Duration("idle-timeout", 0, "http.Server.IdleTimeout for keep-alive connections (0 = default 2m, negative disables)")
	// MySQL wire-protocol frontend.
	mysqlAddr := flag.String("mysql-addr", "", "MySQL wire-protocol listen address, e.g. :3306 (empty = disabled)")
	mysqlUsers := flag.String("mysql-users", "", "wire-protocol user file, username:password:tenant per line (empty = one password-less 'vap' user on the default tenant)")
	maxConns := flag.Int("max-conns", 0, "open wire-protocol connection bound enforced by the governor before the handshake (0 = unlimited)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second, "graceful drain bound for both listeners on SIGINT")
	flag.Parse()

	rollups, err := parseRollupRes(*rollupRes)
	if err != nil {
		log.Fatalf("parse -rollup-res: %v", err)
	}
	st, err := store.Open(store.Options{
		Dir:             *dir,
		Shards:          *shards,
		SyncEveryAppend: *syncEvery,
		SegmentBytes:    *segmentBytes,
		CommitInterval:  *commitInterval,
		RollupRes:       rollups,
		RetainRaw:       *retainRaw,
		RecoverWorkers:  *recoverWorkers,
	})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer st.Close()
	if *dir != "" {
		logRecovery(st.Recovery())
	}

	var ds *gen.Dataset
	if st.Stats().Samples == 0 {
		log.Printf("generating synthetic dataset (seed=%d days=%d)", *seed, *days)
		ds = gen.Generate(gen.Config{Seed: *seed, Days: *days})
		cut := len(ds.Readings[0])
		if *doStream {
			cut -= 7 * 24 // withhold the last week for live replay
			if cut < 1 {
				cut = 1
			}
		}
		for i, c := range ds.Customers {
			if err := st.PutMeter(c.Meter); err != nil {
				log.Fatalf("put meter: %v", err)
			}
			r := ds.Readings[i]
			n := cut
			if n > len(r) {
				n = len(r)
			}
			if _, err := st.AppendBatch(c.Meter.ID, r[:n]); err != nil {
				log.Fatalf("append: %v", err)
			}
		}
		if *dir != "" {
			if err := st.Snapshot(); err != nil {
				log.Printf("snapshot: %v", err)
			}
		}
	} else {
		log.Printf("loaded existing dataset: %+v", st.Stats())
	}

	govCfg := govern.Config{
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		MaxQueueWait:      *maxQueueWait,
		InteractiveCutoff: *interactiveCutoff,
		QueryDeadline:     *queryDeadline,
		MaxConns:          *maxConns,
	}
	if *memBudget != "" {
		if govCfg.MemBudget, err = govern.ParseBytes(*memBudget); err != nil {
			log.Fatalf("parse -mem-budget: %v", err)
		}
	}
	if govCfg.Tenants, err = govern.ParseTenantQuotas(*tenantQuotas); err != nil {
		log.Fatalf("parse -tenant-quotas: %v", err)
	}
	gov := govern.New(govCfg)

	an := core.NewAnalyzerOpts(st, core.Options{Workers: *workers, CacheEntries: *cacheEntries, Gov: gov})
	log.Printf("exec engine: %d workers over %d store shards, result cache at /api/exec",
		an.Exec().Workers(), st.NumShards())
	eff := gov.Config()
	log.Printf("governance: %d concurrent / %d MiB in flight, queue %d (wait <= %v), interactive cutoff %d est samples, %d tenant quotas",
		eff.MaxConcurrent, eff.MemBudget>>20, eff.MaxQueue, eff.MaxQueueWait, eff.InteractiveCutoff, len(eff.Tenants))
	var hub *stream.Hub
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *doStream && ds != nil {
		hub = stream.NewHub()
		box := st.Catalog().Bounds().Buffer(0.002)
		const liveBandwidth = 0.004 // degrees, ~300 m at 55°N
		tracker, err := stream.NewTracker(box, 64, 64, liveBandwidth, len(ds.Customers))
		if err != nil {
			log.Fatalf("tracker: %v", err)
		}
		feeds := make([]stream.Feed, len(ds.Customers))
		for i, c := range ds.Customers {
			feeds[i] = stream.Feed{MeterID: c.Meter.ID, Loc: c.Meter.Location, Samples: ds.Readings[i]}
		}
		_, last, _ := st.TimeBounds()
		from := last + 1
		to := ds.Start.Unix() + int64(ds.Hours)*3600
		rp := &stream.Replayer{St: st, Tracker: tracker, Hub: hub, Interval: *interval, Step: 3600}
		go func() {
			ticks, err := rp.Run(ctx, feeds, from, to)
			if err != nil && ctx.Err() == nil {
				log.Printf("replayer stopped: %v", err)
			}
			log.Printf("replayer finished after %d ticks", ticks)
		}()
		log.Printf("streaming enabled: replaying %d data-hours every %v", (to-from)/3600, *interval)
	}

	if *dir != "" && *snapInterval > 0 {
		go func() {
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					start := time.Now()
					if err := st.Snapshot(); err != nil {
						log.Printf("background snapshot: %v", err)
						continue
					}
					segs, bytes := st.WALStats()
					log.Printf("snapshot done in %v: wal now %d segments / %d bytes",
						time.Since(start).Round(time.Millisecond), segs, bytes)
					if hub != nil {
						hub.Publish(stream.Event{
							Kind: stream.KindSnapshot, WALSegments: segs, WALBytes: bytes,
							DataVersion: stream.DataVersion{Global: st.Version(), Fingerprint: st.GlobalFingerprint()},
						})
					}
				}
			}
		}()
		log.Printf("background snapshots every %v (writers are not blocked)", *snapInterval)
	}

	apiCfg := api.Config{HandlerTimeout: *handlerTimeout}
	if *maxIngestBytes != "" {
		if apiCfg.MaxIngestBytes, err = govern.ParseBytes(*maxIngestBytes); err != nil {
			log.Fatalf("parse -max-ingest-bytes: %v", err)
		}
	}
	apiSrv := api.NewServerWith(an, hub, apiCfg)
	srv := api.NewHTTPServer(*addr, apiSrv.Routes(), api.ServerTimeouts{
		ReadHeader: *readHeaderTimeout,
		Read:       *readTimeout,
		Write:      *writeTimeout,
		Idle:       *idleTimeout,
	})

	var wireSrv *wire.Server
	if *mysqlAddr != "" {
		users, err := wire.LoadUsers(*mysqlUsers)
		if err != nil {
			log.Fatalf("load -mysql-users: %v", err)
		}
		wireSrv, err = wire.NewServer(wire.Config{
			Addr:         *mysqlAddr,
			Users:        users,
			Core:         apiSrv.Core(),
			QueryTimeout: apiSrv.HandlerTimeout(),
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("wire server: %v", err)
		}
		go func() {
			if err := wireSrv.ListenAndServe(); err != nil && err != wire.ErrServerClosed {
				log.Fatalf("wire serve: %v", err)
			}
		}()
		log.Printf("MySQL wire protocol listening on %s (%d users)", *mysqlAddr, len(users))
	}

	// Unified graceful shutdown: on SIGINT close the stream hub first (so
	// long-lived SSE handlers return and the HTTP drain can complete),
	// then drain both listeners — wire clients get a final ERR 1053, HTTP
	// keep-alives finish their in-flight request — all bounded by one
	// shutdown context.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutCtx, c2 := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer c2()
		if hub != nil {
			hub.Close()
		}
		if wireSrv != nil {
			if err := wireSrv.Shutdown(shutCtx); err != nil {
				log.Printf("wire shutdown: %v", err)
			}
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	log.Printf("VAP listening on %s (ui at http://localhost%s/)", *addr, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
	<-drained
	log.Printf("shutdown complete")
}

// logRecovery prints the startup recovery breakdown — snapshot format,
// bytes and load time, WAL segments/records replayed, effective worker
// fan-out, and the resulting samples/s — so a restart-time regression
// shows up in the log instead of having to be inferred.
func logRecovery(rec store.RecoveryStats) {
	if rec.SnapshotFormat == "" && rec.WALRecords == 0 {
		log.Printf("recovery: empty directory (cold start), %d workers", rec.Workers)
		return
	}
	perSec := float64(0)
	if rec.TotalMS > 0 {
		perSec = float64(rec.SnapshotSamples) / (float64(rec.TotalMS) / 1000)
	}
	log.Printf("recovery: snapshot %s %d bytes (%d meters, %d samples, %d chunks) in %dms; wal %d segments / %d records in %dms; total %dms, %d workers, %.0f samples/s",
		rec.SnapshotFormat, rec.SnapshotBytes, rec.SnapshotMeters, rec.SnapshotSamples, rec.SnapshotChunks, rec.SnapshotMS,
		rec.WALSegments, rec.WALRecords, rec.WALReplayMS,
		rec.TotalMS, rec.Workers, perSec)
}

// parseRollupRes maps the -rollup-res flag onto store.Options.RollupRes:
// "" selects the store defaults (nil), "off" disables rollups (non-nil
// empty slice), anything else parses as comma-separated seconds.
func parseRollupRes(s string) ([]int64, error) {
	switch strings.TrimSpace(s) {
	case "":
		return nil, nil
	case "off":
		return []int64{}, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad resolution %q: %w", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("resolution %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
