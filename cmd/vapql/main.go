// Command vapql is an interactive VQL shell over a VAP store: it loads
// (or generates) a smart-meter dataset and reads statements from stdin,
// printing result tables, EXPLAIN trees, and parse errors with source
// positions.
//
// Usage:
//
//	vapql [-dir data/] [-seed 42] [-days 90] [-e "SELECT ..."]
//
// With -dir the store is opened durably (and a synthetic dataset is
// generated into it when empty); without it an in-memory dataset is
// generated. -e executes one statement and exits, for scripting:
//
//	vapql -e "SELECT zone, sum(value) FROM meters GROUP BY zone"
//
// Statements may span lines and run when a line ends with ';'
// (psql-style); EOF flushes a pending statement, so piped input needs no
// trailing ';'. Meta commands: .help, .stats, .exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/store"
)

func main() {
	dir := flag.String("dir", "", "durability directory (empty = in-memory synthetic data)")
	seed := flag.Int64("seed", 42, "synthetic data seed")
	days := flag.Int("days", 90, "days of synthetic data when generating")
	workers := flag.Int("workers", 0, "parallel fan-out (0 = NumCPU)")
	cacheEntries := flag.Int("cache", 0, "versioned result-cache entries (0 = default)")
	shards := flag.Int("shards", 0, "store lock shards (0 = default 16)")
	oneShot := flag.String("e", "", "execute one statement and exit")
	flag.Parse()

	st, err := store.Open(store.Options{Dir: *dir, Shards: *shards})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	defer st.Close()

	if st.Stats().Samples == 0 {
		fmt.Fprintf(os.Stderr, "generating synthetic dataset (seed=%d days=%d)...\n", *seed, *days)
		ds := gen.Generate(gen.Config{Seed: *seed, Days: *days})
		if err := ds.LoadInto(st); err != nil {
			log.Fatalf("load dataset: %v", err)
		}
		if *dir != "" {
			if err := st.Snapshot(); err != nil {
				log.Printf("snapshot: %v", err)
			}
		}
	}
	an := core.NewAnalyzerOpts(st, core.Options{Workers: *workers, CacheEntries: *cacheEntries})

	if *oneShot != "" {
		if !runStatement(an, *oneShot) {
			os.Exit(1)
		}
		return
	}

	stats := st.Stats()
	fmt.Printf("vapql — VQL shell over %d meters, %d samples. Type .help for help.\n", stats.Meters, stats.Samples)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "vql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			// EOF flushes a pending statement (so piped input does not need
			// a trailing ';').
			if stmt := strings.TrimSpace(buf.String()); stmt != "" {
				runStatement(an, stmt)
			}
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			switch {
			case trimmed == "":
				continue
			case strings.HasPrefix(trimmed, "."), trimmed == `\q`:
				if !runMeta(an, trimmed) {
					return
				}
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		// Statements run on ';', psql-style; anything else accumulates.
		if stmt := strings.TrimSpace(buf.String()); strings.HasSuffix(stmt, ";") {
			runStatement(an, stmt)
			buf.Reset()
			prompt = "vql> "
		} else {
			prompt = " ...> "
		}
	}
}

// runMeta handles dot commands; returns false to exit the shell.
func runMeta(an *core.Analyzer, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case ".exit", ".quit", `\q`:
		return false
	case ".stats":
		st := an.Store().Stats()
		es := an.ExecStats()
		fmt.Printf("meters=%d samples=%d compressed=%dB shards=%d cache{hits=%d misses=%d entries=%d}\n",
			st.Meters, st.Samples, st.CompressedBytes, st.Shards, es.Hits, es.Misses, an.Exec().Len())
	case ".help":
		fmt.Print(`VQL:
  SELECT <agg|key>[, ...] FROM meters
    [WHERE bbox(minLon,minLat,maxLon,maxLat) AND zone = '<zone>'
       AND meter IN (ids) AND time >= '<t>' AND time < '<t>']
    [GROUP BY bucket(<granularity>) | meter | zone]
    [ORDER BY <col|ordinal> [ASC|DESC], ...] [LIMIT n]
  aggregates: sum(value) mean(value) min(value) max(value) count(*)
  granularities: hourly 4hourly daily weekly monthly quarterly yearly
  Prefix with EXPLAIN to see the plan without executing.
Meta: .stats .help .exit
`)
	default:
		fmt.Printf("unknown command %q (try .help)\n", cmd)
	}
	return true
}

// runStatement executes one statement and prints the result; returns
// false on error.
func runStatement(an *core.Analyzer, src string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	start := time.Now()
	out, err := an.VQL(ctx, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	elapsed := time.Since(start)
	if out.Explain {
		fmt.Print(out.Plan)
		return true
	}
	printTable(out.Columns, out.Rows)
	fmt.Printf("(%d rows, %d meters, %d samples, %v)\n", len(out.Rows), out.Meters, out.Samples, elapsed.Round(time.Microsecond))
	return true
}

// printTable renders rows with per-column widths.
func printTable(cols []string, rows [][]any) {
	widths := make([]int, len(cols))
	cells := make([][]string, len(rows))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := formatCell(v)
			cells[r][c] = s
			if c < len(widths) && len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, c := range cols {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range cols {
		fmt.Printf("%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Println()
	for _, row := range cells {
		for c, s := range row {
			fmt.Printf("%-*s  ", widths[c], s)
		}
		fmt.Println()
	}
}

func formatCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case float64:
		return fmt.Sprintf("%.6g", x)
	case int64:
		return fmt.Sprintf("%d", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}
