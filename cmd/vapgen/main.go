// Command vapgen generates a synthetic smart-meter dataset and either
// writes it into a durable VAP store directory, dumps it as CSV, or
// replays it against a running vapd's batched ingest endpoint; with
// -import-meters/-import-readings it instead loads an existing CSV data
// set (e.g. a real utility export) into a store.
//
// Usage:
//
//	vapgen -dir data/ -seed 42 -days 365
//	vapgen -csv readings.csv -meters meters.csv -days 30
//	vapgen -dir data/ -import-meters meters.csv -import-readings readings.csv
//	vapgen -replay-http http://localhost:8080/api/ingest [-ingest-binary] [-ingest-batch 720] [-ingest-sync]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"time"

	"vap/internal/csvio"
	"vap/internal/gen"
	"vap/internal/store"
)

func main() {
	dir := flag.String("dir", "", "store directory to load the dataset into")
	csvPath := flag.String("csv", "", "write readings CSV to this path")
	metersPath := flag.String("meters", "", "write meter metadata CSV to this path")
	importMeters := flag.String("import-meters", "", "meters CSV to import into -dir")
	importReadings := flag.String("import-readings", "", "readings CSV to import into -dir")
	seed := flag.Int64("seed", 42, "random seed")
	days := flag.Int("days", 365, "days of hourly data")
	anomaly := flag.Float64("anomaly-rate", 0, "fraction of readings replaced by spikes")
	missing := flag.Float64("missing-rate", 0, "fraction of readings dropped")
	replayHTTP := flag.String("replay-http", "", "replay the generated dataset against a vapd ingest endpoint (e.g. http://localhost:8080/api/ingest)")
	ingestBinary := flag.Bool("ingest-binary", false, "with -replay-http: use the compact binary framing instead of NDJSON")
	ingestBatch := flag.Int("ingest-batch", 720, "with -replay-http: samples per batch line/frame")
	ingestSync := flag.Bool("ingest-sync", false, "with -replay-http: ask the server to fsync before acknowledging (?sync=1)")
	flag.Parse()

	if *importMeters != "" || *importReadings != "" {
		if *dir == "" || *importMeters == "" || *importReadings == "" {
			log.Fatal("vapgen: import mode needs -dir, -import-meters, and -import-readings")
		}
		runImport(*dir, *importMeters, *importReadings)
		return
	}
	if *dir == "" && *csvPath == "" && *metersPath == "" && *replayHTTP == "" {
		log.Fatal("vapgen: need -dir, -csv/-meters, or -replay-http")
	}
	ds := gen.Generate(gen.Config{
		Seed: *seed, Days: *days,
		AnomalyRate: *anomaly, MissingRate: *missing,
	})
	total := 0
	for _, r := range ds.Readings {
		total += len(r)
	}
	log.Printf("generated %d customers, %d readings", len(ds.Customers), total)

	if *replayHTTP != "" {
		runReplayHTTP(*replayHTTP, ds, *ingestBinary, *ingestBatch, *ingestSync)
	}

	if *dir != "" {
		st, err := store.Open(store.Options{Dir: *dir})
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		if err := ds.LoadInto(st); err != nil {
			log.Fatalf("load: %v", err)
		}
		if err := st.Snapshot(); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		stats := st.Stats()
		log.Printf("store: %d meters, %d samples, %.1fx compression",
			stats.Meters, stats.Samples, float64(stats.RawBytes)/float64(stats.CompressedBytes))
		if err := st.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}
	if *metersPath != "" {
		meters := make([]store.Meter, len(ds.Customers))
		for i, c := range ds.Customers {
			meters[i] = c.Meter
		}
		if err := writeFile(*metersPath, func(f *os.File) error {
			return csvio.WriteMeters(f, meters)
		}); err != nil {
			log.Fatalf("meters csv: %v", err)
		}
		log.Printf("wrote %s", *metersPath)
	}
	if *csvPath != "" {
		var readings []csvio.Reading
		for i, c := range ds.Customers {
			for _, s := range ds.Readings[i] {
				readings = append(readings, csvio.Reading{MeterID: c.Meter.ID, Sample: s})
			}
		}
		if err := writeFile(*csvPath, func(f *os.File) error {
			return csvio.WriteReadings(f, readings)
		}); err != nil {
			log.Fatalf("readings csv: %v", err)
		}
		log.Printf("wrote %s", *csvPath)
	}
}

// runReplayHTTP streams the dataset to a vapd batched ingest endpoint
// (POST /api/ingest): meter registrations first, then per-meter sample
// batches, in NDJSON or the compact binary framing. The body is produced
// through a pipe, so the whole dataset is never serialized in memory.
func runReplayHTTP(url string, ds *gen.Dataset, useBinary bool, batch int, sync bool) {
	if batch <= 0 {
		batch = 720
	}
	if sync {
		sep := "?"
		for _, c := range url {
			if c == '?' {
				sep = "&"
			}
		}
		url += sep + "sync=1"
	}
	pr, pw := io.Pipe()
	go func() {
		var err error
		if useBinary {
			err = writeIngestBinary(pw, ds, batch)
		} else {
			err = writeIngestNDJSON(pw, ds, batch)
		}
		pw.CloseWithError(err)
	}()
	contentType := "application/x-ndjson"
	if useBinary {
		contentType = "application/octet-stream"
	}
	start := time.Now()
	resp, err := http.Post(url, contentType, pr)
	if err != nil {
		log.Fatalf("replay-http: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("replay-http: server returned %s: %s", resp.Status, body)
	}
	log.Printf("replay-http: done in %v: %s", time.Since(start).Round(time.Millisecond), body)
}

func writeIngestNDJSON(w io.Writer, ds *gen.Dataset, batch int) error {
	enc := json.NewEncoder(w)
	type regLine struct {
		Meter int64   `json:"meter"`
		Lon   float64 `json:"lon"`
		Lat   float64 `json:"lat"`
		Zone  string  `json:"zone"`
	}
	type batchLine struct {
		Meter   int64          `json:"meter"`
		Samples []store.Sample `json:"samples"`
	}
	for _, c := range ds.Customers {
		m := c.Meter
		if err := enc.Encode(regLine{Meter: m.ID, Lon: m.Location.Lon, Lat: m.Location.Lat, Zone: string(m.Zone)}); err != nil {
			return err
		}
	}
	for i, c := range ds.Customers {
		r := ds.Readings[i]
		for off := 0; off < len(r); off += batch {
			end := off + batch
			if end > len(r) {
				end = len(r)
			}
			if err := enc.Encode(batchLine{Meter: c.Meter.ID, Samples: r[off:end]}); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeIngestBinary(w io.Writer, ds *gen.Dataset, batch int) error {
	bw := make([]byte, 0, 64<<10)
	flush := func() error {
		if len(bw) == 0 {
			return nil
		}
		_, err := w.Write(bw)
		bw = bw[:0]
		return err
	}
	le64 := func(v uint64) { bw = binary.LittleEndian.AppendUint64(bw, v) }
	if _, err := w.Write([]byte("VAPB")); err != nil {
		return err
	}
	for _, c := range ds.Customers {
		m := c.Meter
		zone := []byte(m.Zone)
		bw = append(bw, 0x01)
		le64(uint64(m.ID))
		le64(math.Float64bits(m.Location.Lon))
		le64(math.Float64bits(m.Location.Lat))
		bw = binary.LittleEndian.AppendUint16(bw, uint16(len(zone)))
		bw = append(bw, zone...)
		if len(bw) > 32<<10 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	for i, c := range ds.Customers {
		r := ds.Readings[i]
		for off := 0; off < len(r); off += batch {
			end := off + batch
			if end > len(r) {
				end = len(r)
			}
			bw = append(bw, 0x02)
			le64(uint64(c.Meter.ID))
			bw = binary.LittleEndian.AppendUint32(bw, uint32(end-off))
			for _, smp := range r[off:end] {
				le64(uint64(smp.TS))
				le64(math.Float64bits(smp.Value))
			}
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runImport(dir, metersPath, readingsPath string) {
	mf, err := os.Open(metersPath)
	if err != nil {
		log.Fatalf("open meters: %v", err)
	}
	defer mf.Close()
	meters, err := csvio.ReadMeters(mf)
	if err != nil {
		log.Fatalf("parse meters: %v", err)
	}
	rf, err := os.Open(readingsPath)
	if err != nil {
		log.Fatalf("open readings: %v", err)
	}
	defer rf.Close()
	readings, err := csvio.ReadReadings(rf)
	if err != nil {
		log.Fatalf("parse readings: %v", err)
	}
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	rep, err := csvio.Import(st, meters, readings)
	if err != nil {
		log.Fatalf("import: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	log.Printf("imported %d meters, %d readings (%d skipped) into %s",
		rep.Meters, rep.Readings, rep.Skipped, dir)
}
