// Command vapgen generates a synthetic smart-meter dataset and either
// writes it into a durable VAP store directory or dumps it as CSV; with
// -import-meters/-import-readings it instead loads an existing CSV data
// set (e.g. a real utility export) into a store.
//
// Usage:
//
//	vapgen -dir data/ -seed 42 -days 365
//	vapgen -csv readings.csv -meters meters.csv -days 30
//	vapgen -dir data/ -import-meters meters.csv -import-readings readings.csv
package main

import (
	"flag"
	"log"
	"os"

	"vap/internal/csvio"
	"vap/internal/gen"
	"vap/internal/store"
)

func main() {
	dir := flag.String("dir", "", "store directory to load the dataset into")
	csvPath := flag.String("csv", "", "write readings CSV to this path")
	metersPath := flag.String("meters", "", "write meter metadata CSV to this path")
	importMeters := flag.String("import-meters", "", "meters CSV to import into -dir")
	importReadings := flag.String("import-readings", "", "readings CSV to import into -dir")
	seed := flag.Int64("seed", 42, "random seed")
	days := flag.Int("days", 365, "days of hourly data")
	anomaly := flag.Float64("anomaly-rate", 0, "fraction of readings replaced by spikes")
	missing := flag.Float64("missing-rate", 0, "fraction of readings dropped")
	flag.Parse()

	if *importMeters != "" || *importReadings != "" {
		if *dir == "" || *importMeters == "" || *importReadings == "" {
			log.Fatal("vapgen: import mode needs -dir, -import-meters, and -import-readings")
		}
		runImport(*dir, *importMeters, *importReadings)
		return
	}
	if *dir == "" && *csvPath == "" && *metersPath == "" {
		log.Fatal("vapgen: need -dir and/or -csv/-meters")
	}
	ds := gen.Generate(gen.Config{
		Seed: *seed, Days: *days,
		AnomalyRate: *anomaly, MissingRate: *missing,
	})
	total := 0
	for _, r := range ds.Readings {
		total += len(r)
	}
	log.Printf("generated %d customers, %d readings", len(ds.Customers), total)

	if *dir != "" {
		st, err := store.Open(store.Options{Dir: *dir})
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		if err := ds.LoadInto(st); err != nil {
			log.Fatalf("load: %v", err)
		}
		if err := st.Snapshot(); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		stats := st.Stats()
		log.Printf("store: %d meters, %d samples, %.1fx compression",
			stats.Meters, stats.Samples, float64(stats.RawBytes)/float64(stats.CompressedBytes))
		if err := st.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
	}
	if *metersPath != "" {
		meters := make([]store.Meter, len(ds.Customers))
		for i, c := range ds.Customers {
			meters[i] = c.Meter
		}
		if err := writeFile(*metersPath, func(f *os.File) error {
			return csvio.WriteMeters(f, meters)
		}); err != nil {
			log.Fatalf("meters csv: %v", err)
		}
		log.Printf("wrote %s", *metersPath)
	}
	if *csvPath != "" {
		var readings []csvio.Reading
		for i, c := range ds.Customers {
			for _, s := range ds.Readings[i] {
				readings = append(readings, csvio.Reading{MeterID: c.Meter.ID, Sample: s})
			}
		}
		if err := writeFile(*csvPath, func(f *os.File) error {
			return csvio.WriteReadings(f, readings)
		}); err != nil {
			log.Fatalf("readings csv: %v", err)
		}
		log.Printf("wrote %s", *csvPath)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runImport(dir, metersPath, readingsPath string) {
	mf, err := os.Open(metersPath)
	if err != nil {
		log.Fatalf("open meters: %v", err)
	}
	defer mf.Close()
	meters, err := csvio.ReadMeters(mf)
	if err != nil {
		log.Fatalf("parse meters: %v", err)
	}
	rf, err := os.Open(readingsPath)
	if err != nil {
		log.Fatalf("open readings: %v", err)
	}
	defer rf.Close()
	readings, err := csvio.ReadReadings(rf)
	if err != nil {
		log.Fatalf("parse readings: %v", err)
	}
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	rep, err := csvio.Import(st, meters, readings)
	if err != nil {
		log.Fatalf("import: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	log.Printf("imported %d meters, %d readings (%d skipped) into %s",
		rep.Meters, rep.Readings, rep.Skipped, dir)
}
