package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"vap/internal/api"
	"vap/internal/core"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/stream"

	"io"
	"net/http"
)

// midWinterNoon returns an anchor timestamp: day 30 of the dataset, noon.
func midWinterNoon(h *harness) int64 {
	return h.ds.Start.Unix() + 30*86400 + 12*3600
}

// runE2 reproduces Figure 2: KDE density maps for an afternoon window
// (commercial demand high) and an evening window (residential high), their
// Eq. 4 difference, and OD flows. The planted city has its commercial core
// at the center and residential districts around it, so the shift centroid
// must move away from the core and flows must originate near it.
func runE2(h *harness) error {
	noon := midWinterNoon(h)
	res, err := h.an.ShiftPatterns(core.ShiftConfig{
		T1:          noon,          // 12:00-16:00 bucket (4-hourly)
		T2:          noon + 8*3600, // 20:00-24:00 bucket
		Granularity: query.Gran4Hourly,
	})
	if err != nil {
		return err
	}
	s := res.Summary
	coreLoc := h.ds.Center // the planted commercial core
	// Two directional checks. The residential districts ring the core, so
	// mass-weighted gain/loss centroids vector-average back toward the
	// center and are NOT a valid direction test; instead:
	//  (a) net balance near the core: within 1.2 km of the commercial core,
	//      lost demand mass must exceed gained mass (the core empties);
	//  (b) OD flow direction: the majority of transported mass must move
	//      away from the core (origin nearer the core than destination).
	const coreRadius = 1200.0
	var coreLoss, coreGain float64
	for r := 0; r < res.Shift.Rows; r++ {
		for c := 0; c < res.Shift.Cols; c++ {
			if res.Shift.CellCenter(c, r).DistanceTo(coreLoc) > coreRadius {
				continue
			}
			v := res.Shift.At(c, r)
			if v < 0 {
				coreLoss += -v
			} else {
				coreGain += v
			}
		}
	}
	var outMass, totMass float64
	for _, f := range res.Flows {
		totMass += f.Mass
		if f.From.DistanceTo(coreLoc) < f.To.DistanceTo(coreLoc) {
			outMass += f.Mass
		}
	}
	outFrac := 0.0
	if totMass > 0 {
		outFrac = outMass / totMass
	}
	printTable(
		[]string{"quantity", "value"},
		[][]string{
			{"meters", fmt.Sprintf("%d", res.Meters)},
			{"flows extracted", fmt.Sprintf("%d", len(res.Flows))},
			{"shift L1 mass", fmt.Sprintf("%.4f", s.L1)},
			{"demand lost within 1.2 km of core", fmt.Sprintf("%.3f", coreLoss)},
			{"demand gained within 1.2 km of core", fmt.Sprintf("%.3f", coreGain)},
			{"core is a net loser", okMark(coreLoss > coreGain)},
			{"flow mass moving away from core", fmt.Sprintf("%.0f%%", 100*outFrac)},
			{"majority of flow runs core->residential", okMark(outFrac > 0.5)},
		})

	// E2a: kernel ablation (paper argues for Gaussian).
	fmt.Println("\nE2a kernel ablation (same windows):")
	var rows [][]string
	for _, k := range []kde.Kernel{kde.KernelGaussian, kde.KernelEpanechnikov, kde.KernelUniform} {
		t0 := time.Now()
		r2, err := h.an.ShiftPatterns(core.ShiftConfig{
			T1: noon, T2: noon + 8*3600,
			Granularity: query.Gran4Hourly, Kernel: k,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			string(k),
			fmt.Sprintf("%.4f", r2.Summary.L1),
			fmt.Sprintf("%.0f m", r2.Summary.ShiftMeters),
			fmt.Sprintf("%d", len(r2.Flows)),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	printTable([]string{"kernel", "L1", "shift dist", "flows", "time"}, rows)

	// E2b: exact vs truncated-support KDE evaluation.
	fmt.Println("\nE2b exact vs truncated KDE (max abs cell difference):")
	pts, err := h.an.Engine().DemandSnapshot(query.Selection{}, noon, noon+4*3600)
	if err != nil {
		return err
	}
	wpts := make([]kde.WeightedPoint, len(pts))
	for i, p := range pts {
		wpts[i] = kde.WeightedPoint{Loc: p.Loc, Weight: p.Weight}
	}
	box := h.st.Catalog().Bounds().Buffer(0.002)
	t0 := time.Now()
	fTrunc, err := kde.Estimate(wpts, box, kde.Config{})
	if err != nil {
		return err
	}
	dTrunc := time.Since(t0)
	t0 = time.Now()
	fExact, err := kde.Estimate(wpts, box, kde.Config{Exact: true})
	if err != nil {
		return err
	}
	dExact := time.Since(t0)
	maxDiff := 0.0
	for i := range fTrunc.Values {
		d := fTrunc.Values[i] - fExact.Values[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	_, hi := fExact.MinMax()
	printTable([]string{"variant", "time", "max |diff| / peak"},
		[][]string{
			{"truncated (5h support)", dTrunc.Round(time.Millisecond).String(), fmt.Sprintf("%.2e", maxDiff/hi)},
			{"exact", dExact.Round(time.Millisecond).String(), "0"},
		})
	return nil
}

// runE6 sweeps the seven granularities of S2 step 1 at fixed anchors and
// reports the shift magnitude: fine granularities see the diurnal
// commercial->residential shift; coarse ones (daily and beyond) average it
// away or collapse both anchors into one bucket.
func runE6(h *harness) error {
	noon := midWinterNoon(h)
	gs, sums, err := h.an.GranularitySweep(core.ShiftConfig{
		T1: noon, T2: noon + 8*3600,
	})
	if err != nil {
		return err
	}
	var rows [][]string
	for i, g := range gs {
		s := sums[i]
		note := ""
		if s.L1 == 0 && s.ShiftMeters == 0 {
			note = "anchors merge into one bucket"
		}
		rows = append(rows, []string{
			string(g),
			fmt.Sprintf("%.4f", s.L1),
			fmt.Sprintf("%.0f m", s.ShiftMeters),
			note,
		})
	}
	printTable([]string{"granularity", "shift L1", "centroid shift", "note"}, rows)
	fmt.Println("  (expected shape: L1 decreases with coarser granularity; daily+ merges the anchors)")

	// Same-day vs cross-season daily shift: coarse granularities do expose
	// seasonal shifts when the anchors are far apart.
	winter := h.ds.Start.Unix() + 15*86400
	summer := h.ds.Start.Unix() + 196*86400
	if r, err := h.an.ShiftPatterns(core.ShiftConfig{
		T1: winter, T2: summer, Granularity: query.GranMonthly,
	}); err == nil {
		fmt.Printf("  cross-season monthly shift (Jan vs Jul): L1=%.4f centroid=%.0f m\n",
			r.Summary.L1, r.Summary.ShiftMeters)
	}
	return nil
}

// runE7 sweeps the consumption-intensity quantile (S2 step 2): higher
// quantiles keep only heavy consumers, concentrating and then shrinking
// the shift signal.
func runE7(h *harness) error {
	noon := midWinterNoon(h)
	quantiles := []float64{0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}
	sums, err := h.an.IntensitySweep(core.ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
	}, quantiles)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, q := range quantiles {
		ids, err := h.an.Engine().IntensityBand(query.Selection{}, q)
		if err != nil {
			return err
		}
		maj, share := majorityPattern(patternCounts(h.ds, ids))
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", q*100),
			fmt.Sprintf("%d", len(ids)),
			fmt.Sprintf("%.4f", sums[i].L1),
			fmt.Sprintf("%.0f m", sums[i].ShiftMeters),
			fmt.Sprintf("%s (%.0f%%)", maj, share*100),
		})
	}
	printTable([]string{"quantile", "meters kept", "shift L1", "centroid shift", "dominant pattern"}, rows)
	fmt.Println("  (expected shape: higher quantiles select constant-high/commercial customers)")
	return nil
}

// runE8 reproduces the S2 step-3 streaming simulation with a zero
// wall-clock interval (throughput mode) and reports ingest rate plus
// per-tick density-update latency.
func runE8(h *harness) error {
	box := h.st.Catalog().Bounds().Buffer(0.002)
	tracker, err := stream.NewTracker(box, 64, 64, 0.004, len(h.ds.Customers))
	if err != nil {
		return err
	}
	hub := stream.NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()
	received := 0
	done := make(chan struct{})
	go func() {
		for range ch {
			received++
		}
		close(done)
	}()
	feeds := make([]stream.Feed, len(h.ds.Customers))
	for i, c := range h.ds.Customers {
		feeds[i] = stream.Feed{MeterID: c.Meter.ID, Loc: c.Meter.Location, Samples: h.ds.Readings[i]}
	}
	from := h.ds.Start.Unix()
	to := from + 7*86400 // one week
	rp := &stream.Replayer{Tracker: tracker, Hub: hub, Interval: 0, Step: 3600}
	t0 := time.Now()
	ticks, err := rp.Run(context.Background(), feeds, from, to)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	cancel()
	<-done
	readings := ticks * len(feeds)
	printTable([]string{"metric", "value"},
		[][]string{
			{"ticks (data hours)", fmt.Sprintf("%d", ticks)},
			{"readings ingested", fmt.Sprintf("%d", readings)},
			{"wall time", elapsed.Round(time.Millisecond).String()},
			{"throughput", fmt.Sprintf("%.0f readings/s", float64(readings)/elapsed.Seconds())},
			{"per-tick latency", (elapsed / time.Duration(ticks)).Round(time.Microsecond).String()},
			{"hub events received", fmt.Sprintf("%d", received)},
		})
	_, sum := tracker.Snapshot()
	fmt.Printf("  final hot cell at %.4f,%.4f (max density %.4f)\n",
		sum.HotCell.Lon, sum.HotCell.Lat, sum.MaxDensity)
	return nil
}

// runE10 measures REST endpoint latency over the full dataset.
func runE10(h *harness) error {
	srv := httptest.NewServer(api.NewServer(h.an, nil).Routes())
	defer srv.Close()
	noon := midWinterNoon(h)
	endpoints := []struct {
		name, path string
	}{
		{"health", "/api/health"},
		{"stats", "/api/stats"},
		{"customers", "/api/customers"},
		{"series (daily)", "/api/series?id=1&granularity=daily"},
		{"reduce (mds)", "/api/reduce?method=mds"},
		{"patterns (brush)", "/api/patterns?method=mds&bx0=0.4&by0=0.4&bx1=0.9&by1=0.9"},
		{"flow (4hourly)", fmt.Sprintf("/api/flow?t1=%d&t2=%d&granularity=4hourly", noon, noon+8*3600)},
		{"map.svg (shift)", fmt.Sprintf("/view/map.svg?mode=shift&t1=%d&t2=%d", noon, noon+8*3600)},
		{"scatter.svg", "/view/scatter.svg?method=mds"},
		{"series.svg", "/view/series.svg?granularity=weekly"},
	}
	var rows [][]string
	for _, e := range endpoints {
		// Warm (populates the reduction cache), then measure.
		if _, err := get(srv.URL + e.path); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		t0 := time.Now()
		n, err := get(srv.URL + e.path)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		rows = append(rows, []string{e.name, fmt.Sprintf("%d B", n), time.Since(t0).Round(time.Microsecond).String()})
	}
	printTable([]string{"endpoint", "payload", "warm latency"}, rows)
	return nil
}

func get(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(string(b), 200))
	}
	return len(b), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
