package main

import (
	"context"
	"fmt"
	"time"

	"vap/internal/cluster"
	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/stat"
	"vap/internal/viz"
)

// runE1 exercises the Figure 1 loop end-to-end: data -> models ->
// visualization, reporting stage timings.
func runE1(h *harness) error {
	ctx := context.Background()
	t0 := time.Now()
	view, err := h.an.TypicalPatterns(ctx, core.TypicalConfig{Seed: h.seed})
	if err != nil {
		return err
	}
	tReduce := time.Since(t0)

	t0 = time.Now()
	ids, rowIdx, err := view.SelectBrush(core.Brush{MinX: 0, MinY: 0, MaxX: 0.25, MaxY: 0.25})
	if err != nil {
		// An empty corner brush is possible; fall back to the full view.
		ids, rowIdx, err = view.SelectBrush(core.Brush{MaxX: 1, MaxY: 1})
		if err != nil {
			return err
		}
	}
	prof, err := view.Profile(rowIdx)
	if err != nil {
		return err
	}
	tBrush := time.Since(t0)

	t0 = time.Now()
	anchor := h.ds.Start.Unix() + 30*86400
	res, err := h.an.ShiftPatterns(core.ShiftConfig{
		T1: anchor + 12*3600, T2: anchor + 20*3600,
		Granularity: query.Gran4Hourly,
	})
	if err != nil {
		return err
	}
	tShift := time.Since(t0)

	t0 = time.Now()
	scatter := (&viz.ScatterView{Points: view.Points}).Render()
	mapSVG := (&viz.MapView{Box: res.Box, Heat: res.Shift, HeatDiv: true, Flows: res.Flows}).Render()
	tRender := time.Since(t0)

	printTable(
		[]string{"stage", "output", "time"},
		[][]string{
			{"reduce (t-SNE, Pearson)", fmt.Sprintf("%d points, %d-dim", len(view.Points), view.FeatDim), tReduce.Round(time.Millisecond).String()},
			{"brush + profile", fmt.Sprintf("%d meters, label=%s", len(ids), prof.Label), tBrush.Round(time.Microsecond).String()},
			{"shift (KDE + Eq.4 + OD)", fmt.Sprintf("%d flows, %d meters", len(res.Flows), res.Meters), tShift.Round(time.Millisecond).String()},
			{"render SVG views", fmt.Sprintf("%d + %d bytes", len(scatter), len(mapSVG)), tRender.Round(time.Millisecond).String()},
		})
	return nil
}

// embeddingQuality computes silhouette and k-NN purity of an embedding
// against ground-truth labels.
func embeddingQuality(emb reduce.Embedding, labels []int) (sil, knn float64, err error) {
	dist := func(i, j int) float64 { return emb.Dist(i, j) }
	sil, err = stat.Silhouette(len(emb), labels, dist)
	if err != nil {
		return 0, 0, err
	}
	knn, err = stat.NeighborhoodPurity(len(emb), 10, labels, dist)
	return sil, knn, err
}

// runE3 reproduces Figure 3 / S1: the five planted patterns are separable
// in the t-SNE+Pearson view, and brushing each ground-truth group recovers
// a profile whose heuristic label matches the planted pattern.
func runE3(h *harness) error {
	ctx := context.Background()
	labels := h.ds.Labels()
	rows := [][]string{}
	for _, metric := range []reduce.Metric{reduce.MetricPearson, reduce.MetricEuclidean} {
		t0 := time.Now()
		view, err := h.an.TypicalPatterns(ctx, core.TypicalConfig{Seed: h.seed, Metric: metric})
		if err != nil {
			return err
		}
		sil, knn, err := embeddingQuality(view.Points, labels)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			"tsne/" + string(metric),
			fmt.Sprintf("%.3f", sil),
			fmt.Sprintf("%.3f", knn),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	fmt.Println("embedding separability (E3a ablation: Pearson vs Euclidean):")
	printTable([]string{"method/metric", "silhouette", "knn-purity@10", "time"}, rows)

	// Brush recovery: brush the bounding box of each ground-truth group
	// (shrunk 10% to mimic a user's selection) and label the profile.
	view, err := h.an.TypicalPatterns(ctx, core.TypicalConfig{Seed: h.seed})
	if err != nil {
		return err
	}
	fmt.Println("\nbrush recovery per planted pattern (daily-granularity view):")
	var rrows [][]string
	for p := gen.Pattern(0); p < gen.Pattern(gen.NumPatterns); p++ {
		b, n := groupBrush(view, labels, int(p))
		if n == 0 {
			continue
		}
		ids, rowIdx, err := view.SelectBrush(b)
		if err != nil {
			rrows = append(rrows, []string{p.String(), "0", "-", "-", "-"})
			continue
		}
		prof, err := view.Profile(rowIdx)
		if err != nil {
			return err
		}
		maj, share := majorityPattern(patternCounts(h.ds, ids))
		rrows = append(rrows, []string{
			p.String(),
			fmt.Sprintf("%d", len(ids)),
			fmt.Sprintf("%s (%.0f%%)", maj, 100*share),
			string(prof.Label),
			okMark(maj == p),
		})
	}
	printTable([]string{"planted", "brushed", "majority in brush", "profile label", "majority ok"}, rrows)
	return nil
}

// groupBrush returns a brush around the centroid of the group's embedding
// points (median absolute spread), mimicking how a user lassos a cluster.
func groupBrush(view *core.TypicalView, labels []int, group int) (core.Brush, int) {
	var xs, ys []float64
	for i, l := range labels {
		if l == group && i < len(view.Points) {
			xs = append(xs, view.Points[i][0])
			ys = append(ys, view.Points[i][1])
		}
	}
	if len(xs) == 0 {
		return core.Brush{}, 0
	}
	cx, cy := stat.Median(xs), stat.Median(ys)
	rx := 1.8*stat.MAD(xs) + 0.02
	ry := 1.8*stat.MAD(ys) + 0.02
	return core.Brush{MinX: cx - rx, MinY: cy - ry, MaxX: cx + rx, MaxY: cy + ry}, len(xs)
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// runE4 compares the four reduction methods (S1 step 3 extended) on
// label-based scores plus trustworthiness/continuity (Venna & Kaski),
// which need no labels and measure neighborhood preservation directly.
func runE4(h *harness) error {
	ctx := context.Background()
	labels := h.ds.Labels()
	_, _, rows, err := h.an.Engine().MeterMatrix(query.Selection{}, query.GranDaily, query.AggMean)
	if err != nil {
		return err
	}
	highD, err := reduce.DistanceMatrix(rows, reduce.MetricPearson)
	if err != nil {
		return err
	}
	highDist := func(i, j int) float64 { return highD[i][j] }
	var table [][]string
	for _, m := range []reduce.Method{reduce.MethodTSNE, reduce.MethodMDS, reduce.MethodSMACOF, reduce.MethodPCA} {
		t0 := time.Now()
		emb, err := reduce.Reduce(ctx, rows, m, reduce.MetricPearson, h.seed)
		if err != nil {
			return err
		}
		emb.Normalize01()
		sil, knn, err := embeddingQuality(emb, labels)
		if err != nil {
			return err
		}
		lowDist := func(i, j int) float64 { return emb.Dist(i, j) }
		tw, err := stat.Trustworthiness(len(emb), 10, highDist, lowDist)
		if err != nil {
			return err
		}
		co, err := stat.Continuity(len(emb), 10, highDist, lowDist)
		if err != nil {
			return err
		}
		table = append(table, []string{
			string(m),
			fmt.Sprintf("%.3f", sil),
			fmt.Sprintf("%.3f", knn),
			fmt.Sprintf("%.3f", tw),
			fmt.Sprintf("%.3f", co),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	printTable([]string{"method", "silhouette", "knn-purity@10", "trustworthiness@10", "continuity@10", "time"}, table)
	fmt.Println("  (trust/continuity are label-free; PCA's are vs the Pearson space)")
	return nil
}

// runE5 is the S1 step-4 baseline: k-means on the raw daily series vs the
// ground truth, and vs a visual-selection proxy (brushing each embedding
// cluster region).
func runE5(h *harness) error {
	ctx := context.Background()
	truth := h.ds.Labels()
	_, _, rows, err := h.an.Engine().MeterMatrix(query.Selection{}, query.GranDaily, query.AggMean)
	if err != nil {
		return err
	}
	var table [][]string
	for _, k := range []int{5, 6, 8} {
		t0 := time.Now()
		res, err := cluster.KMeans(rows, cluster.KMeansConfig{K: k, Seed: h.seed, NormalizeZ: true})
		if err != nil {
			return err
		}
		ari, err := stat.AdjustedRandIndex(res.Labels, truth)
		if err != nil {
			return err
		}
		nmi, err := stat.NMI(res.Labels, truth)
		if err != nil {
			return err
		}
		pur, err := stat.Purity(res.Labels, truth)
		if err != nil {
			return err
		}
		table = append(table, []string{
			fmt.Sprintf("k-means k=%d", k),
			fmt.Sprintf("%.3f", ari),
			fmt.Sprintf("%.3f", nmi),
			fmt.Sprintf("%.3f", pur),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	// Visual-selection proxy: assign each point the majority pattern of its
	// brushed embedding region (one brush per ground-truth group, as a user
	// exploring the view would).
	view, err := h.an.TypicalPatterns(ctx, core.TypicalConfig{Seed: h.seed})
	if err != nil {
		return err
	}
	visual := make([]int, len(truth))
	for i := range visual {
		visual[i] = -1
	}
	for p := 0; p < gen.NumPatterns; p++ {
		b, n := groupBrush(view, truth, p)
		if n == 0 {
			continue
		}
		_, rowIdx, err := view.SelectBrush(b)
		if err != nil {
			continue
		}
		for _, r := range rowIdx {
			if visual[r] == -1 { // first brush wins, as in sequential exploration
				visual[r] = p
			}
		}
	}
	// Unbrushed points get their nearest brushed neighbor's group.
	for i := range visual {
		if visual[i] != -1 {
			continue
		}
		best, bestD := -1, 1e18
		for j := range visual {
			if visual[j] == -1 || j == i {
				continue
			}
			if d := view.Points.SquaredDist(i, j); d < bestD {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			visual[i] = visual[best]
		} else {
			visual[i] = 0
		}
	}
	ari, _ := stat.AdjustedRandIndex(visual, truth)
	nmi, _ := stat.NMI(visual, truth)
	pur, _ := stat.Purity(visual, truth)
	table = append(table, []string{
		"visual selection (t-SNE brush)",
		fmt.Sprintf("%.3f", ari),
		fmt.Sprintf("%.3f", nmi),
		fmt.Sprintf("%.3f", pur),
		"-",
	})
	// Extension baselines: agglomerative clustering and DBSCAN on the same
	// Pearson distances the visual view uses.
	d, err := reduce.DistanceMatrix(rows, reduce.MetricPearson)
	if err != nil {
		return err
	}
	t0 := time.Now()
	dg, err := cluster.Agglomerative(d, cluster.LinkageAverage)
	if err != nil {
		return err
	}
	if hl, err := dg.Cut(gen.NumPatterns); err == nil {
		ari, _ := stat.AdjustedRandIndex(hl, truth)
		nmi, _ := stat.NMI(hl, truth)
		pur, _ := stat.Purity(hl, truth)
		table = append(table, []string{
			"agglomerative avg-link k=6 (Pearson)",
			fmt.Sprintf("%.3f", ari), fmt.Sprintf("%.3f", nmi), fmt.Sprintf("%.3f", pur),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	t0 = time.Now()
	if dbl, err := cluster.DBSCAN(d, cluster.DBSCANConfig{Eps: 0.25, MinPts: 5}); err == nil {
		ari, _ := stat.AdjustedRandIndex(dbl, truth)
		nmi, _ := stat.NMI(dbl, truth)
		pur, _ := stat.Purity(dbl, truth)
		table = append(table, []string{
			fmt.Sprintf("DBSCAN eps=0.25 (%d clusters, %d noise)", cluster.ClusterCount(dbl), cluster.NoiseCount(dbl)),
			fmt.Sprintf("%.3f", ari), fmt.Sprintf("%.3f", nmi), fmt.Sprintf("%.3f", pur),
			time.Since(t0).Round(time.Millisecond).String(),
		})
	}
	printTable([]string{"approach", "ARI", "NMI", "purity", "time"}, table)
	fmt.Println("  (paper's claim: visual selection is competitive with k-means while interactive)")
	return nil
}

// runE9 reproduces the S1 "early birds" query: brush the embedding region
// where the 05:00–07:00 morning-peak cohort lives and measure precision
// and recall of the planted early-bird customers.
func runE9(h *harness) error {
	ctx := context.Background()
	view, err := h.an.TypicalPatterns(ctx, core.TypicalConfig{
		Seed:            h.seed,
		UseDailyProfile: true,
	})
	if err != nil {
		return err
	}
	labels := h.ds.Labels()
	b, planted := groupBrush(view, labels, int(gen.PatternEarlyBird))
	if planted == 0 {
		return fmt.Errorf("no early-bird customers in dataset")
	}
	ids, rowIdx, err := view.SelectBrush(b)
	if err != nil {
		return err
	}
	prof, err := view.Profile(rowIdx)
	if err != nil {
		return err
	}
	counts := patternCounts(h.ds, ids)
	tp := counts[gen.PatternEarlyBird]
	precision := float64(tp) / float64(len(ids))
	recall := float64(tp) / float64(planted)
	peak := argmaxF(prof.Mean)
	printTable(
		[]string{"metric", "value"},
		[][]string{
			{"planted early birds", fmt.Sprintf("%d", planted)},
			{"brushed points", fmt.Sprintf("%d", len(ids))},
			{"precision", fmt.Sprintf("%.3f", precision)},
			{"recall", fmt.Sprintf("%.3f", recall)},
			{"profile peak hour", fmt.Sprintf("%02d:00", peak)},
			{"profile label", string(prof.Label)},
			{"peak in 05-07 window", okMark(peak >= 5 && peak <= 7)},
		})
	return nil
}

func argmaxF(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
