// Command vapbench regenerates every experiment in EXPERIMENTS.md: the
// paper has no numbered tables (it is a demo paper), so each figure and
// demo-scenario claim is reproduced as a measurable experiment E1..E10.
//
// Usage:
//
//	vapbench -all
//	vapbench -exp E3 [-seed 42] [-days 365] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/store"
)

// harness carries the shared dataset and analyzer all experiments use.
type harness struct {
	ds    *gen.Dataset
	st    *store.Store
	an    *core.Analyzer
	seed  int64
	out   *os.File
	start time.Time
}

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E10); empty with -all runs everything")
	all := flag.Bool("all", false, "run all experiments")
	seed := flag.Int64("seed", 42, "dataset seed")
	days := flag.Int("days", 365, "days of synthetic data")
	scale := flag.Float64("scale", 1.0, "population scale factor")
	flag.Parse()

	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	h, err := setup(*seed, *days, *scale)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	defer h.st.Close()

	type runner struct {
		id   string
		desc string
		fn   func(*harness) error
	}
	runners := []runner{
		{"E1", "Figure 1: end-to-end pipeline", runE1},
		{"E2", "Figure 2: flow map method recovers the planted shift", runE2},
		{"E3", "Figure 3/S1: typical patterns separable under t-SNE+Pearson", runE3},
		{"E4", "S1 step 3: t-SNE vs MDS vs SMACOF vs PCA", runE4},
		{"E5", "S1 step 4: k-means baseline vs visual selection", runE5},
		{"E6", "S2 step 1: shift sensitivity vs temporal granularity", runE6},
		{"E7", "S2 step 2: shift sensitivity vs intensity quantile", runE7},
		{"E8", "S2 step 3: near-real-time streaming", runE8},
		{"E9", "S1 step 1: early-birds brushing query", runE9},
		{"E10", "§2.2: REST API latency", runE10},
	}
	want := strings.ToUpper(*exp)
	ran := 0
	for _, r := range runners {
		if !*all && r.id != want {
			continue
		}
		fmt.Printf("\n=== %s — %s ===\n", r.id, r.desc)
		t0 := time.Now()
		if err := r.fn(h); err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Printf("--- %s done in %v\n", r.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func setup(seed int64, days int, scale float64) (*harness, error) {
	counts := map[gen.Pattern]int{
		gen.PatternBimodal:      scaleN(120, scale),
		gen.PatternEnergySaving: scaleN(100, scale),
		gen.PatternIdle:         scaleN(60, scale),
		gen.PatternConstantHigh: scaleN(80, scale),
		gen.PatternSuspicious:   scaleN(40, scale),
		gen.PatternEarlyBird:    scaleN(60, scale),
	}
	fmt.Printf("generating dataset: seed=%d days=%d scale=%.2f\n", seed, days, scale)
	t0 := time.Now()
	ds := gen.Generate(gen.Config{Seed: seed, Days: days, Counts: counts})
	st, err := store.Open(store.Options{})
	if err != nil {
		return nil, err
	}
	if err := ds.LoadInto(st); err != nil {
		return nil, err
	}
	stats := st.Stats()
	fmt.Printf("dataset ready in %v: %d meters, %d samples, %.1fx compression\n",
		time.Since(t0).Round(time.Millisecond), stats.Meters, stats.Samples,
		float64(stats.RawBytes)/float64(stats.CompressedBytes))
	return &harness{ds: ds, st: st, an: core.NewAnalyzer(st), seed: seed, start: time.Now()}, nil
}

func scaleN(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 4 {
		v = 4
	}
	return v
}

// printTable prints an aligned table with a header row.
func printTable(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// patternCounts tallies ground-truth patterns among a set of meter IDs.
func patternCounts(ds *gen.Dataset, ids []int64) map[gen.Pattern]int {
	idSet := make(map[int64]bool, len(ids))
	for _, id := range ids {
		idSet[id] = true
	}
	out := map[gen.Pattern]int{}
	for _, c := range ds.Customers {
		if idSet[c.Meter.ID] {
			out[c.Pattern]++
		}
	}
	return out
}

// majorityPattern returns the most common pattern and its share.
func majorityPattern(counts map[gen.Pattern]int) (gen.Pattern, float64) {
	total := 0
	var best gen.Pattern
	bestN := -1
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		p := gen.Pattern(k)
		n := counts[p]
		total += n
		if n > bestN {
			best, bestN = p, n
		}
	}
	if total == 0 {
		return best, 0
	}
	return best, float64(bestN) / float64(total)
}
