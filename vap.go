// Package vap is the public API of the VAP reproduction: a visual-analysis
// library for discovering spatio-temporal patterns in smart-meter energy
// consumption data (Liu et al., "VAP: A Visual Analysis Tool for Energy
// Consumption Spatio-temporal Pattern Discovery", EDBT 2020).
//
// The library is organized like the paper's three-layer architecture:
//
//   - the data layer is an embedded spatio-temporal store (compressed
//     time series per meter, spatial R-tree over locations, optional WAL
//     and snapshot durability) — Open/OpenInMemory;
//   - the logic layer is the Analyzer with the two pattern-recognition
//     models: TypicalPatterns (t-SNE/MDS dimension reduction with Pearson
//     correlation distance, brushed-group profiling) and ShiftPatterns
//     (Gaussian-KDE density maps, Eq. 4 demand-shift flow extraction);
//   - the presentation layer is server-side SVG rendering plus a JSON
//     REST/SSE web application — NewHTTPServer.
//
// A synthetic smart-meter generator (GenerateDataset) plants the paper's
// five typical patterns, the "early birds" cohort, and a commercial to
// residential evening demand shift, so every demo scenario is runnable
// out of the box.
//
// Quickstart:
//
//	st, _ := vap.OpenInMemory()
//	ds := vap.GenerateDataset(vap.DatasetConfig{Seed: 1, Days: 120})
//	_ = ds.LoadInto(st)
//	an := vap.NewAnalyzer(st)
//	view, _ := an.TypicalPatterns(ctx, vap.TypicalConfig{})
//	ids, rows, _ := view.SelectBrush(vap.Brush{MinX: 0.6, MinY: 0.6, MaxX: 1, MaxY: 1})
//	profile, _ := view.Profile(rows)
//	fmt.Println(profile.Label, len(ids))
package vap

import (
	"net/http"

	"vap/internal/api"
	"vap/internal/core"
	"vap/internal/exec"
	"vap/internal/frontend"
	"vap/internal/gen"
	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
	"vap/internal/stream"
	"vap/internal/wire"
)

// --- Data layer -------------------------------------------------------------

// Store is the embedded spatio-temporal database.
type Store = store.Store

// StoreOptions configures durability: Dir selects the data directory,
// SyncEveryAppend makes appends wait for their group commit (a nil return
// means the sample is fsynced), SegmentBytes sets the WAL rotation
// threshold, and CommitInterval the group-commit cadence.
type StoreOptions = store.Options

// Durability defaults (used when the corresponding StoreOptions field is
// zero).
const (
	// DefaultSegmentBytes is the WAL segment rotation threshold (64 MiB).
	DefaultSegmentBytes = store.DefaultSegmentBytes
	// DefaultCommitInterval is the background group-commit flush cadence.
	DefaultCommitInterval = store.DefaultCommitInterval
)

// WALCorruptError reports interior WAL corruption found during recovery: a
// malformed record with valid records after it, which is reported loudly
// (with segment path and byte offset) rather than silently dropping the
// acknowledged records that follow. A torn tail — a crash mid-write with
// nothing valid after it — is repaired automatically instead.
type WALCorruptError = store.CorruptError

// Meter is customer metadata (location, zone).
type Meter = store.Meter

// Sample is one meter reading.
type Sample = store.Sample

// ZoneType classifies land use at a meter location.
type ZoneType = store.ZoneType

// Zone constants.
const (
	ZoneResidential = store.ZoneResidential
	ZoneCommercial  = store.ZoneCommercial
	ZoneIndustrial  = store.ZoneIndustrial
	ZoneMixed       = store.ZoneMixed
)

// Point is a geographic location.
type Point = geo.Point

// BBox is a geographic bounding box.
type BBox = geo.BBox

// Open opens a store with the given options (set Dir for durability).
func Open(opts StoreOptions) (*Store, error) { return store.Open(opts) }

// OpenInMemory opens a volatile store (no WAL, no snapshots).
func OpenInMemory() (*Store, error) { return store.Open(store.Options{}) }

// --- Synthetic data -----------------------------------------------------------

// DatasetConfig controls the synthetic smart-meter population.
type DatasetConfig = gen.Config

// Dataset is a generated population with ground-truth pattern labels.
type Dataset = gen.Dataset

// Pattern is a planted ground-truth consumption pattern.
type Pattern = gen.Pattern

// Planted pattern identities.
const (
	PatternBimodal      = gen.PatternBimodal
	PatternEnergySaving = gen.PatternEnergySaving
	PatternIdle         = gen.PatternIdle
	PatternConstantHigh = gen.PatternConstantHigh
	PatternSuspicious   = gen.PatternSuspicious
	PatternEarlyBird    = gen.PatternEarlyBird
)

// GenerateDataset builds a deterministic synthetic data set with the
// paper's planted structure.
func GenerateDataset(cfg DatasetConfig) *Dataset { return gen.Generate(cfg) }

// --- Logic layer ----------------------------------------------------------------

// Analyzer is the pattern-discovery façade (the paper's models layer).
// Its expensive kernels run on a parallel execution engine whose results
// are memoized against the store's data version: repeated identical
// TypicalPatterns/ShiftPatterns calls on an unchanged store return cached
// views, and any Append invalidates them precisely.
type Analyzer = core.Analyzer

// ExecOptions tunes the analyzer's execution engine: Workers is the
// parallel fan-out width (default runtime.NumCPU()), CacheEntries bounds
// the versioned result cache (default 64; entries can be megabytes).
type ExecOptions = core.Options

// ExecStats reports the execution engine's cache and deduplication
// counters (see Analyzer.ExecStats).
type ExecStats = exec.Stats

// NewAnalyzer wraps a store with default ExecOptions.
func NewAnalyzer(st *Store) *Analyzer { return core.NewAnalyzer(st) }

// NewAnalyzerWithOptions wraps a store with explicit execution-engine
// knobs.
func NewAnalyzerWithOptions(st *Store, opts ExecOptions) *Analyzer {
	return core.NewAnalyzerOpts(st, opts)
}

// GovernConfig tunes the admission controller embedded analyzers run
// under (ExecOptions.Gov): global and per-tenant concurrency, in-flight
// memory budgets, per-query cost ceilings, queue bounds, and the
// interactive/analytics classification cutoff. The zero value selects
// production-safe defaults sized to the host.
type GovernConfig = govern.Config

// GovernQuota bounds one tenant (see GovernConfig.Tenants).
type GovernQuota = govern.Quota

// Governor is the admission controller; build one with NewGovernor and
// pass it via ExecOptions.Gov to share budgets across analyzers.
type Governor = govern.Controller

// NewGovernor returns an admission controller for cfg (zero value =
// defaults).
func NewGovernor(cfg GovernConfig) *Governor { return govern.New(cfg) }

// CostError is the typed up-front rejection for a query whose planner
// estimate exceeds its tenant's cost ceiling or memory budget; retrying
// without narrowing the query cannot succeed.
type CostError = govern.CostError

// ShedError is the typed overload rejection: the request was shed under
// load and carries a Retry-After hint.
type ShedError = govern.ShedError

// TypicalConfig parameterizes typical-pattern discovery.
type TypicalConfig = core.TypicalConfig

// TypicalView is the 2-D pattern navigator (view C).
type TypicalView = core.TypicalView

// Brush is a rectangular selection in the navigator.
type Brush = core.Brush

// GroupProfile is a brushed group's aggregated pattern (view B).
type GroupProfile = core.GroupProfile

// PatternLabel names a profile after the paper's canonical patterns.
type PatternLabel = core.PatternLabel

// Canonical labels.
const (
	LabelBimodal      = core.LabelBimodal
	LabelEnergySaving = core.LabelEnergySaving
	LabelIdle         = core.LabelIdle
	LabelConstantHigh = core.LabelConstantHigh
	LabelSuspicious   = core.LabelSuspicious
	LabelEarlyBird    = core.LabelEarlyBird
	LabelUnknown      = core.LabelUnknown
)

// ShiftConfig parameterizes shift-pattern discovery.
type ShiftConfig = core.ShiftConfig

// ShiftResult is a computed flow map (view A).
type ShiftResult = core.ShiftResult

// VQLOutput is one executed VQL statement: rows, plan explain, and the
// version metadata of the data the result was computed from. Execute
// statements with Analyzer.VQL:
//
//	out, err := an.VQL(ctx, "SELECT zone, sum(value) FROM meters GROUP BY zone")
type VQLOutput = core.VQLOutput

// Selection filters meters and time.
type Selection = query.Selection

// Granularity is a temporal bucketing unit.
type Granularity = query.Granularity

// The paper's seven granularities.
const (
	GranHourly    = query.GranHourly
	Gran4Hourly   = query.Gran4Hourly
	GranDaily     = query.GranDaily
	GranWeekly    = query.GranWeekly
	GranMonthly   = query.GranMonthly
	GranQuarterly = query.GranQuarterly
	GranYearly    = query.GranYearly
)

// ReductionMethod selects the dimension-reduction algorithm.
type ReductionMethod = reduce.Method

// Reduction methods (S1 compares t-SNE and MDS; SMACOF and PCA are the
// extended comparison set).
const (
	MethodTSNE   = reduce.MethodTSNE
	MethodMDS    = reduce.MethodMDS
	MethodSMACOF = reduce.MethodSMACOF
	MethodPCA    = reduce.MethodPCA
)

// Metric selects the series dissimilarity.
type Metric = reduce.Metric

// Metrics (the paper uses Pearson correlation distance).
const (
	MetricPearson   = reduce.MetricPearson
	MetricEuclidean = reduce.MetricEuclidean
)

// --- Presentation layer -----------------------------------------------------------

// StreamHub broadcasts live density updates to SSE subscribers.
type StreamHub = stream.Hub

// NewStreamHub returns an empty hub.
func NewStreamHub() *StreamHub { return stream.NewHub() }

// NewHTTPServer returns the VAP web application handler: JSON REST under
// /api/, SVG views under /view/, and the HTML shell at /. hub may be nil
// to disable the SSE endpoint.
func NewHTTPServer(an *Analyzer, hub *StreamHub) http.Handler {
	return api.NewServer(an, hub).Routes()
}

// --- Protocol-agnostic frontend core ---------------------------------------

// Session is one client conversation with the query core — tenant
// identity, per-session variables (deadline, format), statement counter
// — independent of the transport carrying it.
type Session = frontend.Session

// NewFrontendSession returns a session for a tenant (empty = default).
func NewFrontendSession(tenant string) *Session { return frontend.NewSession(tenant) }

// QueryCore owns the transport-neutral statement lifecycle: parse →
// plan → governance admission → execute → typed result → typed error
// taxonomy. The HTTP codec and the MySQL wire server are thin encoders
// over the same core.
type QueryCore = frontend.Core

// NewQueryCore returns a query core over an analyzer.
func NewQueryCore(an *Analyzer) *QueryCore { return frontend.NewCore(an) }

// StatementError classifies one statement failure identically for every
// transport (HTTP status, MySQL errno/SQLSTATE, retry hints).
type StatementError = frontend.Info

// MapStatementError classifies any statement error into the shared
// taxonomy — the single error→status table both transports render from.
func MapStatementError(err error) StatementError { return frontend.MapError(err) }

// --- MySQL wire-protocol server ---------------------------------------------

// WireConfig configures the MySQL wire-protocol server (listen address,
// user→tenant auth table, shared query core, timeouts).
type WireConfig = wire.Config

// WireServer serves the MySQL client/server protocol over a QueryCore:
// handshake v10, mysql_native_password auth, COM_QUERY text result sets.
type WireServer = wire.Server

// WireUsers maps wire usernames to credentials and governance tenants.
type WireUsers = wire.Users

// NewWireServer returns a wire server for cfg (cfg.Core is required).
func NewWireServer(cfg WireConfig) (*WireServer, error) { return wire.NewServer(cfg) }

// LoadWireUsers reads a username:password:tenant user file (empty path =
// a single password-less "vap" user on the default tenant).
func LoadWireUsers(path string) (WireUsers, error) { return wire.LoadUsers(path) }
