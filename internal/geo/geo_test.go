package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p  Point
		ok bool
	}{
		{Point{0, 0}, true},
		{Point{-180, -90}, true},
		{Point{180, 90}, true},
		{Point{181, 0}, false},
		{Point{0, 91}, false},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.Inf(1)}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.ok {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}

func TestDistanceToZero(t *testing.T) {
	p := Point{Lon: 12.5, Lat: 55.7}
	if d := p.DistanceTo(p); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDistanceToKnown(t *testing.T) {
	// Copenhagen to Aarhus is roughly 157 km great-circle.
	cph := Point{Lon: 12.5683, Lat: 55.6761}
	aar := Point{Lon: 10.2039, Lat: 56.1629}
	d := cph.DistanceTo(aar)
	if d < 150e3 || d > 165e3 {
		t.Errorf("CPH-AAR distance = %.0f m, want ~157 km", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2 float64) bool {
		p := Point{Lon: wrap(lon1, 180), Lat: wrap(lat1, 90)}
		q := Point{Lon: wrap(lon2, 180), Lat: wrap(lat2, 90)}
		d1 := p.DistanceTo(q)
		d2 := q.DistanceTo(p)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// wrap maps an arbitrary float into [-limit, limit].
func wrap(v, limit float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	m := math.Mod(v, 2*limit)
	if m > limit {
		m -= 2 * limit
	}
	if m < -limit {
		m += 2 * limit
	}
	return m
}

func TestBBoxContains(t *testing.T) {
	b := NewBBox(Point{0, 0}, Point{10, 10})
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	for _, p := range []Point{{-1, 5}, {5, 11}, {10.001, 0}} {
		if b.Contains(p) {
			t.Errorf("box should not contain %v", p)
		}
	}
}

func TestNewBBoxNormalizes(t *testing.T) {
	b := NewBBox(Point{10, 10}, Point{0, 0})
	if b.Min.Lon != 0 || b.Min.Lat != 0 || b.Max.Lon != 10 || b.Max.Lat != 10 {
		t.Errorf("NewBBox did not normalize corners: %+v", b)
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{10, 10})
	cases := []struct {
		b    BBox
		want bool
	}{
		{NewBBox(Point{5, 5}, Point{15, 15}), true},
		{NewBBox(Point{10, 10}, Point{20, 20}), true}, // edge touch
		{NewBBox(Point{11, 11}, Point{20, 20}), false},
		{NewBBox(Point{-5, -5}, Point{-1, -1}), false},
		{EmptyBBox(), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestEmptyBBox(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v, want 0", e.Area())
	}
	got := e.Extend(Point{3, 4})
	want := PointBox(Point{3, 4})
	if got != want {
		t.Errorf("Extend on empty = %v, want %v", got, want)
	}
}

func TestBBoxUnionIdentity(t *testing.T) {
	b := NewBBox(Point{1, 2}, Point{3, 4})
	if got := b.Union(EmptyBBox()); got != b {
		t.Errorf("Union with empty = %v, want %v", got, b)
	}
	if got := EmptyBBox().Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
}

func TestBBoxUnionCommutativeProperty(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2, d1, d2 float64) bool {
		a := NewBBox(Point{wrap(a1, 180), wrap(a2, 90)}, Point{wrap(b1, 180), wrap(b2, 90)})
		b := NewBBox(Point{wrap(c1, 180), wrap(c2, 90)}, Point{wrap(d1, 180), wrap(d2, 90)})
		return a.Union(b) == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxEnlargement(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{2, 2})
	inside := NewBBox(Point{1, 1}, Point{2, 2})
	if e := a.Enlargement(inside); e != 0 {
		t.Errorf("enlargement by contained box = %v, want 0", e)
	}
	outside := NewBBox(Point{0, 0}, Point{4, 2})
	if e := a.Enlargement(outside); e <= 0 {
		t.Errorf("enlargement by outside box = %v, want > 0", e)
	}
}

func TestBBoxCenterMargin(t *testing.T) {
	b := NewBBox(Point{0, 0}, Point{4, 2})
	if c := b.Center(); c != (Point{2, 1}) {
		t.Errorf("center = %v, want (2,1)", c)
	}
	if m := b.Margin(); m != 6 {
		t.Errorf("margin = %v, want 6", m)
	}
}

func TestBBoxBuffer(t *testing.T) {
	b := NewBBox(Point{1, 1}, Point{2, 2}).Buffer(0.5)
	if b.Min.Lon != 0.5 || b.Max.Lat != 2.5 {
		t.Errorf("buffered box wrong: %+v", b)
	}
}

func TestMercatorRoundTrip(t *testing.T) {
	f := func(lon, lat float64) bool {
		p := Point{Lon: wrap(lon, 179.9), Lat: wrap(lat, 84)} // web mercator clamps near poles
		x, y := Mercator(p)
		q := InverseMercator(x, y)
		return math.Abs(p.Lon-q.Lon) < 1e-9 && math.Abs(p.Lat-q.Lat) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMercatorCorners(t *testing.T) {
	x, y := Mercator(Point{Lon: 0, Lat: 0})
	if math.Abs(x-0.5) > 1e-12 || math.Abs(y-0.5) > 1e-12 {
		t.Errorf("equator/prime meridian maps to (%v,%v), want (0.5,0.5)", x, y)
	}
	x, _ = Mercator(Point{Lon: -180, Lat: 0})
	if math.Abs(x) > 1e-12 {
		t.Errorf("lon -180 maps to x=%v, want 0", x)
	}
}

func TestDestination(t *testing.T) {
	p := Point{Lon: 12.5, Lat: 55.7}
	north := Destination(p, 1000, 0)
	if north.Lat <= p.Lat || math.Abs(north.Lon-p.Lon) > 1e-9 {
		t.Errorf("north destination wrong: %v", north)
	}
	d := p.DistanceTo(north)
	if math.Abs(d-1000) > 5 {
		t.Errorf("north 1000m distance = %.1f", d)
	}
	east := Destination(p, 1000, 90)
	if east.Lon <= p.Lon {
		t.Errorf("east destination did not move east: %v", east)
	}
	if d := p.DistanceTo(east); math.Abs(d-1000) > 5 {
		t.Errorf("east 1000m distance = %.1f", d)
	}
}

func TestMetersPerDegreeLon(t *testing.T) {
	if m := MetersPerDegreeLon(0); math.Abs(m-MetersPerDegreeLat) > 1 {
		t.Errorf("at equator lon degree = %v, want ~lat degree", m)
	}
	if m := MetersPerDegreeLon(90); math.Abs(m) > 1e-6 {
		t.Errorf("at pole lon degree = %v, want ~0", m)
	}
	if m := MetersPerDegreeLon(60); math.Abs(m-MetersPerDegreeLat/2) > 100 {
		t.Errorf("at 60N lon degree = %v, want ~half of lat degree", m)
	}
}
