package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeGeohashKnown(t *testing.T) {
	// Reference value from the original geohash.org scheme.
	p := Point{Lon: -5.6, Lat: 42.6}
	if h := EncodeGeohash(p, 5); h != "ezs42" {
		t.Errorf("geohash(42.6N 5.6W, 5) = %q, want ezs42", h)
	}
}

func TestGeohashPrecisionClamp(t *testing.T) {
	p := Point{Lon: 12.5, Lat: 55.7}
	if h := EncodeGeohash(p, 0); len(h) != 1 {
		t.Errorf("precision 0 clamps to 1, got len %d", len(h))
	}
	if h := EncodeGeohash(p, 99); len(h) != 12 {
		t.Errorf("precision 99 clamps to 12, got len %d", len(h))
	}
}

func TestDecodeGeohashContainsOriginal(t *testing.T) {
	f := func(lon, lat float64, pRaw uint8) bool {
		p := Point{Lon: wrap(lon, 180), Lat: wrap(lat, 90)}
		prec := int(pRaw%11) + 1
		h := EncodeGeohash(p, prec)
		box, err := DecodeGeohash(h)
		if err != nil {
			return false
		}
		// Allow epsilon slack for points exactly on cell edges.
		return box.Buffer(1e-9).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGeohashRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "a!", "ilo", "u4pruydqqv?"} {
		if _, err := DecodeGeohash(bad); err == nil {
			t.Errorf("DecodeGeohash(%q) should fail", bad)
		}
	}
}

func TestDecodeGeohashCaseInsensitive(t *testing.T) {
	lower, err := DecodeGeohash("ezs42")
	if err != nil {
		t.Fatal(err)
	}
	upper, err := DecodeGeohash("EZS42")
	if err != nil {
		t.Fatal(err)
	}
	if lower != upper {
		t.Errorf("case sensitivity: %v vs %v", lower, upper)
	}
}

func TestGeohashCellShrinks(t *testing.T) {
	p := Point{Lon: 12.5683, Lat: 55.6761}
	prev := math.Inf(1)
	for prec := 1; prec <= 10; prec++ {
		box, err := DecodeGeohash(EncodeGeohash(p, prec))
		if err != nil {
			t.Fatal(err)
		}
		a := box.Area()
		if a >= prev {
			t.Errorf("precision %d area %v did not shrink from %v", prec, a, prev)
		}
		prev = a
	}
}

func TestGeohashCenter(t *testing.T) {
	p := Point{Lon: 12.5683, Lat: 55.6761}
	h := EncodeGeohash(p, 9)
	c, err := GeohashCenter(h)
	if err != nil {
		t.Fatal(err)
	}
	if p.DistanceTo(c) > 10 {
		t.Errorf("precision-9 center %.1f m from original", p.DistanceTo(c))
	}
}

func TestGeohashNeighbors(t *testing.T) {
	h := EncodeGeohash(Point{Lon: 12.5, Lat: 55.7}, 6)
	ns, err := GeohashNeighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("neighbors = %d, want 8", len(ns))
	}
	seen := map[string]bool{h: true}
	center, _ := DecodeGeohash(h)
	for _, n := range ns {
		if seen[n] {
			t.Errorf("duplicate or self neighbor %q", n)
		}
		seen[n] = true
		if len(n) != len(h) {
			t.Errorf("neighbor %q has precision %d, want %d", n, len(n), len(h))
		}
		nb, err := DecodeGeohash(n)
		if err != nil {
			t.Fatal(err)
		}
		// Each neighbor cell must touch the center cell.
		if !center.Buffer(1e-9).Intersects(nb) {
			t.Errorf("neighbor %q does not touch %q", n, h)
		}
	}
}

func TestGeohashNeighborsAtPole(t *testing.T) {
	h := EncodeGeohash(Point{Lon: 0, Lat: 89.9}, 3)
	ns, err := GeohashNeighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) >= 8 {
		t.Errorf("pole-adjacent cell should drop out-of-range neighbors, got %d", len(ns))
	}
}

func TestCoverBBox(t *testing.T) {
	box := NewBBox(Point{12.50, 55.60}, Point{12.60, 55.70})
	cover := CoverBBox(box, 5)
	if len(cover) == 0 {
		t.Fatal("empty cover")
	}
	// Every corner and the center must fall in some cover cell.
	probes := []Point{box.Min, box.Max, box.Center(),
		{Lon: box.Min.Lon, Lat: box.Max.Lat}, {Lon: box.Max.Lon, Lat: box.Min.Lat}}
	for _, p := range probes {
		found := false
		for _, h := range cover {
			cell, err := DecodeGeohash(h)
			if err != nil {
				t.Fatal(err)
			}
			if cell.Buffer(1e-9).Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("probe %v not covered", p)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, h := range cover {
		if seen[h] {
			t.Errorf("duplicate cover cell %q", h)
		}
		seen[h] = true
		if strings.ToLower(h) != h {
			t.Errorf("cover cell %q not lowercase", h)
		}
	}
}

func TestCoverBBoxEmpty(t *testing.T) {
	if c := CoverBBox(EmptyBBox(), 5); c != nil {
		t.Errorf("cover of empty box = %v, want nil", c)
	}
}
