package geo

import (
	"errors"
	"strings"
)

// base32 is the geohash alphabet (no a, i, l, o).
const base32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var base32Index = func() map[byte]int {
	m := make(map[byte]int, len(base32))
	for i := 0; i < len(base32); i++ {
		m[base32[i]] = i
	}
	return m
}()

// ErrInvalidGeohash is returned by Decode for malformed hashes.
var ErrInvalidGeohash = errors.New("geo: invalid geohash")

// EncodeGeohash returns the geohash of p with the given precision
// (number of base-32 characters, 1..12). Precision outside that range is
// clamped.
func EncodeGeohash(p Point, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	var sb strings.Builder
	sb.Grow(precision)
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	even := true
	bit := 0
	ch := 0
	for sb.Len() < precision {
		if even {
			mid := (lonMin + lonMax) / 2
			if p.Lon >= mid {
				ch = ch<<1 | 1
				lonMin = mid
			} else {
				ch <<= 1
				lonMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				ch = ch<<1 | 1
				latMin = mid
			} else {
				ch <<= 1
				latMax = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(base32[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String()
}

// DecodeGeohash returns the bounding box covered by the geohash cell.
func DecodeGeohash(hash string) (BBox, error) {
	if hash == "" {
		return BBox{}, ErrInvalidGeohash
	}
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	even := true
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		idx, ok := base32Index[c]
		if !ok {
			return BBox{}, ErrInvalidGeohash
		}
		for mask := 16; mask > 0; mask >>= 1 {
			if even {
				mid := (lonMin + lonMax) / 2
				if idx&mask != 0 {
					lonMin = mid
				} else {
					lonMax = mid
				}
			} else {
				mid := (latMin + latMax) / 2
				if idx&mask != 0 {
					latMin = mid
				} else {
					latMax = mid
				}
			}
			even = !even
		}
	}
	return BBox{
		Min: Point{Lon: lonMin, Lat: latMin},
		Max: Point{Lon: lonMax, Lat: latMax},
	}, nil
}

// GeohashCenter decodes the hash and returns its cell center.
func GeohashCenter(hash string) (Point, error) {
	b, err := DecodeGeohash(hash)
	if err != nil {
		return Point{}, err
	}
	return b.Center(), nil
}

// GeohashNeighbors returns the geohashes of the 8 cells surrounding the
// given cell, in row-major order starting at the north-west neighbor. Cells
// falling outside the legal lat range are omitted.
func GeohashNeighbors(hash string) ([]string, error) {
	box, err := DecodeGeohash(hash)
	if err != nil {
		return nil, err
	}
	c := box.Center()
	dLon := box.Max.Lon - box.Min.Lon
	dLat := box.Max.Lat - box.Min.Lat
	out := make([]string, 0, 8)
	for _, dy := range []float64{1, 0, -1} {
		for _, dx := range []float64{-1, 0, 1} {
			if dx == 0 && dy == 0 {
				continue
			}
			p := Point{Lon: c.Lon + dx*dLon, Lat: c.Lat + dy*dLat}
			// Wrap longitude; clamp latitude by skipping illegal cells.
			if p.Lon > 180 {
				p.Lon -= 360
			}
			if p.Lon < -180 {
				p.Lon += 360
			}
			if p.Lat > 90 || p.Lat < -90 {
				continue
			}
			out = append(out, EncodeGeohash(p, len(hash)))
		}
	}
	return out, nil
}

// CoverBBox returns a set of geohash prefixes at the given precision that
// together cover box. The result is deduplicated and sorted by construction
// order (row-major, south-west to north-east).
func CoverBBox(box BBox, precision int) []string {
	if box.IsEmpty() {
		return nil
	}
	// Cell size at this precision, derived from a probe cell.
	probe, _ := DecodeGeohash(EncodeGeohash(box.Min, precision))
	dLon := probe.Max.Lon - probe.Min.Lon
	dLat := probe.Max.Lat - probe.Min.Lat
	seen := make(map[string]bool)
	var out []string
	for lat := box.Min.Lat; ; lat += dLat {
		clampedLat := lat
		if clampedLat > box.Max.Lat {
			clampedLat = box.Max.Lat
		}
		for lon := box.Min.Lon; ; lon += dLon {
			clampedLon := lon
			if clampedLon > box.Max.Lon {
				clampedLon = box.Max.Lon
			}
			h := EncodeGeohash(Point{Lon: clampedLon, Lat: clampedLat}, precision)
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
			if lon >= box.Max.Lon {
				break
			}
		}
		if lat >= box.Max.Lat {
			break
		}
	}
	return out
}
