// Package geo provides the geographic primitives used throughout VAP:
// points, bounding boxes, great-circle distance, a Web-Mercator projection
// for rendering, and geohash encoding for coarse spatial bucketing.
//
// All longitudes are in degrees east in [-180, 180] and latitudes in degrees
// north in [-90, 90]. Distances are in meters unless stated otherwise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by Haversine.
const EarthRadiusMeters = 6371008.8

// Point is a geographic location (longitude, latitude) in degrees.
// The ordering matches the paper's x_i = (lon_i, lat_i)^T convention.
type Point struct {
	Lon float64 `json:"lon"`
	Lat float64 `json:"lat"`
}

// Valid reports whether the point lies within the legal lon/lat ranges and
// contains no NaN or Inf coordinates.
func (p Point) Valid() bool {
	if math.IsNaN(p.Lon) || math.IsNaN(p.Lat) || math.IsInf(p.Lon, 0) || math.IsInf(p.Lat, 0) {
		return false
	}
	return p.Lon >= -180 && p.Lon <= 180 && p.Lat >= -90 && p.Lat <= 90
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lon, p.Lat)
}

// DistanceTo returns the great-circle distance in meters between p and q
// using the Haversine formula.
func (p Point) DistanceTo(q Point) float64 {
	const d = math.Pi / 180
	lat1 := p.Lat * d
	lat2 := q.Lat * d
	dLat := (q.Lat - p.Lat) * d
	dLon := (q.Lon - p.Lon) * d
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// BBox is an axis-aligned geographic bounding box. Min is the south-west
// corner and Max the north-east corner. Boxes crossing the antimeridian are
// not supported; VAP study areas are city-scale.
type BBox struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewBBox returns the bounding box with the given corners, normalising the
// corner ordering so that Min <= Max on both axes.
func NewBBox(a, b Point) BBox {
	return BBox{
		Min: Point{Lon: math.Min(a.Lon, b.Lon), Lat: math.Min(a.Lat, b.Lat)},
		Max: Point{Lon: math.Max(a.Lon, b.Lon), Lat: math.Max(a.Lat, b.Lat)},
	}
}

// EmptyBBox returns an inverted box suitable as the identity for Extend.
func EmptyBBox() BBox {
	return BBox{
		Min: Point{Lon: math.Inf(1), Lat: math.Inf(1)},
		Max: Point{Lon: math.Inf(-1), Lat: math.Inf(-1)},
	}
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool {
	return b.Min.Lon > b.Max.Lon || b.Min.Lat > b.Max.Lat
}

// Contains reports whether p lies inside b (inclusive of edges).
func (b BBox) Contains(p Point) bool {
	return p.Lon >= b.Min.Lon && p.Lon <= b.Max.Lon &&
		p.Lat >= b.Min.Lat && p.Lat <= b.Max.Lat
}

// Intersects reports whether b and o share any area or edge.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.Min.Lon <= o.Max.Lon && b.Max.Lon >= o.Min.Lon &&
		b.Min.Lat <= o.Max.Lat && b.Max.Lat >= o.Min.Lat
}

// Extend returns the smallest box containing both b and p.
func (b BBox) Extend(p Point) BBox {
	return BBox{
		Min: Point{Lon: math.Min(b.Min.Lon, p.Lon), Lat: math.Min(b.Min.Lat, p.Lat)},
		Max: Point{Lon: math.Max(b.Max.Lon, p.Lon), Lat: math.Max(b.Max.Lat, p.Lat)},
	}
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		Min: Point{Lon: math.Min(b.Min.Lon, o.Min.Lon), Lat: math.Min(b.Min.Lat, o.Min.Lat)},
		Max: Point{Lon: math.Max(b.Max.Lon, o.Max.Lon), Lat: math.Max(b.Max.Lat, o.Max.Lat)},
	}
}

// Area returns the box area in square degrees. It is used only for R-tree
// split heuristics, where degree-space area is an adequate proxy at city
// scale.
func (b BBox) Area() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.Max.Lon - b.Min.Lon) * (b.Max.Lat - b.Min.Lat)
}

// Enlargement returns how much b's area would grow if extended to cover o.
func (b BBox) Enlargement(o BBox) float64 {
	return b.Union(o).Area() - b.Area()
}

// Center returns the box midpoint.
func (b BBox) Center() Point {
	return Point{Lon: (b.Min.Lon + b.Max.Lon) / 2, Lat: (b.Min.Lat + b.Max.Lat) / 2}
}

// Margin returns the half-perimeter of the box, used by split heuristics.
func (b BBox) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.Max.Lon - b.Min.Lon) + (b.Max.Lat - b.Min.Lat)
}

// Buffer returns the box grown by d degrees on every side.
func (b BBox) Buffer(d float64) BBox {
	return BBox{
		Min: Point{Lon: b.Min.Lon - d, Lat: b.Min.Lat - d},
		Max: Point{Lon: b.Max.Lon + d, Lat: b.Max.Lat + d},
	}
}

// PointBox returns the degenerate box covering exactly p.
func PointBox(p Point) BBox { return BBox{Min: p, Max: p} }

// Mercator projects a geographic point to Web-Mercator "world" coordinates
// in [0,1]x[0,1], with (0,0) at the north-west corner, matching the
// convention of slippy-map tiles used by Leaflet.
func Mercator(p Point) (x, y float64) {
	x = (p.Lon + 180) / 360
	latRad := p.Lat * math.Pi / 180
	y = (1 - math.Log(math.Tan(latRad)+1/math.Cos(latRad))/math.Pi) / 2
	return x, y
}

// InverseMercator converts Web-Mercator world coordinates back to lon/lat.
func InverseMercator(x, y float64) Point {
	lon := x*360 - 180
	n := math.Pi - 2*math.Pi*y
	lat := 180 / math.Pi * math.Atan(0.5*(math.Exp(n)-math.Exp(-n)))
	return Point{Lon: lon, Lat: lat}
}

// MetersPerDegreeLat is the approximate north-south extent of one degree of
// latitude.
const MetersPerDegreeLat = 111132.954

// MetersPerDegreeLon returns the east-west extent of one degree of longitude
// at the given latitude.
func MetersPerDegreeLon(lat float64) float64 {
	return MetersPerDegreeLat * math.Cos(lat*math.Pi/180)
}

// Destination returns the point reached by moving from p the given distance
// in meters along the given bearing in degrees (0 = north, 90 = east). It
// uses a local flat-earth approximation, accurate at the city scales VAP
// operates on.
func Destination(p Point, distanceM, bearingDeg float64) Point {
	rad := bearingDeg * math.Pi / 180
	dNorth := distanceM * math.Cos(rad)
	dEast := distanceM * math.Sin(rad)
	return Point{
		Lon: p.Lon + dEast/MetersPerDegreeLon(p.Lat),
		Lat: p.Lat + dNorth/MetersPerDegreeLat,
	}
}
