// Package clean implements the preprocessing stage of the VAP framework
// (Figure 1): "removal of anomalies and correction of missing values".
// It provides robust anomaly detectors (global robust z-score, Hampel
// sliding window), gap detection, and several imputation strategies
// (linear interpolation, seasonal-naive fill, forward fill).
package clean

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vap/internal/stat"
	"vap/internal/store"
)

// ErrEmpty is returned for operations on empty inputs.
var ErrEmpty = errors.New("clean: empty input")

// AnomalyMethod selects a detection algorithm.
type AnomalyMethod string

// Available anomaly detectors.
const (
	// MethodRobustZ flags samples whose robust z-score (median/MAD based)
	// exceeds the threshold — a global detector good for one-off spikes.
	MethodRobustZ AnomalyMethod = "robust_z"
	// MethodHampel applies a sliding-window median filter and flags samples
	// deviating from the local median by more than threshold * local MAD.
	MethodHampel AnomalyMethod = "hampel"
	// MethodNegative flags physically impossible negative consumption.
	MethodNegative AnomalyMethod = "negative"
)

// AnomalyConfig tunes detection.
type AnomalyConfig struct {
	Method    AnomalyMethod
	Threshold float64 // z-score threshold; default 4
	Window    int     // Hampel half-window in samples; default 12
}

func (c *AnomalyConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.Window <= 0 {
		c.Window = 12
	}
	if c.Method == "" {
		c.Method = MethodHampel
	}
}

// DetectAnomalies returns the indexes of samples flagged as anomalous,
// sorted ascending.
func DetectAnomalies(samples []store.Sample, cfg AnomalyConfig) ([]int, error) {
	cfg.defaults()
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	values := make([]float64, len(samples))
	for i, s := range samples {
		values[i] = s.Value
	}
	switch cfg.Method {
	case MethodRobustZ:
		z := stat.ZScoresRobust(values)
		var out []int
		for i, s := range z {
			if math.Abs(s) > cfg.Threshold || values[i] < 0 || math.IsNaN(values[i]) {
				out = append(out, i)
			}
		}
		return out, nil
	case MethodHampel:
		return hampel(values, cfg.Window, cfg.Threshold), nil
	case MethodNegative:
		var out []int
		for i, v := range values {
			if v < 0 || math.IsNaN(v) {
				out = append(out, i)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("clean: unknown anomaly method %q", cfg.Method)
	}
}

// hampel flags index i when |x_i - median(window)| > t * 1.4826 * MAD(window).
func hampel(x []float64, half int, t float64) []int {
	n := len(x)
	var out []int
	win := make([]float64, 0, 2*half+1)
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		win = win[:0]
		for j := lo; j <= hi; j++ {
			win = append(win, x[j])
		}
		med := stat.Median(win)
		mad := stat.MAD(win) * 1.4826
		if math.IsNaN(x[i]) || x[i] < 0 {
			out = append(out, i)
			continue
		}
		if mad == 0 {
			continue
		}
		if math.Abs(x[i]-med) > t*mad {
			out = append(out, i)
		}
	}
	return out
}

// RemoveIndexes returns samples with the given (sorted or unsorted) indexes
// removed.
func RemoveIndexes(samples []store.Sample, idx []int) []store.Sample {
	if len(idx) == 0 {
		return append([]store.Sample(nil), samples...)
	}
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := make([]store.Sample, 0, len(samples)-len(idx))
	for i, s := range samples {
		if !drop[i] {
			out = append(out, s)
		}
	}
	return out
}

// Gap is a missing stretch in a regular series.
type Gap struct {
	AfterTS  int64 // last present timestamp before the gap
	BeforeTS int64 // first present timestamp after the gap
	Missing  int   // number of absent samples
}

// FindGaps locates missing samples assuming a regular cadence of stepSec.
func FindGaps(samples []store.Sample, stepSec int64) ([]Gap, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("clean: step must be positive, got %d", stepSec)
	}
	var out []Gap
	for i := 1; i < len(samples); i++ {
		d := samples[i].TS - samples[i-1].TS
		if d > stepSec {
			out = append(out, Gap{
				AfterTS:  samples[i-1].TS,
				BeforeTS: samples[i].TS,
				Missing:  int(d/stepSec) - 1,
			})
		}
	}
	return out, nil
}

// FillMethod selects an imputation strategy.
type FillMethod string

// Available imputation strategies.
const (
	// FillLinear interpolates linearly between gap endpoints.
	FillLinear FillMethod = "linear"
	// FillForward repeats the last observed value.
	FillForward FillMethod = "forward"
	// FillSeasonal copies the value one season (period) earlier when
	// available, falling back to linear interpolation.
	FillSeasonal FillMethod = "seasonal"
)

// FillGaps returns a regular series at stepSec cadence with all gaps filled
// using the chosen method. period is the season length in samples for
// FillSeasonal (e.g., 24 for daily seasonality at hourly cadence).
func FillGaps(samples []store.Sample, stepSec int64, method FillMethod, period int) ([]store.Sample, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("clean: step must be positive, got %d", stepSec)
	}
	if method == FillSeasonal && period <= 0 {
		return nil, fmt.Errorf("clean: seasonal fill needs a positive period")
	}
	first := samples[0].TS
	last := samples[len(samples)-1].TS
	n := int((last-first)/stepSec) + 1
	out := make([]store.Sample, 0, n)
	present := make(map[int64]float64, len(samples))
	for _, s := range samples {
		present[s.TS] = s.Value
	}
	// Collect the observed grid values; off-grid samples snap to the
	// nearest grid slot (first writer wins).
	for ts := first; ts <= last; ts += stepSec {
		if v, ok := present[ts]; ok {
			out = append(out, store.Sample{TS: ts, Value: v})
		} else {
			out = append(out, store.Sample{TS: ts, Value: math.NaN()})
		}
	}
	switch method {
	case FillForward:
		for i := range out {
			if math.IsNaN(out[i].Value) {
				if i == 0 {
					out[i].Value = firstValid(out)
				} else {
					out[i].Value = out[i-1].Value
				}
			}
		}
	case FillLinear:
		fillLinear(out)
	case FillSeasonal:
		for i := range out {
			if math.IsNaN(out[i].Value) && i-period >= 0 && !math.IsNaN(out[i-period].Value) {
				out[i].Value = out[i-period].Value
			}
		}
		fillLinear(out) // whatever remains
	default:
		return nil, fmt.Errorf("clean: unknown fill method %q", method)
	}
	return out, nil
}

func firstValid(s []store.Sample) float64 {
	for _, x := range s {
		if !math.IsNaN(x.Value) {
			return x.Value
		}
	}
	return 0
}

// fillLinear interpolates NaN runs in place; leading/trailing runs are
// extended flat from the nearest valid value.
func fillLinear(s []store.Sample) {
	n := len(s)
	i := 0
	for i < n {
		if !math.IsNaN(s[i].Value) {
			i++
			continue
		}
		// Find the run [i, j).
		j := i
		for j < n && math.IsNaN(s[j].Value) {
			j++
		}
		var left, right float64
		hasLeft := i > 0
		hasRight := j < n
		if hasLeft {
			left = s[i-1].Value
		}
		if hasRight {
			right = s[j].Value
		}
		switch {
		case hasLeft && hasRight:
			span := float64(j - i + 1)
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / span
				s[k].Value = left + (right-left)*frac
			}
		case hasLeft:
			for k := i; k < j; k++ {
				s[k].Value = left
			}
		case hasRight:
			for k := i; k < j; k++ {
				s[k].Value = right
			}
		default:
			for k := i; k < j; k++ {
				s[k].Value = 0
			}
		}
		i = j
	}
}

// Report summarizes a preprocessing pass.
type Report struct {
	Input     int `json:"input"`
	Anomalies int `json:"anomalies"`
	GapCount  int `json:"gaps"`
	Filled    int `json:"filled"`
	Output    int `json:"output"`
}

// Pipeline runs the full preprocessing pass the paper describes: detect and
// remove anomalies, then fill missing values, returning a regular series.
func Pipeline(samples []store.Sample, stepSec int64, acfg AnomalyConfig, fill FillMethod, period int) ([]store.Sample, Report, error) {
	rep := Report{Input: len(samples)}
	if len(samples) == 0 {
		return nil, rep, ErrEmpty
	}
	anoms, err := DetectAnomalies(samples, acfg)
	if err != nil {
		return nil, rep, err
	}
	rep.Anomalies = len(anoms)
	kept := RemoveIndexes(samples, anoms)
	if len(kept) == 0 {
		return nil, rep, errors.New("clean: all samples flagged anomalous")
	}
	gaps, err := FindGaps(kept, stepSec)
	if err != nil {
		return nil, rep, err
	}
	rep.GapCount = len(gaps)
	filled, err := FillGaps(kept, stepSec, fill, period)
	if err != nil {
		return nil, rep, err
	}
	rep.Filled = len(filled) - len(kept)
	rep.Output = len(filled)
	return filled, rep, nil
}

// SortSamples orders samples by timestamp ascending (stable), dropping
// exact-duplicate timestamps (keeping the first).
func SortSamples(samples []store.Sample) []store.Sample {
	out := append([]store.Sample(nil), samples...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	dedup := out[:0]
	var lastTS int64
	for i, s := range out {
		if i > 0 && s.TS == lastTS {
			continue
		}
		dedup = append(dedup, s)
		lastTS = s.TS
	}
	return dedup
}
