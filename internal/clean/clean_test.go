package clean

import (
	"math"
	"testing"

	"vap/internal/store"
)

func regular(n int, step int64, f func(i int) float64) []store.Sample {
	out := make([]store.Sample, n)
	for i := range out {
		out[i] = store.Sample{TS: int64(i) * step, Value: f(i)}
	}
	return out
}

func TestDetectAnomaliesRobustZ(t *testing.T) {
	s := regular(100, 3600, func(i int) float64 {
		if i == 50 {
			return 500
		}
		return 10 + float64(i%5)
	})
	idx, err := DetectAnomalies(s, AnomalyConfig{Method: MethodRobustZ})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 50 {
		t.Fatalf("anomalies = %v, want [50]", idx)
	}
}

func TestDetectAnomaliesHampelLocal(t *testing.T) {
	// A level shift halfway: Hampel (local) must not flag the new level,
	// only the lone spike.
	s := regular(200, 3600, func(i int) float64 {
		base := 10.0
		if i >= 100 {
			base = 50
		}
		if i == 150 {
			return 500
		}
		return base + float64(i%3)
	})
	idx, err := DetectAnomalies(s, AnomalyConfig{Method: MethodHampel, Window: 10, Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range idx {
		if i == 150 {
			found = true
		}
		// Allow boundary effects right at the level shift, nothing else.
		if i != 150 && (i < 95 || i > 105) {
			t.Fatalf("hampel flagged steady region index %d", i)
		}
	}
	if !found {
		t.Fatal("hampel missed the spike at 150")
	}
}

func TestDetectAnomaliesNegative(t *testing.T) {
	s := regular(10, 60, func(i int) float64 {
		if i == 3 {
			return -5
		}
		return 1
	})
	idx, err := DetectAnomalies(s, AnomalyConfig{Method: MethodNegative})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 3 {
		t.Fatalf("negatives = %v", idx)
	}
}

func TestDetectAnomaliesErrors(t *testing.T) {
	if _, err := DetectAnomalies(nil, AnomalyConfig{}); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := DetectAnomalies(regular(5, 1, func(int) float64 { return 1 }),
		AnomalyConfig{Method: "magic"}); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestRemoveIndexes(t *testing.T) {
	s := regular(5, 1, func(i int) float64 { return float64(i) })
	out := RemoveIndexes(s, []int{1, 3})
	if len(out) != 3 || out[0].Value != 0 || out[1].Value != 2 || out[2].Value != 4 {
		t.Fatalf("out = %v", out)
	}
	// No indexes: copy.
	cp := RemoveIndexes(s, nil)
	if len(cp) != 5 {
		t.Fatal("nil removal changed length")
	}
	cp[0].Value = 99
	if s[0].Value == 99 {
		t.Fatal("RemoveIndexes aliased its input")
	}
}

func TestFindGaps(t *testing.T) {
	s := []store.Sample{
		{TS: 0, Value: 1}, {TS: 3600, Value: 1},
		{TS: 4 * 3600, Value: 1}, // 2 missing
		{TS: 5 * 3600, Value: 1},
	}
	gaps, err := FindGaps(s, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	if gaps[0].Missing != 2 || gaps[0].AfterTS != 3600 || gaps[0].BeforeTS != 4*3600 {
		t.Fatalf("gap = %+v", gaps[0])
	}
	if _, err := FindGaps(s, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestFillGapsLinear(t *testing.T) {
	s := []store.Sample{
		{TS: 0, Value: 0}, {TS: 3 * 3600, Value: 9},
	}
	out, err := FillGaps(s, 3600, FillLinear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("filled length = %d", len(out))
	}
	want := []float64{0, 3, 6, 9}
	for i, w := range want {
		if math.Abs(out[i].Value-w) > 1e-9 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i].Value, w)
		}
	}
}

func TestFillGapsForward(t *testing.T) {
	s := []store.Sample{{TS: 0, Value: 7}, {TS: 3 * 60, Value: 1}}
	out, err := FillGaps(s, 60, FillForward, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Value != 7 || out[2].Value != 7 {
		t.Fatalf("forward fill = %v", out)
	}
}

func TestFillGapsSeasonal(t *testing.T) {
	// Period 4; values cycle 1,2,3,4. Drop one full cycle position and it
	// should come back from one period earlier.
	var s []store.Sample
	for i := 0; i < 12; i++ {
		if i == 6 {
			continue // missing
		}
		s = append(s, store.Sample{TS: int64(i) * 60, Value: float64(i%4 + 1)})
	}
	out, err := FillGaps(s, 60, FillSeasonal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out[6].Value != float64(6%4+1) {
		t.Fatalf("seasonal fill = %v, want %v", out[6].Value, 6%4+1)
	}
	if _, err := FillGaps(s, 60, FillSeasonal, 0); err == nil {
		t.Error("seasonal without period should fail")
	}
}

func TestFillGapsUnknownMethod(t *testing.T) {
	s := regular(3, 60, func(i int) float64 { return 1 })
	if _, err := FillGaps(s, 60, "spline", 0); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// Clean series with a spike and two missing readings.
	var s []store.Sample
	for i := 0; i < 120; i++ {
		if i == 40 || i == 41 {
			continue
		}
		v := 5 + math.Sin(float64(i)/24*2*math.Pi)
		if i == 80 {
			v = 300
		}
		s = append(s, store.Sample{TS: int64(i) * 3600, Value: v})
	}
	out, rep, err := Pipeline(s, 3600, AnomalyConfig{Method: MethodHampel}, FillSeasonal, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Anomalies < 1 {
		t.Errorf("report anomalies = %d, want >= 1", rep.Anomalies)
	}
	if rep.GapCount < 1 {
		t.Errorf("report gaps = %d, want >= 1", rep.GapCount)
	}
	if len(out) != 120 {
		t.Fatalf("pipeline output = %d samples, want 120 (regular)", len(out))
	}
	// Regular cadence, no NaNs, spike removed.
	for i, smp := range out {
		if smp.TS != int64(i)*3600 {
			t.Fatalf("irregular output at %d", i)
		}
		if math.IsNaN(smp.Value) {
			t.Fatalf("NaN at %d", i)
		}
		if smp.Value > 100 {
			t.Fatalf("spike survived at %d: %v", i, smp.Value)
		}
	}
}

func TestSortSamples(t *testing.T) {
	s := []store.Sample{
		{TS: 30, Value: 3}, {TS: 10, Value: 1}, {TS: 20, Value: 2},
		{TS: 10, Value: 99}, // duplicate ts, dropped
	}
	out := SortSamples(s)
	if len(out) != 3 {
		t.Fatalf("deduped = %d", len(out))
	}
	if out[0].TS != 10 || out[0].Value != 1 {
		t.Fatalf("first = %+v (must keep first occurrence)", out[0])
	}
	if out[2].TS != 30 {
		t.Fatalf("order wrong: %+v", out)
	}
}
