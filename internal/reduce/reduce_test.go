package reduce

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vap/internal/stat"
)

// threeClusters builds n rows in 3 well-separated groups of distinct
// shapes (for Pearson) and magnitudes (for Euclidean), returning rows and
// ground-truth labels.
func threeClusters(n, dim int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		g := i % 3
		labels[i] = g
		row := make([]float64, dim)
		for j := range row {
			x := float64(j) / float64(dim) * 2 * math.Pi
			switch g {
			case 0:
				row[j] = math.Sin(x)*2 + 5
			case 1:
				row[j] = math.Cos(2*x)*3 + 1
			default:
				row[j] = float64(j)/float64(dim)*4 - 2 // linear ramp
			}
			row[j] += rng.NormFloat64() * 0.15
		}
		rows[i] = row
	}
	return rows, labels
}

func TestDistanceMatrixProperties(t *testing.T) {
	rows, _ := threeClusters(12, 24, 1)
	for _, m := range []Metric{MetricPearson, MetricEuclidean} {
		d, err := DistanceMatrix(rows, m)
		if err != nil {
			t.Fatal(err)
		}
		n := len(rows)
		for i := 0; i < n; i++ {
			if d[i][i] != 0 {
				t.Fatalf("%s: d[%d][%d] = %v, want 0", m, i, i, d[i][i])
			}
			for j := 0; j < n; j++ {
				if d[i][j] != d[j][i] {
					t.Fatalf("%s: asymmetric at %d,%d", m, i, j)
				}
				if d[i][j] < 0 {
					t.Fatalf("%s: negative distance", m)
				}
			}
		}
	}
}

func TestDistanceMatrixErrors(t *testing.T) {
	if _, err := DistanceMatrix(nil, MetricPearson); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DistanceMatrix([][]float64{{1, 2}, {1}}, MetricPearson); err == nil {
		t.Error("ragged should fail")
	}
	if _, err := DistanceMatrix([][]float64{{1, 2}}, "cosine"); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	rows, labels := threeClusters(60, 32, 2)
	d, err := DistanceMatrix(rows, MetricPearson)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TSNE(context.Background(), d, TSNEConfig{Seed: 3, Iterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Embedding) != 60 {
		t.Fatalf("embedding size = %d", len(res.Embedding))
	}
	knn, err := stat.NeighborhoodPurity(60, 5, labels, func(i, j int) float64 {
		return res.Embedding.Dist(i, j)
	})
	if err != nil {
		t.Fatal(err)
	}
	if knn < 0.9 {
		t.Errorf("t-SNE knn purity = %.3f, want >= 0.9", knn)
	}
	if res.KL < 0 {
		t.Errorf("KL divergence = %v, must be >= 0", res.KL)
	}
	if len(res.KLTrace) == 0 {
		t.Error("no KL trace recorded")
	}
}

func TestTSNEKLDecreases(t *testing.T) {
	rows, _ := threeClusters(45, 24, 5)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	res, err := TSNE(context.Background(), d, TSNEConfig{Seed: 1, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	first := res.KLTrace[0]
	last := res.KLTrace[len(res.KLTrace)-1]
	if last >= first {
		t.Errorf("KL did not decrease: %v -> %v", first, last)
	}
}

func TestTSNECancellation(t *testing.T) {
	rows, _ := threeClusters(40, 16, 1)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TSNE(ctx, d, TSNEConfig{}); err == nil {
		t.Error("cancelled context should abort t-SNE")
	}
}

func TestTSNEErrors(t *testing.T) {
	if _, err := TSNE(context.Background(), [][]float64{{0}}, TSNEConfig{}); err == nil {
		t.Error("n<2 should fail")
	}
	bad := [][]float64{{0, 1}, {1}}
	if _, err := TSNE(context.Background(), bad, TSNEConfig{}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestTSNEDeterministicForSeed(t *testing.T) {
	rows, _ := threeClusters(30, 16, 9)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	a, err := TSNE(context.Background(), d, TSNEConfig{Seed: 5, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TSNE(context.Background(), d, TSNEConfig{Seed: 5, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Embedding {
		if a.Embedding[i] != b.Embedding[i] {
			t.Fatalf("nondeterministic embedding at %d", i)
		}
	}
}

func TestClassicalMDSRecoversLineGeometry(t *testing.T) {
	// Distances of points on a line: 0, 3, 7 -> classical MDS must embed
	// with pairwise distances preserved exactly (the input is Euclidean).
	d := [][]float64{
		{0, 3, 7},
		{3, 0, 4},
		{7, 4, 0},
	}
	emb, err := ClassicalMDS(d)
	if err != nil {
		t.Fatal(err)
	}
	check := func(i, j int, want float64) {
		got := emb.Dist(i, j)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("embedded d(%d,%d) = %v, want %v", i, j, got, want)
		}
	}
	check(0, 1, 3)
	check(1, 2, 4)
	check(0, 2, 7)
}

func TestClassicalMDSLargeUsesPowerIteration(t *testing.T) {
	rows, labels := threeClusters(90, 24, 4) // > jacobiCutoff
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	emb, err := ClassicalMDS(d)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := stat.NeighborhoodPurity(90, 5, labels, func(i, j int) float64 {
		return emb.Dist(i, j)
	})
	if err != nil {
		t.Fatal(err)
	}
	if knn < 0.85 {
		t.Errorf("large MDS knn purity = %.3f", knn)
	}
}

func TestSMACOFReducesStress(t *testing.T) {
	rows, _ := threeClusters(40, 24, 6)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	res, err := SMACOF(context.Background(), d, SMACOFConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stress of a random layout for comparison.
	rng := rand.New(rand.NewSource(2))
	randEmb := make(Embedding, 40)
	for i := range randEmb {
		randEmb[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	if res.Stress >= stress(d, randEmb) {
		t.Errorf("SMACOF stress %v not below random layout %v", res.Stress, stress(d, randEmb))
	}
}

func TestSMACOFCancellation(t *testing.T) {
	rows, _ := threeClusters(20, 8, 1)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SMACOF(ctx, d, SMACOFConfig{}); err == nil {
		t.Error("cancelled context should abort SMACOF")
	}
}

func TestPCAKnownDirection(t *testing.T) {
	// Points mostly varying along (1,1): PC1 must align with it.
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 80)
	for i := range rows {
		t1 := rng.NormFloat64() * 5
		t2 := rng.NormFloat64() * 0.2
		rows[i] = []float64{t1 + t2, t1 - t2}
	}
	emb, err := PCA(rows)
	if err != nil {
		t.Fatal(err)
	}
	// The first embedding coordinate must carry most variance.
	var v1, v2 []float64
	for _, p := range emb {
		v1 = append(v1, p[0])
		v2 = append(v2, p[1])
	}
	if stat.Variance(v1) < 10*stat.Variance(v2) {
		t.Errorf("PC1 var %v not dominant over PC2 var %v", stat.Variance(v1), stat.Variance(v2))
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA([][]float64{{1, 2}}); err == nil {
		t.Error("n<2 should fail")
	}
	if _, err := PCA([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged should fail")
	}
}

func TestReduceDispatch(t *testing.T) {
	rows, _ := threeClusters(24, 12, 3)
	ctx := context.Background()
	for _, m := range []Method{MethodTSNE, MethodMDS, MethodSMACOF, MethodPCA} {
		emb, err := Reduce(ctx, rows, m, MetricPearson, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(emb) != 24 {
			t.Fatalf("%s: embedding size %d", m, len(emb))
		}
	}
	if _, err := Reduce(ctx, rows, "umap", MetricPearson, 1); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestEmbeddingNormalize01(t *testing.T) {
	e := Embedding{{-3, 10}, {7, 20}, {2, 15}}
	e.Normalize01()
	minX, minY, maxX, maxY := e.Bounds()
	if minX != 0 || maxX != 1 || minY != 0 || maxY != 1 {
		t.Errorf("bounds after normalize = %v %v %v %v", minX, minY, maxX, maxY)
	}
	// Degenerate axis maps to 0.5.
	flat := Embedding{{1, 5}, {2, 5}}
	flat.Normalize01()
	if flat[0][1] != 0.5 || flat[1][1] != 0.5 {
		t.Errorf("degenerate axis = %v", flat)
	}
}

func TestEmbeddingNormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(30))
		e := make(Embedding, n)
		for i := range e {
			e[i] = [2]float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		}
		e.Normalize01()
		for _, p := range e {
			if p[0] < -1e-12 || p[0] > 1+1e-12 || p[1] < -1e-12 || p[1] > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPerplexitySearchHitsTarget(t *testing.T) {
	rows, _ := threeClusters(50, 16, 7)
	d, _ := DistanceMatrix(rows, MetricEuclidean)
	perp := 12.0
	cond := perplexitySearch(d, perp)
	for i, row := range cond {
		// Row must be a probability distribution.
		sum := 0.0
		h := 0.0
		for j, p := range row {
			if j == i {
				continue
			}
			sum += p
			if p > 1e-300 {
				h -= p * math.Log(p)
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		if math.Abs(math.Exp(h)-perp) > 0.5 {
			t.Fatalf("row %d perplexity = %v, want ~%v", i, math.Exp(h), perp)
		}
	}
}

func TestDistanceMatrixParallelMatchesSerial(t *testing.T) {
	rows, _ := threeClusters(33, 48, 7)
	for _, m := range []Metric{MetricPearson, MetricEuclidean} {
		serial, err := DistanceMatrix(rows, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 0} {
			par, err := DistanceMatrixCtx(context.Background(), rows, m, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m, workers, err)
			}
			for i := range serial {
				for j := range serial[i] {
					if par[i][j] != serial[i][j] {
						t.Fatalf("%s workers=%d: d[%d][%d] = %v, serial %v",
							m, workers, i, j, par[i][j], serial[i][j])
					}
				}
			}
		}
	}
}

func TestDistanceMatrixCtxCancelled(t *testing.T) {
	rows, _ := threeClusters(60, 48, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DistanceMatrixCtx(ctx, rows, MetricPearson, 4); err == nil {
		t.Fatal("cancelled context did not abort the distance matrix")
	}
}
