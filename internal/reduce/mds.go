package reduce

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"vap/internal/mat"
)

// ClassicalMDS embeds the distance matrix d into 2-D by Torgerson's method:
// double-center the squared distances into a Gram matrix and project onto
// its top-2 eigenvectors scaled by sqrt(eigenvalue). For n <= jacobiCutoff
// a full Jacobi decomposition is used; beyond that, power iteration with
// deflation (only two eigenpairs are needed).
func ClassicalMDS(d [][]float64) (Embedding, error) {
	n := len(d)
	if n < 2 {
		return nil, fmt.Errorf("reduce: MDS needs at least 2 points, got %d", n)
	}
	d2 := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		if len(d[i]) != n {
			return nil, fmt.Errorf("reduce: distance matrix row %d has %d cols, want %d", i, len(d[i]), n)
		}
		for j := 0; j < n; j++ {
			d2.Set(i, j, d[i][j]*d[i][j])
		}
	}
	b, err := mat.DoubleCenter(d2)
	if err != nil {
		return nil, err
	}
	const jacobiCutoff = 64
	var vals []float64
	var vecs *mat.Dense
	if n <= jacobiCutoff {
		eig, err := mat.SymEigen(b)
		if err != nil {
			return nil, err
		}
		vals = eig.Values[:2]
		vecs = eig.Vectors
	} else {
		vals, vecs, err = mat.TopEigen(b, 2, 1000, 1e-10)
		if err != nil {
			return nil, err
		}
	}
	out := make(Embedding, n)
	for k := 0; k < 2; k++ {
		lambda := vals[k]
		if lambda < 0 {
			lambda = 0 // non-Euclidean dissimilarities can yield negatives
		}
		s := math.Sqrt(lambda)
		for i := 0; i < n; i++ {
			out[i][k] = s * vecs.At(i, k)
		}
	}
	return out, nil
}

// SMACOFConfig tunes the stress-majorization MDS solver.
type SMACOFConfig struct {
	Iterations int     // default 300
	Eps        float64 // relative stress improvement threshold, default 1e-6
	Seed       int64
}

func (c *SMACOFConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = 300
	}
	if c.Eps <= 0 {
		c.Eps = 1e-6
	}
}

// SMACOFResult carries the embedding and the final normalized stress.
type SMACOFResult struct {
	Embedding  Embedding
	Stress     float64 // raw stress sum (d_ij - delta_ij)^2
	Iterations int
}

// SMACOF minimizes metric MDS stress by iterative majorization (Guttman
// transform), starting from a random layout (or the classical MDS solution
// when the input is small enough for it to be cheap).
func SMACOF(ctx context.Context, d [][]float64, cfg SMACOFConfig) (*SMACOFResult, error) {
	n := len(d)
	if n < 2 {
		return nil, fmt.Errorf("reduce: SMACOF needs at least 2 points, got %d", n)
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := make(Embedding, n)
	for i := range x {
		x[i][0] = rng.Float64()
		x[i][1] = rng.Float64()
	}
	prevStress := stress(d, x)
	res := &SMACOFResult{}
	nf := float64(n)
	xNew := make(Embedding, n)
	for iter := 1; iter <= cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Guttman transform with unit weights: X' = (1/n) B(X) X where
		// B(X)_ij = -delta_ij / d_ij(X) off-diagonal.
		for i := range xNew {
			xNew[i] = [2]float64{}
		}
		for i := 0; i < n; i++ {
			var bii float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dij := x.Dist(i, j)
				var bij float64
				if dij > 1e-12 {
					bij = -d[i][j] / dij
				}
				bii -= bij
				xNew[i][0] += bij * x[j][0]
				xNew[i][1] += bij * x[j][1]
			}
			xNew[i][0] += bii * x[i][0]
			xNew[i][1] += bii * x[i][1]
			xNew[i][0] /= nf
			xNew[i][1] /= nf
		}
		copy(x, xNew)
		s := stress(d, x)
		res.Iterations = iter
		if prevStress > 0 && (prevStress-s)/prevStress < cfg.Eps {
			prevStress = s
			break
		}
		prevStress = s
	}
	res.Stress = prevStress
	res.Embedding = x
	return res, nil
}

func stress(d [][]float64, x Embedding) float64 {
	s := 0.0
	n := len(x)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := x.Dist(i, j) - d[i][j]
			s += diff * diff
		}
	}
	return s
}

// PCA projects the raw rows (not a distance matrix) onto their top-2
// principal components — the cheap linear baseline for the E4 comparison.
func PCA(rows [][]float64) (Embedding, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("reduce: PCA needs at least 2 rows, got %d", n)
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim || dim == 0 {
			return nil, fmt.Errorf("reduce: PCA row %d has %d cols, want %d nonzero", i, len(r), dim)
		}
	}
	// Column means.
	mean := make([]float64, dim)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Covariance matrix (dim x dim).
	cov := mat.NewDense(dim, dim)
	for _, r := range rows {
		for a := 0; a < dim; a++ {
			da := r[a] - mean[a]
			for b := a; b < dim; b++ {
				cov.Set(a, b, cov.At(a, b)+da*(r[b]-mean[b]))
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			v := cov.At(a, b) / float64(n-1)
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	_, vecs, err := mat.TopEigen(cov, 2, 1000, 1e-10)
	if err != nil {
		return nil, err
	}
	out := make(Embedding, n)
	for i, r := range rows {
		for k := 0; k < 2; k++ {
			s := 0.0
			for j := 0; j < dim; j++ {
				s += (r[j] - mean[j]) * vecs.At(j, k)
			}
			out[i][k] = s
		}
	}
	return out, nil
}

// Method names a reduction algorithm for API selection.
type Method string

// Methods exposed by the API (S1 step 3 compares t-SNE and MDS).
const (
	MethodTSNE   Method = "tsne"
	MethodMDS    Method = "mds"
	MethodSMACOF Method = "smacof"
	MethodPCA    Method = "pca"
)

// Reduce runs the named method on rows with the given metric and default
// configs; the one-call convenience the API layer and examples use.
func Reduce(ctx context.Context, rows [][]float64, method Method, metric Metric, seed int64) (Embedding, error) {
	switch method {
	case MethodPCA:
		return PCA(rows)
	case MethodTSNE, MethodMDS, MethodSMACOF:
		d, err := DistanceMatrixCtx(ctx, rows, metric, 0)
		if err != nil {
			return nil, err
		}
		switch method {
		case MethodTSNE:
			r, err := TSNE(ctx, d, TSNEConfig{Seed: seed})
			if err != nil {
				return nil, err
			}
			return r.Embedding, nil
		case MethodMDS:
			return ClassicalMDS(d)
		default:
			r, err := SMACOF(ctx, d, SMACOFConfig{Seed: seed})
			if err != nil {
				return nil, err
			}
			return r.Embedding, nil
		}
	default:
		return nil, fmt.Errorf("reduce: unknown method %q", method)
	}
}
