package reduce

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// TSNEConfig tunes the exact t-SNE optimizer. Zero values take the
// defaults noted per field (matching van der Maaten & Hinton 2008).
type TSNEConfig struct {
	Perplexity float64 // default 30 (clamped to (n-1)/3)
	Iterations int     // default 500
	LearnRate  float64 // default 200
	Momentum   float64 // early momentum, default 0.5
	FinalMom   float64 // momentum after momentum switch, default 0.8
	MomSwitch  int     // iteration of the momentum switch, default 250
	Exagger    float64 // early exaggeration factor, default 12
	ExaggerEnd int     // iteration early exaggeration stops, default 100
	Seed       int64   // RNG seed for the initial layout
	// MinGradNorm stops early when the gradient norm falls below it;
	// default 1e-7.
	MinGradNorm float64
}

func (c *TSNEConfig) defaults(n int) {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	maxPerp := float64(n-1) / 3
	if maxPerp >= 1 && c.Perplexity > maxPerp {
		c.Perplexity = maxPerp
	}
	if c.Iterations <= 0 {
		c.Iterations = 500
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 200
	}
	if c.Momentum <= 0 {
		c.Momentum = 0.5
	}
	if c.FinalMom <= 0 {
		c.FinalMom = 0.8
	}
	if c.MomSwitch <= 0 {
		c.MomSwitch = 250
	}
	if c.Exagger <= 0 {
		c.Exagger = 12
	}
	if c.ExaggerEnd <= 0 {
		c.ExaggerEnd = 100
	}
	if c.MinGradNorm <= 0 {
		c.MinGradNorm = 1e-7
	}
}

// TSNEResult carries the embedding and optimization diagnostics.
type TSNEResult struct {
	Embedding  Embedding
	KL         float64   // final KL(P || Q), Eq. 1
	KLTrace    []float64 // KL every 50 iterations
	Iterations int
}

// TSNE computes an exact t-SNE embedding of the pairwise distance matrix d.
// P is built with Gaussian kernels whose bandwidths are binary-searched to
// match the configured perplexity; Q is the Student-t kernel of Eq. 2. The
// context allows cancellation of long runs (the API server uses this).
func TSNE(ctx context.Context, d [][]float64, cfg TSNEConfig) (*TSNEResult, error) {
	n := len(d)
	if n < 2 {
		return nil, fmt.Errorf("reduce: t-SNE needs at least 2 points, got %d", n)
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("reduce: distance matrix row %d has %d cols, want %d", i, len(d[i]), n)
		}
	}
	cfg.defaults(n)

	p := conditionalToJoint(perplexitySearch(d, cfg.Perplexity))
	// Early exaggeration.
	for i := range p {
		for j := range p[i] {
			p[i][j] *= cfg.Exagger
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make(Embedding, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	vel := make([][2]float64, n)
	gains := make([][2]float64, n)
	for i := range gains {
		gains[i] = [2]float64{1, 1}
	}
	grad := make([][2]float64, n)
	q := make([][]float64, n)
	num := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		num[i] = make([]float64, n)
	}

	res := &TSNEResult{}
	exaggerated := true
	for iter := 1; iter <= cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if exaggerated && iter > cfg.ExaggerEnd {
			for i := range p {
				for j := range p[i] {
					p[i][j] /= cfg.Exagger
				}
			}
			exaggerated = false
		}
		computeQ(y, q, num)
		gradKL(p, q, num, y, grad)

		gnorm := 0.0
		mom := cfg.Momentum
		if iter >= cfg.MomSwitch {
			mom = cfg.FinalMom
		}
		for i := range y {
			for k := 0; k < 2; k++ {
				g := grad[i][k]
				gnorm += g * g
				// Adaptive gains per Jacobs (1988): increase when gradient
				// and velocity agree in direction, decay otherwise.
				if (g > 0) == (vel[i][k] > 0) {
					gains[i][k] *= 0.8
				} else {
					gains[i][k] += 0.2
				}
				if gains[i][k] < 0.01 {
					gains[i][k] = 0.01
				}
				vel[i][k] = mom*vel[i][k] - cfg.LearnRate*gains[i][k]*g
				y[i][k] += vel[i][k]
			}
		}
		centerEmbedding(y)
		res.Iterations = iter
		if iter%50 == 0 || iter == cfg.Iterations {
			res.KLTrace = append(res.KLTrace, klDivergence(p, q, exaggerated, cfg.Exagger))
		}
		if math.Sqrt(gnorm) < cfg.MinGradNorm && !exaggerated {
			break
		}
	}
	computeQ(y, q, num)
	res.KL = klDivergence(p, q, false, 1)
	res.Embedding = y
	return res, nil
}

// perplexitySearch finds per-point Gaussian bandwidths sigma_i such that the
// Shannon entropy of the conditional distribution p_{j|i} equals
// log2(perplexity), returning the conditional matrix.
func perplexitySearch(d [][]float64, perplexity float64) [][]float64 {
	n := len(d)
	target := math.Log(perplexity)
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		beta := 1.0 // beta = 1 / (2 sigma^2)
		const tol = 1e-5
		for tries := 0; tries < 64; tries++ {
			h := condRow(d[i], i, beta, p[i])
			diff := h - target
			if math.Abs(diff) < tol {
				break
			}
			if diff > 0 { // entropy too high -> narrower kernel
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
	}
	return p
}

// condRow fills row with p_{j|i} for the given precision beta and returns
// the entropy H(P_i) in nats.
func condRow(di []float64, i int, beta float64, row []float64) float64 {
	sum := 0.0
	for j := range di {
		if j == i {
			row[j] = 0
			continue
		}
		v := math.Exp(-di[j] * di[j] * beta)
		row[j] = v
		sum += v
	}
	if sum == 0 {
		// Degenerate: all distances huge; fall back to uniform.
		u := 1.0 / float64(len(di)-1)
		for j := range row {
			if j != i {
				row[j] = u
			}
		}
		return math.Log(float64(len(di) - 1))
	}
	h := 0.0
	for j := range row {
		if j == i {
			continue
		}
		row[j] /= sum
		if row[j] > 1e-300 {
			h -= row[j] * math.Log(row[j])
		}
	}
	return h
}

// conditionalToJoint symmetrizes: P_ij = (p_{j|i} + p_{i|j}) / 2n, floored
// to keep the KL well defined.
func conditionalToJoint(cond [][]float64) [][]float64 {
	n := len(cond)
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
	}
	inv := 1 / (2 * float64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (cond[i][j] + cond[j][i]) * inv
			if v < 1e-12 {
				v = 1e-12
			}
			p[i][j] = v
		}
	}
	return p
}

// computeQ fills q with the Student-t similarities of Eq. 2 and num with
// the unnormalized kernels (1 + ||y_i - y_j||^2)^-1.
func computeQ(y Embedding, q, num [][]float64) {
	n := len(y)
	sum := 0.0
	for i := 0; i < n; i++ {
		num[i][i] = 0
		for j := i + 1; j < n; j++ {
			k := 1 / (1 + y.SquaredDist(i, j))
			num[i][j] = k
			num[j][i] = k
			sum += 2 * k
		}
	}
	if sum == 0 {
		sum = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := num[i][j] / sum
			if v < 1e-12 {
				v = 1e-12
			}
			q[i][j] = v
		}
		q[i][i] = 1e-12
	}
}

// gradKL computes dKL/dy into grad: 4 * sum_j (p_ij - q_ij) * num_ij * (y_i - y_j).
func gradKL(p, q, num [][]float64, y Embedding, grad [][2]float64) {
	n := len(y)
	for i := 0; i < n; i++ {
		var gx, gy float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			mult := (p[i][j] - q[i][j]) * num[i][j]
			gx += mult * (y[i][0] - y[j][0])
			gy += mult * (y[i][1] - y[j][1])
		}
		grad[i][0] = 4 * gx
		grad[i][1] = 4 * gy
	}
}

// klDivergence evaluates Eq. 1. When p is still exaggerated, it is
// de-exaggerated on the fly so traces are comparable across phases.
func klDivergence(p, q [][]float64, exaggerated bool, factor float64) float64 {
	kl := 0.0
	for i := range p {
		for j := range p[i] {
			if i == j {
				continue
			}
			pij := p[i][j]
			if exaggerated {
				pij /= factor
			}
			if pij > 1e-300 {
				kl += pij * math.Log(pij/q[i][j])
			}
		}
	}
	return kl
}

func centerEmbedding(y Embedding) {
	var cx, cy float64
	for _, pt := range y {
		cx += pt[0]
		cy += pt[1]
	}
	cx /= float64(len(y))
	cy /= float64(len(y))
	for i := range y {
		y[i][0] -= cx
		y[i][1] -= cy
	}
}
