// Package reduce implements the dimension-reduction models of VAP's typical
// pattern discovery (paper §2.1): exact t-SNE minimizing the KL divergence
// of Eq. 1 with the Student-t low-dimensional kernel of Eq. 2, classical
// (Torgerson) MDS, SMACOF stress-majorization MDS, and a PCA baseline.
// The paper's distance metric is the Pearson correlation distance, which
// "better reflects the correlation of the trend between two time series";
// Euclidean distance is available for the ablation in EXPERIMENTS.md.
package reduce

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"vap/internal/exec"
	"vap/internal/stat"
)

// Metric selects the dissimilarity between two high-dimensional series.
type Metric string

// Supported metrics.
const (
	// MetricPearson is 1 - r (the paper's choice).
	MetricPearson Metric = "pearson"
	// MetricEuclidean is the L2 distance.
	MetricEuclidean Metric = "euclidean"
)

// ErrInput flags invalid reduction input.
var ErrInput = errors.New("reduce: invalid input")

// DistanceMatrix computes the full symmetric pairwise distance matrix of
// rows under the metric, serially. Rows must be equal-length and
// non-empty. It is the reference implementation DistanceMatrixCtx is
// benchmarked against; new code should prefer DistanceMatrixCtx.
func DistanceMatrix(rows [][]float64, m Metric) ([][]float64, error) {
	return DistanceMatrixCtx(context.Background(), rows, m, 1)
}

// DistanceMatrixCtx computes the same matrix with the upper triangle
// row-chunked across up to workers goroutines (workers <= 0 selects
// runtime.NumCPU()). Rows are handed out dynamically, so the triangular
// imbalance (row i has n-i-1 pairs) spreads evenly. Cancellation of ctx
// aborts the computation.
func DistanceMatrixCtx(ctx context.Context, rows [][]float64, m Metric, workers int) ([][]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, ErrInput
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width || width == 0 {
			return nil, fmt.Errorf("reduce: row %d has %d cols, want %d nonzero", i, len(r), width)
		}
	}
	var distFn func(a, b []float64) (float64, error)
	switch m {
	case MetricPearson:
		distFn = stat.PearsonDistance
	case MetricEuclidean:
		distFn = stat.Euclidean
	default:
		return nil, fmt.Errorf("reduce: unknown metric %q", m)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	// Each worker owns whole rows of the upper triangle; d[j][i] mirrors
	// touch only column i of later rows, which no other row-i task writes,
	// so the matrix needs no locking.
	err := exec.ForEach(ctx, n, workers, func(i int) error {
		for j := i + 1; j < n; j++ {
			v, err := distFn(rows[i], rows[j])
			if err != nil {
				return err
			}
			if math.IsNaN(v) || v < 0 {
				v = 0
			}
			d[i][j] = v
			d[j][i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Embedding is a set of 2-D points, one per input row, in input order.
type Embedding [][2]float64

// Bounds returns the min/max corner of the embedding.
func (e Embedding) Bounds() (minX, minY, maxX, maxY float64) {
	if len(e) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY = e[0][0], e[0][1]
	maxX, maxY = minX, minY
	for _, p := range e[1:] {
		if p[0] < minX {
			minX = p[0]
		}
		if p[0] > maxX {
			maxX = p[0]
		}
		if p[1] < minY {
			minY = p[1]
		}
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	return minX, minY, maxX, maxY
}

// Normalize01 rescales the embedding into the unit square in place
// (no-ops on degenerate axes).
func (e Embedding) Normalize01() {
	minX, minY, maxX, maxY := e.Bounds()
	dx := maxX - minX
	dy := maxY - minY
	for i := range e {
		if dx > 0 {
			e[i][0] = (e[i][0] - minX) / dx
		} else {
			e[i][0] = 0.5
		}
		if dy > 0 {
			e[i][1] = (e[i][1] - minY) / dy
		} else {
			e[i][1] = 0.5
		}
	}
}

// SquaredDist returns the squared Euclidean distance between embedding
// points i and j.
func (e Embedding) SquaredDist(i, j int) float64 {
	dx := e[i][0] - e[j][0]
	dy := e[i][1] - e[j][1]
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between embedding points i and j.
func (e Embedding) Dist(i, j int) float64 { return math.Sqrt(e.SquaredDist(i, j)) }
