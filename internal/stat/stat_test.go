package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev = %v, want 2", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %v,%v", lo, hi)
	}
	if s := Sum([]float64{1, 2, 3}); s != 6 {
		t.Errorf("sum = %v", s)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("constant input correlation = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestPearsonScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(rng.Int31n(20))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r1, err1 := Pearson(x, y)
		// Affine transform of x must not change r (positive scale).
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = 3*x[i] + 7
		}
		r2, err2 := Pearson(x2, y)
		return err1 == nil && err2 == nil && almostEq(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearsonDistanceRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rng.Int31n(10))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		d, err := PearsonDistance(x, y)
		return err == nil && d >= 0 && d <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("euclidean = %v, want 5", d)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rho = 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Errorf("monotone spearman = %v", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	rho, err := Spearman([]float64{1, 2, 2, 3}, []float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Errorf("tied identical spearman = %v", rho)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileUnsortedInputUnmodified(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 {
		t.Error("Quantile modified its input")
	}
}

func TestMedianMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if m := Median(xs); m != 2 {
		t.Errorf("median = %v, want 2", m)
	}
	if m := MAD(xs); m != 1 {
		t.Errorf("MAD = %v, want 1", m)
	}
}

func TestZScoresRobustFlagsOutlier(t *testing.T) {
	xs := []float64{10, 11, 12, 9, 10, 11, 9, 100}
	z := ZScoresRobust(xs)
	if math.Abs(z[7]) < 5 {
		t.Errorf("outlier z = %v, want |z| >= 5", z[7])
	}
	if math.Abs(z[0]) > 1 {
		t.Errorf("inlier z = %v", z[0])
	}
}

func TestZScoresRobustConstant(t *testing.T) {
	z := ZScoresRobust([]float64{5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Errorf("constant input z = %v, want 0", v)
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape = %d counts, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	// Max value lands in the last bin.
	if counts[4] != 2 { // 8 and 9
		t.Errorf("last bin = %d, want 2", counts[4])
	}
}

func TestNormalize01(t *testing.T) {
	out := Normalize01([]float64{10, 20, 30})
	if out[0] != 0 || out[2] != 1 || !almostEq(out[1], 0.5, 1e-12) {
		t.Errorf("normalize = %v", out)
	}
	flat := Normalize01([]float64{7, 7})
	if flat[0] != 0.5 || flat[1] != 0.5 {
		t.Errorf("constant normalize = %v", flat)
	}
}

func TestZNormalize(t *testing.T) {
	out := ZNormalize([]float64{1, 2, 3})
	if !almostEq(Mean(out), 0, 1e-12) || !almostEq(StdDev(out), 1, 1e-12) {
		t.Errorf("znorm mean/sd = %v/%v", Mean(out), StdDev(out))
	}
	zero := ZNormalize([]float64{4, 4})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("constant znorm = %v", zero)
	}
}
