package stat

import (
	"math"
	"math/rand"
	"testing"
)

func absDist(pos []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
}

func TestTrustworthinessPerfectEmbedding(t *testing.T) {
	// Identical geometry in both spaces: both scores are exactly 1.
	pos := []float64{0, 1, 2, 5, 9, 14, 20, 27, 35, 44}
	n := len(pos)
	d := absDist(pos)
	for k := 1; k <= (n-2)/2; k++ {
		tw, err := Trustworthiness(n, k, d, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tw-1) > 1e-12 {
			t.Errorf("k=%d: trustworthiness = %v, want 1", k, tw)
		}
		co, err := Continuity(n, k, d, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(co-1) > 1e-12 {
			t.Errorf("k=%d: continuity = %v, want 1", k, co)
		}
	}
}

func TestTrustworthinessDetectsScrambling(t *testing.T) {
	// Low space is a random permutation of the high space: scores drop
	// well below a faithful embedding's.
	rng := rand.New(rand.NewSource(2))
	n := 40
	high := make([]float64, n)
	for i := range high {
		high[i] = float64(i)
	}
	low := append([]float64(nil), high...)
	rng.Shuffle(n, func(i, j int) { low[i], low[j] = low[j], low[i] })
	tw, err := Trustworthiness(n, 5, absDist(high), absDist(low))
	if err != nil {
		t.Fatal(err)
	}
	if tw > 0.85 {
		t.Errorf("scrambled trustworthiness = %v, want well below 1", tw)
	}
	faithful, _ := Trustworthiness(n, 5, absDist(high), absDist(high))
	if tw >= faithful {
		t.Errorf("scrambled (%v) not worse than faithful (%v)", tw, faithful)
	}
}

func TestTrustworthinessRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 30
	high := make([]float64, n)
	low := make([]float64, n)
	for i := range high {
		high[i] = rng.NormFloat64()
		low[i] = rng.NormFloat64()
	}
	tw, err := Trustworthiness(n, 5, absDist(high), absDist(low))
	if err != nil {
		t.Fatal(err)
	}
	if tw < 0 || tw > 1 {
		t.Errorf("trustworthiness out of range: %v", tw)
	}
}

func TestTrustworthinessErrors(t *testing.T) {
	d := absDist([]float64{1, 2, 3})
	if _, err := Trustworthiness(2, 1, d, d); err == nil {
		t.Error("n<3 should fail")
	}
	if _, err := Trustworthiness(10, 0, d, d); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Trustworthiness(10, 5, d, d); err == nil {
		t.Error("k > (n-2)/2 should fail")
	}
}

func TestContinuityAsymmetricCase(t *testing.T) {
	// Collapse two far points onto each other in the embedding: continuity
	// suffers for their true neighbors; build a case where trustworthiness
	// and continuity differ.
	high := []float64{0, 1, 2, 3, 10, 11, 12, 13}
	low := []float64{0, 1, 2, 3, 0.5, 11, 12, 13} // point 4 teleported into group 1
	n := len(high)
	tw, err := Trustworthiness(n, 2, absDist(high), absDist(low))
	if err != nil {
		t.Fatal(err)
	}
	co, err := Continuity(n, 2, absDist(high), absDist(low))
	if err != nil {
		t.Fatal(err)
	}
	if tw >= 1 {
		t.Errorf("teleported point should hurt trustworthiness: %v", tw)
	}
	if co >= 1 {
		t.Errorf("teleported point should hurt continuity: %v", co)
	}
	if tw == co {
		t.Logf("tw == co (%v); acceptable but unusual for this asymmetric case", tw)
	}
}
