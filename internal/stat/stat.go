// Package stat provides the statistics VAP relies on: descriptive moments,
// Pearson/Spearman correlation (the paper's distance metric for typical
// pattern discovery), quantiles (S2's intensity selection), and external
// cluster-validation indices (silhouette, adjusted Rand index, NMI) used to
// quantify the demo scenarios.
package stat

import (
	"errors"
	"math"
	"sort"
)

// ErrLength is returned when paired slices have mismatched or zero length.
var ErrLength = errors.New("stat: slices must have equal nonzero length")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs; (0,0) for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pearson returns the Pearson correlation coefficient between x and y.
// A zero-variance input yields 0 (no linear association measurable), which
// keeps the derived distance well defined for constant consumption profiles
// such as the paper's "idle" and "constant high" patterns.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrLength
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// PearsonDistance returns 1 - r, the paper's trend-aware dissimilarity in
// [0, 2]. Errors propagate from Pearson.
func PearsonDistance(x, y []float64) (float64, error) {
	r, err := Pearson(x, y)
	if err != nil {
		return 0, err
	}
	return 1 - r, nil
}

// Euclidean returns the L2 distance between x and y.
func Euclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrLength
	}
	s := 0.0
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// ranks returns average ranks (1-based) handling ties by midrank.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation between x and y.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrLength
	}
	return Pearson(ranks(x), ranks(y))
}

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		m, _ := MinMax(xs)
		return m
	}
	if q >= 1 {
		_, m := MinMax(xs)
		return m
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation (unscaled).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// ZScoresRobust returns robust z-scores (x - median) / (1.4826 * MAD).
// If MAD is zero, the scores fall back to classic z-scores; if the standard
// deviation is also zero, all scores are zero.
func ZScoresRobust(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	m := Median(xs)
	mad := MAD(xs) * 1.4826
	if mad > 0 {
		for i, x := range xs {
			out[i] = (x - m) / mad
		}
		return out
	}
	mu := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mu) / sd
	}
	return out
}

// Histogram counts xs into nbins equal-width bins over [min, max]. Values
// exactly at max fall into the last bin. It returns the counts and the bin
// edges (nbins+1 values).
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	if nbins < 1 {
		nbins = 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	if len(xs) == 0 {
		return counts, edges
	}
	lo, hi := MinMax(xs)
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// Normalize01 linearly rescales xs into [0,1] (all 0.5 if constant), used by
// the paper's consumption re-weighting c_i in Eq. 3.
func Normalize01(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := MinMax(xs)
	if hi == lo {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// ZNormalize returns (x - mean) / std per element; zeros if std is 0.
func ZNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	mu := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mu) / sd
	}
	return out
}
