package stat

import (
	"errors"
	"sort"
)

// Trustworthiness and Continuity (Venna & Kaski 2001) quantify how well a
// low-dimensional embedding preserves neighborhood structure — the
// quality measures used by EXPERIMENTS.md to compare the S1 reduction
// methods beyond label-based scores.
//
// Trustworthiness penalizes points that are close in the embedding but
// far in the original space (false neighbors); Continuity penalizes
// original neighbors that drift apart in the embedding (missing
// neighbors). Both are in [0, 1], higher is better.

// rankMatrix returns rank[i][j] = the rank of j in i's distance ordering
// (1 = nearest, excluding i itself).
func rankMatrix(n int, dist func(i, j int) float64) [][]int {
	rank := make([][]int, n)
	idx := make([]int, n-1)
	for i := 0; i < n; i++ {
		m := 0
		for j := 0; j < n; j++ {
			if j != i {
				idx[m] = j
				m++
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return dist(i, idx[a]) < dist(i, idx[b])
		})
		rank[i] = make([]int, n)
		for r, j := range idx {
			rank[i][j] = r + 1
		}
	}
	return rank
}

// neighborSets returns, for each point, the set of its k nearest
// neighbors under dist.
func neighborSets(n, k int, dist func(i, j int) float64) [][]int {
	sets := make([][]int, n)
	idx := make([]int, n-1)
	for i := 0; i < n; i++ {
		m := 0
		for j := 0; j < n; j++ {
			if j != i {
				idx[m] = j
				m++
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return dist(i, idx[a]) < dist(i, idx[b])
		})
		sets[i] = append([]int(nil), idx[:k]...)
	}
	return sets
}

// errEmbedK validates shared preconditions.
func errEmbedK(n, k int) error {
	if n < 3 {
		return errors.New("stat: embedding metrics need n >= 3")
	}
	if k < 1 || k > (n-2)/2 {
		return errors.New("stat: k must be in [1, (n-2)/2] for a normalizable score")
	}
	return nil
}

// Trustworthiness measures false neighbors: points in the embedding's
// k-NN of i that are not among i's high-dimensional k-NN, weighted by how
// far down i's true ordering they sit.
func Trustworthiness(n, k int, highDist, lowDist func(i, j int) float64) (float64, error) {
	if err := errEmbedK(n, k); err != nil {
		return 0, err
	}
	highRank := rankMatrix(n, highDist)
	lowNN := neighborSets(n, k, lowDist)
	penalty := 0.0
	for i := 0; i < n; i++ {
		for _, j := range lowNN[i] {
			if r := highRank[i][j]; r > k {
				penalty += float64(r - k)
			}
		}
	}
	norm := 2.0 / (float64(n) * float64(k) * float64(2*n-3*k-1))
	return 1 - norm*penalty, nil
}

// Continuity measures missing neighbors: i's high-dimensional k-NN that
// are not among its embedding k-NN, weighted by embedding rank.
func Continuity(n, k int, highDist, lowDist func(i, j int) float64) (float64, error) {
	// Continuity is trustworthiness with the roles of the two spaces
	// swapped.
	return Trustworthiness(n, k, lowDist, highDist)
}
