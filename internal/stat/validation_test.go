package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// unitDist returns a distance function over 1-D positions.
func unitDist(pos []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
}

func TestSilhouetteWellSeparated(t *testing.T) {
	// Two tight, far-apart groups: silhouette near 1.
	pos := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	labels := []int{0, 0, 0, 1, 1, 1}
	s, err := Silhouette(6, labels, unitDist(pos))
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("well-separated silhouette = %v, want > 0.9", s)
	}
}

func TestSilhouetteBadLabels(t *testing.T) {
	// Labels split each tight group: silhouette should be poor.
	pos := []float64{0, 0.1, 10, 10.1}
	labels := []int{0, 1, 0, 1}
	s, err := Silhouette(4, labels, unitDist(pos))
	if err != nil {
		t.Fatal(err)
	}
	if s > 0 {
		t.Errorf("mismatched silhouette = %v, want <= 0", s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(0, nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Silhouette(3, []int{0, 0, 0}, unitDist([]float64{1, 2, 3})); err == nil {
		t.Error("single cluster should fail")
	}
}

func TestSilhouetteRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + int(rng.Int31n(20))
		pos := make([]float64, n)
		labels := make([]int, n)
		for i := range pos {
			pos[i] = rng.NormFloat64()
			labels[i] = int(rng.Int31n(3))
		}
		// Guarantee two clusters.
		labels[0], labels[1] = 0, 1
		s, err := Silhouette(n, labels, unitDist(pos))
		return err == nil && s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestARIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	ari, err := AdjustedRandIndex(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ari, 1, 1e-12) {
		t.Errorf("ARI(identical) = %v", ari)
	}
}

func TestARIPermutedLabels(t *testing.T) {
	// ARI is invariant to label renaming.
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ari, 1, 1e-12) {
		t.Errorf("ARI(renamed) = %v", ari)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = int(rng.Int31n(4))
		b[i] = int(rng.Int31n(4))
	}
	ari, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari) > 0.05 {
		t.Errorf("ARI(random) = %v, want ~0", ari)
	}
}

func TestARIMismatch(t *testing.T) {
	if _, err := AdjustedRandIndex([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestNMIBounds(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if v, _ := NMI(a, a); !almostEq(v, 1, 1e-12) {
		t.Errorf("NMI(identical) = %v", v)
	}
	b := []int{0, 1, 0, 1}
	v, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Errorf("NMI out of range: %v", v)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	p, err := Purity(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 majority truth 0 (2 of 3); cluster 1 majority 1 (3 of 3).
	if !almostEq(p, 5.0/6, 1e-12) {
		t.Errorf("purity = %v, want 5/6", p)
	}
}

func TestPurityPerfect(t *testing.T) {
	pred := []int{3, 3, 8, 8}
	truth := []int{0, 0, 1, 1}
	if p, _ := Purity(pred, truth); p != 1 {
		t.Errorf("purity = %v, want 1", p)
	}
}

func TestNeighborhoodPurity(t *testing.T) {
	// Two clusters on a line; each point's 2 nearest share its label.
	pos := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	labels := []int{0, 0, 0, 1, 1, 1}
	p, err := NeighborhoodPurity(6, 2, labels, unitDist(pos))
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("knn purity = %v, want 1", p)
	}
	// Interleaved labels: each point's nearest neighbor has the other label.
	bad := []int{0, 1, 0, 1, 0, 1}
	p, err = NeighborhoodPurity(6, 1, bad, unitDist(pos))
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.2 {
		t.Errorf("interleaved knn purity = %v, want ~0", p)
	}
}

func TestNeighborhoodPurityErrors(t *testing.T) {
	if _, err := NeighborhoodPurity(3, 0, []int{0, 0, 1}, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NeighborhoodPurity(3, 3, []int{0, 0, 1}, nil); err == nil {
		t.Error("k=n should fail")
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if tau, _ := KendallTau(x, x); !almostEq(tau, 1, 1e-12) {
		t.Errorf("tau(identical) = %v", tau)
	}
	rev := []float64{4, 3, 2, 1}
	if tau, _ := KendallTau(x, rev); !almostEq(tau, -1, 1e-12) {
		t.Errorf("tau(reversed) = %v", tau)
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should fail")
	}
}

func TestRanksMidrankTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
