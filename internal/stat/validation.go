package stat

import (
	"errors"
	"math"
)

// ErrLabels is returned when label slices are mismatched or empty.
var ErrLabels = errors.New("stat: label slices must have equal nonzero length")

// Silhouette computes the mean silhouette coefficient of a labelled point
// set given a pairwise distance function. Points in singleton clusters
// contribute 0, following the scikit-learn convention. It returns an error
// if fewer than 2 clusters are present.
func Silhouette(n int, labels []int, dist func(i, j int) float64) (float64, error) {
	if n == 0 || len(labels) != n {
		return 0, ErrLabels
	}
	clusters := map[int][]int{}
	for i, l := range labels {
		clusters[l] = append(clusters[l], i)
	}
	if len(clusters) < 2 {
		return 0, errors.New("stat: silhouette requires at least 2 clusters")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		own := clusters[labels[i]]
		if len(own) == 1 {
			continue // s(i) = 0
		}
		// a(i): mean intra-cluster distance.
		a := 0.0
		for _, j := range own {
			if j != i {
				a += dist(i, j)
			}
		}
		a /= float64(len(own) - 1)
		// b(i): min over other clusters of mean distance.
		b := math.Inf(1)
		for l, members := range clusters {
			if l == labels[i] {
				continue
			}
			s := 0.0
			for _, j := range members {
				s += dist(i, j)
			}
			s /= float64(len(members))
			if s < b {
				b = s
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n), nil
}

// contingency builds the contingency table between two labelings.
func contingency(a, b []int) (map[[2]int]int, map[int]int, map[int]int) {
	tab := map[[2]int]int{}
	ca := map[int]int{}
	cb := map[int]int{}
	for i := range a {
		tab[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	return tab, ca, cb
}

func comb2(n int) float64 { return float64(n) * float64(n-1) / 2 }

// AdjustedRandIndex measures agreement between two labelings, corrected for
// chance: 1 = identical partitions, ~0 = random agreement.
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, ErrLabels
	}
	tab, ca, cb := contingency(a, b)
	var sumComb, sumA, sumB float64
	for _, v := range tab {
		sumComb += comb2(v)
	}
	for _, v := range ca {
		sumA += comb2(v)
	}
	for _, v := range cb {
		sumB += comb2(v)
	}
	n := comb2(len(a))
	if n == 0 {
		return 0, ErrLabels
	}
	expected := sumA * sumB / n
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial (all singletons or one cluster)
	}
	return (sumComb - expected) / (maxIdx - expected), nil
}

// NMI returns the normalized mutual information (arithmetic normalization)
// between two labelings in [0, 1].
func NMI(a, b []int) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, ErrLabels
	}
	tab, ca, cb := contingency(a, b)
	n := float64(len(a))
	mi := 0.0
	for key, v := range tab {
		pxy := float64(v) / n
		px := float64(ca[key[0]]) / n
		py := float64(cb[key[1]]) / n
		if pxy > 0 {
			mi += pxy * math.Log(pxy/(px*py))
		}
	}
	ha, hb := 0.0, 0.0
	for _, v := range ca {
		p := float64(v) / n
		ha -= p * math.Log(p)
	}
	for _, v := range cb {
		p := float64(v) / n
		hb -= p * math.Log(p)
	}
	den := (ha + hb) / 2
	if den == 0 {
		return 1, nil
	}
	v := mi / den
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// Purity returns the fraction of points whose predicted cluster's majority
// true label matches their own true label.
func Purity(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, ErrLabels
	}
	byCluster := map[int]map[int]int{}
	for i := range pred {
		m := byCluster[pred[i]]
		if m == nil {
			m = map[int]int{}
			byCluster[pred[i]] = m
		}
		m[truth[i]]++
	}
	correct := 0
	for _, m := range byCluster {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred)), nil
}

// NeighborhoodPurity measures embedding quality: for each point, the
// fraction of its k nearest neighbors in the embedding sharing its true
// label, averaged over all points. dist operates on embedding indices.
func NeighborhoodPurity(n, k int, labels []int, dist func(i, j int) float64) (float64, error) {
	if n == 0 || len(labels) != n {
		return 0, ErrLabels
	}
	if k <= 0 || k >= n {
		return 0, errors.New("stat: k must be in [1, n-1]")
	}
	total := 0.0
	idx := make([]int, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		m := 0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			idx[m] = j
			d[m] = dist(i, j)
			m++
		}
		// Partial selection of the k smallest.
		selectK(idx[:m], d[:m], k)
		same := 0
		for t := 0; t < k; t++ {
			if labels[idx[t]] == labels[i] {
				same++
			}
		}
		total += float64(same) / float64(k)
	}
	return total / float64(n), nil
}

// selectK partially sorts (idx, d) so the k smallest distances occupy the
// first k positions (quickselect followed by insertion ordering of the head).
func selectK(idx []int, d []float64, k int) {
	lo, hi := 0, len(d)-1
	for lo < hi {
		p := partition(idx, d, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(idx []int, d []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	d[mid], d[hi] = d[hi], d[mid]
	idx[mid], idx[hi] = idx[hi], idx[mid]
	pivot := d[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if d[j] < pivot {
			d[i], d[j] = d[j], d[i]
			idx[i], idx[j] = idx[j], idx[i]
			i++
		}
	}
	d[i], d[hi] = d[hi], d[i]
	idx[i], idx[hi] = idx[hi], idx[i]
	return i
}

// KendallTau computes Kendall's tau-b rank correlation between two numeric
// slices, used to compare sensitivity orderings across granularities (E6).
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, ErrLength
	}
	var concordant, discordant, tiesX, tiesY float64
	n := len(x)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tiesX) * (n0 - tiesY))
	if den == 0 {
		return 0, nil
	}
	return (concordant - discordant) / den, nil
}
