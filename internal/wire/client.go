package wire

import (
	"bufio"
	"context"
	"database/sql"
	"database/sql/driver"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// DriverName is the database/sql driver name the in-repo client
// registers. DSN shape: "user:password@host:port/db" (db optional; when
// present the client issues COM_INIT_DB after authenticating).
//
// The client exists so the integration tests and benchmarks can drive
// the wire server through database/sql without an external MySQL driver
// dependency; it speaks just enough of the protocol for that (text
// queries, no prepared statements, no TLS).
const DriverName = "vapwire"

func init() {
	sql.Register(DriverName, vapDriver{})
}

// ClientError is a server ERR packet surfaced by the client, exposing
// the MySQL errno so tests can assert the cross-transport taxonomy.
type ClientError struct {
	Errno    uint16
	SQLState string
	Message  string
}

func (e *ClientError) Error() string {
	return fmt.Sprintf("wire: server error %d (%s): %s", e.Errno, e.SQLState, e.Message)
}

type vapDriver struct{}

func (vapDriver) Open(dsn string) (driver.Conn, error) {
	user, pass, addr, db, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &clientConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if err := c.handshake(user, pass); err != nil {
		nc.Close()
		return nil, err
	}
	if db != "" {
		if err := c.initDB(db); err != nil {
			nc.Close()
			return nil, err
		}
	}
	return c, nil
}

// parseDSN splits "user:password@addr/db" (password and /db optional).
func parseDSN(dsn string) (user, pass, addr, db string, err error) {
	creds, rest, ok := strings.Cut(dsn, "@")
	if !ok {
		return "", "", "", "", fmt.Errorf("wire: bad DSN %q: want user:password@addr/db", dsn)
	}
	user, pass, _ = strings.Cut(creds, ":")
	addr, db, _ = strings.Cut(rest, "/")
	if user == "" || addr == "" {
		return "", "", "", "", fmt.Errorf("wire: bad DSN %q: empty user or address", dsn)
	}
	return user, pass, addr, db, nil
}

// clientConn is one client connection implementing driver.Conn,
// driver.Pinger, driver.QueryerContext, and driver.ExecerContext.
type clientConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func (c *clientConn) send(seq uint8, payload []byte) error {
	if err := writePacket(c.bw, seq, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *clientConn) recv() ([]byte, uint8, error) {
	return readPacket(c.br)
}

// handshake performs the client half of handshake v10 +
// mysql_native_password.
func (c *clientConn) handshake(user, pass string) error {
	payload, _, err := c.recv()
	if err != nil {
		return fmt.Errorf("wire: reading handshake: %w", err)
	}
	if len(payload) > 0 && payload[0] == errHeader {
		return parseErrPacket(payload)
	}
	scramble, err := parseHandshakeV10(payload)
	if err != nil {
		return err
	}
	resp := buildHandshakeResponse(user, nativePasswordToken(pass, scramble))
	if err := c.send(1, resp); err != nil {
		return err
	}
	reply, seq, err := c.recv()
	if err != nil {
		return fmt.Errorf("wire: reading auth result: %w", err)
	}
	if isAuthSwitch(reply) {
		// Server wants mysql_native_password over a fresh scramble.
		_, rest, err := readNulString(reply[1:])
		if err != nil {
			return fmt.Errorf("wire: bad auth switch request: %w", err)
		}
		newScramble := rest
		if n := len(newScramble); n > 0 && newScramble[n-1] == 0 {
			newScramble = newScramble[:n-1]
		}
		if err := c.send(seq+1, nativePasswordToken(pass, newScramble)); err != nil {
			return err
		}
		if reply, _, err = c.recv(); err != nil {
			return fmt.Errorf("wire: reading auth result: %w", err)
		}
	}
	return expectOK(reply)
}

// parseHandshakeV10 extracts the 20-byte scramble from an Initial
// Handshake v10 payload.
func parseHandshakeV10(b []byte) ([]byte, error) {
	if len(b) < 1 || b[0] != 10 {
		return nil, fmt.Errorf("wire: unexpected handshake protocol version")
	}
	_, rest, err := readNulString(b[1:]) // server version
	if err != nil || len(rest) < 32 {
		return nil, fmt.Errorf("wire: truncated handshake")
	}
	scramble := append([]byte(nil), rest[4:12]...) // part 1 after conn id
	authLen := int(rest[20])
	part2 := authLen - 8 - 1 // minus part 1, minus trailing NUL
	if part2 < 0 || len(rest) < 31+part2 {
		return nil, fmt.Errorf("wire: truncated handshake scramble")
	}
	return append(scramble, rest[31:31+part2]...), nil
}

// buildHandshakeResponse builds a HandshakeResponse41 payload.
func buildHandshakeResponse(user string, token []byte) []byte {
	caps := uint32(capProtocol41 | capSecureConnection | capPluginAuth | capLongPassword)
	b := binary.LittleEndian.AppendUint32(nil, caps)
	b = binary.LittleEndian.AppendUint32(b, maxPacketSize) // max packet size
	b = append(b, charsetUTF8)
	b = append(b, make([]byte, 23)...) // reserved
	b = append(b, user...)
	b = append(b, 0)
	b = append(b, byte(len(token)))
	b = append(b, token...)
	b = append(b, nativePasswordPlugin...)
	b = append(b, 0)
	return b
}

func parseErrPacket(payload []byte) error {
	if len(payload) < 3 || payload[0] != errHeader {
		return fmt.Errorf("wire: malformed ERR packet")
	}
	e := &ClientError{Errno: binary.LittleEndian.Uint16(payload[1:3])}
	rest := payload[3:]
	if len(rest) > 0 && rest[0] == '#' && len(rest) >= 6 {
		e.SQLState = string(rest[1:6])
		rest = rest[6:]
	}
	e.Message = string(rest)
	return e
}

func expectOK(payload []byte) error {
	switch {
	case len(payload) == 0:
		return fmt.Errorf("wire: empty server reply")
	case payload[0] == okHeader:
		return nil
	case payload[0] == errHeader:
		return parseErrPacket(payload)
	default:
		return fmt.Errorf("wire: unexpected reply header 0x%02x", payload[0])
	}
}

func (c *clientConn) initDB(db string) error {
	if err := c.send(0, append([]byte{comInitDB}, db...)); err != nil {
		return err
	}
	payload, _, err := c.recv()
	if err != nil {
		return err
	}
	return expectOK(payload)
}

// --- driver.Conn ---

func (c *clientConn) Prepare(string) (driver.Stmt, error) {
	return nil, fmt.Errorf("wire: prepared statements are not supported")
}

func (c *clientConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("wire: transactions are not supported")
}

func (c *clientConn) Close() error {
	_ = c.send(0, []byte{comQuit}) // best-effort goodbye
	return c.nc.Close()
}

// Ping implements driver.Pinger via COM_PING.
func (c *clientConn) Ping(ctx context.Context) error {
	defer c.applyDeadline(ctx)()
	if err := c.send(0, []byte{comPing}); err != nil {
		return driver.ErrBadConn
	}
	payload, _, err := c.recv()
	if err != nil {
		return driver.ErrBadConn
	}
	return expectOK(payload)
}

// applyDeadline maps a context deadline onto the socket; the returned
// func clears it.
func (c *clientConn) applyDeadline(ctx context.Context) func() {
	if d, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(d)
		return func() { c.nc.SetDeadline(time.Time{}) }
	}
	return func() {}
}

// QueryContext implements driver.QueryerContext over COM_QUERY text
// result sets. Placeholder args are not supported.
func (c *clientConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("wire: query parameters are not supported")
	}
	defer c.applyDeadline(ctx)()
	if err := c.send(0, append([]byte{comQuery}, query...)); err != nil {
		return nil, driver.ErrBadConn
	}
	return c.readResultSet()
}

// ExecContext implements driver.ExecerContext (SET and friends).
func (c *clientConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("wire: query parameters are not supported")
	}
	defer c.applyDeadline(ctx)()
	if err := c.send(0, append([]byte{comQuery}, query...)); err != nil {
		return nil, driver.ErrBadConn
	}
	payload, _, err := c.recv()
	if err != nil {
		return nil, driver.ErrBadConn
	}
	if len(payload) > 0 && payload[0] != okHeader && payload[0] != errHeader {
		// The statement produced a result set; drain it.
		if _, err := c.finishResultSet(payload); err != nil {
			return nil, err
		}
		return driver.RowsAffected(0), nil
	}
	if err := expectOK(payload); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// readResultSet reads a server reply that should be a result set (or OK
// for row-less statements, or ERR).
func (c *clientConn) readResultSet() (driver.Rows, error) {
	payload, _, err := c.recv()
	if err != nil {
		return nil, driver.ErrBadConn
	}
	if len(payload) > 0 && payload[0] == okHeader {
		return &clientRows{}, nil
	}
	if len(payload) > 0 && payload[0] == errHeader {
		return nil, parseErrPacket(payload)
	}
	return c.finishResultSet(payload)
}

// finishResultSet parses a text result set given its already-read column
// count packet.
func (c *clientConn) finishResultSet(countPkt []byte) (*clientRows, error) {
	n, _, err := readLenencInt(countPkt)
	if err != nil {
		return nil, fmt.Errorf("wire: bad column count packet: %w", err)
	}
	rows := &clientRows{}
	for i := uint64(0); i < n; i++ {
		payload, _, err := c.recv()
		if err != nil {
			return nil, driver.ErrBadConn
		}
		name, err := columnNameFromDef(payload)
		if err != nil {
			return nil, err
		}
		rows.cols = append(rows.cols, name)
	}
	payload, _, err := c.recv() // EOF after column definitions
	if err != nil {
		return nil, driver.ErrBadConn
	}
	if len(payload) == 0 || payload[0] != eofHeader {
		return nil, fmt.Errorf("wire: expected EOF after column definitions")
	}
	for {
		payload, _, err := c.recv()
		if err != nil {
			return nil, driver.ErrBadConn
		}
		if len(payload) > 0 && payload[0] == eofHeader && len(payload) < 9 {
			return rows, nil
		}
		if len(payload) > 0 && payload[0] == errHeader {
			return nil, parseErrPacket(payload)
		}
		row, err := parseTextRow(payload, len(rows.cols))
		if err != nil {
			return nil, err
		}
		rows.rows = append(rows.rows, row)
	}
}

// columnNameFromDef extracts the column name from a Column Definition 41
// payload (catalog, schema, table, org_table, name, ...).
func columnNameFromDef(b []byte) (string, error) {
	rest := b
	var err error
	for i := 0; i < 4; i++ { // catalog, schema, table, org_table
		if _, rest, err = readLenencString(rest); err != nil {
			return "", fmt.Errorf("wire: bad column definition: %w", err)
		}
	}
	name, _, err := readLenencString(rest)
	if err != nil {
		return "", fmt.Errorf("wire: bad column definition: %w", err)
	}
	return name, nil
}

// parseTextRow decodes one text-protocol row into driver values
// (strings, nil for NULL). database/sql's convertAssign converts
// strings into the caller's Scan targets.
func parseTextRow(b []byte, ncols int) ([]driver.Value, error) {
	row := make([]driver.Value, 0, ncols)
	rest := b
	for len(row) < ncols {
		if len(rest) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		if rest[0] == nullCell {
			row = append(row, nil)
			rest = rest[1:]
			continue
		}
		var cell string
		var err error
		if cell, rest, err = readLenencString(rest); err != nil {
			return nil, fmt.Errorf("wire: bad row cell: %w", err)
		}
		row = append(row, cell)
	}
	return row, nil
}

// clientRows is a fully materialized result set.
type clientRows struct {
	cols []string
	rows [][]driver.Value
	i    int
}

func (r *clientRows) Columns() []string { return r.cols }
func (r *clientRows) Close() error      { return nil }

func (r *clientRows) Next(dest []driver.Value) error {
	if r.i >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.i])
	r.i++
	return nil
}
