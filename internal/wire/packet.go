// Package wire implements a MySQL client/server wire-protocol frontend
// over the shared frontend.Core: handshake v10, mysql_native_password
// auth mapping usernames to tenants, COM_QUERY/COM_PING/COM_QUIT/
// COM_INIT_DB, and text-protocol result sets. Any stock MySQL client or
// driver can run VQL statements and receive exactly the rows the HTTP
// codec returns, with governance rejections surfaced as ERR packets from
// the same error taxonomy (frontend.MapError).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// maxPacketSize is the largest payload one MySQL packet frame can carry.
// Payloads of exactly this size require continuation frames; VAP result
// rows are tiny, so the writer rejects anything larger instead.
const maxPacketSize = 1<<24 - 1

// Command bytes of the MySQL client/server protocol that the server
// dispatches on.
const (
	comQuit        = 0x01
	comInitDB      = 0x02
	comQuery       = 0x03
	comPing        = 0x0e
	comStmtPrepare = 0x16
)

// Packet header constants.
const (
	okHeader  = 0x00
	eofHeader = 0xfe
	errHeader = 0xff
	nullCell  = 0xfb // text-protocol NULL cell marker
)

// readPacket reads one framed packet: 3-byte little-endian payload
// length, 1-byte sequence id, payload. It returns the payload and the
// sequence id. Multi-frame payloads (16 MiB) are rejected — no VAP
// statement is that long.
func readPacket(r *bufio.Reader) ([]byte, uint8, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
	seq := hdr[3]
	if n == maxPacketSize {
		return nil, seq, fmt.Errorf("wire: oversized packet (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, seq, err
	}
	return payload, seq, nil
}

// writePacket frames payload with the given sequence id and writes it.
func writePacket(w io.Writer, seq uint8, payload []byte) error {
	if len(payload) >= maxPacketSize {
		return fmt.Errorf("wire: payload too large (%d bytes)", len(payload))
	}
	var hdr [4]byte
	hdr[0] = byte(len(payload))
	hdr[1] = byte(len(payload) >> 8)
	hdr[2] = byte(len(payload) >> 16)
	hdr[3] = seq
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// appendLenencInt appends a length-encoded integer.
func appendLenencInt(b []byte, v uint64) []byte {
	switch {
	case v < 0xfb:
		return append(b, byte(v))
	case v <= 0xffff:
		return append(b, 0xfc, byte(v), byte(v>>8))
	case v <= 0xffffff:
		return append(b, 0xfd, byte(v), byte(v>>8), byte(v>>16))
	default:
		b = append(b, 0xfe)
		return binary.LittleEndian.AppendUint64(b, v)
	}
}

// appendLenencString appends a length-encoded string.
func appendLenencString(b []byte, s string) []byte {
	b = appendLenencInt(b, uint64(len(s)))
	return append(b, s...)
}

// readLenencInt decodes a length-encoded integer, returning the value
// and the remaining bytes. The 0xfb marker (NULL) and truncated input
// report an error.
func readLenencInt(b []byte) (uint64, []byte, error) {
	if len(b) == 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	switch first := b[0]; {
	case first < 0xfb:
		return uint64(first), b[1:], nil
	case first == 0xfc:
		if len(b) < 3 {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return uint64(b[1]) | uint64(b[2])<<8, b[3:], nil
	case first == 0xfd:
		if len(b) < 4 {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<16, b[4:], nil
	case first == 0xfe:
		if len(b) < 9 {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return binary.LittleEndian.Uint64(b[1:9]), b[9:], nil
	default:
		return 0, nil, fmt.Errorf("wire: invalid length-encoded integer marker 0x%02x", first)
	}
}

// readLenencString decodes a length-encoded string.
func readLenencString(b []byte) (string, []byte, error) {
	n, rest, err := readLenencInt(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(rest[:n]), rest[n:], nil
}

// readNulString reads a NUL-terminated string.
func readNulString(b []byte) (string, []byte, error) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), b[i+1:], nil
		}
	}
	return "", nil, io.ErrUnexpectedEOF
}

// buildOK builds an OK packet payload (affected rows and insert id are
// always zero for VAP statements; status flags report autocommit).
func buildOK() []byte {
	b := []byte{okHeader}
	b = appendLenencInt(b, 0) // affected rows
	b = appendLenencInt(b, 0) // last insert id
	b = append(b, 0x02, 0x00) // status: SERVER_STATUS_AUTOCOMMIT
	b = append(b, 0x00, 0x00) // warnings
	return b
}

// buildEOF builds an EOF packet payload (classic protocol; the server
// does not advertise CLIENT_DEPRECATE_EOF).
func buildEOF() []byte {
	return []byte{eofHeader, 0x00, 0x00, 0x02, 0x00}
}

// buildErr builds an ERR packet payload carrying a MySQL errno, a
// SQLSTATE, and a human-readable message.
func buildErr(errno uint16, sqlState, msg string) []byte {
	if len(sqlState) != 5 {
		sqlState = "HY000"
	}
	b := []byte{errHeader}
	b = binary.LittleEndian.AppendUint16(b, errno)
	b = append(b, '#')
	b = append(b, sqlState...)
	return append(b, msg...)
}
