package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vap/internal/frontend"
	"vap/internal/govern"
	"vap/internal/vql"
)

// ErrServerClosed is returned by Serve after Shutdown, mirroring
// net/http's contract so cmd/vapd can treat both listeners uniformly.
var ErrServerClosed = errors.New("wire: server closed")

// Config configures the wire-protocol server.
type Config struct {
	// Addr is the listen address, e.g. ":3306" or "127.0.0.1:0".
	Addr string
	// Users is the authentication table (DefaultUsers() if nil).
	Users Users
	// Core executes statements; shared with the HTTP transport so both
	// run the identical lifecycle and governance.
	Core *frontend.Core
	// QueryTimeout bounds one statement end to end, exactly like the
	// HTTP codec's handler timeout (0 = no bound). Sessions may tighten
	// it with SET vap_deadline.
	QueryTimeout time.Duration
	// IdleTimeout closes connections idle between commands
	// (default 5m).
	IdleTimeout time.Duration
	// AuthTimeout bounds the handshake exchange (default 10s).
	AuthTimeout time.Duration
	// Logf, when set, receives connection lifecycle log lines.
	Logf func(format string, args ...any)
}

// Server is a MySQL wire-protocol listener over a frontend.Core. One
// goroutine per connection; admission (max connections, per-tenant
// gauges) is delegated to the shared governor before the handshake is
// even sent, so a connection flood is rejected cheaply.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	nextID   atomic.Uint32
}

// NewServer returns a wire server for cfg. cfg.Core is required.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Core == nil {
		return nil, errors.New("wire: Config.Core is required")
	}
	if cfg.Users == nil {
		cfg.Users = DefaultUsers()
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.AuthTimeout <= 0 {
		cfg.AuthTimeout = 10 * time.Second
	}
	return &Server{cfg: cfg, conns: make(map[*conn]struct{})}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listen address ("" before Serve), so tests can
// listen on ":0" and discover the port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Shutdown closes it, returning
// ErrServerClosed on a clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		// Admission before any protocol work: a connection flood is
		// bounced with one ERR packet and no handshake/scramble cost.
		release, err := s.cfg.Core.Gov().ConnOpen()
		if err != nil {
			go s.refuse(nc, err)
			continue
		}
		s.wg.Add(1)
		go s.serveConn(nc, release)
	}
}

// refuse rejects a connection that failed admission: one ERR packet
// (ER_CON_COUNT_ERROR with the governor's retry hint) instead of a
// handshake, then close.
func (s *Server) refuse(nc net.Conn, err error) {
	defer nc.Close()
	info := frontend.MapError(err)
	errno, msg := info.MyErrno, info.Msg
	if info.Shed != nil && info.Shed.Class == govern.ClassConn {
		errno = frontend.MyErrConnCount
	}
	if info.RetryAfter > 0 && !strings.Contains(msg, "retry after") {
		msg = fmt.Sprintf("%s (retry after %ds)", msg, int(info.RetryAfter/time.Second))
	}
	nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	bw := bufio.NewWriter(nc)
	_ = writePacket(bw, 0, buildErr(errno, info.SQLState, msg))
	_ = bw.Flush()
}

func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) serveConn(nc net.Conn, release func()) {
	defer s.wg.Done()
	defer release()
	defer nc.Close()
	c := &conn{
		srv: s,
		nc:  nc,
		br:  bufio.NewReader(nc),
		bw:  bufio.NewWriter(nc),
		id:  s.nextID.Add(1),
	}
	if !s.track(c) {
		return // raced with Shutdown
	}
	defer s.untrack(c)
	if err := c.run(); err != nil && !errors.Is(err, net.ErrClosed) {
		s.logf("wire: conn %d: %v", c.id, err)
	}
}

// Shutdown drains the server: stops accepting, sends idle connections a
// final ERR 1053 (server shutdown) and closes them, cancels in-flight
// statements, and waits for every connection goroutine — bounded by ctx,
// after which remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		go c.beginShutdown()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// conn is one client connection: its own goroutine runs the handshake
// then the command loop. Writes go through a mutex because Shutdown may
// send an asynchronous final ERR while the loop owns the connection.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	id  uint32

	wmu sync.Mutex
	bw  *bufio.Writer

	sess *frontend.Session

	mu     sync.Mutex
	busy   bool               // a command is being processed
	cancel context.CancelFunc // set while a statement executes
}

func (c *conn) writePacket(seq uint8, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writePacket(c.bw, seq, payload)
}

func (c *conn) flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

func (c *conn) writeErrPacket(seq uint8, errno uint16, sqlState, msg string) error {
	if err := c.writePacket(seq, buildErr(errno, sqlState, msg)); err != nil {
		return err
	}
	return c.flush()
}

// writeStmtErr encodes one classified statement error as an ERR packet.
// The errno/SQLSTATE come from the same frontend.MapError table the HTTP
// codec renders statuses from; shed errors append the retry hint the
// HTTP transport carries in Retry-After.
func (c *conn) writeStmtErr(seq uint8, err error) error {
	info := frontend.MapError(err)
	msg := info.Msg
	if info.Kind == frontend.KindShed && !strings.Contains(msg, "retry after") {
		sec := int(info.RetryAfter / time.Second)
		if sec < 1 {
			sec = 1
		}
		msg = fmt.Sprintf("%s (retry after %ds)", msg, sec)
	}
	return c.writeErrPacket(seq, info.MyErrno, info.SQLState, msg)
}

// beginShutdown is the per-connection half of Server.Shutdown: cancel a
// running statement (its conn will notice draining and exit after the
// response), or tell an idle client the server is going away and close.
func (c *conn) beginShutdown() {
	c.mu.Lock()
	busy, cancel := c.busy, c.cancel
	c.mu.Unlock()
	if busy {
		if cancel != nil {
			cancel()
		}
		return
	}
	_ = c.writeErrPacket(0, frontend.MyErrShutdown, "HY000", "Server shutdown in progress")
	c.nc.Close()
}

// run performs the handshake + auth exchange, then the command loop.
func (c *conn) run() error {
	tenant, err := c.auth()
	if err != nil {
		return err
	}
	// Post-auth admission: bind the connection to its tenant's gauge so
	// the governor's snapshot attributes open connections per tenant.
	unbind := c.srv.cfg.Core.Gov().ConnBind(tenant)
	defer unbind()
	return c.commandLoop()
}

// auth runs handshake v10 + mysql_native_password verification and
// returns the authenticated tenant.
func (c *conn) auth() (string, error) {
	scramble, err := newScramble()
	if err != nil {
		return "", err
	}
	c.nc.SetDeadline(time.Now().Add(c.srv.cfg.AuthTimeout))
	defer c.nc.SetDeadline(time.Time{})
	if err := c.writePacket(0, buildHandshake(c.id, scramble)); err != nil {
		return "", err
	}
	if err := c.flush(); err != nil {
		return "", err
	}
	payload, seq, err := readPacket(c.br)
	if err != nil {
		return "", fmt.Errorf("reading handshake response: %w", err)
	}
	resp, err := parseHandshakeResponse(payload)
	if err != nil {
		_ = c.writeErrPacket(seq+1, frontend.MyErrMalformed, "HY000", err.Error())
		return "", err
	}
	token := resp.authToken
	if resp.plugin != "" && resp.plugin != nativePasswordPlugin {
		// Client opened with another plugin: ask it to redo auth with
		// mysql_native_password over the same scramble.
		if err := c.writePacket(seq+1, buildAuthSwitch(scramble)); err != nil {
			return "", err
		}
		if err := c.flush(); err != nil {
			return "", err
		}
		var sseq uint8
		token, sseq, err = readPacket(c.br)
		if err != nil {
			return "", fmt.Errorf("reading auth switch response: %w", err)
		}
		seq = sseq
	}
	user, ok := c.srv.cfg.Users[resp.user]
	if !ok || !checkNativePassword(user.Password, scramble, token) {
		msg := fmt.Sprintf("Access denied for user '%s'", resp.user)
		_ = c.writeErrPacket(seq+1, frontend.MyErrAccess, "28000", msg)
		return "", fmt.Errorf("wire: %s", msg)
	}
	c.sess = frontend.NewSession(user.Tenant).WithUser(user.Name)
	if resp.database != "" {
		if err := c.sess.UseDB(resp.database); err != nil {
			_ = c.writeStmtErr(seq+1, err)
			return "", err
		}
	}
	if err := c.writePacket(seq+1, buildOK()); err != nil {
		return "", err
	}
	if err := c.flush(); err != nil {
		return "", err
	}
	c.srv.logf("wire: conn %d: user %q tenant %q authenticated", c.id, user.Name, user.Tenant)
	return user.Tenant, nil
}

func (c *conn) commandLoop() error {
	for {
		if c.srv.draining.Load() {
			_ = c.writeErrPacket(0, frontend.MyErrShutdown, "HY000", "Server shutdown in progress")
			return nil
		}
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
		payload, _, err := readPacket(c.br)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, context.Canceled) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				_ = c.writeErrPacket(0, frontend.MyErrShutdown, "HY000", "Connection idle timeout")
				return nil
			}
			if strings.Contains(err.Error(), "EOF") || strings.Contains(err.Error(), "reset") {
				return nil // client hung up between commands
			}
			return err
		}
		c.nc.SetReadDeadline(time.Time{})
		c.mu.Lock()
		c.busy = true
		c.mu.Unlock()
		quit, err := c.dispatch(payload)
		c.mu.Lock()
		c.busy = false
		c.mu.Unlock()
		if quit || err != nil {
			return err
		}
	}
}

// dispatch handles one command packet. Responses always start at
// sequence id 1 (each command resets the sequence).
func (c *conn) dispatch(payload []byte) (quit bool, err error) {
	if len(payload) == 0 {
		return false, c.writeErrPacket(1, frontend.MyErrMalformed, "HY000", "empty command packet")
	}
	cmd, body := payload[0], payload[1:]
	c.sess.NextStmt()
	switch cmd {
	case comQuit:
		return true, nil
	case comPing:
		if err := c.writePacket(1, buildOK()); err != nil {
			return false, err
		}
		return false, c.flush()
	case comInitDB:
		if err := c.sess.UseDB(string(body)); err != nil {
			return false, c.writeStmtErr(1, err)
		}
		if err := c.writePacket(1, buildOK()); err != nil {
			return false, err
		}
		return false, c.flush()
	case comQuery:
		return false, c.handleQuery(string(body))
	default:
		msg := fmt.Sprintf("Unknown command 0x%02x", cmd)
		if cmd == comStmtPrepare {
			msg = "Prepared statements are not supported; use the text protocol"
		}
		return false, c.writeErrPacket(1, frontend.MyErrUnknownCom, "08S01", msg)
	}
}

var (
	setStmtRe    = regexp.MustCompile(`(?is)^set\s+(.+)$`)
	useStmtRe    = regexp.MustCompile(`(?is)^use\s+` + "`?" + `([^\s;` + "`" + `]+)` + "`?" + `\s*$`)
	sysvarRe     = regexp.MustCompile(`(?is)^select\s+@@([a-z_][a-z0-9_.]*)`)
	setAssignRe  = regexp.MustCompile(`(?is)^(?:session\s+|@@session\.|@@)?([a-z_][a-z0-9_]*)\s*=\s*(.+)$`)
	trailingSemi = regexp.MustCompile(`;\s*$`)
)

// handleQuery runs one COM_QUERY. Session statements (SET, USE,
// SELECT @@var) are handled as protocol shims; everything else is a VQL
// statement executed by the shared core, with a watcher goroutine that
// cancels the statement's context the moment the client hangs up.
func (c *conn) handleQuery(src string) error {
	stmt := strings.TrimSpace(trailingSemi.ReplaceAllString(strings.TrimSpace(src), ""))
	if m := setStmtRe.FindStringSubmatch(stmt); m != nil {
		return c.handleSet(m[1])
	}
	if m := useStmtRe.FindStringSubmatch(stmt); m != nil {
		if err := c.sess.UseDB(m[1]); err != nil {
			return c.writeStmtErr(1, err)
		}
		if err := c.writePacket(1, buildOK()); err != nil {
			return err
		}
		return c.flush()
	}
	if m := sysvarRe.FindStringSubmatch(stmt); m != nil {
		return c.handleSysvar(m[1])
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.mu.Lock()
	c.cancel = cancel
	c.mu.Unlock()
	// Watch the read side while the statement runs: a client hangup
	// (EOF/reset) cancels the statement so a dead connection cannot hold
	// an admission slot. Peek is non-destructive, so a pipelined next
	// command is left untouched for the command loop.
	peekDone := make(chan struct{})
	go func() {
		defer close(peekDone)
		if _, err := c.br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return // interrupted by the post-statement deadline poke
			}
			cancel()
		}
	}()
	res, qerr := c.srv.cfg.Core.ExecuteTimeout(ctx, c.sess, stmt, c.srv.cfg.QueryTimeout)
	// Unblock the watcher (bufio clears the deadline error after
	// reporting it, so the reader is reusable) and reclaim the read side.
	c.nc.SetReadDeadline(time.Now())
	<-peekDone
	c.nc.SetReadDeadline(time.Time{})
	c.mu.Lock()
	c.cancel = nil
	c.mu.Unlock()
	if qerr != nil {
		return c.writeStmtErr(1, qerr)
	}
	if _, err := writeResultSet(c, 1, res.Columns, res.ColumnTypes(), res.Rows); err != nil {
		return err
	}
	return c.flush()
}

// handleSet applies a SET statement. vap_-prefixed variables map to the
// session's variables (SET vap_deadline = '500ms'); everything else —
// SET NAMES, SET autocommit, driver boilerplate — is acknowledged and
// ignored so stock clients connect cleanly.
func (c *conn) handleSet(rest string) error {
	rest = strings.TrimSpace(rest)
	if m := setAssignRe.FindStringSubmatch(rest); m != nil {
		name := strings.ToLower(m[1])
		if strings.HasPrefix(name, "vap_") {
			value := strings.Trim(strings.TrimSpace(m[2]), `'"`)
			if err := c.sess.Set(strings.TrimPrefix(name, "vap_"), value); err != nil {
				return c.writeStmtErr(1, err)
			}
		}
	}
	if err := c.writePacket(1, buildOK()); err != nil {
		return err
	}
	return c.flush()
}

// handleSysvar answers SELECT @@var probes (mysql CLI and drivers send
// them on connect) with a one-row result set.
func (c *conn) handleSysvar(name string) error {
	value := ""
	switch strings.ToLower(name) {
	case "version_comment":
		value = "VAP analytics engine"
	case "version":
		value = ServerVersion
	case "max_allowed_packet":
		value = "16777215"
	}
	_, err := writeResultSet(c, 1,
		[]string{"@@" + name}, []vql.ColType{vql.TypeString}, [][]any{{value}})
	if err != nil {
		return err
	}
	return c.flush()
}
