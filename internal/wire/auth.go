package wire

import (
	"bytes"
	"crypto/rand"
	"crypto/sha1"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
)

// ServerVersion is the version string sent in the handshake. The "8.0.0-"
// prefix keeps version-sniffing clients on modern protocol behavior; the
// suffix identifies VAP.
const ServerVersion = "8.0.0-vap"

// nativePasswordPlugin is the only auth plugin the server speaks.
const nativePasswordPlugin = "mysql_native_password"

// Capability flags the server advertises. Deliberately NOT advertised:
// CLIENT_DEPRECATE_EOF (keeps result sets in the classic EOF-terminated
// encoding, which the golden tests pin) and CLIENT_SSL.
const (
	capLongPassword     = 0x00000001
	capLongFlag         = 0x00000004
	capConnectWithDB    = 0x00000008
	capProtocol41       = 0x00000200
	capTransactions     = 0x00002000
	capSecureConnection = 0x00008000
	capPluginAuth       = 0x00080000

	serverCapabilities = capLongPassword | capLongFlag | capConnectWithDB |
		capProtocol41 | capTransactions | capSecureConnection | capPluginAuth
)

// charsetUTF8 is charset id 33 (utf8_general_ci), the connection charset.
const charsetUTF8 = 33

// newScramble returns a 20-byte auth challenge with no zero bytes (the
// handshake carries it as two NUL-terminated chunks, so embedded zeros
// would truncate it on the client side).
func newScramble() ([]byte, error) {
	s := make([]byte, 20)
	if _, err := rand.Read(s); err != nil {
		return nil, err
	}
	for i := range s {
		s[i] = s[i]%94 + 33 // printable ASCII, never zero
	}
	return s, nil
}

// buildHandshake builds the Initial Handshake v10 payload for one
// connection. Pure function of its inputs so golden tests can pin the
// exact encoding.
func buildHandshake(connID uint32, scramble []byte) []byte {
	b := []byte{10} // protocol version
	b = append(b, ServerVersion...)
	b = append(b, 0)
	b = binary.LittleEndian.AppendUint32(b, connID)
	b = append(b, scramble[:8]...) // auth-plugin-data part 1
	b = append(b, 0)               // filler
	b = binary.LittleEndian.AppendUint16(b, uint16(serverCapabilities&0xffff))
	b = append(b, charsetUTF8)
	b = append(b, 0x02, 0x00) // status: SERVER_STATUS_AUTOCOMMIT
	b = binary.LittleEndian.AppendUint16(b, uint16(serverCapabilities>>16))
	b = append(b, byte(len(scramble)+1)) // auth-plugin-data length
	b = append(b, make([]byte, 10)...)   // reserved
	b = append(b, scramble[8:]...)       // auth-plugin-data part 2
	b = append(b, 0)
	b = append(b, nativePasswordPlugin...)
	b = append(b, 0)
	return b
}

// handshakeResponse is the parsed HandshakeResponse41 from the client.
type handshakeResponse struct {
	capabilities uint32
	user         string
	authToken    []byte
	database     string
	plugin       string
}

// parseHandshakeResponse decodes a HandshakeResponse41 payload.
func parseHandshakeResponse(b []byte) (*handshakeResponse, error) {
	if len(b) < 32 {
		return nil, fmt.Errorf("wire: handshake response too short (%d bytes)", len(b))
	}
	r := &handshakeResponse{capabilities: binary.LittleEndian.Uint32(b[0:4])}
	if r.capabilities&capProtocol41 == 0 {
		return nil, fmt.Errorf("wire: client does not speak protocol 4.1")
	}
	rest := b[32:] // skip max packet size (4), charset (1), reserved (23)
	var err error
	if r.user, rest, err = readNulString(rest); err != nil {
		return nil, fmt.Errorf("wire: handshake response: bad username: %w", err)
	}
	const capPluginAuthLenencData = 0x00200000
	switch {
	case r.capabilities&capPluginAuthLenencData != 0:
		var tok string
		if tok, rest, err = readLenencString(rest); err != nil {
			return nil, fmt.Errorf("wire: handshake response: bad auth token: %w", err)
		}
		r.authToken = []byte(tok)
	case r.capabilities&capSecureConnection != 0:
		if len(rest) < 1 || len(rest) < 1+int(rest[0]) {
			return nil, fmt.Errorf("wire: handshake response: truncated auth token")
		}
		n := int(rest[0])
		r.authToken = append([]byte(nil), rest[1:1+n]...)
		rest = rest[1+n:]
	default:
		var tok string
		if tok, rest, err = readNulString(rest); err != nil {
			return nil, fmt.Errorf("wire: handshake response: bad auth token: %w", err)
		}
		r.authToken = []byte(tok)
	}
	if r.capabilities&capConnectWithDB != 0 && len(rest) > 0 {
		if r.database, rest, err = readNulString(rest); err != nil {
			return nil, fmt.Errorf("wire: handshake response: bad database: %w", err)
		}
	}
	if r.capabilities&capPluginAuth != 0 && len(rest) > 0 {
		// Tolerate a missing trailing NUL — some clients omit it.
		if r.plugin, _, err = readNulString(rest); err != nil {
			r.plugin = string(rest)
		}
	}
	return r, nil
}

// nativePasswordToken computes the mysql_native_password proof:
// SHA1(scramble ‖ SHA1(SHA1(password))) XOR SHA1(password). An empty
// password yields an empty token.
func nativePasswordToken(password string, scramble []byte) []byte {
	if password == "" {
		return nil
	}
	h1 := sha1.Sum([]byte(password)) // SHA1(password)
	h2 := sha1.Sum(h1[:])            // SHA1(SHA1(password))
	mix := sha1.New()
	mix.Write(scramble)
	mix.Write(h2[:])
	tok := mix.Sum(nil) // SHA1(scramble ‖ SHA1(SHA1(password)))
	for i := range tok {
		tok[i] ^= h1[i]
	}
	return tok
}

// checkNativePassword verifies the client's auth token against the
// expected password in constant time.
func checkNativePassword(password string, scramble, token []byte) bool {
	want := nativePasswordToken(password, scramble)
	if len(want) == 0 || len(token) == 0 {
		return len(want) == 0 && len(token) == 0
	}
	return subtle.ConstantTimeCompare(want, token) == 1
}

// buildAuthSwitch builds an AuthSwitchRequest asking the client to redo
// auth with mysql_native_password — sent when the client initially
// responded with a different plugin (e.g. caching_sha2_password).
func buildAuthSwitch(scramble []byte) []byte {
	b := []byte{eofHeader}
	b = append(b, nativePasswordPlugin...)
	b = append(b, 0)
	b = append(b, scramble...)
	b = append(b, 0)
	return b
}

// isAuthSwitch reports whether a server payload is an AuthSwitchRequest
// (used by the in-repo test client).
func isAuthSwitch(payload []byte) bool {
	return len(payload) > 1 && payload[0] == eofHeader && bytes.IndexByte(payload[1:], 0) > 0
}
