package wire

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"vap/internal/frontend"
	"vap/internal/vql"
)

// MySQL column type bytes for the column definition packets.
const (
	mysqlTypeDouble    = 0x05
	mysqlTypeLongLong  = 0x08
	mysqlTypeVarString = 0xfd
)

// charsetBinary is charset id 63, used for numeric columns.
const charsetBinary = 63

// colDef is the wire shape of one column: the MySQL type byte, the
// column charset, and a display length.
type colDef struct {
	mysqlType byte
	charset   uint16
	length    uint32
}

// colDefFor maps a frontend column type to its wire definition. Bucket
// timestamps (TypeTime) stay 64-bit integers on the wire — exactly the
// value the HTTP codec returns — so the two transports' rows are
// byte-for-byte comparable.
func colDefFor(t vql.ColType) colDef {
	switch t {
	case vql.TypeInt64, vql.TypeTime:
		return colDef{mysqlType: mysqlTypeLongLong, charset: charsetBinary, length: 20}
	case vql.TypeFloat64:
		return colDef{mysqlType: mysqlTypeDouble, charset: charsetBinary, length: 22}
	default:
		return colDef{mysqlType: mysqlTypeVarString, charset: charsetUTF8, length: 1024}
	}
}

// buildColumnDef builds a Column Definition 41 payload.
func buildColumnDef(name string, t vql.ColType) []byte {
	def := colDefFor(t)
	b := appendLenencString(nil, "def")              // catalog
	b = appendLenencString(b, frontend.DatabaseName) // schema
	b = appendLenencString(b, "result")              // table
	b = appendLenencString(b, "result")              // org_table
	b = appendLenencString(b, name)                  // name
	b = appendLenencString(b, name)                  // org_name
	b = append(b, 0x0c)                              // fixed-length fields length
	b = binary.LittleEndian.AppendUint16(b, def.charset)
	b = binary.LittleEndian.AppendUint32(b, def.length)
	b = append(b, def.mysqlType)
	b = append(b, 0x00, 0x00) // flags
	b = append(b, 0x1f)       // decimals (31 = dynamic)
	b = append(b, 0x00, 0x00) // filler
	return b
}

// renderCell renders one typed result cell as its text-protocol string.
// The encodings match what the JSON codec emits for the same cell, so a
// wire client and an HTTP client see identical values.
func renderCell(cell any) (string, bool, error) {
	switch v := cell.(type) {
	case nil:
		return "", true, nil
	case int64:
		return strconv.FormatInt(v, 10), false, nil
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64), false, nil
	case string:
		return v, false, nil
	default:
		return "", false, fmt.Errorf("wire: unsupported cell type %T", cell)
	}
}

// buildRow builds a text-protocol row payload from typed cells.
func buildRow(row []any) ([]byte, error) {
	var b []byte
	for _, cell := range row {
		s, isNull, err := renderCell(cell)
		if err != nil {
			return nil, err
		}
		if isNull {
			b = append(b, nullCell)
			continue
		}
		b = appendLenencString(b, s)
	}
	return b, nil
}

// writeResultSet writes a complete classic-protocol text result set:
// column count, column definitions, EOF, rows, EOF. seq is the first
// sequence id to use; the last sequence id used is returned so callers
// continue numbering correctly.
func writeResultSet(w pktWriter, seq uint8, cols []string, types []vql.ColType, rows [][]any) (uint8, error) {
	if err := w.writePacket(seq, appendLenencInt(nil, uint64(len(cols)))); err != nil {
		return seq, err
	}
	for i, name := range cols {
		t := vql.TypeString
		if i < len(types) {
			t = types[i]
		}
		seq++
		if err := w.writePacket(seq, buildColumnDef(name, t)); err != nil {
			return seq, err
		}
	}
	seq++
	if err := w.writePacket(seq, buildEOF()); err != nil {
		return seq, err
	}
	for _, row := range rows {
		payload, err := buildRow(row)
		if err != nil {
			return seq, err
		}
		seq++
		if err := w.writePacket(seq, payload); err != nil {
			return seq, err
		}
	}
	seq++
	if err := w.writePacket(seq, buildEOF()); err != nil {
		return seq, err
	}
	return seq, nil
}

// pktWriter is the minimal packet sink writeResultSet needs — the
// server's per-connection locked writer implements it, and tests can
// substitute an in-memory recorder.
type pktWriter interface {
	writePacket(seq uint8, payload []byte) error
}
