package wire

import (
	"bytes"
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vap/internal/api"
	"vap/internal/core"
	"vap/internal/frontend"
	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/store"
)

// testBase is 2017-06-01 00:00:00 UTC, matching the API test dataset so
// bucket values are directly comparable across suites.
const testBase int64 = 1496275200

// newTestStore builds the deterministic four-meter store the API tests
// use (constant per-meter values over 48 hourly samples) so both
// transports produce exactly predictable rows.
func newTestStore(t testing.TB) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	meters := []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 10.10, Lat: 55.60}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 10.12, Lat: 55.62}, Zone: store.ZoneResidential},
		{ID: 3, Location: geo.Point{Lon: 10.30, Lat: 55.70}, Zone: store.ZoneCommercial},
		{ID: 4, Location: geo.Point{Lon: 10.50, Lat: 55.80}, Zone: store.ZoneIndustrial},
	}
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 48; h++ {
			if err := st.Append(m.ID, store.Sample{TS: testBase + int64(h)*3600, Value: float64(m.ID)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

// testStack is one full two-transport deployment over a shared core: the
// wire listener plus an httptest HTTP server, exactly the cmd/vapd
// wiring.
type testStack struct {
	st   *store.Store
	gov  *govern.Controller
	core *frontend.Core
	wire *Server
	addr string
	http *httptest.Server
}

func newStack(t testing.TB, govCfg govern.Config, users Users) *testStack {
	t.Helper()
	st := newTestStore(t)
	gov := govern.New(govCfg)
	an := core.NewAnalyzerOpts(st, core.Options{Gov: gov})
	apiSrv := api.NewServerWith(an, nil, api.Config{})
	hs := httptest.NewServer(apiSrv.Routes())
	t.Cleanup(hs.Close)

	ws, err := NewServer(Config{Users: users, Core: apiSrv.Core(), QueryTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	})
	return &testStack{st: st, gov: gov, core: apiSrv.Core(), wire: ws, addr: ln.Addr().String(), http: hs}
}

func (s *testStack) open(t testing.TB, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// postQuery runs one statement over the HTTP transport.
func postQuery(t testing.TB, url, tenant, query string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": query})
	req, _ := http.NewRequest(http.MethodPost, url+"/api/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(api.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func wireErrno(t testing.TB, err error) uint16 {
	t.Helper()
	var ce *ClientError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *ClientError", err, err)
	}
	return ce.Errno
}

// TestWireHTTPRowParity is the acceptance check: the same VQL statement
// over a stock database/sql client and over POST /api/query returns
// identical rows, including bucket timestamps and float aggregates.
func TestWireHTTPRowParity(t *testing.T) {
	s := newStack(t, govern.Config{}, nil)
	db := s.open(t, "vap:@"+s.addr+"/vap")

	const q = "SELECT bucket(daily) AS day, mean(value) AS avg_kwh, count(*) AS n FROM meters WHERE zone = 'residential' GROUP BY bucket(daily) ORDER BY day"
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	type parityRow struct {
		day  int64
		mean float64
		n    int64
	}
	var got []parityRow
	for rows.Next() {
		var r parityRow
		if err := rows.Scan(&r.day, &r.mean, &r.n); err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}

	status, out := postQuery(t, s.http.URL, "", q)
	if status != http.StatusOK {
		t.Fatalf("HTTP status = %d: %v", status, out)
	}
	httpCols := out["columns"].([]any)
	if len(httpCols) != len(cols) {
		t.Fatalf("column count: wire %d vs http %d", len(cols), len(httpCols))
	}
	for i, c := range httpCols {
		if cols[i] != c.(string) {
			t.Errorf("column %d: wire %q vs http %q", i, cols[i], c)
		}
	}
	httpRows := out["rows"].([]any)
	if len(httpRows) != len(got) {
		t.Fatalf("row count: wire %d vs http %d", len(got), len(httpRows))
	}
	if len(got) != 2 {
		t.Fatalf("want 2 daily buckets, got %d", len(got))
	}
	for i, hr := range httpRows {
		cells := hr.([]any)
		if int64(cells[0].(float64)) != got[i].day {
			t.Errorf("row %d day: wire %d vs http %v", i, got[i].day, cells[0])
		}
		if cells[1].(float64) != got[i].mean {
			t.Errorf("row %d mean: wire %v vs http %v", i, got[i].mean, cells[1])
		}
		if int64(cells[2].(float64)) != got[i].n {
			t.Errorf("row %d count: wire %d vs http %v", i, got[i].n, cells[2])
		}
	}
	// Residential = meters 1 and 2, 24 samples each per day: mean 1.5.
	if got[0].day != testBase || got[0].mean != 1.5 || got[0].n != 48 {
		t.Errorf("row 0 = %+v", got[0])
	}

	// String (zone) columns survive the text protocol identically too.
	zr, err := db.Query("SELECT zone, sum(value) FROM meters GROUP BY zone ORDER BY zone")
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	var zones []string
	for zr.Next() {
		var zone string
		var sum float64
		if err := zr.Scan(&zone, &sum); err != nil {
			t.Fatal(err)
		}
		zones = append(zones, fmt.Sprintf("%s=%g", zone, sum))
	}
	if err := zr.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"commercial=144", "industrial=192", "residential=144"}
	if strings.Join(zones, ",") != strings.Join(want, ",") {
		t.Errorf("zones = %v, want %v", zones, want)
	}
}

// TestWireAuth covers the credential paths: good login, wrong password,
// unknown user (ERR 1045), and database selection (COM_INIT_DB + ERR
// 1049 for anything but "vap").
func TestWireAuth(t *testing.T) {
	users := Users{
		"alice": {Name: "alice", Password: "secret", Tenant: "dash"},
		"bob":   {Name: "bob"},
	}
	s := newStack(t, govern.Config{}, users)

	if err := s.open(t, "alice:secret@"+s.addr+"/vap").Ping(); err != nil {
		t.Fatalf("valid login: %v", err)
	}
	if err := s.open(t, "bob:@"+s.addr).Ping(); err != nil {
		t.Fatalf("password-less login: %v", err)
	}
	if err := s.open(t, "alice:wrong@"+s.addr).Ping(); err == nil {
		t.Fatal("wrong password accepted")
	} else if wireErrno(t, err) != frontend.MyErrAccess {
		t.Errorf("wrong password errno = %d, want %d", wireErrno(t, err), frontend.MyErrAccess)
	}
	if err := s.open(t, "mallory:x@"+s.addr).Ping(); err == nil {
		t.Fatal("unknown user accepted")
	} else if wireErrno(t, err) != frontend.MyErrAccess {
		t.Errorf("unknown user errno = %d, want %d", wireErrno(t, err), frontend.MyErrAccess)
	}
	if err := s.open(t, "alice:secret@"+s.addr+"/other").Ping(); err == nil {
		t.Fatal("unknown database accepted")
	} else if wireErrno(t, err) != frontend.MyErrUnknownDB {
		t.Errorf("unknown db errno = %d, want %d", wireErrno(t, err), frontend.MyErrUnknownDB)
	}
}

// TestWireSessionStatements covers the protocol shims: SET vap_* session
// variables, driver-boilerplate SET tolerance, @@sysvar probes, USE, and
// the statement-error taxonomy for bad input.
func TestWireSessionStatements(t *testing.T) {
	s := newStack(t, govern.Config{}, nil)
	db := s.open(t, "vap:@"+s.addr)
	db.SetMaxOpenConns(1) // session variables live per connection

	if _, err := db.Exec("SET NAMES utf8mb4"); err != nil {
		t.Fatalf("SET NAMES: %v", err)
	}
	var comment string
	if err := db.QueryRow("select @@version_comment limit 1").Scan(&comment); err != nil {
		t.Fatalf("select @@version_comment: %v", err)
	}
	if comment == "" {
		t.Error("empty @@version_comment")
	}
	if _, err := db.Exec("USE vap"); err != nil {
		t.Fatalf("USE vap: %v", err)
	}
	if _, err := db.Exec("USE nope"); err == nil {
		t.Fatal("USE nope accepted")
	} else if wireErrno(t, err) != frontend.MyErrUnknownDB {
		t.Errorf("USE nope errno = %d", wireErrno(t, err))
	}

	// A 1ns session deadline times every statement out with the shared
	// timeout taxonomy (ERR 3024 = HTTP 504).
	if _, err := db.Exec("SET vap_deadline = '1ns'"); err != nil {
		t.Fatalf("SET vap_deadline: %v", err)
	}
	_, err := db.Query("SELECT count(*) FROM meters GROUP BY zone")
	if err == nil {
		t.Fatal("query under 1ns deadline succeeded")
	}
	if wireErrno(t, err) != frontend.MyErrTimeout {
		t.Errorf("deadline errno = %d, want %d", wireErrno(t, err), frontend.MyErrTimeout)
	}
	if _, err := db.Exec("SET vap_deadline = '0'"); err != nil {
		t.Fatalf("clear vap_deadline: %v", err)
	}
	after, err := db.Query("SELECT count(*) FROM meters GROUP BY zone")
	if err != nil {
		t.Fatalf("query after clearing deadline: %v", err)
	}
	after.Close()
	if _, err := db.Exec("SET vap_format = 'bogus'"); err == nil {
		t.Fatal("bad session variable value accepted")
	}

	// Parse errors carry ER_PARSE_ERROR; empty statements ER_EMPTY_QUERY.
	if _, err := db.Query("SELEC nope"); wireErrno(t, err) != frontend.MyErrParse {
		t.Errorf("parse errno = %d, want %d", wireErrno(t, err), frontend.MyErrParse)
	}
	if _, err := db.Query("   "); wireErrno(t, err) != frontend.MyErrEmptyQuery {
		t.Errorf("empty errno = %d, want %d", wireErrno(t, err), frontend.MyErrEmptyQuery)
	}

	// Unsupported protocol commands get ERR 1047 from the dispatcher.
	raw, err := vapDriver{}.Open("vap:@" + s.addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := raw.(*clientConn)
	defer cc.Close()
	if err := cc.send(0, []byte{comStmtPrepare, 'x'}); err != nil {
		t.Fatal(err)
	}
	payload, _, err := cc.recv()
	if err != nil {
		t.Fatal(err)
	}
	if e := expectOK(payload); e == nil || wireErrno(t, e) != frontend.MyErrUnknownCom {
		t.Errorf("COM_STMT_PREPARE reply = %v, want errno %d", e, frontend.MyErrUnknownCom)
	}
}

// TestWireGovernanceTaxonomy proves governance applies identically over
// both transports: a cost-ceiling rejection is ERR 1644 on the wire and
// 422 over HTTP; an overload shed is ERR 1041 with a retry hint and 429
// with Retry-After over HTTP.
func TestWireGovernanceTaxonomy(t *testing.T) {
	users := Users{
		"vap":   {Name: "vap"},
		"batch": {Name: "batch", Tenant: "batch"},
	}
	s := newStack(t, govern.Config{
		MaxConcurrent: 1,
		MaxQueueWait:  100 * time.Millisecond,
		Tenants:       map[string]govern.Quota{"batch": {MaxCostSamples: 10}},
	}, users)

	const q = "SELECT count(*) FROM meters GROUP BY zone"

	// Cost ceiling: tenant "batch" may not scan more than 10 samples.
	db := s.open(t, "batch:@"+s.addr)
	_, err := db.Query(q)
	if err == nil {
		t.Fatal("over-ceiling query admitted")
	}
	if got := wireErrno(t, err); got != frontend.MyErrCost {
		t.Errorf("cost errno = %d, want %d", got, frontend.MyErrCost)
	}
	status, body := postQuery(t, s.http.URL, "batch", q)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("HTTP cost status = %d (%v), want 422", status, body)
	}

	// Overload shed: occupy the single admission slot, then query with a
	// short queue wait. Both transports reject from the same ShedError.
	grant, err := s.gov.Admit(context.Background(), govern.Request{Tenant: "hold", EstSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	db2 := s.open(t, "vap:@"+s.addr)
	_, err = db2.Query(q)
	if err == nil {
		grant.Release()
		t.Fatal("query admitted while slot held")
	}
	var ce *ClientError
	if !errors.As(err, &ce) {
		grant.Release()
		t.Fatalf("shed error is %T: %v", err, err)
	}
	if ce.Errno != frontend.MyErrShed {
		t.Errorf("shed errno = %d, want %d", ce.Errno, frontend.MyErrShed)
	}
	if !strings.Contains(ce.Message, "retry after") {
		t.Errorf("shed message lacks retry hint: %q", ce.Message)
	}
	httpReq, _ := http.NewRequest(http.MethodPost, s.http.URL+"/api/query", strings.NewReader(q))
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		grant.Release()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("HTTP shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("HTTP shed response lacks Retry-After")
	}
	grant.Release()
}

// TestWireConnCloseCancelsQuery closes a connection while its statement
// is stuck in the admission queue and asserts the statement's context is
// cancelled (the queue drains instead of holding the slot).
func TestWireConnCloseCancelsQuery(t *testing.T) {
	s := newStack(t, govern.Config{
		MaxConcurrent: 1,
		MaxQueueWait:  30 * time.Second,
	}, nil)

	grant, err := s.gov.Admit(context.Background(), govern.Request{Tenant: "hold", EstSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()

	raw, err := vapDriver{}.Open("vap:@" + s.addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := raw.(*clientConn)
	if err := cc.send(0, append([]byte{comQuery}, "SELECT count(*) FROM meters GROUP BY zone"...)); err != nil {
		t.Fatal(err)
	}
	// Wait until the statement is actually queued behind the held grant.
	waitFor(t, time.Second, func() bool { return s.gov.Snapshot().QueueDepth == 1 })
	cc.nc.Close() // client dies mid-query

	// The server-side watcher must cancel the statement: the queue entry
	// is abandoned without the held slot ever being released.
	waitFor(t, 2*time.Second, func() bool { return s.gov.Snapshot().QueueDepth == 0 })
	if snap := s.gov.Snapshot(); snap.Active != 1 {
		t.Errorf("active = %d, want only the held grant", snap.Active)
	}
}

// TestWireMaxConns verifies pre-handshake connection admission: with
// MaxConns=1 the second connection is refused with ERR 1040 and the
// governor counts the shed.
func TestWireMaxConns(t *testing.T) {
	s := newStack(t, govern.Config{MaxConns: 1}, nil)

	raw, err := vapDriver{}.Open("vap:@" + s.addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := raw.(*clientConn)
	waitFor(t, time.Second, func() bool { return s.gov.Snapshot().OpenConns == 1 })

	_, err = vapDriver{}.Open("vap:@" + s.addr)
	if err == nil {
		t.Fatal("second connection admitted over MaxConns=1")
	}
	if got := wireErrno(t, err); got != frontend.MyErrConnCount {
		t.Errorf("refusal errno = %d, want %d", got, frontend.MyErrConnCount)
	}
	snap := s.gov.Snapshot()
	if snap.ConnsShed == 0 {
		t.Errorf("ConnsShed = 0, want > 0")
	}

	cc.Close()
	waitFor(t, time.Second, func() bool { return s.gov.Snapshot().OpenConns == 0 })
	raw3, err := vapDriver{}.Open("vap:@" + s.addr)
	if err != nil {
		t.Fatalf("connection after release refused: %v", err)
	}
	raw3.(*clientConn).Close()
}

// TestWireShutdown drains the server under load: an idle connection
// receives a final ERR 1053 before its socket closes, and Shutdown
// returns once every connection goroutine exits.
func TestWireShutdown(t *testing.T) {
	s := newStack(t, govern.Config{}, nil)

	raw, err := vapDriver{}.Open("vap:@" + s.addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := raw.(*clientConn)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.wire.Shutdown(ctx) }()

	payload, _, err := cc.recv()
	if err != nil {
		t.Fatalf("idle conn got no shutdown notice: %v", err)
	}
	if e := expectOK(payload); e == nil || wireErrno(t, e) != frontend.MyErrShutdown {
		t.Errorf("shutdown notice = %v, want errno %d", e, frontend.MyErrShutdown)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener is gone too.
	if _, err := net.DialTimeout("tcp", s.addr, 200*time.Millisecond); err == nil {
		t.Errorf("listener still accepting after Shutdown")
	}
}

// TestWireConcurrentSessionsWithIngest is the -race workhorse: several
// database/sql sessions query concurrently while live ingest appends to
// the store, exercising session state, the shared core, governance
// gauges, and the per-connection writer under the race detector.
func TestWireConcurrentSessionsWithIngest(t *testing.T) {
	s := newStack(t, govern.Config{}, nil)
	db := s.open(t, "vap:@"+s.addr+"/vap")
	db.SetMaxOpenConns(4)

	stop := make(chan struct{})
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		ts := testBase + 48*3600
		for {
			select {
			case <-stop:
				return
			default:
			}
			for m := int64(1); m <= 4; m++ {
				if err := s.st.Append(m, store.Sample{TS: ts, Value: float64(m)}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
			ts += 3600
			// Throttle so the dataset stays small while still racing
			// every query against live version bumps.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rows, err := db.Query("SELECT zone, count(*), mean(value) FROM meters GROUP BY zone ORDER BY zone")
				if err != nil {
					t.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				n := 0
				for rows.Next() {
					var zone string
					var count int64
					var mean float64
					if err := rows.Scan(&zone, &count, &mean); err != nil {
						t.Errorf("worker %d scan: %v", g, err)
						break
					}
					n++
				}
				rows.Close()
				if err := rows.Err(); err != nil {
					t.Errorf("worker %d rows: %v", g, err)
				}
				if n != 3 {
					t.Errorf("worker %d query %d: %d zones, want 3", g, i, n)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	ingestWG.Wait()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
