package wire

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// User is one wire-protocol login: a username/password pair mapped to
// the governance tenant its statements bill against. The username is the
// MySQL identity; the tenant is the VAP identity — several users may
// share one tenant.
type User struct {
	Name     string
	Password string
	Tenant   string
}

// Users maps username → credentials+tenant for the wire server's auth
// step. The zero value rejects everyone; DefaultUsers allows a single
// password-less "vap" login on the default tenant for local development.
type Users map[string]User

// DefaultUsers is the user table when no -mysql-users file is given: one
// password-less "vap" user on the default (empty) tenant, mirroring the
// HTTP transport's open default.
func DefaultUsers() Users {
	return Users{"vap": {Name: "vap"}}
}

// ParseUsers parses a user file: one "username:password:tenant" triple
// per line, '#' comments and blank lines ignored. Password and tenant
// may be empty ("alice::" is a password-less user on the default
// tenant). Usernames must be unique.
func ParseUsers(r *bufio.Scanner) (Users, error) {
	users := make(Users)
	line := 0
	for r.Scan() {
		line++
		text := strings.TrimSpace(r.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("wire: users line %d: want username:password:tenant, got %q", line, text)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("wire: users line %d: empty username", line)
		}
		if _, dup := users[name]; dup {
			return nil, fmt.Errorf("wire: users line %d: duplicate user %q", line, name)
		}
		users[name] = User{Name: name, Password: parts[1], Tenant: strings.TrimSpace(parts[2])}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return users, nil
}

// LoadUsers reads a user file from disk. An empty path returns
// DefaultUsers.
func LoadUsers(path string) (Users, error) {
	if path == "" {
		return DefaultUsers(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	users, err := ParseUsers(bufio.NewScanner(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("wire: users file %s defines no users", path)
	}
	return users, nil
}
