package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"testing"

	"vap/internal/vql"
)

// goldenScramble is the fixed 20-byte challenge the golden encodings
// below were produced with.
var goldenScramble = []byte("ABCDEFGHIJKLMNOPQRST")

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex literal: %v", err)
	}
	return b
}

// TestHandshakeGolden pins the exact Initial Handshake v10 payload: any
// drift in capability flags, charset, status, or layout — which stock
// clients dispatch on — fails loudly here instead of as a mysterious
// client hang.
func TestHandshakeGolden(t *testing.T) {
	want := fromHex(t,
		"0a382e302e302d76617000010000004142434445464748000da2210200080015"+
			"00000000000000000000494a4b4c4d4e4f5051525354006d7973716c5f6e6174"+
			"6976655f70617373776f726400")
	got := buildHandshake(1, goldenScramble)
	if !bytes.Equal(got, want) {
		t.Fatalf("handshake payload drifted:\n got %x\nwant %x", got, want)
	}
}

func TestOKEOFErrGolden(t *testing.T) {
	if got := buildOK(); !bytes.Equal(got, fromHex(t, "00000002000000")) {
		t.Errorf("OK payload = %x", got)
	}
	if got := buildEOF(); !bytes.Equal(got, fromHex(t, "fe00000200")) {
		t.Errorf("EOF payload = %x", got)
	}
	// ERR 1644 (cost rejection) with SQLSTATE 45000: 0xff, errno LE,
	// '#', state, message.
	if got := buildErr(1644, "45000", "cost"); !bytes.Equal(got, fromHex(t, "ff6c06233435303030636f7374")) {
		t.Errorf("ERR payload = %x", got)
	}
	// A non-5-byte SQLSTATE falls back to HY000 rather than corrupting
	// the fixed-width field.
	if got := buildErr(1105, "bad", "m"); !bytes.Equal(got[3:9], []byte("#HY000")) {
		t.Errorf("ERR fallback state = %x", got)
	}
}

// recWriter records framed packets in memory for result-set goldens.
type recWriter struct{ buf bytes.Buffer }

func (r *recWriter) writePacket(seq uint8, payload []byte) error {
	return writePacket(&r.buf, seq, payload)
}

// TestResultSetGolden pins a complete classic text result set — column
// count, three column definitions (time, float, string), EOF, two rows
// (one NULL cell), EOF — including framing and sequence ids.
func TestResultSetGolden(t *testing.T) {
	w := &recWriter{}
	last, err := writeResultSet(w, 1,
		[]string{"day", "avg_kwh", "note"},
		[]vql.ColType{vql.TypeTime, vql.TypeFloat64, vql.TypeString},
		[][]any{
			{int64(1496275200), float64(1.5), "a"},
			{int64(1496361600), nil, "b"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if last != 8 {
		t.Errorf("last sequence id = %d, want 8", last)
	}
	want := fromHex(t,
		"01000001032b000002036465660376617006726573756c7406726573756c7403"+
			"646179036461790c3f00140000000800001f000033000003036465660376617006"+
			"726573756c7406726573756c74076176675f6b7768076176675f6b77680c3f0016"+
			"0000000500001f00002d000004036465660376617006726573756c7406726573756c"+
			"74046e6f7465046e6f74650c210000040000fd00001f000005000005fe0000020011"+
			"0000060a3134393632373532303003312e3501610e0000070a31343936333631363030"+
			"fb016205000008fe00000200")
	if !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatalf("result set stream drifted:\n got %x\nwant %x", w.buf.Bytes(), want)
	}
}

// TestNativePasswordVector pins the mysql_native_password proof against
// a vector computed independently (python hashlib):
// SHA1(scramble ‖ SHA1(SHA1(pw))) XOR SHA1(pw).
func TestNativePasswordVector(t *testing.T) {
	want := fromHex(t, "28441590674285e7d03cae7af237504797f70e91")
	got := nativePasswordToken("secret", goldenScramble)
	if !bytes.Equal(got, want) {
		t.Fatalf("token = %x, want %x", got, want)
	}
	if !checkNativePassword("secret", goldenScramble, want) {
		t.Errorf("valid token rejected")
	}
	if checkNativePassword("secret", goldenScramble, append([]byte(nil), make([]byte, 20)...)) {
		t.Errorf("zero token accepted")
	}
	if tok := nativePasswordToken("", goldenScramble); len(tok) != 0 {
		t.Errorf("empty password token = %x, want empty", tok)
	}
	if !checkNativePassword("", goldenScramble, nil) {
		t.Errorf("password-less login rejected")
	}
	if checkNativePassword("", goldenScramble, want) {
		t.Errorf("token accepted for password-less user")
	}
}

// TestHandshakeResponseRoundTrip drives the server's parser with the
// in-repo client's encoder, covering the auth-token and database fields.
func TestHandshakeResponseRoundTrip(t *testing.T) {
	tok := nativePasswordToken("secret", goldenScramble)
	payload := buildHandshakeResponse("alice", tok)
	resp, err := parseHandshakeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.user != "alice" {
		t.Errorf("user = %q", resp.user)
	}
	if !bytes.Equal(resp.authToken, tok) {
		t.Errorf("token = %x, want %x", resp.authToken, tok)
	}
	if resp.plugin != nativePasswordPlugin {
		t.Errorf("plugin = %q", resp.plugin)
	}
	if _, err := parseHandshakeResponse(payload[:10]); err == nil {
		t.Errorf("truncated response accepted")
	}
	// A pre-4.1 client (no CLIENT_PROTOCOL_41) is rejected.
	old := append([]byte(nil), payload...)
	old[0], old[1] = 0, 0
	if _, err := parseHandshakeResponse(old); err == nil {
		t.Errorf("pre-4.1 response accepted")
	}
}

func TestPacketFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := writePacket(&buf, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	payload, seq, err := readPacket(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || string(payload) != "hello" {
		t.Errorf("round trip = seq %d payload %q", seq, payload)
	}
	if err := writePacket(&buf, 0, make([]byte, maxPacketSize)); err == nil {
		t.Errorf("oversized payload accepted")
	}
}

func TestLenencRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xfa, 0xfb, 0xffff, 0x10000, 0xffffff, 0x1000000, 1 << 40} {
		b := appendLenencInt(nil, v)
		got, rest, err := readLenencInt(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("lenenc(%d) round trip: got %d rest %d err %v", v, got, len(rest), err)
		}
	}
	b := appendLenencString(nil, "zone")
	s, _, err := readLenencString(b)
	if err != nil || s != "zone" {
		t.Errorf("lenenc string round trip: %q %v", s, err)
	}
}

func TestRenderCellMatchesJSON(t *testing.T) {
	cases := []struct {
		cell any
		want string
	}{
		{int64(1496275200), "1496275200"},
		{float64(1.5), "1.5"},
		{float64(0.30000000000000004), "0.30000000000000004"}, // round-trip exact
		{"residential", "residential"},
	}
	for _, c := range cases {
		got, isNull, err := renderCell(c.cell)
		if err != nil || isNull || got != c.want {
			t.Errorf("renderCell(%v) = %q null=%v err=%v, want %q", c.cell, got, isNull, err, c.want)
		}
	}
	if _, isNull, _ := renderCell(nil); !isNull {
		t.Errorf("nil cell not NULL")
	}
	if _, _, err := renderCell(struct{}{}); err == nil {
		t.Errorf("unsupported cell type accepted")
	}
}

func TestParseUsers(t *testing.T) {
	src := "# comment\n\nalice:secret:dash\nbob::\n"
	users, err := ParseUsers(bufio.NewScanner(bytes.NewReader([]byte(src))))
	if err != nil {
		t.Fatal(err)
	}
	if u := users["alice"]; u.Password != "secret" || u.Tenant != "dash" {
		t.Errorf("alice = %+v", u)
	}
	if u := users["bob"]; u.Password != "" || u.Tenant != "" {
		t.Errorf("bob = %+v", u)
	}
	for _, bad := range []string{"alice:x", "alice:a:b\nalice:c:d", ":x:y"} {
		if _, err := ParseUsers(bufio.NewScanner(bytes.NewReader([]byte(bad)))); err == nil {
			t.Errorf("ParseUsers(%q) accepted", bad)
		}
	}
}
