package index

import (
	"math/rand"
	"testing"

	"vap/internal/geo"
)

func testBox() geo.BBox {
	return geo.NewBBox(geo.Point{Lon: 12.0, Lat: 55.0}, geo.Point{Lon: 13.0, Lat: 56.0})
}

func TestGridDimsClamped(t *testing.T) {
	g := NewGrid(testBox(), 0, -3)
	c, r := g.Dims()
	if c != 1 || r != 1 {
		t.Errorf("dims = (%d,%d), want (1,1)", c, r)
	}
}

func TestGridCellOfCorners(t *testing.T) {
	g := NewGrid(testBox(), 10, 10)
	c, r := g.CellOf(geo.Point{Lon: 12.0, Lat: 55.0})
	if c != 0 || r != 0 {
		t.Errorf("SW corner cell = (%d,%d), want (0,0)", c, r)
	}
	c, r = g.CellOf(geo.Point{Lon: 13.0, Lat: 56.0})
	if c != 9 || r != 9 {
		t.Errorf("NE corner cell = (%d,%d), want (9,9)", c, r)
	}
	// Out-of-box points clamp.
	c, r = g.CellOf(geo.Point{Lon: 20, Lat: 60})
	if c != 9 || r != 9 {
		t.Errorf("outside point clamps to (%d,%d), want (9,9)", c, r)
	}
}

func TestGridCellCenterInsideCellBox(t *testing.T) {
	g := NewGrid(testBox(), 7, 5)
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			box := g.CellBox(c, r)
			ctr := g.CellCenter(c, r)
			if !box.Contains(ctr) {
				t.Fatalf("cell (%d,%d) center %v outside box %v", c, r, ctr, box)
			}
		}
	}
}

func TestGridInsertQuery(t *testing.T) {
	g := NewGrid(testBox(), 20, 20)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 400)
	for i := range pts {
		pts[i] = geo.Point{Lon: 12 + rng.Float64(), Lat: 55 + rng.Float64()}
		g.Insert(pts[i], int64(i))
	}
	if g.Len() != 400 {
		t.Fatalf("len = %d", g.Len())
	}
	// Query must be a superset of exact containment (cell granularity).
	q := geo.NewBBox(geo.Point{Lon: 12.2, Lat: 55.2}, geo.Point{Lon: 12.6, Lat: 55.5})
	got := g.Query(q, nil)
	set := map[int64]bool{}
	for _, id := range got {
		set[id] = true
	}
	for i, p := range pts {
		if q.Contains(p) && !set[int64(i)] {
			t.Fatalf("point %d inside query box missing from grid result", i)
		}
	}
}

func TestGridQueryDisjoint(t *testing.T) {
	g := NewGrid(testBox(), 4, 4)
	g.Insert(geo.Point{Lon: 12.5, Lat: 55.5}, 1)
	far := geo.NewBBox(geo.Point{Lon: 40, Lat: 10}, geo.Point{Lon: 41, Lat: 11})
	if got := g.Query(far, nil); len(got) != 0 {
		t.Errorf("disjoint query returned %v", got)
	}
}

func TestGridForEachCell(t *testing.T) {
	g := NewGrid(testBox(), 4, 4)
	g.Insert(geo.Point{Lon: 12.1, Lat: 55.1}, 1)
	g.Insert(geo.Point{Lon: 12.9, Lat: 55.9}, 2)
	g.Insert(geo.Point{Lon: 12.9, Lat: 55.9}, 3)
	cells := 0
	total := 0
	g.ForEachCell(func(c, r int, ids []int64) {
		cells++
		total += len(ids)
	})
	if cells != 2 {
		t.Errorf("non-empty cells = %d, want 2", cells)
	}
	if total != 3 {
		t.Errorf("total ids = %d, want 3", total)
	}
}
