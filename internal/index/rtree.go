// Package index provides the spatial indexes VAP's data layer uses in place
// of PostGIS: an in-memory R-tree with quadratic split (Guttman 1984) for
// bounding-box and nearest-neighbor search over customer locations, and a
// uniform grid index for dense raster-style lookups.
package index

import (
	"container/heap"
	"math"
	"sort"

	"vap/internal/geo"
)

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5 // 40% fill guarantee
)

// Item is a value stored in the R-tree, keyed by its bounding box.
type Item struct {
	Box geo.BBox
	ID  int64
}

type node struct {
	box      geo.BBox
	leaf     bool
	items    []Item  // when leaf
	children []*node // when internal
}

func (n *node) recomputeBox() {
	b := geo.EmptyBBox()
	if n.leaf {
		for _, it := range n.items {
			b = b.Union(it.Box)
		}
	} else {
		for _, c := range n.children {
			b = b.Union(c.box)
		}
	}
	n.box = b
}

// RTree is an in-memory R-tree over geographic bounding boxes.
// The zero value is not usable; use NewRTree.
// RTree is not safe for concurrent mutation; the store serializes writes.
type RTree struct {
	root *node
	size int
}

// NewRTree returns an empty tree.
func NewRTree() *RTree {
	return &RTree{root: &node{leaf: true, box: geo.EmptyBBox()}}
}

// Len returns the number of stored items.
func (t *RTree) Len() int { return t.size }

// Bounds returns the bounding box of the whole tree (empty box if empty).
func (t *RTree) Bounds() geo.BBox { return t.root.box }

// InsertPoint stores id at point p.
func (t *RTree) InsertPoint(p geo.Point, id int64) {
	t.Insert(Item{Box: geo.PointBox(p), ID: id})
}

// Insert adds an item to the tree.
func (t *RTree) Insert(it Item) {
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		// Root was split: grow the tree.
		old := t.root
		t.root = &node{leaf: false, children: []*node{old, split}}
		t.root.recomputeBox()
	}
}

// insert descends to a leaf, inserts, and returns a new sibling if the node
// overflowed and was split.
func (t *RTree) insert(n *node, it Item) *node {
	n.box = n.box.Union(it.Box)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n, it.Box)
	if split := t.insert(child, it); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing least enlargement (ties by area).
func chooseSubtree(n *node, b geo.BBox) *node {
	best := n.children[0]
	bestEnl := best.box.Enlargement(b)
	bestArea := best.box.Area()
	for _, c := range n.children[1:] {
		enl := c.box.Enlargement(b)
		area := c.box.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// quadratic pick-seeds: the pair wasting the most area.
func pickSeeds(boxes []geo.BBox) (int, int) {
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			waste := boxes[i].Union(boxes[j]).Area() - boxes[i].Area() - boxes[j].Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

func splitLeaf(n *node) *node {
	items := n.items
	boxes := make([]geo.BBox, len(items))
	for i, it := range items {
		boxes[i] = it.Box
	}
	g1, g2 := quadraticSplit(boxes)
	a := make([]Item, 0, len(g1))
	b := make([]Item, 0, len(g2))
	for _, i := range g1 {
		a = append(a, items[i])
	}
	for _, i := range g2 {
		b = append(b, items[i])
	}
	n.items = a
	n.recomputeBox()
	sib := &node{leaf: true, items: b}
	sib.recomputeBox()
	return sib
}

func splitInternal(n *node) *node {
	children := n.children
	boxes := make([]geo.BBox, len(children))
	for i, c := range children {
		boxes[i] = c.box
	}
	g1, g2 := quadraticSplit(boxes)
	a := make([]*node, 0, len(g1))
	b := make([]*node, 0, len(g2))
	for _, i := range g1 {
		a = append(a, children[i])
	}
	for _, i := range g2 {
		b = append(b, children[i])
	}
	n.children = a
	n.recomputeBox()
	sib := &node{leaf: false, children: b}
	sib.recomputeBox()
	return sib
}

// quadraticSplit partitions indices 0..len(boxes)-1 into two groups using
// Guttman's quadratic algorithm with a minimum fill guarantee.
func quadraticSplit(boxes []geo.BBox) (g1, g2 []int) {
	s1, s2 := pickSeeds(boxes)
	b1, b2 := boxes[s1], boxes[s2]
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	remaining := make([]int, 0, len(boxes)-2)
	for i := range boxes {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment if one group must absorb the rest to reach min fill.
		if len(g1)+len(remaining) == minEntries {
			g1 = append(g1, remaining...)
			for _, i := range remaining {
				b1 = b1.Union(boxes[i])
			}
			break
		}
		if len(g2)+len(remaining) == minEntries {
			g2 = append(g2, remaining...)
			for _, i := range remaining {
				b2 = b2.Union(boxes[i])
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		bestIdx, bestDiff, bestPos := -1, math.Inf(-1), 0
		for pos, i := range remaining {
			d1 := b1.Enlargement(boxes[i])
			d2 := b2.Enlargement(boxes[i])
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		d1 := b1.Enlargement(boxes[bestIdx])
		d2 := b2.Enlargement(boxes[bestIdx])
		switch {
		case d1 < d2, d1 == d2 && b1.Area() <= b2.Area():
			g1 = append(g1, bestIdx)
			b1 = b1.Union(boxes[bestIdx])
		default:
			g2 = append(g2, bestIdx)
			b2 = b2.Union(boxes[bestIdx])
		}
	}
	return g1, g2
}

// Search appends to dst the IDs of all items whose boxes intersect query,
// and returns the extended slice. Order is unspecified.
func (t *RTree) Search(query geo.BBox, dst []int64) []int64 {
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, q geo.BBox, dst []int64) []int64 {
	if !n.box.Intersects(q) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(q) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, q, dst)
	}
	return dst
}

// SearchSorted is Search with the result sorted ascending, convenient for
// deterministic tests and stable API responses.
func (t *RTree) SearchSorted(query geo.BBox) []int64 {
	ids := t.Search(query, nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Delete removes one item with the given id whose box intersects hint.
// It returns true if an item was removed. Underflowed nodes are merged by
// reinsertion of their remaining entries.
func (t *RTree) Delete(hint geo.BBox, id int64) bool {
	var orphans []Item
	ok := deleteRec(t.root, hint, id, &orphans)
	if !ok {
		return false
	}
	t.size--
	// Collapse a non-leaf root with a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true, box: geo.EmptyBBox()}
	}
	for _, it := range orphans {
		t.size--
		t.Insert(it) // Insert re-increments size.
	}
	return true
}

func deleteRec(n *node, hint geo.BBox, id int64, orphans *[]Item) bool {
	if !n.box.Intersects(hint) {
		return false
	}
	if n.leaf {
		for i, it := range n.items {
			if it.ID == id && it.Box.Intersects(hint) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeBox()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if deleteRec(c, hint, id, orphans) {
			under := (c.leaf && len(c.items) < minEntries) ||
				(!c.leaf && len(c.children) < minEntries)
			if under {
				collectItems(c, orphans)
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recomputeBox()
			return true
		}
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// Neighbor is a nearest-neighbor search result.
type Neighbor struct {
	ID       int64
	Distance float64 // meters
}

// nnEntry is a priority-queue element for best-first NN search.
type nnEntry struct {
	dist float64
	n    *node
	item *Item
}

type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// boxDistance returns the great-circle distance from p to the nearest point
// of b (0 if p is inside b).
func boxDistance(p geo.Point, b geo.BBox) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	q := geo.Point{
		Lon: math.Max(b.Min.Lon, math.Min(p.Lon, b.Max.Lon)),
		Lat: math.Max(b.Min.Lat, math.Min(p.Lat, b.Max.Lat)),
	}
	return p.DistanceTo(q)
}

// Nearest returns up to k items closest to p, ordered by ascending distance,
// using best-first traversal.
func (t *RTree) Nearest(p geo.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Push(pq, nnEntry{dist: boxDistance(p, t.root.box), n: t.root})
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(nnEntry)
		switch {
		case e.item != nil:
			out = append(out, Neighbor{ID: e.item.ID, Distance: e.dist})
		case e.n.leaf:
			for i := range e.n.items {
				it := &e.n.items[i]
				heap.Push(pq, nnEntry{dist: boxDistance(p, it.Box), item: it})
			}
		default:
			for _, c := range e.n.children {
				heap.Push(pq, nnEntry{dist: boxDistance(p, c.box), n: c})
			}
		}
	}
	return out
}

// WithinRadius returns IDs of items whose boxes lie within radiusM meters of
// p, sorted by distance.
func (t *RTree) WithinRadius(p geo.Point, radiusM float64) []Neighbor {
	if radiusM < 0 || t.size == 0 {
		return nil
	}
	// Conservative degree-space prefilter box.
	dLat := radiusM / geo.MetersPerDegreeLat
	mpl := geo.MetersPerDegreeLon(p.Lat)
	dLon := 180.0
	if mpl > 1 {
		dLon = radiusM / mpl
	}
	box := geo.BBox{
		Min: geo.Point{Lon: p.Lon - dLon, Lat: p.Lat - dLat},
		Max: geo.Point{Lon: p.Lon + dLon, Lat: p.Lat + dLat},
	}
	var out []Neighbor
	collectWithin(t.root, box, p, radiusM, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

func collectWithin(n *node, box geo.BBox, p geo.Point, radiusM float64, out *[]Neighbor) {
	if !n.box.Intersects(box) {
		return
	}
	if n.leaf {
		for _, it := range n.items {
			d := boxDistance(p, it.Box)
			if d <= radiusM {
				*out = append(*out, Neighbor{ID: it.ID, Distance: d})
			}
		}
		return
	}
	for _, c := range n.children {
		collectWithin(c, box, p, radiusM, out)
	}
}

// Walk calls fn for every stored item. Iteration order is unspecified.
func (t *RTree) Walk(fn func(Item)) {
	walk(t.root, fn)
}

func walk(n *node, fn func(Item)) {
	if n.leaf {
		for _, it := range n.items {
			fn(it)
		}
		return
	}
	for _, c := range n.children {
		walk(c, fn)
	}
}

// Height returns the tree height (1 for a lone leaf), useful for tests and
// diagnostics.
func (t *RTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// CheckInvariants validates structural invariants (box containment, fill
// factors) and returns false with a description on the first violation.
// It is exported for tests.
func (t *RTree) CheckInvariants() (bool, string) {
	return checkNode(t.root, true)
}

func checkNode(n *node, isRoot bool) (bool, string) {
	if n.leaf {
		if !isRoot && len(n.items) < minEntries {
			return false, "leaf underflow"
		}
		for _, it := range n.items {
			if n.box.Union(it.Box) != n.box {
				return false, "leaf box does not cover item"
			}
		}
		return true, ""
	}
	if !isRoot && len(n.children) < minEntries {
		return false, "internal underflow"
	}
	for _, c := range n.children {
		if n.box.Union(c.box) != n.box {
			return false, "internal box does not cover child"
		}
		if ok, msg := checkNode(c, false); !ok {
			return false, msg
		}
	}
	return true, ""
}
