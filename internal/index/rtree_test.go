package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vap/internal/geo"
)

func randPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		Lon: 12.4 + rng.Float64()*0.4,
		Lat: 55.5 + rng.Float64()*0.3,
	}
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree()
	if tr.Len() != 0 {
		t.Fatalf("empty len = %d", tr.Len())
	}
	if got := tr.Search(geo.NewBBox(geo.Point{Lon: 0, Lat: 0}, geo.Point{Lon: 90, Lat: 90}), nil); len(got) != 0 {
		t.Errorf("search on empty = %v", got)
	}
	if nn := tr.Nearest(geo.Point{Lon: 12, Lat: 55}, 3); nn != nil {
		t.Errorf("nearest on empty = %v", nn)
	}
}

func TestRTreeInsertSearchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewRTree()
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = randPoint(rng)
		tr.InsertPoint(pts[i], int64(i))
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d, want 500", tr.Len())
	}
	if ok, msg := tr.CheckInvariants(); !ok {
		t.Fatalf("invariant violated: %s", msg)
	}
	// Compare tree search against brute force for random query boxes.
	for q := 0; q < 50; q++ {
		a, b := randPoint(rng), randPoint(rng)
		box := geo.NewBBox(a, b)
		got := tr.SearchSorted(box)
		var want []int64
		for i, p := range pts {
			if box.Contains(p) {
				want = append(want, int64(i))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: got[%d]=%d want %d", q, i, got[i], want[i])
			}
		}
	}
}

func TestRTreeNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := NewRTree()
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = randPoint(rng)
		tr.InsertPoint(pts[i], int64(i))
	}
	for q := 0; q < 20; q++ {
		origin := randPoint(rng)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(origin, k)
		if len(got) != k {
			t.Fatalf("nearest returned %d, want %d", len(got), k)
		}
		// Brute force.
		type pd struct {
			id int64
			d  float64
		}
		all := make([]pd, len(pts))
		for i, p := range pts {
			all[i] = pd{int64(i), origin.DistanceTo(p)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			if got[i].Distance > all[i].d+1e-6 {
				t.Fatalf("rank %d: got distance %.2f, brute force %.2f", i, got[i].Distance, all[i].d)
			}
		}
		// Distances must be non-decreasing.
		for i := 1; i < k; i++ {
			if got[i].Distance < got[i-1].Distance {
				t.Fatalf("nearest result not sorted at %d", i)
			}
		}
	}
}

func TestRTreeNearestKLargerThanSize(t *testing.T) {
	tr := NewRTree()
	tr.InsertPoint(geo.Point{Lon: 12.5, Lat: 55.7}, 1)
	tr.InsertPoint(geo.Point{Lon: 12.6, Lat: 55.7}, 2)
	got := tr.Nearest(geo.Point{Lon: 12.5, Lat: 55.7}, 10)
	if len(got) != 2 {
		t.Errorf("k > size returns %d, want 2", len(got))
	}
}

func TestRTreeWithinRadius(t *testing.T) {
	tr := NewRTree()
	origin := geo.Point{Lon: 12.5, Lat: 55.7}
	// One point every 500 m heading east.
	for i := 0; i < 10; i++ {
		tr.InsertPoint(geo.Destination(origin, float64(i)*500, 90), int64(i))
	}
	got := tr.WithinRadius(origin, 1600)
	if len(got) != 4 { // 0, 500, 1000, 1500
		t.Fatalf("within 1600m = %d points, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Fatal("WithinRadius not sorted by distance")
		}
	}
	if got := tr.WithinRadius(origin, -1); got != nil {
		t.Error("negative radius should return nil")
	}
}

func TestRTreeDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewRTree()
	pts := make([]geo.Point, 200)
	for i := range pts {
		pts[i] = randPoint(rng)
		tr.InsertPoint(pts[i], int64(i))
	}
	// Delete half, verify searches shrink accordingly.
	for i := 0; i < 100; i++ {
		if !tr.Delete(geo.PointBox(pts[i]), int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("len after deletes = %d, want 100", tr.Len())
	}
	if ok, msg := tr.CheckInvariants(); !ok {
		t.Fatalf("invariant violated after delete: %s", msg)
	}
	all := tr.SearchSorted(tr.Bounds())
	if len(all) != 100 {
		t.Fatalf("search all after deletes = %d, want 100", len(all))
	}
	for _, id := range all {
		if id < 100 {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	// Deleting a missing item returns false.
	if tr.Delete(geo.PointBox(pts[0]), 0) {
		t.Error("double delete should fail")
	}
}

func TestRTreeDeleteAll(t *testing.T) {
	tr := NewRTree()
	pts := make([]geo.Point, 60)
	rng := rand.New(rand.NewSource(9))
	for i := range pts {
		pts[i] = randPoint(rng)
		tr.InsertPoint(pts[i], int64(i))
	}
	for i := range pts {
		if !tr.Delete(geo.PointBox(pts[i]), int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	// Tree must remain usable.
	tr.InsertPoint(pts[0], 999)
	if got := tr.SearchSorted(geo.PointBox(pts[0])); len(got) != 1 || got[0] != 999 {
		t.Fatalf("reuse after drain failed: %v", got)
	}
}

func TestRTreeDuplicatePoints(t *testing.T) {
	tr := NewRTree()
	p := geo.Point{Lon: 12.5, Lat: 55.7}
	for i := 0; i < 50; i++ {
		tr.InsertPoint(p, int64(i))
	}
	got := tr.SearchSorted(geo.PointBox(p))
	if len(got) != 50 {
		t.Fatalf("duplicate point search = %d, want 50", len(got))
	}
}

func TestRTreeWalkVisitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewRTree()
	for i := 0; i < 123; i++ {
		tr.InsertPoint(randPoint(rng), int64(i))
	}
	seen := map[int64]bool{}
	tr.Walk(func(it Item) { seen[it.ID] = true })
	if len(seen) != 123 {
		t.Fatalf("walk visited %d, want 123", len(seen))
	}
}

func TestRTreeHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := NewRTree()
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for i := 0; i < 1000; i++ {
		tr.InsertPoint(randPoint(rng), int64(i))
	}
	if h := tr.Height(); h < 2 || h > 6 {
		t.Errorf("height after 1000 inserts = %d, want small and > 1", h)
	}
}

func TestRTreePropertySearchContainsInserted(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%120 + 1
		tr := NewRTree()
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = randPoint(rng)
			tr.InsertPoint(pts[i], int64(i))
		}
		// Every inserted point must be findable by its own point box.
		for i, p := range pts {
			found := false
			for _, id := range tr.Search(geo.PointBox(p), nil) {
				if id == int64(i) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		ok, _ := tr.CheckInvariants()
		return ok && tr.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
