package index

import (
	"vap/internal/geo"
)

// Grid is a uniform spatial hash over a fixed study-area bounding box. It is
// the index VAP uses for raster-aligned operations (KDE accumulation, flow
// cell lookups) where the R-tree's generality is unnecessary.
type Grid struct {
	box          geo.BBox
	cols, rows   int
	cellW, cellH float64
	cells        map[int][]int64
	count        int
}

// NewGrid returns a grid with cols x rows cells over box. cols and rows are
// clamped to at least 1.
func NewGrid(box geo.BBox, cols, rows int) *Grid {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	w := box.Max.Lon - box.Min.Lon
	h := box.Max.Lat - box.Min.Lat
	if w <= 0 {
		w = 1e-9
	}
	if h <= 0 {
		h = 1e-9
	}
	return &Grid{
		box:   box,
		cols:  cols,
		rows:  rows,
		cellW: w / float64(cols),
		cellH: h / float64(rows),
		cells: make(map[int][]int64),
	}
}

// Len returns the number of inserted points.
func (g *Grid) Len() int { return g.count }

// Dims returns (cols, rows).
func (g *Grid) Dims() (int, int) { return g.cols, g.rows }

// Bounds returns the grid's study-area box.
func (g *Grid) Bounds() geo.BBox { return g.box }

// CellOf returns the (col, row) containing p, clamped to the grid.
func (g *Grid) CellOf(p geo.Point) (col, row int) {
	col = int((p.Lon - g.box.Min.Lon) / g.cellW)
	row = int((p.Lat - g.box.Min.Lat) / g.cellH)
	if col < 0 {
		col = 0
	}
	if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return col, row
}

// CellCenter returns the geographic center of cell (col, row).
func (g *Grid) CellCenter(col, row int) geo.Point {
	return geo.Point{
		Lon: g.box.Min.Lon + (float64(col)+0.5)*g.cellW,
		Lat: g.box.Min.Lat + (float64(row)+0.5)*g.cellH,
	}
}

// CellBox returns the bounding box of cell (col, row).
func (g *Grid) CellBox(col, row int) geo.BBox {
	min := geo.Point{
		Lon: g.box.Min.Lon + float64(col)*g.cellW,
		Lat: g.box.Min.Lat + float64(row)*g.cellH,
	}
	return geo.BBox{Min: min, Max: geo.Point{Lon: min.Lon + g.cellW, Lat: min.Lat + g.cellH}}
}

func (g *Grid) key(col, row int) int { return row*g.cols + col }

// Insert stores id at point p.
func (g *Grid) Insert(p geo.Point, id int64) {
	c, r := g.CellOf(p)
	k := g.key(c, r)
	g.cells[k] = append(g.cells[k], id)
	g.count++
}

// Query appends IDs in all cells intersecting box and returns the slice.
// Results may include IDs slightly outside box (cell granularity); callers
// needing exact containment must post-filter.
func (g *Grid) Query(box geo.BBox, dst []int64) []int64 {
	if !g.box.Intersects(box) {
		return dst
	}
	c0, r0 := g.CellOf(box.Min)
	c1, r1 := g.CellOf(box.Max)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			dst = append(dst, g.cells[g.key(c, r)]...)
		}
	}
	return dst
}

// ForEachCell calls fn for every non-empty cell with its (col,row) and ids.
func (g *Grid) ForEachCell(fn func(col, row int, ids []int64)) {
	for k, ids := range g.cells {
		fn(k%g.cols, k/g.cols, ids)
	}
}
