// Package exec is VAP's parallel execution engine: the shared substrate
// the query, core, and api layers submit their expensive kernels to
// (distance matrices, KDE grids, per-meter series materialization,
// embeddings) instead of hand-rolling serial compute in every handler.
//
// It combines three mechanisms:
//
//   - a bounded fan-out width (Options.Workers, default runtime.NumCPU())
//     that parallel helpers like ForEach use to chunk work across
//     goroutines with dynamic scheduling and context cancellation;
//   - singleflight deduplication: concurrent Do calls for the same Key
//     share one computation instead of racing duplicates;
//   - a versioned, LRU-bounded result cache: keys embed a data-layer
//     version — typically the selection fingerprint of exactly the meters
//     a task reads (query.Engine.VersionFingerprint over the sharded
//     store's per-meter versions) — so an append invalidates only the
//     results whose selections contain the mutated meters, without any
//     explicit cache flush.
package exec

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes an Engine. The zero value selects sensible defaults.
type Options struct {
	// Workers is the fan-out width for parallel kernels. <= 0 selects
	// runtime.NumCPU().
	Workers int
	// CacheEntries bounds the result cache (LRU eviction). <= 0 selects
	// 64 entries. The bound is a count, not a byte size: one cached
	// analysis result can hold a full feature matrix or several density
	// grids (megabytes at large meter counts), so size this to the
	// distinct (selection, parameter) combinations expected between
	// ingests, not to available memory.
	CacheEntries int
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 64
	}
}

// Stats counts engine activity since construction. All counters are
// cumulative and monotone.
type Stats struct {
	Hits      uint64 // Do calls answered from the cache
	Misses    uint64 // Do calls that found no cached value
	Computes  uint64 // compute functions actually executed
	Dedups    uint64 // Do calls that joined an in-flight computation
	Evictions uint64 // cache entries dropped by the LRU bound
}

// Key identifies one memoizable result: the data version it was computed
// against — the caller's choice of the store's global version or, for
// selection-scoped invalidation, a per-meter version fingerprint — a
// task-family tag, and a canonical fingerprint of every parameter that
// influences the result.
type Key struct {
	Version uint64
	Kind    string
	Hash    uint64
}

// KeyOf fingerprints parts into a Key. Parts are formatted with %v in
// order, so any canonical ordering (e.g. sorted meter IDs) must be done by
// the caller.
func KeyOf(version uint64, kind string, parts ...any) Key {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x1f", p)
	}
	return Key{Version: version, Kind: kind, Hash: h.Sum64()}
}

// call is one in-flight computation other Do callers can join.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Engine memoizes and deduplicates keyed computations. It is safe for
// concurrent use.
type Engine struct {
	workers int
	maxEnt  int

	mu     sync.Mutex
	lru    *list.List            // front = most recently used; values are *entry
	byKey  map[Key]*list.Element // cache index
	flight map[Key]*call         // in-flight computations

	hits, misses, computes, dedups, evictions atomic.Uint64
}

type entry struct {
	key Key
	val any
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	opts.defaults()
	return &Engine{
		workers: opts.Workers,
		maxEnt:  opts.CacheEntries,
		lru:     list.New(),
		byKey:   make(map[Key]*list.Element),
		flight:  make(map[Key]*call),
	}
}

// Workers returns the engine's fan-out width.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Computes:  e.computes.Load(),
		Dedups:    e.dedups.Load(),
		Evictions: e.evictions.Load(),
	}
}

// Len returns the number of cached results.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lru.Len()
}

// Invalidate drops every currently cached result. Computations already in
// flight are unaffected and will still store their results when they
// complete, so the cache is only guaranteed empty if nothing is computing.
// Precise invalidation normally happens for free because keys embed the
// data version; this is the hammer for tests and admin endpoints.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lru.Init()
	e.byKey = make(map[Key]*list.Element)
}

// Do returns the cached value for key, or computes it via compute,
// deduplicating concurrent calls for the same key. Successful results are
// cached (LRU-bounded); errors are not. If the computation leader is
// cancelled, joined callers whose own context is still live retry.
func (e *Engine) Do(ctx context.Context, key Key, compute func(ctx context.Context) (any, error)) (any, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.mu.Lock()
		if el, ok := e.byKey[key]; ok {
			e.lru.MoveToFront(el)
			v := el.Value.(*entry).val
			e.mu.Unlock()
			e.hits.Add(1)
			return v, nil
		}
		if c, ok := e.flight[key]; ok {
			e.mu.Unlock()
			e.dedups.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-c.done:
			}
			if c.err == nil {
				return c.val, nil
			}
			if isContextErr(c.err) && ctx.Err() == nil {
				// Leader was cancelled but we were not: retry the loop and
				// become (or join) a fresh computation.
				continue
			}
			return nil, c.err
		}
		c := &call{done: make(chan struct{})}
		e.flight[key] = c
		e.mu.Unlock()

		e.misses.Add(1)
		e.computes.Add(1)
		c.val, c.err = compute(ctx)

		e.mu.Lock()
		delete(e.flight, key)
		if c.err == nil {
			e.insertLocked(key, c.val)
		}
		e.mu.Unlock()
		close(c.done)
		return c.val, c.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// insertLocked adds a result, evicting from the LRU tail past capacity.
// Callers hold e.mu.
func (e *Engine) insertLocked(key Key, val any) {
	if el, ok := e.byKey[key]; ok {
		el.Value.(*entry).val = val
		e.lru.MoveToFront(el)
		return
	}
	e.byKey[key] = e.lru.PushFront(&entry{key: key, val: val})
	for e.lru.Len() > e.maxEnt {
		tail := e.lru.Back()
		e.lru.Remove(tail)
		delete(e.byKey, tail.Value.(*entry).key)
		e.evictions.Add(1)
	}
}

// Cached reports whether key currently has a cached value, without
// touching recency or counters. Intended for tests and introspection.
func (e *Engine) Cached(key Key) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.byKey[key]
	return ok
}
