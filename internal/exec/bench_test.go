package exec

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkDoCached measures the steady-state hit path: one map lookup,
// one LRU splice. This is what every repeated brush over an unchanged
// dataset pays.
func BenchmarkDoCached(b *testing.B) {
	e := New(Options{})
	key := KeyOf(1, "bench", "hot")
	ctx := context.Background()
	if _, err := e.Do(ctx, key, func(context.Context) (any, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Do(ctx, key, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoContended measures parallel hit throughput under contention.
func BenchmarkDoContended(b *testing.B) {
	e := New(Options{})
	key := KeyOf(1, "bench", "hot")
	ctx := context.Background()
	if _, err := e.Do(ctx, key, func(context.Context) (any, error) { return 1, nil }); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Do(ctx, key, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkForEachDispatch measures per-iteration scheduling overhead with
// trivial bodies — the floor parallel kernels must amortize.
func BenchmarkForEachDispatch(b *testing.B) {
	ctx := context.Background()
	var sink atomic.Int64
	b.ResetTimer()
	err := ForEach(ctx, b.N, runtime.NumCPU(), func(i int) error {
		sink.Add(int64(i))
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
