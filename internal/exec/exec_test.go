package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOfCanonical(t *testing.T) {
	a := KeyOf(1, "typical", []int64{1, 2, 3}, "pearson")
	b := KeyOf(1, "typical", []int64{1, 2, 3}, "pearson")
	if a != b {
		t.Fatalf("identical parts produced different keys: %v vs %v", a, b)
	}
	if c := KeyOf(2, "typical", []int64{1, 2, 3}, "pearson"); c == a {
		t.Fatal("version bump did not change the key")
	}
	if c := KeyOf(1, "shift", []int64{1, 2, 3}, "pearson"); c == a {
		t.Fatal("kind change did not change the key")
	}
	if c := KeyOf(1, "typical", []int64{1, 2, 4}, "pearson"); c == a {
		t.Fatal("parameter change did not change the key")
	}
	// The separator must keep adjacent parts from gluing together.
	if KeyOf(1, "k", "ab", "c") == KeyOf(1, "k", "a", "bc") {
		t.Fatal("part boundaries are ambiguous")
	}
}

func TestDoCachesSuccess(t *testing.T) {
	e := New(Options{Workers: 2, CacheEntries: 8})
	key := KeyOf(1, "t", "x")
	var calls atomic.Int64
	compute := func(context.Context) (any, error) {
		calls.Add(1)
		return 42, nil
	}
	for i := 0; i < 5; i++ {
		v, err := e.Do(context.Background(), key, compute)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := e.Stats()
	if st.Computes != 1 || st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 compute / 4 hits / 1 miss", st)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	e := New(Options{})
	key := KeyOf(1, "t", "x")
	boom := errors.New("boom")
	var calls atomic.Int64
	compute := func(context.Context) (any, error) {
		calls.Add(1)
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), key, compute); !errors.Is(err, boom) {
			t.Fatalf("Do err = %v, want boom", err)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("errors were cached: compute ran %d times, want 3", got)
	}
}

func TestDoSingleflight(t *testing.T) {
	e := New(Options{Workers: 4, CacheEntries: 8})
	key := KeyOf(7, "t", "shared")
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Do(context.Background(), key, func(context.Context) (any, error) {
				calls.Add(1)
				<-gate
				return 99, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = v.(int)
		}(i)
	}
	// Let the leader start and the others pile up, then release.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("waiter %d got %d, want 99", i, v)
		}
	}
	if st := e.Stats(); st.Dedups == 0 {
		t.Fatalf("stats = %+v, expected deduplicated joiners", st)
	}
}

func TestDoLeaderCancelRetry(t *testing.T) {
	e := New(Options{})
	key := KeyOf(1, "t", "retry")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Do(leaderCtx, key, func(ctx context.Context) (any, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started
	// A second caller joins the flight, then the leader dies; the joiner
	// must retry and compute its own (successful) result.
	joinerDone := make(chan struct{})
	go func() {
		defer close(joinerDone)
		v, err := e.Do(context.Background(), key, func(context.Context) (any, error) {
			return "recomputed", nil
		})
		if err != nil || v.(string) != "recomputed" {
			t.Errorf("joiner got %v, %v; want recomputed", v, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want canceled", err)
	}
	select {
	case <-joinerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("joiner never recovered from leader cancellation")
	}
}

func TestDoRespectsCallerContext(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Do(ctx, KeyOf(1, "t", "c"), func(context.Context) (any, error) {
		t.Fatal("compute ran despite cancelled context")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(Options{CacheEntries: 3})
	mk := func(i int) Key { return KeyOf(1, "t", i) }
	for i := 0; i < 5; i++ {
		i := i
		if _, err := e.Do(context.Background(), mk(i), func(context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", e.Len())
	}
	if e.Cached(mk(0)) || e.Cached(mk(1)) {
		t.Fatal("oldest entries were not evicted")
	}
	for i := 2; i < 5; i++ {
		if !e.Cached(mk(i)) {
			t.Fatalf("entry %d missing, want newest 3 retained", i)
		}
	}
	if st := e.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// Touching an old entry protects it from the next eviction.
	if _, err := e.Do(context.Background(), mk(2), func(context.Context) (any, error) { return nil, errors.New("must hit cache") }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(context.Background(), mk(9), func(context.Context) (any, error) { return 9, nil }); err != nil {
		t.Fatal(err)
	}
	if !e.Cached(mk(2)) {
		t.Fatal("recently used entry was evicted")
	}
	if e.Cached(mk(3)) {
		t.Fatal("least recently used entry survived")
	}
}

func TestInvalidate(t *testing.T) {
	e := New(Options{})
	key := KeyOf(1, "t", "x")
	if _, err := e.Do(context.Background(), key, func(context.Context) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	e.Invalidate()
	if e.Cached(key) || e.Len() != 0 {
		t.Fatal("Invalidate left cached entries")
	}
}

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 1000
		seen := make([]atomic.Int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 10000, 4, func(i int) error {
		if i == 17 {
			return boom
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() >= 10000 {
		t.Fatal("error did not stop remaining iterations")
	}
}

func TestForEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1<<20, 4, func(i int) error {
		if ran.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if ran.Load() >= 1<<20 {
		t.Fatal("cancellation did not stop the loop")
	}
}

func TestForEachChunkCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		covered := make([]bool, n)
		var mu sync.Mutex
		err := ForEachChunk(context.Background(), n, 4, func(lo, hi int) error {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					return fmt.Errorf("index %d covered twice", i)
				}
				covered[i] = true
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("n=%d: index %d never covered", n, i)
			}
		}
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	err := ForEach(context.Background(), 100, 4, func(i int) error {
		if i == 13 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("worker panic not converted to error, got %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
