package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vap/internal/govern"
)

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines. Iterations are handed out dynamically (an atomic cursor), so
// imbalanced work — e.g. the triangular rows of a distance matrix —
// spreads evenly. The first error cancels the remaining iterations and is
// returned; ctx cancellation stops scheduling new iterations and returns
// ctx's error. With workers <= 1 (or n <= 1) the loop runs inline on the
// calling goroutine, which keeps single-core and benchmark-baseline paths
// allocation-free.
//
// The per-iteration cancellation probe goes through govern.PaceFunc: work
// running under an admitted analytics grant additionally yields between
// iterations while interactive requests are in flight, so wide fan-outs
// cannot monopolize the cores against cheap reads.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	pace := govern.PaceFunc(ctx)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := pace(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor  atomic.Int64
		stop    atomic.Bool
		firstMu sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// A panic on a bare worker goroutine would kill the whole
			// process; on the serial path the caller's own recovery (e.g.
			// net/http's handler recover) would have contained it. Convert
			// it to an error so both paths degrade the same way.
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("exec: panic in parallel task: %v", r))
				}
			}()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					fail(ctx.Err())
					return
				default:
				}
				if err := pace(ctx); err != nil {
					fail(err)
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// ForEachChunk splits [0, n) into roughly workers*4 contiguous chunks and
// runs fn(lo, hi) for each, parallelized like ForEach. Use it when per-item
// work is tiny and the per-iteration dispatch of ForEach would dominate
// (e.g. KDE raster row bands).
func ForEachChunk(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = 1
	}
	chunks := workers * 4
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	return ForEach(ctx, chunks, workers, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return nil
		}
		return fn(lo, hi)
	})
}
