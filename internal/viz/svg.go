// Package viz renders VAP's three analysis views as SVG, server-side,
// replacing the paper's Leaflet.js/d3.js presentation stack:
//
//   - view A: the map — customer markers, a KDE heat layer, and flow
//     arrows whose color depth encodes the rate of change;
//   - view B: the time-series chart of the selected customers' aggregated
//     consumption pattern;
//   - view C: the interactive 2-D embedding scatter (dimension-reduced
//     points colored by group).
//
// SVG is built with a small escaping writer; no third-party code.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Canvas accumulates SVG elements.
type Canvas struct {
	W, H int
	sb   strings.Builder
}

// NewCanvas returns an empty canvas of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 480
	}
	return &Canvas{W: w, H: h}
}

func (c *Canvas) elem(s string, args ...interface{}) {
	fmt.Fprintf(&c.sb, s, args...)
	c.sb.WriteByte('\n')
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string, opacity float64) {
	c.elem(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.3f"/>`,
		x, y, w, h, escAttr(fill), opacity)
}

// Circle draws a filled circle.
func (c *Canvas) Circle(x, y, r float64, fill string, opacity float64) {
	c.elem(`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" fill-opacity="%.3f"/>`,
		x, y, r, escAttr(fill), opacity)
}

// Line draws a stroked line.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width, opacity float64) {
	c.elem(`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f" stroke-opacity="%.3f"/>`,
		x1, y1, x2, y2, escAttr(stroke), width, opacity)
}

// Polyline draws a stroked open path through the points.
func (c *Canvas) Polyline(pts [][2]float64, stroke string, width float64) {
	if len(pts) < 2 {
		return
	}
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", p[0], p[1])
	}
	c.elem(`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`,
		b.String(), escAttr(stroke), width)
}

// Text draws a text label.
func (c *Canvas) Text(x, y float64, size int, fill, s string) {
	c.elem(`<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif" fill="%s">%s</text>`,
		x, y, size, escAttr(fill), escText(s))
}

// Arrow draws a line with a triangular head at the To end.
func (c *Canvas) Arrow(x1, y1, x2, y2 float64, stroke string, width, opacity float64) {
	c.Line(x1, y1, x2, y2, stroke, width, opacity)
	dx, dy := x2-x1, y2-y1
	l := math.Hypot(dx, dy)
	if l < 1e-9 {
		return
	}
	ux, uy := dx/l, dy/l
	// Head: two barbs at ±150 degrees from the shaft direction.
	size := 3 + 2*width
	bx1 := x2 - size*(ux*0.866-uy*0.5)
	by1 := y2 - size*(uy*0.866+ux*0.5)
	bx2 := x2 - size*(ux*0.866+uy*0.5)
	by2 := y2 - size*(uy*0.866-ux*0.5)
	c.elem(`<polygon points="%.2f,%.2f %.2f,%.2f %.2f,%.2f" fill="%s" fill-opacity="%.3f"/>`,
		x2, y2, bx1, by1, bx2, by2, escAttr(stroke), opacity)
}

// String finalizes the SVG document.
func (c *Canvas) String() string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.W, c.H, c.W, c.H) + c.sb.String() + "</svg>\n"
}

func escAttr(s string) string {
	r := strings.NewReplacer(`&`, "&amp;", `<`, "&lt;", `>`, "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func escText(s string) string {
	r := strings.NewReplacer(`&`, "&amp;", `<`, "&lt;", `>`, "&gt;")
	return r.Replace(s)
}

// --- Color ramps -----------------------------------------------------------

// HeatColor maps v in [0,1] to a white->yellow->red->dark ramp (heat map).
func HeatColor(v float64) string {
	v = clamp01(v)
	switch {
	case v < 0.25:
		t := v / 0.25
		return rgb(255, 255, int(255*(1-t)))
	case v < 0.6:
		t := (v - 0.25) / 0.35
		return rgb(255, int(255*(1-t)), 0)
	default:
		t := (v - 0.6) / 0.4
		return rgb(int(255-120*t), 0, 0)
	}
}

// DivergingColor maps v in [-1,1] to blue (loss) .. white .. red (gain).
func DivergingColor(v float64) string {
	if v < -1 {
		v = -1
	}
	if v > 1 {
		v = 1
	}
	if v < 0 {
		t := -v
		return rgb(int(255*(1-t)+30*t), int(255*(1-t)+80*t), 255)
	}
	t := v
	return rgb(255, int(255*(1-t)+40*t), int(255*(1-t)+40*t))
}

// FlowColor darkens with the rate of change (the paper: "the darker the
// color, the higher the rate").
func FlowColor(rate float64) string {
	rate = clamp01(rate)
	// light orange -> dark red
	r := 255 - int(120*rate)
	g := 140 - int(120*rate)
	return rgb(r, g, 20)
}

// CategoryColor returns a stable palette color for a small integer class.
func CategoryColor(i int) string {
	palette := []string{
		"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}
	if i < 0 {
		i = -i
	}
	return palette[i%len(palette)]
}

func rgb(r, g, b int) string {
	return fmt.Sprintf("#%02x%02x%02x", clamp255(r), clamp255(g), clamp255(b))
}

func clamp255(v int) int {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// niceTicks returns ~n round tick values spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
	}
	for span/step > float64(n) {
		step *= 2.5
	}
	var out []float64
	for v := math.Ceil(lo/step) * step; v <= hi+1e-12; v += step {
		out = append(out, v)
	}
	return out
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}
