package viz

import (
	"strings"
	"testing"

	"vap/internal/flow"
	"vap/internal/geo"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

func TestCanvasBasicElements(t *testing.T) {
	c := NewCanvas(100, 80)
	c.Rect(1, 2, 3, 4, "#fff", 1)
	c.Circle(10, 10, 5, "#123456", 0.5)
	c.Line(0, 0, 10, 10, "red", 1, 1)
	c.Polyline([][2]float64{{0, 0}, {5, 5}, {10, 0}}, "blue", 2)
	c.Text(5, 5, 12, "#000", "hello")
	c.Arrow(0, 0, 20, 20, "green", 1.5, 0.8)
	svg := c.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<circle", "<line", "<polyline", "<text", "hello", "<polygon", `width="100"`, `height="80"`} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestCanvasEscaping(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Text(0, 0, 10, `"><script>`, `<b>&"`)
	svg := c.String()
	if strings.Contains(svg, "<script>") {
		t.Error("attribute not escaped")
	}
	if strings.Contains(svg, "<b>") {
		t.Error("text not escaped")
	}
	if !strings.Contains(svg, "&lt;b&gt;&amp;") {
		t.Error("escaped entities missing")
	}
}

func TestCanvasDefaultsSize(t *testing.T) {
	c := NewCanvas(0, -5)
	if c.W <= 0 || c.H <= 0 {
		t.Errorf("canvas defaults = %dx%d", c.W, c.H)
	}
}

func TestPolylineTooShort(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Polyline([][2]float64{{1, 1}}, "red", 1)
	if strings.Contains(c.String(), "polyline") {
		t.Error("single-point polyline should be skipped")
	}
}

func TestHeatColorRamp(t *testing.T) {
	low := HeatColor(0)
	high := HeatColor(1)
	if low == high {
		t.Error("heat ramp endpoints identical")
	}
	if HeatColor(-5) != HeatColor(0) || HeatColor(5) != HeatColor(1) {
		t.Error("heat color must clamp")
	}
	// All outputs are hex colors.
	for _, v := range []float64{0, 0.2, 0.5, 0.8, 1} {
		c := HeatColor(v)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("HeatColor(%v) = %q", v, c)
		}
	}
}

func TestDivergingColor(t *testing.T) {
	if DivergingColor(0) != "#ffffff" {
		t.Errorf("neutral = %q, want white", DivergingColor(0))
	}
	neg := DivergingColor(-1)
	pos := DivergingColor(1)
	if neg == pos {
		t.Error("diverging endpoints identical")
	}
	// Negative is blue-ish (blue channel ff), positive red-ish.
	if !strings.HasSuffix(neg, "ff") {
		t.Errorf("loss color = %q, want blue-dominant", neg)
	}
	if !strings.HasPrefix(pos, "#ff") {
		t.Errorf("gain color = %q, want red-dominant", pos)
	}
}

func TestFlowColorDarkens(t *testing.T) {
	// Paper: the darker the color, the higher the rate.
	light := FlowColor(0)
	dark := FlowColor(1)
	if light == dark {
		t.Error("flow colors identical")
	}
	// Compare red channels: dark must be smaller.
	if light[1:3] <= dark[1:3] {
		t.Errorf("rate 1 color %q not darker than rate 0 %q", dark, light)
	}
}

func TestCategoryColorStable(t *testing.T) {
	if CategoryColor(3) != CategoryColor(3) {
		t.Error("category color unstable")
	}
	if CategoryColor(0) == CategoryColor(1) {
		t.Error("adjacent categories share a color")
	}
	if CategoryColor(-2) == "" || CategoryColor(100) == "" {
		t.Error("out-of-range categories must still map")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 2 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 2 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func mapFixture(t *testing.T) *MapView {
	t.Helper()
	box := geo.NewBBox(geo.Point{Lon: 12.4, Lat: 55.5}, geo.Point{Lon: 12.8, Lat: 55.9})
	field, err := kde.Estimate(
		[]kde.WeightedPoint{{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1}},
		box, kde.Config{Cols: 16, Rows: 16, Bandwidth: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return &MapView{
		Box:  box,
		Heat: field,
		Meters: []store.Meter{
			{ID: 1, Location: geo.Point{Lon: 12.5, Lat: 55.6}, Zone: store.ZoneResidential},
			{ID: 2, Location: geo.Point{Lon: 12.7, Lat: 55.8}, Zone: store.ZoneCommercial},
		},
		Highlight: map[int64]bool{2: true},
		Flows: []flow.Vector{
			{From: geo.Point{Lon: 12.5, Lat: 55.6}, To: geo.Point{Lon: 12.7, Lat: 55.8}, Mass: 1, Rate: 1},
		},
		Title: "test map",
	}
}

func TestMapViewRender(t *testing.T) {
	svg := mapFixture(t).Render()
	for _, want := range []string{"<svg", "test map", "<circle", "<polygon", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("map svg missing %q", want)
		}
	}
}

func TestMapViewDivergingRender(t *testing.T) {
	mv := mapFixture(t)
	// Make the heat field signed.
	for i := range mv.Heat.Values {
		if i%2 == 0 {
			mv.Heat.Values[i] = -mv.Heat.Values[i] - 0.1
		}
	}
	mv.HeatDiv = true
	svg := mv.Render()
	if !strings.Contains(svg, "<rect") {
		t.Error("diverging heat produced no cells")
	}
}

func TestTimeSeriesViewRender(t *testing.T) {
	v := &TimeSeriesView{
		Title:  "series",
		YLabel: "kWh",
		Series: []LabeledSeries{{
			Name: "mean",
			Buckets: []query.Bucket{
				{Start: 1514764800, Value: 1},
				{Start: 1514768400, Value: 3},
				{Start: 1514772000, Value: 2},
			},
		}},
	}
	svg := v.Render()
	for _, want := range []string{"polyline", "series", "kWh", "2018-01-01"} {
		if !strings.Contains(svg, want) {
			t.Errorf("series svg missing %q", want)
		}
	}
}

func TestTimeSeriesViewEmpty(t *testing.T) {
	svg := (&TimeSeriesView{}).Render()
	if !strings.Contains(svg, "no data") {
		t.Error("empty series should render a notice")
	}
}

func TestScatterViewRender(t *testing.T) {
	v := &ScatterView{
		Points: reduce.Embedding{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}},
		Labels: []int{0, 1, 2},
		Brush:  &[4]float64{0.4, 0.4, 0.6, 0.6},
		Title:  "view C",
	}
	svg := v.Render()
	if strings.Count(svg, "<circle") != 3 {
		t.Errorf("scatter circles = %d, want 3", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "view C") {
		t.Error("missing title")
	}
	// Brush draws a stroked rect plus the translucent fill.
	if strings.Count(svg, "<rect") < 3 { // background + fill + outline
		t.Error("brush rectangles missing")
	}
}

func TestScatterViewNoLabels(t *testing.T) {
	v := &ScatterView{Points: reduce.Embedding{{0.2, 0.3}}}
	if !strings.Contains(v.Render(), "<circle") {
		t.Error("unlabeled scatter missing points")
	}
}
