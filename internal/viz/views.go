package viz

import (
	"fmt"
	"time"

	"vap/internal/flow"
	"vap/internal/geo"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

// MapView renders view A: an optional heat layer, meter markers, and flow
// arrows over the study-area box projected with Web Mercator.
type MapView struct {
	Box     geo.BBox
	W, H    int
	Heat    *kde.Field    // optional density or shift layer
	HeatDiv bool          // true renders Heat with the diverging ramp
	Meters  []store.Meter // optional markers
	// Highlight marks a subset of meter IDs drawn emphasized.
	Highlight map[int64]bool
	Flows     []flow.Vector
	Title     string
}

// project maps a geographic point into canvas pixels.
func (m *MapView) project(p geo.Point) (float64, float64) {
	x0, y0 := geo.Mercator(geo.Point{Lon: m.Box.Min.Lon, Lat: m.Box.Max.Lat}) // NW
	x1, y1 := geo.Mercator(geo.Point{Lon: m.Box.Max.Lon, Lat: m.Box.Min.Lat}) // SE
	px, py := geo.Mercator(p)
	if x1 == x0 || y1 == y0 {
		return 0, 0
	}
	return (px - x0) / (x1 - x0) * float64(m.W), (py - y0) / (y1 - y0) * float64(m.H)
}

// Render produces the SVG document.
func (m *MapView) Render() string {
	if m.W <= 0 {
		m.W = 720
	}
	if m.H <= 0 {
		m.H = 560
	}
	c := NewCanvas(m.W, m.H)
	c.Rect(0, 0, float64(m.W), float64(m.H), "#f4f2ec", 1) // map background
	if m.Heat != nil {
		m.renderHeat(c)
	}
	for _, mt := range m.Meters {
		x, y := m.project(mt.Location)
		if m.Highlight != nil && m.Highlight[mt.ID] {
			c.Circle(x, y, 3.4, "#d62728", 0.95)
		} else {
			c.Circle(x, y, 2.0, zoneColor(mt.Zone), 0.55)
		}
	}
	for _, f := range m.Flows {
		x1, y1 := m.project(f.From)
		x2, y2 := m.project(f.To)
		width := 1.2 + 2.4*f.Rate
		c.Arrow(x1, y1, x2, y2, FlowColor(f.Rate), width, 0.6+0.4*f.Rate)
	}
	if m.Title != "" {
		c.Text(10, 20, 14, "#333", m.Title)
	}
	return c.String()
}

func (m *MapView) renderHeat(c *Canvas) {
	lo, hi := m.Heat.MinMax()
	cellW := float64(m.W) / float64(m.Heat.Cols)
	cellH := float64(m.H) / float64(m.Heat.Rows)
	for r := 0; r < m.Heat.Rows; r++ {
		for col := 0; col < m.Heat.Cols; col++ {
			v := m.Heat.At(col, r)
			var color string
			var opacity float64
			if m.HeatDiv {
				scale := hi
				if -lo > scale {
					scale = -lo
				}
				if scale == 0 {
					continue
				}
				nv := v / scale
				if nv > -0.04 && nv < 0.04 {
					continue
				}
				color = DivergingColor(nv)
				opacity = 0.55
			} else {
				if hi == lo || v <= lo {
					continue
				}
				nv := (v - lo) / (hi - lo)
				if nv < 0.04 {
					continue
				}
				color = HeatColor(nv)
				opacity = 0.5 * nv
				if opacity < 0.08 {
					opacity = 0.08
				}
			}
			// Raster rows count up from the south edge; canvas y runs down.
			y := float64(m.H) - float64(r+1)*cellH
			c.Rect(float64(col)*cellW, y, cellW+0.5, cellH+0.5, color, opacity)
		}
	}
}

func zoneColor(z store.ZoneType) string {
	switch z {
	case store.ZoneCommercial:
		return "#1f77b4"
	case store.ZoneResidential:
		return "#2ca02c"
	case store.ZoneIndustrial:
		return "#7f7f7f"
	default:
		return "#9467bd"
	}
}

// TimeSeriesView renders view B: one or more bucket series as lines with
// axes and time labels.
type TimeSeriesView struct {
	W, H   int
	Series []LabeledSeries
	Title  string
	YLabel string
}

// LabeledSeries is one named line.
type LabeledSeries struct {
	Name    string
	Buckets []query.Bucket
	Color   string // empty selects from the category palette
}

// Render produces the SVG document.
func (v *TimeSeriesView) Render() string {
	if v.W <= 0 {
		v.W = 720
	}
	if v.H <= 0 {
		v.H = 260
	}
	const padL, padR, padT, padB = 52, 12, 26, 30
	c := NewCanvas(v.W, v.H)
	c.Rect(0, 0, float64(v.W), float64(v.H), "#ffffff", 1)
	plotW := float64(v.W - padL - padR)
	plotH := float64(v.H - padT - padB)
	// Global extents.
	var minT, maxT int64 = 1 << 62, -1 << 62
	minV, maxV := 0.0, 1e-12
	any := false
	for _, s := range v.Series {
		for _, b := range s.Buckets {
			any = true
			if b.Start < minT {
				minT = b.Start
			}
			if b.Start > maxT {
				maxT = b.Start
			}
			if b.Value > maxV {
				maxV = b.Value
			}
			if b.Value < minV {
				minV = b.Value
			}
		}
	}
	if !any {
		c.Text(float64(v.W)/2-40, float64(v.H)/2, 12, "#999", "no data")
		return c.String()
	}
	if maxT == minT {
		maxT = minT + 1
	}
	xOf := func(ts int64) float64 {
		return padL + float64(ts-minT)/float64(maxT-minT)*plotW
	}
	yOf := func(val float64) float64 {
		return padT + (1-(val-minV)/(maxV-minV))*plotH
	}
	// Axes.
	c.Line(padL, padT, padL, padT+plotH, "#888", 1, 1)
	c.Line(padL, padT+plotH, padL+plotW, padT+plotH, "#888", 1, 1)
	for _, t := range niceTicks(minV, maxV, 4) {
		y := yOf(t)
		c.Line(padL-3, y, padL, y, "#888", 1, 1)
		c.Text(4, y+4, 10, "#555", fmt.Sprintf("%.2f", t))
	}
	// Three time labels.
	for _, frac := range []float64{0, 0.5, 1} {
		ts := minT + int64(frac*float64(maxT-minT))
		x := xOf(ts)
		c.Text(x-32, float64(v.H)-8, 10, "#555",
			time.Unix(ts, 0).UTC().Format("2006-01-02 15:04"))
	}
	for i, s := range v.Series {
		color := s.Color
		if color == "" {
			color = CategoryColor(i)
		}
		pts := make([][2]float64, len(s.Buckets))
		for j, b := range s.Buckets {
			pts[j] = [2]float64{xOf(b.Start), yOf(b.Value)}
		}
		c.Polyline(pts, color, 1.6)
		c.Text(padL+8+float64(i)*140, 16, 11, color, s.Name)
	}
	if v.Title != "" {
		c.Text(padL, padT-8, 12, "#333", v.Title)
	}
	if v.YLabel != "" {
		c.Text(4, 12, 10, "#555", v.YLabel)
	}
	return c.String()
}

// ScatterView renders view C: the normalized 2-D embedding with optional
// group coloring and a brush rectangle overlay.
type ScatterView struct {
	W, H   int
	Points reduce.Embedding // normalized to [0,1]^2
	// Labels color points by group; nil draws all points alike.
	Labels []int
	// Brush, if non-nil, is drawn as a selection rectangle (normalized
	// coordinates: MinX, MinY, MaxX, MaxY).
	Brush *[4]float64
	Title string
}

// Render produces the SVG document.
func (v *ScatterView) Render() string {
	if v.W <= 0 {
		v.W = 420
	}
	if v.H <= 0 {
		v.H = 420
	}
	const pad = 14
	c := NewCanvas(v.W, v.H)
	c.Rect(0, 0, float64(v.W), float64(v.H), "#fbfbfd", 1)
	plotW := float64(v.W - 2*pad)
	plotH := float64(v.H - 2*pad)
	for i, p := range v.Points {
		x := pad + p[0]*plotW
		y := pad + (1-p[1])*plotH
		color := "#1f77b4"
		if v.Labels != nil && i < len(v.Labels) {
			color = CategoryColor(v.Labels[i])
		}
		c.Circle(x, y, 2.6, color, 0.8)
	}
	if v.Brush != nil {
		b := *v.Brush
		x := pad + b[0]*plotW
		y := pad + (1-b[3])*plotH
		w := (b[2] - b[0]) * plotW
		h := (b[3] - b[1]) * plotH
		c.Rect(x, y, w, h, "#d62728", 0.12)
		c.elem(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="#d62728" stroke-width="1.2"/>`, x, y, w, h)
	}
	if v.Title != "" {
		c.Text(10, 14, 12, "#333", v.Title)
	}
	return c.String()
}
