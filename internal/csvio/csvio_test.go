package csvio

import (
	"bytes"
	"strings"
	"testing"

	"vap/internal/geo"
	"vap/internal/store"
)

func sampleMeters() []store.Meter {
	return []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 12.5, Lat: 55.7}, Zone: store.ZoneResidential,
			Labels: map[string]string{"pattern": "bimodal"}},
		{ID: 2, Location: geo.Point{Lon: 12.6, Lat: 55.8}, Zone: store.ZoneCommercial},
	}
}

func TestMetersRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMeters(&buf, sampleMeters()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("meters = %d", len(got))
	}
	if got[0].ID != 1 || got[0].Zone != store.ZoneResidential {
		t.Errorf("meter 0 = %+v", got[0])
	}
	if got[0].Labels["pattern"] != "bimodal" {
		t.Errorf("pattern label lost: %v", got[0].Labels)
	}
	if got[1].Labels != nil {
		t.Errorf("empty pattern should not create labels: %v", got[1].Labels)
	}
	if got[0].Location.DistanceTo(geo.Point{Lon: 12.5, Lat: 55.7}) > 1 {
		t.Errorf("location drifted: %v", got[0].Location)
	}
}

func TestReadMetersErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,row,x\n1,12.5,55.7,residential",
		"meter_id,lon,lat,zone\nabc,12.5,55.7,residential",
		"meter_id,lon,lat,zone\n1,999,55.7,residential",
		"meter_id,lon,lat,zone\n1,notanumber,55.7,residential",
	}
	for i, c := range cases {
		if _, err := ReadMeters(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadingsRoundTrip(t *testing.T) {
	in := []Reading{
		{MeterID: 1, Sample: store.Sample{TS: 100, Value: 1.5}},
		{MeterID: 1, Sample: store.Sample{TS: 200, Value: 2.25}},
		{MeterID: 2, Sample: store.Sample{TS: 100, Value: 0.75}},
	}
	var buf bytes.Buffer
	if err := WriteReadings(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReadings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("readings = %d", len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("reading %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestReadReadingsErrors(t *testing.T) {
	cases := []string{
		"",
		"meter,time,value\n1,100,1.5",
		"meter_id,ts,kwh\nx,100,1.5",
		"meter_id,ts,kwh\n1,y,1.5",
		"meter_id,ts,kwh\n1,100,z",
		"meter_id,ts,kwh\n1,100", // wrong field count
	}
	for i, c := range cases {
		if _, err := ReadReadings(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestImport(t *testing.T) {
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	readings := []Reading{
		// Out of file order and containing a duplicate timestamp.
		{MeterID: 1, Sample: store.Sample{TS: 200, Value: 2}},
		{MeterID: 1, Sample: store.Sample{TS: 100, Value: 1}},
		{MeterID: 1, Sample: store.Sample{TS: 200, Value: 99}}, // dup: skipped
		{MeterID: 2, Sample: store.Sample{TS: 50, Value: 5}},
		{MeterID: 7, Sample: store.Sample{TS: 1, Value: 1}}, // unknown meter
	}
	rep, err := Import(st, sampleMeters(), readings)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meters != 2 {
		t.Errorf("meters imported = %d", rep.Meters)
	}
	if rep.Readings != 3 {
		t.Errorf("readings imported = %d, want 3", rep.Readings)
	}
	if rep.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (dup + unknown meter)", rep.Skipped)
	}
	got, err := st.Range(1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].TS != 100 || got[1].TS != 200 || got[1].Value != 2 {
		t.Fatalf("imported series = %v", got)
	}
}

func TestImportThroughStoreAndBack(t *testing.T) {
	// Full cycle: write CSV, read, import, export again.
	st, _ := store.Open(store.Options{})
	defer st.Close()
	meters := sampleMeters()
	readings := []Reading{
		{MeterID: 1, Sample: store.Sample{TS: 100, Value: 1}},
		{MeterID: 2, Sample: store.Sample{TS: 100, Value: 2}},
	}
	var mbuf, rbuf bytes.Buffer
	if err := WriteMeters(&mbuf, meters); err != nil {
		t.Fatal(err)
	}
	if err := WriteReadings(&rbuf, readings); err != nil {
		t.Fatal(err)
	}
	ms, err := ReadMeters(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ReadReadings(&rbuf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Import(st, ms, rs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Readings != 2 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if st.Stats().Samples != 2 {
		t.Fatalf("stats = %+v", st.Stats())
	}
}
