// Package csvio imports and exports VAP datasets as CSV, the interchange
// path for plugging a real smart-meter data set (the paper's proprietary
// case study, or any utility export) into the store in place of the
// synthetic generator.
//
// Formats (headers required, column order fixed):
//
//	meters:   meter_id,lon,lat,zone[,pattern]
//	readings: meter_id,ts,kwh          (ts = Unix seconds, ascending per meter)
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vap/internal/geo"
	"vap/internal/store"
)

// ReadMeters parses a meters CSV. The optional trailing pattern column is
// preserved as a label.
func ReadMeters(r io.Reader) ([]store.Meter, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading meters: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("csvio: empty meters file")
	}
	if err := expectHeader(rows[0], "meter_id", "lon", "lat", "zone"); err != nil {
		return nil, err
	}
	out := make([]store.Meter, 0, len(rows)-1)
	for i, row := range rows[1:] {
		line := i + 2
		if len(row) < 4 {
			return nil, fmt.Errorf("csvio: meters line %d: want >= 4 fields, got %d", line, len(row))
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: meters line %d: bad meter_id %q", line, row[0])
		}
		lon, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: meters line %d: bad lon %q", line, row[1])
		}
		lat, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: meters line %d: bad lat %q", line, row[2])
		}
		m := store.Meter{
			ID:       id,
			Location: geo.Point{Lon: lon, Lat: lat},
			Zone:     store.ZoneType(row[3]),
		}
		if !m.Location.Valid() {
			return nil, fmt.Errorf("csvio: meters line %d: invalid location %v", line, m.Location)
		}
		if len(row) >= 5 && row[4] != "" {
			m.Labels = map[string]string{"pattern": row[4]}
		}
		out = append(out, m)
	}
	return out, nil
}

// WriteMeters emits the meters CSV (pattern label included when present).
func WriteMeters(w io.Writer, meters []store.Meter) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"meter_id", "lon", "lat", "zone", "pattern"}); err != nil {
		return err
	}
	for _, m := range meters {
		rec := []string{
			strconv.FormatInt(m.ID, 10),
			strconv.FormatFloat(m.Location.Lon, 'f', 6, 64),
			strconv.FormatFloat(m.Location.Lat, 'f', 6, 64),
			string(m.Zone),
			m.Labels["pattern"],
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Reading is one parsed reading row.
type Reading struct {
	MeterID int64
	Sample  store.Sample
}

// ReadReadings parses a readings CSV in file order.
func ReadReadings(r io.Reader) ([]Reading, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading readings header: %w", err)
	}
	if err := expectHeader(header, "meter_id", "ts", "kwh"); err != nil {
		return nil, err
	}
	var out []Reading
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("csvio: readings line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: readings line %d: bad meter_id %q", line, row[0])
		}
		ts, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: readings line %d: bad ts %q", line, row[1])
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: readings line %d: bad kwh %q", line, row[2])
		}
		out = append(out, Reading{MeterID: id, Sample: store.Sample{TS: ts, Value: v}})
	}
	return out, nil
}

// WriteReadings emits the readings CSV for a set of meters in meter-then-
// time order.
func WriteReadings(w io.Writer, readings []Reading) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"meter_id", "ts", "kwh"}); err != nil {
		return err
	}
	for _, rd := range readings {
		rec := []string{
			strconv.FormatInt(rd.MeterID, 10),
			strconv.FormatInt(rd.Sample.TS, 10),
			strconv.FormatFloat(rd.Sample.Value, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportReport summarizes an Import run.
type ImportReport struct {
	Meters   int
	Readings int
	Skipped  int // out-of-order or unknown-meter readings dropped
}

// Import loads meters and readings into the store. Readings are grouped
// per meter and sorted by timestamp before appending; duplicates and
// regressions (equal or decreasing timestamps) are skipped and counted.
func Import(st *store.Store, meters []store.Meter, readings []Reading) (ImportReport, error) {
	var rep ImportReport
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			return rep, err
		}
		rep.Meters++
	}
	byMeter := map[int64][]store.Sample{}
	for _, r := range readings {
		byMeter[r.MeterID] = append(byMeter[r.MeterID], r.Sample)
	}
	ids := make([]int64, 0, len(byMeter))
	for id := range byMeter {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		samples := byMeter[id]
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })
		var lastTS int64
		first := true
		for _, s := range samples {
			if !first && s.TS <= lastTS {
				rep.Skipped++
				continue
			}
			if err := st.Append(id, s); err != nil {
				if err == store.ErrUnknownMeter || err == store.ErrOutOfOrder {
					rep.Skipped++
					continue
				}
				return rep, err
			}
			lastTS = s.TS
			first = false
			rep.Readings++
		}
	}
	return rep, nil
}

func expectHeader(got []string, want ...string) error {
	if len(got) < len(want) {
		return fmt.Errorf("csvio: header %v, want prefix %v", got, want)
	}
	for i, w := range want {
		if got[i] != w {
			return fmt.Errorf("csvio: header column %d is %q, want %q", i, got[i], w)
		}
	}
	return nil
}
