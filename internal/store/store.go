package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"vap/internal/geo"
	"vap/internal/index"
)

func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

func pointFromBits(lon, lat uint64) geo.Point {
	return geo.Point{Lon: float64FromBits(lon), Lat: float64FromBits(lat)}
}

// Options configures a Store.
type Options struct {
	// Dir is the durability directory. Empty means a purely in-memory store
	// with no WAL or snapshots.
	Dir string
	// SyncEveryAppend fsyncs the WAL after every sample; defaults to false
	// (the WAL is flushed on Snapshot/Close and buffered in between).
	SyncEveryAppend bool
	// Shards is the number of lock shards the series map is split across.
	// Meters are hashed by ID onto shards, so concurrent appends and reads
	// touching different meters contend only when they land on the same
	// shard. <= 0 selects 16; other values are rounded up to the next
	// power of two.
	Shards int
}

const defaultShards = 16

// shard owns a disjoint slice of the meter space: its own series map,
// mutex, and monotonic mutation counter.
type shard struct {
	mu      sync.RWMutex
	series  map[int64]*Series
	version atomic.Uint64 // mutations that landed on this shard
}

// Store is the embedded spatio-temporal database: a catalog of meters with
// a spatial index, one compressed time series per meter, and optional
// durability (WAL + snapshots). It is safe for concurrent use.
//
// The series map is split across lock shards (Options.Shards) so ingest
// and query traffic on different meters does not serialize behind one
// global mutex. Every series additionally carries a per-meter version,
// bumped on each mutation of that meter; Fingerprint hashes the versions
// of a meter subset so execution-layer caches can key results on exactly
// the meters a task reads.
type Store struct {
	catalog *Catalog
	shards  []*shard
	mask    uint64
	opts    Options
	// walMu serializes WAL writes across shards. Lock order is always
	// shard(s) before walMu, so per-meter WAL record order matches series
	// order and replay never drops an append as out-of-order.
	walMu sync.Mutex
	wal   *WAL
	// closed flips once in Close while every shard lock is held, so any
	// mutation that observes it false under its shard lock is guaranteed
	// to finish before the WAL is released.
	closed atomic.Bool
	// version counts successful mutations store-wide (meter registrations,
	// appends). It is the coarse invalidation signal; Fingerprint is the
	// precise, selection-scoped one.
	version atomic.Uint64
}

// ErrClosed is returned by mutations (and a second Close) after the store
// has been closed. Reads keep working on the in-memory data.
var ErrClosed = errors.New("store: closed")

// Version returns the store's monotonically increasing data version. It
// changes on every successful mutation and never decreases; two equal
// versions imply identical stored data.
func (s *Store) Version() uint64 { return s.version.Load() }

// NumShards returns the number of lock shards.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardVersions returns each shard's mutation counter, indexed by shard.
func (s *Store) ShardVersions() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.version.Load()
	}
	return out
}

// shardFor maps a meter ID onto its shard with a 64-bit finalizer so
// sequentially assigned IDs spread instead of clustering.
func (s *Store) shardFor(id int64) *shard {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return s.shards[x&s.mask]
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates a Store. If opts.Dir is non-empty, it loads the latest
// snapshot (if any) and replays the WAL on top of it.
func Open(opts Options) (*Store, error) {
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	n = nextPow2(n)
	s := &Store{
		catalog: NewCatalog(),
		shards:  make([]*shard, n),
		mask:    uint64(n - 1),
		opts:    opts,
	}
	for i := range s.shards {
		s.shards[i] = &shard{series: make(map[int64]*Series)}
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(opts.Dir, "snapshot.vap")
	if _, err := os.Stat(snapPath); err == nil {
		if err := s.loadSnapshot(snapPath); err != nil {
			return nil, fmt.Errorf("store: loading snapshot: %w", err)
		}
	}
	walPath := filepath.Join(opts.Dir, "wal.log")
	err := ReplayWAL(walPath,
		func(m Meter) error { return s.replayMeter(m) },
		func(id int64, smp Sample) error {
			// Replay may overlap the snapshot; skip stale samples.
			err := s.replaySample(id, smp)
			if err == ErrOutOfOrder || err == ErrUnknownMeter {
				return nil
			}
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("store: replaying WAL: %w", err)
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// ErrUnknownMeter is returned when appending to an unregistered meter.
var ErrUnknownMeter = fmt.Errorf("store: unknown meter")

// lockAll/unlockAll take every shard lock in index order (whole-store
// operations: Close, Snapshot).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// Close flushes the WAL and releases resources. A second Close, like any
// mutation after the first, returns ErrClosed.
func (s *Store) Close() error {
	s.lockAll()
	if s.closed.Load() {
		s.unlockAll()
		return ErrClosed
	}
	s.closed.Store(true)
	s.unlockAll()
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// Catalog exposes the meter metadata registry.
func (s *Store) Catalog() *Catalog { return s.catalog }

// putMeterShardLocked registers m under its (held) shard lock: catalog
// entry, series creation (or a version bump when replacing an existing
// meter, since relocation changes query results), and version bumps.
func (s *Store) putMeterShardLocked(sh *shard, m Meter) error {
	if err := s.catalog.Put(m); err != nil {
		return err
	}
	if ser, ok := sh.series[m.ID]; ok {
		ser.ver++
	} else {
		sh.series[m.ID] = NewSeries(m.ID)
	}
	sh.version.Add(1)
	s.version.Add(1)
	return nil
}

// PutMeter registers a meter and creates its (empty) series. Re-putting an
// existing meter replaces its metadata and bumps its version.
func (s *Store) PutMeter(m Meter) error {
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.putMeterShardLocked(sh, m); err != nil {
		return err
	}
	if s.wal != nil {
		s.walMu.Lock()
		err := s.wal.AppendMeter(m)
		if err == nil && s.opts.SyncEveryAppend {
			err = s.wal.Sync()
		}
		s.walMu.Unlock()
		return err
	}
	return nil
}

func (s *Store) replayMeter(m Meter) error {
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.putMeterShardLocked(sh, m)
}

func (s *Store) replaySample(id int64, smp Sample) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.appendShardLocked(sh, id, smp)
}

func (s *Store) appendShardLocked(sh *shard, meterID int64, smp Sample) error {
	ser, ok := sh.series[meterID]
	if !ok {
		return ErrUnknownMeter
	}
	if err := ser.Append(smp); err != nil {
		return err
	}
	sh.version.Add(1)
	s.version.Add(1)
	return nil
}

// Append stores one sample for a registered meter.
func (s *Store) Append(meterID int64, smp Sample) error {
	sh := s.shardFor(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.appendShardLocked(sh, meterID, smp); err != nil {
		return err
	}
	if s.wal != nil {
		s.walMu.Lock()
		err := s.wal.AppendSample(meterID, smp)
		if err == nil && s.opts.SyncEveryAppend {
			err = s.wal.Sync()
		}
		s.walMu.Unlock()
		return err
	}
	return nil
}

// AppendBatch stores a batch of in-order samples for one meter, amortizing
// lock and WAL overhead. It stops at the first error, returning the number
// of samples stored.
func (s *Store) AppendBatch(meterID int64, smps []Sample) (int, error) {
	sh := s.shardFor(meterID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
	}
	for i, smp := range smps {
		if err := ser.Append(smp); err != nil {
			return i, err
		}
		sh.version.Add(1)
		s.version.Add(1)
		if s.wal != nil {
			if err := s.wal.AppendSample(meterID, smp); err != nil {
				// Sample i is already applied in memory; report it stored
				// so a resuming caller does not replay it into
				// ErrOutOfOrder.
				return i + 1, err
			}
		}
	}
	if s.wal != nil && s.opts.SyncEveryAppend {
		return len(smps), s.wal.Sync()
	}
	return len(smps), nil
}

// Range returns the samples of one meter with from <= TS < to.
func (s *Store) Range(meterID int64, from, to int64) ([]Sample, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	return ser.Range(from, to)
}

// Iter returns a pushdown iterator over one meter's samples with
// from <= TS < to. The iterator snapshots the series under the shard lock
// (immutable sealed chunks plus a copy of the head block) and then decodes
// lock-free, so callers stream samples without blocking writers and
// without materializing full sample slices.
func (s *Store) Iter(meterID int64, from, to int64) (*SeriesIter, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	return ser.Iter(from, to), nil
}

// SeriesLen returns the number of samples stored for a meter.
func (s *Store) SeriesLen(meterID int64) (int, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	return ser.Len(), nil
}

// Bounds returns the first and last timestamps of a meter's series.
func (s *Store) Bounds(meterID int64) (int64, int64, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, 0, ErrUnknownMeter
	}
	return ser.Bounds()
}

// MeterVersion returns the per-meter version: a counter bumped on every
// mutation of that meter (registration, metadata replacement, append).
func (s *Store) MeterVersion(meterID int64) (uint64, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	return ser.ver, nil
}

// MeterVersions returns the per-meter versions of ids, aligned by index
// (0 for unknown meters). Lookups are grouped so each shard is locked at
// most once.
func (s *Store) MeterVersions(ids []int64) []uint64 {
	vers := make([]uint64, len(ids))
	byShard := make(map[*shard][]int, len(s.shards))
	for i, id := range ids {
		sh := s.shardFor(id)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		sh.mu.RLock()
		for _, i := range idxs {
			if ser, ok := sh.series[ids[i]]; ok {
				vers[i] = ser.ver
			}
		}
		sh.mu.RUnlock()
	}
	return vers
}

// Fingerprint hashes the (id, per-meter version) pairs of ids into one
// selection-scoped version: it changes iff one of those meters mutates (or
// the set itself changes), so execution-layer caches keyed on it survive
// appends to every other meter. A nil ids means all registered meters.
// Each pair is hashed independently and the pair hashes combine
// commutatively, so the fingerprint is insensitive to the order of ids —
// two selections resolving to the same meter set fingerprint identically
// regardless of how the caller enumerated it.
func (s *Store) Fingerprint(ids []int64) uint64 {
	if ids == nil {
		ids = s.catalog.IDs()
	}
	return FingerprintPairs(ids, s.MeterVersions(ids))
}

// FingerprintPairs combines (id, version) pairs into the selection-scoped
// fingerprint Store.Fingerprint produces. Each pair is hashed
// independently and the hashes combine commutatively, so enumeration
// order does not matter. Exported so executors that already hold
// per-meter versions observed at scan time (SeriesIter.Version) can stamp
// results with the fingerprint of exactly the data they read.
func FingerprintPairs(ids []int64, vers []uint64) uint64 {
	var acc uint64
	var buf [16]byte
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[:8], uint64(id))
		binary.LittleEndian.PutUint64(buf[8:], vers[i])
		h := fnv.New64a()
		h.Write(buf[:])
		acc += h.Sum64()
	}
	// Fold in the set size so the empty set and pathological cancellations
	// stay distinguishable from "no data".
	return acc ^ (uint64(len(ids)) * 0x9e3779b97f4a7c15)
}

// GlobalFingerprint hashes the per-shard versions into one store-wide
// data-version stamp in O(shards): it changes whenever any mutation lands
// anywhere. It is the cheap all-data signal for per-tick/per-request
// stamping (SSE events, /api/stats); selection-scoped cache keys use
// Fingerprint, which is precise per meter subset but walks the subset.
func (s *Store) GlobalFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, sh := range s.shards {
		binary.LittleEndian.PutUint64(buf[:], sh.version.Load())
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TimeBounds returns the min first and max last timestamp across all
// non-empty series; ok is false when no data is stored.
func (s *Store) TimeBounds() (first, last int64, ok bool) {
	first, last = maxInt64, minInt64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			f, l, err := ser.Bounds()
			if err != nil {
				continue
			}
			if f < first {
				first = f
			}
			if l > last {
				last = l
			}
			ok = true
		}
		sh.mu.RUnlock()
	}
	if !ok {
		return 0, 0, false
	}
	return first, last, true
}

// Stats reports storage totals.
type Stats struct {
	Meters          int
	Samples         int
	CompressedBytes int
	RawBytes        int // samples * 16 (8B ts + 8B value)
	Shards          int
}

// Stats returns aggregate storage statistics.
func (s *Store) Stats() Stats {
	st := Stats{Meters: s.catalog.Len(), Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			st.Samples += ser.Len()
			st.CompressedBytes += ser.CompressedBytes()
		}
		sh.mu.RUnlock()
	}
	st.RawBytes = st.Samples * 16
	return st
}

// Within returns meter IDs inside a geographic box.
func (s *Store) Within(box geo.BBox) []int64 { return s.catalog.Within(box) }

// Near returns up to k nearest meters to p.
func (s *Store) Near(p geo.Point, k int) []index.Neighbor { return s.catalog.Near(p, k) }

// --- Snapshots ---------------------------------------------------------

var snapMagic = [4]byte{'V', 'A', 'P', 'S'}

// Snapshot atomically writes the full dataset to Dir/snapshot.vap and
// truncates the WAL. It is a no-op error for in-memory stores. Every shard
// is locked for the duration, so the snapshot is point-in-time consistent.
func (s *Store) Snapshot() error {
	s.lockAll()
	defer s.unlockAll()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.opts.Dir == "" {
		return fmt.Errorf("store: snapshot requires a durability directory")
	}
	tmp := filepath.Join(s.opts.Dir, "snapshot.vap.tmp")
	final := filepath.Join(s.opts.Dir, "snapshot.vap")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := s.writeSnapshot(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		return s.wal.Truncate()
	}
	return nil
}

// writeSnapshot serializes: magic, meter count, meters, then per-meter
// sample runs (count + raw samples) with a trailing CRC of everything.
// Callers hold every shard lock.
func (s *Store) writeSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(snapMagic[:]); err != nil {
		return err
	}
	meters := s.catalog.All()
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(meters))); err != nil {
		return err
	}
	for _, m := range meters {
		zone := []byte(m.Zone)
		if err := binary.Write(mw, binary.LittleEndian, m.ID); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, m.Location.Lon); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, m.Location.Lat); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint16(len(zone))); err != nil {
			return err
		}
		if _, err := mw.Write(zone); err != nil {
			return err
		}
		ser := s.shardFor(m.ID).series[m.ID]
		var samples []Sample
		if ser != nil {
			var err error
			samples, err = ser.All()
			if err != nil {
				return err
			}
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(samples))); err != nil {
			return err
		}
		for _, smp := range samples {
			if err := binary.Write(mw, binary.LittleEndian, smp.TS); err != nil {
				return err
			}
			if err := binary.Write(mw, binary.LittleEndian, smp.Value); err != nil {
				return err
			}
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

func (s *Store) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 12 {
		return ErrCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("store: snapshot checksum mismatch")
	}
	r := &sliceReader{data: body}
	var magic [4]byte
	if err := r.read(magic[:]); err != nil || magic != snapMagic {
		return ErrCorrupt
	}
	nMeters, err := r.uint32()
	if err != nil {
		return ErrCorrupt
	}
	for i := uint32(0); i < nMeters; i++ {
		id, err := r.int64()
		if err != nil {
			return ErrCorrupt
		}
		lon, err := r.float64()
		if err != nil {
			return ErrCorrupt
		}
		lat, err := r.float64()
		if err != nil {
			return ErrCorrupt
		}
		zlen, err := r.uint16()
		if err != nil {
			return ErrCorrupt
		}
		zone := make([]byte, zlen)
		if err := r.read(zone); err != nil {
			return ErrCorrupt
		}
		m := Meter{ID: id, Location: geo.Point{Lon: lon, Lat: lat}, Zone: ZoneType(zone)}
		if err := s.replayMeter(m); err != nil {
			return err
		}
		nSamples, err := r.uint32()
		if err != nil {
			return ErrCorrupt
		}
		sh := s.shardFor(id)
		sh.mu.Lock()
		var loadErr error
		for j := uint32(0); j < nSamples; j++ {
			ts, err := r.int64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			v, err := r.float64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			if err := s.appendShardLocked(sh, id, Sample{TS: ts, Value: v}); err != nil {
				loadErr = err
				break
			}
		}
		sh.mu.Unlock()
		if loadErr != nil {
			return loadErr
		}
	}
	return nil
}

// sliceReader reads little-endian primitives from a byte slice.
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) read(p []byte) error {
	if r.off+len(p) > len(r.data) {
		return io.ErrUnexpectedEOF
	}
	copy(p, r.data[r.off:])
	r.off += len(p)
	return nil
}

func (r *sliceReader) uint32() (uint32, error) {
	var b [4]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *sliceReader) uint16() (uint16, error) {
	var b [2]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *sliceReader) int64() (int64, error) {
	var b [8]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *sliceReader) float64() (float64, error) {
	v, err := r.int64()
	return math.Float64frombits(uint64(v)), err
}

// MeterIDsSorted returns all meter IDs ascending; convenience for callers
// iterating deterministically.
func (s *Store) MeterIDsSorted() []int64 {
	ids := s.catalog.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
