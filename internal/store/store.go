package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"vap/internal/geo"
	"vap/internal/index"
)

func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

func pointFromBits(lon, lat uint64) geo.Point {
	return geo.Point{Lon: float64FromBits(lon), Lat: float64FromBits(lat)}
}

// Options configures a Store.
type Options struct {
	// Dir is the durability directory. Empty means a purely in-memory store
	// with no WAL or snapshots.
	Dir string
	// SyncEveryAppend fsyncs the WAL after every sample; defaults to false
	// (the WAL is flushed on Snapshot/Close and buffered in between).
	SyncEveryAppend bool
}

// Store is the embedded spatio-temporal database: a catalog of meters with
// a spatial index, one compressed time series per meter, and optional
// durability (WAL + snapshots). It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	catalog *Catalog
	series  map[int64]*Series
	wal     *WAL
	opts    Options
	// version counts successful mutations (meter registrations, appends).
	// Execution-layer caches embed it in their keys, so any ingest
	// precisely invalidates results computed against older data.
	version atomic.Uint64
}

// Version returns the store's monotonically increasing data version. It
// changes on every successful mutation and never decreases; two equal
// versions imply identical stored data.
func (s *Store) Version() uint64 { return s.version.Load() }

// Open creates a Store. If opts.Dir is non-empty, it loads the latest
// snapshot (if any) and replays the WAL on top of it.
func Open(opts Options) (*Store, error) {
	s := &Store{
		catalog: NewCatalog(),
		series:  make(map[int64]*Series),
		opts:    opts,
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(opts.Dir, "snapshot.vap")
	if _, err := os.Stat(snapPath); err == nil {
		if err := s.loadSnapshot(snapPath); err != nil {
			return nil, fmt.Errorf("store: loading snapshot: %w", err)
		}
	}
	walPath := filepath.Join(opts.Dir, "wal.log")
	err := ReplayWAL(walPath,
		func(m Meter) error { return s.putMeterLocked(m) },
		func(id int64, smp Sample) error {
			// Replay may overlap the snapshot; skip stale samples.
			err := s.appendLocked(id, smp)
			if err == ErrOutOfOrder || err == ErrUnknownMeter {
				return nil
			}
			return err
		})
	if err != nil {
		return nil, fmt.Errorf("store: replaying WAL: %w", err)
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// ErrUnknownMeter is returned when appending to an unregistered meter.
var ErrUnknownMeter = fmt.Errorf("store: unknown meter")

// Close flushes the WAL and releases resources.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// Catalog exposes the meter metadata registry.
func (s *Store) Catalog() *Catalog { return s.catalog }

// PutMeter registers a meter and creates its (empty) series.
func (s *Store) PutMeter(m Meter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putMeterLocked(m); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.AppendMeter(m); err != nil {
			return err
		}
		if s.opts.SyncEveryAppend {
			return s.wal.Sync()
		}
	}
	return nil
}

func (s *Store) putMeterLocked(m Meter) error {
	if err := s.catalog.Put(m); err != nil {
		return err
	}
	if _, ok := s.series[m.ID]; !ok {
		s.series[m.ID] = NewSeries(m.ID)
	}
	s.version.Add(1)
	return nil
}

// Append stores one sample for a registered meter.
func (s *Store) Append(meterID int64, smp Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(meterID, smp); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.AppendSample(meterID, smp); err != nil {
			return err
		}
		if s.opts.SyncEveryAppend {
			return s.wal.Sync()
		}
	}
	return nil
}

func (s *Store) appendLocked(meterID int64, smp Sample) error {
	ser, ok := s.series[meterID]
	if !ok {
		return ErrUnknownMeter
	}
	if err := ser.Append(smp); err != nil {
		return err
	}
	s.version.Add(1)
	return nil
}

// AppendBatch stores a batch of in-order samples for one meter, amortizing
// lock and WAL overhead. It stops at the first error, returning the number
// of samples stored.
func (s *Store) AppendBatch(meterID int64, smps []Sample) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	for i, smp := range smps {
		if err := ser.Append(smp); err != nil {
			return i, err
		}
		s.version.Add(1)
		if s.wal != nil {
			if err := s.wal.AppendSample(meterID, smp); err != nil {
				return i, err
			}
		}
	}
	if s.wal != nil && s.opts.SyncEveryAppend {
		return len(smps), s.wal.Sync()
	}
	return len(smps), nil
}

// Range returns the samples of one meter with from <= TS < to.
func (s *Store) Range(meterID int64, from, to int64) ([]Sample, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	return ser.Range(from, to)
}

// SeriesLen returns the number of samples stored for a meter.
func (s *Store) SeriesLen(meterID int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	return ser.Len(), nil
}

// Bounds returns the first and last timestamps of a meter's series.
func (s *Store) Bounds(meterID int64) (int64, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[meterID]
	if !ok {
		return 0, 0, ErrUnknownMeter
	}
	return ser.Bounds()
}

// TimeBounds returns the min first and max last timestamp across all
// non-empty series; ok is false when no data is stored.
func (s *Store) TimeBounds() (first, last int64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	first, last = maxInt64, minInt64
	for _, ser := range s.series {
		f, l, err := ser.Bounds()
		if err != nil {
			continue
		}
		if f < first {
			first = f
		}
		if l > last {
			last = l
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return first, last, true
}

// Stats reports storage totals.
type Stats struct {
	Meters          int
	Samples         int
	CompressedBytes int
	RawBytes        int // samples * 16 (8B ts + 8B value)
}

// Stats returns aggregate storage statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Meters: s.catalog.Len()}
	for _, ser := range s.series {
		st.Samples += ser.Len()
		st.CompressedBytes += ser.CompressedBytes()
	}
	st.RawBytes = st.Samples * 16
	return st
}

// Within returns meter IDs inside a geographic box.
func (s *Store) Within(box geo.BBox) []int64 { return s.catalog.Within(box) }

// Near returns up to k nearest meters to p.
func (s *Store) Near(p geo.Point, k int) []index.Neighbor { return s.catalog.Near(p, k) }

// --- Snapshots ---------------------------------------------------------

var snapMagic = [4]byte{'V', 'A', 'P', 'S'}

// Snapshot atomically writes the full dataset to Dir/snapshot.vap and
// truncates the WAL. It is a no-op error for in-memory stores.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Dir == "" {
		return fmt.Errorf("store: snapshot requires a durability directory")
	}
	tmp := filepath.Join(s.opts.Dir, "snapshot.vap.tmp")
	final := filepath.Join(s.opts.Dir, "snapshot.vap")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := s.writeSnapshot(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if s.wal != nil {
		return s.wal.Truncate()
	}
	return nil
}

// writeSnapshot serializes: magic, meter count, meters, then per-meter
// sample runs (count + raw samples) with a trailing CRC of everything.
func (s *Store) writeSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(snapMagic[:]); err != nil {
		return err
	}
	meters := s.catalog.All()
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(meters))); err != nil {
		return err
	}
	for _, m := range meters {
		zone := []byte(m.Zone)
		if err := binary.Write(mw, binary.LittleEndian, m.ID); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, m.Location.Lon); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, m.Location.Lat); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint16(len(zone))); err != nil {
			return err
		}
		if _, err := mw.Write(zone); err != nil {
			return err
		}
		ser := s.series[m.ID]
		var samples []Sample
		if ser != nil {
			var err error
			samples, err = ser.All()
			if err != nil {
				return err
			}
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(samples))); err != nil {
			return err
		}
		for _, smp := range samples {
			if err := binary.Write(mw, binary.LittleEndian, smp.TS); err != nil {
				return err
			}
			if err := binary.Write(mw, binary.LittleEndian, smp.Value); err != nil {
				return err
			}
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

func (s *Store) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 12 {
		return ErrCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("store: snapshot checksum mismatch")
	}
	r := &sliceReader{data: body}
	var magic [4]byte
	if err := r.read(magic[:]); err != nil || magic != snapMagic {
		return ErrCorrupt
	}
	nMeters, err := r.uint32()
	if err != nil {
		return ErrCorrupt
	}
	for i := uint32(0); i < nMeters; i++ {
		id, err := r.int64()
		if err != nil {
			return ErrCorrupt
		}
		lon, err := r.float64()
		if err != nil {
			return ErrCorrupt
		}
		lat, err := r.float64()
		if err != nil {
			return ErrCorrupt
		}
		zlen, err := r.uint16()
		if err != nil {
			return ErrCorrupt
		}
		zone := make([]byte, zlen)
		if err := r.read(zone); err != nil {
			return ErrCorrupt
		}
		m := Meter{ID: id, Location: geo.Point{Lon: lon, Lat: lat}, Zone: ZoneType(zone)}
		if err := s.putMeterLocked(m); err != nil {
			return err
		}
		nSamples, err := r.uint32()
		if err != nil {
			return ErrCorrupt
		}
		ser := s.series[id]
		for j := uint32(0); j < nSamples; j++ {
			ts, err := r.int64()
			if err != nil {
				return ErrCorrupt
			}
			v, err := r.float64()
			if err != nil {
				return ErrCorrupt
			}
			if err := ser.Append(Sample{TS: ts, Value: v}); err != nil {
				return err
			}
		}
	}
	return nil
}

// sliceReader reads little-endian primitives from a byte slice.
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) read(p []byte) error {
	if r.off+len(p) > len(r.data) {
		return io.ErrUnexpectedEOF
	}
	copy(p, r.data[r.off:])
	r.off += len(p)
	return nil
}

func (r *sliceReader) uint32() (uint32, error) {
	var b [4]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *sliceReader) uint16() (uint16, error) {
	var b [2]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *sliceReader) int64() (int64, error) {
	var b [8]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *sliceReader) float64() (float64, error) {
	v, err := r.int64()
	return math.Float64frombits(uint64(v)), err
}

// MeterIDsSorted returns all meter IDs ascending; convenience for callers
// iterating deterministically.
func (s *Store) MeterIDsSorted() []int64 {
	ids := s.catalog.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
