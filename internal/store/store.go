package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vap/internal/geo"
	"vap/internal/index"
)

func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

func pointFromBits(lon, lat uint64) geo.Point {
	return geo.Point{Lon: float64FromBits(lon), Lat: float64FromBits(lat)}
}

// Options configures a Store.
type Options struct {
	// Dir is the durability directory. Empty means a purely in-memory store
	// with no WAL or snapshots.
	Dir string
	// SyncEveryAppend makes every Append wait for its group commit: when it
	// returns nil, the sample is on disk. Defaults to false, where appends
	// return immediately and the committer flushes+fsyncs the log in the
	// background at most CommitInterval behind.
	SyncEveryAppend bool
	// SegmentBytes is the WAL segment rotation threshold; <= 0 selects
	// DefaultSegmentBytes (64 MiB).
	SegmentBytes int64
	// CommitInterval is the group-commit cadence: sync appenders that
	// arrive while a commit's fsync is in flight are batched into the next
	// one, and buffered (non-sync) appends are flushed at least this often.
	// <= 0 selects DefaultCommitInterval (2ms).
	CommitInterval time.Duration
	// Shards is the number of lock shards the series map is split across.
	// Meters are hashed by ID onto shards, so concurrent appends and reads
	// touching different meters contend only when they land on the same
	// shard. <= 0 selects 16; other values are rounded up to the next
	// power of two.
	Shards int
	// RollupRes lists the rollup tier resolutions, in seconds, to maintain
	// per meter (see rollup.go). nil selects DefaultRollupRes (hourly +
	// daily); an explicitly empty non-nil slice disables rollups. Values
	// are sorted and deduplicated; non-positive entries are dropped.
	RollupRes []int64
	// RetainRaw ages raw samples out of snapshots: when > 0, each Snapshot
	// drops sealed chunks wholly older than (newest sample - RetainRaw)
	// from both the snapshot file and memory. Rollup tiers are never aged,
	// so coarse aggregates survive past the raw horizon. Zero keeps raw
	// data forever. The cutoff is data time, not wall time: it trails the
	// newest stored sample.
	RetainRaw time.Duration
	// RecoverWorkers is the worker-pool width Open uses for parallel
	// recovery: v3 snapshot sections are installed and WAL records applied
	// across this many goroutines. <= 0 selects GOMAXPROCS; 1 forces the
	// fully serial paths.
	RecoverWorkers int
	// SnapshotFormat selects the layout Snapshot writes: 0 or 3 write the
	// current chunk-verbatim v3 ("VAP3"); 2 pins the legacy materialized
	// v2 ("VAP2") for downgrade paths and benchmarking. Open always reads
	// every format regardless of this setting.
	SnapshotFormat int
}

const defaultShards = 16

// shard owns a disjoint slice of the meter space: its own series map,
// mutex, and monotonic mutation counter.
type shard struct {
	mu      sync.RWMutex
	series  map[int64]*Series
	version atomic.Uint64 // mutations that landed on this shard
}

// Store is the embedded spatio-temporal database: a catalog of meters with
// a spatial index, one compressed time series per meter, and optional
// durability (WAL + snapshots). It is safe for concurrent use.
//
// The series map is split across lock shards (Options.Shards) so ingest
// and query traffic on different meters does not serialize behind one
// global mutex. Every series additionally carries a per-meter version,
// bumped on each mutation of that meter; Fingerprint hashes the versions
// of a meter subset so execution-layer caches can key results on exactly
// the meters a task reads.
type Store struct {
	catalog *Catalog
	shards  []*shard
	mask    uint64
	opts    Options
	// rollupRes is the normalized tier resolution set (ascending, deduped)
	// every series maintains. Immutable after Open.
	rollupRes []int64
	// wal is the segmented group-commit log. Records are enqueued under the
	// owning shard lock (so per-meter WAL order matches series order and
	// replay never drops an append as out-of-order) and committed — one
	// write+fsync per batch — by the WAL's committer goroutine.
	wal *WAL
	// snapMu serializes Snapshot against itself and Close. Lock order:
	// snapMu before shard locks.
	snapMu sync.Mutex
	// lastSnapUnix is the wall-clock second the latest snapshot became
	// durable; 0 means never.
	lastSnapUnix atomic.Int64
	// closed flips once in Close while every shard lock is held, so any
	// mutation that observes it false under its shard lock is guaranteed
	// to finish before the WAL is released.
	closed atomic.Bool
	// version counts successful mutations store-wide (meter registrations,
	// appends). It is the coarse invalidation signal; Fingerprint is the
	// precise, selection-scoped one.
	version atomic.Uint64
	// recovery is the breakdown of the work Open did (snapshot load + WAL
	// replay). Written only during Open, read-only afterwards.
	recovery RecoveryStats
}

// ErrClosed is returned by mutations (and a second Close) after the store
// has been closed. Reads keep working on the in-memory data.
var ErrClosed = errors.New("store: closed")

// ErrNoDurability is returned by Snapshot on a store opened without a
// durability directory: there is nowhere to persist to.
var ErrNoDurability = errors.New("store: snapshot requires a durability directory")

// Version returns the store's monotonically increasing data version. It
// changes on every successful mutation and never decreases; two equal
// versions imply identical stored data.
func (s *Store) Version() uint64 { return s.version.Load() }

// NumShards returns the number of lock shards.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardVersions returns each shard's mutation counter, indexed by shard.
func (s *Store) ShardVersions() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.version.Load()
	}
	return out
}

// shardIndex maps a meter ID onto its shard index with a 64-bit finalizer
// so sequentially assigned IDs spread instead of clustering.
func (s *Store) shardIndex(id int64) int {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & s.mask)
}

// shardFor returns the shard owning a meter ID.
func (s *Store) shardFor(id int64) *shard { return s.shards[s.shardIndex(id)] }

// recoverWorkers resolves Options.RecoverWorkers (<= 0 means GOMAXPROCS).
func (s *Store) recoverWorkers() int {
	if s.opts.RecoverWorkers > 0 {
		return s.opts.RecoverWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates a Store. If opts.Dir is non-empty, it loads the latest
// snapshot (if any) and replays the WAL on top of it — both fanned out
// across Options.RecoverWorkers workers (snapshot meter installs for v3
// files, per-shard WAL record appliers). Recovery() reports the breakdown.
func Open(opts Options) (*Store, error) {
	switch opts.SnapshotFormat {
	case 0, 2, 3:
	default:
		return nil, fmt.Errorf("store: unsupported SnapshotFormat %d (want 0, 2 or 3)", opts.SnapshotFormat)
	}
	n := opts.Shards
	if n <= 0 {
		n = defaultShards
	}
	n = nextPow2(n)
	s := &Store{
		catalog:   NewCatalog(),
		shards:    make([]*shard, n),
		mask:      uint64(n - 1),
		opts:      opts,
		rollupRes: normalizeRollupRes(opts.RollupRes),
	}
	for i := range s.shards {
		s.shards[i] = &shard{series: make(map[int64]*Series)}
	}
	if opts.Dir == "" {
		return s, nil
	}
	start := time.Now()
	s.recovery.Workers = s.recoverWorkers()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-snapshot can leave a partial temp file; it was never
	// renamed into place, so it covers nothing and is safe to drop.
	os.Remove(filepath.Join(opts.Dir, "snapshot.vap.tmp"))
	snapPath := filepath.Join(opts.Dir, "snapshot.vap")
	if _, err := os.Stat(snapPath); err == nil {
		snapStart := time.Now()
		if err := s.loadSnapshot(snapPath); err != nil {
			return nil, fmt.Errorf("store: loading snapshot: %w", err)
		}
		s.recovery.SnapshotMS = time.Since(snapStart).Milliseconds()
	}
	// OpenWAL truncates the tail segment to its last valid record boundary
	// before anything is replayed or appended, so recovery can neither stop
	// early at a torn record nor append new data behind one.
	wal, err := OpenWAL(opts.Dir, walOptions{
		SegmentBytes:   opts.SegmentBytes,
		CommitInterval: opts.CommitInterval,
	})
	if err != nil {
		return nil, err
	}
	replayStart := time.Now()
	records, segments, err := s.replayWAL(wal)
	s.recovery.WALRecords = records
	s.recovery.WALSegments = segments
	s.recovery.WALReplayMS = time.Since(replayStart).Milliseconds()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: replaying WAL: %w", err)
	}
	s.wal = wal
	s.recovery.TotalMS = time.Since(start).Milliseconds()
	return s, nil
}

// ErrUnknownMeter is returned when appending to an unregistered meter.
var ErrUnknownMeter = fmt.Errorf("store: unknown meter")

// lockAll/unlockAll take every shard lock in index order (whole-store
// operations: Close, Snapshot).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// Close commits and closes the WAL and releases resources. A second
// Close, like any mutation after the first, returns ErrClosed. An
// in-flight Snapshot finishes first (snapMu).
func (s *Store) Close() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.lockAll()
	if s.closed.Load() {
		s.unlockAll()
		return ErrClosed
	}
	s.closed.Store(true)
	s.unlockAll()
	// Every appender that passed the closed check held its shard lock while
	// enqueueing, and lockAll above waited for them — so the WAL's final
	// commit below covers every acknowledged enqueue.
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// Sync forces a group commit of every append buffered so far (appends made
// without SyncEveryAppend) and waits for it to reach disk. It is a no-op
// for in-memory stores.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Catalog exposes the meter metadata registry.
func (s *Store) Catalog() *Catalog { return s.catalog }

// putMeterShardLocked registers m under its (held) shard lock: catalog
// entry, series creation (or a version bump when replacing an existing
// meter, since relocation changes query results), and version bumps.
func (s *Store) putMeterShardLocked(sh *shard, m Meter) error {
	if err := s.catalog.Put(m); err != nil {
		return err
	}
	if ser, ok := sh.series[m.ID]; ok {
		ser.ver++
	} else {
		sh.series[m.ID] = NewSeriesRollup(m.ID, s.rollupRes)
	}
	sh.version.Add(1)
	s.version.Add(1)
	return nil
}

// PutMeter registers a meter and creates its (empty) series. Re-putting an
// existing meter replaces its metadata and bumps its version. The WAL
// record is enqueued before the in-memory registration, so a failed log
// never leaves memory ahead of it.
func (s *Store) PutMeter(m Meter) error {
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	// Pre-validate what putMeterShardLocked would reject, so an invalid
	// meter is never logged (replay would refuse it and fail the open).
	if !m.Location.Valid() {
		sh.mu.Unlock()
		return fmt.Errorf("store: meter %d has invalid location %v", m.ID, m.Location)
	}
	var commit *WALCommit
	if s.wal != nil {
		c, err := s.wal.AppendMeter(m, s.opts.SyncEveryAppend)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		commit = c
	}
	err := s.putMeterShardLocked(sh, m)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if commit != nil {
		return commit.Wait()
	}
	return nil
}

func (s *Store) replayMeter(m Meter) error {
	sh := s.shardFor(m.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.putMeterShardLocked(sh, m)
}

func (s *Store) replaySample(id int64, smp Sample) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.appendShardLocked(sh, id, smp)
}

func (s *Store) appendShardLocked(sh *shard, meterID int64, smp Sample) error {
	ser, ok := sh.series[meterID]
	if !ok {
		return ErrUnknownMeter
	}
	if err := ser.Append(smp); err != nil {
		return err
	}
	sh.version.Add(1)
	s.version.Add(1)
	return nil
}

// Append stores one sample for a registered meter.
//
// Durability contract: the WAL record is enqueued before the sample is
// applied in memory, so a WAL failure (sticky commit error, closed log)
// returns without mutating the series and the caller can retry without
// hitting ErrOutOfOrder. With SyncEveryAppend the call additionally waits
// for the group commit: a nil return means the sample is fsynced. If that
// wait itself reports a commit failure, the sample is applied in memory
// but its durability is unknown; the WAL's failure is sticky, so every
// subsequent append fails fast until the store is reopened.
func (s *Store) Append(meterID int64, smp Sample) error {
	sh := s.shardFor(meterID)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	ser, ok := sh.series[meterID]
	if !ok {
		sh.mu.Unlock()
		return ErrUnknownMeter
	}
	if err := ser.CheckAppend(smp); err != nil {
		sh.mu.Unlock()
		return err
	}
	var commit *WALCommit
	if s.wal != nil {
		c, err := s.wal.AppendSample(meterID, smp, s.opts.SyncEveryAppend)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		commit = c
	}
	// Cannot fail after CheckAppend; the WAL and the series stay in step.
	_ = ser.Append(smp)
	sh.version.Add(1)
	s.version.Add(1)
	sh.mu.Unlock()
	if commit != nil {
		return commit.Wait()
	}
	return nil
}

// AppendBatch stores a batch of in-order samples for one meter, amortizing
// lock and WAL overhead: the whole batch is logged as one enqueue and
// covered by one group commit. It stops at the first invalid sample,
// returning the number of samples stored. Like Append, the WAL enqueue
// happens before any in-memory mutation.
func (s *Store) AppendBatch(meterID int64, smps []Sample) (int, error) {
	sh := s.shardFor(meterID)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return 0, ErrClosed
	}
	ser, ok := sh.series[meterID]
	if !ok {
		sh.mu.Unlock()
		return 0, ErrUnknownMeter
	}
	// Find the valid prefix first: each sample must be strictly after both
	// the series tail and its predecessors in the batch.
	n := len(smps)
	var batchErr error
	last := ser.LastTS()
	nonEmpty := ser.Len() > 0
	for i, smp := range smps {
		if nonEmpty && smp.TS <= last {
			n, batchErr = i, ErrOutOfOrder
			break
		}
		last, nonEmpty = smp.TS, true
	}
	var commit *WALCommit
	if s.wal != nil && n > 0 {
		c, err := s.wal.AppendSamples(meterID, smps[:n], s.opts.SyncEveryAppend)
		if err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		commit = c
	}
	for _, smp := range smps[:n] {
		_ = ser.Append(smp) // validated above
	}
	if n > 0 {
		sh.version.Add(uint64(n))
		s.version.Add(uint64(n))
	}
	sh.mu.Unlock()
	if commit != nil {
		if err := commit.Wait(); err != nil {
			return n, err
		}
	}
	return n, batchErr
}

// Range returns the samples of one meter with from <= TS < to.
func (s *Store) Range(meterID int64, from, to int64) ([]Sample, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	return ser.Range(from, to)
}

// Iter returns a pushdown iterator over one meter's samples with
// from <= TS < to. The iterator snapshots the series under the shard lock
// (immutable sealed chunks plus a copy of the head block) and then decodes
// lock-free, so callers stream samples without blocking writers and
// without materializing full sample slices.
func (s *Store) Iter(meterID int64, from, to int64) (*SeriesIter, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	return ser.Iter(from, to), nil
}

// SeriesLen returns the number of samples stored for a meter.
func (s *Store) SeriesLen(meterID int64) (int, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	return ser.Len(), nil
}

// Bounds returns the first and last timestamps of a meter's series.
func (s *Store) Bounds(meterID int64) (int64, int64, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, 0, ErrUnknownMeter
	}
	return ser.Bounds()
}

// MeterVersion returns the per-meter version: a counter bumped on every
// mutation of that meter (registration, metadata replacement, append).
func (s *Store) MeterVersion(meterID int64) (uint64, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return 0, ErrUnknownMeter
	}
	return ser.ver, nil
}

// MeterVersions returns the per-meter versions of ids, aligned by index
// (0 for unknown meters). Lookups are grouped so each shard is locked at
// most once.
func (s *Store) MeterVersions(ids []int64) []uint64 {
	vers := make([]uint64, len(ids))
	byShard := make(map[*shard][]int, len(s.shards))
	for i, id := range ids {
		sh := s.shardFor(id)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		sh.mu.RLock()
		for _, i := range idxs {
			if ser, ok := sh.series[ids[i]]; ok {
				vers[i] = ser.ver
			}
		}
		sh.mu.RUnlock()
	}
	return vers
}

// SeriesStats returns the per-series statistics of ids, aligned by index
// (zero-valued entries, with MeterID preserved, for unknown meters).
// Lookups are grouped so each shard is locked at most once; everything
// returned is append-time metadata, so the call never decodes a block.
// This is the statistics surface the VQL cost-based planner reads.
func (s *Store) SeriesStats(ids []int64) []SeriesStats {
	stats := make([]SeriesStats, len(ids))
	byShard := make(map[*shard][]int, len(s.shards))
	for i, id := range ids {
		stats[i].MeterID = id
		sh := s.shardFor(id)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		sh.mu.RLock()
		for _, i := range idxs {
			if ser, ok := sh.series[ids[i]]; ok {
				stats[i] = ser.Stats()
			}
		}
		sh.mu.RUnlock()
	}
	return stats
}

// Fingerprint hashes the (id, per-meter version) pairs of ids into one
// selection-scoped version: it changes iff one of those meters mutates (or
// the set itself changes), so execution-layer caches keyed on it survive
// appends to every other meter. A nil ids means all registered meters.
// Each pair is hashed independently and the pair hashes combine
// commutatively, so the fingerprint is insensitive to the order of ids —
// two selections resolving to the same meter set fingerprint identically
// regardless of how the caller enumerated it.
func (s *Store) Fingerprint(ids []int64) uint64 {
	if ids == nil {
		ids = s.catalog.IDs()
	}
	return FingerprintPairs(ids, s.MeterVersions(ids))
}

// FingerprintPairs combines (id, version) pairs into the selection-scoped
// fingerprint Store.Fingerprint produces. Each pair is hashed
// independently and the hashes combine commutatively, so enumeration
// order does not matter. Exported so executors that already hold
// per-meter versions observed at scan time (SeriesIter.Version) can stamp
// results with the fingerprint of exactly the data they read.
func FingerprintPairs(ids []int64, vers []uint64) uint64 {
	var acc uint64
	var buf [16]byte
	for i, id := range ids {
		binary.LittleEndian.PutUint64(buf[:8], uint64(id))
		binary.LittleEndian.PutUint64(buf[8:], vers[i])
		h := fnv.New64a()
		h.Write(buf[:])
		acc += h.Sum64()
	}
	// Fold in the set size so the empty set and pathological cancellations
	// stay distinguishable from "no data".
	return acc ^ (uint64(len(ids)) * 0x9e3779b97f4a7c15)
}

// GlobalFingerprint hashes the per-shard versions into one store-wide
// data-version stamp in O(shards): it changes whenever any mutation lands
// anywhere. It is the cheap all-data signal for per-tick/per-request
// stamping (SSE events, /api/stats); selection-scoped cache keys use
// Fingerprint, which is precise per meter subset but walks the subset.
func (s *Store) GlobalFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, sh := range s.shards {
		binary.LittleEndian.PutUint64(buf[:], sh.version.Load())
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TimeBounds returns the min first and max last timestamp across all
// non-empty series; ok is false when no data is stored.
func (s *Store) TimeBounds() (first, last int64, ok bool) {
	first, last = maxInt64, minInt64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			f, l, err := ser.Bounds()
			if err != nil {
				continue
			}
			if f < first {
				first = f
			}
			if l > last {
				last = l
			}
			ok = true
		}
		sh.mu.RUnlock()
	}
	if !ok {
		return 0, 0, false
	}
	return first, last, true
}

// Stats reports storage totals.
type Stats struct {
	Meters          int
	Samples         int
	CompressedBytes int
	RawBytes        int // samples * 16 (8B ts + 8B value)
	Shards          int
	// WALSegments / WALBytes report the live write-ahead-log footprint;
	// both are 0 for in-memory stores.
	WALSegments int
	WALBytes    int64
	// LastSnapshotUnix is the wall-clock second the latest snapshot became
	// durable in this process; 0 means no snapshot has completed.
	LastSnapshotUnix int64
	// Rollups is the per-tier bucket count and byte footprint, ascending by
	// resolution; nil when rollups are disabled.
	Rollups []RollupTierStats
}

// Stats returns aggregate storage statistics.
func (s *Store) Stats() Stats {
	st := Stats{Meters: s.catalog.Len(), Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			st.Samples += ser.Len()
			st.CompressedBytes += ser.CompressedBytes()
		}
		sh.mu.RUnlock()
	}
	st.RawBytes = st.Samples * 16
	st.WALSegments, st.WALBytes = s.WALStats()
	st.LastSnapshotUnix = s.lastSnapUnix.Load()
	st.Rollups = s.rollupStats()
	return st
}

// WALStats returns the live WAL segment count and total bytes (0, 0 for
// in-memory stores).
func (s *Store) WALStats() (segments int, bytes int64) {
	if s.wal == nil {
		return 0, 0
	}
	return s.wal.SegmentStats()
}

// LastSnapshotUnix returns the wall-clock second the latest snapshot
// completed in this process, or 0 if none has.
func (s *Store) LastSnapshotUnix() int64 { return s.lastSnapUnix.Load() }

// Within returns meter IDs inside a geographic box.
func (s *Store) Within(box geo.BBox) []int64 { return s.catalog.Within(box) }

// Near returns up to k nearest meters to p.
func (s *Store) Near(p geo.Point, k int) []index.Neighbor { return s.catalog.Near(p, k) }

// MeterIDsSorted returns all meter IDs ascending; convenience for callers
// iterating deterministically.
func (s *Store) MeterIDsSorted() []int64 {
	ids := s.catalog.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
