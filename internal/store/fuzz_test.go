package store

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzGorillaRoundTrip drives the Gorilla encoder/decoder with adversarial
// sample streams and payload bytes. The input decodes as a stream of
// (delta int16, value-bits uint64) records:
//
//   - deltas may be zero or negative, exercising the duplicate and
//     out-of-order append paths (which must reject with ErrOutOfOrder and
//     leave the series unchanged);
//   - value bits are arbitrary, including NaN payloads, ±Inf, and
//     subnormals, which must round-trip bit-exactly (semantic float
//     comparison would hide NaN-payload corruption);
//   - every prefix-code boundary of the delta-of-delta coding is reachable
//     via consecutive deltas.
//
// After the accepted appends, the payload must decode to exactly the
// accepted samples; the raw fuzz bytes are also decoded directly (as if a
// chunk's payload were corrupt on disk), which must error or truncate but
// never panic, over-allocate unboundedly, or loop.
func FuzzGorillaRoundTrip(f *testing.F) {
	f.Add(seedStream([]int64{3600, 3600, 3600}, []float64{1.5, 1.5, 2.25}))
	// NaN (two payloads), +Inf, -Inf, negative zero, subnormal.
	f.Add(seedBits([]int64{1, 1, 1, 1, 1, 1},
		[]uint64{
			math.Float64bits(math.NaN()),
			0x7ff8000000000001, // NaN with a different payload
			math.Float64bits(math.Inf(1)),
			math.Float64bits(math.Inf(-1)),
			0x8000000000000000, // -0.0
			1,                  // smallest subnormal
		}))
	// Out-of-order and duplicate timestamps interleaved with valid ones.
	f.Add(seedStream([]int64{10, 0, -5, 10, 1}, []float64{1, 2, 3, 4, 5}))
	// Delta prefix-code boundaries: the dod of consecutive deltas walks
	// the 7/9/12-bit windows and the raw 64-bit fallback (dod 30000-1).
	f.Add(seedStream([]int64{1, 1, 65, 64, 257, 256, 2049, 2048, 30000}, []float64{0, 0, 0, 0, 0, 0, 0, 0, 0}))
	// Value XOR window shrink/grow transitions.
	f.Add(seedBits([]int64{60, 60, 60, 60},
		[]uint64{0xffffffffffffffff, 0xff00000000000000, 0x00000000000000ff, 0x0f0f0f0f0f0f0f0f}))
	// Regression: a lone first sample and the two-sample delta path.
	f.Add(seedStream([]int64{42}, []float64{math.Pi}))
	// Raw garbage for the decode-arbitrary-bytes leg.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		enc := NewEncoder()
		var want []Sample
		var last int64
		for off := 0; off+10 <= len(data); off += 10 {
			delta := int64(int16(binary.LittleEndian.Uint16(data[off:])))
			bits := binary.LittleEndian.Uint64(data[off+2:])
			ts := last + delta
			s := Sample{TS: ts, Value: math.Float64frombits(bits)}
			err := enc.Append(s)
			if enc.Len() > 0 && len(want) > 0 && ts <= last {
				if err != ErrOutOfOrder {
					t.Fatalf("append ts=%d after %d: err=%v, want ErrOutOfOrder", ts, last, err)
				}
				continue // series must be unchanged; keep the old last
			}
			if err != nil {
				t.Fatalf("append %+v: %v", s, err)
			}
			want = append(want, s)
			last = ts
		}
		if enc.Len() != len(want) {
			t.Fatalf("encoder holds %d samples, accepted %d", enc.Len(), len(want))
		}
		payload := enc.Bytes()
		got, err := Decode(payload, len(want))
		if err != nil {
			t.Fatalf("decode %d samples: %v", len(want), err)
		}
		for i := range want {
			if got[i].TS != want[i].TS {
				t.Fatalf("sample %d ts = %d, want %d", i, got[i].TS, want[i].TS)
			}
			if math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
				t.Fatalf("sample %d value bits = %#x, want %#x",
					i, math.Float64bits(got[i].Value), math.Float64bits(want[i].Value))
			}
		}

		// Batch-decode leg: the vectorized blockReader must reproduce the
		// scalar decode bit-for-bit over the same payload.
		{
			br := newBlockReader(payload, len(want))
			batch := NewBatch()
			i := 0
			for !br.done() {
				batch.Reset()
				if br.decodeInto(batch) == 0 {
					break
				}
				for k := range batch.TS {
					if i >= len(want) {
						t.Fatalf("batch decode overran: %d samples, want %d", i+1, len(want))
					}
					if batch.TS[k] != want[i].TS ||
						math.Float64bits(batch.Val[k]) != math.Float64bits(want[i].Value) {
						t.Fatalf("batch sample %d = (%d, %#x), want (%d, %#x)",
							i, batch.TS[k], math.Float64bits(batch.Val[k]),
							want[i].TS, math.Float64bits(want[i].Value))
					}
					i++
				}
			}
			if br.err != nil {
				t.Fatalf("batch decode of a valid payload: %v", br.err)
			}
			if i != len(want) {
				t.Fatalf("batch decode yielded %d samples, want %d", i, len(want))
			}
		}

		// Count mismatches: the stored count is authoritative (chunk
		// metadata is CRC-protected), and the final byte's <8 padding bits
		// can legally decode as a few phantom 2-bit samples — but a count
		// inflated beyond what padding can hold must run dry with an
		// error, and a deflated count must truncate cleanly.
		if len(want) > 0 {
			if _, err := Decode(payload, len(want)+8); err == nil {
				t.Fatal("decode with count inflated past the padding succeeded")
			}
			if short, err := Decode(payload, len(want)-1); err == nil && len(short) != len(want)-1 {
				t.Fatalf("decode with deflated count returned %d samples", len(short))
			}
		}

		// Arbitrary bytes as a payload (corrupt chunk on disk): any error
		// is fine, panics and runaway allocation are not — on both the
		// scalar and the batch decoder.
		for _, n := range []int{0, 1, len(data), len(data) * 8, 1 << 30} {
			if out, err := Decode(data, n); err == nil && len(out) != n {
				t.Fatalf("raw decode n=%d returned %d samples without error", n, len(out))
			}
			br := newBlockReader(data, n)
			batch := NewBatch()
			total := 0
			for !br.done() {
				batch.Reset()
				got := br.decodeInto(batch)
				total += got
				if got == 0 && !br.done() {
					t.Fatalf("raw batch decode n=%d stalled at %d samples", n, total)
				}
			}
			if br.err == nil && total != n {
				t.Fatalf("raw batch decode n=%d yielded %d samples without error", n, total)
			}
		}
	})
}

// FuzzWALSegment throws arbitrary bytes at the WAL recovery path as if
// they were the tail segment a crash left behind. Invariants:
//
//   - scanSegment never panics, and a successful scan's valid-prefix end
//     is in bounds and idempotent (rescanning the prefix finds the same
//     boundary cleanly — truncation converges in one step);
//   - OpenWAL either rejects the file or repairs it, and after a repair an
//     appended record must survive close + reopen + replay with every
//     previously valid record still present — post-crash appends can never
//     land behind garbage, whatever the garbage is.
func FuzzWALSegment(f *testing.F) {
	valid := walMagic[:]
	valid = appendFrame(valid, recMeter, meterPayload(Meter{ID: 3, Zone: ZoneResidential}))
	valid = appendFrame(valid, recSample, samplePayload(nil, 3, Sample{TS: 60, Value: 1.5}))
	valid = appendFrame(valid, recSample, samplePayload(nil, 3, Sample{TS: 120, Value: 2.5}))
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-5]...)) // torn tail
	interior := append([]byte(nil), valid...)
	interior[walHeaderLen+7] ^= 0xff // corrupt the first record, valid ones follow
	f.Add(interior)
	f.Add([]byte{})
	f.Add(walMagic[:2])
	f.Add([]byte("not a wal at all"))
	f.Add(append(append([]byte(nil), valid...), 0xAA, 0xAA, 0xAA)) // garbage suffix

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		end, err := scanSegment(path, data, true, nil, nil)
		if err == nil {
			if end < 0 || end > int64(len(data)) {
				t.Fatalf("scan end %d out of bounds [0, %d]", end, len(data))
			}
			if end >= walHeaderLen {
				end2, err2 := scanSegment(path, data[:end], true, nil, nil)
				if err2 != nil || end2 != end {
					t.Fatalf("rescan of valid prefix: end=%d err=%v, want %d, nil", end2, err2, end)
				}
			}
		}

		w, err := OpenWAL(dir, walOptions{CommitInterval: time.Millisecond})
		if err != nil {
			return // rejected (interior corruption, foreign file): fine
		}
		pre := 0
		if err := w.Replay(
			func(Meter) error { pre++; return nil },
			func(int64, Sample) error { pre++; return nil }); err != nil {
			t.Fatalf("replay of repaired segment: %v", err)
		}
		c, err := w.AppendSample(7, Sample{TS: 1 << 40, Value: 3.5}, true)
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("commit after repair: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}

		w2, err := OpenWAL(dir, walOptions{})
		if err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
		defer w2.Close()
		post, found := 0, false
		if err := w2.Replay(
			func(Meter) error { post++; return nil },
			func(id int64, s Sample) error {
				post++
				if id == 7 && s.TS == 1<<40 {
					found = true
				}
				return nil
			}); err != nil {
			t.Fatalf("replay after append: %v", err)
		}
		if !found {
			t.Fatal("record appended after tail repair was lost on replay")
		}
		if post != pre+1 {
			t.Fatalf("replay saw %d records, want %d: repair boundary moved after append", post, pre+1)
		}
	})
}

// seedStream packs (delta, value) records into the fuzz wire format
// (timestamps accumulate from 0; deltas are clipped to int16 like the
// fuzz decoder's view of arbitrary bytes).
func seedStream(deltas []int64, values []float64) []byte {
	bits := make([]uint64, len(values))
	for i, v := range values {
		bits[i] = math.Float64bits(v)
	}
	return seedBits(deltas, bits)
}

func seedBits(deltas []int64, values []uint64) []byte {
	var out []byte
	for i := range deltas {
		var rec [10]byte
		binary.LittleEndian.PutUint16(rec[0:], uint16(int16(deltas[i])))
		binary.LittleEndian.PutUint64(rec[2:], values[i])
		out = append(out, rec[:]...)
	}
	return out
}
