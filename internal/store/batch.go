package store

import (
	"encoding/binary"
	"math"
	"sync"
)

// BatchSize is the capacity of a decode batch: large enough to hold one
// sealed chunk (chunkTargetSamples) in a single batch, small enough that
// a batch's two arrays (~16 KiB) stay cache-resident while the
// aggregation kernels sweep them.
const BatchSize = 1024

// Batch is a columnar run of decoded samples: parallel timestamp/value
// arrays the vectorized execution paths aggregate with tight loops
// instead of per-sample iterator calls. TS is ascending. A Batch is
// reusable across NextBatch calls; the backing arrays are allocated once.
type Batch struct {
	TS  []int64
	Val []float64

	tsBuf  []int64
	valBuf []float64
}

// NewBatch returns an empty batch with BatchSize capacity.
func NewBatch() *Batch {
	b := &Batch{
		tsBuf:  make([]int64, 0, BatchSize),
		valBuf: make([]float64, 0, BatchSize),
	}
	b.TS, b.Val = b.tsBuf, b.valBuf
	return b
}

var batchPool = sync.Pool{New: func() any { return NewBatch() }}

// GetBatch returns a reusable batch from the package pool; callers hand it
// back with PutBatch when the scan finishes. Query paths that decode one
// series per call (engine aggregations, VQL chunk workers) use the pool so
// fan-out does not churn two 8 KiB arrays per meter.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// PutBatch returns a batch to the pool.
func PutBatch(b *Batch) {
	b.Reset()
	batchPool.Put(b)
}

// Len returns the number of samples currently in the batch.
func (b *Batch) Len() int { return len(b.TS) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.TS, b.Val = b.tsBuf[:0], b.valBuf[:0]
}

// clamp restricts the batch to from <= TS < to, relying on TS being
// ascending. It returns true when a sample at or past `to` was seen, which
// ends the whole scan (blocks are time-ordered and disjoint).
func (b *Batch) clamp(from, to int64) (past bool) {
	ts := b.TS
	lo := 0
	for lo < len(ts) && ts[lo] < from {
		lo++
	}
	hi := len(ts)
	for hi > lo && ts[hi-1] >= to {
		hi--
		past = true
	}
	b.TS, b.Val = b.TS[lo:hi], b.Val[lo:hi]
	return past
}

// peek64 returns up to 64 bits starting at bit position pos, MSB-aligned.
// Only the top 64-(pos&7) >= 57 bits are meaningful (the low bits may be
// zero padding); callers needing more use read64. Positions at or past the
// end of data yield zeros — callers bounds-check against the bit length
// before committing a decode.
func peek64(data []byte, pos uint64) uint64 {
	i := pos >> 3
	if i+8 <= uint64(len(data)) {
		return binary.BigEndian.Uint64(data[i:]) << (pos & 7)
	}
	if i >= uint64(len(data)) {
		return 0
	}
	var buf [8]byte
	copy(buf[:], data[i:])
	return binary.BigEndian.Uint64(buf[:]) << (pos & 7)
}

// read64 returns exactly 64 bits starting at bit position pos (zero-padded
// past the end of data).
func read64(data []byte, pos uint64) uint64 {
	hi := peek64(data, pos) >> 32
	lo := peek64(data, pos+32) >> 32
	return hi<<32 | lo
}

// blockReader decodes one Gorilla payload batch-at-a-time. It is the
// vectorized counterpart of Iterator: same state machine, same error
// behavior on corrupt input (a partial batch followed by ErrCorrupt), but
// it dispatches on whole prefix-code words loaded 64 bits at a time
// instead of per-bit reads, and emits into columnar arrays.
type blockReader struct {
	data    []byte
	pos     uint64 // bit position
	end     uint64 // total bits in data
	n, i    int
	t, d    int64
	v       uint64
	leading uint8
	sigbits uint8
	err     error
}

func newBlockReader(payload []byte, n int) *blockReader {
	return &blockReader{data: payload, end: uint64(len(payload)) * 8, n: n, leading: 0xff}
}

// reset points the reader at a new payload, reusing the receiver.
func (d *blockReader) reset(payload []byte, n int) {
	*d = blockReader{data: payload, end: uint64(len(payload)) * 8, n: n, leading: 0xff}
}

// done reports whether the block is fully decoded or errored.
func (d *blockReader) done() bool { return d.err != nil || d.i >= d.n }

// decodeInto appends samples to b until the block or the batch capacity is
// exhausted, returning the number appended. On corrupt input it appends
// the valid prefix and sets err.
func (d *blockReader) decodeInto(b *Batch) int {
	off := len(b.TS)
	ts, vals := b.TS[:cap(b.TS)], b.Val[:cap(b.Val)]
	j := off
	data, pos, end := d.data, d.pos, d.end
	t, delta, v := d.t, d.d, d.v
	leading, sigbits := uint64(d.leading), uint64(d.sigbits)
	shift := 64 - leading - sigbits // re-align shift for window reuse
	i, n := d.i, d.n
	var derr error

	// The first sample is a raw 128-bit header; peel it so the main loop
	// handles only prefix-coded samples with no per-sample i==0/i==1
	// branches (delta starts at zero, so `delta += dod` already covers the
	// second sample's delta initialization).
	if i == 0 && n > 0 && j < len(ts) {
		if pos+128 > end {
			d.err = ErrCorrupt
			return 0
		}
		t = int64(read64(data, pos))
		v = read64(data, pos+64)
		pos += 128
		ts[j] = t
		vals[j] = math.Float64frombits(v)
		j++
		i++
	}

	// limit bounds the loop by both batch room and block length, replacing
	// two loop-condition checks with one; i is recovered from j afterwards.
	limit := j + (n - i)
	if limit > len(ts) {
		limit = len(ts)
	}
	j0 := j
	// Reslice both columns to exactly limit so the per-sample stores below
	// compile without bounds checks.
	tsl, vl := ts[:limit], vals[:limit]

	// w is a sliding window over the stream: its top `avail` bits are the
	// unconsumed bits starting at pos (low bits are zero). pos+avail stays
	// byte-aligned throughout, which is what lets the value fallbacks
	// extend the window with a single aligned load. One refill at the top
	// of each iteration covers the timestamp fast cases (at most 16 bits)
	// plus the value control bits and window header (13 bits).
	w := peek64(data, pos)
	avail := 64 - (pos & 7)

	for j < len(tsl) {
		if avail < 29 {
			w, avail = peek64(data, pos), 64-(pos&7)
		}
		// Timestamp: delta-of-delta prefix code, dispatched on the top
		// bits of the window.
		var dod int64
		switch {
		case w>>63 == 0: // "0"
			if pos+1 > end {
				derr = ErrCorrupt
			}
			w, avail, pos = w<<1, avail-1, pos+1
		case w>>62 == 0b10: // "10" + 7 bits
			if pos+9 > end {
				derr = ErrCorrupt
			}
			dod = int64((w<<2)>>57) - 63
			w, avail, pos = w<<9, avail-9, pos+9
		case w>>61 == 0b110: // "110" + 9 bits
			if pos+12 > end {
				derr = ErrCorrupt
			}
			dod = int64((w<<3)>>55) - 255
			w, avail, pos = w<<12, avail-12, pos+12
		case w>>60 == 0b1110: // "1110" + 12 bits
			if pos+16 > end {
				derr = ErrCorrupt
			}
			dod = int64((w<<4)>>52) - 2047
			w, avail, pos = w<<16, avail-16, pos+16
		default: // "1111" + raw 64
			if pos+68 > end {
				derr = ErrCorrupt
				break
			}
			dod = int64(read64(data, pos+4))
			pos += 68
			w, avail = peek64(data, pos), 64-(pos&7)
		}
		delta += dod
		t += delta

		// Value: XOR against the previous value inside the current
		// leading/significant-bits window. The top-of-loop refill
		// guarantees the control bits and window header are in the
		// word; the XOR payload extracts from the same word when it
		// fits and falls back to one more peek when the window is
		// wider than what's left.
		switch {
		case w>>63 == 0: // identical value
			if pos+1 > end {
				derr = ErrCorrupt
				break
			}
			w, avail, pos = w<<1, avail-1, pos+1
		case w>>62 == 0b10: // window reuse
			if leading == 0xff {
				derr = ErrCorrupt // reuse before any window was defined
				break
			}
			need := 2 + sigbits
			if pos+need > end {
				derr = ErrCorrupt
				break
			}
			var xbits uint64
			if need <= avail {
				xbits = (w << 2) >> (64 - sigbits)
				w, avail, pos = w<<need, avail-need, pos+need
			} else {
				// pos+avail is byte-aligned (the window is always loaded
				// at a byte boundary), so one aligned load supplies the
				// payload tail and becomes the next window.
				w2 := peek64(data, pos+avail)
				rest := need - avail
				xbits = (w<<2)>>(64-sigbits) | w2>>(64-rest)
				w, avail, pos = w2<<rest, 64-rest, pos+need
			}
			v ^= xbits << shift
		default: // "11": new window header, then the XOR bits
			l := (w << 2) >> 59
			s := (w<<7)>>58 + 1
			if l+s > 64 {
				// The encoder always satisfies lead+sig+trail == 64; a
				// wider window is malformed input (see Iterator).
				derr = ErrCorrupt
				break
			}
			need := 13 + s
			if pos+need > end {
				derr = ErrCorrupt
				break
			}
			var xbits uint64
			if need <= avail {
				xbits = (w << 13) >> (64 - s)
				w, avail, pos = w<<need, avail-need, pos+need
			} else {
				// Same aligned-tail composition as the reuse arm. rest is
				// at most 64 here (avail >= 13 after the timestamp code),
				// and shifts by 64 are well-defined zero in Go.
				w2 := peek64(data, pos+avail)
				rest := need - avail
				xbits = (w<<13)>>(64-s) | w2>>(64-rest)
				w, avail, pos = w2<<rest, 64-rest, pos+need
			}
			leading, sigbits, shift = l, s, 64-l-s
			v ^= xbits << shift
		}
		if derr != nil {
			break
		}
		tsl[j] = t
		vl[j] = math.Float64frombits(v)
		j++
	}
	i += j - j0

	b.TS, b.Val = ts[:j], vals[:j]
	d.pos, d.t, d.d, d.v = pos, t, delta, v
	d.leading, d.sigbits = uint8(leading), uint8(sigbits)
	d.i, d.err = i, derr
	return j - off
}

// NextBatch fills b with the next run of in-window samples, decoding one
// compressed block per call through the word-based batch decoder. It
// returns false when the window is exhausted or on a decode error (Err).
// A SeriesIter must be consumed through either Next or NextBatch, not a
// mix: the two paths keep independent positions.
func (it *SeriesIter) NextBatch(b *Batch) bool {
	for {
		b.Reset()
		if it.done || it.err != nil {
			return false
		}
		if !it.inBlock {
			if len(it.segs) == 0 {
				it.done = true
				return false
			}
			seg := it.segs[0]
			it.segs = it.segs[1:]
			it.curB.reset(seg.payload, seg.count)
			it.inBlock = true
		}
		it.curB.decodeInto(b)
		if err := it.curB.err; err != nil {
			it.err = err
			// Surface the valid prefix (clamped) before reporting the
			// error, matching Next's sample-at-a-time behavior.
			it.inBlock = false
			if b.clamp(it.from, it.to) {
				it.done = true
			}
			return b.Len() > 0
		}
		if it.curB.done() {
			it.inBlock = false
		}
		if b.clamp(it.from, it.to) {
			// A sample at or past `to`: later blocks are entirely outside.
			it.done = true
		}
		if b.Len() > 0 {
			return true
		}
		// Every decoded sample fell outside the window (an edge block
		// overlapping only by metadata); keep going — the loop head
		// terminates once done is set or the segments run dry.
	}
}

// SeriesStats is the per-series statistics surface the cost-based planner
// reads: everything is tracked on append (chunk metadata and counters), so
// a stats snapshot never decodes data.
type SeriesStats struct {
	MeterID         int64  `json:"meter_id"`
	Samples         int    `json:"samples"`
	Blocks          int    `json:"blocks"` // sealed chunks + head block
	MinTS           int64  `json:"min_ts"`
	MaxTS           int64  `json:"max_ts"`
	CompressedBytes int    `json:"compressed_bytes"`
	Version         uint64 `json:"version"`
}

// Stats returns the series' statistics. Callers must hold the owning
// shard's lock, like every other Series accessor.
func (s *Series) Stats() SeriesStats {
	st := SeriesStats{
		MeterID:         s.MeterID,
		Samples:         s.total,
		Blocks:          len(s.sealed),
		CompressedBytes: s.CompressedBytes(),
		Version:         s.ver,
	}
	if s.head.Len() > 0 {
		st.Blocks++
	}
	if s.total > 0 {
		st.MinTS, st.MaxTS, _ = s.Bounds()
	}
	return st
}
