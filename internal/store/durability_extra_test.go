package store

// Edge-path tests rounding out the durability matrix: closed/sticky WAL
// error propagation, replay callback failures, CRC-valid-but-malformed
// payloads, snapshot truncation, and the small read-side accessors.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWALClosedErrors(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.AppendSample(1, Sample{TS: 1, Value: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSample(1, Sample{TS: 2, Value: 1}, true); !errors.Is(err, ErrWALClosed) {
		t.Errorf("append after close = %v, want ErrWALClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Errorf("sync after close = %v, want ErrWALClosed", err)
	}
	if _, err := w.CutSegment(); !errors.Is(err, ErrWALClosed) {
		t.Errorf("cut after close = %v, want ErrWALClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWALClosed) {
		t.Errorf("second close = %v, want ErrWALClosed", err)
	}
}

// TestWALStickyCommitError: after a commit fails, every later append,
// sync, and cut must fail fast with the original error — the log must
// never silently stop persisting while memory runs ahead.
func TestWALStickyCommitError(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), walOptions{CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendSample(1, Sample{TS: 1, Value: 1}, false); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	w.mu.Lock()
	w.err = boom
	w.mu.Unlock()
	w.commit() // the pending batch must be failed, not silently dropped

	if _, err := w.AppendSample(1, Sample{TS: 2, Value: 1}, true); !errors.Is(err, boom) {
		t.Errorf("append after sticky failure = %v, want %v", err, boom)
	}
	if err := w.Sync(); !errors.Is(err, boom) {
		t.Errorf("sync after sticky failure = %v, want %v", err, boom)
	}
	if _, err := w.CutSegment(); !errors.Is(err, boom) {
		t.Errorf("cut after sticky failure = %v, want %v", err, boom)
	}
}

func TestWALReplayCallbackErrors(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneMixed}, false); err != nil {
		t.Fatal(err)
	}
	c, err := w.AppendSample(1, Sample{TS: 1, Value: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	boom := errors.New("callback refused")
	if err := w.Replay(func(Meter) error { return boom }, nil); !errors.Is(err, boom) {
		t.Errorf("meter callback error = %v, want %v", err, boom)
	}
	if err := w.Replay(nil, func(int64, Sample) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("sample callback error = %v, want %v", err, boom)
	}
}

// TestWALMeterZoneLengthMismatch: a frame whose CRC is valid but whose
// meter payload lies about its zone length cannot come from a torn write —
// it is corruption even in the tail, and must fail the open.
func TestWALMeterZoneLengthMismatch(t *testing.T) {
	dir := t.TempDir()
	payload := meterPayload(Meter{ID: 1, Zone: "abc"})
	payload[24] = 0xFF // zlen now inconsistent with the payload length
	seg := append([]byte(nil), walMagic[:]...)
	seg = appendFrame(seg, recMeter, payload)
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, walOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zone-length lie accepted: %v", err)
	}
}

// TestSnapshotTruncationMatrix: a snapshot file cut off at any point —
// header, meter table, sample runs, trailing CRC — must fail the open
// rather than load a partial dataset.
func TestSnapshotTruncationMatrix(t *testing.T) {
	tpl := buildTemplate(t, 5)
	st, err := Open(Options{Dir: tpl})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(tpl, "snapshot.vap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 4, 7, 8, 20, len(snap) / 2, len(snap) - 5, len(snap) - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := cloneDir(t, tpl)
			if err := os.WriteFile(filepath.Join(dir, "snapshot.vap"), snap[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(Options{Dir: dir}); err == nil {
				t.Error("truncated snapshot loaded without error")
			}
		})
	}
}

func TestStoreReadAccessors(t *testing.T) {
	st, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumShards() != 4 {
		t.Errorf("NumShards = %d", st.NumShards())
	}
	for id := int64(1); id <= 3; id++ {
		if err := st.PutMeter(Meter{ID: id, Location: testPoint(float64(id)*0.01, 0), Zone: ZoneIndustrial}); err != nil {
			t.Fatal(err)
		}
		if err := st.Append(id, Sample{TS: 60, Value: float64(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if f, l, err := st.Bounds(1); err != nil || f != 60 || l != 60 {
		t.Errorf("Bounds = %d, %d, %v", f, l, err)
	}
	if _, _, err := st.Bounds(99); !errors.Is(err, ErrUnknownMeter) {
		t.Errorf("Bounds(unknown) = %v", err)
	}
	before := st.GlobalFingerprint()
	if err := st.Append(2, Sample{TS: 120, Value: 2}); err != nil {
		t.Fatal(err)
	}
	if st.GlobalFingerprint() == before {
		t.Error("GlobalFingerprint did not change on append")
	}
	if ids := st.MeterIDsSorted(); len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("MeterIDsSorted = %v", ids)
	}
	cat := st.Catalog()
	if got := len(cat.All()); got != 3 {
		t.Errorf("Catalog.All = %d meters", got)
	}
	box := cat.Bounds()
	if ids := st.Within(box.Buffer(0.001)); len(ids) != 3 {
		t.Errorf("Within(bounds) = %v", ids)
	}
	if n := st.Near(testPoint(0.01, 0), 2); len(n) != 2 {
		t.Errorf("Near = %v", n)
	}
	if n := cat.WithinRadius(testPoint(0.01, 0), 10); len(n) == 0 {
		t.Error("WithinRadius found nothing at the meter's own location")
	}

	// Per-meter versions through the series and its iterators.
	v, err := st.MeterVersion(2)
	if err != nil || v == 0 {
		t.Errorf("MeterVersion = %d, %v", v, err)
	}
	it, err := st.Iter(2, minInt64, maxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if it.Version() != v {
		t.Errorf("iterator version %d != meter version %d", it.Version(), v)
	}
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPutMeterValidationBeforeWAL: an invalid meter must be rejected
// before anything reaches the log (replay would refuse it and fail the
// reopen otherwise).
func TestPutMeterValidationBeforeWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(999, 0)}); err == nil {
		t.Fatal("invalid location accepted")
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if meters, samples := replayDirCounts(t, dir); meters != 0 || samples != 0 {
		t.Errorf("invalid meter reached the WAL: %d meters / %d samples on disk", meters, samples)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
