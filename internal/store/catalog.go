package store

import (
	"fmt"
	"sort"
	"sync"

	"vap/internal/geo"
	"vap/internal/index"
)

// ZoneType classifies the land use at a meter's location, mirroring the
// commercial/residential distinction central to the paper's Figure 3 flow
// map discussion.
type ZoneType string

// Zone types recognised by the catalog.
const (
	ZoneResidential ZoneType = "residential"
	ZoneCommercial  ZoneType = "commercial"
	ZoneIndustrial  ZoneType = "industrial"
	ZoneMixed       ZoneType = "mixed"
)

// Meter is customer/meter metadata held in the catalog.
type Meter struct {
	ID       int64             `json:"id"`
	Location geo.Point         `json:"location"`
	Zone     ZoneType          `json:"zone"`
	Labels   map[string]string `json:"labels,omitempty"`
}

// Catalog is the metadata registry with a spatial index over meter
// locations. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	meters map[int64]Meter
	tree   *index.RTree
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{meters: make(map[int64]Meter), tree: index.NewRTree()}
}

// Len returns the number of registered meters.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.meters)
}

// Put registers or replaces a meter. Replacing relocates it in the index.
func (c *Catalog) Put(m Meter) error {
	if !m.Location.Valid() {
		return fmt.Errorf("store: meter %d has invalid location %v", m.ID, m.Location)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.meters[m.ID]; ok {
		c.tree.Delete(geo.PointBox(old.Location), m.ID)
	}
	c.meters[m.ID] = m
	c.tree.InsertPoint(m.Location, m.ID)
	return nil
}

// Get returns the meter with the given ID.
func (c *Catalog) Get(id int64) (Meter, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.meters[id]
	return m, ok
}

// Delete removes a meter; it returns false if absent.
func (c *Catalog) Delete(id int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.meters[id]
	if !ok {
		return false
	}
	delete(c.meters, id)
	c.tree.Delete(geo.PointBox(m.Location), id)
	return true
}

// All returns every meter sorted by ID.
func (c *Catalog) All() []Meter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Meter, 0, len(c.meters))
	for _, m := range c.meters {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns every meter ID sorted ascending.
func (c *Catalog) IDs() []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int64, 0, len(c.meters))
	for id := range c.meters {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Within returns the IDs of meters inside box, sorted ascending.
func (c *Catalog) Within(box geo.BBox) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.SearchSorted(box)
}

// Near returns up to k meters nearest p with their distances in meters.
func (c *Catalog) Near(p geo.Point, k int) []index.Neighbor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.Nearest(p, k)
}

// WithinRadius returns meters within radiusM meters of p, nearest first.
func (c *Catalog) WithinRadius(p geo.Point, radiusM float64) []index.Neighbor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.WithinRadius(p, radiusM)
}

// Bounds returns the bounding box of all meters (empty box when empty).
func (c *Catalog) Bounds() geo.BBox {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.Bounds()
}

// ByZone returns the IDs of all meters in the given zone, sorted ascending.
func (c *Catalog) ByZone(z ZoneType) []int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int64
	for id, m := range c.meters {
		if m.Zone == z {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
