package store

// Property-based recovery parity: random stores snapshotted as v2 and v3
// with WAL records layered on top must recover — serially and with a
// worker pool — into state bit-identical to a live-built store:
// GlobalFingerprint, per-meter versions, rollup tiers, and every scanned
// row.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

const parityShards = 4 // GlobalFingerprint folds per-shard versions, so all compared stores share this

type parityMeter struct {
	id   int64
	pre  []Sample // appended before the snapshot
	post []Sample // appended after it, recovered from the WAL
}

// genParityMeters draws a random meter population: sample counts from 0 to
// ~2000 (zero, head-only, and multi-chunk series all occur), irregular
// gaps, and occasional NaN/±Inf values to exercise bitwise compares.
func genParityMeters(rng *rand.Rand) []parityMeter {
	out := make([]parityMeter, 8+rng.Intn(8))
	for i := range out {
		ts := int64(rng.Intn(1000))
		mk := func(n int) []Sample {
			smps := make([]Sample, n)
			for j := range smps {
				ts += int64(1 + rng.Intn(120))
				v := rng.NormFloat64() * 100
				switch rng.Intn(50) {
				case 0:
					v = math.NaN()
				case 1:
					v = math.Inf(1)
				case 2:
					v = math.Inf(-1)
				}
				smps[j] = Sample{TS: ts, Value: v}
			}
			return smps
		}
		out[i] = parityMeter{id: int64(i + 1), pre: mk(rng.Intn(2001)), post: mk(rng.Intn(200))}
	}
	return out
}

func parityApply(t *testing.T, st *Store, meters []parityMeter, phase int) {
	t.Helper()
	for _, m := range meters {
		smps := m.post
		if phase == 0 {
			if err := st.PutMeter(testMeter(m.id)); err != nil {
				t.Fatal(err)
			}
			smps = m.pre
		}
		if len(smps) == 0 {
			continue
		}
		if _, err := st.AppendBatch(m.id, smps); err != nil {
			t.Fatal(err)
		}
	}
}

// buildParityDir materializes the population into a durable store: pre
// samples, snapshot in the requested format, then post samples left in
// the WAL for recovery to replay.
func buildParityDir(t *testing.T, meters []parityMeter, format int, retain time.Duration) string {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: parityShards, SnapshotFormat: format, RetainRaw: retain})
	if err != nil {
		t.Fatal(err)
	}
	parityApply(t, st, meters, 0)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	parityApply(t, st, meters, 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func captureTiersOf(t *testing.T, st *Store, id int64) []snapTier {
	t.Helper()
	sh := st.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[id]
	if !ok {
		t.Fatalf("meter %d missing", id)
	}
	return ser.captureTiers()
}

// parityCompare asserts store b is bit-identical to reference a.
func parityCompare(t *testing.T, label string, a, b *Store) {
	t.Helper()
	if af, bf := a.GlobalFingerprint(), b.GlobalFingerprint(); af != bf {
		t.Errorf("%s: GlobalFingerprint %#x, want %#x", label, bf, af)
	}
	aIDs, bIDs := a.MeterIDsSorted(), b.MeterIDsSorted()
	if len(aIDs) != len(bIDs) {
		t.Fatalf("%s: %d meters, want %d", label, len(bIDs), len(aIDs))
	}
	for _, id := range aIDs {
		av, err := a.MeterVersion(id)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.MeterVersion(id)
		if err != nil {
			t.Fatalf("%s meter %d: %v", label, id, err)
		}
		if av != bv {
			t.Errorf("%s meter %d: version %d, want %d", label, id, bv, av)
		}
		as, err := a.Range(id, minInt64, maxInt64)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := b.Range(id, minInt64, maxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != len(bs) {
			t.Errorf("%s meter %d: %d rows, want %d", label, id, len(bs), len(as))
			continue
		}
		for j := range as {
			if as[j].TS != bs[j].TS || math.Float64bits(as[j].Value) != math.Float64bits(bs[j].Value) {
				t.Errorf("%s meter %d row %d: %+v, want %+v", label, id, j, bs[j], as[j])
				break
			}
		}
		at := captureTiersOf(t, a, id)
		bt := captureTiersOf(t, b, id)
		if len(at) != len(bt) {
			t.Errorf("%s meter %d: %d tiers, want %d", label, id, len(bt), len(at))
			continue
		}
		for i := range at {
			g, w := &bt[i], &at[i]
			if g.res != w.res || len(g.interior) != len(w.interior) || g.hasTail != w.hasTail {
				t.Errorf("%s meter %d tier %d: shape (res=%d interior=%d tail=%t), want (res=%d interior=%d tail=%t)",
					label, id, i, g.res, len(g.interior), g.hasTail, w.res, len(w.interior), w.hasTail)
				continue
			}
			for j := range g.interior {
				if !rollupBucketEqual(&g.interior[j], &w.interior[j]) {
					t.Errorf("%s meter %d %ds tier bucket %d: %+v, want %+v",
						label, id, g.res, j, g.interior[j], w.interior[j])
					break
				}
			}
			if g.hasTail && !rollupBucketEqual(&g.tail, &w.tail) {
				t.Errorf("%s meter %d %ds tier tail: %+v, want %+v", label, id, g.res, g.tail, w.tail)
			}
		}
	}
}

func TestRecoveryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			meters := genParityMeters(rng)
			ref, err := Open(Options{Shards: parityShards}) // live-built in-memory reference
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			parityApply(t, ref, meters, 0)
			parityApply(t, ref, meters, 1)

			dirV2 := buildParityDir(t, meters, 2, 0)
			dirV3 := buildParityDir(t, meters, 3, 0)
			for _, tc := range []struct {
				name    string
				dir     string
				workers int
			}{
				{"v2/serial", dirV2, 1},
				{"v2/parallel", dirV2, 8},
				{"v3/serial", dirV3, 1},
				{"v3/parallel", dirV3, 8},
			} {
				st, err := Open(Options{Dir: tc.dir, Shards: parityShards, RecoverWorkers: tc.workers})
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				parityCompare(t, tc.name, ref, st)
				st.Close()
			}
		})
	}
}

// TestRecoveryParityRetainRaw: with a retention horizon both formats must
// age out exactly the same chunk-aligned prefix, so a v2-recovered and a
// v3-parallel-recovered store still match each other bit for bit.
func TestRecoveryParityRetainRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	meters := genParityMeters(rng)
	const retain = 8 * time.Hour // data-time horizon behind the newest sample
	a, err := Open(Options{Dir: buildParityDir(t, meters, 2, retain), Shards: parityShards, RecoverWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(Options{Dir: buildParityDir(t, meters, 3, retain), Shards: parityShards, RecoverWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	parityCompare(t, "retention v2-vs-v3", a, b)
}
