package store

import (
	"errors"
	"math"
	"math/bits"
)

// Sample is one reading: a Unix timestamp in seconds and a value in kWh.
type Sample struct {
	TS    int64   `json:"ts"`
	Value float64 `json:"v"`
}

// ErrOutOfOrder is returned when appending a sample at or before the chunk's
// last timestamp.
var ErrOutOfOrder = errors.New("store: sample timestamp not strictly increasing")

// ErrCorrupt is returned when decoding malformed chunk bytes.
var ErrCorrupt = errors.New("store: corrupt chunk")

// Encoder compresses an in-order stream of samples using the Gorilla scheme:
// the first timestamp is stored raw, the second as a delta, and subsequent
// ones as delta-of-delta with variable-length prefix codes; values are
// XORed against the previous value with leading/trailing-zero windows.
type Encoder struct {
	w       *bitWriter
	n       int
	t0      int64
	prevT   int64
	prevD   int64
	prevV   uint64
	leading uint8
	sigbits uint8 // meaningful bit count of the previous XOR window
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{w: newBitWriter(), leading: 0xff}
}

// Len returns the number of encoded samples.
func (e *Encoder) Len() int { return e.n }

// LastTS returns the last appended timestamp, or 0 when empty.
func (e *Encoder) LastTS() int64 { return e.prevT }

// SizeBytes returns the current compressed payload size.
func (e *Encoder) SizeBytes() int { return len(e.w.bytes()) }

// Append adds one sample; timestamps must be strictly increasing.
func (e *Encoder) Append(s Sample) error {
	if e.n > 0 && s.TS <= e.prevT {
		return ErrOutOfOrder
	}
	switch e.n {
	case 0:
		e.t0 = s.TS
		e.w.writeBits(uint64(s.TS), 64)
		e.writeFirstValue(s.Value)
	case 1:
		delta := s.TS - e.prevT
		e.writeVarDelta(delta)
		e.prevD = delta
		e.writeValue(s.Value)
	default:
		dod := (s.TS - e.prevT) - e.prevD
		e.writeVarDelta(dod)
		e.prevD = s.TS - e.prevT
		e.writeValue(s.Value)
	}
	e.prevT = s.TS
	e.n++
	return nil
}

// writeVarDelta emits Gorilla's prefix-coded signed integer:
//
//	0                     -> 0
//	10 + 7 bits           -> [-63, 64]
//	110 + 9 bits          -> [-255, 256]
//	1110 + 12 bits        -> [-2047, 2048]
//	1111 + 64 bits        -> anything else
func (e *Encoder) writeVarDelta(d int64) {
	switch {
	case d == 0:
		e.w.writeBit(false)
	case d >= -63 && d <= 64:
		e.w.writeBits(0b10, 2)
		e.w.writeBits(uint64(d+63)&0x7f, 7)
	case d >= -255 && d <= 256:
		e.w.writeBits(0b110, 3)
		e.w.writeBits(uint64(d+255)&0x1ff, 9)
	case d >= -2047 && d <= 2048:
		e.w.writeBits(0b1110, 4)
		e.w.writeBits(uint64(d+2047)&0xfff, 12)
	default:
		e.w.writeBits(0b1111, 4)
		e.w.writeBits(uint64(d), 64)
	}
}

func (e *Encoder) writeFirstValue(v float64) {
	e.prevV = math.Float64bits(v)
	e.w.writeBits(e.prevV, 64)
}

func (e *Encoder) writeValue(v float64) {
	cur := math.Float64bits(v)
	xor := cur ^ e.prevV
	e.prevV = cur
	if xor == 0 {
		e.w.writeBit(false)
		return
	}
	e.w.writeBit(true)
	lead := uint8(bits.LeadingZeros64(xor))
	if lead > 31 {
		lead = 31
	}
	trail := uint8(bits.TrailingZeros64(xor))
	sig := 64 - lead - trail
	// Reuse the previous window if the new XOR fits inside it.
	if e.leading != 0xff && lead >= e.leading && trail >= 64-e.leading-e.sigbits {
		e.w.writeBit(false)
		e.w.writeBits(xor>>(64-e.leading-e.sigbits), uint(e.sigbits))
		return
	}
	e.leading, e.sigbits = lead, sig
	e.w.writeBit(true)
	e.w.writeBits(uint64(lead), 5)
	// sig is in [1,64]; store sig-1 in 6 bits.
	e.w.writeBits(uint64(sig-1), 6)
	e.w.writeBits(xor>>trail, uint(sig))
}

// Bytes returns the compressed payload. The encoder remains usable.
func (e *Encoder) Bytes() []byte {
	out := make([]byte, len(e.w.bytes()))
	copy(out, e.w.bytes())
	return out
}

// Decode decompresses a payload produced by Encoder containing n samples.
func Decode(data []byte, n int) ([]Sample, error) {
	if n < 0 {
		return nil, ErrCorrupt
	}
	// Pre-size from n, but cap the up-front allocation: n may come from
	// untrusted chunk metadata, and a corrupt giant count must fail with
	// ErrCorrupt after decoding runs dry, not OOM on make().
	capHint := n
	if max := len(data)*4 + 2; capHint > max { // >= 2 bits per sample after the header
		capHint = max
	}
	out := make([]Sample, 0, capHint)
	it := NewIterator(data, n)
	for it.Next() {
		out = append(out, it.Sample())
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	if len(out) != n {
		return nil, ErrCorrupt
	}
	return out, nil
}

// Iterator streams samples out of a compressed payload without materializing
// the whole slice.
type Iterator struct {
	r       *bitReader
	n, i    int
	t       int64
	d       int64
	v       uint64
	leading uint8
	sigbits uint8
	cur     Sample
	err     error
}

// NewIterator returns an iterator over a payload with n samples.
func NewIterator(data []byte, n int) *Iterator {
	return &Iterator{r: newBitReader(data), n: n, leading: 0xff}
}

// Next advances to the next sample, returning false at the end or on error.
func (it *Iterator) Next() bool {
	if it.err != nil || it.i >= it.n {
		return false
	}
	switch it.i {
	case 0:
		ts, err := it.r.readBits(64)
		if err != nil {
			it.err = ErrCorrupt
			return false
		}
		vb, err := it.r.readBits(64)
		if err != nil {
			it.err = ErrCorrupt
			return false
		}
		it.t = int64(ts)
		it.v = vb
	default:
		d, err := it.readVarDelta()
		if err != nil {
			it.err = ErrCorrupt
			return false
		}
		if it.i == 1 {
			it.d = d
		} else {
			it.d += d
		}
		it.t += it.d
		if err := it.readValue(); err != nil {
			it.err = ErrCorrupt
			return false
		}
	}
	it.cur = Sample{TS: it.t, Value: math.Float64frombits(it.v)}
	it.i++
	return true
}

// Sample returns the current sample after a successful Next.
func (it *Iterator) Sample() Sample { return it.cur }

// Err returns the first decoding error encountered.
func (it *Iterator) Err() error { return it.err }

func (it *Iterator) readVarDelta() (int64, error) {
	b, err := it.r.readBit()
	if err != nil {
		return 0, err
	}
	if !b {
		return 0, nil
	}
	// Count additional prefix ones (max 3 more).
	ones := 1
	for ones < 4 {
		b, err = it.r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			break
		}
		ones++
	}
	switch ones {
	case 1:
		v, err := it.r.readBits(7)
		if err != nil {
			return 0, err
		}
		return int64(v) - 63, nil
	case 2:
		v, err := it.r.readBits(9)
		if err != nil {
			return 0, err
		}
		return int64(v) - 255, nil
	case 3:
		v, err := it.r.readBits(12)
		if err != nil {
			return 0, err
		}
		return int64(v) - 2047, nil
	default:
		v, err := it.r.readBits(64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}
}

func (it *Iterator) readValue() error {
	b, err := it.r.readBit()
	if err != nil {
		return err
	}
	if !b {
		return nil // identical value
	}
	ctrl, err := it.r.readBit()
	if err != nil {
		return err
	}
	if ctrl {
		lead, err := it.r.readBits(5)
		if err != nil {
			return err
		}
		sigm1, err := it.r.readBits(6)
		if err != nil {
			return err
		}
		it.leading = uint8(lead)
		it.sigbits = uint8(sigm1) + 1
		if uint(it.leading)+uint(it.sigbits) > 64 {
			// The encoder always satisfies lead+sig+trail == 64; a wider
			// window is malformed input and the unsigned shift below would
			// underflow into silent value corruption.
			return ErrCorrupt
		}
	} else if it.leading == 0xff {
		return ErrCorrupt // window reuse before any window was defined
	}
	xbits, err := it.r.readBits(uint(it.sigbits))
	if err != nil {
		return err
	}
	shift := 64 - uint(it.leading) - uint(it.sigbits)
	it.v ^= xbits << shift
	return nil
}
