package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"vap/internal/exec"
	"vap/internal/geo"
)

// Snapshot formats, oldest first:
//
//   - snapMagic ("VAPS", v1): raw 16 B/sample pairs only, no rollup tiers.
//   - snapMagicV2 ("VAP2"): v1 plus per-meter rollup tier bucket arrays, so
//     tiers survive retention aging raw data out.
//   - snapMagicV3 ("VAP3"): the current chunk-verbatim layout. Sealed
//     Gorilla chunks are written as their compressed block bytes plus
//     count/TS-bounds/CRC — the snapshot writer never decodes a sealed
//     chunk and the loader installs them wholesale without re-encoding,
//     which shrinks files ~8-10x and makes recovery disk-bound instead of
//     encoder-bound. Only the unsealed head block (whose encoder state
//     cannot be resumed from payload bytes) is materialized as raw pairs,
//     alongside the tiers. A per-meter offset directory and footer at the
//     end of the file let Open fan meter installs out across a worker pool
//     with sectioned reads (io.ReaderAt), bounding peak memory to the
//     in-flight sections instead of the whole file.
//
// Open reads all three; Snapshot writes v3 (or v2 when
// Options.SnapshotFormat pins the legacy layout for downgrade paths).
var (
	snapMagic   = [4]byte{'V', 'A', 'P', 'S'}
	snapMagicV2 = [4]byte{'V', 'A', 'P', '2'}
	snapMagicV3 = [4]byte{'V', 'A', 'P', '3'}
)

const (
	// snapV3FooterLen is the fixed trailer: directory offset (8), meter
	// count (4), directory CRC (4), trailing magic (4).
	snapV3FooterLen = 20
	// snapV3DirEntryLen is one directory entry: meter ID, section offset,
	// section length.
	snapV3DirEntryLen = 24
	// snapV3ChunkHdrLen is one sealed chunk's metadata ahead of its
	// payload: minTS (8), maxTS (8), count (4), payload length (4),
	// payload CRC (4).
	snapV3ChunkHdrLen = 28
	// snapV3SectionMin is the smallest possible meter section: metadata
	// with an empty zone, zero chunks, zero head samples, zero tiers, and
	// the section CRC.
	snapV3SectionMin = 8 + 8 + 8 + 2 + 4 + 4 + 4
)

// RecoveryStats is the breakdown of the last Open's recovery work:
// snapshot load (format, bytes, meters, raw samples, verbatim chunk
// installs, duration) and WAL replay (segments, records, duration), plus
// the worker fan-out used. All zero for a store opened without a
// durability directory.
type RecoveryStats struct {
	SnapshotFormat  string `json:"snapshot_format,omitempty"`
	SnapshotBytes   int64  `json:"snapshot_bytes"`
	SnapshotMeters  int64  `json:"snapshot_meters"`
	SnapshotSamples int64  `json:"snapshot_samples"`
	SnapshotChunks  int64  `json:"snapshot_chunks"`
	SnapshotMS      int64  `json:"snapshot_ms"`
	WALSegments     int    `json:"wal_segments"`
	WALRecords      int64  `json:"wal_records"`
	WALReplayMS     int64  `json:"wal_replay_ms"`
	Workers         int    `json:"workers"`
	TotalMS         int64  `json:"total_ms"`
}

// Recovery returns the breakdown of the work Open did to bring this store
// back: snapshot bytes/format/duration and WAL segments/records/duration.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// snapEntry is one meter's captured state: metadata, the rollup tier
// capture, and either a point-in-time iterator over the retained raw
// samples (v1/v2, materialized 16 B/sample) or the sealed chunk list plus
// a private head-block copy (v3, verbatim). Captures are taken under brief
// shard read locks; the disk write itself needs no locks at all. With
// retention active the raw capture covers only the retained samples while
// tiers always cover the full history.
type snapEntry struct {
	m     Meter
	count int         // v1/v2: retained raw sample count
	it    *SeriesIter // v1/v2: retained raw samples
	// v3: sealed chunks aliased verbatim (immutable), head block copied.
	chunks      []*chunk
	headPayload []byte
	headCount   int
	tiers       []snapTier
}

// Snapshot atomically writes the full dataset to Dir/snapshot.vap without
// blocking writers: it cuts a WAL watermark, captures per-shard iterator
// snapshots under brief read locks, then streams the capture to disk while
// appends proceed. After the fsync'd temp file is renamed into place the
// directory itself is fsynced — only then are the WAL segments fully
// covered by the watermark deleted, so a crash at any point leaves either
// the old snapshot with the full log or the new snapshot with the suffix.
// It is a no-op error for in-memory stores. Concurrent Snapshot calls and
// Close serialize on snapMu.
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.opts.Dir == "" {
		return ErrNoDurability
	}
	format := s.opts.SnapshotFormat
	if format == 0 {
		format = 3
	}
	// Watermark first: every record enqueued before the cut lives in a
	// segment below it, and each such record's in-memory apply happened in
	// the same shard-lock critical section as its enqueue — so the capture
	// below (which takes each shard lock) observes all of them.
	var watermark uint64
	if s.wal != nil {
		var err error
		if watermark, err = s.wal.CutSegment(); err != nil {
			return err
		}
	}
	// Retention cutoff in data time: sealed chunks wholly older than this
	// are left out of the snapshot and pruned from memory once it is
	// durable. minInt64 (no retention, or no data yet) retains everything.
	cutoff := int64(minInt64)
	if s.opts.RetainRaw > 0 {
		if _, last, ok := s.TimeBounds(); ok {
			cutoff = last + 1 - int64(s.opts.RetainRaw/time.Second)
		}
	}
	var entries []snapEntry
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, ser := range sh.series {
			m, ok := s.catalog.Get(id)
			if !ok {
				continue
			}
			e := snapEntry{m: m, tiers: ser.captureTiers()}
			if format == 3 {
				e.chunks, e.headPayload, e.headCount = ser.captureChunks(cutoff)
			} else if cutoff == minInt64 {
				e.count, e.it = ser.Len(), ser.Iter(minInt64, maxInt64)
			} else if retainFrom, cnt := ser.retainedFrom(cutoff); cnt > 0 {
				e.count, e.it = cnt, ser.Iter(retainFrom, maxInt64)
			} else {
				e.it = ser.Iter(0, 0) // every raw sample aged out
			}
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].m.ID < entries[j].m.ID })

	tmp := filepath.Join(s.opts.Dir, "snapshot.vap.tmp")
	final := filepath.Join(s.opts.Dir, "snapshot.vap")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if format == 3 {
		err = writeSnapshotV3(w, s.rollupRes, entries)
	} else {
		err = writeSnapshotV2(w, s.rollupRes, entries)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is; fsync it
	// before touching the WAL, or a crash here could leave neither a
	// reachable snapshot nor the log records it replaced.
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	// The snapshot is durable from here on: record it before retiring the
	// covered segments, so a cleanup failure does not masquerade as a
	// failed (and stats-wise stale) snapshot. The next snapshot retries
	// any segment that could not be removed.
	s.lastSnapUnix.Store(time.Now().Unix())
	// Raw data below the cutoff is durably out of the snapshot now; drop
	// the same chunks from memory (chunk-granular, the identical rule the
	// capture applied, so disk and memory agree on what survived). New
	// chunks sealed since the capture are strictly newer and unaffected.
	if cutoff != minInt64 {
		for _, sh := range s.shards {
			sh.mu.Lock()
			pruned := 0
			for _, ser := range sh.series {
				pruned += ser.pruneRawBefore(cutoff)
			}
			if pruned > 0 {
				sh.version.Add(1)
				s.version.Add(1)
			}
			sh.mu.Unlock()
		}
	}
	if s.wal != nil {
		if err := s.wal.DeleteSegmentsBelow(watermark); err != nil {
			return fmt.Errorf("store: snapshot is durable, but retiring covered WAL segments failed: %w", err)
		}
	}
	return nil
}

// --- v3: chunk-verbatim writer -----------------------------------------

// le append helpers: the v3 writer builds sections in an append buffer
// with explicit little-endian puts instead of reflection-based
// binary.Write, which dominates the legacy writer's profile.
func le16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// countingWriter tracks the byte offset the v3 writer is at, so section
// offsets recorded in the directory match the file layout.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeSnapshotV3 serializes the chunk-verbatim layout:
//
//	header:   magic "VAP3", tier resolutions, meter count, header CRC
//	sections: one per meter, back to back (layout in appendSnapSectionV3)
//	directory: per meter (id, section offset, section length)
//	footer:   directory offset, meter count, directory CRC, magic "VAP3"
//
// The footer-at-the-end arrangement lets the writer stream sections
// without knowing their sizes up front, and lets the loader find the
// directory with two small reads before fanning sections out to workers.
func writeSnapshotV3(w io.Writer, res []int64, entries []snapEntry) error {
	cw := &countingWriter{w: w}
	hdr := make([]byte, 0, 16+8*len(res))
	hdr = append(hdr, snapMagicV3[:]...)
	hdr = le32(hdr, uint32(len(res)))
	for _, r := range res {
		hdr = le64(hdr, uint64(r))
	}
	hdr = le32(hdr, uint32(len(entries)))
	hdr = le32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	dir := make([]byte, 0, len(entries)*snapV3DirEntryLen)
	var buf []byte
	for i := range entries {
		off := cw.n
		var err error
		buf, err = appendSnapSectionV3(buf[:0], res, &entries[i])
		if err != nil {
			return err
		}
		if _, err := cw.Write(buf); err != nil {
			return err
		}
		dir = le64(dir, uint64(entries[i].m.ID))
		dir = le64(dir, uint64(off))
		dir = le64(dir, uint64(len(buf)))
	}
	dirOff := cw.n
	if _, err := cw.Write(dir); err != nil {
		return err
	}
	var foot [snapV3FooterLen]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(dirOff))
	binary.LittleEndian.PutUint32(foot[8:], uint32(len(entries)))
	binary.LittleEndian.PutUint32(foot[12:], crc32.ChecksumIEEE(dir))
	copy(foot[16:], snapMagicV3[:])
	_, err := cw.Write(foot[:])
	return err
}

// appendSnapSectionV3 appends one meter's section:
//
//	id, lon, lat, zone — meter metadata
//	nChunks × { minTS, maxTS, count, payloadLen, payloadCRC, payload }
//	headCount × { ts, value } — the unsealed head, materialized
//	nRes × { nBuckets, buckets } — rollup tiers in header order
//	section CRC over every byte above
//
// Sealed chunk payloads go out verbatim — no decode. The head block is the
// one part that must be materialized: an Encoder cannot resume from its
// payload bytes, so the loader re-appends these raw pairs instead.
func appendSnapSectionV3(buf []byte, res []int64, e *snapEntry) ([]byte, error) {
	zone := []byte(e.m.Zone)
	buf = le64(buf, uint64(e.m.ID))
	buf = le64(buf, math.Float64bits(e.m.Location.Lon))
	buf = le64(buf, math.Float64bits(e.m.Location.Lat))
	buf = le16(buf, uint16(len(zone)))
	buf = append(buf, zone...)
	buf = le32(buf, uint32(len(e.chunks)))
	for _, c := range e.chunks {
		buf = le64(buf, uint64(c.minTS))
		buf = le64(buf, uint64(c.maxTS))
		buf = le32(buf, uint32(c.count))
		buf = le32(buf, uint32(len(c.payload)))
		buf = le32(buf, crc32.ChecksumIEEE(c.payload))
		buf = append(buf, c.payload...)
	}
	var head []Sample
	if e.headCount > 0 {
		var err error
		if head, err = Decode(e.headPayload, e.headCount); err != nil {
			return nil, fmt.Errorf("store: snapshot of meter %d: head block decode: %w", e.m.ID, err)
		}
	}
	buf = le32(buf, uint32(len(head)))
	for _, smp := range head {
		buf = le64(buf, uint64(smp.TS))
		buf = le64(buf, math.Float64bits(smp.Value))
	}
	// Tiers in header order; captureTiers preserves the store's tier
	// order, so a mismatch here is a programming error worth failing on.
	if len(e.tiers) != len(res) {
		return nil, fmt.Errorf("store: snapshot of meter %d captured %d tiers, store maintains %d", e.m.ID, len(e.tiers), len(res))
	}
	for ti := range e.tiers {
		t := &e.tiers[ti]
		if t.res != res[ti] {
			return nil, fmt.Errorf("store: snapshot tier order mismatch for meter %d", e.m.ID)
		}
		buf = le32(buf, uint32(t.len()))
		for i := range t.interior {
			buf = appendRollupBucket(buf, &t.interior[i])
		}
		if t.hasTail {
			buf = appendRollupBucket(buf, &t.tail)
		}
	}
	return le32(buf, crc32.ChecksumIEEE(buf)), nil
}

func appendRollupBucket(buf []byte, b *RollupBucket) []byte {
	buf = le64(buf, uint64(b.Start))
	buf = le64(buf, uint64(b.Count))
	buf = le64(buf, uint64(b.NaN))
	buf = le64(buf, math.Float64bits(b.Sum))
	buf = le64(buf, math.Float64bits(b.Min))
	buf = le64(buf, math.Float64bits(b.Max))
	buf = le64(buf, math.Float64bits(b.First))
	return le64(buf, math.Float64bits(b.Last))
}

// --- v3: parallel loader ------------------------------------------------

// loadSnapshotV3 restores a chunk-verbatim snapshot. It reads the footer
// and directory with two small positioned reads, then fans the per-meter
// sections out across the recovery worker pool: each worker preads only
// its own section (bounding peak memory to the in-flight sections), checks
// its CRCs, builds the complete Series off-lock — sealed chunks installed
// wholesale, head re-appended, tiers installed — and publishes it with one
// brief shard-lock acquisition. Meters hash across shards, so workers
// almost never contend on the same shard lock.
//
// Version accounting mirrors the sample-at-a-time load exactly (+1 for the
// registration, +1 per sample), so a v3-recovered store fingerprints
// identically to a v2-recovered or live-built one.
func (s *Store) loadSnapshotV3(f *os.File, size int64) error {
	if size < int64(16+snapV3FooterLen) {
		return ErrCorrupt
	}
	var foot [snapV3FooterLen]byte
	if _, err := f.ReadAt(foot[:], size-snapV3FooterLen); err != nil {
		return err
	}
	if [4]byte(foot[16:20]) != snapMagicV3 {
		return ErrCorrupt
	}
	dirOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	nMeters := int64(binary.LittleEndian.Uint32(foot[8:]))
	dirCRC := binary.LittleEndian.Uint32(foot[12:])
	dirLen := nMeters * snapV3DirEntryLen
	// The directory must sit exactly between the sections and the footer;
	// this also clamps the directory allocation against the real file size
	// before trusting the meter count.
	if dirOff < 16 || dirLen < 0 || dirOff+dirLen != size-snapV3FooterLen {
		return ErrCorrupt
	}
	dir := make([]byte, dirLen)
	if _, err := f.ReadAt(dir, dirOff); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(dir) != dirCRC {
		return ErrCorrupt
	}
	var fixed [8]byte
	if _, err := f.ReadAt(fixed[:], 0); err != nil {
		return err
	}
	if [4]byte(fixed[0:4]) != snapMagicV3 {
		return ErrCorrupt
	}
	nRes := int64(binary.LittleEndian.Uint32(fixed[4:]))
	hdrLen := 8 + 8*nRes + 8
	if nRes < 0 || hdrLen > dirOff {
		return ErrCorrupt
	}
	hdr := make([]byte, hdrLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(hdr[:hdrLen-4]) != binary.LittleEndian.Uint32(hdr[hdrLen-4:]) {
		return ErrCorrupt
	}
	fileRes := make([]int64, nRes)
	for i := range fileRes {
		fileRes[i] = int64(binary.LittleEndian.Uint64(hdr[8+8*i:]))
	}
	if int64(binary.LittleEndian.Uint32(hdr[8+8*nRes:])) != nMeters {
		return ErrCorrupt
	}

	var meters, samples, chunks atomic.Int64
	workers := s.recoverWorkers()
	err := exec.ForEach(context.Background(), int(nMeters), workers, func(i int) error {
		ent := dir[int64(i)*snapV3DirEntryLen:]
		id := int64(binary.LittleEndian.Uint64(ent[0:]))
		off := int64(binary.LittleEndian.Uint64(ent[8:]))
		length := int64(binary.LittleEndian.Uint64(ent[16:]))
		if off < hdrLen || length < snapV3SectionMin || off+length > dirOff {
			return fmt.Errorf("store: snapshot directory entry for meter %d out of bounds: %w", id, ErrCorrupt)
		}
		sec := make([]byte, length)
		if _, err := f.ReadAt(sec, off); err != nil {
			return err
		}
		return s.installSectionV3(id, sec, fileRes, &meters, &samples, &chunks)
	})
	if err != nil {
		return err
	}
	s.recovery.SnapshotMeters = meters.Load()
	s.recovery.SnapshotSamples = samples.Load()
	s.recovery.SnapshotChunks = chunks.Load()
	return nil
}

// installSectionV3 parses one meter section and installs it: the section
// CRC is checked first (it covers every byte including chunk payloads),
// then each chunk's own payload CRC, then the Series is assembled entirely
// off-lock and published into its shard under one brief lock acquisition.
// All counts from the file are clamped against the remaining section bytes
// before allocation, so a corrupt length fails with ErrCorrupt instead of
// a multi-GB make.
func (s *Store) installSectionV3(wantID int64, sec []byte, fileRes []int64, meters, samples, chunksN *atomic.Int64) error {
	corrupt := func(what string) error {
		return fmt.Errorf("store: snapshot section for meter %d: %s: %w", wantID, what, ErrCorrupt)
	}
	if len(sec) < snapV3SectionMin {
		return corrupt("section shorter than minimum")
	}
	body, tail := sec[:len(sec)-4], sec[len(sec)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return corrupt("section checksum mismatch")
	}
	r := &sliceReader{data: body}
	id, err := r.int64()
	if err != nil || id != wantID {
		return corrupt("meter id mismatch")
	}
	lon, err := r.float64()
	if err != nil {
		return corrupt("truncated metadata")
	}
	lat, err := r.float64()
	if err != nil {
		return corrupt("truncated metadata")
	}
	zlen, err := r.uint16()
	if err != nil {
		return corrupt("truncated metadata")
	}
	zone, err := r.bytes(int(zlen))
	if err != nil {
		return corrupt("truncated zone")
	}
	nChunks, err := r.uint32()
	if err != nil {
		return corrupt("truncated chunk count")
	}
	if int64(nChunks)*snapV3ChunkHdrLen > int64(r.remaining()) {
		return corrupt("chunk count exceeds section")
	}
	chunks := make([]*chunk, 0, nChunks)
	total := 0
	for i := uint32(0); i < nChunks; i++ {
		minTS, err := r.int64()
		if err != nil {
			return corrupt("truncated chunk header")
		}
		maxTS, err := r.int64()
		if err != nil {
			return corrupt("truncated chunk header")
		}
		count, err := r.uint32()
		if err != nil {
			return corrupt("truncated chunk header")
		}
		plen, err := r.uint32()
		if err != nil {
			return corrupt("truncated chunk header")
		}
		pcrc, err := r.uint32()
		if err != nil {
			return corrupt("truncated chunk header")
		}
		// The payload aliases the section buffer: chunks dominate section
		// size, so pinning the buffer costs little and skips a copy.
		payload, err := r.bytes(int(plen))
		if err != nil {
			return corrupt("truncated chunk payload")
		}
		if count == 0 || minTS > maxTS {
			return corrupt("malformed chunk bounds")
		}
		if crc32.ChecksumIEEE(payload) != pcrc {
			return corrupt("chunk payload checksum mismatch")
		}
		total += int(count)
		chunks = append(chunks, &chunk{minTS: minTS, maxTS: maxTS, count: int(count), payload: payload})
	}
	headCount, err := r.uint32()
	if err != nil {
		return corrupt("truncated head count")
	}
	if int64(headCount)*16 > int64(r.remaining()) {
		return corrupt("head count exceeds section")
	}
	head := make([]Sample, headCount)
	for i := range head {
		ts, err := r.int64()
		if err != nil {
			return corrupt("truncated head sample")
		}
		v, err := r.float64()
		if err != nil {
			return corrupt("truncated head sample")
		}
		head[i] = Sample{TS: ts, Value: v}
	}
	file := make([]rollupTier, len(fileRes))
	for ti := range fileRes {
		nb, err := r.uint32()
		if err != nil {
			return corrupt("truncated tier header")
		}
		if int64(nb)*rollupBucketBytes > int64(r.remaining()) {
			return corrupt("tier bucket count exceeds section")
		}
		buckets := make([]RollupBucket, nb)
		for bi := range buckets {
			if err := readRollupBucket(r, &buckets[bi]); err != nil {
				return corrupt("truncated tier bucket")
			}
		}
		file[ti] = rollupTier{res: fileRes[ti], buckets: buckets}
	}
	if r.remaining() != 0 {
		return corrupt("trailing bytes in section")
	}
	m := Meter{ID: id, Location: geo.Point{Lon: lon, Lat: lat}, Zone: ZoneType(zone)}
	// Assemble the whole series off-lock; only the map insert below needs
	// the shard lock, so workers installing into the same shard serialize
	// for nanoseconds, not for the decode/install work.
	ser := NewSeriesRollup(id, s.rollupRes)
	if err := ser.installChunks(chunks, head); err != nil {
		return fmt.Errorf("store: snapshot section for meter %d: %w", id, err)
	}
	if err := ser.installRollups(s.rollupRes, file); err != nil {
		return err
	}
	if err := s.catalog.Put(m); err != nil {
		return err
	}
	n := ser.Len()
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.series[id]; dup {
		sh.mu.Unlock()
		return corrupt("duplicate meter section")
	}
	sh.series[id] = ser
	sh.version.Add(uint64(1 + n))
	sh.mu.Unlock()
	s.version.Add(uint64(1 + n))
	meters.Add(1)
	samples.Add(int64(n))
	chunksN.Add(int64(len(chunks)))
	return nil
}

// --- legacy v1/v2 writer ------------------------------------------------

// writeSnapshotV2 serializes the legacy materialized layout: magic, the
// store's tier resolution list, meter count, then per meter its metadata,
// retained raw sample run (count + 16 B/sample pairs), and one bucket
// array per tier in header order — with a trailing CRC of everything.
// Retained as the downgrade format (Options.SnapshotFormat = 2) and as the
// serial baseline BenchmarkRecover measures v3 against.
func writeSnapshotV2(w io.Writer, res []int64, entries []snapEntry) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(snapMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(res))); err != nil {
		return err
	}
	for _, r := range res {
		if err := binary.Write(mw, binary.LittleEndian, r); err != nil {
			return err
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := writeSnapMeter(mw, e); err != nil {
			return err
		}
		// Tiers in header order; captureTiers preserves the store's tier
		// order, so a mismatch here is a programming error worth failing on.
		if len(e.tiers) != len(res) {
			return fmt.Errorf("store: snapshot of meter %d captured %d tiers, store maintains %d", e.m.ID, len(e.tiers), len(res))
		}
		for ti, t := range e.tiers {
			if t.res != res[ti] {
				return fmt.Errorf("store: snapshot tier order mismatch for meter %d", e.m.ID)
			}
			if err := binary.Write(mw, binary.LittleEndian, uint32(t.len())); err != nil {
				return err
			}
			for i := range t.interior {
				if err := writeRollupBucket(mw, &t.interior[i]); err != nil {
					return err
				}
			}
			if t.hasTail {
				if err := writeRollupBucket(mw, &t.tail); err != nil {
					return err
				}
			}
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// writeSnapMeter writes one meter's metadata and retained raw samples —
// the per-meter layout shared by the v1 and v2 snapshot versions.
func writeSnapMeter(mw io.Writer, e snapEntry) error {
	zone := []byte(e.m.Zone)
	if err := binary.Write(mw, binary.LittleEndian, e.m.ID); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, e.m.Location.Lon); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, e.m.Location.Lat); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint16(len(zone))); err != nil {
		return err
	}
	if _, err := mw.Write(zone); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(e.count)); err != nil {
		return err
	}
	written := 0
	for e.it.Next() {
		smp := e.it.Sample()
		if err := binary.Write(mw, binary.LittleEndian, smp.TS); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, smp.Value); err != nil {
			return err
		}
		written++
	}
	if err := e.it.Err(); err != nil {
		return err
	}
	if written != e.count {
		return fmt.Errorf("store: snapshot of meter %d yielded %d samples, expected %d", e.m.ID, written, e.count)
	}
	return nil
}

func writeRollupBucket(mw io.Writer, b *RollupBucket) error {
	var buf [rollupBucketBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(b.Start))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b.Count))
	binary.LittleEndian.PutUint64(buf[16:], uint64(b.NaN))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(b.Sum))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(b.Min))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(b.Max))
	binary.LittleEndian.PutUint64(buf[48:], math.Float64bits(b.First))
	binary.LittleEndian.PutUint64(buf[56:], math.Float64bits(b.Last))
	_, err := mw.Write(buf[:])
	return err
}

// writeSnapshotV1 serializes the oldest layout (no tiers). Retained only
// so the migration path — loading a pre-rollup snapshot — stays testable.
func writeSnapshotV1(w io.Writer, entries []snapEntry) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(snapMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := writeSnapMeter(mw, e); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// --- loading ------------------------------------------------------------

// loadSnapshot dispatches on the snapshot magic. v3 files are loaded with
// positioned section reads through the worker pool; the legacy v1/v2
// layouts have no directory, so they still load from one whole-file read.
func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	s.recovery.SnapshotBytes = st.Size()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return ErrCorrupt
	}
	if magic == snapMagicV3 {
		s.recovery.SnapshotFormat = "v3"
		return s.loadSnapshotV3(f, st.Size())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 12 {
		return ErrCorrupt
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("store: snapshot checksum mismatch")
	}
	r := &sliceReader{data: body[4:]}
	switch magic {
	case snapMagic:
		s.recovery.SnapshotFormat = "v1"
		return s.loadSnapshotV1(r)
	case snapMagicV2:
		s.recovery.SnapshotFormat = "v2"
		return s.loadSnapshotV2(r)
	default:
		return ErrCorrupt
	}
}

// loadSnapshotV1 loads a legacy (pre-rollup) snapshot. It routes samples
// through the normal append path, which folds them into the configured
// rollup tiers — a v1 file still contains its full raw history, so the
// rebuilt tiers are exact. This is the migration path for old snapshots.
func (s *Store) loadSnapshotV1(r *sliceReader) error {
	nMeters, err := r.uint32()
	if err != nil {
		return ErrCorrupt
	}
	for i := uint32(0); i < nMeters; i++ {
		m, err := readSnapMeterHeader(r)
		if err != nil {
			return err
		}
		if err := s.replayMeter(m); err != nil {
			return err
		}
		nSamples, err := r.uint32()
		if err != nil {
			return ErrCorrupt
		}
		sh := s.shardFor(m.ID)
		sh.mu.Lock()
		var loadErr error
		for j := uint32(0); j < nSamples; j++ {
			ts, err := r.int64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			v, err := r.float64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			if err := s.appendShardLocked(sh, m.ID, Sample{TS: ts, Value: v}); err != nil {
				loadErr = err
				break
			}
		}
		sh.mu.Unlock()
		if loadErr != nil {
			return loadErr
		}
		s.recovery.SnapshotMeters++
		s.recovery.SnapshotSamples += int64(nSamples)
	}
	return nil
}

// readSnapMeterHeader reads the v1/v2 per-meter metadata prefix. The zone
// allocation is clamped by sliceReader.bytes against the remaining input,
// so a corrupt length fails with ErrCorrupt instead of a wild make.
func readSnapMeterHeader(r *sliceReader) (Meter, error) {
	id, err := r.int64()
	if err != nil {
		return Meter{}, ErrCorrupt
	}
	lon, err := r.float64()
	if err != nil {
		return Meter{}, ErrCorrupt
	}
	lat, err := r.float64()
	if err != nil {
		return Meter{}, ErrCorrupt
	}
	zlen, err := r.uint16()
	if err != nil {
		return Meter{}, ErrCorrupt
	}
	zone, err := r.bytes(int(zlen))
	if err != nil {
		return Meter{}, ErrCorrupt
	}
	return Meter{ID: id, Location: geo.Point{Lon: lon, Lat: lat}, Zone: ZoneType(zone)}, nil
}

// loadSnapshotV2 loads the legacy materialized layout: header tier
// resolutions, then per meter its retained raw samples followed by the
// persisted tier bucket arrays. Samples load through appendRaw — no rollup
// folding — because the tiers come from the file; folding too would
// double-count. Persisted tiers whose resolution the store still maintains
// install verbatim; any newly configured resolution is derived from the
// retained raw samples (exact until retention has aged data out,
// best-effort after). Every count read from the file is clamped against
// the remaining bytes before allocation (a corrupt/truncated snapshot must
// fail with ErrCorrupt, not a multi-GB make).
func (s *Store) loadSnapshotV2(r *sliceReader) error {
	nRes, err := r.uint32()
	if err != nil {
		return ErrCorrupt
	}
	if int64(nRes)*8 > int64(r.remaining()) {
		return ErrCorrupt
	}
	fileRes := make([]int64, nRes)
	for i := range fileRes {
		if fileRes[i], err = r.int64(); err != nil {
			return ErrCorrupt
		}
	}
	nMeters, err := r.uint32()
	if err != nil {
		return ErrCorrupt
	}
	for i := uint32(0); i < nMeters; i++ {
		m, err := readSnapMeterHeader(r)
		if err != nil {
			return err
		}
		if err := s.replayMeter(m); err != nil {
			return err
		}
		nSamples, err := r.uint32()
		if err != nil {
			return ErrCorrupt
		}
		sh := s.shardFor(m.ID)
		sh.mu.Lock()
		ser := sh.series[m.ID]
		var loadErr error
		for j := uint32(0); j < nSamples; j++ {
			ts, err := r.int64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			v, err := r.float64()
			if err != nil {
				loadErr = ErrCorrupt
				break
			}
			if err := ser.appendRaw(Sample{TS: ts, Value: v}); err != nil {
				loadErr = err
				break
			}
		}
		if loadErr == nil && nSamples > 0 {
			sh.version.Add(uint64(nSamples))
			s.version.Add(uint64(nSamples))
		}
		if loadErr == nil {
			file := make([]rollupTier, len(fileRes))
			for ti := range fileRes {
				nb, err := r.uint32()
				if err != nil {
					loadErr = ErrCorrupt
					break
				}
				if int64(nb)*rollupBucketBytes > int64(r.remaining()) {
					loadErr = ErrCorrupt
					break
				}
				buckets := make([]RollupBucket, nb)
				for bi := range buckets {
					if err := readRollupBucket(r, &buckets[bi]); err != nil {
						loadErr = ErrCorrupt
						break
					}
				}
				if loadErr != nil {
					break
				}
				file[ti] = rollupTier{res: fileRes[ti], buckets: buckets}
			}
			if loadErr == nil {
				loadErr = ser.installRollups(s.rollupRes, file)
			}
		}
		sh.mu.Unlock()
		if loadErr != nil {
			return loadErr
		}
		s.recovery.SnapshotMeters++
		s.recovery.SnapshotSamples += int64(nSamples)
	}
	return nil
}

func readRollupBucket(r *sliceReader, b *RollupBucket) error {
	var buf [rollupBucketBytes]byte
	if err := r.read(buf[:]); err != nil {
		return err
	}
	b.Start = int64(binary.LittleEndian.Uint64(buf[0:]))
	b.Count = int64(binary.LittleEndian.Uint64(buf[8:]))
	b.NaN = int64(binary.LittleEndian.Uint64(buf[16:]))
	b.Sum = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	b.Min = math.Float64frombits(binary.LittleEndian.Uint64(buf[32:]))
	b.Max = math.Float64frombits(binary.LittleEndian.Uint64(buf[40:]))
	b.First = math.Float64frombits(binary.LittleEndian.Uint64(buf[48:]))
	b.Last = math.Float64frombits(binary.LittleEndian.Uint64(buf[56:]))
	return nil
}

// sliceReader reads little-endian primitives from a byte slice.
type sliceReader struct {
	data []byte
	off  int
}

// remaining returns the unread byte count — the clamp every
// count-before-allocation check compares against.
func (r *sliceReader) remaining() int { return len(r.data) - r.off }

func (r *sliceReader) read(p []byte) error {
	if r.off+len(p) > len(r.data) {
		return io.ErrUnexpectedEOF
	}
	copy(p, r.data[r.off:])
	r.off += len(p)
	return nil
}

// bytes returns the next n bytes without copying (the result aliases the
// reader's backing slice).
func (r *sliceReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, io.ErrUnexpectedEOF
	}
	out := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return out, nil
}

func (r *sliceReader) uint32() (uint32, error) {
	var b [4]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *sliceReader) uint16() (uint16, error) {
	var b [2]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (r *sliceReader) int64() (int64, error) {
	var b [8]byte
	if err := r.read(b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *sliceReader) float64() (float64, error) {
	v, err := r.int64()
	return math.Float64frombits(uint64(v)), err
}
