package store

import (
	"errors"
	"math"
	"sort"
)

// Rollup tiers are per-meter pre-aggregated summaries of the raw series at
// fixed resolutions (DefaultRollupRes: one hour and one day). Each tier is
// an ascending array of buckets, one per resolution-aligned interval that
// received at least one sample, holding exactly the state the query
// layer's aggregates need (sum/count/min/max/first/last plus a NaN tally).
//
// Maintenance rides the ingest path: Series.Append folds the sample into
// the last bucket of every tier inside the same shard-lock critical
// section that appends it to the head block, so rollups cost a few float
// ops per sample and no additional locking. Because timestamps are
// strictly increasing, only the last bucket of a tier ever mutates — the
// interior of the bucket array is immutable, which is what lets TierScan
// hand out zero-copy views consistent with a point-in-time raw iterator.
//
// Rollup state is a pure function of the appended samples, so WAL replay
// and legacy (v1) snapshot loads rebuild tiers exactly by re-appending.
// Once retention (Options.RetainRaw) starts aging raw chunks out of
// snapshots the equivalence breaks — rollups outlive the raw data that
// built them — so v2 snapshots persist the tiers alongside the samples.

// DefaultRollupRes is the tier set used when Options.RollupRes is nil:
// hourly and daily buckets. Hourly serves hourly/4-hourly queries; daily
// serves daily and every coarser granularity (weekly and the UTC calendar
// units all start on midnight boundaries).
var DefaultRollupRes = []int64{3600, 86400}

// RollupBucket is one pre-aggregated interval [Start, Start+res) of one
// meter. Sum/Count/Min/Max fold only finite values (NaN readings are
// tallied in NaN so count(*) and count(value) both reconstruct; a single
// bad reading must not poison a bucket, matching the executors). First and
// Last are the raw first/last sample values of the bucket, NaN included.
type RollupBucket struct {
	Start    int64
	Count    int64 // finite samples folded
	NaN      int64 // NaN samples tallied, not folded
	Sum      float64
	Min, Max float64
	First    float64
	Last     float64
}

// rollupBucketBytes is the in-memory (and on-disk) footprint of one bucket.
const rollupBucketBytes = 64

func newRollupBucket(start int64, v float64) RollupBucket {
	b := RollupBucket{Start: start, Min: math.Inf(1), Max: math.Inf(-1), First: v, Last: v}
	b.fold(v)
	return b
}

func (b *RollupBucket) fold(v float64) {
	b.Last = v
	if v != v { // NaN
		b.NaN++
		return
	}
	b.Sum += v
	b.Count++
	if v < b.Min {
		b.Min = v
	}
	if v > b.Max {
		b.Max = v
	}
}

// rollupTier is one resolution's bucket array, ascending by Start.
type rollupTier struct {
	res     int64
	buckets []RollupBucket
}

// fold folds one in-order sample into the tier: extend the last bucket or
// open a new one — the interior is never touched.
func (t *rollupTier) fold(smp Sample) {
	start := smp.TS - mod64(smp.TS, t.res)
	if n := len(t.buckets); n > 0 && t.buckets[n-1].Start == start {
		t.buckets[n-1].fold(smp.Value)
	} else {
		t.buckets = append(t.buckets, newRollupBucket(start, smp.Value))
	}
}

// foldRollups folds one appended sample into every tier.
func (s *Series) foldRollups(smp Sample) {
	for i := range s.rollups {
		s.rollups[i].fold(smp)
	}
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// normalizeRollupRes resolves an Options.RollupRes value: nil selects the
// defaults, non-positive entries drop, the rest sort ascending and dedupe.
func normalizeRollupRes(res []int64) []int64 {
	if res == nil {
		res = DefaultRollupRes
	}
	out := make([]int64, 0, len(res))
	for _, r := range res {
		if r > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// rebuildRollups recomputes every tier from the raw samples currently in
// the series — the from-scratch reference the crash tests compare
// recovered tiers against. Caller holds the shard lock.
func (s *Series) rebuildRollups(res []int64) error {
	return s.installRollups(res, nil)
}

// installRollups sets the series' tiers to the configured resolutions,
// taking bucket arrays from file (a persisted capture) where the
// resolution matches and deriving the rest from the raw samples present.
// A derived tier is exact only while raw data covers the full history —
// after retention has aged chunks out, only persisted tiers cover the
// dropped span. Caller holds the shard lock.
func (s *Series) installRollups(res []int64, file []rollupTier) error {
	final := make([]rollupTier, len(res))
	var missing []*rollupTier
	for i, r := range res {
		final[i] = rollupTier{res: r}
		found := false
		for j := range file {
			if file[j].res == r {
				final[i].buckets = file[j].buckets
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, &final[i])
		}
	}
	if len(missing) > 0 && s.total > 0 {
		it := s.Iter(minInt64, maxInt64)
		for it.Next() {
			smp := it.Sample()
			for _, t := range missing {
				t.fold(smp)
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	s.rollups = final
	return nil
}

// snapTier is one tier's zero-copy capture for snapshotting: the immutable
// interior aliased, the live last bucket copied.
type snapTier struct {
	res      int64
	interior []RollupBucket
	tail     RollupBucket
	hasTail  bool
}

func (t *snapTier) len() int {
	n := len(t.interior)
	if t.hasTail {
		n++
	}
	return n
}

// captureTiers snapshots every tier under the caller-held shard lock.
func (s *Series) captureTiers() []snapTier {
	out := make([]snapTier, len(s.rollups))
	for i := range s.rollups {
		t := &s.rollups[i]
		out[i].res = t.res
		if n := len(t.buckets); n > 0 {
			out[i].interior = t.buckets[:n-1]
			out[i].tail = t.buckets[n-1]
			out[i].hasTail = true
		}
	}
	return out
}

// rollupFor returns the tier with resolution res, or nil.
func (s *Series) rollupFor(res int64) *rollupTier {
	for i := range s.rollups {
		if s.rollups[i].res == res {
			return &s.rollups[i]
		}
	}
	return nil
}

// TierScan is a point-in-time capture of everything one meter contributes
// to a tier-served window [from, to): raw iterators over the unaligned
// edges, the tier buckets covering the aligned interior, and the per-meter
// version the whole capture was taken at. Interior aliases the tier's
// immutable bucket prefix (zero-copy); when the capture includes the
// series' live last bucket it is copied into Tail instead, since that one
// bucket keeps mutating under appends.
type TierScan struct {
	Left     *SeriesIter // raw samples in [from, alignedFrom); nil when empty
	Right    *SeriesIter // raw samples in [alignedTo, to); nil when empty
	Interior []RollupBucket
	Tail     RollupBucket
	HasTail  bool
	Version  uint64
}

// Buckets iterates the captured interior buckets (including the tail) in
// ascending Start order.
func (t *TierScan) Buckets(fn func(*RollupBucket)) {
	for i := range t.Interior {
		fn(&t.Interior[i])
	}
	if t.HasTail {
		fn(&t.Tail)
	}
}

// TierScan captures one meter's tier-served scan of [from, to) under a
// single shard read lock: the raw edges [from, aFrom) and [aTo, to) and
// the tier buckets of resolution res with aFrom <= Start < aTo. Taking
// all three under one lock acquisition is what makes the capture a
// consistent point-in-time view — edges and interior can never observe
// different append frontiers, so Version stamps exactly the state every
// part of the capture reflects.
func (s *Store) TierScan(meterID, res, from, aFrom, aTo, to int64) (*TierScan, error) {
	sh := s.shardFor(meterID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ser, ok := sh.series[meterID]
	if !ok {
		return nil, ErrUnknownMeter
	}
	tier := ser.rollupFor(res)
	if tier == nil {
		return nil, ErrNoRollupTier
	}
	ts := &TierScan{Version: ser.ver}
	if aFrom > from {
		ts.Left = ser.Iter(from, aFrom)
	}
	if to > aTo {
		ts.Right = ser.Iter(aTo, to)
	}
	lo, hi := bucketRange(tier.buckets, aFrom, aTo)
	if hi > lo {
		if hi == len(tier.buckets) {
			// The series' last bucket keeps mutating in place; copy it out.
			ts.Interior = tier.buckets[lo : hi-1]
			ts.Tail = tier.buckets[hi-1]
			ts.HasTail = true
		} else {
			ts.Interior = tier.buckets[lo:hi]
		}
	}
	return ts, nil
}

// ErrNoRollupTier is returned by TierScan when the requested resolution is
// not maintained (rollups disabled, or a resolution the store was not
// opened with).
var ErrNoRollupTier = errors.New("store: no rollup tier at requested resolution")

// bucketRange binary-searches the half-open index range of buckets with
// from <= Start < to.
func bucketRange(buckets []RollupBucket, from, to int64) (lo, hi int) {
	lo = searchBuckets(buckets, from)
	hi = searchBuckets(buckets, to)
	return lo, hi
}

// searchBuckets returns the first index whose Start >= ts.
func searchBuckets(buckets []RollupBucket, ts int64) int {
	lo, hi := 0, len(buckets)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if buckets[mid].Start < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RollupResolutions returns the tier resolutions this store maintains,
// ascending (nil when rollups are disabled). The returned slice is shared
// and must not be mutated.
func (s *Store) RollupResolutions() []int64 { return s.rollupRes }

// RollupTierStats is one tier's store-wide footprint, reported by Stats
// and /api/stats.
type RollupTierStats struct {
	Res     int64 `json:"res_sec"`
	Buckets int   `json:"buckets"`
	Bytes   int64 `json:"bytes"`
}

// rollupStats sums per-tier bucket counts across every series.
func (s *Store) rollupStats() []RollupTierStats {
	if len(s.rollupRes) == 0 {
		return nil
	}
	out := make([]RollupTierStats, len(s.rollupRes))
	for i, r := range s.rollupRes {
		out[i].Res = r
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, ser := range sh.series {
			for _, t := range ser.rollups {
				for i, r := range s.rollupRes {
					if t.res == r {
						out[i].Buckets += len(t.buckets)
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	for i := range out {
		out[i].Bytes = int64(out[i].Buckets) * rollupBucketBytes
	}
	return out
}
