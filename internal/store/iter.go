package store

// iterSegment is one compressed block a SeriesIter decodes lazily: either
// an immutable sealed chunk's payload (shared, never copied) or a private
// copy of the head block taken at iterator construction.
type iterSegment struct {
	payload []byte
	count   int
}

// SeriesIter streams the samples of one series with from <= TS < to in
// timestamp order, decoding one Gorilla block at a time instead of
// materializing full sample slices. Blocks wholly outside the window are
// pruned by their cached min/max timestamps without decoding.
//
// A SeriesIter is a point-in-time snapshot: sealed chunks are immutable
// and the head block is copied at construction, so iteration is safe after
// the owning shard lock is released and is unaffected by concurrent
// appends. It is not safe for concurrent use by multiple goroutines.
type SeriesIter struct {
	segs     []iterSegment
	cur      *Iterator   // scalar (Next) decode position
	curB     blockReader // vectorized (NextBatch) decode position
	inBlock  bool        // curB holds a partially decoded block
	from, to int64
	smp      Sample
	err      error
	done     bool
	ver      uint64 // per-meter version at snapshot time
}

// Iter returns an iterator over the window [from, to). Callers must hold
// the series' external synchronization (the store's shard lock) during the
// call itself; the returned iterator needs no further locking.
func (s *Series) Iter(from, to int64) *SeriesIter {
	it := &SeriesIter{from: from, to: to, ver: s.ver}
	if to <= from || s.total == 0 {
		it.done = true
		return it
	}
	for _, c := range s.sealed {
		if c.maxTS < from || c.minTS >= to {
			continue
		}
		it.segs = append(it.segs, iterSegment{payload: c.payload, count: c.count})
	}
	if s.head.Len() > 0 && s.headMinTS < to && s.head.LastTS() >= from {
		it.segs = append(it.segs, iterSegment{payload: s.head.Bytes(), count: s.head.Len()})
	}
	if len(it.segs) == 0 {
		it.done = true
	}
	return it
}

// Next advances to the next in-window sample, returning false at the end
// of the window or on a decode error.
func (it *SeriesIter) Next() bool {
	for {
		if it.done || it.err != nil {
			return false
		}
		if it.cur == nil {
			if len(it.segs) == 0 {
				it.done = true
				return false
			}
			seg := it.segs[0]
			it.segs = it.segs[1:]
			it.cur = NewIterator(seg.payload, seg.count)
		}
		for it.cur.Next() {
			s := it.cur.Sample()
			if s.TS < it.from {
				continue
			}
			if s.TS >= it.to {
				// Blocks are time-ordered and disjoint: nothing later can
				// be in the window either.
				it.done = true
				return false
			}
			it.smp = s
			return true
		}
		if err := it.cur.Err(); err != nil {
			it.err = err
			return false
		}
		it.cur = nil
	}
}

// Sample returns the current sample after a successful Next.
func (it *SeriesIter) Sample() Sample { return it.smp }

// Err returns the first decode error encountered, if any.
func (it *SeriesIter) Err() error { return it.err }

// Version returns the meter's per-meter version at the moment the
// iterator snapshotted the series. Combining the observed versions of
// every meter a query scanned (FingerprintPairs) yields the data
// fingerprint of exactly the state the results were computed from — the
// consistent stamp for concurrent readers, where re-reading the store's
// fingerprint after the scan could observe interleaved appends.
func (it *SeriesIter) Version() uint64 { return it.ver }
