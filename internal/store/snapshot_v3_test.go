package store

// Tests for the chunk-verbatim v3 snapshot format: round-trips through the
// parallel loader, every-byte corruption and truncation (including the
// offset directory and footer), the legacy-format downgrade switch, the
// alloc-clamp hardening of the v1/v2 loaders, and the recovery stats
// surface.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildV3Template fills a fresh durable store with meters whose series
// span sealed chunks plus a live head, snapshots it (v3 by default), adds
// post-snapshot appends that ride the WAL, closes it, and returns the dir.
func buildV3Template(t *testing.T, meters, samplesPer int) string {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, meters, samplesPer)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= int64(meters); id++ {
		if err := st.Append(id, Sample{TS: int64(samplesPer)*60 + 60, Value: 123.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func fillStore(t *testing.T, st *Store, meters, samplesPer int) {
	t.Helper()
	for id := int64(1); id <= int64(meters); id++ {
		if err := st.PutMeter(testMeter(id)); err != nil {
			t.Fatal(err)
		}
		smps := make([]Sample, samplesPer)
		for i := range smps {
			v := float64(i)*0.25 + float64(id)
			if i%97 == 0 {
				v = math.NaN() // rollup NaN accounting must survive recovery
			}
			smps[i] = Sample{TS: int64(i+1) * 60, Value: v}
		}
		if _, err := st.AppendBatch(id, smps); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotV3RoundTrip(t *testing.T) {
	// 1500 samples per meter: two sealed chunks (720 each) plus a 60-sample
	// head, so all three section parts are non-trivial.
	dir := buildV3Template(t, 6, 1500)

	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.vap"))
	if err != nil {
		t.Fatal(err)
	}
	if [4]byte(raw[:4]) != snapMagicV3 {
		t.Fatalf("default snapshot magic = %q, want VAP3", raw[:4])
	}

	for _, workers := range []int{1, 8} {
		st, err := Open(Options{Dir: dir, RecoverWorkers: workers})
		if err != nil {
			t.Fatalf("reopen with %d workers: %v", workers, err)
		}
		if got := st.Stats().Meters; got != 6 {
			t.Fatalf("workers=%d: meters = %d, want 6", workers, got)
		}
		for id := int64(1); id <= 6; id++ {
			smps, err := st.Range(id, minInt64, maxInt64)
			if err != nil {
				t.Fatal(err)
			}
			if len(smps) != 1501 {
				t.Fatalf("workers=%d meter %d: %d samples, want 1501", workers, id, len(smps))
			}
			if smps[1500].Value != 123.5 {
				t.Fatalf("workers=%d meter %d: post-snapshot WAL sample = %v", workers, id, smps[1500])
			}
		}
		checkRollupsRebuilt(t, st)
		rec := st.Recovery()
		if rec.SnapshotFormat != "v3" || rec.SnapshotMeters != 6 || rec.SnapshotChunks != 12 {
			t.Errorf("workers=%d: recovery stats = %+v", workers, rec)
		}
		if rec.WALRecords == 0 {
			t.Errorf("workers=%d: recovery reported no WAL records", workers)
		}
		st.Close()
	}
}

// TestSnapshotV3EveryByteFlipDetected proves the layout has no unprotected
// bytes: flipping any sampled byte — header, chunk payload, head samples,
// tiers, offset directory, footer — must fail the open. (The issue's
// "truncated chunk directories" case is the directory/footer span here and
// the truncation sweep below.)
func TestSnapshotV3EveryByteFlipDetected(t *testing.T) {
	dir := buildV3Template(t, 2, 800)
	path := filepath.Join(dir, "snapshot.vap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the WAL so a corrupt-but-ignored snapshot cannot be masked by
	// replayed records.
	step := len(raw) / 97
	if step < 1 {
		step = 1
	}
	for off := 0; off < len(raw); off += step {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Options{Dir: dir}); err == nil {
			t.Fatalf("byte flip at offset %d/%d loaded cleanly", off, len(raw))
		}
	}
}

// TestSnapshotV3TruncationDetected sweeps truncation points across the
// file — inside the header, meter sections, the offset directory, and the
// footer — and demands every one fails the open instead of silently
// loading a prefix.
func TestSnapshotV3TruncationDetected(t *testing.T) {
	dir := buildV3Template(t, 3, 900)
	path := filepath.Join(dir, "snapshot.vap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 4, 12, len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3}
	// Directory and footer cuts, byte by byte through the whole trailer.
	dirOff := int(binary.LittleEndian.Uint64(raw[len(raw)-snapV3FooterLen:]))
	for c := dirOff - 2; c < len(raw); c += 3 {
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(raw) {
			continue
		}
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Options{Dir: dir}); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded cleanly", cut, len(raw))
		}
	}
}

// TestSnapshotV3DirectoryOutOfBounds patches directory entries to point
// outside the section region; the loader must reject them before reading.
func TestSnapshotV3DirectoryOutOfBounds(t *testing.T) {
	dir := buildV3Template(t, 2, 100)
	path := filepath.Join(dir, "snapshot.vap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dirOff := int(binary.LittleEndian.Uint64(raw[len(raw)-snapV3FooterLen:]))
	for _, patch := range []struct {
		name string
		fn   func(ent []byte)
	}{
		{"offsetPastDirectory", func(ent []byte) { binary.LittleEndian.PutUint64(ent[8:], uint64(len(raw))) }},
		{"lengthOverrunsSections", func(ent []byte) { binary.LittleEndian.PutUint64(ent[16:], uint64(len(raw))) }},
		{"offsetIntoHeader", func(ent []byte) { binary.LittleEndian.PutUint64(ent[8:], 0) }},
	} {
		t.Run(patch.name, func(t *testing.T) {
			mut := append([]byte(nil), raw...)
			patch.fn(mut[dirOff : dirOff+snapV3DirEntryLen])
			// Re-seal the directory CRC so only the bounds check can object.
			binary.LittleEndian.PutUint32(mut[len(mut)-8:],
				crc32.ChecksumIEEE(mut[dirOff:len(mut)-snapV3FooterLen]))
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("out-of-bounds directory entry: Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestSnapshotFormatV2Downgrade pins the legacy escape hatch: format 2
// still writes VAP2 files that round-trip, and invalid formats are
// rejected at Open.
func TestSnapshotFormatV2Downgrade(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SnapshotFormat: 2})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, st, 3, 800)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.vap"))
	if err != nil {
		t.Fatal(err)
	}
	if [4]byte(raw[:4]) != snapMagicV2 {
		t.Fatalf("SnapshotFormat=2 wrote magic %q, want VAP2", raw[:4])
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Recovery().SnapshotFormat; got != "v2" {
		t.Errorf("recovery format = %q, want v2", got)
	}
	if n, _ := st2.SeriesLen(1); n != 800 {
		t.Errorf("meter 1 has %d samples after v2 round-trip, want 800", n)
	}

	if _, err := Open(Options{SnapshotFormat: 1}); err == nil {
		t.Error("Open accepted SnapshotFormat=1")
	}
}

// writeRawSnapshot assembles a legacy-layout snapshot file from body bytes
// plus the whole-file CRC the v1/v2 loaders verify first — so a test can
// place absurd interior counts behind a valid checksum.
func writeRawSnapshot(t *testing.T, dir string, body []byte) {
	t.Helper()
	data := make([]byte, len(body)+4)
	copy(data, body)
	binary.LittleEndian.PutUint32(data[len(body):], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(filepath.Join(dir, "snapshot.vap"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLegacySnapshotCountClamps pins the alloc-clamp hardening: corrupt
// count/length fields that pass the whole-file CRC (e.g. written by a
// buggy tool) must fail with ErrCorrupt instead of provoking multi-GB
// allocations in the v1/v2 loaders.
func TestLegacySnapshotCountClamps(t *testing.T) {
	app := func(b []byte, vs ...uint64) []byte {
		for _, v := range vs {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	lon := math.Float64bits(12.5)
	lat := math.Float64bits(55.6)
	cases := []struct {
		name string
		body func() []byte
	}{
		{"v2HugeResolutionCount", func() []byte {
			b := append([]byte(nil), snapMagicV2[:]...)
			return binary.LittleEndian.AppendUint32(b, 0x7fffffff)
		}},
		{"v2HugeBucketCount", func() []byte {
			b := append([]byte(nil), snapMagicV2[:]...)
			b = binary.LittleEndian.AppendUint32(b, 1) // nRes
			b = app(b, 3600)                           // res
			b = binary.LittleEndian.AppendUint32(b, 1) // nMeters
			b = app(b, 1, lon, lat)                    // id, location
			b = binary.LittleEndian.AppendUint16(b, 0) // zone len
			b = binary.LittleEndian.AppendUint32(b, 0) // nSamples
			return binary.LittleEndian.AppendUint32(b, 0x7fffffff)
		}},
		{"v1HugeZoneLength", func() []byte {
			b := append([]byte(nil), snapMagic[:]...)
			b = binary.LittleEndian.AppendUint32(b, 1) // nMeters
			b = app(b, 1, lon, lat)                    // id, location
			return binary.LittleEndian.AppendUint16(b, 0xffff)
		}},
		{"v1TruncatedSampleRun", func() []byte {
			b := append([]byte(nil), snapMagic[:]...)
			b = binary.LittleEndian.AppendUint32(b, 1) // nMeters
			b = app(b, 1, lon, lat)                    // id, location
			b = binary.LittleEndian.AppendUint16(b, 0) // zone len
			return binary.LittleEndian.AppendUint32(b, 0x7fffffff)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeRawSnapshot(t, dir, tc.body())
			_, err := Open(Options{Dir: dir})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestRecoveryStatsColdStart: an empty durability dir reports zeroed
// breakdown but the configured worker fan-out.
func TestRecoveryStatsColdStart(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir(), RecoverWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := st.Recovery()
	if rec.SnapshotFormat != "" || rec.SnapshotMeters != 0 || rec.Workers != 3 {
		t.Errorf("cold-start recovery stats = %+v", rec)
	}
}
