package store

// Crash-recovery matrix for the segmented WAL. The historical bug these
// tests pin down: a torn tail write used to be silently seeked past on
// open (new appends landed *behind* the garbage) and replay stopped at the
// first bad CRC (dropping every later record). The matrix simulates a
// crash at every byte of the final frame, between segment rotation and the
// first record, at each snapshot crash point, and — in TestWALKillRecovery
// — with a real SIGKILL mid-ingest, then proves recovery keeps every
// acknowledged sample and that post-crash appends are never lost.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vap/internal/geo"
)

const sampleFrameLen = walFrameOverhead + 24 // one recSample frame on disk

// testPoint offsets a valid reference location (central Copenhagen, like
// the rest of the test data) so every meter gets a distinct position.
func testPoint(dLon, dLat float64) geo.Point {
	return geo.Point{Lon: 12.5 + dLon, Lat: 55.6 + dLat}
}

// buildTemplate creates a durable store in a fresh dir with meter 1 and
// samples TS=1..n (each synced), closes it, and returns the dir.
func buildTemplate(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// cloneDir copies every regular file of src into a fresh temp dir, so each
// matrix entry mutates a pristine copy of the crashed state.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// sampleTSSet returns the set of timestamps stored for meter id.
func sampleTSSet(t *testing.T, st *Store, id int64) map[int64]bool {
	t.Helper()
	smps, err := st.Range(id, minInt64, maxInt64)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[int64]bool, len(smps))
	for _, s := range smps {
		set[s.TS] = true
	}
	return set
}

// rollupBucketEqual compares two buckets bitwise — NaN payloads included —
// so a tier that diverges by even one float bit is caught.
func rollupBucketEqual(a, b *RollupBucket) bool {
	return a.Start == b.Start && a.Count == b.Count && a.NaN == b.NaN &&
		math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
		math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
		math.Float64bits(a.Max) == math.Float64bits(b.Max) &&
		math.Float64bits(a.First) == math.Float64bits(b.First) &&
		math.Float64bits(a.Last) == math.Float64bits(b.Last)
}

// checkRollupsRebuilt asserts every meter's in-memory rollup tiers equal a
// from-scratch fold of the recovered raw samples — the invariant that
// recovery (snapshot tier load, WAL replay folding, or both) never
// diverges from what straight ingest would have built.
func checkRollupsRebuilt(t *testing.T, st *Store) {
	t.Helper()
	for _, id := range st.Catalog().IDs() {
		smps, err := st.Range(id, minInt64, maxInt64)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewSeriesRollup(id, st.rollupRes)
		for _, smp := range smps {
			ref.foldRollups(smp)
		}
		want := ref.captureTiers()
		sh := st.shardFor(id)
		sh.mu.RLock()
		got := sh.series[id].captureTiers()
		sh.mu.RUnlock()
		if len(got) != len(want) {
			t.Fatalf("meter %d: recovered %d tiers, want %d", id, len(got), len(want))
		}
		for i := range got {
			g, w := &got[i], &want[i]
			if g.res != w.res || len(g.interior) != len(w.interior) || g.hasTail != w.hasTail {
				t.Errorf("meter %d tier %d: shape (res=%d interior=%d tail=%t), want (res=%d interior=%d tail=%t)",
					id, i, g.res, len(g.interior), g.hasTail, w.res, len(w.interior), w.hasTail)
				continue
			}
			for j := range g.interior {
				if !rollupBucketEqual(&g.interior[j], &w.interior[j]) {
					t.Errorf("meter %d %ds tier: recovered bucket %d diverges from a from-scratch rebuild: %+v vs %+v",
						id, g.res, j, g.interior[j], w.interior[j])
					break
				}
			}
			if g.hasTail && !rollupBucketEqual(&g.tail, &w.tail) {
				t.Errorf("meter %d %ds tier: recovered tail bucket diverges: %+v vs %+v", id, g.res, g.tail, w.tail)
			}
		}
	}
}

// checkRecovery opens dir and asserts exactly wantTS survived for meter 1,
// then appends TS=100, reopens, and asserts the new sample is recoverable
// too — the headline guarantee that post-crash appends never land behind
// torn garbage.
func checkRecovery(t *testing.T, dir string, wantTS []int64) {
	t.Helper()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	got := sampleTSSet(t, st, 1)
	if len(got) != len(wantTS) {
		t.Errorf("recovered %d samples, want %d (%v)", len(got), len(wantTS), got)
	}
	for _, ts := range wantTS {
		if !got[ts] {
			t.Errorf("sample TS=%d lost in recovery", ts)
		}
	}
	checkRollupsRebuilt(t, st)
	if err := st.Append(1, Sample{TS: 100, Value: 100}); err != nil {
		t.Fatalf("post-crash append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("second recovery open: %v", err)
	}
	defer st2.Close()
	got2 := sampleTSSet(t, st2, 1)
	if !got2[100] {
		t.Error("post-crash append TS=100 was not recovered: it landed behind torn garbage")
	}
	if len(got2) != len(wantTS)+1 {
		t.Errorf("after post-crash append: %d samples, want %d", len(got2), len(wantTS)+1)
	}
}

// TestWALCrashMatrixTornTail simulates a crash at every byte boundary of
// the final frame — mid header, mid payload, mid CRC — in three flavors:
// the tail truncated there, the rest overwritten with garbage, and the
// rest zero-filled (what ext4 leaves after a size-extending crash).
func TestWALCrashMatrixTornTail(t *testing.T) {
	const n = 5
	tpl := buildTemplate(t, n)
	tail := tailSegmentPath(t, tpl)
	info, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := info.Size() - sampleFrameLen // TS=5's frame starts here
	want := []int64{1, 2, 3, 4}               // TS=5 is torn in every entry

	for cut := int64(0); cut < sampleFrameLen; cut++ {
		for _, mode := range []string{"truncate", "garbage", "zeros"} {
			t.Run(fmt.Sprintf("%s/cut=%d", mode, cut), func(t *testing.T) {
				dir := cloneDir(t, tpl)
				path := tailSegmentPath(t, dir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				torn := append([]byte(nil), data[:lastFrame+cut]...)
				switch mode {
				case "garbage":
					pad := make([]byte, int64(len(data))-lastFrame-cut)
					for i := range pad {
						pad[i] = 0xAA
					}
					torn = append(torn, pad...)
				case "zeros":
					torn = append(torn, make([]byte, int64(len(data))-lastFrame-cut)...)
				}
				if err := os.WriteFile(path, torn, 0o644); err != nil {
					t.Fatal(err)
				}
				// A fill byte can coincide with the original (e.g. a CRC
				// whose top byte is zero): the record is then genuinely
				// intact and recovery must keep it.
				if bytes.Equal(torn, data) {
					checkRecovery(t, dir, []int64{1, 2, 3, 4, 5})
					return
				}
				checkRecovery(t, dir, want)
			})
		}
	}
}

// TestWALCrashBetweenRotateAndFirstRecord simulates a kill after the next
// segment file was created but before (or part way through) its header
// write: the empty/partial tail is reinitialized and nothing in the sealed
// predecessor is lost.
func TestWALCrashBetweenRotateAndFirstRecord(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"partialMagic": walMagic[:2],
		"headerOnly":   walMagic[:],
	}
	for name, contents := range cases {
		t.Run(name, func(t *testing.T) {
			dir := cloneDir(t, buildTemplate(t, 5))
			if err := os.WriteFile(filepath.Join(dir, segmentName(2)), contents, 0o644); err != nil {
				t.Fatal(err)
			}
			checkRecovery(t, dir, []int64{1, 2, 3, 4, 5})
		})
	}
}

// frameOffsets walks a segment and returns the start offset of every
// frame of the given type.
func frameOffsets(t *testing.T, data []byte, typ byte) []int64 {
	t.Helper()
	var offs []int64
	off := walHeaderLen
	for off < len(data) {
		ft, _, end, reason := parseFrame(data, off)
		if reason != "" {
			t.Fatalf("frame walk hit malformed frame at %d: %s", off, reason)
		}
		if ft == typ {
			offs = append(offs, int64(off))
		}
		off = end
	}
	return offs
}

// TestWALInteriorCorruptionDetected flips a byte in a record that later
// commit markers prove was fsync-acknowledged. That is not a torn tail —
// acknowledged appends were damaged — so open must fail loudly with the
// corruption offset instead of silently dropping the rest (the seed's
// ReplayWAL returned nil here).
func TestWALInteriorCorruptionDetected(t *testing.T) {
	dir := cloneDir(t, buildTemplate(t, 5))
	path := tailSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second sample record's payload; the markers of the
	// later batches attest it was acknowledged.
	samples := frameOffsets(t, data, recSample)
	if len(samples) != 5 {
		t.Fatalf("template has %d sample frames, want 5", len(samples))
	}
	target := samples[1]
	data[target+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Options{Dir: dir})
	if err == nil {
		t.Fatal("interior corruption silently accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("error does not wrap ErrCorrupt: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CorruptError: %v", err)
	}
	if ce.Offset != target {
		t.Errorf("corruption offset = %d, want %d", ce.Offset, target)
	}
	if ce.Segment != path {
		t.Errorf("corruption segment = %q, want %q", ce.Segment, path)
	}
}

// TestWALTornMultiFrameBatch: a single group commit writes several frames
// in one Write, and the disk may persist those pages out of order — an
// earlier frame torn, a later frame of the same batch intact. Nothing in
// that batch was acknowledged (its fsync never returned), so recovery
// must classify it as a torn tail and truncate, not refuse to open. The
// old any-valid-frame-after heuristic got exactly this wrong.
func TestWALTornMultiFrameBatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, Sample{TS: 1, Value: 1}); err != nil {
		t.Fatal(err)
	}
	// One batch, three frames (TS 2, 3, 4), one marker ahead of it.
	if _, err := st.AppendBatch(1, []Sample{{TS: 2, Value: 2}, {TS: 3, Value: 3}, {TS: 4, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := tailSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	samples := frameOffsets(t, data, recSample)
	if len(samples) != 4 {
		t.Fatalf("template has %d sample frames, want 4", len(samples))
	}
	// Zero TS=2's frame: torn, while TS=3 and TS=4 of the same
	// unacknowledged batch survive intact after it.
	for i := samples[1]; i < samples[1]+sampleFrameLen; i++ {
		data[i] = 0
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Only TS=1 is recoverable; TS 2-4 were never acknowledged, and the
	// open must repair, not error.
	checkRecovery(t, dir, []int64{1})
}

// TestWALSealedSegmentCorruptionDetected corrupts a rotated-out segment.
// Sealed segments were fully synced before rotation, so any malformation
// there is interior corruption by construction — even at the very end.
func TestWALSealedSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SyncEveryAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil || len(idxs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err=%v)", idxs, err)
	}
	first := filepath.Join(dir, segmentName(idxs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-3] // "torn" end of a sealed segment
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("sealed-segment damage not reported as corruption: %v", err)
	}
}

// TestWALReplayNewShardCount reopens a durable store under different shard
// counts: the WAL and snapshot formats are shard-agnostic.
func TestWALReplayNewShardCount(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const meters, perMeter = 16, 20
	for m := int64(1); m <= meters; m++ {
		if err := st.PutMeter(Meter{ID: m, Location: testPoint(float64(m)*0.01, 0), Zone: ZoneResidential}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= perMeter; i++ {
			if err := st.Append(m, Sample{TS: int64(i), Value: float64(m * int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 32} {
		st2, err := Open(Options{Dir: dir, Shards: shards})
		if err != nil {
			t.Fatalf("reopen shards=%d: %v", shards, err)
		}
		stats := st2.Stats()
		if stats.Meters != meters || stats.Samples != meters*perMeter {
			t.Errorf("shards=%d: %d meters / %d samples, want %d / %d",
				shards, stats.Meters, stats.Samples, meters, meters*perMeter)
		}
		for m := int64(1); m <= meters; m++ {
			if set := sampleTSSet(t, st2, m); len(set) != perMeter {
				t.Errorf("shards=%d meter %d: %d samples, want %d", shards, m, len(set), perMeter)
			}
		}
		checkRollupsRebuilt(t, st2)
		st2.Close()
	}
}

// TestWALRotationLifecycle drives rotation with a tiny segment threshold,
// then checks replay spans segments and a snapshot retires everything
// below its watermark.
func TestWALRotationLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SyncEveryAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneCommercial}); err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 1; i <= n; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs, _ := st.WALStats(); segs < 3 {
		t.Fatalf("rotation did not happen: %d segments", segs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = Open(Options{Dir: dir, SyncEveryAppend: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if set := sampleTSSet(t, st, 1); len(set) != n {
		t.Fatalf("multi-segment replay recovered %d samples, want %d", len(set), n)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := st.WALStats(); segs != 1 {
		t.Errorf("segments after snapshot = %d, want 1 (covered segments deleted)", segs)
	}
	for i := n + 1; i <= n+10; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if set := sampleTSSet(t, st, 1); len(set) != n+10 {
		t.Errorf("snapshot+suffix recovery: %d samples, want %d", len(set), n+10)
	}
	checkRollupsRebuilt(t, st)
}

// TestRecoveryRebuildsRollups spans real tier widths (the matrix above uses
// second-scale timestamps that stay inside one bucket): days of 15-minute
// samples with NaN/±Inf readings, recovered via snapshot + WAL suffix, must
// carry tiers bit-identical to a from-scratch rebuild — including when the
// reopen asks for a tier the snapshot never persisted (derived from raw on
// load) or for no tiers at all.
func TestRecoveryRebuildsRollups(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const day = int64(86400)
	for m := int64(1); m <= 3; m++ {
		if err := st.PutMeter(Meter{ID: m, Location: testPoint(float64(m)*0.01, 0), Zone: ZoneResidential}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4*96; i++ { // four days at 15-minute cadence
			v := float64(i%7) * 1.5
			switch i % 53 {
			case 11:
				v = math.NaN()
			case 29:
				v = math.Inf(1)
			}
			if err := st.Append(m, Sample{TS: int64(i)*900 + m, Value: v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A WAL suffix past the snapshot: replay must fold these into the
	// snapshot-loaded tiers.
	for m := int64(1); m <= 3; m++ {
		for i := 4 * 96; i < 5*96; i++ {
			if err := st.Append(m, Sample{TS: int64(i)*900 + m, Value: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		res  []int64
	}{
		{"snapshotTiers", nil},                       // default hourly+daily, as persisted
		{"derivedTier", []int64{3600, 14400, 86400}}, // 4-hourly derived from raw on load
		{"singleTier", []int64{day}},                 // subset of what the snapshot holds
		{"disabled", []int64{}},                      // no tiers at all
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(Options{Dir: dir, RollupRes: tc.res})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if set := sampleTSSet(t, st, 1); len(set) != 5*96 {
				t.Fatalf("recovered %d samples, want %d", len(set), 5*96)
			}
			checkRollupsRebuilt(t, st)
		})
	}
}

// TestSnapshotCrashPoints covers the two snapshot crash windows: before
// the rename (a stray tmp file covers nothing and is dropped) and after
// the rename but before covered segments are deleted (replay overlaps the
// snapshot and must dedupe, not double-apply or fail).
func TestSnapshotCrashPoints(t *testing.T) {
	t.Run("beforeRename", func(t *testing.T) {
		dir := cloneDir(t, buildTemplate(t, 5))
		if err := os.WriteFile(filepath.Join(dir, "snapshot.vap.tmp"), []byte("partial snapshot junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		checkRecovery(t, dir, []int64{1, 2, 3, 4, 5})
		if _, err := os.Stat(filepath.Join(dir, "snapshot.vap.tmp")); !os.IsNotExist(err) {
			t.Error("stray snapshot temp file survived recovery")
		}
	})
	t.Run("beforeSegmentDelete", func(t *testing.T) {
		tpl := buildTemplate(t, 5)
		// Back up the pre-snapshot WAL segments.
		backup := cloneDir(t, tpl)
		st, err := Open(Options{Dir: tpl})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Restore the covered segments next to the durable snapshot: the
		// exact on-disk state of a crash between rename+dirsync and
		// DeleteSegmentsBelow.
		idxs, err := listSegments(backup)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range idxs {
			data, err := os.ReadFile(filepath.Join(backup, segmentName(idx)))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tpl, segmentName(idx)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		checkRecovery(t, tpl, []int64{1, 2, 3, 4, 5})
	})
}

// TestLegacyWALMigration reopens a dir laid out in the seed's single-file
// format: wal.log becomes wal-000001.log and every record survives. Both
// layouts present at once is ambiguous and must refuse to open.
func TestLegacyWALMigration(t *testing.T) {
	dir := buildTemplate(t, 5)
	// Rewind the layout to pre-segmentation: the first (only) segment has
	// the identical byte format the old wal.log used.
	if err := os.Rename(filepath.Join(dir, segmentName(1)), filepath.Join(dir, legacyWALName)); err != nil {
		t.Fatal(err)
	}
	checkRecovery(t, dir, []int64{1, 2, 3, 4, 5})
	if _, err := os.Stat(filepath.Join(dir, legacyWALName)); !os.IsNotExist(err) {
		t.Error("legacy wal.log not migrated away")
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Errorf("migrated first segment missing: %v", err)
	}

	// Ambiguous: both layouts at once.
	dir2 := buildTemplate(t, 2)
	data, err := os.ReadFile(filepath.Join(dir2, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, legacyWALName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir2}); err == nil {
		t.Error("open accepted both wal.log and wal segments in one dir")
	}
}

// TestStoreSyncFlushesBufferedAppends: appends made without
// SyncEveryAppend become durable after an explicit Sync.
func TestStoreSyncFlushesBufferedAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, CommitInterval: time.Hour}) // never auto-flush
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	meters, samples := replayDirCounts(t, dir)
	if meters != 1 || samples != 10 {
		t.Errorf("on disk after Sync: %d meters / %d samples, want 1 / 10", meters, samples)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
}

// TestSnapshotDoesNotBlockAppends proves — under the race detector — that
// a snapshot in flight no longer serializes writers: appends and iterator
// scans must *complete* strictly inside the snapshot's start/end window
// (under the old lockAll snapshot, no append could finish until the full
// disk write was done).
func TestSnapshotDoesNotBlockAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const meters, preload = 100, 2000
	base := make([]Sample, preload)
	for m := int64(1); m <= meters; m++ {
		if err := st.PutMeter(Meter{ID: m, Location: testPoint(float64(m)*0.001, 0), Zone: ZoneResidential}); err != nil {
			t.Fatal(err)
		}
		for i := range base {
			base[i] = Sample{TS: int64(i + 1), Value: float64(m)}
		}
		if _, err := st.AppendBatch(m, base); err != nil {
			t.Fatal(err)
		}
	}

	var (
		snapStart, snapEnd atomic.Int64
		during             atomic.Int64
		stop               = make(chan struct{})
		wg                 sync.WaitGroup
	)
	writer := func(m int64) {
		defer wg.Done()
		ts := int64(preload + 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Append(m, Sample{TS: ts, Value: 1}); err != nil {
				t.Errorf("append during snapshot: %v", err)
				return
			}
			now := time.Now().UnixNano()
			if s, e := snapStart.Load(), snapEnd.Load(); s != 0 && now > s && (e == 0 || now < e) {
				during.Add(1)
			}
			ts++
		}
	}
	reader := func(m int64) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := st.Iter(m, minInt64, maxInt64)
			if err != nil {
				t.Errorf("iter during snapshot: %v", err)
				return
			}
			for it.Next() {
			}
			if err := it.Err(); err != nil {
				t.Errorf("iter decode during snapshot: %v", err)
				return
			}
		}
	}
	for m := int64(1); m <= 8; m++ {
		wg.Add(2)
		go writer(m)
		go reader(m + 8)
	}
	time.Sleep(5 * time.Millisecond) // let the workers spin up
	snapStart.Store(time.Now().UnixNano())
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapEnd.Store(time.Now().UnixNano())
	close(stop)
	wg.Wait()

	if during.Load() == 0 {
		t.Error("no append completed while the snapshot was writing: snapshot still blocks writers")
	}
	if st.LastSnapshotUnix() == 0 {
		t.Error("snapshot completion time not recorded")
	}
}

// --- real-kill matrix ----------------------------------------------------

// TestWALKillRecovery SIGKILLs a child process that is appending with
// SyncEveryAppend (tiny segments force rotations; periodic snapshots open
// that crash window too), then reopens the dir and verifies every sample
// whose Append the child acknowledged is present. Acks flow over a pipe
// *after* the group commit returns, so any ack the parent observed is a
// durability promise the recovery must honor.
func TestWALKillRecovery(t *testing.T) {
	if os.Getenv("VAP_WAL_CRASH_CHILD") != "" {
		t.Skip("child-mode helper")
	}
	if testing.Short() {
		t.Skip("subprocess kill matrix skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for round, delay := range []time.Duration{80 * time.Millisecond, 160 * time.Millisecond, 300 * time.Millisecond} {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run", "TestWALCrashChild", "-test.v")
			cmd.Env = append(os.Environ(), "VAP_WAL_CRASH_CHILD=1", "VAP_WAL_CRASH_DIR="+dir)
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			var lastAck int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				r := bufio.NewReader(out)
				for {
					line, err := r.ReadString('\n')
					// Only full lines count; a torn final line is still a
					// safe claim because acks increase monotonically, but we
					// keep the parse strict and simply drop it.
					if strings.HasPrefix(line, "ACK ") && strings.HasSuffix(line, "\n") {
						if n, perr := strconv.ParseInt(strings.TrimSpace(line[4:]), 10, 64); perr == nil {
							lastAck = n
						}
					}
					if err != nil {
						return
					}
				}
			}()
			time.Sleep(delay)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait()
			<-done
			if lastAck == 0 {
				t.Skip("child made no progress before the kill; nothing to verify")
			}

			// Recover the same crashed state serially and with the worker
			// pool (the child's periodic snapshots are v3, so the parallel
			// leg drives the sectioned loader and sharded WAL replay over
			// real crash debris), each under a different shard count for
			// good measure.
			for _, workers := range []int{1, 8} {
				st, err := Open(Options{Dir: cloneDir(t, dir), Shards: 2, RecoverWorkers: workers})
				if err != nil {
					t.Fatalf("recovery after kill (workers=%d, lastAck=%d): %v", workers, lastAck, err)
				}
				defer st.Close()
				recovered := make(map[int64]map[int64]bool, 4)
				for m := int64(1); m <= 4; m++ {
					recovered[m] = sampleTSSet(t, st, m)
				}
				for i := int64(1); i <= lastAck; i++ {
					if m := i%4 + 1; !recovered[m][i] {
						t.Fatalf("acked sample %d (meter %d) lost after kill; workers=%d lastAck=%d", i, m, workers, lastAck)
					}
				}
				checkRollupsRebuilt(t, st)
				// And the store must still accept + recover new writes.
				if err := st.Append(lastAck%4+1, Sample{TS: lastAck + 1_000_000, Value: 1}); err != nil {
					t.Errorf("post-kill append (workers=%d): %v", workers, err)
				}
			}
		})
	}
}

// TestWALCrashChild is the kill-matrix child body: it runs only when
// re-executed by TestWALKillRecovery with the env marker set, appending
// synced samples round-robin over four meters and printing "ACK i" after
// each append returns, until it is killed.
func TestWALCrashChild(t *testing.T) {
	dir := os.Getenv("VAP_WAL_CRASH_DIR")
	if os.Getenv("VAP_WAL_CRASH_CHILD") == "" || dir == "" {
		t.Skip("not in child mode")
	}
	st, err := Open(Options{
		Dir:             dir,
		SyncEveryAppend: true,
		SegmentBytes:    2048, // rotate constantly so the kill can land mid-rotation
		CommitInterval:  500 * time.Microsecond,
		Shards:          4,
	})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	for m := int64(1); m <= 4; m++ {
		if err := st.PutMeter(Meter{ID: m, Location: testPoint(float64(m)*0.01, 0), Zone: ZoneResidential}); err != nil {
			t.Fatalf("child put meter: %v", err)
		}
	}
	for i := int64(1); ; i++ {
		if err := st.Append(i%4+1, Sample{TS: i, Value: float64(i)}); err != nil {
			t.Fatalf("child append %d: %v", i, err)
		}
		fmt.Printf("ACK %d\n", i)
		if i%400 == 0 {
			// Open the kill-during-snapshot window too.
			if err := st.Snapshot(); err != nil {
				t.Fatalf("child snapshot: %v", err)
			}
		}
	}
}
