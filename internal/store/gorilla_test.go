package store

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, samples []Sample) {
	t.Helper()
	enc := NewEncoder()
	for _, s := range samples {
		if err := enc.Append(s); err != nil {
			t.Fatalf("append %v: %v", s, err)
		}
	}
	got, err := Decode(enc.Bytes(), enc.Len())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i].TS != samples[i].TS {
			t.Fatalf("ts[%d] = %d, want %d", i, got[i].TS, samples[i].TS)
		}
		if got[i].Value != samples[i].Value && !(math.IsNaN(got[i].Value) && math.IsNaN(samples[i].Value)) {
			t.Fatalf("v[%d] = %v, want %v", i, got[i].Value, samples[i].Value)
		}
	}
}

func TestGorillaSingle(t *testing.T) {
	roundTrip(t, []Sample{{TS: 1514764800, Value: 1.25}})
}

func TestGorillaRegularHourly(t *testing.T) {
	samples := make([]Sample, 1000)
	for i := range samples {
		samples[i] = Sample{TS: 1514764800 + int64(i)*3600, Value: float64(i % 24)}
	}
	roundTrip(t, samples)
}

func TestGorillaConstantValues(t *testing.T) {
	samples := make([]Sample, 500)
	for i := range samples {
		samples[i] = Sample{TS: int64(i) * 3600, Value: 3.14}
	}
	roundTrip(t, samples)
	// Constant regular series should compress extremely well: first sample
	// costs 16 bytes, then ~2 bits per sample.
	enc := NewEncoder()
	for _, s := range samples {
		_ = enc.Append(s)
	}
	if enc.SizeBytes() > 16+500/4+16 {
		t.Errorf("constant series uses %d bytes for 500 samples", enc.SizeBytes())
	}
}

func TestGorillaIrregularTimestamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := int64(1e9)
	samples := make([]Sample, 300)
	for i := range samples {
		ts += 1 + int64(rng.Intn(100000))
		samples[i] = Sample{TS: ts, Value: rng.NormFloat64() * 1000}
	}
	roundTrip(t, samples)
}

func TestGorillaSpecialValues(t *testing.T) {
	roundTrip(t, []Sample{
		{TS: 1, Value: 0},
		{TS: 2, Value: math.Inf(1)},
		{TS: 3, Value: math.Inf(-1)},
		{TS: 4, Value: math.MaxFloat64},
		{TS: 5, Value: math.SmallestNonzeroFloat64},
		{TS: 6, Value: -0.0},
		{TS: 7, Value: math.NaN()},
		{TS: 8, Value: 42},
	})
}

func TestGorillaNegativeDeltas(t *testing.T) {
	// Delta-of-delta can be negative with slowing cadence.
	roundTrip(t, []Sample{
		{TS: 0, Value: 1}, {TS: 100, Value: 2}, {TS: 150, Value: 3},
		{TS: 160, Value: 4}, {TS: 161, Value: 5},
	})
}

func TestGorillaLargeDeltas(t *testing.T) {
	roundTrip(t, []Sample{
		{TS: 0, Value: 1},
		{TS: 1 << 40, Value: 2},
		{TS: 1<<40 + 10, Value: 3},
	})
}

func TestGorillaOutOfOrderRejected(t *testing.T) {
	enc := NewEncoder()
	if err := enc.Append(Sample{TS: 100, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Append(Sample{TS: 100, Value: 2}); err != ErrOutOfOrder {
		t.Errorf("equal ts: err = %v, want ErrOutOfOrder", err)
	}
	if err := enc.Append(Sample{TS: 99, Value: 2}); err != ErrOutOfOrder {
		t.Errorf("smaller ts: err = %v, want ErrOutOfOrder", err)
	}
}

func TestGorillaCompressionRatio(t *testing.T) {
	// Smooth smart-meter-like data should beat 2x compression easily.
	samples := make([]Sample, 2000)
	for i := range samples {
		samples[i] = Sample{
			TS:    1514764800 + int64(i)*3600,
			Value: math.Round(100*(1+0.5*math.Sin(float64(i)/24*2*math.Pi))) / 100,
		}
	}
	enc := NewEncoder()
	for _, s := range samples {
		_ = enc.Append(s)
	}
	raw := len(samples) * 16
	if ratio := float64(raw) / float64(enc.SizeBytes()); ratio < 2 {
		t.Errorf("compression ratio = %.2f, want >= 2", ratio)
	}
}

func TestGorillaDecodeTruncated(t *testing.T) {
	enc := NewEncoder()
	for i := 0; i < 100; i++ {
		_ = enc.Append(Sample{TS: int64(i) * 60, Value: float64(i)})
	}
	data := enc.Bytes()
	// Claim more samples than encoded.
	if _, err := Decode(data, 200); err == nil {
		t.Error("decode with inflated count should fail")
	}
	// Truncated payload.
	if _, err := Decode(data[:4], 100); err == nil {
		t.Error("decode of truncated payload should fail")
	}
}

func TestGorillaIterator(t *testing.T) {
	enc := NewEncoder()
	for i := 0; i < 50; i++ {
		_ = enc.Append(Sample{TS: int64(i), Value: float64(i) * 1.5})
	}
	it := NewIterator(enc.Bytes(), 50)
	n := 0
	for it.Next() {
		s := it.Sample()
		if s.TS != int64(n) || s.Value != float64(n)*1.5 {
			t.Fatalf("iter[%d] = %+v", n, s)
		}
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 50 {
		t.Fatalf("iterated %d, want 50", n)
	}
	// Next after exhaustion stays false.
	if it.Next() {
		t.Error("Next after end returned true")
	}
}

func TestGorillaQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		samples := make([]Sample, n)
		ts := rng.Int63n(1 << 40)
		for i := range samples {
			ts += 1 + rng.Int63n(1<<20)
			v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)))
			samples[i] = Sample{TS: ts, Value: v}
		}
		enc := NewEncoder()
		for _, s := range samples {
			if err := enc.Append(s); err != nil {
				return false
			}
		}
		got, err := Decode(enc.Bytes(), n)
		if err != nil || len(got) != n {
			return false
		}
		for i := range samples {
			if got[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitStreamRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		w := newBitWriter()
		for _, v := range vals {
			w.writeBits(uint64(v), 16)
		}
		r := newBitReader(w.bytes())
		for _, v := range vals {
			got, err := r.readBits(16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitStreamMixedWidths(t *testing.T) {
	w := newBitWriter()
	w.writeBit(true)
	w.writeBits(0b101, 3)
	w.writeBits(0xdeadbeef, 32)
	w.writeBit(false)
	w.writeBits(0x3f, 6)
	r := newBitReader(w.bytes())
	if b, _ := r.readBit(); !b {
		t.Fatal("bit 1")
	}
	if v, _ := r.readBits(3); v != 0b101 {
		t.Fatalf("3 bits = %b", v)
	}
	if v, _ := r.readBits(32); v != 0xdeadbeef {
		t.Fatalf("32 bits = %x", v)
	}
	if b, _ := r.readBit(); b {
		t.Fatal("bit 0")
	}
	if v, _ := r.readBits(6); v != 0x3f {
		t.Fatalf("6 bits = %x", v)
	}
	if _, err := r.readBit(); err == nil {
		// Depending on padding, remaining bits may exist in the final byte;
		// reading beyond must eventually fail.
		for i := 0; i < 16; i++ {
			if _, err := r.readBit(); err != nil {
				return
			}
		}
		t.Error("reader never reached end of stream")
	}
}

func TestBitLen(t *testing.T) {
	w := newBitWriter()
	if w.bitLen() != 0 {
		t.Fatalf("empty bitLen = %d", w.bitLen())
	}
	w.writeBit(true)
	w.writeBits(0, 10)
	if w.bitLen() != 11 {
		t.Fatalf("bitLen = %d, want 11", w.bitLen())
	}
}
