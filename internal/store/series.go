package store

import (
	"errors"
)

// chunkTargetSamples is the flush threshold of the in-progress chunk.
const chunkTargetSamples = 720 // one month of hourly readings

// chunk is an immutable compressed block of samples.
type chunk struct {
	minTS, maxTS int64
	count        int
	payload      []byte
}

// Series is an append-only compressed time series for one meter.
// It is not internally synchronized; Store serializes access.
type Series struct {
	MeterID int64
	sealed  []*chunk
	head    *Encoder
	// headMinTS caches the first timestamp of the head block so Bounds and
	// window pruning never decode the head just to read a timestamp. Valid
	// only while head.Len() > 0.
	headMinTS int64
	total     int
	// ver is the per-meter version: bumped on every mutation of this meter
	// (Append here; registration/replacement by the Store). Guarded by the
	// owner's shard lock, like every other field.
	ver uint64
	// rollups are the pre-aggregated tiers maintained on append; see
	// rollup.go. Empty when the owning store disables rollups.
	rollups []rollupTier
}

// NewSeries returns an empty series for the given meter, with no rollup
// tiers. A fresh series starts at version 1: its registration is itself a
// mutation.
func NewSeries(meterID int64) *Series {
	return &Series{MeterID: meterID, head: NewEncoder(), ver: 1}
}

// NewSeriesRollup returns an empty series maintaining rollup tiers at the
// given resolutions (seconds, ascending).
func NewSeriesRollup(meterID int64, res []int64) *Series {
	s := NewSeries(meterID)
	s.rollups = make([]rollupTier, len(res))
	for i, r := range res {
		s.rollups[i] = rollupTier{res: r}
	}
	return s
}

// Version returns the per-meter version.
func (s *Series) Version() uint64 { return s.ver }

// Len returns the total number of stored samples.
func (s *Series) Len() int { return s.total }

// LastTS returns the most recent timestamp, or 0 when empty.
func (s *Series) LastTS() int64 {
	if s.head.Len() > 0 {
		return s.head.LastTS()
	}
	if n := len(s.sealed); n > 0 {
		return s.sealed[n-1].maxTS
	}
	return 0
}

// CheckAppend reports whether Append(smp) would succeed, without mutating
// the series. The store uses it to validate a sample before enqueueing its
// WAL record, so the log is never ahead of what memory will accept — and a
// WAL failure can return before memory is touched.
func (s *Series) CheckAppend(smp Sample) error {
	if s.total > 0 && smp.TS <= s.LastTS() {
		return ErrOutOfOrder
	}
	return nil
}

// Append adds one sample. Timestamps must be strictly increasing across the
// series lifetime.
func (s *Series) Append(smp Sample) error {
	if err := s.appendRaw(smp); err != nil {
		return err
	}
	s.foldRollups(smp)
	return nil
}

// appendRaw is Append without the rollup fold: the bulk-load path for v2
// snapshots, whose tiers are persisted and installed separately (folding
// here too would double-count).
func (s *Series) appendRaw(smp Sample) error {
	if err := s.CheckAppend(smp); err != nil {
		return err
	}
	if s.head.Len() == 0 {
		s.headMinTS = smp.TS
	}
	if err := s.head.Append(smp); err != nil {
		return err
	}
	s.total++
	s.ver++
	if s.head.Len() >= chunkTargetSamples {
		s.seal()
	}
	return nil
}

// seal freezes the head encoder into an immutable chunk.
func (s *Series) seal() {
	if s.head.Len() == 0 {
		return
	}
	payload := s.head.Bytes()
	samples, err := Decode(payload, s.head.Len())
	if err != nil || len(samples) == 0 {
		// A decode failure here indicates an encoder bug; keep data raw in
		// the head rather than lose it. This path is exercised in tests via
		// corruption injection only.
		return
	}
	s.sealed = append(s.sealed, &chunk{
		minTS:   samples[0].TS,
		maxTS:   samples[len(samples)-1].TS,
		count:   len(samples),
		payload: payload,
	})
	s.head = NewEncoder()
}

// captureChunks snapshots the series for a v3 (chunk-verbatim) snapshot:
// the sealed chunk list is aliased as-is (chunks are immutable) and the
// head block is copied, applying the same chunk-granular retention rule as
// retainedFrom — sealed chunks wholly older than cutoff are left out.
// Caller holds the owning shard lock.
func (s *Series) captureChunks(cutoff int64) (chunks []*chunk, headPayload []byte, headCount int) {
	for _, c := range s.sealed {
		if c.maxTS < cutoff {
			continue
		}
		chunks = append(chunks, c)
	}
	if s.head.Len() > 0 {
		headPayload, headCount = s.head.Bytes(), s.head.Len()
	}
	return chunks, headPayload, headCount
}

// installChunks bulk-loads a v3 snapshot section into an empty series:
// sealed chunks are installed wholesale — no decode, no re-encode — and
// the head samples (the one part a snapshot must materialize, since an
// Encoder cannot resume from payload bytes) are re-appended through
// appendRaw. No rollup folding: v3 tiers are persisted and installed
// separately, like v2. Version accounting matches the sample-at-a-time
// path exactly (+1 per sample on top of the registration version), so a
// chunk-installed series fingerprints identically to a replayed one.
func (s *Series) installChunks(chunks []*chunk, head []Sample) error {
	if s.total != 0 || len(s.sealed) != 0 {
		return errors.New("store: installChunks on a non-empty series")
	}
	last := int64(minInt64)
	for _, c := range chunks {
		if c.count <= 0 || c.minTS > c.maxTS {
			return ErrCorrupt
		}
		if len(s.sealed) > 0 && c.minTS <= last {
			return ErrCorrupt // chunks must be strictly ascending
		}
		s.sealed = append(s.sealed, c)
		s.total += c.count
		s.ver += uint64(c.count)
		last = c.maxTS
	}
	for _, smp := range head {
		// appendRaw validates ordering against the last sealed chunk too.
		if err := s.appendRaw(smp); err != nil {
			return err
		}
	}
	return nil
}

// CompressedBytes returns the total compressed payload size in bytes.
func (s *Series) CompressedBytes() int {
	n := s.head.SizeBytes()
	for _, c := range s.sealed {
		n += len(c.payload)
	}
	return n
}

// Range returns all samples with from <= TS < to, in timestamp order,
// materialized from the pushdown iterator.
func (s *Series) Range(from, to int64) ([]Sample, error) {
	var out []Sample
	it := s.Iter(from, to)
	for it.Next() {
		out = append(out, it.Sample())
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// All returns every sample in order.
func (s *Series) All() ([]Sample, error) {
	if s.total == 0 {
		return nil, nil
	}
	return s.Range(minInt64, maxInt64)
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// ErrEmptySeries is returned by operations requiring data.
var ErrEmptySeries = errors.New("store: empty series")

// retainedFrom returns the first timestamp retention at cutoff keeps:
// whole sealed chunks with maxTS < cutoff age out, everything from the
// first surviving chunk (or the head) stays. Chunk-granular on purpose —
// the snapshot capture and the in-memory prune apply the same rule, so
// what a retention-trimmed snapshot persists is exactly what memory keeps.
// Returns the retained sample count alongside; (0, 0) for an all-aged or
// empty series.
func (s *Series) retainedFrom(cutoff int64) (from int64, count int) {
	count = s.total
	for _, c := range s.sealed {
		if c.maxTS >= cutoff {
			return c.minTS, count
		}
		count -= c.count
	}
	if s.head.Len() > 0 {
		return s.headMinTS, count
	}
	return 0, 0
}

// pruneRawBefore drops sealed chunks wholly older than cutoff (the
// retention rule of retainedFrom), bumping the version when anything was
// dropped so caches keyed on it invalidate — aging raw data out changes
// what raw scans observe. Rollup tiers are untouched: they are what
// survives. Returns the number of samples dropped.
func (s *Series) pruneRawBefore(cutoff int64) int {
	n, dropped := 0, 0
	for n < len(s.sealed) && s.sealed[n].maxTS < cutoff {
		dropped += s.sealed[n].count
		n++
	}
	if n == 0 {
		return 0
	}
	s.total -= dropped
	s.sealed = append([]*chunk(nil), s.sealed[n:]...)
	s.ver++
	return dropped
}

// Bounds returns the first and last timestamps. Both ends are O(1): chunk
// boundaries and the head min/max are tracked on append, never decoded.
func (s *Series) Bounds() (first, last int64, err error) {
	if s.total == 0 {
		return 0, 0, ErrEmptySeries
	}
	if len(s.sealed) > 0 {
		first = s.sealed[0].minTS
	} else {
		first = s.headMinTS
	}
	return first, s.LastTS(), nil
}
