package store

import (
	"errors"
	"sort"
)

// chunkTargetSamples is the flush threshold of the in-progress chunk.
const chunkTargetSamples = 720 // one month of hourly readings

// chunk is an immutable compressed block of samples.
type chunk struct {
	minTS, maxTS int64
	count        int
	payload      []byte
}

func (c *chunk) samples() ([]Sample, error) {
	return Decode(c.payload, c.count)
}

// Series is an append-only compressed time series for one meter.
// It is not internally synchronized; Store serializes access.
type Series struct {
	MeterID int64
	sealed  []*chunk
	head    *Encoder
	total   int
}

// NewSeries returns an empty series for the given meter.
func NewSeries(meterID int64) *Series {
	return &Series{MeterID: meterID, head: NewEncoder()}
}

// Len returns the total number of stored samples.
func (s *Series) Len() int { return s.total }

// LastTS returns the most recent timestamp, or 0 when empty.
func (s *Series) LastTS() int64 {
	if s.head.Len() > 0 {
		return s.head.LastTS()
	}
	if n := len(s.sealed); n > 0 {
		return s.sealed[n-1].maxTS
	}
	return 0
}

// Append adds one sample. Timestamps must be strictly increasing across the
// series lifetime.
func (s *Series) Append(smp Sample) error {
	if s.total > 0 && smp.TS <= s.LastTS() {
		return ErrOutOfOrder
	}
	if err := s.head.Append(smp); err != nil {
		return err
	}
	s.total++
	if s.head.Len() >= chunkTargetSamples {
		s.seal()
	}
	return nil
}

// seal freezes the head encoder into an immutable chunk.
func (s *Series) seal() {
	if s.head.Len() == 0 {
		return
	}
	payload := s.head.Bytes()
	samples, err := Decode(payload, s.head.Len())
	if err != nil || len(samples) == 0 {
		// A decode failure here indicates an encoder bug; keep data raw in
		// the head rather than lose it. This path is exercised in tests via
		// corruption injection only.
		return
	}
	s.sealed = append(s.sealed, &chunk{
		minTS:   samples[0].TS,
		maxTS:   samples[len(samples)-1].TS,
		count:   len(samples),
		payload: payload,
	})
	s.head = NewEncoder()
}

// CompressedBytes returns the total compressed payload size in bytes.
func (s *Series) CompressedBytes() int {
	n := s.head.SizeBytes()
	for _, c := range s.sealed {
		n += len(c.payload)
	}
	return n
}

// Range returns all samples with from <= TS < to, in timestamp order.
func (s *Series) Range(from, to int64) ([]Sample, error) {
	if to <= from {
		return nil, nil
	}
	var out []Sample
	for _, c := range s.sealed {
		if c.maxTS < from || c.minTS >= to {
			continue
		}
		samples, err := c.samples()
		if err != nil {
			return nil, err
		}
		// Binary search the start within the chunk.
		i := sort.Search(len(samples), func(k int) bool { return samples[k].TS >= from })
		for ; i < len(samples) && samples[i].TS < to; i++ {
			out = append(out, samples[i])
		}
	}
	if s.head.Len() > 0 {
		headSamples, err := Decode(s.head.Bytes(), s.head.Len())
		if err != nil {
			return nil, err
		}
		for _, smp := range headSamples {
			if smp.TS >= from && smp.TS < to {
				out = append(out, smp)
			}
		}
	}
	return out, nil
}

// All returns every sample in order.
func (s *Series) All() ([]Sample, error) {
	if s.total == 0 {
		return nil, nil
	}
	return s.Range(minInt64, maxInt64)
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// ErrEmptySeries is returned by operations requiring data.
var ErrEmptySeries = errors.New("store: empty series")

// Bounds returns the first and last timestamps.
func (s *Series) Bounds() (first, last int64, err error) {
	if s.total == 0 {
		return 0, 0, ErrEmptySeries
	}
	if len(s.sealed) > 0 {
		first = s.sealed[0].minTS
	} else {
		headSamples, derr := Decode(s.head.Bytes(), s.head.Len())
		if derr != nil {
			return 0, 0, derr
		}
		first = headSamples[0].TS
	}
	return first, s.LastTS(), nil
}
