package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL record types.
const (
	recMeter  byte = 1
	recSample byte = 2
	// recCommit is a commit marker: the committer prefixes every batch
	// with one, and since batch N is only ever written after batch N-1's
	// fsync returned, a valid marker at segment offset P proves every
	// byte in [0, P) was fsync-acknowledged. Its payload is its own
	// segment offset, so a random byte run cannot masquerade as one.
	// Recovery uses markers to distinguish interior corruption (damage
	// below an attested offset: acknowledged data, fail loudly) from a
	// torn tail (damage with no attestation after it: the crash
	// interrupted an unacknowledged batch, truncate) — exactly, instead
	// of guessing from whether any later frame happens to be intact,
	// which misfires when a multi-frame batch write tears out of order.
	recCommit byte = 3
)

// walMagic begins every WAL segment file.
var walMagic = [4]byte{'V', 'A', 'P', 'W'}

const (
	walHeaderLen     = 4                    // segment magic
	walFrameOverhead = 9                    // 1 type + 4 length + 4 crc
	markerFrameLen   = walFrameOverhead + 8 // one recCommit frame on disk
	maxWALRecord     = 1 << 20              // sanity bound on a single payload
	segPrefix        = "wal-"               // segment file name prefix
	segSuffix        = ".log"               // segment file name suffix
	legacyWALName    = "wal.log"            // pre-segmentation single-file layout

	// maxBatchBytes bounds the pending group-commit buffer: an enqueue
	// into a full batch blocks until the committer drains it, so a
	// stalled disk applies backpressure to buffered appenders instead of
	// growing the heap without limit. A single oversized enqueue is still
	// accepted into an empty batch so large AppendBatch calls cannot
	// wedge.
	maxBatchBytes = 4 << 20

	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 64 << 20
	// DefaultCommitInterval is the background group-commit flush cadence
	// when Options.CommitInterval is zero.
	DefaultCommitInterval = 2 * time.Millisecond
)

// ErrWALClosed is returned by appends to a closed WAL.
var ErrWALClosed = errors.New("store: WAL closed")

// CorruptError reports interior WAL corruption: a malformed record that is
// followed by valid data, so stopping replay there would silently drop
// records whose appends had already been acknowledged. It wraps ErrCorrupt.
type CorruptError struct {
	Segment string // file path of the corrupt segment
	Offset  int64  // byte offset of the malformed frame
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt WAL record in %s at byte %d: %s", e.Segment, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// walBatch is one group-commit unit: the frames of every append that
// arrived since the previous commit, written and fsynced together.
type walBatch struct {
	buf    []byte
	forced bool // commit even if buf is empty (Sync)
	rotate bool // rotate to a fresh segment after committing (snapshots)
	done   chan struct{}
	err    error
}

func newWALBatch() *walBatch { return &walBatch{done: make(chan struct{})} }

// WALCommit is a handle on the group commit that will make an enqueued
// record durable. Wait blocks until the batch has been written and fsynced
// (or has failed) and returns the batch's outcome.
type WALCommit struct{ b *walBatch }

// Wait blocks until the record's commit completes.
func (c *WALCommit) Wait() error {
	<-c.b.done
	return c.b.err
}

// WAL is a segmented append-only write-ahead log providing crash
// durability between snapshots. Records are framed with a CRC32 and
// written to numbered segment files (wal-000001.log, ...) that rotate at
// SegmentBytes. Appends from concurrent callers are group-committed: the
// committer goroutine batches everything enqueued since the last commit
// into one write+fsync, so durable throughput scales with concurrency
// instead of fsync count. On open, the tail segment is scanned and
// truncated to the last valid record boundary, so a post-crash append can
// never land behind a torn record.
type WAL struct {
	dir      string
	segBytes int64
	interval time.Duration

	mu       sync.Mutex
	cur      *walBatch
	err      error // sticky commit failure: all later appends fail fast
	closed   bool
	f        *os.File // tail segment, append position
	tailIdx  uint64
	tailSize int64            // bytes written to the tail segment
	sealed   map[uint64]int64 // sizes of full (rotated-out) segments

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// walOptions configures OpenWAL.
type walOptions struct {
	SegmentBytes   int64
	CommitInterval time.Duration
}

func segmentName(idx uint64) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, idx, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil || idx == 0 {
		return 0, false
	}
	return idx, true
}

func (w *WAL) segPath(idx uint64) string { return filepath.Join(w.dir, segmentName(idx)) }

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listSegments returns the segment indices present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range ents {
		if idx, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// OpenWAL opens (or creates) the segmented log in dir for appending. A
// legacy single-file wal.log is migrated to wal-000001.log on first open.
// The tail segment is truncated to its last valid record boundary, which
// is the crash-recovery guarantee: appends resume exactly where the valid
// prefix ends, never behind garbage left by a torn write.
func OpenWAL(dir string, opts walOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.CommitInterval <= 0 {
		opts.CommitInterval = DefaultCommitInterval
	}
	idxs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Migrate the legacy single-file layout: the old wal.log becomes the
	// first segment. Both layouts present at once is an ambiguous state we
	// refuse to guess about.
	legacy := filepath.Join(dir, legacyWALName)
	if _, err := os.Stat(legacy); err == nil {
		if len(idxs) > 0 {
			return nil, fmt.Errorf("store: both %s and wal segments exist in %s; remove one", legacyWALName, dir)
		}
		if err := os.Rename(legacy, filepath.Join(dir, segmentName(1))); err != nil {
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
		idxs = []uint64{1}
	}
	w := &WAL{
		dir:      dir,
		segBytes: opts.SegmentBytes,
		interval: opts.CommitInterval,
		cur:      newWALBatch(),
		sealed:   make(map[uint64]int64),
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if len(idxs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		for _, idx := range idxs[:len(idxs)-1] {
			st, err := os.Stat(w.segPath(idx))
			if err != nil {
				return nil, err
			}
			w.sealed[idx] = st.Size()
		}
		tail := idxs[len(idxs)-1]
		size, err := w.repairTail(tail)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(w.segPath(tail), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f, w.tailIdx, w.tailSize = f, tail, size
	}
	go w.run()
	return w, nil
}

// prepareSegment creates a fresh segment file with the magic header and
// makes it durable (file fsync, then directory fsync). This is the one
// copy of the creation protocol; both the initial open and rotation use
// it, so crash-safety fixes cannot drift between the two paths.
func (w *WAL) prepareSegment(idx uint64) (*os.File, error) {
	f, err := os.OpenFile(w.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// createSegment prepares a fresh segment and installs it as the tail.
func (w *WAL) createSegment(idx uint64) error {
	f, err := w.prepareSegment(idx)
	if err != nil {
		return err
	}
	w.f, w.tailIdx, w.tailSize = f, idx, walHeaderLen
	return nil
}

// repairTail scans the tail segment and truncates it to the last valid
// record boundary. It returns the repaired size. A file too short to hold
// the magic (a crash between segment creation and the header write) is
// reinitialized; a malformed record with valid records after it is
// interior corruption and fails the open.
func (w *WAL) repairTail(idx uint64) (int64, error) {
	path := w.segPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < walHeaderLen {
		// Torn segment creation: rewrite the header in place.
		if err := os.WriteFile(path, walMagic[:], 0o644); err != nil {
			return 0, err
		}
		if err := syncDir(w.dir); err != nil {
			return 0, err
		}
		return walHeaderLen, nil
	}
	validEnd, err := scanSegment(path, data, true, nil, nil)
	if err != nil {
		return 0, err
	}
	if validEnd < int64(len(data)) {
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return 0, err
		}
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	return validEnd, nil
}

// --- framing ------------------------------------------------------------

// appendFrame frames one record onto dst: type, length, payload, crc.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	return append(dst, tail[:]...)
}

func meterPayload(m Meter) []byte {
	zone := []byte(m.Zone)
	payload := make([]byte, 26+len(zone))
	binary.LittleEndian.PutUint64(payload[0:], uint64(m.ID))
	binary.LittleEndian.PutUint64(payload[8:], float64Bits(m.Location.Lon))
	binary.LittleEndian.PutUint64(payload[16:], float64Bits(m.Location.Lat))
	binary.LittleEndian.PutUint16(payload[24:], uint16(len(zone)))
	copy(payload[26:], zone)
	return payload
}

func samplePayload(dst []byte, meterID int64, s Sample) []byte {
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[0:], uint64(meterID))
	binary.LittleEndian.PutUint64(payload[8:], uint64(s.TS))
	binary.LittleEndian.PutUint64(payload[16:], float64Bits(s.Value))
	return append(dst, payload[:]...)
}

// --- appending (group commit) --------------------------------------------

// enqueue adds framed records to the current batch. When syncWait is set
// the committer is woken immediately and the returned commit handle is
// non-nil; otherwise the record rides the next background flush (at most
// CommitInterval away) and the handle is nil. A sticky commit failure or a
// closed WAL fails fast here, before the caller mutates any other state.
// An enqueue into a batch already holding maxBatchBytes blocks until the
// committer drains it (backpressure), then retries against the fresh one.
func (w *WAL) enqueue(frames []byte, syncWait bool) (*WALCommit, error) {
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return nil, ErrWALClosed
		}
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return nil, err
		}
		b := w.cur
		if len(b.buf) > 0 && len(b.buf)+len(frames) > maxBatchBytes {
			w.mu.Unlock()
			w.signal()
			<-b.done // backpressure: wait out the in-flight/full batch
			continue
		}
		b.buf = append(b.buf, frames...)
		w.mu.Unlock()
		if !syncWait {
			return nil, nil
		}
		w.signal()
		return &WALCommit{b: b}, nil
	}
}

func (w *WAL) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// AppendMeter logs a meter registration.
func (w *WAL) AppendMeter(m Meter, syncWait bool) (*WALCommit, error) {
	return w.enqueue(appendFrame(nil, recMeter, meterPayload(m)), syncWait)
}

// AppendSample logs one sample append.
func (w *WAL) AppendSample(meterID int64, s Sample, syncWait bool) (*WALCommit, error) {
	return w.enqueue(appendFrame(nil, recSample, samplePayload(nil, meterID, s)), syncWait)
}

// AppendSamples logs a batch of samples for one meter as a single enqueue,
// so the whole batch lands in one commit.
func (w *WAL) AppendSamples(meterID int64, smps []Sample, syncWait bool) (*WALCommit, error) {
	frames := make([]byte, 0, len(smps)*(24+walFrameOverhead))
	for _, s := range smps {
		frames = appendFrame(frames, recSample, samplePayload(nil, meterID, s))
	}
	return w.enqueue(frames, syncWait)
}

// Sync forces a commit of everything enqueued so far and waits for it.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	b := w.cur
	b.forced = true
	w.mu.Unlock()
	w.signal()
	c := WALCommit{b: b}
	return c.Wait()
}

// run is the committer: the only goroutine that writes segment files. It
// commits promptly when a sync appender (or Sync/CutSegment) signals, and
// on the CommitInterval ticker so buffered, non-waited appends still reach
// disk within one interval.
func (w *WAL) run() {
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.quit:
			w.commit()
			close(w.done)
			return
		case <-w.wake:
			w.commit()
		case <-ticker.C:
			w.commit()
		}
	}
}

// commit swaps out the current batch and makes it durable: one write, one
// fsync, and a rotation when the segment crossed SegmentBytes (or the
// batch requested one). Failures are sticky — once a commit fails the WAL
// refuses further appends, so in-memory state can never run ahead of a log
// that silently stopped persisting.
func (w *WAL) commit() {
	// Let appenders that are already runnable finish enqueueing before the
	// batch is sealed: a wave of concurrent sync appends then shares one
	// fsync instead of being split across several partial commits. Costs
	// one scheduler pass (~µs) on the solo-appender path.
	runtime.Gosched()
	w.mu.Lock()
	b := w.cur
	if len(b.buf) == 0 && !b.forced && !b.rotate {
		w.mu.Unlock()
		return
	}
	w.cur = newWALBatch()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		b.err = err
		close(b.done)
		return
	}
	f := w.f
	w.mu.Unlock()

	err := w.writeBatch(f, b)
	if err != nil {
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		w.mu.Unlock()
	}
	b.err = err
	close(b.done)
}

func (w *WAL) writeBatch(f *os.File, b *walBatch) error {
	if len(b.buf) > 0 {
		w.mu.Lock()
		off := w.tailSize
		w.mu.Unlock()
		// Lead with the commit marker. This batch is only being written
		// because every previous commit's fsync returned, so a marker
		// persisted at offset `off` — even by a torn, never-acknowledged
		// write — truthfully attests that [0, off) is durable. The
		// payload repeats the offset so recovery can reject byte runs
		// that merely look like markers.
		var pos [8]byte
		binary.LittleEndian.PutUint64(pos[:], uint64(off))
		out := appendFrame(make([]byte, 0, markerFrameLen+len(b.buf)), recCommit, pos[:])
		out = append(out, b.buf...)
		if _, err := f.Write(out); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		w.mu.Lock()
		w.tailSize += int64(len(out))
		w.mu.Unlock()
	}
	w.mu.Lock()
	size := w.tailSize
	w.mu.Unlock()
	if size >= w.segBytes || (b.rotate && size > walHeaderLen) {
		return w.rotate()
	}
	return nil
}

// rotate seals the tail segment and opens the next one. The old segment is
// already fsynced (every commit syncs), so after the new segment and the
// directory are synced, all sealed segments are complete by construction —
// torn records can only ever exist in the tail.
func (w *WAL) rotate() error {
	w.mu.Lock()
	oldF, oldIdx, oldSize := w.f, w.tailIdx, w.tailSize
	newIdx := w.tailIdx + 1
	w.mu.Unlock()

	f, err := w.prepareSegment(newIdx)
	if err != nil {
		return err
	}
	if err := oldF.Close(); err != nil {
		f.Close()
		return err
	}
	w.mu.Lock()
	w.sealed[oldIdx] = oldSize
	w.f, w.tailIdx, w.tailSize = f, newIdx, walHeaderLen
	w.mu.Unlock()
	return nil
}

// CutSegment commits everything pending and rotates to a fresh tail
// segment, returning the new tail index W. Every record enqueued before
// the call lives in a segment with index < W; a snapshot capturing
// in-memory state after CutSegment returns therefore covers all of them,
// and DeleteSegmentsBelow(W) is safe once that snapshot is durable. If the
// tail is already bare the rotation is skipped and the current index is
// returned.
func (w *WAL) CutSegment() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.tailSize == walHeaderLen && len(w.cur.buf) == 0 {
		idx := w.tailIdx
		w.mu.Unlock()
		return idx, nil
	}
	b := w.cur
	b.forced = true
	b.rotate = true
	w.mu.Unlock()
	w.signal()
	c := WALCommit{b: b}
	if err := c.Wait(); err != nil {
		return 0, err
	}
	w.mu.Lock()
	idx := w.tailIdx
	w.mu.Unlock()
	return idx, nil
}

// DeleteSegmentsBelow removes every sealed segment with index < idx (all
// of whose records are covered by a durable snapshot) and fsyncs the
// directory.
func (w *WAL) DeleteSegmentsBelow(idx uint64) error {
	w.mu.Lock()
	var victims []uint64
	for i := range w.sealed {
		if i < idx {
			victims = append(victims, i)
		}
	}
	w.mu.Unlock()
	// Untrack a segment only once its file is actually gone: a failed
	// remove stays in the sealed map, keeps counting in SegmentStats, and
	// is retried by the next snapshot instead of leaking on disk.
	var firstErr error
	removed := victims[:0]
	for _, i := range victims {
		if err := os.Remove(w.segPath(i)); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed = append(removed, i)
	}
	w.mu.Lock()
	for _, i := range removed {
		delete(w.sealed, i)
	}
	w.mu.Unlock()
	if len(removed) > 0 {
		if err := syncDir(w.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SegmentStats returns the number of live segment files and their total
// on-disk bytes.
func (w *WAL) SegmentStats() (segments int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, sz := range w.sealed {
		bytes += sz
	}
	return len(w.sealed) + 1, bytes + w.tailSize
}

// Close commits everything pending and closes the tail segment. Appends
// after Close fail with ErrWALClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWALClosed
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	w.mu.Lock()
	err := w.err
	f := w.f
	w.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- replay --------------------------------------------------------------

// Replay reads every live segment in order, invoking the callbacks per
// record. OpenWAL has already truncated any torn tail, so a malformed
// record seen here is interior corruption and is reported as a
// CorruptError carrying the segment path and byte offset — never silently
// skipped, because records after it were acknowledged appends.
func (w *WAL) Replay(onMeter func(Meter) error, onSample func(int64, Sample) error) error {
	w.mu.Lock()
	idxs := make([]uint64, 0, len(w.sealed)+1)
	for i := range w.sealed {
		idxs = append(idxs, i)
	}
	idxs = append(idxs, w.tailIdx)
	w.mu.Unlock()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		path := w.segPath(idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := scanSegment(path, data, false, onMeter, onSample); err != nil {
			return err
		}
	}
	return nil
}

// scanSegment walks the frames of one segment, dispatching each valid
// record to the callbacks (which may be nil: scan only). It returns the
// byte offset just past the last valid frame.
//
// A malformed frame in the tail is classified by commit-marker
// attestation, not by guessing from later frames. A valid marker at
// offset P proves [0, P) was fsync-acknowledged (markers are only ever
// written after the previous commit's fsync returned), so damage below
// some marker is interior corruption — acknowledged records were lost,
// replay must fail loudly with the offset. Damage with no marker after it
// sits entirely in the last, unacknowledged batch: a torn tail, and the
// scan stops cleanly so the caller truncates. (A CRC-valid non-marker
// frame after the damage attests nothing: a multi-frame batch write can
// tear out of order, persisting a later frame while an earlier one is
// garbage, and none of it was acknowledged.) Sealed (non-tail) segments
// were fully synced before rotation, so isTail=false treats any
// malformation as interior corruption.
func scanSegment(path string, data []byte, isTail bool, onMeter func(Meter) error, onSample func(int64, Sample) error) (int64, error) {
	if len(data) < walHeaderLen {
		if isTail {
			return 0, nil
		}
		return 0, &CorruptError{Segment: path, Offset: 0, Reason: "segment shorter than header"}
	}
	if [4]byte(data[:4]) != walMagic {
		return 0, fmt.Errorf("store: %s is not a VAP WAL segment", path)
	}
	off := walHeaderLen
	for off < len(data) {
		typ, payload, end, reason := parseFrame(data, off)
		if reason != "" {
			if !isTail {
				return int64(off), &CorruptError{Segment: path, Offset: int64(off), Reason: reason}
			}
			// Resync-scan for a commit marker attesting past the damage.
			// Marker payloads repeat their own offset, so a random byte
			// run at j cannot pose as one. Only marker frames matter here,
			// so skip other bytes before paying for a frame parse (which
			// can CRC up to maxWALRecord bytes per candidate).
			for j := off + 1; j+markerFrameLen <= len(data); j++ {
				if data[j] != recCommit {
					continue
				}
				if typJ, _, _, r := parseFrame(data, j); r == "" && typJ == recCommit {
					return int64(off), &CorruptError{
						Segment: path, Offset: int64(off),
						Reason: fmt.Sprintf("%s (a commit marker at byte %d attests the damaged range was acknowledged: interior corruption, not a torn tail)", reason, j),
					}
				}
			}
			return int64(off), nil
		}
		if err := dispatchRecord(path, int64(off), typ, payload, onMeter, onSample); err != nil {
			return int64(off), err
		}
		off = end
	}
	return int64(off), nil
}

// parseFrame validates the frame at data[off:]. On success reason is empty
// and end is the offset just past the frame; otherwise reason says what is
// malformed.
func parseFrame(data []byte, off int) (typ byte, payload []byte, end int, reason string) {
	if off+5 > len(data) {
		return 0, nil, 0, "truncated frame header"
	}
	typ = data[off]
	n := int(binary.LittleEndian.Uint32(data[off+1:]))
	switch typ {
	case recSample:
		if n != 24 {
			return 0, nil, 0, fmt.Sprintf("sample record with length %d", n)
		}
	case recMeter:
		if n < 26 || n > maxWALRecord {
			return 0, nil, 0, fmt.Sprintf("meter record with length %d", n)
		}
	case recCommit:
		if n != 8 {
			return 0, nil, 0, fmt.Sprintf("commit marker with length %d", n)
		}
	default:
		return 0, nil, 0, fmt.Sprintf("unknown record type %d", typ)
	}
	end = off + 5 + n + 4
	if end > len(data) {
		return 0, nil, 0, "truncated frame body"
	}
	payload = data[off+5 : off+5+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+5+n:]) {
		return 0, nil, 0, "checksum mismatch"
	}
	if typ == recCommit && binary.LittleEndian.Uint64(payload) != uint64(off) {
		// A marker must name its own offset; anything else is a stale or
		// coincidental byte pattern and attests nothing.
		return 0, nil, 0, "commit marker offset mismatch"
	}
	return typ, payload, end, ""
}

// dispatchRecord decodes a CRC-valid payload and invokes the callback.
func dispatchRecord(path string, off int64, typ byte, payload []byte, onMeter func(Meter) error, onSample func(int64, Sample) error) error {
	switch typ {
	case recMeter:
		zlen := int(binary.LittleEndian.Uint16(payload[24:]))
		if len(payload) != 26+zlen {
			return &CorruptError{Segment: path, Offset: off, Reason: "meter record zone length mismatch"}
		}
		if onMeter == nil {
			return nil
		}
		return onMeter(Meter{
			ID: int64(binary.LittleEndian.Uint64(payload[0:])),
			Location: pointFromBits(
				binary.LittleEndian.Uint64(payload[8:]),
				binary.LittleEndian.Uint64(payload[16:])),
			Zone: ZoneType(payload[26 : 26+zlen]),
		})
	case recSample:
		if onSample == nil {
			return nil
		}
		id := int64(binary.LittleEndian.Uint64(payload[0:]))
		return onSample(id, Sample{
			TS:    int64(binary.LittleEndian.Uint64(payload[8:])),
			Value: float64FromBits(binary.LittleEndian.Uint64(payload[16:])),
		})
	case recCommit:
		// Markers carry no application data; they only inform recovery.
		return nil
	}
	return nil
}
