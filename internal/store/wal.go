package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record types.
const (
	recMeter  byte = 1
	recSample byte = 2
)

// walMagic begins every WAL file.
var walMagic = [4]byte{'V', 'A', 'P', 'W'}

// WAL is an append-only write-ahead log providing crash durability between
// snapshots. Records carry a CRC32 so a torn tail write is detected and
// ignored on replay rather than corrupting recovery.
type WAL struct {
	f   *os.File
	buf *bufio.Writer
}

// OpenWAL opens (or creates) the log at path for appending. A new file gets
// the magic header; an existing file is validated.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var hdr [4]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != walMagic {
			f.Close()
			return nil, fmt.Errorf("store: %s is not a VAP WAL", path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, buf: bufio.NewWriterSize(f, 1<<16)}, nil
}

// appendRecord frames and writes one record: type, length, payload, crc.
func (w *WAL) appendRecord(typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(payload); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.buf.Write(tail[:])
	return err
}

// AppendMeter logs a meter registration.
func (w *WAL) AppendMeter(m Meter) error {
	zone := []byte(m.Zone)
	payload := make([]byte, 8+8+8+2+len(zone))
	binary.LittleEndian.PutUint64(payload[0:], uint64(m.ID))
	binary.LittleEndian.PutUint64(payload[8:], float64Bits(m.Location.Lon))
	binary.LittleEndian.PutUint64(payload[16:], float64Bits(m.Location.Lat))
	binary.LittleEndian.PutUint16(payload[24:], uint16(len(zone)))
	copy(payload[26:], zone)
	return w.appendRecord(recMeter, payload)
}

// AppendSample logs one sample append.
func (w *WAL) AppendSample(meterID int64, s Sample) error {
	var payload [24]byte
	binary.LittleEndian.PutUint64(payload[0:], uint64(meterID))
	binary.LittleEndian.PutUint64(payload[8:], uint64(s.TS))
	binary.LittleEndian.PutUint64(payload[16:], float64Bits(s.Value))
	return w.appendRecord(recSample, payload[:])
}

// Sync flushes buffered records and fsyncs the file.
func (w *WAL) Sync() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Truncate empties the log (after a successful snapshot).
func (w *WAL) Truncate() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return err
	}
	w.buf.Reset(w.f)
	return w.f.Sync()
}

// ReplayWAL reads the log at path, invoking the callbacks in record order.
// A truncated or corrupt tail terminates replay cleanly (the common case
// after a crash mid-append); corruption mid-file is reported.
func ReplayWAL(path string, onMeter func(Meter) error, onSample func(int64, Sample) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [4]byte
	if err := readFull(r, hdr[:]); err != nil {
		return nil // empty file: nothing to replay
	}
	if hdr != walMagic {
		return fmt.Errorf("store: %s is not a VAP WAL", path)
	}
	for {
		var rec [5]byte
		if err := readFull(r, rec[:]); err != nil {
			return nil // clean or torn end
		}
		typ := rec[0]
		n := binary.LittleEndian.Uint32(rec[1:])
		if n > 1<<20 {
			return fmt.Errorf("store: WAL record too large (%d bytes)", n)
		}
		payload := make([]byte, n)
		if err := readFull(r, payload); err != nil {
			return nil // torn write
		}
		var tail [4]byte
		if err := readFull(r, tail[:]); err != nil {
			return nil // torn write
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail[:]) {
			return nil // torn/corrupt tail record: stop replay
		}
		switch typ {
		case recMeter:
			if len(payload) < 26 {
				return ErrCorrupt
			}
			zlen := int(binary.LittleEndian.Uint16(payload[24:]))
			if len(payload) != 26+zlen {
				return ErrCorrupt
			}
			m := Meter{
				ID: int64(binary.LittleEndian.Uint64(payload[0:])),
				Location: pointFromBits(
					binary.LittleEndian.Uint64(payload[8:]),
					binary.LittleEndian.Uint64(payload[16:])),
				Zone: ZoneType(payload[26 : 26+zlen]),
			}
			if err := onMeter(m); err != nil {
				return err
			}
		case recSample:
			if len(payload) != 24 {
				return ErrCorrupt
			}
			id := int64(binary.LittleEndian.Uint64(payload[0:]))
			s := Sample{
				TS:    int64(binary.LittleEndian.Uint64(payload[8:])),
				Value: float64FromBits(binary.LittleEndian.Uint64(payload[16:])),
			}
			if err := onSample(id, s); err != nil {
				return err
			}
		default:
			return fmt.Errorf("store: unknown WAL record type %d", typ)
		}
	}
}
