package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNormalizeRollupRes(t *testing.T) {
	cases := []struct {
		name string
		in   []int64
		want []int64
	}{
		{"nil selects defaults", nil, DefaultRollupRes},
		{"empty disables", []int64{}, nil},
		{"sorted deduped cleaned", []int64{86400, 3600, 3600, -5, 0, 14400}, []int64{3600, 14400, 86400}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := normalizeRollupRes(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("normalizeRollupRes(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("normalizeRollupRes(%v) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}

// foldReference folds samples into width-aligned buckets the same way the
// ingest path does — the oracle the TierScan tests compare against.
func foldReference(smps []Sample, width int64) []RollupBucket {
	var out []RollupBucket
	for _, s := range smps {
		start := s.TS - mod64(s.TS, width)
		if len(out) == 0 || out[len(out)-1].Start != start {
			out = append(out, newRollupBucket(start, s.Value))
			continue
		}
		out[len(out)-1].fold(s.Value)
	}
	return out
}

func TestTierScan(t *testing.T) {
	st, err := Open(Options{}) // default tiers: 3600, 86400
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	// Three days of 10-minute samples with a NaN and gaps.
	var all []Sample
	for i := 0; i < 3*144; i++ {
		if i%50 == 17 {
			continue // gap
		}
		v := float64(i%13) * 0.5
		if i%97 == 42 {
			v = math.NaN()
		}
		all = append(all, Sample{TS: int64(i) * 600, Value: v})
	}
	for _, s := range all {
		if err := st.Append(1, s); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("interior matches reference fold", func(t *testing.T) {
		const res, day = int64(3600), int64(86400)
		from, to := int64(0), 3*day
		tsc, err := st.TierScan(1, res, from, from, to, to)
		if err != nil {
			t.Fatal(err)
		}
		if tsc.Left != nil || tsc.Right != nil {
			t.Error("aligned window grew raw edges")
		}
		var got []RollupBucket
		tsc.Buckets(func(b *RollupBucket) { got = append(got, *b) })
		want := foldReference(all, res)
		if len(got) != len(want) {
			t.Fatalf("%d buckets, want %d", len(got), len(want))
		}
		for i := range got {
			if !rollupBucketEqual(&got[i], &want[i]) {
				t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})

	t.Run("edges cover the unaligned remainder", func(t *testing.T) {
		const res = int64(3600)
		from, to := int64(1800), int64(9000) // 0:30 .. 2:30
		aFrom, aTo := int64(3600), int64(7200)
		tsc, err := st.TierScan(1, res, from, aFrom, aTo, to)
		if err != nil {
			t.Fatal(err)
		}
		count := func(it *SeriesIter) int {
			n := 0
			for it.Next() {
				n++
			}
			return n
		}
		interior := 0
		tsc.Buckets(func(b *RollupBucket) { interior += int(b.Count + b.NaN) })
		total := count(tsc.Left) + interior + count(tsc.Right)
		smps, err := st.Range(1, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if total != len(smps) {
			t.Errorf("edges+interior cover %d samples, raw window holds %d", total, len(smps))
		}
	})

	t.Run("version matches meter version", func(t *testing.T) {
		tsc, err := st.TierScan(1, 86400, 0, 0, 86400, 86400)
		if err != nil {
			t.Fatal(err)
		}
		ver, err := st.MeterVersion(1)
		if err != nil {
			t.Fatal(err)
		}
		if tsc.Version != ver {
			t.Errorf("TierScan version %d, MeterVersion %d", tsc.Version, ver)
		}
	})

	t.Run("unmaintained resolution errors", func(t *testing.T) {
		if _, err := st.TierScan(1, 1234, 0, 0, 86400, 86400); !errors.Is(err, ErrNoRollupTier) {
			t.Errorf("TierScan(res=1234) err = %v, want ErrNoRollupTier", err)
		}
	})

	t.Run("unknown meter errors", func(t *testing.T) {
		if _, err := st.TierScan(99, 3600, 0, 0, 86400, 86400); err == nil {
			t.Error("TierScan on unknown meter succeeded")
		}
	})
}

// TestTierScanSeesLiveTail: the last (still-mutating) bucket is captured by
// value, so a TierScan taken before later appends keeps its point-in-time
// state.
func TestTierScanSeesLiveTail(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(1, Sample{TS: int64(i) * 60, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	tsc, err := st.TierScan(1, 3600, 0, 0, 3600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, Sample{TS: 700, Value: 5}); err != nil {
		t.Fatal(err)
	}
	var got []RollupBucket
	tsc.Buckets(func(b *RollupBucket) { got = append(got, *b) })
	if len(got) != 1 || got[0].Count != 10 || got[0].Sum != 10 {
		t.Errorf("snapshot bucket = %+v, want the 10-sample state from capture time", got)
	}
}

// TestSnapshotV2RoundTrip: a durable cycle persists the tiers and the
// reopen installs them bit-identically (checkRollupsRebuilt also proves
// install — not refold — happened via the sample data itself).
func TestSnapshotV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for m := int64(1); m <= 2; m++ {
		if err := st.PutMeter(Meter{ID: m, Location: testPoint(float64(m)*0.01, 0), Zone: ZoneCommercial}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2*1440; i++ { // two days, one-minute cadence
			v := float64(i % 11)
			if i%67 == 5 {
				v = math.Inf(-1)
			}
			if err := st.Append(m, Sample{TS: int64(i)*60 + m, Value: v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Samples; got != 2*2*1440 {
		t.Fatalf("reopened samples = %d, want %d", got, 2*2*1440)
	}
	checkRollupsRebuilt(t, st2)
	stats := st2.Stats()
	if len(stats.Rollups) != len(DefaultRollupRes) {
		t.Fatalf("Stats.Rollups has %d tiers, want %d", len(stats.Rollups), len(DefaultRollupRes))
	}
	for i, rs := range stats.Rollups {
		if rs.Res != DefaultRollupRes[i] || rs.Buckets == 0 || rs.Bytes != int64(rs.Buckets)*rollupBucketBytes {
			t.Errorf("Rollups[%d] = %+v, want res %d with buckets*%d bytes", i, rs, DefaultRollupRes[i], rollupBucketBytes)
		}
	}
}

// TestSnapshotV1Migration: a legacy VAPS snapshot (raw samples, no tiers)
// loads cleanly and the tiers are rebuilt from the raw data it contains.
func TestSnapshotV1Migration(t *testing.T) {
	// Build the capture in an in-memory store, then write it in the legacy
	// layout exactly as a pre-rollup build would have.
	src, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Meter{ID: 7, Location: testPoint(0.02, 0.01), Zone: ZoneIndustrial}
	if err := src.PutMeter(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := src.Append(7, Sample{TS: int64(i) * 120, Value: float64(i % 19)}); err != nil {
			t.Fatal(err)
		}
	}
	sh := src.shardFor(7)
	sh.mu.RLock()
	ser := sh.series[7]
	entry := snapEntry{m: m, count: ser.Len(), it: ser.Iter(minInt64, maxInt64)}
	sh.mu.RUnlock()

	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "snapshot.vap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotV1(f, []snapEntry{entry}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src.Close()

	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("open legacy snapshot: %v", err)
	}
	defer st.Close()
	if got := st.Stats().Samples; got != 3000 {
		t.Fatalf("migrated samples = %d, want 3000", got)
	}
	checkRollupsRebuilt(t, st)
	if got := st.RollupResolutions(); len(got) != len(DefaultRollupRes) {
		t.Errorf("resolutions after migration = %v, want defaults", got)
	}
}

// TestRetentionAgesRawKeepsTiers: with RetainRaw set, a snapshot drops
// sealed chunks wholly behind the horizon from disk and memory, while the
// rollup tiers keep answering over the full history.
func TestRetentionAgesRawKeepsTiers(t *testing.T) {
	const day = int64(86400)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, RetainRaw: 2 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutMeter(Meter{ID: 1, Location: testPoint(0, 0), Zone: ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	// Six days of one-minute samples: 8640 samples = 12 sealed chunks of
	// 12 hours each, so the two-day horizon leaves whole chunks behind it.
	var all []Sample
	for i := 0; i < 6*1440; i++ {
		all = append(all, Sample{TS: int64(i) * 60, Value: float64(i%23) * 0.25})
	}
	for _, s := range all {
		if err := st.Append(1, s); err != nil {
			t.Fatal(err)
		}
	}
	wantDaily := foldReference(all, day)

	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	_, last, _ := st.TimeBounds()
	cutoff := last + 1 - 2*day

	check := func(st *Store, phase string) {
		t.Helper()
		first, _, err := st.Bounds(1)
		if err != nil {
			t.Fatal(err)
		}
		// Pruning is chunk-granular, so it may not reach the cutoff — but it
		// must never drop a sample the horizon still covers.
		keepFrom := int64(math.MaxInt64)
		for _, s := range all {
			if s.TS >= cutoff {
				keepFrom = s.TS
				break
			}
		}
		if first > keepFrom {
			t.Errorf("%s: first retained raw sample %d, but the horizon covers %d — pruning overshot", phase, first, keepFrom)
		}
		n, err := st.SeriesLen(1)
		if err != nil {
			t.Fatal(err)
		}
		if n >= len(all) {
			t.Errorf("%s: %d raw samples survive, want fewer than %d (aged out)", phase, n, len(all))
		}
		// Chunk-granular: everything from the first surviving chunk on is
		// still there.
		smps, err := st.Range(1, minInt64, maxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(smps))*60+first != last+60 {
			t.Errorf("%s: retained raw run is not contiguous to the tail", phase)
		}
		// The daily tier still covers the full history, pruned region
		// included, bit-identical to a fold of the original data.
		tsc, err := st.TierScan(1, day, 0, 0, 6*day, 6*day)
		if err != nil {
			t.Fatal(err)
		}
		var got []RollupBucket
		tsc.Buckets(func(b *RollupBucket) { got = append(got, *b) })
		if len(got) != len(wantDaily) {
			t.Fatalf("%s: %d daily buckets, want %d", phase, len(got), len(wantDaily))
		}
		for i := range got {
			if !rollupBucketEqual(&got[i], &wantDaily[i]) {
				t.Fatalf("%s: daily bucket %d = %+v, want %+v", phase, i, got[i], wantDaily[i])
			}
		}
	}
	check(st, "after snapshot")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir, RetainRaw: 2 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	check(st2, "after reopen")
}
