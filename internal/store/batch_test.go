package store

import (
	"math"
	"math/rand"
	"testing"
)

// randSeries builds a series with irregular timestamps and adversarial
// values (NaN with distinct payloads, ±Inf, -0.0, subnormals) — the value
// classes the Gorilla fuzz corpus exercises.
func randSeries(t *testing.T, rng *rand.Rand, n int) *Series {
	t.Helper()
	ser := NewSeries(1)
	ts := rng.Int63n(1 << 30)
	for i := 0; i < n; i++ {
		ts += 1 + rng.Int63n(40000) // irregular gaps crossing every dod window
		var v float64
		switch rng.Intn(8) {
		case 0:
			v = math.NaN()
		case 1:
			v = math.Float64frombits(0x7ff8000000000001) // NaN, distinct payload
		case 2:
			v = math.Inf(1)
		case 3:
			v = math.Inf(-1)
		case 4:
			v = math.Float64frombits(0x8000000000000000) // -0.0
		case 5:
			v = math.Float64frombits(uint64(rng.Int63n(100) + 1)) // subnormal
		default:
			v = rng.NormFloat64() * 100
		}
		if err := ser.Append(Sample{TS: ts, Value: v}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return ser
}

// TestNextBatchMatchesNext is the batch/scalar parity property: over random
// series and random windows, NextBatch must yield bit-for-bit the samples
// Next yields.
func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		// Cross the seal boundary (720) regularly so multi-chunk series and
		// the private head copy are both exercised.
		n := 1 + rng.Intn(2200)
		ser := randSeries(t, rng, n)
		first, last, _ := ser.Bounds()
		for w := 0; w < 6; w++ {
			var from, to int64
			switch w {
			case 0:
				from, to = minInt64, maxInt64 // full scan
			case 1:
				from, to = first, last+1
			default:
				span := last - first + 1
				from = first + rng.Int63n(span+1) - span/4
				to = from + rng.Int63n(span+1)
			}
			var want []Sample
			sIt := ser.Iter(from, to)
			for sIt.Next() {
				want = append(want, sIt.Sample())
			}
			if err := sIt.Err(); err != nil {
				t.Fatal(err)
			}

			bIt := ser.Iter(from, to)
			b := NewBatch()
			var got []Sample
			for bIt.NextBatch(b) {
				if b.Len() == 0 {
					t.Fatal("NextBatch returned true with an empty batch")
				}
				if b.Len() > BatchSize {
					t.Fatalf("batch overflow: %d > %d", b.Len(), BatchSize)
				}
				for i := range b.TS {
					got = append(got, Sample{TS: b.TS[i], Value: b.Val[i]})
				}
			}
			if err := bIt.Err(); err != nil {
				t.Fatal(err)
			}

			if len(got) != len(want) {
				t.Fatalf("n=%d window=[%d,%d): batch decoded %d samples, scalar %d",
					n, from, to, len(got), len(want))
			}
			for i := range want {
				if got[i].TS != want[i].TS ||
					math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
					t.Fatalf("sample %d: batch (%d, %#x) != scalar (%d, %#x)",
						i, got[i].TS, math.Float64bits(got[i].Value),
						want[i].TS, math.Float64bits(want[i].Value))
				}
			}
		}
	}
}

// TestNextBatchCorruptPayload: a corrupt sealed payload must surface the
// valid prefix and then the same error the scalar path reports, never a
// panic.
func TestNextBatchCorruptPayload(t *testing.T) {
	enc := NewEncoder()
	for i := 0; i < 100; i++ {
		if err := enc.Append(Sample{TS: int64(i) * 60, Value: float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	payload := enc.Bytes()
	ser := &Series{MeterID: 1, head: NewEncoder(), ver: 1, total: 100}
	ser.sealed = append(ser.sealed, &chunk{
		minTS: 0, maxTS: 99 * 60, count: 100,
		payload: payload[:len(payload)/2], // truncated: decode must run dry
	})

	it := ser.Iter(minInt64, maxInt64)
	b := NewBatch()
	decoded := 0
	for it.NextBatch(b) {
		decoded += b.Len()
	}
	if it.Err() != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", it.Err())
	}
	if decoded == 0 || decoded >= 100 {
		t.Fatalf("decoded %d samples from a half payload, want a proper prefix", decoded)
	}
}

func TestSeriesStats(t *testing.T) {
	ser := NewSeries(42)
	st := ser.Stats()
	if st.MeterID != 42 || st.Samples != 0 || st.Blocks != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	n := chunkTargetSamples + 5 // one sealed chunk + a live head
	for i := 0; i < n; i++ {
		if err := ser.Append(Sample{TS: 100 + int64(i)*3600, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st = ser.Stats()
	if st.Samples != n {
		t.Fatalf("Samples = %d, want %d", st.Samples, n)
	}
	if st.Blocks != 2 {
		t.Fatalf("Blocks = %d, want 2 (sealed + head)", st.Blocks)
	}
	if st.MinTS != 100 || st.MaxTS != 100+int64(n-1)*3600 {
		t.Fatalf("bounds [%d, %d] wrong", st.MinTS, st.MaxTS)
	}
	if st.CompressedBytes <= 0 || st.CompressedBytes != ser.CompressedBytes() {
		t.Fatalf("CompressedBytes = %d", st.CompressedBytes)
	}
	if st.Version != ser.Version() {
		t.Fatalf("Version = %d, want %d", st.Version, ser.Version())
	}
}

func TestStoreSeriesStats(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for id := int64(1); id <= 3; id++ {
		if err := st.PutMeter(testMeter(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(2, Sample{TS: int64(i+1) * 60, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.SeriesStats([]int64{2, 99, 1})
	if len(stats) != 3 {
		t.Fatalf("len = %d", len(stats))
	}
	if stats[0].MeterID != 2 || stats[0].Samples != 10 || stats[0].Blocks != 1 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[1].MeterID != 99 || stats[1].Samples != 0 || stats[1].Version != 0 {
		t.Fatalf("unknown meter stats = %+v", stats[1])
	}
	if stats[2].MeterID != 1 || stats[2].Samples != 0 || stats[2].Version == 0 {
		t.Fatalf("registered empty meter stats = %+v", stats[2])
	}
}

// BenchmarkSeriesDecode pairs the scalar pushdown iterator against the
// vectorized batch decoder over one multi-chunk series, reporting
// samples/sec so BENCH_vql.json can track the decode kernel directly.
func BenchmarkSeriesDecode(b *testing.B) {
	ser := NewSeries(1)
	rng := rand.New(rand.NewSource(3))
	const n = 90 * 24 // 90 days hourly, like the VQL end-to-end bench
	for i := 0; i < n; i++ {
		// Noisy values, like real meter readings: wide XOR windows make the
		// value decode representative instead of hitting the identical-value
		// fast path on every sample.
		v := 1.5 + float64(i%24) + rng.NormFloat64()*0.3
		if err := ser.Append(Sample{TS: int64(i) * 3600, Value: v}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Scalar", func(b *testing.B) {
		b.ReportAllocs()
		var sum float64
		for i := 0; i < b.N; i++ {
			it := ser.Iter(minInt64, maxInt64)
			for it.Next() {
				sum += it.Sample().Value
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		_ = sum
	})
	b.Run("Batch", func(b *testing.B) {
		b.ReportAllocs()
		batch := NewBatch()
		var sum float64
		for i := 0; i < b.N; i++ {
			it := ser.Iter(minInt64, maxInt64)
			for it.NextBatch(batch) {
				for _, v := range batch.Val {
					sum += v
				}
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		_ = sum
	})
}
