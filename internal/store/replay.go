package store

import (
	"os"
	"sort"
	"sync"
)

// Parallel WAL replay: recovery partitions decoded records by shard and
// applies them on one applier goroutine per shard, pipelined with segment
// reading. Correctness rests on two invariants:
//
//   - A meter maps to exactly one shard, so routing records by shard
//     preserves per-meter order: the scan is sequential (WAL order), each
//     record is appended to its shard's channel in scan order, and a
//     single applier drains each channel in order.
//   - Registration-before-append order is likewise per-meter order, so it
//     survives the same routing.
//
// The scan itself (CRC checks, torn-tail/corruption classification) is
// unchanged — scanSegment does exactly what serial replay does. Only the
// application of decoded records fans out.

// replayBatchSize is how many records a shard's pending buffer holds
// before being flushed to its applier; one shard-lock acquisition covers
// the whole batch.
const replayBatchSize = 2048

// replayRec is one decoded WAL record routed to a shard applier: a meter
// registration (meter != nil) or a sample append.
type replayRec struct {
	meter *Meter
	id    int64
	smp   Sample
}

// segmentIndices returns the live segment indices ascending (sealed plus
// tail) — the replay order.
func (w *WAL) segmentIndices() []uint64 {
	w.mu.Lock()
	idxs := make([]uint64, 0, len(w.sealed)+1)
	for i := range w.sealed {
		idxs = append(idxs, i)
	}
	idxs = append(idxs, w.tailIdx)
	w.mu.Unlock()
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs
}

// replayWAL applies every live WAL record on top of the snapshot state,
// returning the record and segment counts. RecoverWorkers <= 1 (or a
// single-shard store) uses the serial path; otherwise records are applied
// on per-shard appliers. Replay may overlap the snapshot, so stale samples
// (ErrOutOfOrder) and samples for meters the snapshot already aged out of
// the catalog (ErrUnknownMeter) are skipped, exactly as in serial replay.
func (s *Store) replayWAL(w *WAL) (records int64, segments int, err error) {
	segments = len(w.segmentIndices())
	if s.recoverWorkers() <= 1 || len(s.shards) == 1 {
		err = w.Replay(
			func(m Meter) error {
				records++
				return s.replayMeter(m)
			},
			func(id int64, smp Sample) error {
				records++
				err := s.replaySample(id, smp)
				if err == ErrOutOfOrder || err == ErrUnknownMeter {
					return nil
				}
				return err
			})
		return records, segments, err
	}
	records, err = s.replayWALParallel(w)
	return records, segments, err
}

// replayWALParallel is the fan-out path: a prefetcher reads segment files
// one ahead of the scan, the scan (sequential, per-segment order) routes
// decoded records into per-shard batches, and one applier goroutine per
// shard applies its batches under the shard lock. Any error — scan
// corruption or an applier failure — aborts the whole replay; appliers
// keep draining their channels after a failure so the router never blocks.
func (s *Store) replayWALParallel(w *WAL) (int64, error) {
	type segData struct {
		path string
		data []byte
		err  error
	}
	idxs := w.segmentIndices()
	segCh := make(chan segData, 1)
	go func() {
		defer close(segCh)
		for _, idx := range idxs {
			path := w.segPath(idx)
			data, err := os.ReadFile(path)
			segCh <- segData{path: path, data: data, err: err}
			if err != nil {
				return
			}
		}
	}()

	var (
		applyMu  sync.Mutex
		applyErr error
	)
	fail := func(err error) {
		applyMu.Lock()
		if applyErr == nil {
			applyErr = err
		}
		applyMu.Unlock()
	}
	chans := make([]chan []replayRec, len(s.shards))
	var wg sync.WaitGroup
	for si := range chans {
		chans[si] = make(chan []replayRec, 4)
		wg.Add(1)
		go func(si int, ch <-chan []replayRec) {
			defer wg.Done()
			sh := s.shards[si]
			failed := false
			for batch := range ch {
				if failed {
					continue // drain so the router never blocks
				}
				sh.mu.Lock()
				for i := range batch {
					rec := &batch[i]
					var err error
					if rec.meter != nil {
						err = s.putMeterShardLocked(sh, *rec.meter)
					} else if err = s.appendShardLocked(sh, rec.id, rec.smp); err == ErrOutOfOrder || err == ErrUnknownMeter {
						err = nil // replay may overlap the snapshot
					}
					if err != nil {
						failed = true
						fail(err)
						break
					}
				}
				sh.mu.Unlock()
			}
		}(si, chans[si])
	}

	pending := make([][]replayRec, len(s.shards))
	route := func(si int, rec replayRec) {
		if pending[si] == nil {
			pending[si] = make([]replayRec, 0, replayBatchSize)
		}
		pending[si] = append(pending[si], rec)
		if len(pending[si]) >= replayBatchSize {
			chans[si] <- pending[si]
			pending[si] = nil
		}
	}
	var records int64
	var scanErr error
	for seg := range segCh {
		if seg.err != nil {
			scanErr = seg.err
			break
		}
		_, err := scanSegment(seg.path, seg.data, false,
			func(m Meter) error {
				records++
				mm := m
				route(s.shardIndex(m.ID), replayRec{meter: &mm})
				return nil
			},
			func(id int64, smp Sample) error {
				records++
				route(s.shardIndex(id), replayRec{id: id, smp: smp})
				return nil
			})
		if err != nil {
			scanErr = err
			break
		}
	}
	for si := range chans {
		if scanErr == nil && len(pending[si]) > 0 {
			chans[si] <- pending[si]
		}
		close(chans[si])
	}
	wg.Wait()
	// Unblock the prefetcher if the scan stopped early; it reads at most
	// the remaining segments and exits.
	for range segCh {
	}
	if scanErr != nil {
		return records, scanErr
	}
	applyMu.Lock()
	defer applyMu.Unlock()
	return records, applyErr
}
