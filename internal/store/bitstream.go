// Package store implements VAP's embedded spatio-temporal storage engine,
// the stand-in for the paper's PostgreSQL + PostGIS data layer. It stores
// per-meter consumption time series in compressed chunks (Facebook Gorilla
// style: delta-of-delta timestamps, XOR floats), keeps meter metadata in a
// catalog with an R-tree spatial index, and provides durability through a
// write-ahead log plus snapshots.
package store

import (
	"errors"
	"io"
)

// ErrEndOfStream signals a reader has consumed all bits.
var ErrEndOfStream = errors.New("store: end of bit stream")

// bitWriter writes bits MSB-first into a growing byte slice.
type bitWriter struct {
	data  []byte
	avail uint // free bits in the last byte (0 when data is empty or full)
}

func newBitWriter() *bitWriter { return &bitWriter{} }

// writeBit appends a single bit.
func (w *bitWriter) writeBit(bit bool) {
	if w.avail == 0 {
		w.data = append(w.data, 0)
		w.avail = 8
	}
	if bit {
		w.data[len(w.data)-1] |= 1 << (w.avail - 1)
	}
	w.avail--
}

// writeBits appends the low nbits of v, MSB first.
func (w *bitWriter) writeBits(v uint64, nbits uint) {
	for nbits > 0 {
		if w.avail == 0 {
			w.data = append(w.data, 0)
			w.avail = 8
		}
		take := nbits
		if take > w.avail {
			take = w.avail
		}
		shift := nbits - take
		chunk := byte((v >> shift) & ((1 << take) - 1))
		w.data[len(w.data)-1] |= chunk << (w.avail - take)
		w.avail -= take
		nbits -= take
	}
}

// bytes returns the encoded bytes. The final byte may contain padding zeros.
func (w *bitWriter) bytes() []byte { return w.data }

// bitLen returns the number of meaningful bits written.
func (w *bitWriter) bitLen() int { return len(w.data)*8 - int(w.avail) }

// bitReader reads bits MSB-first from a byte slice.
type bitReader struct {
	data []byte
	pos  int  // byte index
	bit  uint // bits already consumed in data[pos]
}

func newBitReader(data []byte) *bitReader { return &bitReader{data: data} }

func (r *bitReader) readBit() (bool, error) {
	if r.pos >= len(r.data) {
		return false, ErrEndOfStream
	}
	b := r.data[r.pos]&(1<<(7-r.bit)) != 0
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

func (r *bitReader) readBits(nbits uint) (uint64, error) {
	var v uint64
	for nbits > 0 {
		if r.pos >= len(r.data) {
			return 0, ErrEndOfStream
		}
		remain := 8 - r.bit
		take := nbits
		if take > remain {
			take = remain
		}
		shift := remain - take
		chunk := (r.data[r.pos] >> shift) & ((1 << take) - 1)
		v = v<<take | uint64(chunk)
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		nbits -= take
	}
	return v, nil
}

// readFull reads exactly len(p) bytes from rd, translating EOF conditions.
func readFull(rd io.Reader, p []byte) error {
	_, err := io.ReadFull(rd, p)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
