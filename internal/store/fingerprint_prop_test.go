package store

import (
	"math/rand"
	"testing"

	"vap/internal/geo"
)

// TestFingerprintProperties is a property test for selection fingerprints:
// across random shard counts and random mutation sequences,
// Store.Fingerprint(ids) must change iff some id in ids was mutated, and
// must be insensitive to the order of ids.
func TestFingerprintProperties(t *testing.T) {
	shardCounts := []int{1, 2, 4, 7, 16, 64}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		shards := shardCounts[trial%len(shardCounts)]
		st, err := Open(Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}

		// Register a sparse random meter population.
		nMeters := 20 + rng.Intn(40)
		ids := make([]int64, 0, nMeters)
		seen := map[int64]bool{}
		lastTS := map[int64]int64{}
		for len(ids) < nMeters {
			id := int64(1 + rng.Intn(10000))
			if seen[id] {
				continue
			}
			seen[id] = true
			ids = append(ids, id)
			if err := st.PutMeter(randomMeter(rng, id)); err != nil {
				t.Fatal(err)
			}
		}

		// Track a handful of random selections (subsets of the meter set).
		type tracked struct {
			ids []int64
			in  map[int64]bool
		}
		selections := make([]tracked, 0, 6)
		for s := 0; s < 6; s++ {
			size := 1 + rng.Intn(nMeters)
			perm := rng.Perm(nMeters)
			sel := tracked{in: map[int64]bool{}}
			for _, p := range perm[:size] {
				sel.ids = append(sel.ids, ids[p])
				sel.in[ids[p]] = true
			}
			selections = append(selections, sel)
		}

		for step := 0; step < 60; step++ {
			before := make([]uint64, len(selections))
			for i, sel := range selections {
				before[i] = st.Fingerprint(sel.ids)
			}

			// One mutation: an append or a metadata replacement of one
			// random meter.
			target := ids[rng.Intn(nMeters)]
			if rng.Intn(4) == 0 {
				if err := st.PutMeter(randomMeter(rng, target)); err != nil {
					t.Fatal(err)
				}
			} else {
				lastTS[target] += int64(1 + rng.Intn(7200))
				if err := st.Append(target, Sample{TS: lastTS[target], Value: rng.NormFloat64()}); err != nil {
					t.Fatal(err)
				}
			}

			for i, sel := range selections {
				after := st.Fingerprint(sel.ids)
				if sel.in[target] && after == before[i] {
					t.Fatalf("trial %d (shards=%d) step %d: meter %d in selection mutated but fingerprint unchanged",
						trial, shards, step, target)
				}
				if !sel.in[target] && after != before[i] {
					t.Fatalf("trial %d (shards=%d) step %d: meter %d outside selection mutated but fingerprint changed %#x -> %#x",
						trial, shards, step, target, before[i], after)
				}
				// Order-insensitivity: a shuffled enumeration of the same
				// set fingerprints identically.
				shuffled := append([]int64(nil), sel.ids...)
				rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
				if got := st.Fingerprint(shuffled); got != after {
					t.Fatalf("trial %d step %d: fingerprint is order-sensitive: %#x != %#x", trial, step, got, after)
				}
			}
		}

		// Registering a brand-new meter leaves explicit selections alone
		// but moves the all-meters (nil) fingerprint.
		allBefore := st.Fingerprint(nil)
		selBefore := st.Fingerprint(selections[0].ids)
		newID := int64(20000 + trial)
		if err := st.PutMeter(randomMeter(rng, newID)); err != nil {
			t.Fatal(err)
		}
		if st.Fingerprint(selections[0].ids) != selBefore {
			t.Fatalf("trial %d: new unrelated meter changed an explicit selection fingerprint", trial)
		}
		if st.Fingerprint(nil) == allBefore {
			t.Fatalf("trial %d: new meter left the all-meters fingerprint unchanged", trial)
		}
		st.Close()
	}
}

func randomMeter(rng *rand.Rand, id int64) Meter {
	zones := []ZoneType{ZoneResidential, ZoneCommercial, ZoneIndustrial, ZoneMixed}
	return Meter{
		ID:       id,
		Location: geo.Point{Lon: 10 + rng.Float64(), Lat: 55 + rng.Float64()},
		Zone:     zones[rng.Intn(len(zones))],
	}
}
