package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vap/internal/geo"
)

func testMeter(id int64) Meter {
	return Meter{
		ID:       id,
		Location: geo.Point{Lon: 12.5 + float64(id)*0.001, Lat: 55.6},
		Zone:     ZoneResidential,
	}
}

func TestSeriesAppendRange(t *testing.T) {
	s := NewSeries(1)
	for i := 0; i < 2000; i++ {
		if err := s.Append(Sample{TS: int64(i) * 3600, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2000 {
		t.Fatalf("len = %d", s.Len())
	}
	got, err := s.Range(100*3600, 110*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range len = %d, want 10", len(got))
	}
	for i, smp := range got {
		if smp.TS != int64(100+i)*3600 || smp.Value != float64(100+i) {
			t.Fatalf("range[%d] = %+v", i, smp)
		}
	}
	// Half-open: 'to' excluded.
	got, _ = s.Range(0, 3600)
	if len(got) != 1 || got[0].TS != 0 {
		t.Fatalf("half-open range = %v", got)
	}
	// Empty and inverted windows.
	if got, _ := s.Range(50, 50); got != nil {
		t.Error("empty window should return nil")
	}
	if got, _ := s.Range(100, 50); got != nil {
		t.Error("inverted window should return nil")
	}
}

func TestSeriesSpansChunks(t *testing.T) {
	s := NewSeries(1)
	n := chunkTargetSamples*3 + 17
	for i := 0; i < n; i++ {
		if err := s.Append(Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("all = %d, want %d", len(all), n)
	}
	for i, smp := range all {
		if smp.TS != int64(i) {
			t.Fatalf("all[%d].TS = %d", i, smp.TS)
		}
	}
	// A range crossing a chunk boundary.
	got, _ := s.Range(int64(chunkTargetSamples-5), int64(chunkTargetSamples+5))
	if len(got) != 10 {
		t.Fatalf("cross-chunk range = %d, want 10", len(got))
	}
}

func TestSeriesBounds(t *testing.T) {
	s := NewSeries(1)
	if _, _, err := s.Bounds(); err != ErrEmptySeries {
		t.Errorf("empty bounds err = %v", err)
	}
	_ = s.Append(Sample{TS: 5, Value: 1})
	_ = s.Append(Sample{TS: 9, Value: 2})
	f, l, err := s.Bounds()
	if err != nil || f != 5 || l != 9 {
		t.Errorf("bounds = %d,%d (%v)", f, l, err)
	}
}

func TestSeriesOutOfOrder(t *testing.T) {
	s := NewSeries(1)
	_ = s.Append(Sample{TS: 10, Value: 1})
	if err := s.Append(Sample{TS: 10, Value: 2}); err != ErrOutOfOrder {
		t.Errorf("err = %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("failed append changed len: %d", s.Len())
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := NewCatalog()
	if err := c.Put(testMeter(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testMeter(2)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	m, ok := c.Get(1)
	if !ok || m.ID != 1 {
		t.Fatalf("get: %v %v", m, ok)
	}
	if _, ok := c.Get(99); ok {
		t.Error("get missing should fail")
	}
	// Replace relocates in the index.
	moved := testMeter(1)
	moved.Location = geo.Point{Lon: 13.0, Lat: 56.0}
	if err := c.Put(moved); err != nil {
		t.Fatal(err)
	}
	ids := c.Within(geo.NewBBox(geo.Point{Lon: 12.9, Lat: 55.9}, geo.Point{Lon: 13.1, Lat: 56.1}))
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("relocated search = %v", ids)
	}
	if !c.Delete(2) {
		t.Fatal("delete failed")
	}
	if c.Delete(2) {
		t.Fatal("double delete should fail")
	}
	if c.Len() != 1 {
		t.Fatalf("len after delete = %d", c.Len())
	}
}

func TestCatalogRejectsInvalidLocation(t *testing.T) {
	c := NewCatalog()
	bad := Meter{ID: 1, Location: geo.Point{Lon: 999, Lat: 0}}
	if err := c.Put(bad); err == nil {
		t.Error("invalid location should fail")
	}
}

func TestCatalogByZoneAndNear(t *testing.T) {
	c := NewCatalog()
	for i := int64(1); i <= 10; i++ {
		m := testMeter(i)
		if i%2 == 0 {
			m.Zone = ZoneCommercial
		}
		if err := c.Put(m); err != nil {
			t.Fatal(err)
		}
	}
	com := c.ByZone(ZoneCommercial)
	if len(com) != 5 {
		t.Fatalf("commercial = %d, want 5", len(com))
	}
	near := c.Near(geo.Point{Lon: 12.5, Lat: 55.6}, 3)
	if len(near) != 3 {
		t.Fatalf("near = %d", len(near))
	}
	if near[0].ID != 1 { // closest to lon offset 0.001*1
		t.Errorf("nearest = %d, want 1", near[0].ID)
	}
}

func TestStoreInMemoryBasics(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeter(testMeter(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, Sample{TS: 100, Value: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(99, Sample{TS: 100, Value: 1}); err != ErrUnknownMeter {
		t.Errorf("unknown meter err = %v", err)
	}
	got, err := st.Range(1, 0, 200)
	if err != nil || len(got) != 1 {
		t.Fatalf("range: %v %v", got, err)
	}
	n, err := st.SeriesLen(1)
	if err != nil || n != 1 {
		t.Fatalf("series len = %d (%v)", n, err)
	}
	stats := st.Stats()
	if stats.Meters != 1 || stats.Samples != 1 || stats.RawBytes != 16 {
		t.Errorf("stats = %+v", stats)
	}
	if err := st.Snapshot(); err == nil {
		t.Error("snapshot of in-memory store should fail")
	}
}

func TestStoreAppendBatch(t *testing.T) {
	st, _ := Open(Options{})
	defer st.Close()
	_ = st.PutMeter(testMeter(1))
	batch := make([]Sample, 100)
	for i := range batch {
		batch[i] = Sample{TS: int64(i), Value: float64(i)}
	}
	n, err := st.AppendBatch(1, batch)
	if err != nil || n != 100 {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	// Batch with an out-of-order element stops midway.
	bad := []Sample{{TS: 200, Value: 1}, {TS: 150, Value: 2}}
	n, err = st.AppendBatch(1, bad)
	if err != ErrOutOfOrder || n != 1 {
		t.Fatalf("bad batch: n=%d err=%v", n, err)
	}
}

func TestStoreTimeBounds(t *testing.T) {
	st, _ := Open(Options{})
	defer st.Close()
	if _, _, ok := st.TimeBounds(); ok {
		t.Error("empty store should have no bounds")
	}
	_ = st.PutMeter(testMeter(1))
	_ = st.PutMeter(testMeter(2))
	_ = st.Append(1, Sample{TS: 100, Value: 1})
	_ = st.Append(2, Sample{TS: 50, Value: 1})
	_ = st.Append(2, Sample{TS: 300, Value: 1})
	f, l, ok := st.TimeBounds()
	if !ok || f != 50 || l != 300 {
		t.Errorf("bounds = %d,%d,%v", f, l, ok)
	}
}

func TestStoreDurabilityWALReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.PutMeter(testMeter(1))
	for i := 0; i < 50; i++ {
		if err := st.Append(1, Sample{TS: int64(i), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: WAL replay must restore everything.
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Range(1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("replayed %d samples, want 50", len(got))
	}
	if m, ok := st2.Catalog().Get(1); !ok || m.Zone != ZoneResidential {
		t.Fatalf("meter not replayed: %v %v", m, ok)
	}
}

func TestStoreSnapshotAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 5; id++ {
		_ = st.PutMeter(testMeter(id))
		for i := 0; i < 100; i++ {
			_ = st.Append(id, Sample{TS: int64(i) * 60, Value: float64(i) + float64(id)})
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Covered segments must be deleted after a snapshot: one bare tail left.
	if segs, bytes := st.WALStats(); segs != 1 || bytes > 16 {
		t.Errorf("wal after snapshot = %d segments / %d bytes, want 1 bare tail", segs, bytes)
	}
	if st.Stats().LastSnapshotUnix == 0 {
		t.Error("snapshot did not record its completion time")
	}
	// Post-snapshot appends land in the WAL.
	_ = st.Append(1, Sample{TS: 100 * 60, Value: 999})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Meters != 5 {
		t.Fatalf("meters = %d", st2.Stats().Meters)
	}
	got, _ := st2.Range(1, 0, 1<<40)
	if len(got) != 101 {
		t.Fatalf("samples after snapshot+wal = %d, want 101", len(got))
	}
	if got[100].Value != 999 {
		t.Fatalf("post-snapshot sample = %v", got[100])
	}
}

func TestStoreSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(Options{Dir: dir})
	_ = st.PutMeter(testMeter(1))
	_ = st.Append(1, Sample{TS: 1, Value: 2})
	_ = st.Snapshot()
	_ = st.Close()
	// Flip a byte in the snapshot body.
	path := filepath.Join(dir, "snapshot.vap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("corrupted snapshot should fail to load")
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(Options{Dir: dir})
	_ = st.PutMeter(testMeter(1))
	for i := 0; i < 20; i++ {
		_ = st.Append(1, Sample{TS: int64(i), Value: float64(i)})
	}
	_ = st.Close()
	// Truncate the tail segment mid-record to simulate a crash during write.
	path := tailSegmentPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must not break recovery: %v", err)
	}
	defer st2.Close()
	got, _ := st2.Range(1, 0, 1000)
	if len(got) != 19 { // last record lost, everything else intact
		t.Fatalf("recovered %d samples, want 19", len(got))
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir, walOptions{}); err == nil {
		t.Error("foreign segment file should be rejected")
	}
	// Same through the legacy single-file migration path.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, legacyWALName), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir2, walOptions{}); err == nil {
		t.Error("foreign legacy wal.log should be rejected")
	}
}

func TestStoreConcurrentReadersAndWriter(t *testing.T) {
	st, _ := Open(Options{})
	defer st.Close()
	for id := int64(1); id <= 4; id++ {
		_ = st.PutMeter(testMeter(id))
	}
	var wg sync.WaitGroup
	// One writer per meter, several readers.
	for id := int64(1); id <= 4; id++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = st.Append(id, Sample{TS: int64(i), Value: float64(i)})
			}
		}(id)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(42)))
			for i := 0; i < 200; i++ {
				id := int64(rng.Intn(4) + 1)
				_, _ = st.Range(id, 0, 1000)
				_ = st.Stats()
				_, _, _ = st.TimeBounds()
			}
		}()
	}
	wg.Wait()
	for id := int64(1); id <= 4; id++ {
		n, _ := st.SeriesLen(id)
		if n != 500 {
			t.Fatalf("meter %d has %d samples, want 500", id, n)
		}
	}
}

func TestStoreSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.PutMeter(testMeter(1))
	if err := st.Append(1, Sample{TS: 1, Value: 2}); err != nil {
		t.Fatal(err)
	}
	// Without Close, the records must already be on disk: replay a copy of
	// the live segment and count what a crash right now would recover.
	meters, samples := replayDirCounts(t, dir)
	if meters != 1 || samples != 1 {
		t.Errorf("on-disk after sync append: %d meters / %d samples, want 1/1", meters, samples)
	}
	_ = st.Close()
}

// tailSegmentPath returns the highest-numbered WAL segment in dir.
func tailSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	idxs, err := listSegments(dir)
	if err != nil || len(idxs) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	return filepath.Join(dir, segmentName(idxs[len(idxs)-1]))
}

// replayDirCounts scans every segment in dir (torn-tail tolerant, like
// recovery would) and returns the record counts.
func replayDirCounts(t *testing.T, dir string) (meters, samples int) {
	t.Helper()
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range idxs {
		path := filepath.Join(dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, err = scanSegment(path, data, i == len(idxs)-1,
			func(Meter) error { meters++; return nil },
			func(int64, Sample) error { samples++; return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	return meters, samples
}

func TestStoreVersionBumpsOnMutation(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v0 := st.Version()
	if err := st.PutMeter(testMeter(1)); err != nil {
		t.Fatal(err)
	}
	v1 := st.Version()
	if v1 <= v0 {
		t.Fatalf("PutMeter did not bump version: %d -> %d", v0, v1)
	}
	if err := st.Append(1, Sample{TS: 1, Value: 2}); err != nil {
		t.Fatal(err)
	}
	v2 := st.Version()
	if v2 <= v1 {
		t.Fatalf("Append did not bump version: %d -> %d", v1, v2)
	}
	if _, err := st.AppendBatch(1, []Sample{{TS: 2, Value: 3}, {TS: 3, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	v3 := st.Version()
	if v3 <= v2 {
		t.Fatalf("AppendBatch did not bump version: %d -> %d", v2, v3)
	}
	// Reads must not bump.
	if _, err := st.Range(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	st.Stats()
	if st.Version() != v3 {
		t.Fatalf("read bumped version: %d -> %d", v3, st.Version())
	}
	// Failed mutations must not bump.
	if err := st.Append(99, Sample{TS: 1, Value: 1}); err != ErrUnknownMeter {
		t.Fatalf("expected ErrUnknownMeter, got %v", err)
	}
	if err := st.Append(1, Sample{TS: 1, Value: 1}); err != ErrOutOfOrder {
		t.Fatalf("expected ErrOutOfOrder, got %v", err)
	}
	if st.Version() != v3 {
		t.Fatalf("failed mutation bumped version: %d -> %d", v3, st.Version())
	}
}

func TestStoreMeterVersionsAndFingerprint(t *testing.T) {
	st, _ := Open(Options{Shards: 4})
	defer st.Close()
	_ = st.PutMeter(testMeter(1))
	_ = st.PutMeter(testMeter(2))
	v1, err := st.MeterVersion(1)
	if err != nil || v1 != 1 {
		t.Fatalf("fresh meter version = %d (%v), want 1", v1, err)
	}
	if _, err := st.MeterVersion(99); err != ErrUnknownMeter {
		t.Fatalf("unknown meter version err = %v", err)
	}
	fpBoth := st.Fingerprint([]int64{1, 2})
	fpOne := st.Fingerprint([]int64{2})
	fpAll := st.Fingerprint(nil)
	if fpAll != fpBoth {
		t.Fatalf("nil ids should fingerprint all meters: %d != %d", fpAll, fpBoth)
	}

	// Appending to meter 1 must change fingerprints containing it and
	// leave disjoint fingerprints untouched.
	if err := st.Append(1, Sample{TS: 10, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.MeterVersion(1); got != v1+1 {
		t.Fatalf("append did not bump per-meter version: %d", got)
	}
	if got, _ := st.MeterVersion(2); got != 1 {
		t.Fatalf("append to meter 1 bumped meter 2: %d", got)
	}
	if st.Fingerprint([]int64{1, 2}) == fpBoth {
		t.Fatal("fingerprint containing mutated meter did not change")
	}
	if st.Fingerprint([]int64{2}) != fpOne {
		t.Fatal("fingerprint disjoint from mutated meter changed")
	}

	// Replacing meter metadata is a mutation of that meter too.
	moved := testMeter(2)
	moved.Location.Lon += 0.5
	if err := st.PutMeter(moved); err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint([]int64{2}) == fpOne {
		t.Fatal("metadata replacement did not change the meter's fingerprint")
	}
}

func TestStoreShardVersionsBumpIndependently(t *testing.T) {
	st, _ := Open(Options{Shards: 8})
	defer st.Close()
	// Register enough meters that at least two shards are populated.
	for id := int64(1); id <= 32; id++ {
		_ = st.PutMeter(testMeter(id))
	}
	before := st.ShardVersions()
	populated := 0
	for _, v := range before {
		if v > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("32 meters landed on %d shards; hash is clustering", populated)
	}
	_ = st.Append(1, Sample{TS: 1, Value: 1})
	after := st.ShardVersions()
	changed := 0
	for i := range after {
		if after[i] != before[i] {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("one append changed %d shard versions, want 1", changed)
	}
}

func TestStoreCloseReturnsErrClosed(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_ = st.PutMeter(testMeter(1))
	if err := st.Append(1, Sample{TS: 1, Value: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Every mutation after close fails cleanly instead of writing to a
	// closed WAL.
	if err := st.Close(); err != ErrClosed {
		t.Errorf("second Close err = %v, want ErrClosed", err)
	}
	if err := st.Append(1, Sample{TS: 2, Value: 3}); err != ErrClosed {
		t.Errorf("Append after close err = %v, want ErrClosed", err)
	}
	if _, err := st.AppendBatch(1, []Sample{{TS: 3, Value: 4}}); err != ErrClosed {
		t.Errorf("AppendBatch after close err = %v, want ErrClosed", err)
	}
	if err := st.PutMeter(testMeter(2)); err != ErrClosed {
		t.Errorf("PutMeter after close err = %v, want ErrClosed", err)
	}
	if err := st.Snapshot(); err != ErrClosed {
		t.Errorf("Snapshot after close err = %v, want ErrClosed", err)
	}
	// Reads keep serving the in-memory data.
	if got, err := st.Range(1, 0, 10); err != nil || len(got) != 1 {
		t.Errorf("read after close: %v %v", got, err)
	}
}

func TestStoreShardedSnapshotWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Spread meters across shards with uneven series lengths.
	const meters = 20
	for id := int64(1); id <= meters; id++ {
		if err := st.PutMeter(testMeter(id)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < int(10*id); i++ {
			if err := st.Append(id, Sample{TS: int64(i) * 60, Value: float64(i) + float64(id)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot appends land in the WAL and must replay on top.
	for id := int64(1); id <= meters; id += 3 {
		if err := st.Append(id, Sample{TS: 1 << 30, Value: 42}); err != nil {
			t.Fatal(err)
		}
	}
	wantVers := make(map[int64]uint64, meters)
	wantLens := make(map[int64]int, meters)
	for id := int64(1); id <= meters; id++ {
		v, err := st.MeterVersion(id)
		if err != nil {
			t.Fatal(err)
		}
		wantVers[id] = v
		wantLens[id], _ = st.SeriesLen(id)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT shard count: durability must be independent
	// of the sharding layout.
	st2, err := Open(Options{Dir: dir, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Meters != meters {
		t.Fatalf("meters after reopen = %d, want %d", st2.Stats().Meters, meters)
	}
	for id := int64(1); id <= meters; id++ {
		n, err := st2.SeriesLen(id)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantLens[id] {
			t.Errorf("meter %d: %d samples after reopen, want %d", id, n, wantLens[id])
		}
		v, err := st2.MeterVersion(id)
		if err != nil {
			t.Fatal(err)
		}
		if v != wantVers[id] {
			t.Errorf("meter %d: version %d after reopen, want %d", id, v, wantVers[id])
		}
		got, err := st2.Range(id, 0, 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != wantLens[id] {
			t.Errorf("meter %d: range returned %d samples, want %d", id, len(got), wantLens[id])
		}
		if id%3 == 1 {
			if last := got[len(got)-1]; last.TS != 1<<30 || last.Value != 42 {
				t.Errorf("meter %d: WAL tail sample not replayed: %+v", id, last)
			}
		}
	}
}

func TestSeriesIterStreamsWindow(t *testing.T) {
	s := NewSeries(1)
	n := chunkTargetSamples*2 + 100
	for i := 0; i < n; i++ {
		if err := s.Append(Sample{TS: int64(i) * 10, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A window crossing the chunk/head boundary.
	from := int64((chunkTargetSamples*2 - 5) * 10)
	to := int64((chunkTargetSamples*2 + 5) * 10)
	it := s.Iter(from, to)
	var got []Sample
	for it.Next() {
		got = append(got, it.Sample())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 10 {
		t.Fatalf("iter yielded %d samples, want 10", len(got))
	}
	for i, smp := range got {
		want := int64(chunkTargetSamples*2-5+i) * 10
		if smp.TS != want {
			t.Fatalf("got[%d].TS = %d, want %d", i, smp.TS, want)
		}
	}
	// Iterator agrees with Range on the full series.
	all, err := s.Range(minInt64, maxInt64)
	if err != nil || len(all) != n {
		t.Fatalf("range all = %d (%v), want %d", len(all), err, n)
	}
	// Empty and inverted windows terminate immediately.
	if it := s.Iter(50, 50); it.Next() {
		t.Error("empty window iterator yielded a sample")
	}
	if it := s.Iter(100, 50); it.Next() {
		t.Error("inverted window iterator yielded a sample")
	}
}

func TestSeriesIterSnapshotUnaffectedByAppend(t *testing.T) {
	st, _ := Open(Options{})
	defer st.Close()
	_ = st.PutMeter(testMeter(1))
	for i := 0; i < 100; i++ {
		_ = st.Append(1, Sample{TS: int64(i), Value: float64(i)})
	}
	it, err := st.Iter(1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Appends after iterator construction must not surface mid-iteration.
	for i := 100; i < 200; i++ {
		_ = st.Append(1, Sample{TS: int64(i), Value: float64(i)})
	}
	count := 0
	for it.Next() {
		count++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != 100 {
		t.Fatalf("iterator saw %d samples, want the 100 snapshotted", count)
	}
}
