package flow

import (
	"math"
	"testing"

	"vap/internal/geo"
	"vap/internal/kde"
)

func box() geo.BBox {
	return geo.NewBBox(geo.Point{Lon: 12.4, Lat: 55.5}, geo.Point{Lon: 12.8, Lat: 55.9})
}

// densityAt builds a KDE field from one point mass.
func densityAt(t *testing.T, p geo.Point, w float64) *kde.Field {
	t.Helper()
	f, err := kde.Estimate([]kde.WeightedPoint{{Loc: p, Weight: w}}, box(),
		kde.Config{Cols: 64, Rows: 64, Bandwidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestShiftIsDifference(t *testing.T) {
	west := geo.Point{Lon: 12.5, Lat: 55.7}
	east := geo.Point{Lon: 12.7, Lat: 55.7}
	f1 := densityAt(t, west, 1)
	f2 := densityAt(t, east, 1)
	shift, err := Shift(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	// Demand moved west -> east: negative at west, positive at east.
	wc, wr := shift.CellOf(west)
	ec, er := shift.CellOf(east)
	if shift.At(wc, wr) >= 0 {
		t.Errorf("west cell shift = %v, want negative", shift.At(wc, wr))
	}
	if shift.At(ec, er) <= 0 {
		t.Errorf("east cell shift = %v, want positive", shift.At(ec, er))
	}
	if _, err := Shift(nil, f2); err == nil {
		t.Error("nil input should fail")
	}
}

func TestGradientFieldPointsTowardGain(t *testing.T) {
	west := geo.Point{Lon: 12.5, Lat: 55.7}
	east := geo.Point{Lon: 12.7, Lat: 55.7}
	shift, _ := Shift(densityAt(t, west, 1), densityAt(t, east, 1))
	vectors := GradientField(shift, 4, 0.2)
	if len(vectors) == 0 {
		t.Fatal("no gradient vectors")
	}
	// In the corridor between the two centers, arrows must point east.
	eastward := 0
	total := 0
	for _, v := range vectors {
		if v.From.Lat > 55.65 && v.From.Lat < 55.75 &&
			v.From.Lon > 12.52 && v.From.Lon < 12.68 {
			total++
			if v.To.Lon > v.From.Lon {
				eastward++
			}
		}
		if v.Rate < 0 || v.Rate > 1 {
			t.Fatalf("rate out of range: %v", v.Rate)
		}
	}
	if total == 0 {
		t.Fatal("no corridor vectors sampled")
	}
	if float64(eastward)/float64(total) < 0.9 {
		t.Errorf("only %d/%d corridor arrows point east", eastward, total)
	}
}

func TestGradientFieldFlatIsEmpty(t *testing.T) {
	flat := &kde.Field{Box: box(), Cols: 16, Rows: 16, Values: make([]float64, 256)}
	if v := GradientField(flat, 4, 0.1); v != nil {
		t.Errorf("flat field produced %d vectors", len(v))
	}
	if v := GradientField(nil, 4, 0.1); v != nil {
		t.Error("nil field should produce nil")
	}
}

func TestExtractODMovesMassOutward(t *testing.T) {
	west := geo.Point{Lon: 12.5, Lat: 55.7}
	east := geo.Point{Lon: 12.7, Lat: 55.7}
	shift, _ := Shift(densityAt(t, west, 1), densityAt(t, east, 1))
	flows := ExtractOD(shift, ODConfig{})
	if len(flows) == 0 {
		t.Fatal("no OD flows")
	}
	// The strongest flow must run roughly west -> east.
	f0 := flows[0]
	if f0.To.Lon <= f0.From.Lon {
		t.Errorf("strongest flow runs %v -> %v, want west->east", f0.From, f0.To)
	}
	if f0.Rate != 1 {
		t.Errorf("strongest flow rate = %v, want 1", f0.Rate)
	}
	// From-points cluster near the west source.
	for _, f := range flows {
		if f.Mass <= 0 {
			t.Fatalf("non-positive mass %v", f.Mass)
		}
		if f.Rate < 0 || f.Rate > 1 {
			t.Fatalf("rate out of range: %v", f.Rate)
		}
	}
}

func TestExtractODOneSigned(t *testing.T) {
	// All-positive field: no sources, no flows.
	f := &kde.Field{Box: box(), Cols: 8, Rows: 8, Values: make([]float64, 64)}
	for i := range f.Values {
		f.Values[i] = 1
	}
	if flows := ExtractOD(f, ODConfig{}); flows != nil {
		t.Errorf("one-signed field produced %d flows", len(flows))
	}
}

func TestExtractODRespectsCaps(t *testing.T) {
	west := geo.Point{Lon: 12.5, Lat: 55.7}
	east := geo.Point{Lon: 12.7, Lat: 55.7}
	shift, _ := Shift(densityAt(t, west, 1), densityAt(t, east, 1))
	flows := ExtractOD(shift, ODConfig{TopK: 4, MaxFlows: 5, MinMassFrac: 0.01})
	if len(flows) > 5 {
		t.Errorf("flows = %d, cap 5", len(flows))
	}
}

func TestSummarize(t *testing.T) {
	west := geo.Point{Lon: 12.5, Lat: 55.7}
	east := geo.Point{Lon: 12.7, Lat: 55.7}
	shift, _ := Shift(densityAt(t, west, 1), densityAt(t, east, 1))
	s := Summarize(shift)
	if s.L1 <= 0 || s.MaxGain <= 0 || s.MaxLoss <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	// Loss centroid near west, gain centroid near east.
	if s.LossCenter.DistanceTo(west) > 3000 {
		t.Errorf("loss centroid %v too far from west source", s.LossCenter)
	}
	if s.GainCenter.DistanceTo(east) > 3000 {
		t.Errorf("gain centroid %v too far from east sink", s.GainCenter)
	}
	// Bearing west->east is ~90 degrees.
	if math.Abs(s.ShiftBearing-90) > 15 {
		t.Errorf("bearing = %v, want ~90", s.ShiftBearing)
	}
	if s.ShiftMeters < 5000 || s.ShiftMeters > 20000 {
		t.Errorf("shift distance = %v m", s.ShiftMeters)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.L1 != 0 || s.ShiftMeters != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSymmetricSwap(t *testing.T) {
	// Swapping t1 and t2 must swap gain and loss centroids.
	a := densityAt(t, geo.Point{Lon: 12.5, Lat: 55.7}, 1)
	b := densityAt(t, geo.Point{Lon: 12.7, Lat: 55.7}, 1)
	s1, _ := Shift(a, b)
	s2, _ := Shift(b, a)
	sum1 := Summarize(s1)
	sum2 := Summarize(s2)
	if sum1.GainCenter.DistanceTo(sum2.LossCenter) > 1 {
		t.Errorf("gain/loss swap violated: %v vs %v", sum1.GainCenter, sum2.LossCenter)
	}
	if math.Abs(sum1.L1-sum2.L1) > 1e-12 {
		t.Errorf("L1 not symmetric: %v vs %v", sum1.L1, sum2.L1)
	}
}
