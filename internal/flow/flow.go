// Package flow implements VAP's shift-pattern discovery (paper §2.1,
// Figure 2): the demand-shift field Shift(x) = f_t2(x) - f_t1(x) of Eq. 4,
// plus two renderable flow representations built from it —
//
//  1. a gradient vector field of the shift surface (arrows point from
//     demand-losing toward demand-gaining areas), and
//  2. discrete origin-destination flows extracted by greedily matching
//     mass-losing cells to mass-gaining cells (a transport-style smoothing
//     in the spirit of Guo & Zhu's OD flow mapping, the paper's
//     reference [10]).
//
// Arrow "color depth represents the rate of change" (§2.2): each flow
// carries a Rate in [0,1] the renderer maps to color intensity.
package flow

import (
	"errors"
	"math"
	"sort"

	"vap/internal/geo"
	"vap/internal/kde"
)

// ErrInput flags invalid flow extraction input.
var ErrInput = errors.New("flow: invalid input")

// Shift computes Eq. 4: the density difference field between two KDE maps
// of identical geometry.
func Shift(t1, t2 *kde.Field) (*kde.Field, error) {
	if t1 == nil || t2 == nil {
		return nil, ErrInput
	}
	return t2.Sub(t1)
}

// Vector is one flow arrow from From to To with magnitude Mass (density
// units) and Rate in [0,1] (normalized rate of change for coloring).
type Vector struct {
	From geo.Point `json:"from"`
	To   geo.Point `json:"to"`
	Mass float64   `json:"mass"`
	Rate float64   `json:"rate"`
}

// GradientField returns one vector per grid cell (subsampled by stride)
// pointing uphill on the shift surface, i.e. from loss toward gain. Cells
// whose gradient magnitude is below cutoff (relative to the max) are
// omitted. stride <= 0 defaults to 4.
func GradientField(shift *kde.Field, stride int, cutoff float64) []Vector {
	if shift == nil || len(shift.Values) == 0 {
		return nil
	}
	if stride <= 0 {
		stride = 4
	}
	cols, rows := shift.Cols, shift.Rows
	cellW := (shift.Box.Max.Lon - shift.Box.Min.Lon) / float64(cols)
	cellH := (shift.Box.Max.Lat - shift.Box.Min.Lat) / float64(rows)
	type g struct {
		c, r   int
		gx, gy float64
		mag    float64
	}
	var grads []g
	maxMag := 0.0
	for r := stride / 2; r < rows; r += stride {
		for c := stride / 2; c < cols; c += stride {
			gx := centralDiff(shift, c, r, 1, 0) / cellW
			gy := centralDiff(shift, c, r, 0, 1) / cellH
			mag := math.Hypot(gx, gy)
			if mag > maxMag {
				maxMag = mag
			}
			grads = append(grads, g{c, r, gx, gy, mag})
		}
	}
	if maxMag == 0 {
		return nil
	}
	arrowScale := float64(stride) * 0.8
	var out []Vector
	for _, e := range grads {
		rel := e.mag / maxMag
		if rel < cutoff {
			continue
		}
		from := shift.CellCenter(e.c, e.r)
		// Unit direction scaled to a readable arrow length in cells.
		ux := e.gx / e.mag
		uy := e.gy / e.mag
		to := geo.Point{
			Lon: from.Lon + ux*arrowScale*cellW,
			Lat: from.Lat + uy*arrowScale*cellH,
		}
		out = append(out, Vector{From: from, To: to, Mass: e.mag, Rate: rel})
	}
	return out
}

func centralDiff(f *kde.Field, c, r, dc, dr int) float64 {
	c0, r0 := c-dc, r-dr
	c1, r1 := c+dc, r+dr
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= f.Cols {
		c1 = f.Cols - 1
	}
	if r1 >= f.Rows {
		r1 = f.Rows - 1
	}
	span := float64((c1 - c0) + (r1 - r0))
	if span == 0 {
		return 0
	}
	return (f.At(c1, r1) - f.At(c0, r0)) / span
}

// ODConfig tunes origin-destination extraction.
type ODConfig struct {
	// TopK caps the number of source and sink cells considered (by
	// magnitude). Default 32.
	TopK int
	// MaxFlows caps the emitted flows. Default 64.
	MaxFlows int
	// MinMassFrac drops flows carrying less than this fraction of the
	// largest flow's mass. Default 0.05.
	MinMassFrac float64
}

func (c *ODConfig) defaults() {
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 64
	}
	if c.MinMassFrac <= 0 {
		c.MinMassFrac = 0.05
	}
}

type cellMass struct {
	c, r int
	mass float64 // positive
}

// ExtractOD extracts discrete flows from the shift field: the strongest
// demand-losing cells (negative shift) are greedily matched to the
// strongest demand-gaining cells (positive shift), nearest-first weighted
// by transferable mass. The result approximates where high demand moved.
func ExtractOD(shift *kde.Field, cfg ODConfig) []Vector {
	if shift == nil || len(shift.Values) == 0 {
		return nil
	}
	cfg.defaults()
	var sources, sinks []cellMass // sources lose demand, sinks gain
	for r := 0; r < shift.Rows; r++ {
		for c := 0; c < shift.Cols; c++ {
			v := shift.At(c, r)
			switch {
			case v < 0:
				sources = append(sources, cellMass{c, r, -v})
			case v > 0:
				sinks = append(sinks, cellMass{c, r, v})
			}
		}
	}
	if len(sources) == 0 || len(sinks) == 0 {
		return nil
	}
	byMass := func(s []cellMass) {
		sort.Slice(s, func(i, j int) bool { return s[i].mass > s[j].mass })
	}
	byMass(sources)
	byMass(sinks)
	if len(sources) > cfg.TopK {
		sources = sources[:cfg.TopK]
	}
	if len(sinks) > cfg.TopK {
		sinks = sinks[:cfg.TopK]
	}
	// Greedy transport: repeatedly move mass along the pair maximizing
	// transferable mass / (1 + normalized distance).
	srcRem := make([]float64, len(sources))
	for i, s := range sources {
		srcRem[i] = s.mass
	}
	sinkRem := make([]float64, len(sinks))
	for i, s := range sinks {
		sinkRem[i] = s.mass
	}
	diag := math.Hypot(float64(shift.Cols), float64(shift.Rows))
	var out []Vector
	for len(out) < cfg.MaxFlows {
		bestI, bestJ, bestScore := -1, -1, 0.0
		for i := range sources {
			if srcRem[i] <= 0 {
				continue
			}
			for j := range sinks {
				if sinkRem[j] <= 0 {
					continue
				}
				m := math.Min(srcRem[i], sinkRem[j])
				d := math.Hypot(float64(sources[i].c-sinks[j].c), float64(sources[i].r-sinks[j].r)) / diag
				score := m / (1 + 4*d)
				if score > bestScore {
					bestI, bestJ, bestScore = i, j, score
				}
			}
		}
		if bestI < 0 {
			break
		}
		m := math.Min(srcRem[bestI], sinkRem[bestJ])
		srcRem[bestI] -= m
		sinkRem[bestJ] -= m
		out = append(out, Vector{
			From: shift.CellCenter(sources[bestI].c, sources[bestI].r),
			To:   shift.CellCenter(sinks[bestJ].c, sinks[bestJ].r),
			Mass: m,
		})
	}
	if len(out) == 0 {
		return nil
	}
	maxMass := out[0].Mass
	for _, v := range out[1:] {
		if v.Mass > maxMass {
			maxMass = v.Mass
		}
	}
	kept := out[:0]
	for _, v := range out {
		if v.Mass >= cfg.MinMassFrac*maxMass {
			v.Rate = v.Mass / maxMass
			kept = append(kept, v)
		}
	}
	return kept
}

// Summary quantifies a shift field for the sensitivity experiments (E6/E7).
type Summary struct {
	L1           float64   `json:"l1"`            // total absolute shifted mass
	MaxGain      float64   `json:"max_gain"`      // strongest gaining cell
	MaxLoss      float64   `json:"max_loss"`      // strongest losing cell (positive value)
	GainCenter   geo.Point `json:"gain_center"`   // mass-weighted centroid of gains
	LossCenter   geo.Point `json:"loss_center"`   // mass-weighted centroid of losses
	ShiftBearing float64   `json:"shift_bearing"` // degrees, loss centroid -> gain centroid
	ShiftMeters  float64   `json:"shift_meters"`  // distance between the centroids
}

// Summarize computes the scalar diagnostics of a shift field.
func Summarize(shift *kde.Field) Summary {
	var s Summary
	if shift == nil || len(shift.Values) == 0 {
		return s
	}
	var gainMass, lossMass float64
	var gLon, gLat, lLon, lLat float64
	for r := 0; r < shift.Rows; r++ {
		for c := 0; c < shift.Cols; c++ {
			v := shift.At(c, r)
			p := shift.CellCenter(c, r)
			switch {
			case v > 0:
				gainMass += v
				gLon += v * p.Lon
				gLat += v * p.Lat
				if v > s.MaxGain {
					s.MaxGain = v
				}
			case v < 0:
				m := -v
				lossMass += m
				lLon += m * p.Lon
				lLat += m * p.Lat
				if m > s.MaxLoss {
					s.MaxLoss = m
				}
			}
		}
	}
	s.L1 = shift.L1Norm()
	if gainMass > 0 {
		s.GainCenter = geo.Point{Lon: gLon / gainMass, Lat: gLat / gainMass}
	}
	if lossMass > 0 {
		s.LossCenter = geo.Point{Lon: lLon / lossMass, Lat: lLat / lossMass}
	}
	if gainMass > 0 && lossMass > 0 {
		s.ShiftMeters = s.LossCenter.DistanceTo(s.GainCenter)
		dy := (s.GainCenter.Lat - s.LossCenter.Lat) * geo.MetersPerDegreeLat
		dx := (s.GainCenter.Lon - s.LossCenter.Lon) * geo.MetersPerDegreeLon(s.LossCenter.Lat)
		s.ShiftBearing = math.Mod(math.Atan2(dx, dy)*180/math.Pi+360, 360)
	}
	return s
}
