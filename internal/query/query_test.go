package query

import (
	"testing"
	"time"

	"vap/internal/geo"
	"vap/internal/store"
)

func ts(s string) int64 {
	t, err := time.Parse("2006-01-02 15:04", s)
	if err != nil {
		panic(err)
	}
	return t.UTC().Unix()
}

func TestParseGranularity(t *testing.T) {
	for _, g := range AllGranularities {
		got, err := ParseGranularity(string(g))
		if err != nil || got != g {
			t.Errorf("ParseGranularity(%s) = %v, %v", g, got, err)
		}
	}
	if _, err := ParseGranularity("fortnightly"); err == nil {
		t.Error("unknown granularity should fail")
	}
}

func TestTruncateHourly(t *testing.T) {
	x := ts("2018-03-05 14:37")
	want := ts("2018-03-05 14:00")
	if got := GranHourly.Truncate(x); got != want {
		t.Errorf("hourly truncate = %d, want %d", got, want)
	}
}

func TestTruncate4Hourly(t *testing.T) {
	x := ts("2018-03-05 14:37")
	want := ts("2018-03-05 12:00")
	if got := Gran4Hourly.Truncate(x); got != want {
		t.Errorf("4hourly truncate = %d, want %d", got, want)
	}
}

func TestTruncateDaily(t *testing.T) {
	x := ts("2018-03-05 14:37")
	want := ts("2018-03-05 00:00")
	if got := GranDaily.Truncate(x); got != want {
		t.Errorf("daily truncate = %d, want %d", got, want)
	}
}

func TestTruncateWeeklyMonday(t *testing.T) {
	// 2018-03-05 is a Monday; 2018-03-08 (Thursday) truncates to it.
	x := ts("2018-03-08 10:00")
	want := ts("2018-03-05 00:00")
	if got := GranWeekly.Truncate(x); got != want {
		t.Errorf("weekly truncate = %s, want %s",
			time.Unix(got, 0).UTC(), time.Unix(want, 0).UTC())
	}
	// A Monday truncates to itself.
	if got := GranWeekly.Truncate(want); got != want {
		t.Errorf("monday should truncate to itself")
	}
}

func TestTruncateMonthlyQuarterlyYearly(t *testing.T) {
	x := ts("2018-08-17 09:30")
	if got := GranMonthly.Truncate(x); got != ts("2018-08-01 00:00") {
		t.Errorf("monthly truncate wrong")
	}
	if got := GranQuarterly.Truncate(x); got != ts("2018-07-01 00:00") {
		t.Errorf("quarterly truncate wrong")
	}
	if got := GranYearly.Truncate(x); got != ts("2018-01-01 00:00") {
		t.Errorf("yearly truncate wrong")
	}
}

func TestNextAdvancesExactlyOneBucket(t *testing.T) {
	x := ts("2018-08-17 09:30")
	for _, g := range AllGranularities {
		start := g.Truncate(x)
		next := g.Next(x)
		if next <= start {
			t.Errorf("%s: Next did not advance", g)
		}
		// Next's truncation is itself.
		if g.Truncate(next) != next {
			t.Errorf("%s: Next %d is not bucket-aligned", g, next)
		}
		// There is no bucket boundary strictly between start and next.
		if g.Truncate(next-1) != start {
			t.Errorf("%s: gap between buckets", g)
		}
	}
}

func TestNextMonthlyFebruary(t *testing.T) {
	x := ts("2018-02-10 00:00")
	if got := GranMonthly.Next(x); got != ts("2018-03-01 00:00") {
		t.Errorf("feb next = %s", time.Unix(got, 0).UTC())
	}
}

func TestApproxSecondsOrdering(t *testing.T) {
	prev := int64(0)
	for _, g := range AllGranularities {
		s := g.ApproxSeconds()
		if s <= prev {
			t.Errorf("%s approx seconds %d not increasing", g, s)
		}
		prev = s
	}
}

func TestAggregate(t *testing.T) {
	samples := []store.Sample{
		{TS: ts("2018-01-01 00:15"), Value: 1},
		{TS: ts("2018-01-01 00:45"), Value: 3},
		{TS: ts("2018-01-01 01:15"), Value: 5},
	}
	sum, err := Aggregate(samples, GranHourly, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 2 || sum[0].Value != 4 || sum[1].Value != 5 {
		t.Fatalf("sum = %+v", sum)
	}
	mean, _ := Aggregate(samples, GranHourly, AggMean)
	if mean[0].Value != 2 {
		t.Errorf("mean = %v", mean[0].Value)
	}
	mx, _ := Aggregate(samples, GranHourly, AggMax)
	if mx[0].Value != 3 {
		t.Errorf("max = %v", mx[0].Value)
	}
	mn, _ := Aggregate(samples, GranHourly, AggMin)
	if mn[0].Value != 1 {
		t.Errorf("min = %v", mn[0].Value)
	}
	if _, err := Aggregate(samples, GranHourly, "median"); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestAggregateEmpty(t *testing.T) {
	out, err := Aggregate(nil, GranDaily, AggSum)
	if err != nil || out != nil {
		t.Errorf("empty aggregate = %v, %v", out, err)
	}
}

// buildStore creates 3 meters: two residential in the west, one commercial
// in the east, with simple hourly data over `days` days.
func buildStore(t *testing.T, days int) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meters := []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 12.50, Lat: 55.60}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 12.51, Lat: 55.61}, Zone: store.ZoneResidential},
		{ID: 3, Location: geo.Point{Lon: 12.60, Lat: 55.60}, Zone: store.ZoneCommercial},
	}
	start := ts("2018-01-01 00:00")
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < days*24; h++ {
			v := float64(m.ID) // constant per meter
			if m.ID == 3 {
				// Commercial peaks at noon.
				hour := h % 24
				if hour >= 9 && hour <= 17 {
					v = 10
				} else {
					v = 1
				}
			}
			if err := st.Append(m.ID, store.Sample{TS: start + int64(h)*3600, Value: v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

func TestResolveMetersAll(t *testing.T) {
	st := buildStore(t, 2)
	defer st.Close()
	eng := NewEngine(st)
	ids, err := eng.ResolveMeters(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestResolveMetersBBoxAndZone(t *testing.T) {
	st := buildStore(t, 1)
	defer st.Close()
	eng := NewEngine(st)
	west := geo.NewBBox(geo.Point{Lon: 12.49, Lat: 55.59}, geo.Point{Lon: 12.55, Lat: 55.65})
	ids, err := eng.ResolveMeters(Selection{BBox: &west})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("west ids = %v", ids)
	}
	ids, err = eng.ResolveMeters(Selection{Zone: store.ZoneCommercial})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("commercial ids = %v", ids)
	}
	// Explicit IDs filtered by bbox.
	ids, err = eng.ResolveMeters(Selection{MeterIDs: []int64{1, 3}, BBox: &west})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("ids∩bbox = %v", ids)
	}
	// Nothing matches.
	far := geo.NewBBox(geo.Point{Lon: 0, Lat: 0}, geo.Point{Lon: 1, Lat: 1})
	if _, err := eng.ResolveMeters(Selection{BBox: &far}); err != ErrNoMeters {
		t.Errorf("empty selection err = %v", err)
	}
}

func TestMeterMatrixAlignment(t *testing.T) {
	st := buildStore(t, 3)
	defer st.Close()
	eng := NewEngine(st)
	ids, times, rows, err := eng.MeterMatrix(Selection{}, GranDaily, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || len(rows) != 3 {
		t.Fatalf("shape: %d ids, %d rows", len(ids), len(rows))
	}
	if len(times) != 3 {
		t.Fatalf("times = %d, want 3 days", len(times))
	}
	for _, row := range rows {
		if len(row) != len(times) {
			t.Fatalf("row width %d != times %d", len(row), len(times))
		}
	}
	// Meter 1 is constant 1.0; its daily mean must be 1 everywhere.
	for _, v := range rows[0] {
		if v != 1 {
			t.Fatalf("meter 1 daily mean = %v", v)
		}
	}
}

func TestTotalByMeterAndIntensityBand(t *testing.T) {
	st := buildStore(t, 2)
	defer st.Close()
	eng := NewEngine(st)
	totals, err := eng.TotalByMeter(Selection{})
	if err != nil {
		t.Fatal(err)
	}
	if totals[2] != 2*48 {
		t.Errorf("meter 2 total = %v, want 96", totals[2])
	}
	// Top half by quantile: meter 3 (mixed 1/10) and meter 2.
	ids, err := eng.IntensityBand(Selection{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || len(ids) == 3 {
		t.Fatalf("band = %v", ids)
	}
	// q=0 keeps everyone.
	ids, _ = eng.IntensityBand(Selection{}, 0)
	if len(ids) != 3 {
		t.Fatalf("q=0 band = %v", ids)
	}
	if _, err := eng.IntensityBand(Selection{}, 1.5); err == nil {
		t.Error("q>1 should fail")
	}
}

func TestDemandSnapshotWeights(t *testing.T) {
	st := buildStore(t, 1)
	defer st.Close()
	eng := NewEngine(st)
	noon := ts("2018-01-01 12:00")
	pts, err := eng.DemandSnapshot(Selection{}, noon, noon+3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// At noon, meter 3 consumes 10 (highest) -> weight 1; meter 1 consumes
	// 1 (lowest) -> weight 0.
	byID := map[int64]DemandPoint{}
	for _, p := range pts {
		byID[p.MeterID] = p
	}
	if byID[3].Weight != 1 {
		t.Errorf("peak meter weight = %v, want 1", byID[3].Weight)
	}
	if byID[1].Weight != 0 {
		t.Errorf("low meter weight = %v, want 0", byID[1].Weight)
	}
}

func TestAggregateSelection(t *testing.T) {
	st := buildStore(t, 2)
	defer st.Close()
	eng := NewEngine(st)
	buckets, err := eng.AggregateSelection(Selection{MeterIDs: []int64{1, 2}}, GranDaily, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// Mean of constant-1 and constant-2 meters is 1.5.
	if buckets[0].Value != 1.5 {
		t.Errorf("selection mean = %v, want 1.5", buckets[0].Value)
	}
}

func TestMeterSeriesWindow(t *testing.T) {
	st := buildStore(t, 2)
	defer st.Close()
	eng := NewEngine(st)
	from := ts("2018-01-01 00:00")
	to := ts("2018-01-02 00:00")
	buckets, err := eng.MeterSeries(1, Selection{From: from, To: to}, GranHourly, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 24 {
		t.Fatalf("buckets = %d, want 24", len(buckets))
	}
	if _, err := eng.MeterSeries(1, Selection{From: 100, To: 50}, GranHourly, AggSum); err == nil {
		t.Error("inverted window should fail")
	}
}
