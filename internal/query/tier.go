package query

import (
	"fmt"
	"math"

	"vap/internal/store"
)

// This file routes the engine's granularity and density paths through the
// store's rollup tiers (see store/rollup.go). The serving rule matches the
// VQL planner's: a tier serves a granularity only when its resolution
// equals the bucket width exactly — then every interior query bucket is
// one tier bucket and the reconstructed Bucket matches what AggregateIter
// would have computed from the raw samples, NaN propagation included.
// Unaligned window edges, and granularities with no matching tier
// (weekly's Monday phase, the variable-width calendar units), decode raw.

// tierWidth returns the fixed bucket width of g when a resolution-aligned
// rollup tier can represent g's buckets exactly, else 0.
func tierWidth(g Granularity) int64 {
	switch g {
	case GranHourly:
		return 3600
	case Gran4Hourly:
		return 4 * 3600
	case GranDaily:
		return 24 * 3600
	default:
		return 0
	}
}

// alignUp rounds ts up to the next multiple of w (identity when aligned);
// alignDown rounds toward -inf. Both are negative-safe.
func alignUp(ts, w int64) int64 {
	if m := mod(ts, w); m != 0 {
		return ts + (w - m)
	}
	return ts
}

func alignDown(ts, w int64) int64 { return ts - mod(ts, w) }

// tierFor returns the tier resolution that serves granularity g over
// [from, to) — the exact bucket width, when the store maintains it and the
// window spans at least one aligned bucket — or 0 for a raw scan.
func tierFor(st *store.Store, g Granularity, from, to int64) int64 {
	w := tierWidth(g)
	if w == 0 {
		return 0
	}
	for _, r := range st.RollupResolutions() {
		if r == w {
			if alignDown(to, w) > alignUp(from, w) {
				return w
			}
			return 0
		}
	}
	return 0
}

// bucketFromRollup reconstructs the Bucket AggregateIter would have built
// for one complete tier-backed bucket. AggregateIter folds NaN readings
// into sums (one NaN poisons the bucket) and counts every sample; min/max
// stick at NaN only when the bucket's first sample is NaN (later NaNs lose
// every comparison). The rollup bucket carries exactly the state needed to
// replay those semantics without the samples.
func bucketFromRollup(b *store.RollupBucket, fn AggFunc) Bucket {
	out := Bucket{Start: b.Start, Count: int(b.Count + b.NaN)}
	switch fn {
	case AggSum, AggMean:
		if b.NaN > 0 {
			out.Value = math.NaN()
		} else {
			out.Value = b.Sum
		}
		if fn == AggMean {
			out.Value /= float64(out.Count)
		}
	case AggMax:
		if math.IsNaN(b.First) {
			out.Value = math.NaN()
		} else {
			out.Value = b.Max
		}
	case AggMin:
		if math.IsNaN(b.First) {
			out.Value = math.NaN()
		} else {
			out.Value = b.Min
		}
	}
	return out
}

// meterBuckets aggregates one meter over [from, to) at granularity g,
// serving the aligned interior from a rollup tier when one matches the
// bucket width and decoding only the unaligned edges raw. With no usable
// tier the whole window decodes raw — the pre-rollup behavior.
func (e *Engine) meterBuckets(meterID, from, to int64, g Granularity, fn AggFunc) ([]Bucket, error) {
	res := tierFor(e.st, g, from, to)
	if res == 0 {
		it, err := e.st.Iter(meterID, from, to)
		if err != nil {
			return nil, err
		}
		return AggregateIter(it, g, fn)
	}
	switch fn {
	case AggSum, AggMean, AggMax, AggMin:
	default:
		return nil, fmt.Errorf("query: unknown aggregate %q", fn)
	}
	aFrom, aTo := alignUp(from, res), alignDown(to, res)
	tsc, err := e.st.TierScan(meterID, res, from, aFrom, aTo, to)
	if err != nil {
		return nil, err
	}
	var out []Bucket
	if tsc.Left != nil {
		if out, err = AggregateIter(tsc.Left, g, fn); err != nil {
			return nil, err
		}
	}
	tsc.Buckets(func(b *store.RollupBucket) {
		out = append(out, bucketFromRollup(b, fn))
	})
	if tsc.Right != nil {
		right, err := AggregateIter(tsc.Right, g, fn)
		if err != nil {
			return nil, err
		}
		out = append(out, right...)
	}
	return out, nil
}

// windowSum folds one meter's [from, to) window into a flat sum and sample
// count, serving the aligned interior from the coarsest rollup tier that
// fits and decoding the edges raw. A NaN reading poisons the sum either
// way — the rollup's NaN tally replays the poisoning without the samples.
// Note the interior adds per-bucket subtotals, so with a tier the sum can
// differ from a raw fold in the last ulp; the density paths using it feed
// normalized weights, not bit-compared results.
func (e *Engine) windowSum(meterID, from, to int64) (sum float64, n int, err error) {
	var res int64
	rs := e.st.RollupResolutions()
	for i := len(rs) - 1; i >= 0; i-- {
		if alignDown(to, rs[i]) > alignUp(from, rs[i]) {
			res = rs[i]
			break
		}
	}
	if res == 0 {
		it, err := e.st.Iter(meterID, from, to)
		if err != nil {
			return 0, 0, err
		}
		return sumIter(it)
	}
	aFrom, aTo := alignUp(from, res), alignDown(to, res)
	tsc, err := e.st.TierScan(meterID, res, from, aFrom, aTo, to)
	if err != nil {
		return 0, 0, err
	}
	if tsc.Left != nil {
		s, c, err := sumIter(tsc.Left)
		if err != nil {
			return 0, 0, err
		}
		sum += s
		n += c
	}
	tsc.Buckets(func(b *store.RollupBucket) {
		if b.NaN > 0 {
			sum += math.NaN()
		} else {
			sum += b.Sum
		}
		n += int(b.Count + b.NaN)
	})
	if tsc.Right != nil {
		s, c, err := sumIter(tsc.Right)
		if err != nil {
			return 0, 0, err
		}
		sum += s
		n += c
	}
	return sum, n, nil
}

// sumIter flat-folds a raw iterator through the batch decoder.
func sumIter(it *store.SeriesIter) (sum float64, n int, err error) {
	b := store.GetBatch()
	defer store.PutBatch(b)
	for it.NextBatch(b) {
		for _, v := range b.Val {
			sum += v
		}
		n += b.Len()
	}
	return sum, n, it.Err()
}
