package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"vap/internal/exec"
	"vap/internal/geo"
	"vap/internal/stat"
	"vap/internal/store"
)

// Engine evaluates VAP's analytical queries against a Store. Per-meter
// work (series decode + aggregation) fans out across workers goroutines.
type Engine struct {
	st      *store.Store
	workers int
}

// NewEngine returns an engine bound to st with runtime.NumCPU() workers.
func NewEngine(st *store.Store) *Engine { return NewEngineWorkers(st, 0) }

// NewEngineWorkers returns an engine with an explicit fan-out width
// (<= 0 selects runtime.NumCPU()).
func NewEngineWorkers(st *store.Store, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{st: st, workers: workers}
}

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// Workers returns the engine's fan-out width.
func (e *Engine) Workers() int { return e.workers }

// Selection describes which meters and which time window a query covers.
// Zero-value fields are unconstrained.
type Selection struct {
	BBox     *geo.BBox      // spatial filter
	Zone     store.ZoneType // zone filter ("" = any)
	MeterIDs []int64        // explicit meter set (nil = all)
	From, To int64          // half-open [From, To); both zero = all time
}

// ErrNoMeters is returned when a selection matches nothing.
var ErrNoMeters = errors.New("query: selection matches no meters")

// ResolveMeters returns the sorted meter IDs matching sel.
func (e *Engine) ResolveMeters(sel Selection) ([]int64, error) {
	cat := e.st.Catalog()
	var ids []int64
	switch {
	case sel.MeterIDs != nil:
		ids = append(ids, sel.MeterIDs...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	case sel.BBox != nil:
		ids = cat.Within(*sel.BBox)
	default:
		ids = cat.IDs()
	}
	if sel.Zone != "" {
		filtered := ids[:0]
		for _, id := range ids {
			if m, ok := cat.Get(id); ok && m.Zone == sel.Zone {
				filtered = append(filtered, id)
			}
		}
		ids = filtered
	}
	if sel.BBox != nil && sel.MeterIDs != nil {
		filtered := ids[:0]
		for _, id := range ids {
			if m, ok := cat.Get(id); ok && sel.BBox.Contains(m.Location) {
				filtered = append(filtered, id)
			}
		}
		ids = filtered
	}
	if len(ids) == 0 {
		return nil, ErrNoMeters
	}
	return ids, nil
}

// VersionFingerprint resolves sel and hashes the per-meter versions of
// exactly the meters it covers into one selection-scoped data version.
// Execution-layer caches keyed on it stay valid across appends to meters
// outside the selection — the fine-grained replacement for keying every
// result on the store's global version.
func (e *Engine) VersionFingerprint(sel Selection) (uint64, error) {
	ids, err := e.ResolveMeters(sel)
	if err != nil {
		return 0, err
	}
	return e.st.Fingerprint(ids), nil
}

// TimeWindow resolves the selection's effective half-open time window:
// explicit From/To when set, the store's full data extent otherwise.
// Callers memoizing window-dependent results must key on this resolved
// window, not the literal selection fields — the default extent moves when
// any meter (inside the selection or not) receives a newer sample.
func (e *Engine) TimeWindow(sel Selection) (int64, int64, error) {
	return e.timeWindow(sel)
}

// timeWindow resolves the selection's window, defaulting to the store's full
// data extent (half-open, so To is one past the last sample).
func (e *Engine) timeWindow(sel Selection) (int64, int64, error) {
	from, to := sel.From, sel.To
	if from == 0 && to == 0 {
		f, l, ok := e.st.TimeBounds()
		if !ok {
			return 0, 0, errors.New("query: store is empty")
		}
		return f, l + 1, nil
	}
	if to <= from {
		return 0, 0, fmt.Errorf("query: invalid time window [%d, %d)", from, to)
	}
	return from, to, nil
}

// MeterSeries returns the aggregated series of a single meter, serving
// complete buckets from the store's rollup tiers when the granularity has
// a matching tier and streaming the rest out of the pushdown iterator.
func (e *Engine) MeterSeries(meterID int64, sel Selection, g Granularity, fn AggFunc) ([]Bucket, error) {
	from, to, err := e.timeWindow(sel)
	if err != nil {
		return nil, err
	}
	return e.meterBuckets(meterID, from, to, g, fn)
}

// MeterMatrix returns one aggregated row per selected meter, all aligned to
// the same bucket sequence (missing buckets filled with 0), together with
// the meter IDs (row order) and the bucket start times (column order).
// This is the "high-dimensional time series" input to dimension reduction.
func (e *Engine) MeterMatrix(sel Selection, g Granularity, fn AggFunc) (ids []int64, times []int64, rows [][]float64, err error) {
	return e.MeterMatrixCtx(context.Background(), sel, g, fn)
}

// MeterMatrixCtx is MeterMatrix with the per-meter series decode and
// aggregation fanned out across the engine's workers; row order stays
// deterministic because each task writes only its own row index.
func (e *Engine) MeterMatrixCtx(ctx context.Context, sel Selection, g Granularity, fn AggFunc) (ids []int64, times []int64, rows [][]float64, err error) {
	ids, err = e.ResolveMeters(sel)
	if err != nil {
		return nil, nil, nil, err
	}
	from, to, err := e.timeWindow(sel)
	if err != nil {
		return nil, nil, nil, err
	}
	// Build the global bucket axis.
	for t := g.Truncate(from); t < to; t = g.Next(t) {
		times = append(times, t)
	}
	pos := make(map[int64]int, len(times))
	for i, t := range times {
		pos[t] = i
	}
	rows = make([][]float64, len(ids))
	err = exec.ForEach(ctx, len(ids), e.workers, func(r int) error {
		buckets, err := e.meterBuckets(ids[r], from, to, g, fn)
		if err != nil {
			return err
		}
		row := make([]float64, len(times))
		for _, b := range buckets {
			if i, ok := pos[b.Start]; ok {
				row[i] = b.Value
			}
		}
		rows[r] = row
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return ids, times, rows, nil
}

// TotalByMeter returns each selected meter's total consumption over the
// window, keyed by meter ID.
func (e *Engine) TotalByMeter(sel Selection) (map[int64]float64, error) {
	return e.TotalByMeterCtx(context.Background(), sel)
}

// TotalByMeterCtx is TotalByMeter with per-meter range scans parallelized.
func (e *Engine) TotalByMeterCtx(ctx context.Context, sel Selection) (map[int64]float64, error) {
	ids, err := e.ResolveMeters(sel)
	if err != nil {
		return nil, err
	}
	from, to, err := e.timeWindow(sel)
	if err != nil {
		return nil, err
	}
	totals := make([]float64, len(ids))
	err = exec.ForEach(ctx, len(ids), e.workers, func(i int) error {
		s, _, err := e.windowSum(ids[i], from, to)
		if err != nil {
			return err
		}
		totals[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int64]float64, len(ids))
	for i, id := range ids {
		out[id] = totals[i]
	}
	return out, nil
}

// IntensityBand selects the meters whose total consumption lies at or above
// the q-th quantile of the selection (the S2 "consumption intensity in a
// quartile value ranging from 30% to 90%" control). q is in [0, 1].
func (e *Engine) IntensityBand(sel Selection, q float64) ([]int64, error) {
	return e.IntensityBandCtx(context.Background(), sel, q)
}

// IntensityBandCtx is IntensityBand with the underlying total-consumption
// scan parallelized and cancellable.
func (e *Engine) IntensityBandCtx(ctx context.Context, sel Selection, q float64) ([]int64, error) {
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("query: quantile %v out of [0,1]", q)
	}
	totals, err := e.TotalByMeterCtx(ctx, sel)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, 0, len(totals))
	for _, v := range totals {
		vals = append(vals, v)
	}
	cut := stat.Quantile(vals, q)
	var out []int64
	for id, v := range totals {
		if v >= cut {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) == 0 {
		return nil, ErrNoMeters
	}
	return out, nil
}

// DemandPoint is a consumption-weighted location: the input to the KDE
// density maps of Eq. 3.
type DemandPoint struct {
	MeterID int64     `json:"meter_id"`
	Loc     geo.Point `json:"loc"`
	Weight  float64   `json:"weight"` // normalized mean consumption c_i
}

// DemandSnapshot returns, for the window [from, to), each selected meter's
// location weighted by its normalized average consumption in that window —
// exactly the (x_i, c_i) pairs of Eq. 3.
func (e *Engine) DemandSnapshot(sel Selection, from, to int64) ([]DemandPoint, error) {
	return e.DemandSnapshotCtx(context.Background(), sel, from, to)
}

// DemandSnapshotCtx is DemandSnapshot with per-meter window scans
// parallelized across the engine's workers.
func (e *Engine) DemandSnapshotCtx(ctx context.Context, sel Selection, from, to int64) ([]DemandPoint, error) {
	s := sel
	s.From, s.To = from, to
	ids, err := e.ResolveMeters(s)
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(ids))
	err = exec.ForEach(ctx, len(ids), e.workers, func(i int) error {
		sum, n, err := e.windowSum(ids[i], from, to)
		if err != nil {
			return err
		}
		if n > 0 {
			means[i] = sum / float64(n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	weights := stat.Normalize01(means)
	cat := e.st.Catalog()
	out := make([]DemandPoint, 0, len(ids))
	for i, id := range ids {
		m, ok := cat.Get(id)
		if !ok {
			continue
		}
		out = append(out, DemandPoint{MeterID: id, Loc: m.Location, Weight: weights[i]})
	}
	return out, nil
}

// AggregateSelection sums the aggregated series of every selected meter into
// one combined series (View B's "aggregated consumption pattern for the
// customers selected in view C").
func (e *Engine) AggregateSelection(sel Selection, g Granularity, fn AggFunc) ([]Bucket, error) {
	ids, times, rows, err := e.MeterMatrix(sel, g, fn)
	if err != nil {
		return nil, err
	}
	_ = ids
	out := make([]Bucket, len(times))
	for i, t := range times {
		out[i].Start = t
	}
	for _, row := range rows {
		for i, v := range row {
			out[i].Value += v
			out[i].Count++
		}
	}
	if fn == AggMean && len(rows) > 0 {
		for i := range out {
			out[i].Value /= float64(len(rows))
		}
	}
	return out, nil
}
