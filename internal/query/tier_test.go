package query

import (
	"math"
	"math/rand"
	"testing"

	"vap/internal/geo"
	"vap/internal/store"
)

func TestTierWidth(t *testing.T) {
	cases := map[Granularity]int64{
		GranHourly:    3600,
		Gran4Hourly:   14400,
		GranDaily:     86400,
		GranWeekly:    0, // Monday phase vs epoch-Thursday tier alignment
		GranMonthly:   0, // variable width
		GranQuarterly: 0,
		GranYearly:    0,
	}
	for g, want := range cases {
		if got := tierWidth(g); got != want {
			t.Errorf("tierWidth(%s) = %d, want %d", g, got, want)
		}
	}
}

// buildTierPair loads the same messy series — gaps, NaN and ±Inf readings —
// into a store without rollups and a store with the given tiers.
func buildTierPair(t *testing.T, tiers []int64) (raw, tier *store.Store, first, last int64) {
	t.Helper()
	open := func(res []int64) *store.Store {
		st, err := store.Open(store.Options{RollupRes: res})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	raw, tier = open([]int64{}), open(tiers)
	rng := rand.New(rand.NewSource(23))
	start := ts("2018-03-01 00:00")
	for _, m := range []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 12.50, Lat: 55.60}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 12.51, Lat: 55.61}, Zone: store.ZoneCommercial},
	} {
		if err := raw.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		if err := tier.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		tsNow := start + m.ID*17
		n := 900 + rng.Intn(300) // ~6-8 days of 10-minute readings
		for i := 0; i < n; i++ {
			tsNow += 600 + int64(rng.Intn(200))*3 // uneven cadence with gaps
			v := float64(rng.Intn(40)) * 0.25
			switch rng.Intn(35) {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1)
			case 2:
				v = math.Inf(-1)
			}
			smp := store.Sample{TS: tsNow, Value: v}
			if err := raw.Append(m.ID, smp); err != nil {
				t.Fatal(err)
			}
			if err := tier.Append(m.ID, smp); err != nil {
				t.Fatal(err)
			}
		}
	}
	f, l, ok := raw.TimeBounds()
	if !ok {
		t.Fatal("empty store")
	}
	return raw, tier, f, l
}

// valueEqual treats two NaNs as equal (the tier path synthesizes its NaN
// rather than propagating a payload) and everything else bitwise.
func valueEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestMeterSeriesTierMatchesRaw(t *testing.T) {
	raw, tier, first, last := buildTierPair(t, []int64{3600, 14400, 86400})
	rawEng, tierEng := NewEngine(raw), NewEngine(tier)
	const day = int64(86400)
	windows := []Selection{
		{},                                   // full extent
		{From: first + 777, To: last - 1313}, // unaligned edges
		{From: alignUp(first, day), To: alignUp(first, day) + day}, // one aligned day
		{From: first + 10, To: first + 400},                        // narrower than any tier bucket
	}
	for _, g := range []Granularity{GranHourly, Gran4Hourly, GranDaily, GranWeekly, GranMonthly} {
		for _, fn := range []AggFunc{AggSum, AggMean, AggMin, AggMax} {
			for wi, sel := range windows {
				for _, id := range []int64{1, 2} {
					want, err := rawEng.MeterSeries(id, sel, g, fn)
					if err != nil {
						t.Fatal(err)
					}
					got, err := tierEng.MeterSeries(id, sel, g, fn)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s/%s window %d meter %d: %d buckets, want %d", g, fn, wi, id, len(got), len(want))
					}
					for i := range got {
						if got[i].Start != want[i].Start || got[i].Count != want[i].Count || !valueEqual(got[i].Value, want[i].Value) {
							t.Fatalf("%s/%s window %d meter %d bucket %d:\n tier %+v\n raw  %+v", g, fn, wi, id, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestWindowSumTierMatchesRaw(t *testing.T) {
	raw, tier, first, last := buildTierPair(t, nil) // default tiers
	rawEng, tierEng := NewEngine(raw), NewEngine(tier)
	windows := [][2]int64{
		{first, last + 1},
		{first + 501, last - 2000},
		{first + 10, first + 120}, // too narrow for any tier: both decode raw
	}
	for wi, w := range windows {
		for _, id := range []int64{1, 2} {
			wantSum, wantN, err := rawEng.windowSum(id, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			gotSum, gotN, err := tierEng.windowSum(id, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Fatalf("window %d meter %d: count %d, want %d", wi, id, gotN, wantN)
			}
			// The tier interior adds per-bucket subtotals, so the sum may
			// differ from the flat raw fold in the last ulps — but NaN
			// poisoning and Inf must agree exactly.
			switch {
			case math.IsNaN(wantSum):
				if !math.IsNaN(gotSum) {
					t.Fatalf("window %d meter %d: sum %v, want NaN", wi, id, gotSum)
				}
			case math.IsInf(wantSum, 0):
				if gotSum != wantSum {
					t.Fatalf("window %d meter %d: sum %v, want %v", wi, id, gotSum, wantSum)
				}
			default:
				if diff := math.Abs(gotSum - wantSum); diff > 1e-9*math.Max(1, math.Abs(wantSum)) {
					t.Fatalf("window %d meter %d: sum %v, want %v (diff %g)", wi, id, gotSum, wantSum, diff)
				}
			}
		}
	}
}

// TestDemandSnapshotTierConsistency runs a density endpoint end to end on
// the paired stores: the normalized weights must agree within float noise.
func TestDemandSnapshotTierConsistency(t *testing.T) {
	raw, tier, first, last := buildTierPair(t, nil)
	rawEng, tierEng := NewEngine(raw), NewEngine(tier)
	want, err := rawEng.DemandSnapshot(Selection{}, first, last+1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tierEng.DemandSnapshot(Selection{}, first, last+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].MeterID != want[i].MeterID {
			t.Fatalf("point %d meter %d, want %d", i, got[i].MeterID, want[i].MeterID)
		}
		if diff := math.Abs(got[i].Weight - want[i].Weight); diff > 1e-9 {
			t.Fatalf("point %d weight %v, want %v", i, got[i].Weight, want[i].Weight)
		}
	}
}
