// Package query implements VAP's logic-layer query engine over the store:
// spatial x temporal x intensity predicates, re-aggregation to the paper's
// seven temporal granularities (hourly, every four hours, daily, weekly,
// monthly, quarterly, yearly — demo scenario S2), and quantile-based
// customer group selection (S2's 30%..90% intensity sweep).
package query

import (
	"fmt"
	"math"
	"time"

	"vap/internal/store"
)

// Granularity is a temporal bucketing unit.
type Granularity string

// The granularities the paper's S2 scenario sweeps over.
const (
	GranHourly    Granularity = "hourly"
	Gran4Hourly   Granularity = "4hourly"
	GranDaily     Granularity = "daily"
	GranWeekly    Granularity = "weekly"
	GranMonthly   Granularity = "monthly"
	GranQuarterly Granularity = "quarterly"
	GranYearly    Granularity = "yearly"
)

// AllGranularities lists the supported units in increasing coarseness.
var AllGranularities = []Granularity{
	GranHourly, Gran4Hourly, GranDaily, GranWeekly,
	GranMonthly, GranQuarterly, GranYearly,
}

// ParseGranularity validates a user-supplied granularity string.
func ParseGranularity(s string) (Granularity, error) {
	for _, g := range AllGranularities {
		if string(g) == s {
			return g, nil
		}
	}
	return "", fmt.Errorf("query: unknown granularity %q", s)
}

// ApproxSeconds returns a representative bucket length in seconds, used for
// sensitivity normalization. Calendar-aware truncation is used for actual
// bucketing; this is only a scale.
func (g Granularity) ApproxSeconds() int64 {
	switch g {
	case GranHourly:
		return 3600
	case Gran4Hourly:
		return 4 * 3600
	case GranDaily:
		return 24 * 3600
	case GranWeekly:
		return 7 * 24 * 3600
	case GranMonthly:
		return 30 * 24 * 3600
	case GranQuarterly:
		return 91 * 24 * 3600
	case GranYearly:
		return 365 * 24 * 3600
	default:
		return 3600
	}
}

// Truncate returns the bucket start containing ts (Unix seconds, UTC
// calendar for calendar units).
func (g Granularity) Truncate(ts int64) int64 {
	switch g {
	case GranHourly:
		return ts - mod(ts, 3600)
	case Gran4Hourly:
		return ts - mod(ts, 4*3600)
	case GranDaily:
		return ts - mod(ts, 24*3600)
	case GranWeekly:
		// ISO-ish week starting Monday 00:00 UTC. Unix epoch (1970-01-01)
		// was a Thursday; shift by 3 days so weeks begin on Monday.
		const day = 24 * 3600
		shifted := ts + 3*day
		return shifted - mod(shifted, 7*day) - 3*day
	case GranMonthly:
		t := time.Unix(ts, 0).UTC()
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC).Unix()
	case GranQuarterly:
		t := time.Unix(ts, 0).UTC()
		q := (int(t.Month()) - 1) / 3
		return time.Date(t.Year(), time.Month(q*3+1), 1, 0, 0, 0, 0, time.UTC).Unix()
	case GranYearly:
		t := time.Unix(ts, 0).UTC()
		return time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	default:
		return ts
	}
}

// Next returns the start of the bucket following the one containing ts.
func (g Granularity) Next(ts int64) int64 {
	start := g.Truncate(ts)
	switch g {
	case GranMonthly:
		t := time.Unix(start, 0).UTC()
		return t.AddDate(0, 1, 0).Unix()
	case GranQuarterly:
		t := time.Unix(start, 0).UTC()
		return t.AddDate(0, 3, 0).Unix()
	case GranYearly:
		t := time.Unix(start, 0).UTC()
		return t.AddDate(1, 0, 0).Unix()
	default:
		return start + g.ApproxSeconds()
	}
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// AggFunc selects how samples within a bucket are combined.
type AggFunc string

// Supported aggregates.
const (
	AggSum  AggFunc = "sum"
	AggMean AggFunc = "mean"
	AggMax  AggFunc = "max"
	AggMin  AggFunc = "min"
)

// Bucket is one aggregated interval.
type Bucket struct {
	Start int64   `json:"start"` // bucket start (Unix seconds)
	Value float64 `json:"value"`
	Count int     `json:"count"`
}

// SampleIter is the pushdown sample stream the aggregation paths consume
// instead of materialized slices; *store.SeriesIter satisfies it.
type SampleIter interface {
	Next() bool
	Sample() store.Sample
	Err() error
}

// Aggregate buckets the samples by granularity and combines each bucket
// with fn. Input must be time-ordered; output is time-ordered.
func Aggregate(samples []store.Sample, g Granularity, fn AggFunc) ([]Bucket, error) {
	return AggregateIter(&sliceIter{samples: samples}, g, fn)
}

// sliceIter adapts a materialized slice to SampleIter.
type sliceIter struct {
	samples []store.Sample
	i       int
}

func (s *sliceIter) Next() bool {
	if s.i >= len(s.samples) {
		return false
	}
	s.i++
	return true
}
func (s *sliceIter) Sample() store.Sample { return s.samples[s.i-1] }
func (s *sliceIter) Err() error           { return nil }

// AggregateIter buckets a time-ordered sample stream by granularity and
// combines each bucket with fn, never holding a full decoded series in
// memory. Store iterators take the vectorized batch-decode path; other
// SampleIter implementations fall back to one sample at a time. Both paths
// fold in identical order, so results are bit-for-bit the same.
func AggregateIter(it SampleIter, g Granularity, fn AggFunc) ([]Bucket, error) {
	switch fn {
	case AggSum, AggMean, AggMax, AggMin:
	default:
		return nil, fmt.Errorf("query: unknown aggregate %q", fn)
	}
	if sit, ok := it.(*store.SeriesIter); ok {
		return aggregateBatch(sit, g, fn)
	}
	var out []Bucket
	for it.Next() {
		s := it.Sample()
		start := g.Truncate(s.TS)
		if n := len(out); n > 0 && out[n-1].Start == start {
			b := &out[n-1]
			switch fn {
			case AggSum, AggMean:
				b.Value += s.Value
			case AggMax:
				if s.Value > b.Value {
					b.Value = s.Value
				}
			case AggMin:
				if s.Value < b.Value {
					b.Value = s.Value
				}
			}
			b.Count++
		} else {
			out = append(out, Bucket{Start: start, Value: s.Value, Count: 1})
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if fn == AggMean {
		for i := range out {
			out[i].Value /= float64(out[i].Count)
		}
	}
	return out, nil
}

// aggregateBatch is AggregateIter's vectorized body: whole Gorilla blocks
// decode into a columnar batch, bucket runs are found by scanning the
// sorted timestamp array (Truncate/Next run once per bucket, not per
// sample), and each run folds in a tight loop over the value column. The
// fold order matches the scalar path exactly — same seeding of the first
// sample, same left-to-right summation — so the two paths agree to the
// last bit, NaN propagation included.
func aggregateBatch(it *store.SeriesIter, g Granularity, fn AggFunc) ([]Bucket, error) {
	var out []Bucket
	b := store.GetBatch()
	defer store.PutBatch(b)
	bEnd := int64(math.MinInt64)
	for it.NextBatch(b) {
		ts, vals := b.TS, b.Val
		k := 0
		for k < len(ts) {
			if ts[k] >= bEnd {
				bEnd = g.Next(ts[k])
				out = append(out, Bucket{Start: g.Truncate(ts[k]), Value: vals[k], Count: 1})
				k++
				continue
			}
			r := k + 1
			for r < len(ts) && ts[r] < bEnd {
				r++
			}
			bkt := &out[len(out)-1]
			switch fn {
			case AggSum, AggMean:
				s := bkt.Value
				for _, v := range vals[k:r] {
					s += v
				}
				bkt.Value = s
			case AggMax:
				m := bkt.Value
				for _, v := range vals[k:r] {
					if v > m {
						m = v
					}
				}
				bkt.Value = m
			case AggMin:
				m := bkt.Value
				for _, v := range vals[k:r] {
					if v < m {
						m = v
					}
				}
				bkt.Value = m
			}
			bkt.Count += r - k
			k = r
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if fn == AggMean {
		for i := range out {
			out[i].Value /= float64(out[i].Count)
		}
	}
	return out, nil
}

// Values extracts the value column of a bucket slice.
func Values(bs []Bucket) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = b.Value
	}
	return out
}
