package vql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a lexical token.
type TokKind int

// Token kinds. Keywords are recognised case-insensitively by the parser;
// the lexer only distinguishes the syntactic shape.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber // integer or float literal
	TokString // single- or double-quoted literal
	TokComma
	TokLParen
	TokRParen
	TokStar
	TokSemicolon
	TokOp // = != < <= > >=
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokComma:
		return "','"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokStar:
		return "'*'"
	case TokSemicolon:
		return "';'"
	case TokOp:
		return "operator"
	default:
		return "token"
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokKind
	Text string // raw text (string tokens hold the unquoted value)
	Pos  Pos
}

// Error is a parse or type error carrying the source position, so API
// clients and the REPL can point at the offending token.
type Error struct {
	Msg string
	Pos Pos
}

func (e *Error) Error() string {
	return fmt.Sprintf("vql: %s at line %d, column %d", e.Msg, e.Pos.Line, e.Pos.Col)
}

func errAt(pos Pos, format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...), Pos: pos}
}

// lexer scans a VQL source string into tokens.
type lexer struct {
	src       string
	off       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) skipSpace() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '-':
			// -- line comment
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpace()
	start := l.pos()
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			sb.WriteByte(l.advance())
		}
		return Token{Kind: TokIdent, Text: sb.String(), Pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9':
		var sb strings.Builder
		if c == '-' {
			sb.WriteByte(l.advance())
		}
		seenDot := false
		for {
			c, ok := l.peekByte()
			if !ok {
				break
			}
			if c == '.' && !seenDot {
				seenDot = true
			} else if c < '0' || c > '9' {
				break
			}
			sb.WriteByte(l.advance())
		}
		return Token{Kind: TokNumber, Text: sb.String(), Pos: start}, nil
	case c == '\'' || c == '"':
		quote := l.advance()
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return Token{}, errAt(start, "unterminated string literal")
			}
			l.advance()
			if c == quote {
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(c)
		}
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == '*':
		l.advance()
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == ';':
		l.advance()
		return Token{Kind: TokSemicolon, Text: ";", Pos: start}, nil
	case c == '=' || c == '<' || c == '>' || c == '!':
		first := l.advance()
		op := string(first)
		if nxt, ok := l.peekByte(); ok && nxt == '=' {
			l.advance()
			op += "="
		}
		if op == "!" {
			return Token{}, errAt(start, "unexpected character '!'")
		}
		return Token{Kind: TokOp, Text: op, Pos: start}, nil
	default:
		return Token{}, errAt(start, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
