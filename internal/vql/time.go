package vql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// timeLayouts are the accepted date/time string layouts, tried in order.
// Layouts without an explicit offset are interpreted as UTC, matching the
// store's Unix-seconds convention and the query layer's UTC calendar
// bucketing.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
}

// ParseTime parses a time literal into Unix seconds: either a plain
// integer (Unix seconds, possibly negative) or a date/time string in one
// of the accepted layouts. It is the single time-input validator shared by
// the VQL time-predicate lowering and the HTTP layer's from/to parameters.
func ParseTime(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty time literal")
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	for _, layout := range timeLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t.Unix(), nil
		}
	}
	return 0, fmt.Errorf("bad time %q (want Unix seconds or e.g. '2017-06-01', '2017-06-01 08:00', RFC3339)", s)
}

// validBBox validates the four bbox coordinates: finite, in lon/lat range,
// and min <= max on both axes. Shared by the VQL bbox predicate and the
// HTTP layer's bbox parameter so both surfaces reject the same inputs.
func validBBox(minLon, minLat, maxLon, maxLat float64) error {
	for _, v := range []float64{minLon, minLat, maxLon, maxLat} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bbox coordinates must be finite numbers")
		}
	}
	if minLon < -180 || maxLon > 180 || minLat < -90 || maxLat > 90 {
		return fmt.Errorf("bbox out of range: longitudes in [-180,180], latitudes in [-90,90]")
	}
	if minLon > maxLon || minLat > maxLat {
		return fmt.Errorf("bbox wants minLon <= maxLon and minLat <= maxLat")
	}
	return nil
}

// ValidBBox is validBBox for callers outside the package (the HTTP layer).
func ValidBBox(minLon, minLat, maxLon, maxLat float64) error {
	return validBBox(minLon, minLat, maxLon, maxLat)
}
