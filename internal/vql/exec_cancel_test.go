package vql

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/query"
	"vap/internal/store"
)

// flipCtx reports no error for the first `after` Err() probes, then is
// permanently cancelled — a deterministic stand-in for a context that
// cancels partway through a scan.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCancellationAbortsMidScan proves the vectorized batch loop checks
// cancellation per decoded batch, not just per meter: with ONE meter
// holding many batches worth of samples, a context that flips to
// cancelled after the scan starts must abort the scan. If only the
// per-meter check existed, the single meter would pass it once (while the
// context still reported nil) and the scan would run to completion.
func TestCancellationAbortsMidScan(t *testing.T) {
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeter(store.Meter{ID: 1, Location: geo.Point{Lon: 10, Lat: 55}, Zone: store.ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	const samples = 64 * store.BatchSize // 64 batches in one meter
	smps := make([]store.Sample, samples)
	for i := range smps {
		smps[i] = store.Sample{TS: int64(i * 60), Value: float64(i)}
	}
	if _, err := st.AppendBatch(1, smps); err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngineWorkers(st, 1) // sequential: a single scan chunk

	// GROUP BY zone keeps the scan on raw samples: bucketless plans never
	// ride a rollup tier (see planTier), so all 64 batches are decoded.
	p, err := Compile(mustParse(t, "SELECT zone, sum(value) FROM meters GROUP BY zone"))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := ResolveScanMeters(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	from, to, ok := p.ResolveWindow(st)
	if !ok {
		t.Fatal("window did not resolve")
	}

	// Sanity: with a live context the scan completes over every sample.
	full, err := ExecuteResolved(context.Background(), eng, p, ids, from, to, true)
	if err != nil {
		t.Fatal(err)
	}
	if full.Samples != samples {
		t.Fatalf("full scan aggregated %d samples, want %d", full.Samples, samples)
	}

	// Cancel after a handful of probes: past the per-meter check, well
	// before the 64 per-batch checks run out.
	ctx := &flipCtx{Context: context.Background(), after: 4}
	if _, err := ExecuteResolved(ctx, eng, p, ids, from, to, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancellation returned %v, want context.Canceled", err)
	}
	if n := ctx.calls.Load(); n > 16 {
		t.Fatalf("scan kept probing after cancellation: %d Err() calls", n)
	}
}

// TestGrantDeadlineAbortsScan drives the same path through a governed
// grant: an admitted query whose controller-stamped deadline expires
// mid-scan surfaces context.DeadlineExceeded from the batch loop.
func TestGrantDeadlineAbortsScan(t *testing.T) {
	c := govern.New(govern.Config{QueryDeadline: time.Minute})
	g, err := c.Admit(context.Background(), govern.Request{Class: govern.ClassAnalytics})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx := govern.WithGrant(context.Background(), g)
	dctx, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second)) // already expired
	defer cancel()
	pace := govern.PaceFunc(dctx)
	if err := pace(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired grant deadline paced to %v, want DeadlineExceeded", err)
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
