package vql

import (
	"fmt"
	"strings"

	"vap/internal/query"
)

// Query is the parsed form of one VQL statement, before type checking and
// lowering. Field order mirrors the grammar.
type Query struct {
	Explain bool
	Select  []SelectItem
	Where   []Pred
	GroupBy []KeyExpr
	OrderBy []OrderTerm
	Limit   int // -1 when absent
}

// SelectItem is one output column: an aggregate or a group-key reference,
// optionally aliased.
type SelectItem struct {
	Expr Expr
	As   string
	Pos  Pos
}

// Name returns the column's output name: the alias when present, the
// canonical expression text otherwise.
func (s SelectItem) Name() string {
	if s.As != "" {
		return s.As
	}
	return s.Expr.String()
}

// Expr is a select-list expression.
type Expr interface {
	fmt.Stringer
	exprPos() Pos
}

// AggFn names a supported aggregate function.
type AggFn string

// Supported aggregate functions. AggCount (count(*)) counts every row,
// NaN readings included; AggCountValue (count(value)) counts only finite
// samples; the others fold sample values.
const (
	AggSum        AggFn = "sum"
	AggMean       AggFn = "mean"
	AggMin        AggFn = "min"
	AggMax        AggFn = "max"
	AggCount      AggFn = "count"
	AggCountValue AggFn = "count_value"
)

// AggExpr is an aggregate call: sum(value), mean(value), min(value),
// max(value), count(*), count(value).
type AggExpr struct {
	Fn  AggFn
	Pos Pos
}

func (a AggExpr) String() string {
	switch a.Fn {
	case AggCount:
		return "count(*)"
	case AggCountValue:
		return "count(value)"
	}
	return string(a.Fn) + "(value)"
}
func (a AggExpr) exprPos() Pos { return a.Pos }

// KeyKind names a grouping dimension.
type KeyKind string

// Grouping dimensions.
const (
	KeyBucket KeyKind = "bucket" // time bucket at a granularity
	KeyMeter  KeyKind = "meter"  // per-meter rows
	KeyZone   KeyKind = "zone"   // per-zone rows
)

// KeyExpr is a group key: bucket(<granularity>), meter, or zone. It can
// appear both in GROUP BY and in the select list (where it must also be
// grouped on).
type KeyExpr struct {
	Kind KeyKind
	Gran query.Granularity // set for KeyBucket
	Pos  Pos
}

func (k KeyExpr) String() string {
	if k.Kind == KeyBucket {
		return fmt.Sprintf("bucket(%s)", k.Gran)
	}
	return string(k.Kind)
}
func (k KeyExpr) exprPos() Pos { return k.Pos }

// Pred is a WHERE conjunct. All predicate forms lower into the store's
// pushdown primitives (query.Selection); there is no post-filter.
type Pred interface {
	fmt.Stringer
	predPos() Pos
}

// BBoxPred is bbox(minLon, minLat, maxLon, maxLat).
type BBoxPred struct {
	MinLon, MinLat, MaxLon, MaxLat float64
	Pos                            Pos
}

func (p BBoxPred) String() string {
	return fmt.Sprintf("bbox(%g, %g, %g, %g)", p.MinLon, p.MinLat, p.MaxLon, p.MaxLat)
}
func (p BBoxPred) predPos() Pos { return p.Pos }

// ZonePred is zone = '<zone>'.
type ZonePred struct {
	Zone string
	Pos  Pos
}

func (p ZonePred) String() string { return fmt.Sprintf("zone = '%s'", p.Zone) }
func (p ZonePred) predPos() Pos   { return p.Pos }

// MeterPred is meter = N or meter IN (a, b, c).
type MeterPred struct {
	IDs []int64
	Pos Pos
}

func (p MeterPred) String() string {
	if len(p.IDs) == 1 {
		return fmt.Sprintf("meter = %d", p.IDs[0])
	}
	parts := make([]string, len(p.IDs))
	for i, id := range p.IDs {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "meter in (" + strings.Join(parts, ", ") + ")"
}
func (p MeterPred) predPos() Pos { return p.Pos }

// TimePred is one time comparison, already normalized to half-open window
// contributions: Op is ">=" (window start) or "<" (window end).
// time BETWEEN a AND b parses into two TimePreds.
type TimePred struct {
	Op    string // ">=" or "<"
	Value int64  // Unix seconds
	Pos   Pos
}

func (p TimePred) String() string { return fmt.Sprintf("time %s %d", p.Op, p.Value) }
func (p TimePred) predPos() Pos   { return p.Pos }

// OrderTerm is one ORDER BY entry. Exactly one of Ordinal (1-based) or Ref
// (alias or canonical expression text) identifies the column.
type OrderTerm struct {
	Ref     string
	Ordinal int // 0 when Ref is used
	Desc    bool
	Pos     Pos
}

func (o OrderTerm) String() string {
	dir := "asc"
	if o.Desc {
		dir = "desc"
	}
	if o.Ordinal > 0 {
		return fmt.Sprintf("%d %s", o.Ordinal, dir)
	}
	return fmt.Sprintf("%s %s", o.Ref, dir)
}
