package vql

import (
	"vap/internal/query"
	"vap/internal/store"
)

// GroupStrategy names the physical grouping layout the planner chose for a
// scan.
type GroupStrategy string

const (
	// GroupSingle: no bucket key — one aggregate state per (meter, zone)
	// base key, whole batches fold in one kernel call.
	GroupSingle GroupStrategy = "single"
	// GroupDense: bucket starts are enumerable from the window and the
	// granularity, so each worker aggregates into a bucket-indexed array
	// with precomputed boundaries — no hashing and no per-sample Truncate
	// on the hot path.
	GroupDense GroupStrategy = "dense"
	// GroupMap: bucket count is unknown or too large for an array; groups
	// hash on the bucket start, still one lookup per bucket run rather
	// than per sample.
	GroupMap GroupStrategy = "map"
)

// maxDenseBuckets caps the dense path's per-worker array. Beyond this the
// array itself starts to out-weigh hashing (40 B of aggregate state per
// bucket, mostly empty for sparse series), so the planner falls back to
// GroupMap.
const maxDenseBuckets = 1 << 16

// minSamplesPerWorker is the fan-out floor: a goroutine (plus its batch
// scratch) is only worth spinning up when it has at least this many samples
// to decode.
const minSamplesPerWorker = 8192

// ScanCost is the planner's statistics-driven estimate for one resolved
// scan, and the physical choices derived from it. Estimates come from
// append-time chunk metadata (store.SeriesStats) — computing them never
// decodes data.
type ScanCost struct {
	Meters     int   // meters the selection resolved to
	EstSamples int64 // window-overlap estimate of samples to decode
	EstBlocks  int64 // compressed blocks touched
	EstBytes   int64 // compressed bytes touched

	Strategy GroupStrategy
	Buckets  int // dense bucket count (0 unless Strategy == GroupDense)
	Workers  int // chosen fan-out width
	Chunks   int // contiguous meter chunks handed to workers
}

// planScan estimates the cost of scanning ids over [from, to) from
// per-series stats and picks the grouping strategy and parallelism degree.
// The returned bounds are the dense path's ascending bucket starts (nil for
// the other strategies).
func planScan(p *Plan, stats []store.SeriesStats, from, to int64, engineWorkers int) (ScanCost, []int64) {
	c := ScanCost{Meters: len(stats)}
	for _, s := range stats {
		if s.Samples == 0 || s.MaxTS < from || s.MinTS >= to {
			continue
		}
		// Fraction of the series extent the window covers, assuming samples
		// spread evenly across [MinTS, MaxTS] — exact for the regular feeds
		// meters produce, a safe overestimate for bursty ones.
		olo, ohi := s.MinTS, s.MaxTS
		if from > olo {
			olo = from
		}
		if to-1 < ohi {
			ohi = to - 1
		}
		frac := 1.0
		if span := s.MaxTS - s.MinTS; span > 0 {
			frac = float64(ohi-olo+1) / float64(span+1)
		}
		es := int64(frac*float64(s.Samples) + 0.5)
		eb := int64(frac*float64(s.Blocks) + 0.5)
		ebytes := int64(frac*float64(s.CompressedBytes) + 0.5)
		if eb < 1 {
			eb = 1 // an overlapping series decodes at least one block
		}
		c.EstSamples += es
		c.EstBlocks += eb
		c.EstBytes += ebytes
	}

	var bounds []int64
	if !p.hasBucket {
		c.Strategy = GroupSingle
	} else if bounds = bucketBounds(p.Granularity(), from, to, maxDenseBuckets); bounds != nil {
		c.Strategy = GroupDense
		c.Buckets = len(bounds)
	} else {
		c.Strategy = GroupMap
	}

	w := engineWorkers
	if w > c.Meters {
		w = c.Meters
	}
	// Don't fan out further than the data pays for: each extra worker must
	// have a full quantum of samples to chew on.
	if maxUseful := int(c.EstSamples/minSamplesPerWorker) + 1; w > maxUseful {
		w = maxUseful
	}
	if w < 1 {
		w = 1
	}
	c.Workers = w
	// Chunks over-partition by 4x so ForEach's dynamic cursor can rebalance
	// skewed meters; single-worker scans run as one inline chunk.
	c.Chunks = w * 4
	if w == 1 {
		c.Chunks = 1
	}
	if c.Chunks > c.Meters {
		c.Chunks = c.Meters
	}
	if c.Chunks < 1 {
		c.Chunks = 1
	}
	return c, bounds
}

// bucketBounds enumerates the ascending bucket starts covering [from, to),
// or nil when the count would exceed maxBuckets (or cannot be bounded).
// Works for calendar granularities too — the walk uses Truncate/Next, the
// same functions the scalar path buckets with.
func bucketBounds(g query.Granularity, from, to int64, maxBuckets int) []int64 {
	if to <= from {
		return nil
	}
	// Cheap width-based bound before walking: catches "whole extent at
	// hourly" class windows without iterating. Unsigned subtraction is
	// overflow-safe for any from < to.
	if span := uint64(to) - uint64(from); span/uint64(g.ApproxSeconds()) > uint64(maxBuckets) {
		return nil
	}
	bounds := make([]int64, 0, (to-from)/g.ApproxSeconds()+2)
	for t := g.Truncate(from); t < to; t = g.Next(t) {
		if len(bounds) >= maxBuckets {
			return nil
		}
		bounds = append(bounds, t)
	}
	if len(bounds) == 0 {
		return nil
	}
	return bounds
}
