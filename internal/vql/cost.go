package vql

import (
	"fmt"

	"vap/internal/query"
	"vap/internal/store"
)

// GroupStrategy names the physical grouping layout the planner chose for a
// scan.
type GroupStrategy string

const (
	// GroupSingle: no bucket key — one aggregate state per (meter, zone)
	// base key, whole batches fold in one kernel call.
	GroupSingle GroupStrategy = "single"
	// GroupDense: bucket starts are enumerable from the window and the
	// granularity, so each worker aggregates into a bucket-indexed array
	// with precomputed boundaries — no hashing and no per-sample Truncate
	// on the hot path.
	GroupDense GroupStrategy = "dense"
	// GroupMap: bucket count is unknown or too large for an array; groups
	// hash on the bucket start, still one lookup per bucket run rather
	// than per sample.
	GroupMap GroupStrategy = "map"
)

// maxDenseBuckets caps the dense path's per-worker array. Beyond this the
// array itself starts to out-weigh hashing (40 B of aggregate state per
// bucket, mostly empty for sparse series), so the planner falls back to
// GroupMap.
const maxDenseBuckets = 1 << 16

// minSamplesPerWorker is the fan-out floor: a goroutine (plus its batch
// scratch) is only worth spinning up when it has at least this many samples
// to decode.
const minSamplesPerWorker = 8192

// ScanCost is the planner's statistics-driven estimate for one resolved
// scan, and the physical choices derived from it. Estimates come from
// append-time chunk metadata (store.SeriesStats) — computing them never
// decodes data.
type ScanCost struct {
	Meters     int   // meters the selection resolved to
	EstSamples int64 // window-overlap estimate of samples to decode
	EstBlocks  int64 // compressed blocks touched
	EstBytes   int64 // compressed bytes touched

	Strategy GroupStrategy
	Buckets  int // dense bucket count (0 unless Strategy == GroupDense)
	Workers  int // chosen fan-out width
	Chunks   int // contiguous meter chunks handed to workers

	// TierRes is the rollup tier resolution chosen to serve the scan; 0
	// means a raw-block scan, with TierReason naming why. When non-zero,
	// TierBuckets/TierEdges estimate the interior tier buckets read and the
	// raw samples decoded for the unaligned window edges.
	TierRes     int64
	TierBuckets int64
	TierEdges   int64
	TierReason  string

	// EstGroups estimates the group states the scan materializes across
	// partials and the sink — the driver of aggregation-state memory.
	EstGroups int64

	// overlap counts the meters whose extent intersects the window — the
	// tier cost model's bucket-count multiplier.
	overlap int
}

// Approximate per-unit sizes for the in-flight memory estimate: one
// aggregate state (aggState plus slice/alignment overhead), one hash-map
// group entry (key + pointer + state), and one decoded sample in batch
// scratch (timestamp + value).
const (
	aggStateBytes   = 48
	groupEntryBytes = 96
	sampleBytes     = 16
)

// EstMemBytes estimates the scan's peak in-flight bytes from the physical
// choices: per-worker decode scratch, the dense bucket arrays (one per
// chunk worker plus the merge sink), and the group states. It is the
// admission controller's memory-budget input — a deliberate overestimate
// (sparse meters touch fewer buckets than the bound assumes) so budget
// enforcement errs toward shedding, never toward OOM.
func (c *ScanCost) EstMemBytes() int64 {
	w := int64(c.Workers)
	if w < 1 {
		w = 1
	}
	mem := w * store.BatchSize * sampleBytes
	if c.Strategy == GroupDense {
		mem += (w + 1) * int64(c.Buckets) * aggStateBytes
	}
	return mem + c.EstGroups*groupEntryBytes
}

// EstimateScan exposes the planner's cost estimate for an already-resolved
// scan without executing anything — the admission controller's input.
// Estimates come from append-time chunk metadata, so calling this never
// decodes data.
func EstimateScan(eng *query.Engine, p *Plan, ids []int64, from, to int64) ScanCost {
	c, _ := planScan(p, eng.Store().SeriesStats(ids), from, to, eng.Workers(), eng.Store().RollupResolutions())
	return c
}

// planScan estimates the cost of scanning ids over [from, to) from
// per-series stats and picks the serving tier (if any), the grouping
// strategy, and the parallelism degree. tiers lists the store's maintained
// rollup resolutions (ascending; nil disables tier serving). The returned
// bounds are the dense path's ascending bucket starts (nil for the other
// strategies).
func planScan(p *Plan, stats []store.SeriesStats, from, to int64, engineWorkers int, tiers []int64) (ScanCost, []int64) {
	c := ScanCost{Meters: len(stats)}
	for _, s := range stats {
		if s.Samples == 0 || s.MaxTS < from || s.MinTS >= to {
			continue
		}
		c.overlap++
		// Fraction of the series extent the window covers, assuming samples
		// spread evenly across [MinTS, MaxTS] — exact for the regular feeds
		// meters produce, a safe overestimate for bursty ones.
		olo, ohi := s.MinTS, s.MaxTS
		if from > olo {
			olo = from
		}
		if to-1 < ohi {
			ohi = to - 1
		}
		frac := 1.0
		if span := s.MaxTS - s.MinTS; span > 0 {
			frac = float64(ohi-olo+1) / float64(span+1)
		}
		es := int64(frac*float64(s.Samples) + 0.5)
		eb := int64(frac*float64(s.Blocks) + 0.5)
		ebytes := int64(frac*float64(s.CompressedBytes) + 0.5)
		if eb < 1 {
			eb = 1 // an overlapping series decodes at least one block
		}
		c.EstSamples += es
		c.EstBlocks += eb
		c.EstBytes += ebytes
	}

	var bounds []int64
	if !p.hasBucket {
		c.Strategy = GroupSingle
	} else if bounds = bucketBounds(p.Granularity(), from, to, maxDenseBuckets); bounds != nil {
		c.Strategy = GroupDense
		c.Buckets = len(bounds)
	} else {
		c.Strategy = GroupMap
	}
	planTier(p, &c, from, to, tiers)

	// Group-state estimate: one state per overlapping meter without a
	// bucket dimension; per (meter, bucket) otherwise, with the map
	// strategy's bucket count bounded by the window span. Both bounds cap
	// at the sample estimate — a group needs at least one sample to exist.
	switch {
	case !p.hasBucket:
		c.EstGroups = int64(c.overlap)
	case c.Strategy == GroupDense:
		c.EstGroups = int64(c.overlap) * int64(c.Buckets)
	default:
		bw := p.Granularity().ApproxSeconds()
		if bw < 1 {
			bw = 1
		}
		c.EstGroups = int64(c.overlap) * ((to-from)/bw + 1)
	}
	if c.EstGroups > c.EstSamples {
		c.EstGroups = c.EstSamples
	}

	// Fan-out sizes to the work actually done: tier buckets merged plus
	// edge samples decoded when a tier serves, decoded samples otherwise.
	effort := c.EstSamples
	if c.TierRes != 0 {
		effort = c.TierBuckets + c.TierEdges
	}
	w := engineWorkers
	if w > c.Meters {
		w = c.Meters
	}
	// Don't fan out further than the data pays for: each extra worker must
	// have a full quantum of samples to chew on.
	if maxUseful := int(effort/minSamplesPerWorker) + 1; w > maxUseful {
		w = maxUseful
	}
	if w < 1 {
		w = 1
	}
	c.Workers = w
	// Chunks over-partition by 4x so ForEach's dynamic cursor can rebalance
	// skewed meters; single-worker scans run as one inline chunk.
	c.Chunks = w * 4
	if w == 1 {
		c.Chunks = 1
	}
	if c.Chunks > c.Meters {
		c.Chunks = c.Meters
	}
	if c.Chunks < 1 {
		c.Chunks = 1
	}
	return c, bounds
}

// tierBucketWidth returns the fixed bucket width of g when every bucket of
// g is one resolution-aligned interval, or 0 when it is not. Weekly buckets
// are Monday-aligned (a 604800s tier would sit on epoch-Thursday phase) and
// the calendar units are variable-width, so only the first three qualify.
func tierBucketWidth(g query.Granularity) int64 {
	switch g {
	case query.GranHourly:
		return 3600
	case query.Gran4Hourly:
		return 4 * 3600
	case query.GranDaily:
		return 24 * 3600
	default:
		return 0
	}
}

// planTier decides whether a rollup tier serves the scan. The rule is
// deliberately strict — the tier resolution must equal the query's bucket
// width — because then every interior query bucket is exactly one tier
// bucket, whose state was folded sample-by-sample in the same order the raw
// executor would have used: every aggregate (sums included, NaN/±Inf
// included) is bit-identical to a raw scan. Coarser-than-tier buckets
// (weekly from a daily tier) would merge several tier sums and perturb
// float results in the last ulp, so they scan raw. Unaligned window edges
// always scan raw: a partial edge bucket's tier state would cover samples
// outside the window.
func planTier(p *Plan, c *ScanCost, from, to int64, tiers []int64) {
	if len(tiers) == 0 {
		c.TierReason = "no rollup tiers maintained"
		return
	}
	if !p.hasBucket {
		c.TierReason = "no bucket dimension (raw fold keeps the sum order bit-exact)"
		return
	}
	width := tierBucketWidth(p.Granularity())
	if width == 0 {
		c.TierReason = string(p.Granularity()) + " buckets are not tier-aligned"
		return
	}
	have := false
	for _, r := range tiers {
		if r == width {
			have = true
			break
		}
	}
	if !have {
		c.TierReason = fmt.Sprintf("no %ds tier maintained", width)
		return
	}
	aFrom := alignUp(from, width)
	aTo := alignDown(to, width)
	if aTo <= aFrom {
		c.TierReason = "window narrower than one tier bucket"
		return
	}
	// Interior buckets: at most one per aligned interval per overlapping
	// meter; edge samples: the window-overlap estimate scaled by the edge
	// share of the window. Both upper bounds — sparse meters have fewer.
	estBuckets := int64(c.overlap) * ((aTo - aFrom) / width)
	if estBuckets > c.EstSamples {
		estBuckets = c.EstSamples
	}
	edgeFrac := float64((aFrom-from)+(to-aTo)) / float64(to-from)
	estEdges := int64(edgeFrac*float64(c.EstSamples) + 0.5)
	if tierCost := estBuckets + estEdges; tierCost*2 >= c.EstSamples {
		c.TierReason = fmt.Sprintf("tier would read ~%d units vs ~%d raw samples; not worth it", tierCost, c.EstSamples)
		return
	}
	c.TierRes = width
	c.TierBuckets = estBuckets
	c.TierEdges = estEdges
}

// alignUp rounds ts up to the next multiple of w (identity when aligned);
// alignDown rounds toward -inf. Both are negative-safe.
func alignUp(ts, w int64) int64 {
	if m := tmod(ts, w); m != 0 {
		return ts + (w - m)
	}
	return ts
}

func alignDown(ts, w int64) int64 { return ts - tmod(ts, w) }

func tmod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// bucketBounds enumerates the ascending bucket starts covering [from, to),
// or nil when the count would exceed maxBuckets (or cannot be bounded).
// Works for calendar granularities too — the walk uses Truncate/Next, the
// same functions the scalar path buckets with.
func bucketBounds(g query.Granularity, from, to int64, maxBuckets int) []int64 {
	if to <= from {
		return nil
	}
	// Cheap width-based bound before walking: catches "whole extent at
	// hourly" class windows without iterating. Unsigned subtraction is
	// overflow-safe for any from < to.
	if span := uint64(to) - uint64(from); span/uint64(g.ApproxSeconds()) > uint64(maxBuckets) {
		return nil
	}
	bounds := make([]int64, 0, (to-from)/g.ApproxSeconds()+2)
	for t := g.Truncate(from); t < to; t = g.Next(t) {
		if len(bounds) >= maxBuckets {
			return nil
		}
		bounds = append(bounds, t)
	}
	if len(bounds) == 0 {
		return nil
	}
	return bounds
}
