// Package vql implements VQL, VAP's typed query language for meter
// analytics: a lexer, recursive-descent parser, typed logical plan, and a
// planner that compiles
//
//	SELECT <agg exprs | group keys> FROM meters
//	  [WHERE <bbox/zone/meter/time predicates>]
//	  [GROUP BY bucket(<granularity>) | meter | zone, ...]
//	  [ORDER BY ...] [LIMIT n]
//
// down to the data layer's existing primitives. WHERE predicates lower
// into query.Selection (so selection-scoped version fingerprints keep VQL
// results cacheable), aggregates run over the store's vectorized batch
// decoder through grouping kernels a statistics-driven cost model picks
// per query, and multi-meter plans fan out across workers with context
// cancellation.
package vql

import (
	"context"
	"errors"
	"math"
	"sort"

	"vap/internal/exec"
	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/query"
	"vap/internal/store"
)

func geoBox(pr BBoxPred) geo.BBox {
	return geo.NewBBox(
		geo.Point{Lon: pr.MinLon, Lat: pr.MinLat},
		geo.Point{Lon: pr.MaxLon, Lat: pr.MaxLat})
}

// Result is one executed query: column names aligned with row cells.
// Cell types are int64 (bucket starts, meter IDs, counts), float64
// (aggregates), or string (zones). Aggregates that fold to a non-finite
// value (stored NaN/±Inf, overflow) surface as null — every cell is
// JSON-encodable.
type Result struct {
	Columns []string  `json:"columns"`
	Types   []ColType `json:"types"` // cell types aligned with Columns
	Rows    [][]any   `json:"rows"`
	Window  [2]int64  `json:"window"`  // resolved half-open scan window
	Meters  int       `json:"meters"`  // meters scanned
	Samples int       `json:"samples"` // samples aggregated
	Plan    string    `json:"plan"`    // EXPLAIN rendering of the plan
	// Fingerprint is the selection-scoped data version of exactly the
	// state the rows were computed from: the commutative combination of
	// the per-meter versions each scan observed at iterator-snapshot time.
	// Two results with equal fingerprints are byte-identical even when
	// computed concurrently with streaming appends.
	Fingerprint uint64 `json:"fingerprint"`
}

// ResolveWindow returns the plan's effective half-open scan window over
// st: explicit bounds where the query set them, the store's data extent
// filling the absent side(s). ok is false when the window cannot be
// resolved (an empty store, or an extent entirely outside the bounds) —
// the query then yields zero rows. Callers memoizing results of plans
// with an absent side must key on the resolved window: the extent moves
// when any meter receives newer samples.
func (p *Plan) ResolveWindow(st *store.Store) (from, to int64, ok bool) {
	if p.HasFrom && p.HasTo {
		return p.From, p.To, p.To > p.From
	}
	first, last, has := st.TimeBounds()
	if !has {
		return 0, 0, false
	}
	from, to = first, last+1
	if p.HasFrom {
		from = p.From
	}
	if p.HasTo {
		to = p.To
	}
	return from, to, to > from
}

// groupKey identifies one output group. Unused dimensions stay at their
// zero values, so the ungrouped (single-row) query uses the zero key.
type groupKey struct {
	bucket int64
	meter  int64
	zone   store.ZoneType
}

// aggState folds one group's samples. All aggregate functions share one
// state so a select list mixing sum/mean/min/max/count scans once. NaN
// samples are counted but never folded: a single bad reading must not
// poison a bucket's sum (and count(*) still counts the row).
type aggState struct {
	sum      float64
	count    int64 // finite samples folded
	nan      int64 // NaN samples skipped
	min, max float64
}

func newAggState() *aggState {
	return &aggState{min: math.Inf(1), max: math.Inf(-1)}
}

func (a *aggState) add(v float64) {
	if v != v { // NaN
		a.nan++
		return
	}
	a.sum += v
	a.count++
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

// foldVals is the batch kernel: one run of values from a decoded batch,
// folded with the same per-sample order the scalar add uses (sums stay
// bit-identical between the two executors).
func (a *aggState) foldVals(vals []float64) {
	sum, mn, mx := a.sum, a.min, a.max
	n, nan := a.count, a.nan
	for _, v := range vals {
		if v != v {
			nan++
			continue
		}
		sum += v
		n++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	a.sum, a.count, a.nan, a.min, a.max = sum, n, nan, mn, mx
}

// foldSum is the min/max-free kernel for plans whose aggregates are only
// sum/mean/count — one compare and one add per sample.
func (a *aggState) foldSum(vals []float64) {
	sum, n, nan := a.sum, a.count, a.nan
	for _, v := range vals {
		if v != v {
			nan++
			continue
		}
		sum += v
		n++
	}
	a.sum, a.count, a.nan = sum, n, nan
}

func (a *aggState) merge(b *aggState) {
	a.sum += b.sum
	a.count += b.count
	a.nan += b.nan
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// mergeRollup folds one pre-aggregated tier bucket into the state. A tier
// bucket's fields were folded sample-by-sample in the same order add would
// have used, so merging a whole aligned bucket into a fresh state yields
// exactly the state a raw scan of those samples would have produced.
func (a *aggState) mergeRollup(b *store.RollupBucket) {
	a.sum += b.Sum
	a.count += b.Count
	a.nan += b.NaN
	if b.Count > 0 {
		if b.Min < a.min {
			a.min = b.Min
		}
		if b.Max > a.max {
			a.max = b.Max
		}
	}
}

// finiteOrNull maps non-finite aggregate results to null: NaN and ±Inf
// have no JSON encoding, and a bucket whose aggregate overflowed carries
// no usable value anyway.
func finiteOrNull(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}

// value finalizes one aggregate. Value-folding aggregates over zero
// finite samples are null (JSON-encodable, unlike NaN/±Inf); count(*)
// counts every row, NaN readings included, while count(value) counts
// only the finite samples the value aggregates folded.
func (a *aggState) value(fn AggFn) any {
	switch fn {
	case AggCountValue:
		return a.count
	case AggSum:
		return finiteOrNull(a.sum)
	case AggMean:
		if a.count == 0 {
			return nil
		}
		return finiteOrNull(a.sum / float64(a.count))
	case AggMin:
		if a.count == 0 {
			return nil
		}
		return finiteOrNull(a.min)
	case AggMax:
		if a.count == 0 {
			return nil
		}
		return finiteOrNull(a.max)
	default: // AggCount
		return a.count + a.nan
	}
}

// needMinMax reports whether any output column folds min or max — the
// kernel selector.
func (p *Plan) needMinMax() bool {
	for _, c := range p.Cols {
		if !c.IsKey && (c.Agg == AggMin || c.Agg == AggMax) {
			return true
		}
	}
	return false
}

// Execute runs a compiled plan against the engine's store: it resolves
// the meter selection and delegates to ExecuteResolved. A selection
// matching no meters or an unresolvable window yields zero rows, not an
// error (SQL semantics).
func Execute(ctx context.Context, eng *query.Engine, p *Plan) (*Result, error) {
	ids, err := ResolveScanMeters(eng, p)
	if err != nil {
		return nil, err
	}
	from, to, ok := p.ResolveWindow(eng.Store())
	return ExecuteResolved(ctx, eng, p, ids, from, to, ok)
}

// ResolveScanMeters resolves the plan's meter set for execution: the
// selection's meters minus ids that are not registered (an explicit
// meter set naming unknown ids filters to nothing instead of erroring the
// scan with ErrUnknownMeter). A selection matching nothing returns an
// empty set, not query.ErrNoMeters.
func ResolveScanMeters(eng *query.Engine, p *Plan) ([]int64, error) {
	ids, err := eng.ResolveMeters(p.Sel)
	if err != nil {
		if errors.Is(err, query.ErrNoMeters) {
			return nil, nil
		}
		return nil, err
	}
	cat := eng.Store().Catalog()
	// Filter into a fresh slice: ids may alias memory the engine handed out
	// (an explicit MeterIDs selection returns the caller's backing array),
	// and compacting in place would corrupt it.
	known := make([]int64, 0, len(ids))
	for _, id := range ids {
		if _, ok := cat.Get(id); ok {
			known = append(known, id)
		}
	}
	return known, nil
}

// ExecuteResolved runs a compiled plan over an already-resolved meter set
// and scan window (from ResolveScanMeters and Plan.ResolveWindow —
// callers that also fingerprint the selection and key caches on the
// window resolve once and share both, so the keyed window can never
// diverge from the executed one). windowOK false yields zero rows.
//
// Execution is vectorized: a cost model over per-series statistics picks
// the grouping layout (dense bucket array, hash, or single group) and the
// fan-out width, then contiguous meter chunks scan through the store's
// batch decoder into per-chunk partial aggregates. Bucket boundaries are
// found by scanning the sorted timestamp array — the kernels never
// truncate or hash per sample.
func ExecuteResolved(ctx context.Context, eng *query.Engine, p *Plan, ids []int64, from, to int64, windowOK bool) (*Result, error) {
	res := &Result{Columns: make([]string, len(p.Cols)), Types: p.ColumnTypes(), Rows: [][]any{}}
	for i, c := range p.Cols {
		res.Columns[i] = c.Name
	}
	if !windowOK {
		from, to = 0, 0
	}
	cost, bounds := planScan(p, eng.Store().SeriesStats(ids), from, to, eng.Workers(), eng.Store().RollupResolutions())
	res.Plan = explainText(p, &cost, true)
	if len(ids) == 0 || !windowOK {
		res.Rows = p.buildRows(nil)
		return res, nil
	}
	res.Window = [2]int64{from, to}
	res.Meters = len(ids)

	// Partials are per METER, not per chunk, and merge in ascending meter
	// order below: every meter's samples fold into their own states and the
	// states combine left-associatively, so the result is bit-identical to
	// the scalar executor — and independent of the planner's worker/chunk
	// split (float addition is not associative; collapsing a chunk's meters
	// into shared state would tie result bytes to the fan-out choice).
	sc := newScanConfig(ctx, p, eng, bounds, from, to)
	if cost.TierRes != 0 {
		sc.tierRes = cost.TierRes
		sc.aFrom = alignUp(from, cost.TierRes)
		sc.aTo = alignDown(to, cost.TierRes)
	}
	sink := newGroupSink(sc)
	vers := make([]uint64, len(ids))
	if cost.Chunks == 1 {
		// Sequential scan: each meter's partial merges into the sink as
		// soon as the meter finishes — no partial storage, no copies.
		n, err := sc.scanChunk(ctx, ids, vers, nil, sink)
		if err != nil {
			return nil, err
		}
		res.Samples = n
	} else {
		chunkSize := (len(ids) + cost.Chunks - 1) / cost.Chunks
		partials := make([]meterPartial, len(ids))
		err := exec.ForEach(ctx, cost.Chunks, cost.Workers, func(c int) error {
			lo, hi := c*chunkSize, (c+1)*chunkSize
			if hi > len(ids) {
				hi = len(ids)
			}
			_, cerr := sc.scanChunk(ctx, ids[lo:hi], vers[lo:hi], partials[lo:hi], nil)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		for i := range partials {
			mp := &partials[i]
			res.Samples += mp.n
			if mp.dense != nil {
				sink.addDense(mp.base, mp.dense, mp.lo)
			} else if mp.groups != nil {
				sink.addMap(mp.groups)
			}
		}
	}

	res.Fingerprint = store.FingerprintPairs(ids, vers)
	res.Rows = p.buildRows(sink.finish())
	return res, nil
}

// meterPartial holds one meter's partial aggregates. Dense-strategy scans
// keep the bucket-indexed slice (covering buckets [lo, lo+len(dense)) of
// the plan's bounds, base key base) instead of a map, so the hot path
// never hashes a group key; the other strategies fill groups. n is the
// meter's in-window sample count.
type meterPartial struct {
	groups map[groupKey]*aggState
	dense  []aggState
	lo     int
	base   groupKey
	n      int
}

// groupSink accumulates per-meter partials into the final group states in
// ascending meter order. When the dense grouping has no meter/zone
// dimension every partial shares the zero base key, so the merge goes
// straight into a bucket-indexed array — no group-key hashing on the
// merge path. An untouched entry is the zero state (count==0 && nan==0, a
// state no emitted partial can have), and the first merge into it copies
// rather than folds, keeping the per-group association identical to the
// map path (and so to the scalar executor).
type groupSink struct {
	bounds []int64
	groups map[groupKey]*aggState
	dense  []aggState // bucket-indexed; non-nil only for base-less dense grouping
}

func newGroupSink(sc *scanConfig) *groupSink {
	s := &groupSink{bounds: sc.bounds, groups: make(map[groupKey]*aggState)}
	if sc.bounds != nil && !sc.groupMeter && !sc.needZone {
		s.dense = make([]aggState, len(sc.bounds))
	}
	return s
}

// addDense merges one meter's touched bucket range (states covers buckets
// [lo, lo+len(states)) of bounds) under base.
func (s *groupSink) addDense(base groupKey, states []aggState, lo int) {
	if s.dense != nil {
		for j := range states {
			st := &states[j]
			if st.count == 0 && st.nan == 0 {
				continue
			}
			g := &s.dense[lo+j]
			if g.count == 0 && g.nan == 0 {
				*g = *st
			} else {
				g.merge(st)
			}
		}
		return
	}
	for j := range states {
		st := &states[j]
		if st.count == 0 && st.nan == 0 {
			continue
		}
		k := base
		k.bucket = s.bounds[lo+j]
		if g, ok := s.groups[k]; ok {
			g.merge(st)
		} else {
			cp := *st
			s.groups[k] = &cp
		}
	}
}

// addMap merges one meter's map-shaped partial. Keys within a single
// meter's map are distinct groups, so iteration order doesn't matter.
func (s *groupSink) addMap(local map[groupKey]*aggState) {
	for k, st := range local {
		if g, ok := s.groups[k]; ok {
			g.merge(st)
		} else {
			s.groups[k] = st
		}
	}
}

// finish folds the dense array (if any) into the group map and returns it.
func (s *groupSink) finish() map[groupKey]*aggState {
	for bi := range s.dense {
		st := &s.dense[bi]
		if st.count == 0 && st.nan == 0 {
			continue
		}
		s.groups[groupKey{bucket: s.bounds[bi]}] = st
	}
	return s.groups
}

// scanConfig is the immutable per-query scan setup shared by every chunk
// worker: the grouping layout the planner chose plus the plan dimensions
// the key construction needs.
type scanConfig struct {
	eng        *query.Engine
	from, to   int64
	gran       query.Granularity
	groupMeter bool
	needZone   bool
	hasBucket  bool
	minMax     bool
	bounds     []int64 // dense: ascending bucket starts (nil otherwise)
	ends       []int64 // dense: exclusive end per bucket, last = sentinel
	// tierRes != 0 routes the scan through the store's rollup tier of that
	// resolution: interior buckets [aFrom, aTo) merge pre-aggregated, the
	// window edges outside them decode raw.
	tierRes    int64
	aFrom, aTo int64
	// pace is the per-batch governance check: it surfaces deadline or
	// cancellation between batches (so a cancelled monster scan aborts
	// mid-meter, not after it) and yields the CPU for admitted analytics
	// grants while interactive work is in flight.
	pace func(context.Context) error
}

func newScanConfig(ctx context.Context, p *Plan, eng *query.Engine, bounds []int64, from, to int64) *scanConfig {
	sc := &scanConfig{
		eng:       eng,
		pace:      govern.PaceFunc(ctx),
		from:      from,
		to:        to,
		gran:      p.Granularity(),
		hasBucket: p.hasBucket,
		needZone:  p.needZone,
		minMax:    p.needMinMax(),
		bounds:    bounds,
	}
	for _, k := range p.Keys {
		if k.Kind == KeyMeter {
			sc.groupMeter = true
		}
	}
	if bounds != nil {
		sc.ends = make([]int64, len(bounds))
		for i := 1; i < len(bounds); i++ {
			sc.ends[i-1] = bounds[i]
		}
		sc.ends[len(bounds)-1] = math.MaxInt64
	}
	return sc
}

// scanChunk scans one contiguous run of meters on the calling goroutine.
// Exactly one of partials and sink is non-nil: parallel chunks fill each
// meter's partial aggregates into partials (aligned with ids, as is vers,
// which receives the per-meter snapshot versions) for the caller to merge
// in ascending meter order; a sequential scan passes sink instead and each
// meter merges as soon as it finishes, skipping the partial copies.
// Scratch (the decode batch and the dense bucket array) is shared across
// the chunk's meters; group state is not — see ExecuteResolved on why
// partials stay per meter. Returns the chunk's in-window sample count.
func (sc *scanConfig) scanChunk(ctx context.Context, ids []int64, vers []uint64, partials []meterPartial, sink *groupSink) (int, error) {
	batch := store.GetBatch()
	defer store.PutBatch(batch)

	// Dense scratch: one bucket-indexed array reused across the chunk's
	// meters. Only the bucket range a meter actually touched is flushed and
	// re-seeded after it, so sparse meters inside a wide window don't pay
	// for the whole array.
	var dense []aggState
	if sc.bounds != nil {
		dense = make([]aggState, len(sc.bounds))
		for i := range dense {
			dense[i] = aggState{min: math.Inf(1), max: math.Inf(-1)}
		}
	}

	cat := sc.eng.Store().Catalog()
	samples := 0
	for i, id := range ids {
		if err := sc.pace(ctx); err != nil {
			return 0, err
		}
		base := groupKey{}
		if sc.groupMeter {
			base.meter = id
		}
		if sc.needZone {
			if m, ok := cat.Get(id); ok {
				base.zone = m.Zone
			}
		}
		if sc.tierRes != 0 {
			if sc.bounds != nil {
				// Tier-served dense scan: interior buckets merge by index
				// arithmetic into the same bucket-indexed scratch the raw
				// path uses — no group-key hashing on the hot path.
				n, lo, hi, ver, terr := sc.scanTierDense(ctx, id, batch, dense)
				if terr != nil {
					return 0, terr
				}
				vers[i] = ver
				samples += n
				if sink != nil {
					if hi > lo {
						sink.addDense(base, dense[lo:hi], lo)
					}
				} else {
					var cp []aggState
					if hi > lo {
						cp = make([]aggState, hi-lo)
						copy(cp, dense[lo:hi])
					}
					partials[i] = meterPartial{dense: cp, lo: lo, base: base, n: n}
				}
				for bi := lo; bi < hi; bi++ {
					dense[bi] = aggState{min: math.Inf(1), max: math.Inf(-1)}
				}
				continue
			}
			local := make(map[groupKey]*aggState)
			n, ver, terr := sc.scanTier(ctx, id, base, batch, local)
			if terr != nil {
				return 0, terr
			}
			vers[i] = ver
			samples += n
			if sink != nil {
				sink.addMap(local)
			} else {
				partials[i] = meterPartial{groups: local, n: n}
			}
			continue
		}
		it, err := sc.eng.Store().Iter(id, sc.from, sc.to)
		if err != nil {
			return 0, err
		}
		vers[i] = it.Version()

		switch {
		case sc.bounds != nil: // dense
			n, lo, hi, derr := sc.scanDense(ctx, it, batch, dense)
			if derr != nil {
				return 0, derr
			}
			samples += n
			if sink != nil {
				if hi > lo {
					sink.addDense(base, dense[lo:hi], lo)
				}
			} else {
				var cp []aggState
				if hi > lo {
					cp = make([]aggState, hi-lo)
					copy(cp, dense[lo:hi])
				}
				partials[i] = meterPartial{dense: cp, lo: lo, base: base, n: n}
			}
			for bi := lo; bi < hi; bi++ {
				dense[bi] = aggState{min: math.Inf(1), max: math.Inf(-1)}
			}
		case sc.hasBucket: // map grouping, run-at-a-time
			local := make(map[groupKey]*aggState)
			n, merr := sc.scanMap(ctx, it, batch, base, local)
			if merr != nil {
				return 0, merr
			}
			samples += n
			if sink != nil {
				sink.addMap(local)
			} else {
				partials[i] = meterPartial{groups: local, n: n}
			}
		default: // single group per base key
			local := make(map[groupKey]*aggState)
			n, serr := sc.scanSingle(ctx, it, batch, base, local)
			if serr != nil {
				return 0, serr
			}
			samples += n
			if sink != nil {
				sink.addMap(local)
			} else {
				partials[i] = meterPartial{groups: local, n: n}
			}
		}
	}
	return samples, nil
}

// scanDense folds one meter into the bucket-indexed array, returning the
// half-open range of bucket indices it touched. Bucket boundaries come
// from the precomputed ends array; because timestamps are ascending the
// bucket index only moves forward, so boundary detection is one compare
// per sample and the Truncate function never runs. Each decoded batch is
// bracketed by a pace call: governed scans observe deadlines and yield to
// interactive work at batch granularity, never mid-kernel.
func (sc *scanConfig) scanDense(ctx context.Context, it *store.SeriesIter, batch *store.Batch, dense []aggState) (n, lo, hi int, err error) {
	ends := sc.ends
	bi := 0
	first := true
	for it.NextBatch(batch) {
		if err := sc.pace(ctx); err != nil {
			return n, lo, hi, err
		}
		ts, vals := batch.TS, batch.Val
		n += len(ts)
		k := 0
		for k < len(ts) {
			for ts[k] >= ends[bi] {
				bi++
			}
			if first {
				lo, first = bi, false
			}
			e := ends[bi]
			r := k + 1
			for r < len(ts) && ts[r] < e {
				r++
			}
			if sc.minMax {
				dense[bi].foldVals(vals[k:r])
			} else {
				dense[bi].foldSum(vals[k:r])
			}
			k = r
		}
	}
	if !first {
		hi = bi + 1
	}
	return n, lo, hi, it.Err()
}

// scanMap folds one meter with hash grouping on the bucket start —
// the fallback when bucket starts are not enumerable. Truncate/Next and
// the map lookup run once per bucket run, not per sample.
func (sc *scanConfig) scanMap(ctx context.Context, it *store.SeriesIter, batch *store.Batch, base groupKey, local map[groupKey]*aggState) (int, error) {
	key := base
	var cur *aggState
	bEnd := int64(math.MinInt64)
	n := 0
	for it.NextBatch(batch) {
		if err := sc.pace(ctx); err != nil {
			return n, err
		}
		ts, vals := batch.TS, batch.Val
		n += len(ts)
		k := 0
		for k < len(ts) {
			if ts[k] >= bEnd {
				key.bucket = sc.gran.Truncate(ts[k])
				bEnd = sc.gran.Next(ts[k])
				cur = local[key]
				if cur == nil {
					cur = newAggState()
					local[key] = cur
				}
			}
			r := k + 1
			for r < len(ts) && ts[r] < bEnd {
				r++
			}
			if sc.minMax {
				cur.foldVals(vals[k:r])
			} else {
				cur.foldSum(vals[k:r])
			}
			k = r
		}
	}
	return n, it.Err()
}

// scanSingle folds one meter into its base-key group — plans with no
// bucket dimension, where a whole batch is one run.
func (sc *scanConfig) scanSingle(ctx context.Context, it *store.SeriesIter, batch *store.Batch, base groupKey, local map[groupKey]*aggState) (int, error) {
	cur := local[base]
	n := 0
	for it.NextBatch(batch) {
		if err := sc.pace(ctx); err != nil {
			return n, err
		}
		// Lazily created on the first non-empty batch: a meter with no
		// in-window samples must not materialize an empty group (the scalar
		// semantics — groups exist only where samples do).
		if cur == nil {
			cur = newAggState()
			local[base] = cur
		}
		n += batch.Len()
		if sc.minMax {
			cur.foldVals(batch.Val)
		} else {
			cur.foldSum(batch.Val)
		}
	}
	return n, it.Err()
}

// scanTier folds one meter through its rollup tier: a consistent capture
// (raw edge iterators + interior tier buckets, all under one lock
// acquisition) merges in time order — left edge raw, interior buckets
// ascending, right edge raw. Because the planner only serves tiers whose
// resolution equals the bucket width, each interior query bucket receives
// exactly one tier bucket and each edge bucket only raw samples, so every
// group's state is bit-identical to what a raw scan would have built.
// Returns the meter's in-window sample count (edge samples decoded plus
// the samples summarized by the merged buckets) and its capture version.
func (sc *scanConfig) scanTier(ctx context.Context, id int64, base groupKey, batch *store.Batch, local map[groupKey]*aggState) (int, uint64, error) {
	tsc, err := sc.eng.Store().TierScan(id, sc.tierRes, sc.from, sc.aFrom, sc.aTo, sc.to)
	if err != nil {
		return 0, 0, err
	}
	n := 0
	if tsc.Left != nil {
		en, err := sc.foldEdge(ctx, tsc.Left, batch, base, local)
		if err != nil {
			return 0, 0, err
		}
		n += en
	}
	tsc.Buckets(func(b *store.RollupBucket) {
		key := base
		if sc.hasBucket {
			key.bucket = sc.gran.Truncate(b.Start)
		}
		cur := local[key]
		if cur == nil {
			cur = newAggState()
			local[key] = cur
		}
		cur.mergeRollup(b)
		n += int(b.Count + b.NaN)
	})
	if tsc.Right != nil {
		en, err := sc.foldEdge(ctx, tsc.Right, batch, base, local)
		if err != nil {
			return 0, 0, err
		}
		n += en
	}
	return n, tsc.Version, nil
}

// scanTierDense is scanTier for the dense grouping strategy: edges decode
// raw through the scanDense kernel, interior tier buckets merge straight
// into the bucket-indexed scratch at (Start-bounds[0])/tierRes — exact
// because the serving rule guarantees tierRes equals the bucket width, so
// bucket starts ascend in tierRes steps from bounds[0]. Returns the
// touched bucket-index range [lo, hi) alongside the sample count and the
// meter's snapshot version.
func (sc *scanConfig) scanTierDense(ctx context.Context, id int64, batch *store.Batch, dense []aggState) (n, lo, hi int, ver uint64, err error) {
	tsc, terr := sc.eng.Store().TierScan(id, sc.tierRes, sc.from, sc.aFrom, sc.aTo, sc.to)
	if terr != nil {
		return 0, 0, 0, 0, terr
	}
	ver = tsc.Version
	first := true
	touch := func(l, h int) {
		if h <= l {
			return
		}
		if first {
			lo, hi, first = l, h, false
			return
		}
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	if tsc.Left != nil {
		en, el, eh, eerr := sc.scanDense(ctx, tsc.Left, batch, dense)
		if eerr != nil {
			return 0, 0, 0, 0, eerr
		}
		n += en
		touch(el, eh)
	}
	b0 := sc.bounds[0]
	tsc.Buckets(func(b *store.RollupBucket) {
		bi := int((b.Start - b0) / sc.tierRes)
		dense[bi].mergeRollup(b)
		n += int(b.Count + b.NaN)
		touch(bi, bi+1)
	})
	if tsc.Right != nil {
		en, el, eh, eerr := sc.scanDense(ctx, tsc.Right, batch, dense)
		if eerr != nil {
			return 0, 0, 0, 0, eerr
		}
		n += en
		touch(el, eh)
	}
	return n, lo, hi, ver, nil
}

// foldEdge decodes one raw edge of a tier-served scan with the matching
// grouping kernel.
func (sc *scanConfig) foldEdge(ctx context.Context, it *store.SeriesIter, batch *store.Batch, base groupKey, local map[groupKey]*aggState) (int, error) {
	if sc.hasBucket {
		return sc.scanMap(ctx, it, batch, base, local)
	}
	return sc.scanSingle(ctx, it, batch, base, local)
}

// ExecuteResolvedScalar is the sample-at-a-time reference executor: the
// pre-vectorization implementation, retained for differential testing and
// the paired scalar-vs-vectorized benchmark. Results are identical to
// ExecuteResolved (including float summation order) except for the Plan
// rendering, which reflects the scalar pipeline.
func ExecuteResolvedScalar(ctx context.Context, eng *query.Engine, p *Plan, ids []int64, from, to int64, windowOK bool) (*Result, error) {
	res := &Result{Columns: make([]string, len(p.Cols)), Types: p.ColumnTypes(), Rows: [][]any{}}
	for i, c := range p.Cols {
		res.Columns[i] = c.Name
	}
	cat := eng.Store().Catalog()
	res.Plan = "VQL plan (scalar reference executor)\n"
	if len(ids) == 0 || !windowOK {
		res.Rows = p.buildRows(nil)
		return res, nil
	}
	res.Window = [2]int64{from, to}
	res.Meters = len(ids)

	gran := p.Granularity()
	groupMeter := false
	for _, k := range p.Keys {
		if k.Kind == KeyMeter {
			groupMeter = true
		}
	}

	partials := make([]map[groupKey]*aggState, len(ids))
	counts := make([]int, len(ids))
	vers := make([]uint64, len(ids))
	err := exec.ForEach(ctx, len(ids), eng.Workers(), func(i int) error {
		id := ids[i]
		var zone store.ZoneType
		if p.needZone {
			if m, ok := cat.Get(id); ok {
				zone = m.Zone
			}
		}
		it, err := eng.Store().Iter(id, from, to)
		if err != nil {
			return err
		}
		vers[i] = it.Version()
		local := make(map[groupKey]*aggState)
		key := groupKey{zone: zone}
		if groupMeter {
			key.meter = id
		}
		var cur *aggState
		var curBucket int64 = math.MinInt64
		n := 0
		for it.Next() {
			s := it.Sample()
			if p.hasBucket {
				b := gran.Truncate(s.TS)
				if b != curBucket || cur == nil {
					curBucket = b
					key.bucket = b
					cur = local[key]
					if cur == nil {
						cur = newAggState()
						local[key] = cur
					}
				}
			} else if cur == nil {
				cur = local[key]
				if cur == nil {
					cur = newAggState()
					local[key] = cur
				}
			}
			cur.add(s.Value)
			n++
		}
		if err := it.Err(); err != nil {
			return err
		}
		partials[i] = local
		counts[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Fingerprint = store.FingerprintPairs(ids, vers)

	groups := make(map[groupKey]*aggState)
	for i, local := range partials {
		res.Samples += counts[i]
		for k, st := range local {
			if g, ok := groups[k]; ok {
				g.merge(st)
			} else {
				groups[k] = st
			}
		}
	}

	res.Rows = p.buildRows(groups)
	return res, nil
}

// buildRows materializes, orders, and limits the output rows. An
// ungrouped aggregate always yields exactly one row (SQL semantics): over
// an empty selection count is 0 and the value-folding aggregates are null.
func (p *Plan) buildRows(groups map[groupKey]*aggState) [][]any {
	if len(p.Keys) == 0 && len(groups) == 0 {
		groups = map[groupKey]*aggState{{}: newAggState()}
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Default ordering: the group-key tuple ascending, so unordered queries
	// are still deterministic.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		if a.meter != b.meter {
			return a.meter < b.meter
		}
		return a.zone < b.zone
	})
	rows := make([][]any, len(keys))
	for r, k := range keys {
		st := groups[k]
		row := make([]any, len(p.Cols))
		for c, col := range p.Cols {
			if col.IsKey {
				switch p.Keys[col.Key].Kind {
				case KeyBucket:
					row[c] = k.bucket
				case KeyMeter:
					row[c] = k.meter
				default:
					row[c] = string(k.zone)
				}
			} else {
				row[c] = st.value(col.Agg)
			}
		}
		rows[r] = row
	}
	if len(p.Order) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, o := range p.Order {
				c := cmpVal(rows[i][o.col], rows[j][o.col])
				if c != 0 {
					if o.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if p.Limit >= 0 && len(rows) > p.Limit {
		rows = rows[:p.Limit]
	}
	return rows
}

// cmpVal orders two homogeneous cell values (int64, float64, string, or
// nil for empty-group aggregates, which sort first).
func cmpVal(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case string:
		bv := b.(string)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	default:
		return 0
	}
}
