// Package vql implements VQL, VAP's typed query language for meter
// analytics: a lexer, recursive-descent parser, typed logical plan, and a
// planner that compiles
//
//	SELECT <agg exprs | group keys> FROM meters
//	  [WHERE <bbox/zone/meter/time predicates>]
//	  [GROUP BY bucket(<granularity>) | meter | zone, ...]
//	  [ORDER BY ...] [LIMIT n]
//
// down to the data layer's existing primitives. WHERE predicates lower
// into query.Selection (so selection-scoped version fingerprints keep VQL
// results cacheable), aggregates stream through the store's pushdown
// iterators without materializing full series, and multi-meter plans fan
// out across workers with context cancellation.
package vql

import (
	"context"
	"errors"
	"math"
	"sort"

	"vap/internal/exec"
	"vap/internal/geo"
	"vap/internal/query"
	"vap/internal/store"
)

func geoBox(pr BBoxPred) geo.BBox {
	return geo.NewBBox(
		geo.Point{Lon: pr.MinLon, Lat: pr.MinLat},
		geo.Point{Lon: pr.MaxLon, Lat: pr.MaxLat})
}

// Result is one executed query: column names aligned with row cells.
// Cell types are int64 (bucket starts, meter IDs, counts), float64
// (aggregates), or string (zones).
type Result struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Window  [2]int64 `json:"window"`  // resolved half-open scan window
	Meters  int      `json:"meters"`  // meters scanned
	Samples int      `json:"samples"` // samples aggregated
	Plan    string   `json:"plan"`    // EXPLAIN rendering of the plan
	// Fingerprint is the selection-scoped data version of exactly the
	// state the rows were computed from: the commutative combination of
	// the per-meter versions each scan observed at iterator-snapshot time.
	// Two results with equal fingerprints are byte-identical even when
	// computed concurrently with streaming appends.
	Fingerprint uint64 `json:"fingerprint"`
}

// ResolveWindow returns the plan's effective half-open scan window over
// st: explicit bounds where the query set them, the store's data extent
// filling the absent side(s). ok is false when the window cannot be
// resolved (an empty store, or an extent entirely outside the bounds) —
// the query then yields zero rows. Callers memoizing results of plans
// with an absent side must key on the resolved window: the extent moves
// when any meter receives newer samples.
func (p *Plan) ResolveWindow(st *store.Store) (from, to int64, ok bool) {
	if p.HasFrom && p.HasTo {
		return p.From, p.To, p.To > p.From
	}
	first, last, has := st.TimeBounds()
	if !has {
		return 0, 0, false
	}
	from, to = first, last+1
	if p.HasFrom {
		from = p.From
	}
	if p.HasTo {
		to = p.To
	}
	return from, to, to > from
}

// groupKey identifies one output group. Unused dimensions stay at their
// zero values, so the ungrouped (single-row) query uses the zero key.
type groupKey struct {
	bucket int64
	meter  int64
	zone   store.ZoneType
}

// aggState folds one group's samples. All aggregate functions share one
// state so a select list mixing sum/mean/min/max/count scans once.
type aggState struct {
	sum      float64
	count    int64
	min, max float64
}

func newAggState() *aggState {
	return &aggState{min: math.Inf(1), max: math.Inf(-1)}
}

func (a *aggState) add(v float64) {
	a.sum += v
	a.count++
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
}

func (a *aggState) merge(b *aggState) {
	a.sum += b.sum
	a.count += b.count
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// value finalizes one aggregate. Value-folding aggregates over zero
// samples are null (JSON-encodable, unlike NaN/±Inf).
func (a *aggState) value(fn AggFn) any {
	switch fn {
	case AggSum:
		return a.sum
	case AggMean:
		if a.count == 0 {
			return nil
		}
		return a.sum / float64(a.count)
	case AggMin:
		if a.count == 0 {
			return nil
		}
		return a.min
	case AggMax:
		if a.count == 0 {
			return nil
		}
		return a.max
	default: // AggCount
		return a.count
	}
}

// Execute runs a compiled plan against the engine's store: it resolves
// the meter selection and delegates to ExecuteResolved. A selection
// matching no meters or an unresolvable window yields zero rows, not an
// error (SQL semantics).
func Execute(ctx context.Context, eng *query.Engine, p *Plan) (*Result, error) {
	ids, err := ResolveScanMeters(eng, p)
	if err != nil {
		return nil, err
	}
	from, to, ok := p.ResolveWindow(eng.Store())
	return ExecuteResolved(ctx, eng, p, ids, from, to, ok)
}

// ResolveScanMeters resolves the plan's meter set for execution: the
// selection's meters minus ids that are not registered (an explicit
// meter set naming unknown ids filters to nothing instead of erroring the
// scan with ErrUnknownMeter). A selection matching nothing returns an
// empty set, not query.ErrNoMeters.
func ResolveScanMeters(eng *query.Engine, p *Plan) ([]int64, error) {
	ids, err := eng.ResolveMeters(p.Sel)
	if err != nil {
		if errors.Is(err, query.ErrNoMeters) {
			return nil, nil
		}
		return nil, err
	}
	cat := eng.Store().Catalog()
	known := ids[:0]
	for _, id := range ids {
		if _, ok := cat.Get(id); ok {
			known = append(known, id)
		}
	}
	return known, nil
}

// ExecuteResolved runs a compiled plan over an already-resolved meter set
// and scan window (from ResolveScanMeters and Plan.ResolveWindow —
// callers that also fingerprint the selection and key caches on the
// window resolve once and share both, so the keyed window can never
// diverge from the executed one). windowOK false yields zero rows.
// Per-meter scans fan out across the engine's workers via the shared
// execution substrate, each streaming its pushdown iterator into partial
// per-group aggregates; partials merge into the final groups, which are
// then ordered and limited.
func ExecuteResolved(ctx context.Context, eng *query.Engine, p *Plan, ids []int64, from, to int64, windowOK bool) (*Result, error) {
	res := &Result{Columns: make([]string, len(p.Cols)), Rows: [][]any{}}
	for i, c := range p.Cols {
		res.Columns[i] = c.Name
	}
	cat := eng.Store().Catalog()
	res.Plan = explainText(p, eng.Workers(), len(ids), true)
	if len(ids) == 0 || !windowOK {
		res.Rows = p.buildRows(nil)
		return res, nil
	}
	res.Window = [2]int64{from, to}
	res.Meters = len(ids)

	gran := p.Granularity()
	groupMeter := false
	for _, k := range p.Keys {
		if k.Kind == KeyMeter {
			groupMeter = true
		}
	}

	partials := make([]map[groupKey]*aggState, len(ids))
	counts := make([]int, len(ids))
	vers := make([]uint64, len(ids))
	err := exec.ForEach(ctx, len(ids), eng.Workers(), func(i int) error {
		id := ids[i]
		var zone store.ZoneType
		if p.needZone {
			if m, ok := cat.Get(id); ok {
				zone = m.Zone
			}
		}
		it, err := eng.Store().Iter(id, from, to)
		if err != nil {
			return err
		}
		vers[i] = it.Version()
		local := make(map[groupKey]*aggState)
		key := groupKey{zone: zone}
		if groupMeter {
			key.meter = id
		}
		var cur *aggState
		var curBucket int64 = math.MinInt64
		n := 0
		for it.Next() {
			s := it.Sample()
			if p.hasBucket {
				b := gran.Truncate(s.TS)
				if b != curBucket || cur == nil {
					curBucket = b
					key.bucket = b
					cur = local[key]
					if cur == nil {
						cur = newAggState()
						local[key] = cur
					}
				}
			} else if cur == nil {
				cur = local[key]
				if cur == nil {
					cur = newAggState()
					local[key] = cur
				}
			}
			cur.add(s.Value)
			n++
		}
		if err := it.Err(); err != nil {
			return err
		}
		partials[i] = local
		counts[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Fingerprint = store.FingerprintPairs(ids, vers)

	groups := make(map[groupKey]*aggState)
	for i, local := range partials {
		res.Samples += counts[i]
		for k, st := range local {
			if g, ok := groups[k]; ok {
				g.merge(st)
			} else {
				groups[k] = st
			}
		}
	}

	res.Rows = p.buildRows(groups)
	return res, nil
}

// buildRows materializes, orders, and limits the output rows. An
// ungrouped aggregate always yields exactly one row (SQL semantics): over
// an empty selection count is 0 and the value-folding aggregates are null.
func (p *Plan) buildRows(groups map[groupKey]*aggState) [][]any {
	if len(p.Keys) == 0 && len(groups) == 0 {
		groups = map[groupKey]*aggState{{}: newAggState()}
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Default ordering: the group-key tuple ascending, so unordered queries
	// are still deterministic.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.bucket != b.bucket {
			return a.bucket < b.bucket
		}
		if a.meter != b.meter {
			return a.meter < b.meter
		}
		return a.zone < b.zone
	})
	rows := make([][]any, len(keys))
	for r, k := range keys {
		st := groups[k]
		row := make([]any, len(p.Cols))
		for c, col := range p.Cols {
			if col.IsKey {
				switch p.Keys[col.Key].Kind {
				case KeyBucket:
					row[c] = k.bucket
				case KeyMeter:
					row[c] = k.meter
				default:
					row[c] = string(k.zone)
				}
			} else {
				row[c] = st.value(col.Agg)
			}
		}
		rows[r] = row
	}
	if len(p.Order) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, o := range p.Order {
				c := cmpVal(rows[i][o.col], rows[j][o.col])
				if c != 0 {
					if o.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if p.Limit >= 0 && len(rows) > p.Limit {
		rows = rows[:p.Limit]
	}
	return rows
}

// cmpVal orders two homogeneous cell values (int64, float64, string, or
// nil for empty-group aggregates, which sort first).
func cmpVal(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case string:
		bv := b.(string)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	default:
		return 0
	}
}
