package vql

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vap/internal/geo"
	"vap/internal/query"
	"vap/internal/store"
)

// newNaNEngine builds a two-meter store where meter 1 mixes finite and NaN
// readings and meter 2 holds only NaN readings.
func newNaNEngine(t *testing.T) *query.Engine {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	meters := []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 10.1, Lat: 55.6}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 10.2, Lat: 55.7}, Zone: store.ZoneResidential},
	}
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
	}
	nan := math.NaN()
	for h, v := range []float64{1, nan, 3} {
		if err := st.Append(1, store.Sample{TS: base + int64(h)*3600, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < 3; h++ {
		if err := st.Append(2, store.Sample{TS: base + int64(h)*3600, Value: nan}); err != nil {
			t.Fatal(err)
		}
	}
	return query.NewEngineWorkers(st, 2)
}

// TestNaNDoesNotPoisonAggregates: a single bad reading must not poison a
// group's aggregates. NaN samples are skipped by the value folds but still
// counted by count(*), and a group with no finite samples finalizes its
// value aggregates to null. Regression test for the NaN-poisoning bug where
// one stored NaN turned a whole bucket's sum/mean/min/max into NaN (which
// then had no JSON encoding).
func TestNaNDoesNotPoisonAggregates(t *testing.T) {
	eng := newNaNEngine(t)

	res := run(t, eng, `select sum(value), avg(value), min(value), max(value), count(*) from meters where meter in (1)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0] != 4.0 || row[1] != 2.0 || row[2] != 1.0 || row[3] != 3.0 {
		t.Errorf("aggregates = %v, want [4 2 1 3 _]", row)
	}
	if row[4] != int64(3) {
		t.Errorf("count(*) = %v, want 3 (NaN rows still count)", row[4])
	}

	// All-NaN group: mean/min/max are null, sum folds zero finite samples
	// to 0, count(*) still counts every reading.
	res = run(t, eng, `select sum(value), avg(value), min(value), max(value), count(*) from meters where meter in (2)`)
	row = res.Rows[0]
	if row[0] != 0.0 {
		t.Errorf("all-NaN sum = %v, want 0", row[0])
	}
	for i, name := range []string{"avg", "min", "max"} {
		if row[i+1] != nil {
			t.Errorf("all-NaN %s = %v, want null", name, row[i+1])
		}
	}
	if row[4] != int64(3) {
		t.Errorf("all-NaN count(*) = %v, want 3", row[4])
	}

	// count(value) counts only finite samples, unlike count(*).
	res = run(t, eng, `select count(*), count(value) from meters where meter in (1)`)
	row = res.Rows[0]
	if row[0] != int64(3) || row[1] != int64(2) {
		t.Errorf("count(*), count(value) = %v, %v, want 3, 2", row[0], row[1])
	}
	res = run(t, eng, `select count(*), count(value) from meters where meter in (2)`)
	row = res.Rows[0]
	if row[0] != int64(3) || row[1] != int64(0) {
		t.Errorf("all-NaN count(*), count(value) = %v, %v, want 3, 0", row[0], row[1])
	}

	// Every cell must be JSON-encodable — NaN would fail to marshal.
	if _, err := json.Marshal(res.Rows); err != nil {
		t.Errorf("rows are not JSON-encodable: %v", err)
	}
}

// TestResolveScanMetersPreservesSelection: filtering out unknown meter ids
// must not compact into the selection's backing array — the plan (and any
// caller-owned id slice lowered into it) stays intact for re-execution.
func TestResolveScanMetersPreservesSelection(t *testing.T) {
	eng := newTestEngine(t)
	q, err := Parse(`select count(*) from meters where meter in (4, 99, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int64(nil), p.Sel.MeterIDs...)

	ids, err := ResolveScanMeters(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{1, 4}; !reflect.DeepEqual(ids, want) {
		t.Errorf("scan meters = %v, want %v (unknown id filtered)", ids, want)
	}
	if !reflect.DeepEqual(p.Sel.MeterIDs, before) {
		t.Errorf("selection mutated by resolve: %v, was %v", p.Sel.MeterIDs, before)
	}
	// Idempotent: a second resolve over the same plan sees the same set.
	again, err := ResolveScanMeters(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, ids) {
		t.Errorf("second resolve = %v, want %v", again, ids)
	}
}

func compilePlan(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanScanCostModel exercises the planner's estimates and physical
// choices directly against synthetic statistics.
func TestPlanScanCostModel(t *testing.T) {
	const hour = int64(3600)
	// Two regular hourly series of 100 samples over the same extent.
	stats := []store.SeriesStats{
		{MeterID: 1, Samples: 100, Blocks: 2, MinTS: 0, MaxTS: 99 * hour, CompressedBytes: 1000},
		{MeterID: 2, Samples: 100, Blocks: 2, MinTS: 0, MaxTS: 99 * hour, CompressedBytes: 1000},
	}

	t.Run("overlap fraction", func(t *testing.T) {
		p := compilePlan(t, `select count(*) from meters`)
		// Window covering roughly half of each extent.
		c, _ := planScan(p, stats, 0, 50*hour, 4, nil)
		if c.EstSamples < 80 || c.EstSamples > 120 {
			t.Errorf("EstSamples = %d, want ~100 (half of 200)", c.EstSamples)
		}
		if c.Strategy != GroupSingle {
			t.Errorf("strategy = %q, want single", c.Strategy)
		}
		// Tiny scan: fan-out is not worth a goroutine per meter.
		if c.Workers != 1 || c.Chunks != 1 {
			t.Errorf("workers/chunks = %d/%d, want 1/1 for a tiny scan", c.Workers, c.Chunks)
		}
	})

	t.Run("non-overlapping series drop out", func(t *testing.T) {
		p := compilePlan(t, `select count(*) from meters`)
		c, _ := planScan(p, stats, 200*hour, 300*hour, 4, nil)
		if c.EstSamples != 0 || c.EstBlocks != 0 {
			t.Errorf("est = %d samples / %d blocks, want 0/0 outside the extent", c.EstSamples, c.EstBlocks)
		}
	})

	t.Run("dense grouping for enumerable buckets", func(t *testing.T) {
		p := compilePlan(t, `select bucket(hourly), sum(value) from meters group by bucket(hourly)`)
		c, bounds := planScan(p, stats, 0, 10*hour, 4, nil)
		if c.Strategy != GroupDense {
			t.Fatalf("strategy = %q, want dense", c.Strategy)
		}
		if c.Buckets != 10 || len(bounds) != 10 {
			t.Errorf("buckets = %d (bounds %d), want 10", c.Buckets, len(bounds))
		}
	})

	t.Run("map fallback beyond maxDenseBuckets", func(t *testing.T) {
		p := compilePlan(t, `select bucket(hourly), sum(value) from meters group by bucket(hourly)`)
		c, bounds := planScan(p, stats, 0, int64(maxDenseBuckets+2)*hour, 4, nil)
		if c.Strategy != GroupMap || bounds != nil {
			t.Errorf("strategy = %q (bounds %d), want map with nil bounds", c.Strategy, len(bounds))
		}
	})

	t.Run("fanout scales with estimated samples", func(t *testing.T) {
		big := []store.SeriesStats{
			{MeterID: 1, Samples: 50000, Blocks: 49, MinTS: 0, MaxTS: 49999 * hour, CompressedBytes: 300000},
			{MeterID: 2, Samples: 50000, Blocks: 49, MinTS: 0, MaxTS: 49999 * hour, CompressedBytes: 300000},
		}
		p := compilePlan(t, `select count(*) from meters`)
		c, _ := planScan(p, big, 0, 50000*hour, 8, nil)
		if c.Workers != 2 {
			t.Errorf("workers = %d, want 2 (capped at meter count)", c.Workers)
		}
		if c.Chunks != 2 {
			t.Errorf("chunks = %d, want 2 (4x over-partition capped at meters)", c.Chunks)
		}
	})
}

func TestBucketBounds(t *testing.T) {
	const hour = int64(3600)
	// Mid-bucket from: the first bound is the truncated start.
	b := bucketBounds(query.GranHourly, base+1800, base+3*hour, 100)
	want := []int64{base, base + hour, base + 2*hour}
	if !reflect.DeepEqual(b, want) {
		t.Errorf("bounds = %v, want %v", b, want)
	}
	// Calendar granularity: walks real month lengths.
	b = bucketBounds(query.GranMonthly, base, base+40*24*hour, 100)
	if len(b) != 2 || b[0] != base { // 2017-06-01 is a month start
		t.Errorf("monthly bounds = %v, want [Jun Jul]", b)
	}
	// Over the cap (both via the width pre-check and the walk) → nil.
	if b := bucketBounds(query.GranHourly, 0, int64(200)*hour, 100); b != nil {
		t.Errorf("over-cap bounds = %v, want nil", b)
	}
	// Degenerate window → nil.
	if b := bucketBounds(query.GranHourly, 10, 10, 100); b != nil {
		t.Errorf("empty-window bounds = %v, want nil", b)
	}
}

// TestVectorizedMatchesScalar is the differential property test: random
// stores (irregular timestamps, multi-block series, NaN/±Inf readings) and
// a spread of grouping shapes must produce byte-identical results from the
// vectorized executor and the sample-at-a-time reference executor —
// including float cells, which both executors fold in the same order.
func TestVectorizedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	zones := []store.ZoneType{store.ZoneResidential, store.ZoneCommercial, store.ZoneIndustrial}

	st, err := store.Open(store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	const nMeters = 6
	var maxTS int64
	for id := int64(1); id <= nMeters; id++ {
		m := store.Meter{
			ID:       id,
			Location: geo.Point{Lon: 10 + rng.Float64(), Lat: 55 + rng.Float64()},
			Zone:     zones[rng.Intn(len(zones))],
		}
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		// Meter 1 spans several compressed blocks; the rest stay small so
		// chunk/fan-out boundaries land unevenly.
		n := 200 + rng.Intn(300)
		if id == 1 {
			n = 3000
		}
		ts := base
		for s := 0; s < n; s++ {
			ts += 60 + int64(rng.Intn(7200)) // irregular ascending gaps
			v := rng.NormFloat64() * 1000
			switch rng.Intn(40) {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1)
			case 2:
				v = math.Inf(-1)
			}
			if err := st.Append(id, store.Sample{TS: ts, Value: v}); err != nil {
				t.Fatal(err)
			}
		}
		if ts > maxTS {
			maxTS = ts
		}
	}
	eng := query.NewEngineWorkers(st, 4)

	queries := []string{
		`select count(*), count(value), sum(value) from meters`,
		`select bucket(hourly), sum(value), count(*) from meters group by bucket(hourly)`,
		`select bucket(daily), avg(value), min(value), max(value) from meters group by bucket(daily)`,
		`select meter, bucket(daily), sum(value) from meters group by meter, bucket(daily)`,
		`select zone, avg(value) from meters group by zone`,
		`select meter, zone, max(value), count(*) from meters group by meter, zone`,
		`select bucket(weekly), sum(value) from meters where zone = 'residential' group by bucket(weekly)`,
		`select bucket(hourly), min(value) from meters where meter in (1, 3, 5) group by bucket(hourly)`,
	}

	for _, src := range queries {
		p := compilePlan(t, src)
		// Sweep windows: full extent plus random sub-windows, so batch
		// clamping and block pruning both get exercised.
		windows := [][2]int64{{0, 0}} // 0,0 = resolve from data extent
		for w := 0; w < 4; w++ {
			lo := base + rng.Int63n(maxTS-base)
			hi := lo + 1 + rng.Int63n(maxTS-lo)
			windows = append(windows, [2]int64{lo, hi})
		}
		for _, win := range windows {
			if win[0] != 0 {
				p.HasFrom, p.From = true, win[0]
				p.HasTo, p.To = true, win[1]
			}
			ids, err := ResolveScanMeters(eng, p)
			if err != nil {
				t.Fatal(err)
			}
			from, to, ok := p.ResolveWindow(eng.Store())

			vec, err := ExecuteResolved(context.Background(), eng, p, ids, from, to, ok)
			if err != nil {
				t.Fatalf("%s win=%v: vectorized: %v", src, win, err)
			}
			ref, err := ExecuteResolvedScalar(context.Background(), eng, p, ids, from, to, ok)
			if err != nil {
				t.Fatalf("%s win=%v: scalar: %v", src, win, err)
			}
			// The Plan rendering legitimately differs; everything else must
			// agree bit-for-bit.
			vec.Plan, ref.Plan = "", ""
			if !reflect.DeepEqual(vec, ref) {
				t.Errorf("%s win=%v: executors diverge:\nvec: %+v\nref: %+v", src, win, vec, ref)
			}
		}
	}
}
