package vql

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vap/internal/geo"
	"vap/internal/query"
	"vap/internal/store"
)

// TestRollupMatchesRaw is the tier-serving differential property test: two
// stores load byte-identical random data — irregular gaps, NaN/±Inf
// readings, multi-chunk series — one with rollups disabled and one
// maintaining hourly, 4-hourly and daily tiers. Every query × window
// combination must produce bit-identical results from both, including
// windows straddling tier bucket edges by a few seconds (the partial-bucket
// raw edge decode), and the tier store must actually plan a tier for the
// aligned fixed-width granularities — asserted, so the test cannot silently
// decay into comparing two raw scans.
func TestRollupMatchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	zones := []store.ZoneType{store.ZoneResidential, store.ZoneCommercial, store.ZoneIndustrial}

	open := func(res []int64) *store.Store {
		st, err := store.Open(store.Options{Shards: 4, RollupRes: res})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	rawSt := open([]int64{})                    // rollups disabled
	tierSt := open([]int64{3600, 14400, 86400}) // hourly, 4-hourly, daily

	const nMeters = 5
	var maxTS int64
	for id := int64(1); id <= nMeters; id++ {
		m := store.Meter{
			ID:       id,
			Location: geo.Point{Lon: 10 + rng.Float64(), Lat: 55 + rng.Float64()},
			Zone:     zones[rng.Intn(len(zones))],
		}
		if err := rawSt.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		if err := tierSt.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		// Dense enough that the planner's cost gate favors the tiers
		// (several samples per hourly bucket); meter 1 spans many sealed
		// chunks so the edge decode crosses chunk boundaries.
		n := 400 + rng.Intn(300)
		if id == 1 {
			n = 4000
		}
		ts := base
		for s := 0; s < n; s++ {
			ts += 60 + int64(rng.Intn(600)) // irregular ascending gaps
			v := rng.NormFloat64() * 1000
			switch rng.Intn(40) {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1)
			case 2:
				v = math.Inf(-1)
			}
			smp := store.Sample{TS: ts, Value: v}
			if err := rawSt.Append(id, smp); err != nil {
				t.Fatal(err)
			}
			if err := tierSt.Append(id, smp); err != nil {
				t.Fatal(err)
			}
		}
		if ts > maxTS {
			maxTS = ts
		}
	}
	rawEng := query.NewEngineWorkers(rawSt, 4)
	tierEng := query.NewEngineWorkers(tierSt, 4)

	queries := []struct {
		src  string
		tier bool // the full-extent plan must serve from a tier
	}{
		{`select bucket(hourly), sum(value), count(*), count(value) from meters group by bucket(hourly)`, true},
		{`select bucket('4hourly'), avg(value), min(value), max(value) from meters group by bucket('4hourly')`, true},
		{`select bucket(daily), sum(value), avg(value), min(value), max(value), count(*) from meters group by bucket(daily)`, true},
		{`select meter, bucket(hourly), sum(value) from meters group by meter, bucket(hourly)`, true},
		{`select zone, bucket(daily), sum(value), count(*) from meters group by zone, bucket(daily)`, true},
		{`select bucket(daily), min(value) from meters where meter in (1, 3, 5) group by bucket(daily)`, true},
		// Weekly buckets are Monday-phased, calendar units variable-width,
		// and bucket-less scans fold flat: all three must plan raw.
		{`select bucket(weekly), sum(value) from meters group by bucket(weekly)`, false},
		{`select bucket(monthly), sum(value) from meters group by bucket(monthly)`, false},
		{`select count(*), sum(value), min(value) from meters`, false},
	}

	// Windows: full extent, random sub-windows, and per tier width a window
	// straddling aligned bucket edges by a few seconds, one narrower than a
	// single aligned bucket, and one exactly aligned (no edge decode).
	windows := [][2]int64{{0, 0}} // 0,0 = resolve from the data extent
	for w := 0; w < 4; w++ {
		lo := base + rng.Int63n(maxTS-base)
		hi := lo + 1 + rng.Int63n(maxTS-lo)
		windows = append(windows, [2]int64{lo, hi})
	}
	for _, width := range []int64{3600, 14400, 86400} {
		edge := alignUp(base, width) + 3*width
		windows = append(windows,
			[2]int64{edge - 7, edge + 2*width + 13},
			[2]int64{edge + 1, edge + width},
			[2]int64{edge, edge + 2*width},
		)
	}

	for _, q := range queries {
		p := compilePlan(t, q.src)
		for wi, win := range windows {
			if win[0] != 0 {
				p.HasFrom, p.From = true, win[0]
				p.HasTo, p.To = true, win[1]
			}
			exec1 := func(eng *query.Engine) *Result {
				ids, err := ResolveScanMeters(eng, p)
				if err != nil {
					t.Fatalf("%s win=%v: resolve: %v", q.src, win, err)
				}
				from, to, ok := p.ResolveWindow(eng.Store())
				res, err := ExecuteResolved(context.Background(), eng, p, ids, from, to, ok)
				if err != nil {
					t.Fatalf("%s win=%v: execute: %v", q.src, win, err)
				}
				return res
			}
			raw, tier := exec1(rawEng), exec1(tierEng)
			if !strings.Contains(raw.Plan, "raw scan") {
				t.Errorf("%s win=%v: rollup-disabled store served a tier:\n%s", q.src, win, raw.Plan)
			}
			if wi == 0 {
				if served := strings.Contains(tier.Plan, "rollup serves interior"); served != q.tier {
					t.Errorf("%s: full-extent tier serving = %t, want %t:\n%s", q.src, served, q.tier, tier.Plan)
				}
			}
			// The Plan rendering legitimately differs (tier line); every
			// other field — float cells, sample counts, snapshot-version
			// fingerprints — must agree bit-for-bit.
			raw.Plan, tier.Plan = "", ""
			if !reflect.DeepEqual(raw, tier) {
				t.Errorf("%s win=%v: tier result diverges from raw:\nraw:  %+v\ntier: %+v", q.src, win, raw, tier)
			}
		}
	}
}

// TestPlanTierDecisions drives every branch of the planner's tier-selection
// rule against synthetic statistics.
func TestPlanTierDecisions(t *testing.T) {
	const hour = int64(3600)
	// A dense series: 86400 samples over 100 days — 36/hour, so tier
	// serving wins whenever it is admissible.
	stats := []store.SeriesStats{
		{MeterID: 1, Samples: 86400, Blocks: 120, MinTS: 0, MaxTS: 100 * 24 * hour, CompressedBytes: 500000},
	}
	window := func(p *Plan, from, to int64, tiers []int64) ScanCost {
		c, _ := planScan(p, stats, from, to, 4, tiers)
		return c
	}
	full := 100 * 24 * hour

	t.Run("serves exact-width tier", func(t *testing.T) {
		p := compilePlan(t, `select bucket(hourly), sum(value) from meters group by bucket(hourly)`)
		c := window(p, 0, full, []int64{3600, 86400})
		if c.TierRes != 3600 {
			t.Fatalf("TierRes = %d (%s), want 3600", c.TierRes, c.TierReason)
		}
		if c.TierBuckets == 0 {
			t.Errorf("TierBuckets = 0, want an interior estimate")
		}
	})
	t.Run("no tiers maintained", func(t *testing.T) {
		p := compilePlan(t, `select bucket(hourly), sum(value) from meters group by bucket(hourly)`)
		c := window(p, 0, full, nil)
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "no rollup tiers") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("no bucket dimension", func(t *testing.T) {
		p := compilePlan(t, `select sum(value) from meters`)
		c := window(p, 0, full, []int64{3600})
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "no bucket dimension") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("weekly is not tier-aligned", func(t *testing.T) {
		p := compilePlan(t, `select bucket(weekly), sum(value) from meters group by bucket(weekly)`)
		c := window(p, 0, full, []int64{3600, 86400})
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "not tier-aligned") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("missing resolution", func(t *testing.T) {
		p := compilePlan(t, `select bucket(daily), sum(value) from meters group by bucket(daily)`)
		c := window(p, 0, full, []int64{3600}) // no 86400 tier
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "no 86400s tier") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("window narrower than a bucket", func(t *testing.T) {
		p := compilePlan(t, `select bucket(daily), sum(value) from meters group by bucket(daily)`)
		c := window(p, 10, 86395, []int64{86400}) // inside one day, unaligned
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "narrower than one tier bucket") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("sparse data keeps raw", func(t *testing.T) {
		sparse := []store.SeriesStats{
			// One sample every 4 hours: hourly tier buckets outnumber samples.
			{MeterID: 1, Samples: 600, Blocks: 1, MinTS: 0, MaxTS: 600 * 4 * hour, CompressedBytes: 4000},
		}
		p := compilePlan(t, `select bucket(hourly), sum(value) from meters group by bucket(hourly)`)
		c, _ := planScan(p, sparse, 0, 600*4*hour, 4, []int64{3600})
		if c.TierRes != 0 || !strings.Contains(c.TierReason, "not worth it") {
			t.Errorf("got TierRes=%d reason=%q", c.TierRes, c.TierReason)
		}
	})
	t.Run("fanout sizes on tier effort", func(t *testing.T) {
		// Many dense meters: a raw scan would fan out wide, but the tier
		// reads ~2400 buckets total, well under one worker's quantum.
		many := make([]store.SeriesStats, 8)
		for i := range many {
			many[i] = store.SeriesStats{MeterID: int64(i + 1), Samples: 86400, Blocks: 120, MinTS: 0, MaxTS: full, CompressedBytes: 500000}
		}
		p := compilePlan(t, `select bucket(daily), sum(value) from meters group by bucket(daily)`)
		c, _ := planScan(p, many, 0, full, 8, []int64{86400})
		if c.TierRes != 86400 {
			t.Fatalf("TierRes = %d (%s), want 86400", c.TierRes, c.TierReason)
		}
		if c.Workers != 1 {
			t.Errorf("workers = %d, want 1 (fan-out sized on tier effort, not raw samples)", c.Workers)
		}
	})
}

// TestExplainShowsTier: EXPLAIN output carries the tier line in both the
// serving and the raw case, naming the reason for the latter.
func TestExplainShowsTier(t *testing.T) {
	st, err := store.Open(store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.PutMeter(store.Meter{ID: 1, Location: geo.Point{Lon: 10.1, Lat: 55.6}, Zone: store.ZoneResidential}); err != nil {
		t.Fatal(err)
	}
	// Four days of one-minute readings: dense enough for the daily tier.
	batch := make([]store.Sample, 4*1440)
	for i := range batch {
		batch[i] = store.Sample{TS: base + int64(i)*60, Value: float64(i % 7)}
	}
	if _, err := st.AppendBatch(1, batch); err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngineWorkers(st, 2)

	p := compilePlan(t, `select bucket(daily), sum(value) from meters group by bucket(daily)`)
	out := ExplainString(p, eng)
	if !strings.Contains(out, "tier: 86400s rollup serves interior") {
		t.Errorf("explain missing serving tier line:\n%s", out)
	}

	p = compilePlan(t, `select bucket(weekly), sum(value) from meters group by bucket(weekly)`)
	out = ExplainString(p, eng)
	if !strings.Contains(out, "tier: raw scan (weekly buckets are not tier-aligned)") {
		t.Errorf("explain missing raw-scan tier reason:\n%s", out)
	}
}
