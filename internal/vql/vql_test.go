package vql

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"vap/internal/geo"
	"vap/internal/query"
	"vap/internal/store"
)

// base is 2017-06-01 00:00:00 UTC.
const base int64 = 1496275200

// newTestEngine builds a deterministic four-meter store: two residential
// meters in the south-west, one commercial and one industrial further
// north-east, each with 48 hourly samples of a constant value equal to its
// meter ID.
func newTestEngine(t testing.TB) *query.Engine {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	meters := []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 10.10, Lat: 55.60}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 10.12, Lat: 55.62}, Zone: store.ZoneResidential},
		{ID: 3, Location: geo.Point{Lon: 10.30, Lat: 55.70}, Zone: store.ZoneCommercial},
		{ID: 4, Location: geo.Point{Lon: 10.50, Lat: 55.80}, Zone: store.ZoneIndustrial},
	}
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 48; h++ {
			if err := st.Append(m.ID, store.Sample{TS: base + int64(h)*3600, Value: float64(m.ID)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return query.NewEngineWorkers(st, 4)
}

func run(t *testing.T, eng *query.Engine, src string) *Result {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	res, err := Execute(context.Background(), eng, p)
	if err != nil {
		t.Fatalf("execute %q: %v", src, err)
	}
	return res
}

func TestGlobalAggregates(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, "SELECT sum(value), mean(value), min(value), max(value), count(*) FROM meters")
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if got := row[0].(float64); got != 48*(1+2+3+4) {
		t.Errorf("sum = %v, want 480", got)
	}
	if got := row[1].(float64); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	if row[2].(float64) != 1 || row[3].(float64) != 4 {
		t.Errorf("min/max = %v/%v, want 1/4", row[2], row[3])
	}
	if row[4].(int64) != 192 {
		t.Errorf("count = %v, want 192", row[4])
	}
	if res.Meters != 4 || res.Samples != 192 {
		t.Errorf("meters/samples = %d/%d, want 4/192", res.Meters, res.Samples)
	}
}

func TestBucketGroupBy(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `
		SELECT bucket(daily) AS day, mean(value) AS avg_kwh, count(*)
		FROM meters
		WHERE meter IN (1, 2)
		GROUP BY bucket(daily)`)
	if want := []string{"day", "avg_kwh", "count(*)"}; strings.Join(res.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, want)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 daily buckets, got %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if got := row[0].(int64); got != base+int64(i)*86400 {
			t.Errorf("row %d bucket = %d, want %d", i, got, base+int64(i)*86400)
		}
		if got := row[1].(float64); math.Abs(got-1.5) > 1e-12 {
			t.Errorf("row %d mean = %v, want 1.5", i, got)
		}
		if got := row[2].(int64); got != 48 {
			t.Errorf("row %d count = %v, want 48", i, got)
		}
	}
}

func TestGroupByMeterOrderLimit(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `
		SELECT meter, sum(value) AS total FROM meters
		GROUP BY meter ORDER BY total DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	if res.Rows[0][0].(int64) != 4 || res.Rows[1][0].(int64) != 3 {
		t.Fatalf("order = %v,%v want 4,3", res.Rows[0][0], res.Rows[1][0])
	}
	if got := res.Rows[0][1].(float64); got != 48*4 {
		t.Errorf("top total = %v, want 192", got)
	}
}

func TestGroupByZone(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `SELECT zone, sum(value) FROM meters GROUP BY zone ORDER BY zone`)
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 zones, got %d", len(res.Rows))
	}
	want := map[string]float64{"commercial": 144, "industrial": 192, "residential": 144}
	for _, row := range res.Rows {
		z := row[0].(string)
		if got := row[1].(float64); got != want[z] {
			t.Errorf("zone %s sum = %v, want %v", z, got, want[z])
		}
	}
	// Default ordering is the key tuple ascending, so ORDER BY zone matches.
	if res.Rows[0][0].(string) != "commercial" {
		t.Errorf("first zone = %v, want commercial", res.Rows[0][0])
	}
}

func TestBBoxAndZonePushdown(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `SELECT count(*) FROM meters WHERE bbox(10.0, 55.5, 10.2, 55.65)`)
	if got := res.Rows[0][0].(int64); got != 96 {
		t.Fatalf("bbox count = %v, want 96 (meters 1,2)", got)
	}
	res = run(t, eng, `SELECT count(*) FROM meters WHERE zone = 'industrial'`)
	if got := res.Rows[0][0].(int64); got != 48 {
		t.Fatalf("zone count = %v, want 48", got)
	}
	res = run(t, eng, `SELECT count(*) FROM meters WHERE bbox(10.0, 55.5, 10.2, 55.65) AND zone = 'commercial'`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 0 {
		t.Fatalf("disjoint bbox+zone = %v, want one zero-count row", res.Rows)
	}
}

func TestTimePredicates(t *testing.T) {
	eng := newTestEngine(t)
	// First day only, via date strings.
	res := run(t, eng, `SELECT count(*) FROM meters WHERE meter = 1 AND time >= '2017-06-01' AND time < '2017-06-02'`)
	if got := res.Rows[0][0].(int64); got != 24 {
		t.Fatalf("day-1 count = %v, want 24", got)
	}
	// BETWEEN is inclusive on both ends.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE meter = 1 AND time BETWEEN 1496275200 AND 1496278800`)
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("between count = %v, want 2", got)
	}
	// One-sided window: everything from the second day on.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE meter = 1 AND time >= '2017-06-02'`)
	if got := res.Rows[0][0].(int64); got != 24 {
		t.Fatalf("open-ended count = %v, want 24", got)
	}
	// One-sided upper bound.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE meter = 1 AND time < '2017-06-02'`)
	if got := res.Rows[0][0].(int64); got != 24 {
		t.Fatalf("open-start count = %v, want 24", got)
	}
	// > and <= shift by one second.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE meter = 1 AND time > 1496275200 AND time <= 1496282400`)
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("exclusive-start count = %v, want 2", got)
	}
}

func TestMeterInDuplicatesAndUnknownIDs(t *testing.T) {
	eng := newTestEngine(t)
	// Duplicate ids in IN must not double-count.
	res := run(t, eng, `SELECT count(*), sum(value) FROM meters WHERE meter IN (1, 1)`)
	if res.Rows[0][0].(int64) != 48 || res.Rows[0][1].(float64) != 48 {
		t.Fatalf("IN (1,1) = %v, want count 48 sum 48", res.Rows[0])
	}
	// An unregistered id filters to nothing instead of erroring the scan.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE meter = 999`)
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("unknown meter count = %v, want 0", res.Rows[0][0])
	}
	res = run(t, eng, `SELECT meter, count(*) FROM meters WHERE meter IN (1, 999) GROUP BY meter`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(int64) != 48 {
		t.Fatalf("IN (1,999) rows = %v, want meter 1 with 48 samples", res.Rows)
	}
	if res.Meters != 1 {
		t.Fatalf("meters scanned = %d, want 1", res.Meters)
	}
}

func TestEmptySelectionYieldsZeroRows(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `SELECT meter, sum(value) FROM meters WHERE zone = 'mixed' GROUP BY meter`)
	if len(res.Rows) != 0 {
		t.Fatalf("want 0 rows for empty selection, got %d", len(res.Rows))
	}
	// Window entirely after the data: zero groups as well.
	res = run(t, eng, `SELECT meter, sum(value) FROM meters WHERE time >= '2020-01-01' GROUP BY meter`)
	if len(res.Rows) != 0 {
		t.Fatalf("want 0 rows for out-of-data window, got %d", len(res.Rows))
	}
}

func TestMultiKeyGrouping(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `
		SELECT bucket(daily), zone, sum(value) FROM meters
		GROUP BY bucket(daily), zone`)
	if len(res.Rows) != 6 { // 2 days x 3 zones
		t.Fatalf("want 6 rows, got %d", len(res.Rows))
	}
	// Rows are sorted by (bucket, zone).
	if res.Rows[0][0].(int64) != base || res.Rows[0][1].(string) != "commercial" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func parseErr(t *testing.T, src string) *Error {
	t.Helper()
	q, err := Parse(src)
	if err == nil {
		_, err = Compile(q)
	}
	if err == nil {
		t.Fatalf("want error for %q", src)
	}
	var ve *Error
	if !errors.As(err, &ve) {
		t.Fatalf("error for %q is %T, want *vql.Error", src, err)
	}
	return ve
}

func TestErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		src        string
		wantSubstr string
		line, col  int
	}{
		{"SELEC sum(value) FROM meters", "expected SELECT", 1, 1},
		{"SELECT sum(price) FROM meters", "wants the column 'value'", 1, 12},
		{"SELECT sum(value) FROM sensors", "unknown source", 1, 24},
		{"SELECT sum(value) FROM meters WHERE speed = 3", "unknown predicate", 1, 37},
		{"SELECT sum(value) FROM meters WHERE zone = 'x' OR zone = 'y'", "OR is not supported", 1, 48},
		{"SELECT sum(value) FROM meters LIMIT -1", "non-negative", 1, 37},
		{"SELECT meter FROM meters", "not grouped on", 1, 8},
		{"SELECT bucket(fortnightly), sum(value) FROM meters GROUP BY bucket(fortnightly)", "unknown granularity", 1, 15},
		{"SELECT sum(value) FROM meters ORDER BY total", "does not match any output column", 1, 40},
		{"SELECT sum(value) FROM meters ORDER BY 3", "out of range", 1, 40},
		{"SELECT sum(value) FROM meters WHERE time >= 10 AND time < 5", "empty time window", 1, 37},
		{"SELECT sum(value) FROM meters WHERE time > 9223372036854775807", "overflows", 1, 37},
		{"SELECT sum(value) FROM meters WHERE time <= 9223372036854775807", "overflows", 1, 37},
		{"SELECT sum(value) FROM meters WHERE time BETWEEN 0 AND 9223372036854775807", "overflows", 1, 37},
		{"SELECT sum(value) FROM meters WHERE bbox(1, 2, 3)", "expected ','", 1, 49},
		{"SELECT sum(value) FROM meters WHERE bbox(200, 0, 201, 1)", "out of range", 1, 37},
		{"SELECT sum(value) FROM meters WHERE time >= 'June 1'", "bad time", 1, 45},
		{"SELECT sum(value) FROM meters WHERE zone = 'a' AND zone = 'b'", "duplicate zone", 1, 52},
		{"SELECT sum(value) FROM meters WHERE meter = 1 AND meter = 2", "duplicate meter", 1, 51},
		{"SELECT sum(value), sum(value) FROM meters", "duplicate output column", 1, 20},
		{"SELECT sum(value) FROM meters; SELECT 1", "unexpected", 1, 32},
		{"SELECT sum(value FROM meters", "expected ')'", 1, 18},
		{"SELECT sum(value) FROM meters WHERE zone = 'unterminated", "unterminated string", 1, 44},
		{"SELECT sum(value) FROM meters GROUP BY speed", "unknown group key", 1, 40},
	}
	for _, tc := range cases {
		ve := parseErr(t, tc.src)
		if !strings.Contains(ve.Msg, tc.wantSubstr) {
			t.Errorf("%q: error %q, want substring %q", tc.src, ve.Msg, tc.wantSubstr)
		}
		if ve.Pos.Line != tc.line || ve.Pos.Col != tc.col {
			t.Errorf("%q: position %v, want %d:%d (msg %q)", tc.src, ve.Pos, tc.line, tc.col, ve.Msg)
		}
	}
}

func TestMultilinePositions(t *testing.T) {
	ve := parseErr(t, "SELECT sum(value)\nFROM meters\nWHERE speed = 1")
	if ve.Pos.Line != 3 || ve.Pos.Col != 7 {
		t.Fatalf("position = %v, want 3:7", ve.Pos)
	}
}

func TestCanonicalFingerprint(t *testing.T) {
	a, err := Parse("select Sum(value) from meters where Meter in (2, 1) and time >= 10 group by METER order by 1 limit 5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("SELECT sum( value )  FROM meters WHERE meter IN (1,2) AND time > 9\nGROUP BY meter ORDER BY sum(value) ASC LIMIT 5;")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Fingerprint() != pb.Fingerprint() {
		t.Fatalf("equivalent plans fingerprint differently:\n  %s\n  %s", pa.Canonical(), pb.Canonical())
	}
	c, _ := Parse("SELECT sum(value) FROM meters WHERE meter IN (1,2) AND time >= 10 GROUP BY meter ORDER BY 1 DESC LIMIT 5")
	pc, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Fingerprint() == pc.Fingerprint() {
		t.Fatal("DESC variant should fingerprint differently")
	}
}

func TestExplain(t *testing.T) {
	eng := newTestEngine(t)
	q, err := Parse(`EXPLAIN SELECT bucket(daily), mean(value) FROM meters
		WHERE bbox(10.0, 55.5, 10.2, 55.65) AND zone = 'residential' AND time >= 1496275200
		GROUP BY bucket(daily) ORDER BY mean(value) DESC LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Explain {
		t.Fatal("EXPLAIN flag not set")
	}
	out := ExplainString(p, eng)
	for _, want := range []string{
		"Limit: 7",
		"Sort: mean(value) desc",
		"GroupAggregate: keys=[bucket(daily)] aggs=[mean(value)]",
		"Scan: meters",
		"pushdown bbox(10, 55.5, 10.2, 55.65) -> catalog spatial index",
		"pushdown zone = 'residential' -> catalog filter",
		"pushdown time [1496275200, extent) -> block min/max pruned iterator",
		"meters resolved: 2",
		"cost: est ",
		"grouping: dense bucket array (2 buckets, boundaries precomputed)",
		"fanout: 1 workers via internal/exec, 1 chunks, cancellable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Static rendering without an engine must not panic.
	static := ExplainString(p, nil)
	if strings.Contains(static, "meters resolved") {
		t.Error("static explain should not resolve meters")
	}
}

func TestExplainFullScan(t *testing.T) {
	q, _ := Parse("SELECT count(*) FROM meters")
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	out := ExplainString(p, nil)
	if !strings.Contains(out, "full scan") || !strings.Contains(out, "Aggregate: [count(*)] (single group)") {
		t.Errorf("unexpected full-scan explain:\n%s", out)
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"1496275200", 1496275200},
		{"-5", -5},
		{"2017-06-01", 1496275200},
		{"2017-06-01 01:00", 1496278800},
		{"2017-06-01 01:00:00", 1496278800},
		{"2017-06-01T01:00:00", 1496278800},
		{"2017-06-01T01:00:00Z", 1496278800},
		{"2017-06-01T03:00:00+02:00", 1496278800},
	}
	for _, tc := range cases {
		got, err := ParseTime(tc.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTime(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "  ", "June 1", "2017-13-40", "12:00"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q): want error", bad)
		}
	}
}

func TestValidBBox(t *testing.T) {
	if err := ValidBBox(10, 55, 11, 56); err != nil {
		t.Errorf("valid bbox rejected: %v", err)
	}
	for _, c := range [][4]float64{
		{math.NaN(), 0, 1, 1},
		{0, math.Inf(1), 1, 1},
		{-181, 0, 1, 1},
		{0, 0, 1, 91},
		{2, 0, 1, 1},
		{0, 2, 1, 1},
	} {
		if err := ValidBBox(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("bbox %v: want error", c)
		}
	}
}

func TestResolveWindow(t *testing.T) {
	eng := newTestEngine(t)
	st := eng.Store()
	last := base + 47*3600
	window := func(p *Plan) (int64, int64, bool) { return p.ResolveWindow(st) }
	from, to, ok := window(&Plan{})
	if !ok || from != base || to != last+1 {
		t.Fatalf("full extent = [%d,%d) ok=%v, want [%d,%d)", from, to, ok, base, last+1)
	}
	from, to, ok = window(&Plan{From: base + 100, HasFrom: true})
	if !ok || from != base+100 || to != last+1 {
		t.Fatalf("open-ended = [%d,%d) ok=%v", from, to, ok)
	}
	from, to, ok = window(&Plan{To: base + 100, HasTo: true})
	if !ok || from != base || to != base+100 {
		t.Fatalf("open-start = [%d,%d) ok=%v", from, to, ok)
	}
	if _, _, ok = window(&Plan{To: base - 100, HasTo: true}); ok {
		t.Fatal("window before data extent should not resolve")
	}
	// An explicit epoch-0 bound is a real constraint, not the 'unset'
	// sentinel: time < '1970-01-01' over positive-timestamp data is empty.
	if _, _, ok = window(&Plan{To: 0, HasTo: true}); ok {
		t.Fatal("epoch-0 upper bound over 2017 data should not resolve")
	}
	empty, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	if _, _, ok = (&Plan{}).ResolveWindow(empty); ok {
		t.Fatal("empty store should not resolve a window")
	}
}

func TestEpochZeroTimeBounds(t *testing.T) {
	eng := newTestEngine(t)
	// time < epoch over 2017 data: zero samples, not a full scan.
	res := run(t, eng, `SELECT count(*) FROM meters WHERE time < '1970-01-01'`)
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("pre-epoch count = %v, want 0", got)
	}
	// time >= 0 is an explicit constraint that happens to include all
	// positive-timestamp data.
	res = run(t, eng, `SELECT count(*) FROM meters WHERE time >= 0`)
	if got := res.Rows[0][0].(int64); got != 192 {
		t.Fatalf("time >= 0 count = %v, want 192", got)
	}
	// The epoch-0 bound enters the canonical plan, so it cannot share a
	// cache entry with the unconstrained query.
	a, _ := Parse("SELECT count(*) FROM meters WHERE time >= 0")
	b, _ := Parse("SELECT count(*) FROM meters")
	pa, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Fingerprint() == pb.Fingerprint() {
		t.Fatal("explicit time >= 0 shares a plan fingerprint with the unconstrained query")
	}
}

func TestCountValueAndAvgAlias(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, "SELECT count(value), avg(value) FROM meters WHERE meter = 2")
	if res.Rows[0][0].(int64) != 48 {
		t.Errorf("count(value) = %v, want 48", res.Rows[0][0])
	}
	if res.Rows[0][1].(float64) != 2 {
		t.Errorf("avg = %v, want 2", res.Rows[0][1])
	}
	if res.Columns[1] != "mean(value)" {
		t.Errorf("avg canonical name = %q, want mean(value)", res.Columns[1])
	}
}

func TestOrderByMultipleTerms(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, `
		SELECT zone, meter, sum(value) FROM meters
		GROUP BY zone, meter ORDER BY zone ASC, sum(value) DESC`)
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(res.Rows))
	}
	// residential rows last, ordered 2 before 1 by sum desc.
	if res.Rows[2][1].(int64) != 2 || res.Rows[3][1].(int64) != 1 {
		t.Fatalf("residential order = %v, %v, want meters 2 then 1", res.Rows[2], res.Rows[3])
	}
}

func TestContextCancellation(t *testing.T) {
	eng := newTestEngine(t)
	q, err := Parse("SELECT sum(value) FROM meters GROUP BY meter, zone ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Execute(ctx, eng, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute = %v, want context.Canceled", err)
	}
}

func TestLexerCommentsAndSemicolon(t *testing.T) {
	eng := newTestEngine(t)
	res := run(t, eng, "-- a comment\nSELECT count(*) FROM meters; -- trailing")
	if res.Rows[0][0].(int64) != 192 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
