package vql

import (
	"errors"
	"fmt"
	"strings"

	"vap/internal/query"
)

// ExplainString renders the plan tree with pushdown annotations. The tree
// reads bottom-up: the scan node lists every predicate lowered into the
// store (and how it is served), the aggregate node the grouping shape, and
// the top nodes ordering and limiting. eng supplies runtime context — the
// resolved meter set, its per-series statistics, and the cost model's
// choices; it may be nil for a purely static rendering.
func ExplainString(p *Plan, eng *query.Engine) string {
	if eng == nil {
		return explainText(p, nil, false)
	}
	var ids []int64
	if resolved, err := ResolveScanMeters(eng, p); err == nil {
		ids = resolved
	} else if !errors.Is(err, query.ErrNoMeters) {
		cost, _ := planScan(p, nil, 0, 0, eng.Workers(), eng.Store().RollupResolutions())
		return explainText(p, &cost, true)
	}
	from, to, ok := p.ResolveWindow(eng.Store())
	if !ok {
		from, to = 0, 0
	}
	cost, _ := planScan(p, eng.Store().SeriesStats(ids), from, to, eng.Workers(), eng.Store().RollupResolutions())
	return explainText(p, &cost, true)
}

// explainText is the rendering body; Execute calls it directly with the
// scan cost it already planned so the hot path never resolves twice.
func explainText(p *Plan, cost *ScanCost, runtime bool) string {
	var sb strings.Builder
	sb.WriteString("VQL plan\n")
	depth := 0
	node := func(text string) {
		sb.WriteString(strings.Repeat("   ", depth))
		sb.WriteString("└─ ")
		sb.WriteString(text)
		sb.WriteByte('\n')
		depth++
	}
	leaf := func(last bool, text string) {
		sb.WriteString(strings.Repeat("   ", depth))
		if last {
			sb.WriteString("└─ ")
		} else {
			sb.WriteString("├─ ")
		}
		sb.WriteString(text)
		sb.WriteByte('\n')
	}

	if p.Limit >= 0 {
		node(fmt.Sprintf("Limit: %d", p.Limit))
	}
	if len(p.Order) > 0 {
		terms := make([]string, len(p.Order))
		for i, o := range p.Order {
			dir := "asc"
			if o.desc {
				dir = "desc"
			}
			terms[i] = fmt.Sprintf("%s %s", p.Cols[o.col].Name, dir)
		}
		node("Sort: " + strings.Join(terms, ", "))
	}
	if len(p.Keys) > 0 {
		keys := make([]string, len(p.Keys))
		for i, k := range p.Keys {
			keys[i] = k.String()
		}
		node(fmt.Sprintf("GroupAggregate: keys=[%s] aggs=[%s]",
			strings.Join(keys, ", "), strings.Join(p.aggList(), ", ")))
	} else {
		node(fmt.Sprintf("Aggregate: [%s] (single group)", strings.Join(p.aggList(), ", ")))
	}
	node("Scan: meters (vectorized batch decode)")

	var details []string
	if p.Sel.BBox != nil {
		details = append(details, fmt.Sprintf("pushdown bbox(%g, %g, %g, %g) -> catalog spatial index",
			p.Sel.BBox.Min.Lon, p.Sel.BBox.Min.Lat, p.Sel.BBox.Max.Lon, p.Sel.BBox.Max.Lat))
	}
	if p.Sel.Zone != "" {
		details = append(details, fmt.Sprintf("pushdown zone = '%s' -> catalog filter", p.Sel.Zone))
	}
	if p.Sel.MeterIDs != nil {
		details = append(details, fmt.Sprintf("pushdown meter set (%d ids) -> direct lookup", len(p.Sel.MeterIDs)))
	}
	if p.HasFrom || p.HasTo {
		details = append(details, fmt.Sprintf("pushdown time [%s, %s) -> block min/max pruned iterator",
			p.boundStr(true), p.boundStr(false)))
	}
	if len(details) == 0 {
		details = append(details, "full scan (no predicates; iterator still streams block-by-block)")
	}
	if runtime && cost != nil {
		details = append(details, fmt.Sprintf("meters resolved: %d", cost.Meters))
		perMeter := int64(0)
		if cost.Meters > 0 {
			perMeter = cost.EstSamples / int64(cost.Meters)
		}
		details = append(details, fmt.Sprintf("cost: est %d samples (~%d/meter), %d blocks, %s compressed",
			cost.EstSamples, perMeter, cost.EstBlocks, humanBytes(cost.EstBytes)))
		details = append(details, "grouping: "+groupingStr(cost))
		details = append(details, "tier: "+tierStr(cost))
		details = append(details, fmt.Sprintf("fanout: %d workers via internal/exec, %d chunks, cancellable",
			cost.Workers, cost.Chunks))
	}
	for i, d := range details {
		leaf(i == len(details)-1, d)
	}
	return sb.String()
}

// tierStr renders the planner's tier decision: which rollup tier serves
// the scan (and its estimated cost), or why the scan reads raw blocks.
func tierStr(c *ScanCost) string {
	if c.TierRes != 0 {
		return fmt.Sprintf("%ds rollup serves interior (est %d buckets + %d raw edge samples)",
			c.TierRes, c.TierBuckets, c.TierEdges)
	}
	reason := c.TierReason
	if reason == "" {
		reason = "n/a"
	}
	return "raw scan (" + reason + ")"
}

// groupingStr renders the planner's grouping choice.
func groupingStr(c *ScanCost) string {
	switch c.Strategy {
	case GroupDense:
		return fmt.Sprintf("dense bucket array (%d buckets, boundaries precomputed)", c.Buckets)
	case GroupMap:
		return "hash on bucket start (bucket count not enumerable)"
	default:
		return "single group per key (no bucket dimension)"
	}
}

// humanBytes renders a byte count with a binary-unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// aggList returns the distinct aggregate expressions of the select list in
// column order.
func (p *Plan) aggList() []string {
	var out []string
	for _, c := range p.Cols {
		if !c.IsKey {
			out = append(out, c.Expr.String())
		}
	}
	if len(out) == 0 {
		out = append(out, "(keys only)")
	}
	return out
}
