package vql

import (
	"errors"
	"fmt"
	"strings"

	"vap/internal/query"
)

// ExplainString renders the plan tree with pushdown annotations. The tree
// reads bottom-up: the scan node lists every predicate lowered into the
// store (and how it is served), the aggregate node the grouping shape, and
// the top nodes ordering and limiting. eng supplies runtime context — how
// many meters the selection resolves to and the fan-out width; it may be
// nil for a purely static rendering.
func ExplainString(p *Plan, eng *query.Engine) string {
	if eng == nil {
		return explainText(p, 0, 0, false)
	}
	meters := 0
	if ids, err := eng.ResolveMeters(p.Sel); err == nil {
		meters = len(ids)
	} else if !errors.Is(err, query.ErrNoMeters) {
		return explainText(p, eng.Workers(), 0, true)
	}
	return explainText(p, eng.Workers(), meters, true)
}

// explainText is the rendering body; Execute calls it directly with the
// meter set it already resolved so the hot path never resolves twice.
func explainText(p *Plan, workers, meters int, runtime bool) string {
	var sb strings.Builder
	sb.WriteString("VQL plan\n")
	depth := 0
	node := func(text string) {
		sb.WriteString(strings.Repeat("   ", depth))
		sb.WriteString("└─ ")
		sb.WriteString(text)
		sb.WriteByte('\n')
		depth++
	}
	leaf := func(last bool, text string) {
		sb.WriteString(strings.Repeat("   ", depth))
		if last {
			sb.WriteString("└─ ")
		} else {
			sb.WriteString("├─ ")
		}
		sb.WriteString(text)
		sb.WriteByte('\n')
	}

	if p.Limit >= 0 {
		node(fmt.Sprintf("Limit: %d", p.Limit))
	}
	if len(p.Order) > 0 {
		terms := make([]string, len(p.Order))
		for i, o := range p.Order {
			dir := "asc"
			if o.desc {
				dir = "desc"
			}
			terms[i] = fmt.Sprintf("%s %s", p.Cols[o.col].Name, dir)
		}
		node("Sort: " + strings.Join(terms, ", "))
	}
	if len(p.Keys) > 0 {
		keys := make([]string, len(p.Keys))
		for i, k := range p.Keys {
			keys[i] = k.String()
		}
		node(fmt.Sprintf("GroupAggregate: keys=[%s] aggs=[%s]",
			strings.Join(keys, ", "), strings.Join(p.aggList(), ", ")))
	} else {
		node(fmt.Sprintf("Aggregate: [%s] (single group)", strings.Join(p.aggList(), ", ")))
	}
	node("Scan: meters")

	var details []string
	if p.Sel.BBox != nil {
		details = append(details, fmt.Sprintf("pushdown bbox(%g, %g, %g, %g) -> catalog spatial index",
			p.Sel.BBox.Min.Lon, p.Sel.BBox.Min.Lat, p.Sel.BBox.Max.Lon, p.Sel.BBox.Max.Lat))
	}
	if p.Sel.Zone != "" {
		details = append(details, fmt.Sprintf("pushdown zone = '%s' -> catalog filter", p.Sel.Zone))
	}
	if p.Sel.MeterIDs != nil {
		details = append(details, fmt.Sprintf("pushdown meter set (%d ids) -> direct lookup", len(p.Sel.MeterIDs)))
	}
	if p.HasFrom || p.HasTo {
		details = append(details, fmt.Sprintf("pushdown time [%s, %s) -> block min/max pruned iterator",
			p.boundStr(true), p.boundStr(false)))
	}
	if len(details) == 0 {
		details = append(details, "full scan (no predicates; iterator still streams block-by-block)")
	}
	if runtime {
		details = append(details, fmt.Sprintf("meters resolved: %d", meters))
		details = append(details, fmt.Sprintf("fanout: %d workers via internal/exec, cancellable", workers))
	}
	for i, d := range details {
		leaf(i == len(details)-1, d)
	}
	return sb.String()
}

// aggList returns the distinct aggregate expressions of the select list in
// column order.
func (p *Plan) aggList() []string {
	var out []string
	for _, c := range p.Cols {
		if !c.IsKey {
			out = append(out, c.Expr.String())
		}
	}
	if len(out) == 0 {
		out = append(out, "(keys only)")
	}
	return out
}
