package vql

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"vap/internal/query"
	"vap/internal/store"
)

// ColType is the transport-independent type of one output column's
// cells. Transports map it onto their own encodings (JSON numbers, MySQL
// text-protocol column definitions) without sniffing row values.
type ColType string

const (
	// TypeInt64 cells are int64: meter ids and count aggregates.
	TypeInt64 ColType = "int64"
	// TypeTime cells are int64 Unix seconds: bucket() group keys. Kept
	// distinct from TypeInt64 so a transport may render timestamps
	// natively; the canonical cell value is still the integer.
	TypeTime ColType = "time"
	// TypeFloat64 cells are float64 or nil (empty-group / all-NaN
	// aggregates): sum, mean, min, max.
	TypeFloat64 ColType = "float64"
	// TypeString cells are strings: zone group keys.
	TypeString ColType = "string"
)

// ColumnTypes returns the plan's output column types, aligned with
// Result.Columns.
func (p *Plan) ColumnTypes() []ColType {
	types := make([]ColType, len(p.Cols))
	for i, c := range p.Cols {
		switch {
		case c.IsKey:
			switch p.Keys[c.Key].Kind {
			case KeyBucket:
				types[i] = TypeTime
			case KeyMeter:
				types[i] = TypeInt64
			default:
				types[i] = TypeString
			}
		case c.Agg == AggCount || c.Agg == AggCountValue:
			types[i] = TypeInt64
		default:
			types[i] = TypeFloat64
		}
	}
	return types
}

// Column is one typed output column of a plan.
type Column struct {
	Name  string // alias or canonical expression text
	IsKey bool
	Key   int   // index into Plan.Keys when IsKey
	Agg   AggFn // aggregate when !IsKey
	Expr  Expr
}

// orderSpec is a resolved ORDER BY term: a column index plus direction.
type orderSpec struct {
	col  int
	desc bool
}

// Plan is the typed logical plan a Query compiles to. Every WHERE
// predicate has been lowered into Sel — the store-pushdown selection the
// engine resolves through the catalog's spatial index and the per-block
// min/max-pruned iterators — so execution never post-filters rows.
type Plan struct {
	Explain bool
	Cols    []Column
	Sel     query.Selection
	Keys    []KeyExpr // GROUP BY keys, in declaration order
	Order   []orderSpec
	Limit   int // -1 = none

	// The scan window is tracked with explicit presence flags rather than
	// Selection's 0-as-unset sentinel: a bound that normalizes to exactly
	// Unix epoch 0 (time < '1970-01-01', time >= 0) is a real constraint,
	// not an absent one. Sel.From/Sel.To mirror the values for display.
	From, To       int64
	HasFrom, HasTo bool

	hasBucket bool
	bucketIdx int // index into Keys
	needZone  bool
	canonical string
}

// Compile type-checks q and lowers it to a Plan. Errors carry source
// positions (*Error).
func Compile(q *Query) (*Plan, error) {
	p := &Plan{Explain: q.Explain, Limit: q.Limit, bucketIdx: -1}
	if err := p.lowerPredicates(q); err != nil {
		return nil, err
	}
	if err := p.checkGroupKeys(q); err != nil {
		return nil, err
	}
	if err := p.buildColumns(q); err != nil {
		return nil, err
	}
	if err := p.resolveOrder(q); err != nil {
		return nil, err
	}
	p.canonical = p.buildCanonical()
	return p, nil
}

// lowerPredicates folds the WHERE conjuncts into one query.Selection.
func (p *Plan) lowerPredicates(q *Query) error {
	var fromPos Pos
	for _, pred := range q.Where {
		switch pr := pred.(type) {
		case BBoxPred:
			if p.Sel.BBox != nil {
				return errAt(pr.Pos, "duplicate bbox predicate")
			}
			box := geoBox(pr)
			p.Sel.BBox = &box
		case ZonePred:
			if p.Sel.Zone != "" {
				return errAt(pr.Pos, "duplicate zone predicate")
			}
			p.Sel.Zone = store.ZoneType(pr.Zone)
		case MeterPred:
			if p.Sel.MeterIDs != nil {
				return errAt(pr.Pos, "duplicate meter predicate")
			}
			// Sort and deduplicate: IN (1, 1) must scan meter 1 once, not
			// double-count its samples into every aggregate.
			ids := append([]int64(nil), pr.IDs...)
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			uniq := ids[:0]
			for i, id := range ids {
				if i == 0 || id != ids[i-1] {
					uniq = append(uniq, id)
				}
			}
			p.Sel.MeterIDs = uniq
		case TimePred:
			p.applyTime(pr)
			if pr.Op == ">=" {
				fromPos = pr.Pos
			}
		case timeRange:
			p.applyTime(pr.from)
			p.applyTime(pr.to)
			fromPos = pr.Pos
		default:
			return errAt(pred.predPos(), "unsupported predicate %s", pred)
		}
	}
	if p.HasFrom && p.HasTo && p.To <= p.From {
		return errAt(fromPos, "empty time window [%d, %d)", p.From, p.To)
	}
	p.Sel.From, p.Sel.To = p.From, p.To
	return nil
}

// applyTime tightens the plan's half-open window with one normalized
// comparison: conjunction means start bounds take the max, end bounds the
// min.
func (p *Plan) applyTime(tp TimePred) {
	if tp.Op == ">=" {
		if !p.HasFrom || tp.Value > p.From {
			p.From = tp.Value
		}
		p.HasFrom = true
	} else {
		if !p.HasTo || tp.Value < p.To {
			p.To = tp.Value
		}
		p.HasTo = true
	}
}

func (p *Plan) checkGroupKeys(q *Query) error {
	for _, k := range q.GroupBy {
		for _, prev := range p.Keys {
			if prev.Kind == k.Kind {
				return errAt(k.Pos, "duplicate group key %s", k.Kind)
			}
		}
		if k.Kind == KeyBucket {
			p.hasBucket = true
			p.bucketIdx = len(p.Keys)
		}
		if k.Kind == KeyZone {
			p.needZone = true
		}
		p.Keys = append(p.Keys, k)
	}
	return nil
}

func (p *Plan) buildColumns(q *Query) error {
	seen := map[string]Pos{}
	for _, item := range q.Select {
		name := item.Name()
		if prev, dup := seen[strings.ToLower(name)]; dup {
			return errAt(item.Pos, "duplicate output column %q (first at %s); use AS to rename", name, prev)
		}
		seen[strings.ToLower(name)] = item.Pos
		col := Column{Name: name, Expr: item.Expr}
		switch e := item.Expr.(type) {
		case AggExpr:
			col.Agg = e.Fn
		case KeyExpr:
			col.IsKey = true
			col.Key = -1
			for i, k := range p.Keys {
				if k.Kind == e.Kind && (e.Kind != KeyBucket || k.Gran == e.Gran) {
					col.Key = i
					break
				}
			}
			if col.Key < 0 {
				return errAt(e.Pos, "%s is selected but not grouped on; add it to GROUP BY", e)
			}
		default:
			return errAt(item.Pos, "unsupported select expression %s", item.Expr)
		}
		p.Cols = append(p.Cols, col)
	}
	return nil
}

func (p *Plan) resolveOrder(q *Query) error {
	for _, term := range q.OrderBy {
		idx := -1
		if term.Ordinal > 0 {
			if term.Ordinal > len(p.Cols) {
				return errAt(term.Pos, "ORDER BY ordinal %d out of range (query has %d columns)", term.Ordinal, len(p.Cols))
			}
			idx = term.Ordinal - 1
		} else {
			for i, c := range p.Cols {
				if strings.EqualFold(c.Name, term.Ref) || strings.EqualFold(c.Expr.String(), term.Ref) ||
					strings.EqualFold(normalizeRef(c.Expr.String()), normalizeRef(term.Ref)) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return errAt(term.Pos, "ORDER BY %q does not match any output column", term.Ref)
			}
		}
		p.Order = append(p.Order, orderSpec{col: idx, desc: term.Desc})
	}
	return nil
}

// normalizeRef strips spaces so "mean( value )" matches "mean(value)".
func normalizeRef(s string) string { return strings.ReplaceAll(strings.ToLower(s), " ", "") }

// Fingerprint hashes the canonical plan text: two queries that compile to
// the same logical plan (modulo formatting, aliases kept) share one
// fingerprint, the first half of the analyzer's memoization key (the
// second being the selection's data-version fingerprint).
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(p.canonical))
	return h.Sum64()
}

// Canonical returns the canonical plan text backing Fingerprint.
func (p *Plan) Canonical() string { return p.canonical }

func (p *Plan) buildCanonical() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, c := range p.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Expr.String())
		if c.Name != c.Expr.String() {
			fmt.Fprintf(&sb, " as %s", c.Name)
		}
	}
	sb.WriteString(" from meters")
	fmt.Fprintf(&sb, " where %s", p.predicatesCanonical())
	if len(p.Keys) > 0 {
		sb.WriteString(" group by ")
		for i, k := range p.Keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.String())
		}
	}
	if len(p.Order) > 0 {
		sb.WriteString(" order by ")
		for i, o := range p.Order {
			if i > 0 {
				sb.WriteString(", ")
			}
			dir := "asc"
			if o.desc {
				dir = "desc"
			}
			fmt.Fprintf(&sb, "%d %s", o.col+1, dir)
		}
	}
	if p.Limit >= 0 {
		fmt.Fprintf(&sb, " limit %d", p.Limit)
	}
	return sb.String()
}

// predicatesCanonical renders the lowered predicates deterministically
// (meter IDs are already sorted and deduplicated by the lowering; window
// bounds render from the presence flags, so an explicit epoch-0 bound is
// distinguishable from an absent one).
func (p *Plan) predicatesCanonical() string {
	var parts []string
	if p.Sel.BBox != nil {
		parts = append(parts, fmt.Sprintf("bbox(%g, %g, %g, %g)",
			p.Sel.BBox.Min.Lon, p.Sel.BBox.Min.Lat, p.Sel.BBox.Max.Lon, p.Sel.BBox.Max.Lat))
	}
	if p.Sel.Zone != "" {
		parts = append(parts, fmt.Sprintf("zone = '%s'", p.Sel.Zone))
	}
	if p.Sel.MeterIDs != nil {
		ids := make([]string, len(p.Sel.MeterIDs))
		for i, id := range p.Sel.MeterIDs {
			ids[i] = fmt.Sprintf("%d", id)
		}
		parts = append(parts, "meter in ("+strings.Join(ids, ", ")+")")
	}
	if p.HasFrom || p.HasTo {
		parts = append(parts, fmt.Sprintf("time in [%s, %s)", p.boundStr(true), p.boundStr(false)))
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " and ")
}

// boundStr renders one window bound, with absent bounds shown as the data
// extent.
func (p *Plan) boundStr(start bool) string {
	if start {
		if !p.HasFrom {
			return "extent"
		}
		return fmt.Sprintf("%d", p.From)
	}
	if !p.HasTo {
		return "extent"
	}
	return fmt.Sprintf("%d", p.To)
}

// Granularity returns the bucket key's granularity, or "" when the plan
// has no bucket key.
func (p *Plan) Granularity() query.Granularity {
	if p.hasBucket {
		return p.Keys[p.bucketIdx].Gran
	}
	return ""
}
