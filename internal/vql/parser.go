package vql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vap/internal/query"
)

// Parse scans and parses one VQL statement. Errors carry the 1-based
// line/column of the offending token (*Error).
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }

// isKw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		t := p.cur()
		return errAt(t.Pos, "expected %s, found %s", strings.ToUpper(kw), describe(t))
	}
	return nil
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, errAt(t.Pos, "expected %s, found %s", kind, describe(t))
	}
	p.advance()
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokIdent, TokNumber, TokOp:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("string '%s'", t.Text)
	default:
		return t.Kind.String()
	}
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if p.acceptKw("explain") {
		q.Explain = true
	}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	src := p.cur()
	if src.Kind != TokIdent || !strings.EqualFold(src.Text, "meters") {
		return nil, errAt(src.Pos, "unknown source %s; the only source is 'meters'", describe(src))
	}
	p.advance()
	if p.acceptKw("where") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.acceptKw("and") {
				continue
			}
			if p.isKw("or") {
				return nil, errAt(p.cur().Pos, "OR is not supported; WHERE is a conjunction of pushdown predicates")
			}
			break
		}
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseGroupKey()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, key)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			term, err := p.parseOrderTerm()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, term)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if p.acceptKw("limit") {
		t, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, errAt(t.Pos, "LIMIT wants a non-negative integer, found %q", t.Text)
		}
		q.Limit = n
	}
	if p.cur().Kind == TokSemicolon {
		p.advance()
	}
	if t := p.cur(); t.Kind != TokEOF {
		return nil, errAt(t.Pos, "unexpected %s after end of query", describe(t))
	}
	return q, nil
}

// parseOrderTerm parses one ORDER BY entry: a 1-based ordinal, an alias,
// or an expression like mean(value), each optionally followed by ASC/DESC.
func (p *parser) parseOrderTerm() (OrderTerm, error) {
	t := p.cur()
	term := OrderTerm{Pos: t.Pos}
	switch t.Kind {
	case TokNumber:
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return OrderTerm{}, errAt(t.Pos, "ORDER BY ordinal wants a positive integer, found %q", t.Text)
		}
		term.Ordinal = n
		p.advance()
	case TokIdent:
		// Re-use the expression parser so "mean(value)" and "bucket(daily)"
		// order terms share the select-list syntax; a bare identifier that
		// is not an expression is an alias reference.
		name := strings.ToLower(t.Text)
		switch name {
		case "sum", "mean", "avg", "min", "max", "count", "bucket":
			expr, err := p.parseExpr()
			if err != nil {
				return OrderTerm{}, err
			}
			term.Ref = expr.String()
		default:
			term.Ref = t.Text
			p.advance()
		}
	default:
		return OrderTerm{}, errAt(t.Pos, "expected an ORDER BY column, found %s", describe(t))
	}
	if p.acceptKw("desc") {
		term.Desc = true
	} else {
		p.acceptKw("asc")
	}
	return term, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: expr, Pos: expr.exprPos()}
	if p.acceptKw("as") {
		t, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.As = t.Text
	}
	return item, nil
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, errAt(t.Pos, "expected an aggregate or group key, found %s", describe(t))
	}
	name := strings.ToLower(t.Text)
	switch name {
	case "sum", "mean", "avg", "min", "max", "count":
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		fn := AggFn(name)
		if name == "avg" {
			fn = AggMean
		}
		arg := p.cur()
		switch {
		case fn == AggCount && arg.Kind == TokStar:
			p.advance()
		case fn == AggCount && arg.Kind == TokIdent && strings.EqualFold(arg.Text, "value"):
			// count(value) counts only finite samples; count(*) counts
			// every row, NaN readings included.
			fn = AggCountValue
			p.advance()
		case fn != AggCount && arg.Kind == TokIdent && strings.EqualFold(arg.Text, "value"):
			p.advance()
		case fn == AggCount:
			return nil, errAt(arg.Pos, "count wants * or value, found %s", describe(arg))
		default:
			return nil, errAt(arg.Pos, "%s wants the column 'value', found %s", name, describe(arg))
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return AggExpr{Fn: fn, Pos: t.Pos}, nil
	case "bucket", "meter", "zone":
		return p.parseGroupKey()
	default:
		return nil, errAt(t.Pos, "unknown select expression %q (want sum/mean/min/max/count(value|*) or bucket(<granularity>)/meter/zone)", t.Text)
	}
}

func (p *parser) parseGroupKey() (KeyExpr, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return KeyExpr{}, errAt(t.Pos, "expected a group key, found %s", describe(t))
	}
	switch strings.ToLower(t.Text) {
	case "bucket":
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return KeyExpr{}, err
		}
		gt := p.cur()
		if gt.Kind != TokIdent && gt.Kind != TokString {
			return KeyExpr{}, errAt(gt.Pos, "bucket wants a granularity, found %s", describe(gt))
		}
		g, err := query.ParseGranularity(strings.ToLower(gt.Text))
		if err != nil {
			return KeyExpr{}, errAt(gt.Pos, "unknown granularity %q (want one of %v)", gt.Text, query.AllGranularities)
		}
		p.advance()
		if _, err := p.expect(TokRParen); err != nil {
			return KeyExpr{}, err
		}
		return KeyExpr{Kind: KeyBucket, Gran: g, Pos: t.Pos}, nil
	case "meter":
		p.advance()
		return KeyExpr{Kind: KeyMeter, Pos: t.Pos}, nil
	case "zone":
		p.advance()
		return KeyExpr{Kind: KeyZone, Pos: t.Pos}, nil
	default:
		return KeyExpr{}, errAt(t.Pos, "unknown group key %q (want bucket(<granularity>), meter, or zone)", t.Text)
	}
}

func (p *parser) parsePred() (Pred, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, errAt(t.Pos, "expected a predicate, found %s", describe(t))
	}
	switch strings.ToLower(t.Text) {
	case "bbox":
		return p.parseBBox()
	case "zone":
		p.advance()
		op, err := p.expect(TokOp)
		if err != nil {
			return nil, err
		}
		if op.Text != "=" {
			return nil, errAt(op.Pos, "zone supports only '=', found %q", op.Text)
		}
		v := p.cur()
		if v.Kind != TokString && v.Kind != TokIdent {
			return nil, errAt(v.Pos, "zone wants a string, found %s", describe(v))
		}
		p.advance()
		return ZonePred{Zone: v.Text, Pos: t.Pos}, nil
	case "meter":
		return p.parseMeterPred()
	case "time":
		return p.parseTimePred()
	default:
		return nil, errAt(t.Pos, "unknown predicate %q (want bbox(...), zone = ..., meter = / IN ..., or time comparisons)", t.Text)
	}
}

func (p *parser) parseBBox() (Pred, error) {
	t := p.cur()
	p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var vals [4]float64
	for i := 0; i < 4; i++ {
		if i > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		nt, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(nt.Text, 64)
		if err != nil {
			return nil, errAt(nt.Pos, "bad bbox coordinate %q", nt.Text)
		}
		vals[i] = f
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	pred := BBoxPred{MinLon: vals[0], MinLat: vals[1], MaxLon: vals[2], MaxLat: vals[3], Pos: t.Pos}
	if err := validBBox(vals[0], vals[1], vals[2], vals[3]); err != nil {
		return nil, errAt(t.Pos, "%v", err)
	}
	return pred, nil
}

func (p *parser) parseMeterPred() (Pred, error) {
	t := p.cur()
	p.advance()
	switch {
	case p.cur().Kind == TokOp && p.cur().Text == "=":
		p.advance()
		nt, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		id, err := strconv.ParseInt(nt.Text, 10, 64)
		if err != nil {
			return nil, errAt(nt.Pos, "bad meter id %q", nt.Text)
		}
		return MeterPred{IDs: []int64{id}, Pos: t.Pos}, nil
	case p.isKw("in"):
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var ids []int64
		for {
			nt, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			id, err := strconv.ParseInt(nt.Text, 10, 64)
			if err != nil {
				return nil, errAt(nt.Pos, "bad meter id %q", nt.Text)
			}
			ids = append(ids, id)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return MeterPred{IDs: ids, Pos: t.Pos}, nil
	default:
		return nil, errAt(p.cur().Pos, "meter supports '= <id>' or 'IN (<ids>)', found %s", describe(p.cur()))
	}
}

// parseTimePred normalizes every comparison to half-open window
// contributions: ">= v" starts the window, "< v" ends it; "> v" becomes
// ">= v+1" and "<= v" becomes "< v+1" (timestamps are whole seconds).
// BETWEEN a AND b is inclusive on both ends, per SQL.
func (p *parser) parseTimePred() (Pred, error) {
	t := p.cur()
	p.advance()
	if p.isKw("between") {
		p.advance()
		lo, err := p.parseTimeLit()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseTimeLit()
		if err != nil {
			return nil, err
		}
		hi1, err := incTimeBound(hi, t.Pos)
		if err != nil {
			return nil, err
		}
		return timeRange{from: TimePred{Op: ">=", Value: lo, Pos: t.Pos}, to: TimePred{Op: "<", Value: hi1, Pos: t.Pos}, Pos: t.Pos}, nil
	}
	op, err := p.expect(TokOp)
	if err != nil {
		return nil, err
	}
	v, err := p.parseTimeLit()
	if err != nil {
		return nil, err
	}
	switch op.Text {
	case ">=":
		return TimePred{Op: ">=", Value: v, Pos: t.Pos}, nil
	case ">":
		v1, err := incTimeBound(v, t.Pos)
		if err != nil {
			return nil, err
		}
		return TimePred{Op: ">=", Value: v1, Pos: t.Pos}, nil
	case "<":
		return TimePred{Op: "<", Value: v, Pos: t.Pos}, nil
	case "<=":
		v1, err := incTimeBound(v, t.Pos)
		if err != nil {
			return nil, err
		}
		return TimePred{Op: "<", Value: v1, Pos: t.Pos}, nil
	default:
		return nil, errAt(op.Pos, "time supports >=, >, <, <= or BETWEEN, found %q", op.Text)
	}
}

// incTimeBound shifts an inclusive bound to its half-open form, rejecting
// math.MaxInt64 instead of silently wrapping to MinInt64 (which would
// turn 'match nothing' into 'match everything' and vice versa).
func incTimeBound(v int64, pos Pos) (int64, error) {
	if v == math.MaxInt64 {
		return 0, errAt(pos, "time bound %d overflows; use < or >= with a finite bound", v)
	}
	return v + 1, nil
}

// timeRange is the parse of time BETWEEN a AND b: both window ends at once.
type timeRange struct {
	from, to TimePred
	Pos      Pos
}

func (p timeRange) String() string {
	return fmt.Sprintf("time in [%d, %d)", p.from.Value, p.to.Value)
}
func (p timeRange) predPos() Pos { return p.Pos }

// parseTimeLit accepts a Unix-seconds integer or a quoted date/time string
// (see ParseTime for the accepted layouts).
func (p *parser) parseTimeLit() (int64, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return 0, errAt(t.Pos, "bad time literal %q", t.Text)
		}
		p.advance()
		return v, nil
	case TokString:
		v, err := ParseTime(t.Text)
		if err != nil {
			return 0, errAt(t.Pos, "%v", err)
		}
		p.advance()
		return v, nil
	default:
		return 0, errAt(t.Pos, "expected a time literal (Unix seconds or quoted date), found %s", describe(t))
	}
}
