package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Session models the paper's iterative exploration workflow: a user keeps
// several named brush selections alive over one reduced view, compares
// their profiles, and refines them ("This is an iterative process of
// discovering knowledge from the data and refining parameters of the
// models", §2). Sessions are safe for concurrent use (the web UI may
// issue overlapping requests).
type Session struct {
	mu      sync.RWMutex
	view    *TypicalView
	brushes map[string]Brush
}

// NewSession starts a session over a reduced view.
func NewSession(view *TypicalView) *Session {
	return &Session{view: view, brushes: make(map[string]Brush)}
}

// View returns the session's underlying view.
func (s *Session) View() *TypicalView { return s.view }

// SetBrush stores or replaces a named brush. Empty names are rejected.
func (s *Session) SetBrush(name string, b Brush) error {
	if name == "" {
		return fmt.Errorf("core: brush name must be non-empty")
	}
	if b.MaxX < b.MinX || b.MaxY < b.MinY {
		return fmt.Errorf("core: inverted brush %+v", b)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.brushes[name] = b
	return nil
}

// RemoveBrush deletes a named brush; it reports whether it existed.
func (s *Session) RemoveBrush(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.brushes[name]
	delete(s.brushes, name)
	return ok
}

// BrushNames returns the stored brush names, sorted.
func (s *Session) BrushNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.brushes))
	for n := range s.brushes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Group is a named brush resolved against the view.
type Group struct {
	Name    string        `json:"name"`
	Brush   Brush         `json:"brush"`
	Profile *GroupProfile `json:"profile"`
}

// Resolve evaluates one named brush into its group profile.
func (s *Session) Resolve(name string) (*Group, error) {
	s.mu.RLock()
	b, ok := s.brushes[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown brush %q", name)
	}
	_, rowIdx, err := s.view.SelectBrush(b)
	if err != nil {
		return nil, err
	}
	prof, err := s.view.Profile(rowIdx)
	if err != nil {
		return nil, err
	}
	return &Group{Name: name, Brush: b, Profile: prof}, nil
}

// ResolveAll evaluates every brush, skipping empty selections, ordered by
// name.
func (s *Session) ResolveAll() []*Group {
	var out []*Group
	for _, name := range s.BrushNames() {
		g, err := s.Resolve(name)
		if err != nil {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Coverage reports how much of the view the session's brushes explain:
// the fraction of points inside at least one brush, and the fraction in
// more than one (overlap the user may want to resolve).
func (s *Session) Coverage() (covered, overlapping float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.view.Points)
	if n == 0 {
		return 0, 0
	}
	cov, over := 0, 0
	for _, p := range s.view.Points {
		hits := 0
		for _, b := range s.brushes {
			if b.Contains(p) {
				hits++
			}
		}
		if hits >= 1 {
			cov++
		}
		if hits >= 2 {
			over++
		}
	}
	return float64(cov) / float64(n), float64(over) / float64(n)
}

// Labels assigns each view point the name of the first brush containing
// it (in sorted-name order), or "" for unbrushed points — the flattened
// segmentation a session produces.
func (s *Session) Labels() []string {
	names := s.BrushNames()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.view.Points))
	for i, p := range s.view.Points {
		for _, name := range names {
			if s.brushes[name].Contains(p) {
				out[i] = name
				break
			}
		}
	}
	return out
}

// sessionState is the serialized form of a session's brushes.
type sessionState struct {
	Brushes map[string][4]float64 `json:"brushes"`
}

// MarshalJSON serializes the brush set (the view itself is reproducible
// from its parameters and is not embedded).
func (s *Session) MarshalJSON() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := sessionState{Brushes: make(map[string][4]float64, len(s.brushes))}
	for n, b := range s.brushes {
		st.Brushes[n] = [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY}
	}
	return json.Marshal(st)
}

// UnmarshalJSON restores the brush set into an existing session.
func (s *Session) UnmarshalJSON(data []byte) error {
	var st sessionState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.brushes = make(map[string]Brush, len(st.Brushes))
	for n, v := range st.Brushes {
		s.brushes[n] = Brush{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}
	}
	return nil
}
