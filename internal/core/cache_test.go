package core

import (
	"context"
	"sync"
	"testing"

	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

// TestTypicalPatternsMemoized asserts the versioned-cache contract:
// repeated identical calls on an unchanged store compute once and return
// the same view, and a store append invalidates the entry.
func TestTypicalPatternsMemoized(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()
	cfg := TypicalConfig{Seed: 3, Method: reduce.MethodMDS}

	v1, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("computes after first call = %d, want 1", got)
	}
	v2, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("identical repeat recomputed: computes = %d, want 1", got)
	}
	if v1 != v2 {
		t.Fatal("repeat did not return the cached view")
	}
	if an.ExecStats().Hits == 0 {
		t.Fatal("repeat did not count as a cache hit")
	}

	// A different config must compute separately.
	if _, err := an.TypicalPatterns(ctx, TypicalConfig{Seed: 4, Method: reduce.MethodMDS}); err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 2 {
		t.Fatalf("distinct config did not compute: computes = %d, want 2", got)
	}

	// An append bumps the data version and invalidates the cached view.
	id := ds.Customers[0].Meter.ID
	_, last, _ := an.Store().Bounds(id)
	if err := an.Store().Append(id, store.Sample{TS: last + 3600, Value: 1.5}); err != nil {
		t.Fatal(err)
	}
	v3, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 3 {
		t.Fatalf("append did not invalidate: computes = %d, want 3", got)
	}
	if v3 == v1 {
		t.Fatal("stale view returned after store append")
	}
}

// TestShiftPatternsMemoized mirrors the contract for the flow-map path,
// including bucket-anchor canonicalization: two anchors in the same bucket
// share a cache entry.
func TestShiftPatternsMemoized(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	cfg := ShiftConfig{T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly}

	r1, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := an.ExecStats().Computes
	r2, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != base {
		t.Fatalf("identical repeat recomputed: computes = %d, want %d", got, base)
	}
	if r1 != r2 {
		t.Fatal("repeat did not return the cached result")
	}

	// Same 4-hour buckets, different instants: must hit the same entry.
	shifted := cfg
	shifted.T1 += 1800
	shifted.T2 += 900
	r3, err := an.ShiftPatternsCtx(ctx, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("anchors in the same buckets missed the cache")
	}

	// Append invalidates.
	id := ds.Customers[0].Meter.ID
	_, lastTS, _ := an.Store().Bounds(id)
	if err := an.Store().Append(id, store.Sample{TS: lastTS + 3600, Value: 2}); err != nil {
		t.Fatal(err)
	}
	r4, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatal("stale flow map returned after store append")
	}
	if got := an.ExecStats().Computes; got <= base {
		t.Fatalf("append did not trigger recompute: computes = %d", got)
	}
}

// TestConcurrentIdenticalRequestsSingleflight asserts in-flight
// deduplication: N concurrent identical requests on a cold cache run the
// pipeline once.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	an, _ := fixture(t)
	ctx := context.Background()
	cfg := TypicalConfig{Seed: 5, Method: reduce.MethodMDS}
	const callers = 12
	views := make([]*TypicalView, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := an.TypicalPatterns(ctx, cfg)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("concurrent identical requests computed %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if views[i] != views[0] {
			t.Fatalf("caller %d got a different view instance", i)
		}
	}
}

// TestSelectionScopedInvalidation is the streaming-cache contract of the
// sharded store: an append to meter A invalidates only cached views whose
// selections contain A. Views over disjoint selections keep hitting.
func TestSelectionScopedInvalidation(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()

	// Two disjoint halves of the population by explicit meter IDs, over an
	// explicit time window: a zero window resolves to the store-wide data
	// extent, which legitimately moves (and must invalidate) when any
	// meter receives newer samples.
	var selA, selB query.Selection
	selA.From, selA.To = ds.Start.Unix(), ds.Start.Unix()+30*86400
	selB.From, selB.To = selA.From, selA.To
	for i, c := range ds.Customers {
		if i%2 == 0 {
			selA.MeterIDs = append(selA.MeterIDs, c.Meter.ID)
		} else {
			selB.MeterIDs = append(selB.MeterIDs, c.Meter.ID)
		}
	}
	cfgA := TypicalConfig{Selection: selA, Seed: 7, Method: reduce.MethodMDS}
	cfgB := TypicalConfig{Selection: selB, Seed: 7, Method: reduce.MethodMDS}

	vA, err := an.TypicalPatterns(ctx, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := an.TypicalPatterns(ctx, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	warm := an.ExecStats().Computes

	// Append to a meter inside selection A only.
	mutated := selA.MeterIDs[0]
	_, last, _ := an.Store().Bounds(mutated)
	if err := an.Store().Append(mutated, store.Sample{TS: last + 3600, Value: 2}); err != nil {
		t.Fatal(err)
	}

	// B's selection excludes the mutated meter: still a cache hit.
	vB2, err := an.TypicalPatterns(ctx, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != warm {
		t.Fatalf("disjoint selection recomputed after unrelated append: computes %d -> %d", warm, got)
	}
	if vB2 != vB {
		t.Fatal("disjoint selection did not return the cached view")
	}

	// A's selection contains the mutated meter: must miss and recompute.
	vA2, err := an.TypicalPatterns(ctx, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != warm+1 {
		t.Fatalf("selection containing mutated meter did not recompute: computes = %d, want %d", got, warm+1)
	}
	if vA2 == vA {
		t.Fatal("stale view returned for the mutated selection")
	}
}

// TestSelectionScopedInvalidationDensity covers the same contract on the
// DemandDensity path used by the heat-map renders during streaming ingest.
func TestSelectionScopedInvalidationDensity(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()

	var selA, selB query.Selection
	for i, c := range ds.Customers {
		if i%2 == 0 {
			selA.MeterIDs = append(selA.MeterIDs, c.Meter.ID)
		} else {
			selB.MeterIDs = append(selB.MeterIDs, c.Meter.ID)
		}
	}
	from := ds.Start.Unix()
	to := from + 86400

	if _, err := an.DemandDensity(ctx, selA, from, to, kde.Config{Cols: 32, Rows: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := an.DemandDensity(ctx, selB, from, to, kde.Config{Cols: 32, Rows: 32}); err != nil {
		t.Fatal(err)
	}
	warm := an.ExecStats().Computes

	mutated := selA.MeterIDs[0]
	_, last, _ := an.Store().Bounds(mutated)
	if err := an.Store().Append(mutated, store.Sample{TS: last + 3600, Value: 2}); err != nil {
		t.Fatal(err)
	}

	if _, err := an.DemandDensity(ctx, selB, from, to, kde.Config{Cols: 32, Rows: 32}); err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != warm {
		t.Fatalf("disjoint density recomputed: computes %d -> %d", warm, got)
	}
	if _, err := an.DemandDensity(ctx, selA, from, to, kde.Config{Cols: 32, Rows: 32}); err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != warm+1 {
		t.Fatalf("mutated density selection did not recompute: computes = %d, want %d", got, warm+1)
	}
}

// TestDefaultWindowInvalidatedByExtentGrowth is the counterpart contract:
// a view over the *default* (zero) time window resolves to the store-wide
// data extent, so an append that extends the extent — even to a meter
// outside the selection — changes the bucket axis and must recompute.
func TestDefaultWindowInvalidatedByExtentGrowth(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()

	// Selection B: second half of the population, default window.
	var selB query.Selection
	for i, c := range ds.Customers {
		if i%2 == 1 {
			selB.MeterIDs = append(selB.MeterIDs, c.Meter.ID)
		}
	}
	cfgB := TypicalConfig{Selection: selB, Seed: 7, Method: reduce.MethodMDS}
	if _, err := an.TypicalPatterns(ctx, cfgB); err != nil {
		t.Fatal(err)
	}
	warm := an.ExecStats().Computes

	// Append to a meter OUTSIDE B, beyond the current global extent.
	outside := ds.Customers[0].Meter.ID
	_, last, ok := an.Store().TimeBounds()
	if !ok {
		t.Fatal("no data")
	}
	if err := an.Store().Append(outside, store.Sample{TS: last + 86400, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := an.TypicalPatterns(ctx, cfgB); err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != warm+1 {
		t.Fatalf("extent growth did not invalidate the default-window view: computes = %d, want %d", got, warm+1)
	}
}
