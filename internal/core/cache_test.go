package core

import (
	"context"
	"sync"
	"testing"

	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

// TestTypicalPatternsMemoized asserts the versioned-cache contract:
// repeated identical calls on an unchanged store compute once and return
// the same view, and a store append invalidates the entry.
func TestTypicalPatternsMemoized(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()
	cfg := TypicalConfig{Seed: 3, Method: reduce.MethodMDS}

	v1, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("computes after first call = %d, want 1", got)
	}
	v2, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("identical repeat recomputed: computes = %d, want 1", got)
	}
	if v1 != v2 {
		t.Fatal("repeat did not return the cached view")
	}
	if an.ExecStats().Hits == 0 {
		t.Fatal("repeat did not count as a cache hit")
	}

	// A different config must compute separately.
	if _, err := an.TypicalPatterns(ctx, TypicalConfig{Seed: 4, Method: reduce.MethodMDS}); err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 2 {
		t.Fatalf("distinct config did not compute: computes = %d, want 2", got)
	}

	// An append bumps the data version and invalidates the cached view.
	id := ds.Customers[0].Meter.ID
	_, last, _ := an.Store().Bounds(id)
	if err := an.Store().Append(id, store.Sample{TS: last + 3600, Value: 1.5}); err != nil {
		t.Fatal(err)
	}
	v3, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != 3 {
		t.Fatalf("append did not invalidate: computes = %d, want 3", got)
	}
	if v3 == v1 {
		t.Fatal("stale view returned after store append")
	}
}

// TestShiftPatternsMemoized mirrors the contract for the flow-map path,
// including bucket-anchor canonicalization: two anchors in the same bucket
// share a cache entry.
func TestShiftPatternsMemoized(t *testing.T) {
	an, ds := fixture(t)
	ctx := context.Background()
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	cfg := ShiftConfig{T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly}

	r1, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := an.ExecStats().Computes
	r2, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.ExecStats().Computes; got != base {
		t.Fatalf("identical repeat recomputed: computes = %d, want %d", got, base)
	}
	if r1 != r2 {
		t.Fatal("repeat did not return the cached result")
	}

	// Same 4-hour buckets, different instants: must hit the same entry.
	shifted := cfg
	shifted.T1 += 1800
	shifted.T2 += 900
	r3, err := an.ShiftPatternsCtx(ctx, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("anchors in the same buckets missed the cache")
	}

	// Append invalidates.
	id := ds.Customers[0].Meter.ID
	_, lastTS, _ := an.Store().Bounds(id)
	if err := an.Store().Append(id, store.Sample{TS: lastTS + 3600, Value: 2}); err != nil {
		t.Fatal(err)
	}
	r4, err := an.ShiftPatternsCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatal("stale flow map returned after store append")
	}
	if got := an.ExecStats().Computes; got <= base {
		t.Fatalf("append did not trigger recompute: computes = %d", got)
	}
}

// TestConcurrentIdenticalRequestsSingleflight asserts in-flight
// deduplication: N concurrent identical requests on a cold cache run the
// pipeline once.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	an, _ := fixture(t)
	ctx := context.Background()
	cfg := TypicalConfig{Seed: 5, Method: reduce.MethodMDS}
	const callers = 12
	views := make([]*TypicalView, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := an.TypicalPatterns(ctx, cfg)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	if got := an.ExecStats().Computes; got != 1 {
		t.Fatalf("concurrent identical requests computed %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if views[i] != views[0] {
			t.Fatalf("caller %d got a different view instance", i)
		}
	}
}
