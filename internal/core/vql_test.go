package core

import (
	"context"
	"strings"
	"testing"

	"vap/internal/geo"
	"vap/internal/store"
)

func newVQLAnalyzer(t *testing.T) (*Analyzer, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for id := int64(1); id <= 3; id++ {
		m := store.Meter{ID: id, Location: geo.Point{Lon: 10 + float64(id)*0.01, Lat: 55}, Zone: store.ZoneResidential}
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 24; h++ {
			if err := st.Append(id, store.Sample{TS: 1496275200 + int64(h)*3600, Value: float64(id)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return NewAnalyzer(st), st
}

func TestVQLExplainDoesNotExecuteOrCache(t *testing.T) {
	an, _ := newVQLAnalyzer(t)
	out, err := an.VQL(context.Background(), "EXPLAIN SELECT meter, sum(value) FROM meters GROUP BY meter")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Columns) != 1 || out.Columns[0] != "plan" {
		t.Fatalf("explain columns = %v", out.Columns)
	}
	if len(out.Rows) == 0 || !strings.Contains(out.Plan, "GroupAggregate") {
		t.Fatalf("explain rows/plan missing: %v / %q", out.Rows, out.Plan)
	}
	if stats := an.ExecStats(); stats.Computes != 0 || an.Exec().Len() != 0 {
		t.Fatalf("EXPLAIN touched the cache: %+v", stats)
	}
}

func TestVQLEmptySelectionSkipsCache(t *testing.T) {
	an, _ := newVQLAnalyzer(t)
	out, err := an.VQL(context.Background(), "SELECT count(*) FROM meters WHERE zone = 'industrial'")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].(int64) != 0 {
		t.Fatalf("empty selection rows = %v, want one zero-count row", out.Rows)
	}
	if an.Exec().Len() != 0 {
		t.Fatal("empty-selection result was cached")
	}
	// A window entirely outside the data skips the cache the same way.
	out, err = an.VQL(context.Background(), "SELECT meter, count(*) FROM meters WHERE time < 100 GROUP BY meter")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 0 || an.Exec().Len() != 0 {
		t.Fatalf("out-of-extent window: rows=%v cached=%d", out.Rows, an.Exec().Len())
	}
}

func TestVQLExplainFlagNotFooledByAlias(t *testing.T) {
	an, _ := newVQLAnalyzer(t)
	out, err := an.VQL(context.Background(), "SELECT count(*) AS plan FROM meters")
	if err != nil {
		t.Fatal(err)
	}
	if out.Explain {
		t.Fatal("aliasing a column 'plan' must not mark the result as EXPLAIN")
	}
	if len(out.Rows) != 1 || out.Rows[0][0].(int64) != 72 {
		t.Fatalf("rows = %v, want the real count", out.Rows)
	}
	exp, err := an.VQL(context.Background(), "EXPLAIN SELECT count(*) FROM meters")
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Explain {
		t.Fatal("EXPLAIN output not flagged")
	}
}

func TestVQLParseErrorPropagates(t *testing.T) {
	an, _ := newVQLAnalyzer(t)
	if _, err := an.VQL(context.Background(), "SELECT nope FROM meters"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestVQLFingerprintMatchesObservedData(t *testing.T) {
	an, st := newVQLAnalyzer(t)
	const q = "SELECT sum(value) FROM meters WHERE meter IN (1, 2)"
	a, err := an.VQL(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := an.VQL(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if a.SelectionFingerprint != b.SelectionFingerprint {
		t.Fatal("fingerprint moved without mutation")
	}
	if err := st.Append(2, store.Sample{TS: 1496275200 + 24*3600, Value: 7}); err != nil {
		t.Fatal(err)
	}
	c, err := an.VQL(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if c.SelectionFingerprint == a.SelectionFingerprint {
		t.Fatal("fingerprint unchanged after appending to a selected meter")
	}
	if c.Rows[0][0].(float64) != a.Rows[0][0].(float64)+7 {
		t.Fatalf("sum = %v, want %v", c.Rows[0][0], a.Rows[0][0].(float64)+7)
	}
}
