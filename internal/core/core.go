// Package core is VAP's primary contribution layer: the two pattern
// recognition models of paper §2.1 wired to the data layer —
//
//   - TypicalPatterns reduces the selected meters' high-dimensional
//     consumption series to an interactive 2-D view (t-SNE/MDS with
//     Pearson distance) in which users brush point groups to identify
//     typical patterns (view C -> view B);
//   - ShiftPatterns computes the Eq. 3/Eq. 4 demand-shift flow maps
//     between two time windows at any of the paper's seven temporal
//     granularities (view A).
//
// The package also provides the brushing/selection session model and a
// heuristic pattern labeller that names brushed groups after the paper's
// five canonical profiles.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"vap/internal/exec"
	"vap/internal/flow"
	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/stat"
	"vap/internal/store"
)

// Options tunes the analyzer's execution engine.
type Options struct {
	// Workers is the parallel fan-out width for the expensive kernels
	// (distance matrix, KDE grid, per-meter decode). <= 0 selects
	// runtime.NumCPU().
	Workers int
	// CacheEntries bounds the versioned result cache (<= 0 selects 64).
	CacheEntries int
	// Gov is the admission controller all VQL executions pass through
	// (nil selects one with govern.Config defaults).
	Gov *govern.Controller
}

// Analyzer is the façade over the data layer the presentation layer talks
// to. It is safe for concurrent use: analysis results are memoized in a
// versioned cache (keyed by store data version plus a canonical config
// fingerprint), concurrent identical requests share one computation, and
// any store mutation precisely invalidates stale entries.
type Analyzer struct {
	eng *query.Engine
	ex  *exec.Engine
	gov *govern.Controller
}

// NewAnalyzer wraps a store with default execution options.
func NewAnalyzer(st *store.Store) *Analyzer {
	return NewAnalyzerOpts(st, Options{})
}

// NewAnalyzerOpts wraps a store with explicit execution options.
func NewAnalyzerOpts(st *store.Store, opts Options) *Analyzer {
	ex := exec.New(exec.Options{Workers: opts.Workers, CacheEntries: opts.CacheEntries})
	gov := opts.Gov
	if gov == nil {
		gov = govern.New(govern.Config{})
	}
	return &Analyzer{
		eng: query.NewEngineWorkers(st, ex.Workers()),
		ex:  ex,
		gov: gov,
	}
}

// Engine exposes the underlying query engine.
func (a *Analyzer) Engine() *query.Engine { return a.eng }

// Store exposes the underlying store.
func (a *Analyzer) Store() *store.Store { return a.eng.Store() }

// Exec exposes the execution engine (cache introspection, invalidation).
func (a *Analyzer) Exec() *exec.Engine { return a.ex }

// ExecStats reports cache and deduplication counters.
func (a *Analyzer) ExecStats() exec.Stats { return a.ex.Stats() }

// Gov exposes the admission controller (governance stats, front-door
// admission for ingest).
func (a *Analyzer) Gov() *govern.Controller { return a.gov }

// selectionKeyParts canonicalizes a Selection for cache keying: explicit
// meter sets are sorted (ResolveMeters sorts them anyway), so two
// selections that resolve identically fingerprint identically.
func selectionKeyParts(sel query.Selection) []any {
	ids := sel.MeterIDs
	if len(ids) > 0 && !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		ids = append([]int64(nil), ids...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	box := "-"
	if sel.BBox != nil {
		box = fmt.Sprintf("%v", *sel.BBox)
	}
	return []any{box, sel.Zone, ids, sel.From, sel.To}
}

// --- Typical pattern discovery -----------------------------------------

// TypicalConfig parameterizes a typical-pattern analysis run.
type TypicalConfig struct {
	Selection query.Selection
	// Granularity of the feature vectors; daily gives 365-dim yearly
	// shapes (captures the bimodal winter/summer signature), hourly x
	// day-profile captures diurnal habits. Default daily.
	Granularity query.Granularity
	Aggregate   query.AggFunc // default mean
	Method      reduce.Method // default t-SNE
	Metric      reduce.Metric // default Pearson (the paper's choice)
	Seed        int64
	// UseDailyProfile folds the series into a 24-dim mean day profile
	// instead of the full-resolution vector (the "early birds" query
	// operates on this).
	UseDailyProfile bool
}

func (c *TypicalConfig) defaults() {
	if c.Granularity == "" {
		c.Granularity = query.GranDaily
	}
	if c.Aggregate == "" {
		c.Aggregate = query.AggMean
	}
	if c.Method == "" {
		c.Method = reduce.MethodTSNE
	}
	if c.Metric == "" {
		c.Metric = reduce.MetricPearson
	}
}

// TypicalView is the view-C data: one 2-D point per meter, normalized to
// the unit square, aligned with MeterIDs.
type TypicalView struct {
	MeterIDs []int64          `json:"meter_ids"`
	Points   reduce.Embedding `json:"points"`
	Method   reduce.Method    `json:"method"`
	Metric   reduce.Metric    `json:"metric"`
	FeatDim  int              `json:"feature_dim"`
	rows     [][]float64      // retained for selection profiling
	times    []int64
	gran     query.Granularity
}

// Rows returns the feature matrix backing the view (row i belongs to
// MeterIDs[i]).
func (v *TypicalView) Rows() [][]float64 { return v.rows }

// TypicalPatterns runs the pipeline: select meters, build the feature
// matrix, reduce to 2-D. Results are memoized against the selection's
// version fingerprint — the hash of the per-meter versions of exactly the
// meters the selection resolves to — so repeated brushes over an unchanged
// selection return the same *TypicalView without re-running t-SNE even
// while other meters stream in, and concurrent identical requests share
// one computation.
func (a *Analyzer) TypicalPatterns(ctx context.Context, cfg TypicalConfig) (*TypicalView, error) {
	cfg.defaults()
	fp, err := a.eng.VersionFingerprint(cfg.Selection)
	if err != nil {
		return nil, err
	}
	// The effective window enters the key resolved, not as the literal
	// From/To: a zero window means "full data extent", which moves when
	// any meter — inside the selection or not — receives newer samples,
	// changing the bucket axis the feature matrix is built on.
	from, to, err := a.eng.TimeWindow(cfg.Selection)
	if err != nil {
		return nil, err
	}
	parts := append(selectionKeyParts(cfg.Selection), from, to,
		cfg.Granularity, cfg.Aggregate, cfg.Method, cfg.Metric, cfg.Seed, cfg.UseDailyProfile)
	key := exec.KeyOf(fp, "typical", parts...)
	v, err := a.ex.Do(ctx, key, func(ctx context.Context) (any, error) {
		return a.computeTypical(ctx, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*TypicalView), nil
}

// computeTypical is the uncached pipeline body.
func (a *Analyzer) computeTypical(ctx context.Context, cfg TypicalConfig) (*TypicalView, error) {
	ids, times, rows, err := a.eng.MeterMatrixCtx(ctx, cfg.Selection, cfg.Granularity, cfg.Aggregate)
	if err != nil {
		return nil, err
	}
	if cfg.UseDailyProfile {
		rows, err = dailyProfiles(ctx, a.eng, ids, cfg.Selection)
		if err != nil {
			return nil, err
		}
		times = nil
	}
	emb, err := reduce.Reduce(ctx, rows, cfg.Method, cfg.Metric, cfg.Seed)
	if err != nil {
		return nil, err
	}
	emb.Normalize01()
	dim := 0
	if len(rows) > 0 {
		dim = len(rows[0])
	}
	return &TypicalView{
		MeterIDs: ids, Points: emb, Method: cfg.Method, Metric: cfg.Metric,
		FeatDim: dim, rows: rows, times: times, gran: cfg.Granularity,
	}, nil
}

func dailyProfiles(ctx context.Context, eng *query.Engine, ids []int64, sel query.Selection) ([][]float64, error) {
	rows := make([][]float64, len(ids))
	err := exec.ForEach(ctx, len(ids), eng.Workers(), func(i int) error {
		id := ids[i]
		s := sel
		s.MeterIDs = []int64{id}
		buckets, err := eng.MeterSeries(id, s, query.GranHourly, query.AggMean)
		if err != nil {
			return err
		}
		var sums, counts [24]float64
		for _, b := range buckets {
			h := int(b.Start % 86400 / 3600)
			sums[h] += b.Value
			counts[h]++
		}
		row := make([]float64, 24)
		for h := 0; h < 24; h++ {
			if counts[h] > 0 {
				row[h] = sums[h] / counts[h]
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// --- Brushing / selection ------------------------------------------------

// Brush is a rectangular selection in the normalized embedding space of
// view C (the click-and-drag interaction of the demo).
type Brush struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the point lies in the brush.
func (b Brush) Contains(p [2]float64) bool {
	return p[0] >= b.MinX && p[0] <= b.MaxX && p[1] >= b.MinY && p[1] <= b.MaxY
}

// ErrEmptyBrush is returned when a brush selects no points.
var ErrEmptyBrush = errors.New("core: brush selects no points")

// SelectBrush returns the meter IDs whose embedding points fall inside the
// brush, together with their row indexes in the view.
func (v *TypicalView) SelectBrush(b Brush) (ids []int64, rowIdx []int, err error) {
	for i, p := range v.Points {
		if b.Contains(p) {
			ids = append(ids, v.MeterIDs[i])
			rowIdx = append(rowIdx, i)
		}
	}
	if len(ids) == 0 {
		return nil, nil, ErrEmptyBrush
	}
	return ids, rowIdx, nil
}

// GroupProfile is view B's content: the aggregated consumption pattern of a
// brushed group plus the heuristic pattern label.
type GroupProfile struct {
	MeterIDs []int64      `json:"meter_ids"`
	Mean     []float64    `json:"mean"`  // mean feature vector of the group
	Times    []int64      `json:"times"` // bucket starts (nil for day profiles)
	Label    PatternLabel `json:"label"`
}

// Profile aggregates the brushed rows into the group's mean pattern and
// labels it.
func (v *TypicalView) Profile(rowIdx []int) (*GroupProfile, error) {
	if len(rowIdx) == 0 {
		return nil, ErrEmptyBrush
	}
	dim := len(v.rows[rowIdx[0]])
	mean := make([]float64, dim)
	ids := make([]int64, 0, len(rowIdx))
	for _, r := range rowIdx {
		ids = append(ids, v.MeterIDs[r])
		for j, x := range v.rows[r] {
			mean[j] += x
		}
	}
	for j := range mean {
		mean[j] /= float64(len(rowIdx))
	}
	return &GroupProfile{
		MeterIDs: ids, Mean: mean, Times: v.times,
		Label: ClassifyProfile(mean, v.gran),
	}, nil
}

// --- Pattern labelling ----------------------------------------------------

// PatternLabel names a profile after the paper's five canonical patterns.
type PatternLabel string

// The five Figure 3 labels plus the S1 early-bird cohort.
const (
	LabelBimodal      PatternLabel = "bimodal"
	LabelEnergySaving PatternLabel = "energy-saving"
	LabelIdle         PatternLabel = "idle"
	LabelConstantHigh PatternLabel = "constant-high"
	LabelSuspicious   PatternLabel = "suspicious"
	LabelEarlyBird    PatternLabel = "early-bird"
	LabelUnknown      PatternLabel = "unknown"
)

// ClassifyProfile heuristically labels a mean consumption profile. The
// rules mirror how the paper's authors interpret the brushed groups:
// level (idle vs constant-high), variability (suspicious), seasonal
// bimodality (winter+summer humps), and morning-peak timing (early birds).
func ClassifyProfile(mean []float64, gran query.Granularity) PatternLabel {
	if len(mean) == 0 {
		return LabelUnknown
	}
	level := stat.Mean(mean)
	sd := stat.StdDev(mean)
	switch {
	case level < 0.12:
		return LabelIdle
	case level > 2.2 && sd/math.Max(level, 1e-12) < 0.25:
		return LabelConstantHigh
	}
	cv := sd / math.Max(level, 1e-12)
	if len(mean) == 24 {
		// Day profile: peak-hour logic.
		peak := argmax(mean)
		switch {
		case peak >= 5 && peak <= 7:
			return LabelEarlyBird
		case cv > 1.0:
			return LabelSuspicious
		case level < 0.45:
			return LabelEnergySaving
		default:
			return LabelBimodal // evening-peaked household default
		}
	}
	// Long profile (daily over a year): check seasonal bimodality by
	// comparing winter+summer mass to spring+autumn mass.
	if gran == query.GranDaily && len(mean) >= 360 {
		winterSummer, springAutumn := 0.0, 0.0
		var wsN, saN int
		for d, v := range mean {
			doy := d % 365
			switch {
			case doy < 60 || doy >= 335 || (doy >= 152 && doy < 244):
				winterSummer += v
				wsN++
			default:
				springAutumn += v
				saN++
			}
		}
		if wsN > 0 && saN > 0 {
			ratio := (winterSummer / float64(wsN)) / math.Max(springAutumn/float64(saN), 1e-12)
			if ratio > 1.25 {
				return LabelBimodal
			}
		}
	}
	switch {
	case cv > 0.8:
		return LabelSuspicious
	case level < 0.45:
		return LabelEnergySaving
	default:
		return LabelUnknown
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// --- Shift pattern discovery ----------------------------------------------

// ShiftConfig parameterizes a shift analysis between two windows.
type ShiftConfig struct {
	Selection query.Selection
	// T1/T2 are the two bucket anchors; each window is
	// [Granularity.Truncate(T), Granularity.Next(T)).
	T1, T2      int64
	Granularity query.Granularity
	// IntensityQuantile keeps only meters at or above this total-consumption
	// quantile (0 disables; S2 sweeps 0.30..0.90).
	IntensityQuantile float64
	// KDE controls.
	GridCols, GridRows int
	Bandwidth          float64
	Kernel             kde.Kernel
	// Flow extraction.
	OD ODMode
}

// ODMode selects the flow representation.
type ODMode string

// Flow representations.
const (
	ODGradient ODMode = "gradient"
	ODMatching ODMode = "matching"
)

// ShiftResult is view A's analytical payload.
type ShiftResult struct {
	Box      geo.BBox      `json:"box"`
	T1Window [2]int64      `json:"t1_window"`
	T2Window [2]int64      `json:"t2_window"`
	Density1 *kde.Field    `json:"-"`
	Density2 *kde.Field    `json:"-"`
	Shift    *kde.Field    `json:"-"`
	Flows    []flow.Vector `json:"flows"`
	Summary  flow.Summary  `json:"summary"`
	Meters   int           `json:"meters"`
}

// ShiftPatterns computes the Figure 2 pipeline: two density-strength maps
// (Eq. 3) and their difference (Eq. 4), plus renderable flows.
func (a *Analyzer) ShiftPatterns(cfg ShiftConfig) (*ShiftResult, error) {
	return a.ShiftPatternsCtx(context.Background(), cfg)
}

// ShiftPatternsCtx is ShiftPatterns with context cancellation and the same
// versioned memoization as TypicalPatterns: anchors are canonicalized to
// their bucket starts, so any two requests landing in the same (T1, T2)
// buckets on unchanged data share one cached flow map.
func (a *Analyzer) ShiftPatternsCtx(ctx context.Context, cfg ShiftConfig) (*ShiftResult, error) {
	if cfg.Granularity == "" {
		cfg.Granularity = query.GranHourly
	}
	if cfg.Kernel == "" {
		cfg.Kernel = kde.KernelGaussian
	}
	if cfg.OD == "" {
		cfg.OD = ODMatching
	}
	g := cfg.Granularity
	t1a, t1b := g.Truncate(cfg.T1), g.Next(cfg.T1)
	t2a, t2b := g.Truncate(cfg.T2), g.Next(cfg.T2)
	if t1a == t2a {
		return nil, fmt.Errorf("core: T1 and T2 fall in the same %s bucket", g)
	}
	fp, err := a.eng.VersionFingerprint(cfg.Selection)
	if err != nil {
		return nil, err
	}
	// The study-area box is derived from the whole catalog, not the
	// selection, so it enters the key parts explicitly: a meter registered
	// outside the selection that widens the box must still miss.
	box := a.Store().Catalog().Bounds()
	parts := append(selectionKeyParts(cfg.Selection),
		t1a, t2a, g, cfg.IntensityQuantile, cfg.GridCols, cfg.GridRows,
		cfg.Bandwidth, cfg.Kernel, cfg.OD, box)
	key := exec.KeyOf(fp, "shift", parts...)
	v, err := a.ex.Do(ctx, key, func(ctx context.Context) (any, error) {
		return a.computeShift(ctx, cfg, t1a, t1b, t2a, t2b)
	})
	if err != nil {
		return nil, err
	}
	return v.(*ShiftResult), nil
}

// computeShift is the uncached pipeline body. The two density maps are
// evaluated with the engine's parallel KDE path.
func (a *Analyzer) computeShift(ctx context.Context, cfg ShiftConfig, t1a, t1b, t2a, t2b int64) (*ShiftResult, error) {
	sel := cfg.Selection
	if cfg.IntensityQuantile > 0 {
		ids, err := a.intensityBand(ctx, sel, cfg.IntensityQuantile)
		if err != nil {
			return nil, err
		}
		sel.MeterIDs = ids
	}
	pts1, err := a.demand(ctx, sel, t1a, t1b)
	if err != nil {
		return nil, err
	}
	pts2, err := a.demand(ctx, sel, t2a, t2b)
	if err != nil {
		return nil, err
	}
	box := a.Store().Catalog().Bounds().Buffer(0.002)
	kcfg := kde.Config{
		Cols: cfg.GridCols, Rows: cfg.GridRows, Bandwidth: cfg.Bandwidth,
		Kernel: cfg.Kernel, Workers: a.ex.Workers(),
	}
	// Use one shared bandwidth so the two maps are comparable.
	if kcfg.Bandwidth <= 0 {
		kcfg.Bandwidth = kde.SilvermanBandwidth(append(append([]kde.WeightedPoint{}, pts1...), pts2...))
	}
	d1, err := kde.EstimateCtx(ctx, pts1, box, kcfg)
	if err != nil {
		return nil, err
	}
	d2, err := kde.EstimateCtx(ctx, pts2, box, kcfg)
	if err != nil {
		return nil, err
	}
	shift, err := flow.Shift(d1, d2)
	if err != nil {
		return nil, err
	}
	var vectors []flow.Vector
	if cfg.OD == ODGradient {
		vectors = flow.GradientField(shift, 6, 0.25)
	} else {
		vectors = flow.ExtractOD(shift, flow.ODConfig{})
	}
	return &ShiftResult{
		Box:      box,
		T1Window: [2]int64{t1a, t1b},
		T2Window: [2]int64{t2a, t2b},
		Density1: d1, Density2: d2, Shift: shift,
		Flows:   vectors,
		Summary: flow.Summarize(shift),
		Meters:  len(pts1),
	}, nil
}

// DemandDensity returns the Eq. 3 density map of the selection's demand in
// [from, to) over the catalog's study area — the standalone heat map of
// view A. It carries the same versioned-memoization contract as the
// pattern entry points, so repeated renders of an unchanged dataset reuse
// the grid.
func (a *Analyzer) DemandDensity(ctx context.Context, sel query.Selection, from, to int64, kcfg kde.Config) (*kde.Field, error) {
	// Canonicalize the knobs kde would default anyway, so equivalent
	// requests share one cache entry.
	if kcfg.Cols <= 0 {
		kcfg.Cols = 96
	}
	if kcfg.Rows <= 0 {
		kcfg.Rows = 96
	}
	if kcfg.Kernel == "" {
		kcfg.Kernel = kde.KernelGaussian
	}
	kcfg.Workers = a.ex.Workers()
	fp, err := a.eng.VersionFingerprint(sel)
	if err != nil {
		return nil, err
	}
	// Like ShiftPatternsCtx, the catalog-wide study-area box is a real
	// input the fingerprint does not cover.
	parts := append(selectionKeyParts(sel),
		from, to, kcfg.Cols, kcfg.Rows, kcfg.Bandwidth, kcfg.Kernel, kcfg.Exact,
		a.Store().Catalog().Bounds())
	key := exec.KeyOf(fp, "density", parts...)
	v, err := a.ex.Do(ctx, key, func(ctx context.Context) (any, error) {
		dps, err := a.eng.DemandSnapshotCtx(ctx, sel, from, to)
		if err != nil {
			return nil, err
		}
		pts := make([]kde.WeightedPoint, len(dps))
		for i, d := range dps {
			pts[i] = kde.WeightedPoint{Loc: d.Loc, Weight: d.Weight}
		}
		box := a.Store().Catalog().Bounds().Buffer(0.002)
		return kde.EstimateCtx(ctx, pts, box, kcfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*kde.Field), nil
}

// intensityBand resolves the S2 intensity filter through the parallel,
// cancellable query path.
func (a *Analyzer) intensityBand(ctx context.Context, sel query.Selection, q float64) ([]int64, error) {
	return a.eng.IntensityBandCtx(ctx, sel, q)
}

// demand returns a snapshot whose weights are rescaled to unit total mass.
// DemandSnapshot normalizes each window's weights into [0,1] independently,
// which is right for a standalone heat map but makes two windows'
// densities incomparable in Eq. 4 (one window's field can dominate the
// other everywhere, leaving the shift one-signed). Fixing both snapshots
// to the same total mass makes the difference a pure redistribution
// signal — where high demand moved, the Figure 2 semantics.
func (a *Analyzer) demand(ctx context.Context, sel query.Selection, from, to int64) ([]kde.WeightedPoint, error) {
	dps, err := a.eng.DemandSnapshotCtx(ctx, sel, from, to)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, d := range dps {
		total += d.Weight
	}
	out := make([]kde.WeightedPoint, len(dps))
	for i, d := range dps {
		w := d.Weight
		if total > 0 {
			w /= total
		}
		out[i] = kde.WeightedPoint{Loc: d.Loc, Weight: w}
	}
	return out, nil
}

// GranularitySweep runs ShiftPatterns for every granularity (S2 step 1) at
// the same anchor instants and returns the shift summaries keyed by
// granularity, in AllGranularities order.
func (a *Analyzer) GranularitySweep(base ShiftConfig) ([]query.Granularity, []flow.Summary, error) {
	var gs []query.Granularity
	var sums []flow.Summary
	for _, g := range query.AllGranularities {
		cfg := base
		cfg.Granularity = g
		res, err := a.ShiftPatterns(cfg)
		if err != nil {
			// Coarse granularities can merge T1 and T2 into one bucket;
			// that is a meaningful sensitivity result, not a failure.
			if isSameBucket(err) {
				gs = append(gs, g)
				sums = append(sums, flow.Summary{})
				continue
			}
			return nil, nil, err
		}
		gs = append(gs, g)
		sums = append(sums, res.Summary)
	}
	return gs, sums, nil
}

func isSameBucket(err error) bool {
	return err != nil && containsStr(err.Error(), "same") && containsStr(err.Error(), "bucket")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// IntensitySweep runs ShiftPatterns over intensity quantiles (S2 step 2).
func (a *Analyzer) IntensitySweep(base ShiftConfig, quantiles []float64) ([]flow.Summary, error) {
	out := make([]flow.Summary, 0, len(quantiles))
	for _, q := range quantiles {
		cfg := base
		cfg.IntensityQuantile = q
		res, err := a.ShiftPatterns(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Summary)
	}
	return out, nil
}
