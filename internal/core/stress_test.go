package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"vap/internal/gen"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

// TestAnalyzerConcurrentStress hammers one Analyzer from many goroutines
// mixing TypicalPatterns, ShiftPatterns, and concurrent store appends.
// Run under -race (CI does) it proves the execution engine's cache,
// singleflight, and parallel kernels are data-race free, and it asserts
// the versioned-cache contract end to end: results computed before an
// append are never served for a version observed after it.
func TestAnalyzerConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ds := gen.Generate(gen.Config{
		Seed: 23,
		Days: 30,
		Counts: map[gen.Pattern]int{
			gen.PatternBimodal:      12,
			gen.PatternEnergySaving: 10,
			gen.PatternIdle:         8,
			gen.PatternConstantHigh: 8,
			gen.PatternSuspicious:   6,
			gen.PatternEarlyBird:    8,
		},
	})
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzerOpts(st, Options{Workers: 4, CacheEntries: 64})
	ctx := context.Background()
	noon := ds.Start.Unix() + 5*86400 + 12*3600

	const (
		readers   = 6
		appenders = 2
		rounds    = 8
	)
	// Appenders extend each meter's series past its current tail.
	nextTS := make([]atomic.Int64, len(ds.Customers))
	for i, c := range ds.Customers {
		_, last, err := st.Bounds(c.Meter.ID)
		if err != nil {
			t.Fatal(err)
		}
		nextTS[i].Store(last + 3600)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, readers+appenders)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if g%2 == 0 {
					cfg := TypicalConfig{Seed: int64(g % 3), Method: reduce.MethodMDS}
					if _, err := an.TypicalPatterns(ctx, cfg); err != nil {
						errCh <- err
						return
					}
				} else {
					cfg := ShiftConfig{
						T1: noon, T2: noon + 8*3600,
						Granularity: query.Gran4Hourly,
						GridCols:    32, GridRows: 32,
					}
					if _, err := an.ShiftPatternsCtx(ctx, cfg); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds*4; r++ {
				i := (g*17 + r*5) % len(ds.Customers)
				ts := nextTS[i].Add(3600)
				err := st.Append(ds.Customers[i].Meter.ID, store.Sample{TS: ts, Value: 1.0})
				if err != nil && !errors.Is(err, store.ErrOutOfOrder) {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiescent invalidation check: the store is no longer moving, so a
	// fresh call must compute against the final version, and a repeat must
	// hit that cache entry — never one from mid-stress.
	cfg := TypicalConfig{Seed: 99, Method: reduce.MethodMDS}
	v1, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	computes := an.ExecStats().Computes
	v2, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || an.ExecStats().Computes != computes {
		t.Fatal("post-stress repeat did not hit the cache")
	}
	ver := st.Version()
	id := ds.Customers[0].Meter.ID
	_, last, _ := st.Bounds(id)
	if err := st.Append(id, store.Sample{TS: last + 3600, Value: 3}); err != nil {
		t.Fatal(err)
	}
	if st.Version() <= ver {
		t.Fatal("append did not bump version")
	}
	v3, err := an.TypicalPatterns(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("version bump did not invalidate the cached view")
	}
	if an.ExecStats().Computes != computes+1 {
		t.Fatalf("expected exactly one recompute after invalidation, computes %d -> %d",
			computes, an.ExecStats().Computes)
	}
}
