package core

import (
	"encoding/json"
	"sync"
	"testing"

	"vap/internal/query"
	"vap/internal/reduce"
)

// sessionView builds a tiny deterministic view: 4 points at the unit
// square corners with simple day profiles.
func sessionView() *TypicalView {
	return &TypicalView{
		MeterIDs: []int64{1, 2, 3, 4},
		Points: reduce.Embedding{
			{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9},
		},
		rows: [][]float64{
			{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4},
		},
		gran: query.GranDaily,
	}
}

func TestSessionBrushCRUD(t *testing.T) {
	s := NewSession(sessionView())
	if err := s.SetBrush("left", Brush{MaxX: 0.5, MaxY: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBrush("", Brush{}); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.SetBrush("bad", Brush{MinX: 1, MaxX: 0}); err == nil {
		t.Error("inverted brush should fail")
	}
	if got := s.BrushNames(); len(got) != 1 || got[0] != "left" {
		t.Fatalf("names = %v", got)
	}
	if !s.RemoveBrush("left") {
		t.Error("remove failed")
	}
	if s.RemoveBrush("left") {
		t.Error("double remove should fail")
	}
}

func TestSessionResolve(t *testing.T) {
	s := NewSession(sessionView())
	_ = s.SetBrush("bottom", Brush{MaxX: 1, MaxY: 0.5})
	g, err := s.Resolve("bottom")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Profile.MeterIDs) != 2 {
		t.Fatalf("bottom group = %v", g.Profile.MeterIDs)
	}
	// Mean of rows {1,1,1} and {2,2,2}.
	if g.Profile.Mean[0] != 1.5 {
		t.Errorf("mean = %v", g.Profile.Mean)
	}
	if _, err := s.Resolve("nope"); err == nil {
		t.Error("unknown brush should fail")
	}
	// A brush selecting nothing errors on resolve.
	_ = s.SetBrush("empty", Brush{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45})
	if _, err := s.Resolve("empty"); err == nil {
		t.Error("empty brush should fail to resolve")
	}
}

func TestSessionResolveAllSkipsEmpty(t *testing.T) {
	s := NewSession(sessionView())
	_ = s.SetBrush("a", Brush{MaxX: 0.5, MaxY: 1})
	_ = s.SetBrush("b", Brush{MinX: 0.45, MinY: 0.45, MaxX: 0.5, MaxY: 0.5}) // empty
	groups := s.ResolveAll()
	if len(groups) != 1 || groups[0].Name != "a" {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestSessionCoverageAndLabels(t *testing.T) {
	s := NewSession(sessionView())
	_ = s.SetBrush("left", Brush{MaxX: 0.5, MaxY: 1})
	_ = s.SetBrush("bottom", Brush{MaxX: 1, MaxY: 0.5})
	covered, overlapping := s.Coverage()
	// left covers points 0,2; bottom covers 0,1 -> covered 3/4, overlap 1/4.
	if covered != 0.75 {
		t.Errorf("covered = %v, want 0.75", covered)
	}
	if overlapping != 0.25 {
		t.Errorf("overlapping = %v, want 0.25", overlapping)
	}
	labels := s.Labels()
	// Name order: bottom < left. Point 0 is in both -> "bottom" wins.
	want := []string{"bottom", "bottom", "left", ""}
	for i, w := range want {
		if labels[i] != w {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestSessionJSONRoundTrip(t *testing.T) {
	s := NewSession(sessionView())
	_ = s.SetBrush("g1", Brush{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4})
	_ = s.SetBrush("g2", Brush{MaxX: 1, MaxY: 1})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(sessionView())
	if err := json.Unmarshal(data, s2); err != nil {
		t.Fatal(err)
	}
	if got := s2.BrushNames(); len(got) != 2 {
		t.Fatalf("restored names = %v", got)
	}
	g, err := s2.Resolve("g2")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Profile.MeterIDs) != 4 {
		t.Fatalf("restored g2 selects %d", len(g.Profile.MeterIDs))
	}
}

func TestSessionConcurrentUse(t *testing.T) {
	s := NewSession(sessionView())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a", "b", "c", "d"}
			for i := 0; i < 200; i++ {
				name := names[(w+i)%4]
				_ = s.SetBrush(name, Brush{MaxX: 1, MaxY: 1})
				_, _ = s.Resolve(name)
				s.Coverage()
				s.Labels()
				if i%10 == 0 {
					s.RemoveBrush(name)
				}
			}
		}(w)
	}
	wg.Wait()
}
