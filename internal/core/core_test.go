package core

import (
	"context"
	"testing"

	"vap/internal/gen"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
)

// fixture builds a small planted dataset and its analyzer once per test
// binary; the dataset is read-only for all tests here.
func fixture(t *testing.T) (*Analyzer, *gen.Dataset) {
	t.Helper()
	ds := gen.Generate(gen.Config{
		Seed: 11,
		Days: 40,
		Counts: map[gen.Pattern]int{
			gen.PatternBimodal:      15,
			gen.PatternEnergySaving: 15,
			gen.PatternIdle:         10,
			gen.PatternConstantHigh: 12,
			gen.PatternSuspicious:   8,
			gen.PatternEarlyBird:    12,
		},
	})
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(st), ds
}

func TestTypicalPatternsShape(t *testing.T) {
	an, ds := fixture(t)
	view, err := an.TypicalPatterns(context.Background(), TypicalConfig{Seed: 1, Method: reduce.MethodMDS})
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Points) != len(ds.Customers) {
		t.Fatalf("points = %d, want %d", len(view.Points), len(ds.Customers))
	}
	if len(view.MeterIDs) != len(view.Points) {
		t.Fatal("ids/points misaligned")
	}
	// Normalized to the unit square.
	for _, p := range view.Points {
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			t.Fatalf("point %v outside unit square", p)
		}
	}
	if view.FeatDim != 40 { // 40 daily buckets
		t.Errorf("feature dim = %d, want 40", view.FeatDim)
	}
}

func TestBrushSelectionAndProfile(t *testing.T) {
	an, _ := fixture(t)
	view, err := an.TypicalPatterns(context.Background(), TypicalConfig{Seed: 1, Method: reduce.MethodMDS})
	if err != nil {
		t.Fatal(err)
	}
	ids, rowIdx, err := view.SelectBrush(Brush{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(view.Points) {
		t.Fatalf("full brush selected %d of %d", len(ids), len(view.Points))
	}
	prof, err := view.Profile(rowIdx)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Mean) != view.FeatDim {
		t.Fatalf("profile dim = %d", len(prof.Mean))
	}
	// Empty brush errors.
	if _, _, err := view.SelectBrush(Brush{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}); err != ErrEmptyBrush {
		t.Errorf("empty brush err = %v", err)
	}
	if _, err := view.Profile(nil); err != ErrEmptyBrush {
		t.Errorf("empty profile err = %v", err)
	}
}

func TestBrushContains(t *testing.T) {
	b := Brush{MinX: 0.2, MinY: 0.2, MaxX: 0.5, MaxY: 0.5}
	if !b.Contains([2]float64{0.3, 0.3}) {
		t.Error("interior point not contained")
	}
	if b.Contains([2]float64{0.6, 0.3}) {
		t.Error("exterior point contained")
	}
	if !b.Contains([2]float64{0.2, 0.5}) {
		t.Error("edge point not contained")
	}
}

func TestClassifyProfileDayShapes(t *testing.T) {
	mk := func(f func(h int) float64) []float64 {
		out := make([]float64, 24)
		for h := range out {
			out[h] = f(h)
		}
		return out
	}
	cases := []struct {
		name string
		prof []float64
		want PatternLabel
	}{
		{"idle", mk(func(h int) float64 { return 0.05 }), LabelIdle},
		{"constant high", mk(func(h int) float64 { return 3.2 }), LabelConstantHigh},
		{"early bird", mk(func(h int) float64 {
			if h == 6 {
				return 2
			}
			return 0.5
		}), LabelEarlyBird},
		{"evening household", mk(func(h int) float64 {
			if h >= 18 && h <= 21 {
				return 1.6
			}
			return 0.7
		}), LabelBimodal},
		{"energy saving", mk(func(h int) float64 {
			if h == 19 {
				return 0.5
			}
			return 0.3
		}), LabelEnergySaving},
	}
	for _, c := range cases {
		if got := ClassifyProfile(c.prof, query.GranHourly); got != c.want {
			t.Errorf("%s: label = %s, want %s", c.name, got, c.want)
		}
	}
	if ClassifyProfile(nil, query.GranDaily) != LabelUnknown {
		t.Error("empty profile should be unknown")
	}
}

func TestClassifyProfileBimodalYear(t *testing.T) {
	// 365 daily values with winter+summer humps.
	prof := make([]float64, 365)
	for d := range prof {
		prof[d] = 1.0
		if d < 60 || d >= 335 || (d >= 152 && d < 244) {
			prof[d] = 2.0
		}
	}
	if got := ClassifyProfile(prof, query.GranDaily); got != LabelBimodal {
		t.Errorf("yearly bimodal label = %s", got)
	}
}

func TestShiftPatternsBasics(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	res, err := an.ShiftPatterns(ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shift == nil || res.Density1 == nil || res.Density2 == nil {
		t.Fatal("missing fields")
	}
	if res.Meters != len(ds.Customers) {
		t.Errorf("meters = %d, want %d", res.Meters, len(ds.Customers))
	}
	if res.T1Window[1] <= res.T1Window[0] {
		t.Error("bad t1 window")
	}
	// Both densities share geometry with the shift field.
	if res.Shift.Cols != res.Density1.Cols {
		t.Error("geometry mismatch")
	}
}

func TestShiftPatternsSameBucketFails(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	if _, err := an.ShiftPatterns(ShiftConfig{
		T1: noon, T2: noon + 3600, Granularity: query.GranDaily,
	}); err == nil {
		t.Error("same-bucket anchors should fail")
	}
}

func TestShiftPatternsGradientMode(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	res, err := an.ShiftPatterns(ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly, OD: ODGradient,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) == 0 {
		t.Error("gradient mode produced no flows")
	}
}

func TestShiftPatternsIntensityQuantile(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	full, err := an.ShiftPatterns(ShiftConfig{T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly})
	if err != nil {
		t.Fatal(err)
	}
	band, err := an.ShiftPatterns(ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
		IntensityQuantile: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if band.Meters >= full.Meters {
		t.Errorf("quantile band kept %d of %d meters", band.Meters, full.Meters)
	}
}

func TestGranularitySweepCoversAll(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	gs, sums, err := an.GranularitySweep(ShiftConfig{T1: noon, T2: noon + 8*3600})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != len(query.AllGranularities) || len(sums) != len(gs) {
		t.Fatalf("sweep covered %d granularities", len(gs))
	}
	// Hourly must detect a shift; yearly must merge (zero summary).
	if sums[0].L1 == 0 {
		t.Error("hourly sweep found no shift")
	}
	last := sums[len(sums)-1]
	if last.L1 != 0 {
		t.Error("yearly sweep should merge anchors in a 40-day dataset")
	}
}

func TestIntensitySweep(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	sums, err := an.IntensitySweep(
		ShiftConfig{T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly},
		[]float64{0.3, 0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("sweep results = %d", len(sums))
	}
}

func TestDailyProfileFeatureView(t *testing.T) {
	an, ds := fixture(t)
	view, err := an.TypicalPatterns(context.Background(), TypicalConfig{
		Seed: 1, Method: reduce.MethodMDS, UseDailyProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.FeatDim != 24 {
		t.Fatalf("daily profile dim = %d, want 24", view.FeatDim)
	}
	_ = ds
}

func TestShiftPatternsCustomKernelAndGrid(t *testing.T) {
	an, ds := fixture(t)
	noon := ds.Start.Unix() + 10*86400 + 12*3600
	res, err := an.ShiftPatterns(ShiftConfig{
		T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
		GridCols: 32, GridRows: 24, Kernel: kde.KernelEpanechnikov, Bandwidth: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shift.Cols != 32 || res.Shift.Rows != 24 {
		t.Errorf("grid = %dx%d", res.Shift.Cols, res.Shift.Rows)
	}
	if res.Shift.Kernel != kde.KernelEpanechnikov {
		t.Errorf("kernel = %s", res.Shift.Kernel)
	}
}
