package core

import (
	"context"

	"vap/internal/exec"
	"vap/internal/govern"
	"vap/internal/vql"
)

// VQLOutput is one executed (or explained) VQL statement plus the version
// metadata clients need to reason about cache freshness: the canonical
// plan hash and the selection-scoped data fingerprint the result was
// computed against. SelectionFingerprint comes from the executor's
// observed per-meter versions (not a separate fingerprint read racing
// with concurrent appends), so two responses carrying the same value
// always carry identical rows.
type VQLOutput struct {
	*vql.Result
	PlanHash             uint64 `json:"plan_hash"`
	SelectionFingerprint uint64 `json:"selection_fingerprint"`
	// Explain marks an EXPLAIN statement: Rows hold the plan lines, and
	// nothing executed. Callers must branch on this flag, not on the
	// column shape (a user can alias a real column "plan").
	Explain bool `json:"explain,omitempty"`
}

// VQL parses, compiles, and executes one VQL statement. Results are
// memoized in the analyzer's versioned cache keyed by (canonical plan
// hash, selection fingerprint, resolved time window): two textually
// different but logically identical queries share one entry, repeated
// queries over an unchanged selection hit the cache even while other
// meters stream in, and an append to any selected meter — or an extent
// move under an unbounded window — invalidates precisely. EXPLAIN
// statements resolve the plan without executing or caching.
func (a *Analyzer) VQL(ctx context.Context, src string) (*VQLOutput, error) {
	q, err := vql.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := vql.Compile(q)
	if err != nil {
		return nil, err
	}
	if p.Explain {
		text := vql.ExplainString(p, a.eng)
		res := &vql.Result{Columns: []string{"plan"}, Types: []vql.ColType{vql.TypeString}, Plan: text}
		for _, line := range splitLines(text) {
			res.Rows = append(res.Rows, []any{line})
		}
		return &VQLOutput{Result: res, PlanHash: p.Fingerprint(), Explain: true}, nil
	}
	// Resolve the meter set once: it feeds the cache key's selection
	// fingerprint and, via ExecuteResolved, the scan itself.
	ids, err := vql.ResolveScanMeters(a.eng, p)
	if err != nil {
		return nil, err
	}
	from, to, windowOK := p.ResolveWindow(a.Store())
	if len(ids) == 0 || !windowOK {
		// Empty selection or unresolvable window: the result is a cheap
		// constant (zero rows, or one null row for ungrouped aggregates);
		// skip the cache rather than key on a fingerprint that does not
		// cover the (empty) meter set.
		res, execErr := vql.ExecuteResolved(ctx, a.eng, p, ids, from, to, windowOK)
		if execErr != nil {
			return nil, execErr
		}
		return &VQLOutput{Result: res, PlanHash: p.Fingerprint()}, nil
	}
	// Admission: the planner's estimates (samples to decode, peak in-flight
	// bytes) are checked against the tenant's ceilings and budgets BEFORE
	// the exec engine sees the query — a rejected or shed query never
	// reaches the cache or the singleflight table, so it leaves no residual
	// state. The grant rides the context: the executor's batch loops pace
	// against it, and the controller's query deadline (if configured)
	// bounds execution.
	cost := vql.EstimateScan(a.eng, p, ids, from, to)
	grant, err := a.gov.Admit(ctx, govern.Request{
		Tenant:     govern.TenantFrom(ctx),
		EstSamples: cost.EstSamples,
		EstMem:     cost.EstMemBytes(),
	})
	if err != nil {
		return nil, err
	}
	defer grant.Release()
	ctx = govern.WithGrant(ctx, grant)
	if d := grant.Deadline(); !d.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, d)
		defer cancel()
	}

	fp := a.Store().Fingerprint(ids)
	key := exec.KeyOf(fp, "vql", p.Fingerprint(), from, to)
	v, err := a.ex.Do(ctx, key, func(ctx context.Context) (any, error) {
		return vql.ExecuteResolved(ctx, a.eng, p, ids, from, to, true)
	})
	if err != nil {
		return nil, err
	}
	res := v.(*vql.Result)
	return &VQLOutput{Result: res, PlanHash: p.Fingerprint(), SelectionFingerprint: res.Fingerprint}, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
