package api

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestPickTimeout(t *testing.T) {
	cases := []struct {
		v, def, want time.Duration
	}{
		{0, 10 * time.Second, 10 * time.Second}, // zero selects the default
		{5 * time.Second, 10 * time.Second, 5 * time.Second},
		{-1, 10 * time.Second, 0}, // negative disables
		{0, 0, 0},
	}
	for _, tc := range cases {
		if got := pickTimeout(tc.v, tc.def); got != tc.want {
			t.Errorf("pickTimeout(%v, %v) = %v, want %v", tc.v, tc.def, got, tc.want)
		}
	}
}

func TestNewHTTPServerDefaults(t *testing.T) {
	srv := NewHTTPServer(":0", http.NewServeMux(), ServerTimeouts{})
	if srv.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", srv.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != 15*time.Minute {
		t.Errorf("ReadTimeout = %v, want 15m", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (SSE must stay open)", srv.WriteTimeout)
	}
	if srv.IdleTimeout != 2*time.Minute {
		t.Errorf("IdleTimeout = %v, want 2m", srv.IdleTimeout)
	}
}

// TestSlowlorisConnectionClosed is the regression test for the seed's
// unbounded http.Server: a client that opens a connection and trickles an
// incomplete request header must be disconnected once ReadHeaderTimeout
// fires, instead of pinning a goroutine and a socket forever.
func TestSlowlorisConnectionClosed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	srv := NewHTTPServer("", mux, ServerTimeouts{ReadHeader: 150 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Serve(ln); close(done) }()
	t.Cleanup(func() { srv.Close(); <-done })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A request line but never the terminating blank line: headers stay
	// incomplete, the classic slowloris hold.
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\nX-Slow: "); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server responded to an incomplete header instead of closing")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server held the stalled connection past 5s; ReadHeaderTimeout is not enforced")
	}
	if held := time.Since(start); held > 3*time.Second {
		t.Fatalf("stalled connection held %v before close, want ~ReadHeaderTimeout", held)
	}

	// The same server still answers a well-formed request.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := io.WriteString(conn2, "GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn2).ReadString('\n')
	if err != nil || !strings.Contains(line, "200") {
		t.Fatalf("healthy request after slowloris close: line %q, err %v", line, err)
	}
}
