package api

// Governance front-door tests: the HTTP taxonomy for cost rejections
// (422) and overload shedding (429 + Retry-After), plus the -race
// mixed-workload test the ISSUE demands — concurrent cheap queries,
// monster scans, and ingest, asserting no starvation, quota enforcement,
// and zero residual exec-engine or controller state afterwards.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/govern"
	"vap/internal/store"
)

// newGovServer builds a dataset-backed server whose analyzer runs under
// an explicit admission controller.
func newGovServer(t *testing.T, cfg govern.Config) (*httptest.Server, *core.Analyzer, *gen.Dataset) {
	t.Helper()
	ds := gen.Generate(gen.Config{
		Seed: 11,
		Days: 20,
		Counts: map[gen.Pattern]int{
			gen.PatternBimodal:      8,
			gen.PatternEnergySaving: 8,
			gen.PatternConstantHigh: 8,
			gen.PatternEarlyBird:    8,
		},
	})
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzerOpts(st, core.Options{Gov: govern.New(cfg)})
	srv := httptest.NewServer(NewServer(an, nil).Routes())
	t.Cleanup(srv.Close)
	return srv, an, ds
}

// postQueryAs posts a VQL statement under a tenant header.
func postQueryAs(t *testing.T, url, tenant, query string) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": query})
	req, err := http.NewRequest(http.MethodPost, url+"/api/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode query response: %v", err)
	}
	return resp, out
}

const monsterQuery = "SELECT zone, sum(value) FROM meters GROUP BY zone"

// TestQueryCostCeiling422: a tenant with a cost ceiling gets its monster
// scan rejected with the typed "query too expensive" error mapped to 422,
// carrying the estimate and the ceiling; the same query runs fine for an
// uncapped tenant; and the rejected query leaves no residual cache state.
func TestQueryCostCeiling422(t *testing.T) {
	srv, an, _ := newGovServer(t, govern.Config{
		Tenants: map[string]govern.Quota{"capped": {MaxCostSamples: 100}},
	})
	resp, out := postQueryAs(t, srv.URL, "capped", monsterQuery)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%v), want 422", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "query too expensive") {
		t.Errorf("error %q missing the typed message", out["error"])
	}
	if out["est_samples"].(float64) <= 100 || out["cost_ceiling"].(float64) != 100 {
		t.Errorf("422 body must carry est/ceiling: %v", out)
	}
	// A rejected query never reached the exec engine: no cached result,
	// no singleflight residue, no controller accounting left open.
	if n := an.Exec().Len(); n != 0 {
		t.Errorf("rejected query left %d exec-cache entries", n)
	}
	snap := an.Gov().Snapshot()
	if snap.Active != 0 || snap.QueueDepth != 0 {
		t.Errorf("rejected query left controller state: %+v", snap)
	}
	if snap.Tenants["capped"].RejectedCost != 1 {
		t.Errorf("rejected_cost = %d, want 1", snap.Tenants["capped"].RejectedCost)
	}

	// Uncapped default tenant: same statement succeeds and caches.
	resp, out = postQueryAs(t, srv.URL, "", monsterQuery)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncapped status %d (%v), want 200", resp.StatusCode, out)
	}
	if n := an.Exec().Len(); n != 1 {
		t.Errorf("successful query cached %d entries, want 1", n)
	}
}

// TestQueryShed429: with the only execution slot held and the queue full,
// an analytics query is shed with 429, a Retry-After header, and the
// typed JSON body — and the controller's gauges return to zero once the
// held grants release.
func TestQueryShed429(t *testing.T) {
	srv, an, _ := newGovServer(t, govern.Config{
		MaxConcurrent:     1,
		MaxQueue:          1,
		MaxQueueWait:      time.Minute,
		RetryAfter:        2 * time.Second,
		InteractiveCutoff: 1, // everything estimable is analytics
	})
	gov := an.Gov()
	// Hold the slot and fill the one queue space with analytics work.
	held, err := gov.Admit(context.Background(), govern.Request{Class: govern.ClassAnalytics})
	if err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan error, 1)
	go func() {
		g, err := gov.Admit(context.Background(), govern.Request{Class: govern.ClassAnalytics})
		if err == nil {
			g.Release()
		}
		waiterDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for gov.Snapshot().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out := postQueryAs(t, srv.URL, "dash", monsterQuery)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%v), want 429", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if out["class"] != string(govern.ClassAnalytics) || out["tenant"] != "dash" {
		t.Errorf("429 body taxonomy: %v", out)
	}
	if !strings.Contains(out["error"].(string), "overloaded") {
		t.Errorf("429 error %q missing the typed message", out["error"])
	}

	held.Release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	snap := gov.Snapshot()
	if snap.Active != 0 || snap.QueueDepth != 0 || snap.Interactive != 0 {
		t.Errorf("residual controller state after shed: %+v", snap)
	}
	if n := an.Exec().Len(); n != 0 {
		t.Errorf("shed query left %d exec-cache entries", n)
	}
}

// TestGovernMixedWorkload is the -race mixed-workload test: concurrent
// cheap interactive queries, monster analytics scans, and NDJSON ingest
// against one governed server. Cheap queries must never starve (every one
// completes with 200), monsters may run or shed but nothing else, quota
// tenants stay within their ceilings, and when the dust settles the
// controller holds zero active grants, zero queue depth, and zero
// reserved memory.
func TestGovernMixedWorkload(t *testing.T) {
	srv, an, ds := newGovServer(t, govern.Config{
		MaxConcurrent:     4,
		MaxQueue:          64,
		MaxQueueWait:      30 * time.Second,
		InteractiveCutoff: 5_000, // one-meter/one-day reads stay interactive
		Tenants: map[string]govern.Quota{
			"capped": {MaxCostSamples: 100},
		},
	})
	day0 := ds.Start.Unix()
	cheapQuery := func(meter int, day int64) string {
		return fmt.Sprintf("SELECT sum(value) FROM meters WHERE meter IN (%d) AND time >= %d AND time < %d",
			meter, day0+day*86400, day0+(day+1)*86400)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[string]map[int]int{"cheap": {}, "monster": {}, "ingest": {}, "capped": {}}
	record := func(kind string, code int) {
		mu.Lock()
		statuses[kind][code]++
		mu.Unlock()
	}

	// 2 monster scanners looping analytics-class full scans. Distinct
	// GROUP BY shapes defeat exec-cache/singleflight coalescing so the
	// scans really run concurrently with the cheap reads.
	stop := make(chan struct{})
	monsters := []string{
		"SELECT zone, sum(value) FROM meters GROUP BY zone",
		"SELECT meter, sum(value), min(value), max(value) FROM meters GROUP BY meter",
	}
	for _, q := range monsters {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				an.Exec().Invalidate() // force a real scan every round
				resp, _ := postQueryAs(t, srv.URL, "batch", q)
				record("monster", resp.StatusCode)
			}
		}(q)
	}
	// 8 cheap interactive clients, 5 queries each.
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, out := postQueryAs(t, srv.URL, "dash", cheapQuery(1+(c+j)%8, int64(j%10)))
				record("cheap", resp.StatusCode)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("cheap query starved or failed: %d %v", resp.StatusCode, out)
				}
			}
		}(c)
	}
	// 2 ingest writers appending fresh meters.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				id := 10_000 + c*100 + j
				var body bytes.Buffer
				fmt.Fprintf(&body, `{"meter":%d,"lon":12.5,"lat":55.6,"zone":"residential"}`+"\n", id)
				for k := 0; k < 50; k++ {
					fmt.Fprintf(&body, `{"meter":%d,"ts":%d,"v":%d.5}`+"\n", id, int64(k)*900, k)
				}
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/ingest", bytes.NewReader(body.Bytes()))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/x-ndjson")
				req.Header.Set(TenantHeader, "writer")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				record("ingest", resp.StatusCode)
			}
		}(c)
	}
	// A capped tenant hammering an over-ceiling query: always 422.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			resp, _ := postQueryAs(t, srv.URL, "capped", monsterQuery)
			record("capped", resp.StatusCode)
		}
	}()

	// Let cheap/ingest/capped clients finish, then stop the monsters.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(100 * time.Millisecond) // overlap window
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("mixed workload deadlocked")
	}

	mu.Lock()
	defer mu.Unlock()
	if statuses["cheap"][http.StatusOK] != 40 {
		t.Errorf("cheap statuses %v, want 40x 200", statuses["cheap"])
	}
	if statuses["ingest"][http.StatusOK] != 10 {
		t.Errorf("ingest statuses %v, want 10x 200", statuses["ingest"])
	}
	if statuses["capped"][http.StatusUnprocessableEntity] != 5 {
		t.Errorf("capped statuses %v, want 5x 422", statuses["capped"])
	}
	for code := range statuses["monster"] {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("monster got status %d; only 200/429 are legal under load", code)
		}
	}

	// The dust settles clean: nothing active, queued, or reserved.
	snap := an.Gov().Snapshot()
	if snap.Active != 0 || snap.ActiveMemBytes != 0 || snap.QueueDepth != 0 || snap.Interactive != 0 {
		t.Errorf("residual controller state: %+v", snap)
	}
	for name, ts := range snap.Tenants {
		if ts.Active != 0 || ts.ActiveMemBytes != 0 {
			t.Errorf("tenant %q residue: %+v", name, ts)
		}
	}
	// /api/stats surfaces the same governance object.
	var stats struct {
		Governance govern.Snapshot `json:"governance"`
	}
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Governance.Tenants["dash"].Admitted < 40 {
		t.Errorf("stats governance lost dash admissions: %+v", stats.Governance.Tenants["dash"])
	}
}
