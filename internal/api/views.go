package api

import (
	"fmt"
	"net/http"

	"vap/internal/core"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/viz"
)

func writeSVG(w http.ResponseWriter, svg string) {
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(svg))
}

// handleMapSVG renders view A. Modes: markers (default), heat (density of
// window [from,to)), shift (flow map between t1 and t2).
func (s *Server) handleMapSVG(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode := qStr(r, "mode", "markers")
	mv := &viz.MapView{
		Box:    s.an.Store().Catalog().Bounds().Buffer(0.002),
		W:      int(qInt64(r, "w", 720)),
		H:      int(qInt64(r, "h", 560)),
		Meters: s.an.Store().Catalog().All(),
	}
	switch mode {
	case "markers":
		mv.Title = "VAP view A: customers"
	case "heat":
		from := qInt64(r, "from", 0)
		to := qInt64(r, "to", 0)
		if from == 0 || to == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: heat mode requires from and to"))
			return
		}
		field, err := s.an.DemandDensity(r.Context(), sel, from, to, kde.Config{})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mv.Heat = field
		mv.Meters = nil
		mv.Title = "VAP view A: demand density"
	case "shift":
		g, err := query.ParseGranularity(qStr(r, "granularity", "4hourly"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.an.ShiftPatternsCtx(r.Context(), core.ShiftConfig{
			Selection:         sel,
			T1:                qInt64(r, "t1", 0),
			T2:                qInt64(r, "t2", 0),
			Granularity:       g,
			IntensityQuantile: qFloat(r, "quantile", 0),
			OD:                core.ODMode(qStr(r, "od", "matching")),
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mv.Heat = res.Shift
		mv.HeatDiv = true
		mv.Flows = res.Flows
		mv.Meters = nil
		mv.Title = "VAP view A: demand shift flow map"
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: unknown map mode %q", mode))
		return
	}
	writeSVG(w, mv.Render())
}

// handleSeriesSVG renders view B for one meter or a brushed group.
func (s *Server) handleSeriesSVG(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g, err := query.ParseGranularity(qStr(r, "granularity", "daily"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	buckets, err := s.an.Engine().AggregateSelection(sel, g, query.AggMean)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	tsv := &viz.TimeSeriesView{
		W: int(qInt64(r, "w", 720)), H: int(qInt64(r, "h", 260)),
		Title:  "VAP view B: aggregated consumption pattern",
		YLabel: "kWh",
		Series: []viz.LabeledSeries{{Name: "selection mean", Buckets: buckets}},
	}
	writeSVG(w, tsv.Render())
}

// handleScatterSVG renders view C with an optional brush overlay.
func (s *Server) handleScatterSVG(w http.ResponseWriter, r *http.Request) {
	v, err := s.reduceView(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sv := &viz.ScatterView{
		W: int(qInt64(r, "w", 420)), H: int(qInt64(r, "h", 420)),
		Points: v.Points,
		Title:  fmt.Sprintf("VAP view C: %s / %s", v.Method, v.Metric),
	}
	if r.URL.Query().Get("bx0") != "" {
		b := [4]float64{
			qFloat(r, "bx0", 0), qFloat(r, "by0", 0),
			qFloat(r, "bx1", 1), qFloat(r, "by1", 1),
		}
		sv.Brush = &b
	}
	writeSVG(w, sv.Render())
}

// handleIndex serves the single-page UI shell that stitches the three
// views together (the stand-in for the Leaflet/d3 front end).
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>VAP — Visual Analysis of Energy Consumption</title>
<style>
 body { font-family: sans-serif; margin: 16px; background: #fafafa; color: #222; }
 h1 { font-size: 20px; }
 .row { display: flex; gap: 16px; flex-wrap: wrap; }
 .panel { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 8px; }
 .panel h2 { font-size: 14px; margin: 4px 0 8px; color: #444; }
 img { display: block; }
 code { background: #eee; padding: 1px 4px; border-radius: 3px; }
 #summary { font-size: 12px; color: #555; white-space: pre; }
</style>
</head>
<body>
<h1>VAP — Visual Analysis of Energy Consumption Spatio-temporal Patterns</h1>
<p>Views regenerate server-side as SVG. Query parameters follow the REST API
(<code>/api/reduce</code>, <code>/api/patterns</code>, <code>/api/flow</code>,
<code>/api/stream</code>).</p>
<div class="row">
  <div class="panel">
    <h2>View A — map (markers / heat / shift)</h2>
    <img src="/view/map.svg?mode=markers" width="720" height="560" alt="map view">
  </div>
  <div class="panel">
    <h2>View C — pattern navigator (t-SNE, Pearson)</h2>
    <img src="/view/scatter.svg?method=tsne&metric=pearson" width="420" height="420" alt="scatter view">
  </div>
</div>
<div class="row">
  <div class="panel">
    <h2>View B — aggregated consumption pattern</h2>
    <img src="/view/series.svg?granularity=daily" width="720" height="260" alt="series view">
  </div>
  <div class="panel">
    <h2>Live density (SSE)</h2>
    <div id="summary">waiting for /api/stream …</div>
  </div>
</div>
<script>
 const el = document.getElementById('summary');
 try {
   const es = new EventSource('/api/stream');
   es.addEventListener('density', ev => {
     const d = JSON.parse(ev.data);
     el.textContent = 'seq ' + d.seq + '  readings ' + d.count +
       '\nmax density ' + d.summary.max_density.toFixed(4) +
       '\nhot cell ' + d.summary.hot_cell.lon.toFixed(4) + ', ' +
       d.summary.hot_cell.lat.toFixed(4);
   });
   es.onerror = () => { el.textContent = 'stream unavailable'; };
 } catch (e) { el.textContent = 'stream unavailable'; }
</script>
</body>
</html>
`
