package api

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/store"
	"vap/internal/stream"
)

// newTestServer builds a small dataset and an httptest server around it.
func newTestServer(t *testing.T, hub *stream.Hub) (*httptest.Server, *gen.Dataset) {
	t.Helper()
	ds := gen.Generate(gen.Config{
		Seed: 3,
		Days: 20,
		Counts: map[gen.Pattern]int{
			gen.PatternBimodal:      8,
			gen.PatternEnergySaving: 8,
			gen.PatternConstantHigh: 8,
			gen.PatternEarlyBird:    8,
		},
	})
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(core.NewAnalyzer(st), hub).Routes())
	t.Cleanup(srv.Close)
	return srv, ds
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	var got map[string]string
	if code := getJSON(t, srv.URL+"/api/health", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if got["status"] != "ok" {
		t.Errorf("health = %v", got)
	}
}

func TestStats(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	var got map[string]interface{}
	if code := getJSON(t, srv.URL+"/api/stats", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if int(got["meters"].(float64)) != len(ds.Customers) {
		t.Errorf("meters = %v, want %d", got["meters"], len(ds.Customers))
	}
	if got["compression"].(float64) <= 1 {
		t.Errorf("compression = %v, want > 1", got["compression"])
	}
}

// TestSeriesStats checks the planner-statistics endpoint: per-series
// sample/block counts and bounds for an explicit meter selection, without
// decoding any data.
func TestSeriesStats(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	id := ds.Customers[0].Meter.ID
	var got struct {
		Count  int                 `json:"count"`
		Series []store.SeriesStats `json:"series"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/stats/series?ids=%d", srv.URL, id), &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if got.Count != 1 || len(got.Series) != 1 {
		t.Fatalf("count = %d, series = %d, want 1", got.Count, len(got.Series))
	}
	st := got.Series[0]
	if st.MeterID != id {
		t.Errorf("meter_id = %d, want %d", st.MeterID, id)
	}
	if st.Samples != 20*24 { // Days * hourly samples
		t.Errorf("samples = %d, want %d", st.Samples, 20*24)
	}
	if st.Blocks == 0 || st.CompressedBytes == 0 {
		t.Errorf("blocks = %d, compressed = %d, want > 0", st.Blocks, st.CompressedBytes)
	}
	if st.MinTS >= st.MaxTS {
		t.Errorf("bounds [%d, %d] not ascending", st.MinTS, st.MaxTS)
	}

	// Unfiltered: one entry per registered meter.
	if code := getJSON(t, srv.URL+"/api/stats/series", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if got.Count != len(ds.Customers) {
		t.Errorf("count = %d, want %d", got.Count, len(ds.Customers))
	}

	// Malformed selection is a 400, not a silent full scan.
	if code := getJSON(t, srv.URL+"/api/stats/series?bbox=1,2,3", nil); code != 400 {
		t.Errorf("bad bbox status = %d, want 400", code)
	}
}

func postJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestAdminSnapshot exercises the on-demand durability trigger: POST runs a
// snapshot, covered WAL segments are retired, /api/stats reports the WAL
// footprint and snapshot age, and a snapshot event reaches SSE subscribers.
func TestAdminSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ds := gen.Generate(gen.Config{Seed: 5, Days: 3, Counts: map[gen.Pattern]int{gen.PatternBimodal: 4}})
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	hub := stream.NewHub()
	srv := httptest.NewServer(NewServer(core.NewAnalyzer(st), hub).Routes())
	t.Cleanup(srv.Close)
	events, unsub := hub.Subscribe()
	t.Cleanup(unsub)

	if code := getJSON(t, srv.URL+"/api/admin/snapshot", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET snapshot status = %d, want 405", code)
	}
	var snap struct {
		Status           string `json:"status"`
		WALSegments      int    `json:"wal_segments"`
		LastSnapshotUnix int64  `json:"last_snapshot_unix"`
	}
	if code := postJSON(t, srv.URL+"/api/admin/snapshot", &snap); code != 200 {
		t.Fatalf("POST snapshot status = %d", code)
	}
	if snap.Status != "ok" || snap.WALSegments != 1 || snap.LastSnapshotUnix == 0 {
		t.Errorf("snapshot response = %+v, want ok / 1 bare segment / timestamp", snap)
	}
	select {
	case e := <-events:
		if e.Kind != stream.KindSnapshot {
			t.Errorf("event kind = %q, want %q", e.Kind, stream.KindSnapshot)
		}
		if e.WALSegments != 1 {
			t.Errorf("event wal_segments = %d, want 1", e.WALSegments)
		}
	case <-time.After(2 * time.Second):
		t.Error("no snapshot event reached the hub")
	}

	var stats struct {
		WALSegments    int   `json:"wal_segments"`
		WALBytes       int64 `json:"wal_bytes"`
		LastSnapUnix   int64 `json:"last_snapshot_unix"`
		LastSnapAgeSec int64 `json:"last_snapshot_age_sec"`
	}
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("stats status = %d", code)
	}
	if stats.WALSegments != 1 || stats.WALBytes <= 0 {
		t.Errorf("stats wal = %d segments / %d bytes, want 1 bare segment", stats.WALSegments, stats.WALBytes)
	}
	if stats.LastSnapUnix == 0 || stats.LastSnapAgeSec < 0 {
		t.Errorf("stats snapshot age = unix %d / age %d", stats.LastSnapUnix, stats.LastSnapAgeSec)
	}
}

// TestAdminSnapshotInMemory: a store without a durability directory cannot
// snapshot; the trigger reports the conflict instead of a generic 500.
func TestAdminSnapshotInMemory(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	if code := postJSON(t, srv.URL+"/api/admin/snapshot", nil); code != http.StatusConflict {
		t.Errorf("in-memory snapshot status = %d, want 409", code)
	}
	// And stats still render, with a zero WAL footprint and no snapshot.
	var stats struct {
		WALSegments    int   `json:"wal_segments"`
		LastSnapAgeSec int64 `json:"last_snapshot_age_sec"`
	}
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("stats status = %d", code)
	}
	if stats.WALSegments != 0 || stats.LastSnapAgeSec != -1 {
		t.Errorf("in-memory stats: wal_segments=%d age=%d, want 0 / -1", stats.WALSegments, stats.LastSnapAgeSec)
	}
}

func TestCustomersFilters(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	var all struct {
		Count     int           `json:"count"`
		Customers []store.Meter `json:"customers"`
	}
	if code := getJSON(t, srv.URL+"/api/customers", &all); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if all.Count != len(ds.Customers) {
		t.Errorf("count = %d, want %d", all.Count, len(ds.Customers))
	}
	// Zone filter.
	var com struct {
		Count     int           `json:"count"`
		Customers []store.Meter `json:"customers"`
	}
	getJSON(t, srv.URL+"/api/customers?zone=commercial", &com)
	if com.Count == 0 || com.Count >= all.Count {
		t.Errorf("commercial count = %d of %d", com.Count, all.Count)
	}
	for _, m := range com.Customers {
		if m.Zone != store.ZoneCommercial {
			t.Errorf("zone filter leaked %s", m.Zone)
		}
	}
	// ID filter.
	var two struct {
		Count int `json:"count"`
	}
	getJSON(t, srv.URL+"/api/customers?ids=1,2", &two)
	if two.Count != 2 {
		t.Errorf("ids filter count = %d", two.Count)
	}
	// Malformed bbox.
	if code := getJSON(t, srv.URL+"/api/customers?bbox=1,2,3", nil); code != 400 {
		t.Errorf("bad bbox status = %d", code)
	}
	// Empty bbox result.
	if code := getJSON(t, srv.URL+"/api/customers?bbox=0,0,1,1", nil); code != 404 {
		t.Errorf("empty bbox status = %d", code)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	var got struct {
		Buckets []struct {
			Start int64   `json:"start"`
			Value float64 `json:"value"`
		} `json:"buckets"`
	}
	if code := getJSON(t, srv.URL+"/api/series?id=1&granularity=daily", &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(got.Buckets) != 20 {
		t.Errorf("buckets = %d, want 20 days", len(got.Buckets))
	}
	if code := getJSON(t, srv.URL+"/api/series", nil); code != 400 {
		t.Errorf("missing id status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/series?id=1&granularity=decade", nil); code != 400 {
		t.Errorf("bad granularity status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/series?id=9999", nil); code != 400 {
		t.Errorf("unknown meter status = %d", code)
	}
}

func TestReduceAndPatterns(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	var view struct {
		MeterIDs []int64      `json:"meter_ids"`
		Points   [][2]float64 `json:"points"`
	}
	if code := getJSON(t, srv.URL+"/api/reduce?method=mds", &view); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(view.Points) != len(ds.Customers) || len(view.MeterIDs) != len(view.Points) {
		t.Fatalf("view shape: %d points, %d ids", len(view.Points), len(view.MeterIDs))
	}
	// Full-view brush returns everything.
	var pat struct {
		Selected int `json:"selected"`
		Profile  struct {
			Label string    `json:"label"`
			Mean  []float64 `json:"mean"`
		} `json:"profile"`
	}
	if code := getJSON(t, srv.URL+"/api/patterns?method=mds&bx0=0&by0=0&bx1=1&by1=1", &pat); code != 200 {
		t.Fatalf("patterns status = %d", code)
	}
	if pat.Selected != len(ds.Customers) {
		t.Errorf("selected = %d", pat.Selected)
	}
	if len(pat.Profile.Mean) == 0 {
		t.Error("empty profile mean")
	}
	// Out-of-range brush.
	if code := getJSON(t, srv.URL+"/api/patterns?method=mds&bx0=2&by0=2&bx1=3&by1=3", nil); code != 404 {
		t.Errorf("empty brush status = %d", code)
	}
	// Unknown method.
	if code := getJSON(t, srv.URL+"/api/reduce?method=umap", nil); code != 400 {
		t.Errorf("unknown method status = %d", code)
	}
}

func TestReduceCaching(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	t0 := time.Now()
	if code := getJSON(t, srv.URL+"/api/reduce?method=mds", nil); code != 200 {
		t.Fatal("first reduce failed")
	}
	cold := time.Since(t0)
	t0 = time.Now()
	getJSON(t, srv.URL+"/api/reduce?method=mds", nil)
	warm := time.Since(t0)
	if warm > cold {
		t.Logf("warm %v vs cold %v (cache may still help under noise)", warm, cold)
	}
}

func TestFlowEndpoint(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	noon := ds.Start.Unix() + 5*86400 + 12*3600
	var got struct {
		Flows   []json.RawMessage `json:"flows"`
		Summary struct {
			L1 float64 `json:"l1"`
		} `json:"summary"`
		Meters int `json:"meters"`
	}
	url := fmt.Sprintf("%s/api/flow?t1=%d&t2=%d&granularity=4hourly", srv.URL, noon, noon+8*3600)
	if code := getJSON(t, url, &got); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if got.Meters != len(ds.Customers) {
		t.Errorf("meters = %d", got.Meters)
	}
	if got.Summary.L1 <= 0 {
		t.Errorf("summary L1 = %v", got.Summary.L1)
	}
	// Missing anchors.
	if code := getJSON(t, srv.URL+"/api/flow?granularity=hourly", nil); code != 400 {
		t.Errorf("missing t1/t2 status = %d", code)
	}
}

func TestSVGViews(t *testing.T) {
	srv, ds := newTestServer(t, nil)
	noon := ds.Start.Unix() + 5*86400 + 12*3600
	paths := []string{
		"/view/map.svg?mode=markers",
		fmt.Sprintf("/view/map.svg?mode=heat&from=%d&to=%d", noon, noon+4*3600),
		fmt.Sprintf("/view/map.svg?mode=shift&t1=%d&t2=%d&granularity=4hourly", noon, noon+8*3600),
		"/view/scatter.svg?method=mds",
		"/view/scatter.svg?method=mds&bx0=0.2&by0=0.2&bx1=0.8&by1=0.8",
		"/view/series.svg?granularity=daily",
	}
	for _, p := range paths {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s status = %d: %s", p, resp.StatusCode, body[:min(len(body), 120)])
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Errorf("%s content type = %q", p, ct)
		}
		if !strings.HasPrefix(string(body), "<svg") {
			t.Errorf("%s does not look like SVG", p)
		}
	}
	// Bad mode.
	resp, _ := http.Get(srv.URL + "/view/map.svg?mode=3d")
	if resp.StatusCode != 400 {
		t.Errorf("bad mode status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestIndexPage(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "VAP") {
		t.Errorf("index page broken: %d", resp.StatusCode)
	}
	// Unknown path 404s.
	resp, _ = http.Get(srv.URL + "/nope")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

func TestStreamEndpointDisabled(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	resp, err := http.Get(srv.URL + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("stream without hub status = %d", resp.StatusCode)
	}
}

func TestStreamEndpointSSE(t *testing.T) {
	hub := stream.NewHub()
	srv, _ := newTestServer(t, hub)
	var wg sync.WaitGroup
	wg.Add(1)
	lines := make(chan string, 16)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/api/stream")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				lines <- line
				return
			}
		}
	}()
	// Give the subscriber a moment to register, then publish.
	deadline := time.After(3 * time.Second)
	published := false
	for {
		select {
		case line := <-lines:
			if !strings.Contains(line, `"seq":7`) {
				t.Errorf("sse line = %q", line)
			}
			wg.Wait()
			return
		case <-deadline:
			t.Fatal("no SSE event received")
		default:
			if !published || hub.Subscribers() > 0 {
				hub.Publish(stream.Event{Seq: 7, Count: 1})
				published = true
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestDataVersionShape asserts the two-level {global, fingerprint} version
// stamp on /api/stats and /api/exec, and that an ingest moves both.
func TestDataVersionShape(t *testing.T) {
	ds := gen.Generate(gen.Config{
		Seed:   3,
		Days:   10,
		Counts: map[gen.Pattern]int{gen.PatternBimodal: 4},
	})
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(core.NewAnalyzer(st), nil).Routes())
	t.Cleanup(srv.Close)

	type versioned struct {
		Shards      int                `json:"shards"`
		DataVersion stream.DataVersion `json:"data_version"`
	}
	var stats, execStats versioned
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != 200 {
		t.Fatalf("stats status = %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/exec", &execStats); code != 200 {
		t.Fatalf("exec status = %d", code)
	}
	if stats.Shards <= 0 {
		t.Errorf("stats shards = %d, want > 0", stats.Shards)
	}
	if stats.DataVersion.Global == 0 || stats.DataVersion.Fingerprint == 0 {
		t.Errorf("stats data_version = %+v, want nonzero fields", stats.DataVersion)
	}
	if execStats.DataVersion != stats.DataVersion {
		t.Errorf("exec and stats disagree: %+v vs %+v", execStats.DataVersion, stats.DataVersion)
	}

	id := ds.Customers[0].Meter.ID
	_, last, _ := st.Bounds(id)
	if err := st.Append(id, store.Sample{TS: last + 3600, Value: 1}); err != nil {
		t.Fatal(err)
	}
	var after versioned
	getJSON(t, srv.URL+"/api/stats", &after)
	if after.DataVersion.Global <= stats.DataVersion.Global {
		t.Errorf("global did not advance: %d -> %d", stats.DataVersion.Global, after.DataVersion.Global)
	}
	if after.DataVersion.Fingerprint == stats.DataVersion.Fingerprint {
		t.Error("all-meters fingerprint unchanged after append")
	}
}
