package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"vap/internal/vql"
)

// maxQueryBytes bounds a /api/query request body.
const maxQueryBytes = 1 << 20

// queryRequest is the JSON body of POST /api/query. A text/plain body is
// also accepted and treated as the raw statement.
type queryRequest struct {
	Query string `json:"query"`
}

// handleQuery executes one VQL statement: POST /api/query with
// {"query": "SELECT ..."} (or the raw statement as text/plain). Responses
// carry the rows, the EXPLAIN rendering of the executed plan, and the
// data-version stamps (store-wide plus the selection-scoped fingerprint
// the result was computed against). Parse and type errors return 400 with
// the 1-based line/column of the offending token.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("api: POST a VQL statement to this endpoint"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: reading body: %w", err))
		return
	}
	if len(body) > maxQueryBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("api: query exceeds %d bytes", maxQueryBytes))
		return
	}
	src := string(body)
	// Decode a JSON envelope when the Content-Type says so, or when the
	// body plainly is one (curl -d sends x-www-form-urlencoded by default,
	// and no VQL statement starts with '{').
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") || strings.HasPrefix(strings.TrimSpace(src), "{") {
		var req queryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON body: %w", err))
			return
		}
		src = req.Query
	}
	if strings.TrimSpace(src) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: empty query"))
		return
	}
	ctx, cancel := s.handlerCtx(r)
	defer cancel()
	out, err := s.an.VQL(ctx, src)
	if err != nil {
		if writeGovErr(w, err) {
			return // 422 cost rejection or 429 shed, typed
		}
		var ve *vql.Error
		switch {
		case errors.As(err, &ve):
			// Parse/type errors are the client's fault; everything else
			// (timeouts, store corruption) is the server's.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": ve.Error(),
				"line":  ve.Pos.Line,
				"col":   ve.Pos.Col,
			})
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeErr(w, http.StatusGatewayTimeout, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":               out.Columns,
		"rows":                  out.Rows,
		"row_count":             len(out.Rows),
		"window":                out.Window,
		"meters":                out.Meters,
		"samples":               out.Samples,
		"plan":                  out.Plan,
		"explain":               out.Explain,
		"plan_hash":             out.PlanHash,
		"selection_fingerprint": out.SelectionFingerprint,
		"data_version":          s.dataVersion(),
	})
}
