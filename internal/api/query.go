package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vap/internal/frontend"
)

// maxQueryBytes bounds a /api/query request body.
const maxQueryBytes = 1 << 20

// DeadlineHeader optionally tightens one request's statement deadline
// (a Go duration, e.g. "500ms") below the configured handler timeout —
// the HTTP spelling of the wire protocol's SET vap_deadline.
const DeadlineHeader = "X-VAP-Deadline"

// queryRequest is the JSON body of POST /api/query. A text/plain body is
// also accepted and treated as the raw statement.
type queryRequest struct {
	Query string `json:"query"`
}

// writeStmtErr renders one classified statement error. The taxonomy —
// which error kind maps to which status — lives in frontend.MapError,
// shared with the wire server's ERR-packet encoder; this function only
// shapes the JSON body.
func writeStmtErr(w http.ResponseWriter, err error) {
	info := frontend.MapError(err)
	body := map[string]any{"error": info.Msg}
	switch info.Kind {
	case frontend.KindParse:
		body["line"] = info.Line
		body["col"] = info.Col
	case frontend.KindCost:
		ce := info.Cost
		body["tenant"] = ce.Tenant
		body["est_samples"] = ce.Est
		body["cost_ceiling"] = ce.Ceiling
		body["est_mem_bytes"] = ce.EstMem
		body["mem_budget_bytes"] = ce.MemBudget
	case frontend.KindShed:
		se := info.Shed
		sec := int(info.RetryAfter / time.Second)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		body["tenant"] = se.Tenant
		body["class"] = string(se.Class)
		body["retry_after_sec"] = sec
	}
	writeJSON(w, info.HTTPStatus, body)
}

// handleQuery is the HTTP codec over the frontend query core: it decodes
// the statement from the request (JSON envelope or raw text), builds a
// per-request session from the tenant and deadline headers, and encodes
// the typed Result as JSON. The statement lifecycle — parse, plan,
// governance admission, execution, error taxonomy — lives in
// frontend.Core, shared verbatim with the MySQL wire server.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("api: POST a VQL statement to this endpoint"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: reading body: %w", err))
		return
	}
	if len(body) > maxQueryBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("api: query exceeds %d bytes", maxQueryBytes))
		return
	}
	src := string(body)
	// Decode a JSON envelope when the Content-Type says so, or when the
	// body plainly is one (curl -d sends x-www-form-urlencoded by default,
	// and no VQL statement starts with '{').
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") || strings.HasPrefix(strings.TrimSpace(src), "{") {
		var req queryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: bad JSON body: %w", err))
			return
		}
		src = req.Query
	}
	sess := frontend.NewSession(r.Header.Get(TenantHeader))
	if d := r.Header.Get(DeadlineHeader); d != "" {
		if err := sess.Set("deadline", d); err != nil {
			writeStmtErr(w, err)
			return
		}
	}
	out, err := s.fc.ExecuteTimeout(r.Context(), sess, src, s.cfg.HandlerTimeout)
	if err != nil {
		writeStmtErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":               out.Columns,
		"column_types":          out.Types,
		"rows":                  out.Rows,
		"row_count":             len(out.Rows),
		"window":                out.Window,
		"meters":                out.Meters,
		"samples":               out.Samples,
		"plan":                  out.Plan,
		"explain":               out.Explain,
		"plan_hash":             out.PlanHash,
		"selection_fingerprint": out.SelectionFingerprint,
		"data_version":          s.dataVersion(),
	})
}
