package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vap/internal/core"
	"vap/internal/geo"
	"vap/internal/store"
)

// vqlBase is 2017-06-01 00:00:00 UTC.
const vqlBase int64 = 1496275200

// newVQLTestServer builds a deterministic four-meter store (constant
// per-meter values over 48 hourly samples) so query results are exactly
// predictable, and returns the test server plus the analyzer and store
// for cache and mutation assertions.
func newVQLTestServer(t testing.TB) (*httptest.Server, *core.Analyzer, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	meters := []store.Meter{
		{ID: 1, Location: geo.Point{Lon: 10.10, Lat: 55.60}, Zone: store.ZoneResidential},
		{ID: 2, Location: geo.Point{Lon: 10.12, Lat: 55.62}, Zone: store.ZoneResidential},
		{ID: 3, Location: geo.Point{Lon: 10.30, Lat: 55.70}, Zone: store.ZoneCommercial},
		{ID: 4, Location: geo.Point{Lon: 10.50, Lat: 55.80}, Zone: store.ZoneIndustrial},
	}
	for _, m := range meters {
		if err := st.PutMeter(m); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 48; h++ {
			if err := st.Append(m.ID, store.Sample{TS: vqlBase + int64(h)*3600, Value: float64(m.ID)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	an := core.NewAnalyzer(st)
	srv := httptest.NewServer(NewServer(an, nil).Routes())
	t.Cleanup(srv.Close)
	return srv, an, st
}

// postQuery POSTs one VQL statement and decodes the JSON response.
func postQuery(t testing.TB, url, query string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": query})
	resp, err := http.Post(url+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func TestQueryEndpointGolden(t *testing.T) {
	srv, _, _ := newVQLTestServer(t)
	cases := []struct {
		name   string
		query  string
		status int
		// wantCols and wantRows assert successful responses exactly
		// (JSON numbers decode as float64).
		wantCols []string
		wantRows [][]any
		// wantErr/wantLine/wantCol assert error responses.
		wantErr  string
		wantLine float64
		wantCol  float64
		// wantPlan asserts substrings of the plan/EXPLAIN output.
		wantPlan []string
	}{
		{
			name:     "global aggregate",
			query:    "SELECT sum(value), count(*) FROM meters",
			status:   http.StatusOK,
			wantCols: []string{"sum(value)", "count(*)"},
			wantRows: [][]any{{480.0, 192.0}},
		},
		{
			name:     "bucketed occupancy with window",
			query:    "SELECT bucket(daily) AS day, mean(value) AS avg_kwh FROM meters WHERE meter IN (1, 2) AND time >= '2017-06-01' AND time < '2017-06-03' GROUP BY bucket(daily)",
			status:   http.StatusOK,
			wantCols: []string{"day", "avg_kwh"},
			wantRows: [][]any{{float64(vqlBase), 1.5}, {float64(vqlBase + 86400), 1.5}},
		},
		{
			name:     "group by meter order by total desc limit",
			query:    "SELECT meter, sum(value) AS total FROM meters GROUP BY meter ORDER BY total DESC LIMIT 2",
			status:   http.StatusOK,
			wantCols: []string{"meter", "total"},
			wantRows: [][]any{{4.0, 192.0}, {3.0, 144.0}},
		},
		{
			name:     "group by zone",
			query:    "SELECT zone, sum(value) FROM meters GROUP BY zone ORDER BY sum(value) DESC, zone",
			status:   http.StatusOK,
			wantCols: []string{"zone", "sum(value)"},
			wantRows: [][]any{{"industrial", 192.0}, {"commercial", 144.0}, {"residential", 144.0}},
		},
		{
			name:     "bbox pushdown",
			query:    "SELECT count(*) FROM meters WHERE bbox(10.0, 55.5, 10.2, 55.65)",
			status:   http.StatusOK,
			wantCols: []string{"count(*)"},
			wantRows: [][]any{{96.0}},
			wantPlan: []string{"pushdown bbox(10, 55.5, 10.2, 55.65) -> catalog spatial index"},
		},
		{
			name:   "explain",
			query:  "EXPLAIN SELECT bucket(daily), mean(value) FROM meters WHERE zone = 'residential' GROUP BY bucket(daily) ORDER BY 2 DESC LIMIT 5",
			status: http.StatusOK,
			wantPlan: []string{
				"Limit: 5",
				"Sort: mean(value) desc",
				"GroupAggregate: keys=[bucket(daily)] aggs=[mean(value)]",
				"pushdown zone = 'residential' -> catalog filter",
				"meters resolved: 2",
			},
		},
		{
			name:     "parse error carries position",
			query:    "SELECT sum(price) FROM meters",
			status:   http.StatusBadRequest,
			wantErr:  "wants the column 'value'",
			wantLine: 1, wantCol: 12,
		},
		{
			name:     "type error carries position",
			query:    "SELECT meter, sum(value) FROM meters",
			status:   http.StatusBadRequest,
			wantErr:  "not grouped on",
			wantLine: 1, wantCol: 8,
		},
		{
			name:     "multiline error position",
			query:    "SELECT sum(value)\nFROM meters\nWHERE speed = 1",
			status:   http.StatusBadRequest,
			wantErr:  "unknown predicate",
			wantLine: 3, wantCol: 7,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, out := postQuery(t, srv.URL, tc.query)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (response %v)", status, tc.status, out)
			}
			if tc.wantErr != "" {
				msg, _ := out["error"].(string)
				if !strings.Contains(msg, tc.wantErr) {
					t.Errorf("error = %q, want substring %q", msg, tc.wantErr)
				}
				if out["line"] != tc.wantLine || out["col"] != tc.wantCol {
					t.Errorf("position = %v:%v, want %v:%v", out["line"], out["col"], tc.wantLine, tc.wantCol)
				}
				return
			}
			if tc.wantCols != nil {
				gotCols := toStrings(out["columns"])
				if fmt.Sprint(gotCols) != fmt.Sprint(tc.wantCols) {
					t.Errorf("columns = %v, want %v", gotCols, tc.wantCols)
				}
			}
			if tc.wantRows != nil {
				if got, want := fmt.Sprint(out["rows"]), fmt.Sprint(anyRows(tc.wantRows)); got != want {
					t.Errorf("rows = %s, want %s", got, want)
				}
			}
			for _, sub := range tc.wantPlan {
				plan, _ := out["plan"].(string)
				if !strings.Contains(plan, sub) {
					t.Errorf("plan missing %q:\n%s", sub, plan)
				}
			}
			if _, ok := out["data_version"].(map[string]any); !ok {
				t.Errorf("response missing data_version: %v", out)
			}
		})
	}
}

func toStrings(v any) []string {
	arr, _ := v.([]any)
	out := make([]string, len(arr))
	for i, x := range arr {
		out[i], _ = x.(string)
	}
	return out
}

func anyRows(rows [][]any) []any {
	out := make([]any, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

func TestQueryEndpointBadRequests(t *testing.T) {
	srv, _, _ := newVQLTestServer(t)
	// GET is rejected.
	resp, err := http.Get(srv.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
	// Empty body.
	if status, _ := postQuery(t, srv.URL, ""); status != http.StatusBadRequest {
		t.Fatalf("empty query status = %d, want 400", status)
	}
	// Raw text/plain body is accepted.
	resp, err = http.Post(srv.URL+"/api/query", "text/plain",
		strings.NewReader("SELECT count(*) FROM meters"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text/plain status = %d, want 200", resp.StatusCode)
	}
	// A JSON body without an explicit JSON Content-Type (curl -d default)
	// is sniffed by its leading '{'.
	resp, err = http.Post(srv.URL+"/api/query", "application/x-www-form-urlencoded",
		strings.NewReader(`{"query": "SELECT count(*) FROM meters"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sniffed JSON status = %d, want 200", resp.StatusCode)
	}
	// Malformed JSON body.
	resp, err = http.Post(srv.URL+"/api/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}
}

// TestParseSelectionStrict verifies the URL-parameter selection no longer
// silently ignores malformed from/to/bbox values: each malformed input is
// a 400 with a descriptive error, and date strings now work because the
// validation is shared with the VQL time-literal parser.
func TestParseSelectionStrict(t *testing.T) {
	srv, _, _ := newVQLTestServer(t)
	get := func(params string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/api/customers?" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	bad := []struct {
		params  string
		wantSub string
	}{
		{"from=yesterday", "bad from parameter"},
		{"to=12:00", "bad to parameter"},
		{"to=1970-01-01", "epoch 0 is not representable"},
		{"from=0", "epoch 0 is not representable"},
		{"from=100&to=50", "empty time window"},
		{"bbox=1,2,3", "bbox wants 4"},
		{"bbox=a,2,3,4", "bad bbox component"},
		{"bbox=NaN,2,3,4", "finite"},
		{"bbox=200,0,201,1", "out of range"},
		{"bbox=3,2,1,2", "minLon <= maxLon"},
	}
	for _, tc := range bad {
		status, out := get(tc.params)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.params, status, out)
			continue
		}
		if msg, _ := out["error"].(string); !strings.Contains(msg, tc.wantSub) {
			t.Errorf("%s: error %q, want substring %q", tc.params, msg, tc.wantSub)
		}
	}
	// Well-formed values still work, including date strings.
	if status, _ := get("from=2017-06-01&to=2017-06-02"); status != http.StatusOK {
		t.Errorf("date-string window: status = %d, want 200", status)
	}
	if status, _ := get("from=1496275200"); status != http.StatusOK {
		t.Errorf("unix from: status = %d, want 200", status)
	}
}

// TestQueryMemoization proves the acceptance-criteria cache behavior over
// HTTP: two identical VQL queries hit the memoized result, an append to a
// meter inside the selection invalidates it, and an append to a meter
// outside the selection does not.
func TestQueryMemoization(t *testing.T) {
	srv, an, st := newVQLTestServer(t)
	const q = "SELECT meter, sum(value) FROM meters WHERE meter IN (1, 2) AND time >= 1496275200 AND time < 1496448000 GROUP BY meter"

	status, first := postQuery(t, srv.URL, q)
	if status != http.StatusOK {
		t.Fatalf("first query status = %d: %v", status, first)
	}
	s0 := an.ExecStats()
	status, second := postQuery(t, srv.URL, q)
	if status != http.StatusOK {
		t.Fatal("second query failed")
	}
	s1 := an.ExecStats()
	if s1.Hits != s0.Hits+1 || s1.Computes != s0.Computes {
		t.Fatalf("identical query did not hit cache: hits %d->%d computes %d->%d", s0.Hits, s1.Hits, s0.Computes, s1.Computes)
	}
	if fmt.Sprint(first["rows"]) != fmt.Sprint(second["rows"]) {
		t.Fatal("cached result differs from first result")
	}
	if first["selection_fingerprint"] != second["selection_fingerprint"] {
		t.Fatal("selection fingerprint moved without a mutation")
	}

	// A logically identical but textually different query shares the entry.
	status, _ = postQuery(t, srv.URL, "select meter, SUM(value) from meters where meter in (2,1) and time >= 1496275200 and time < 1496448000 group by METER;")
	if status != http.StatusOK {
		t.Fatal("canonicalized query failed")
	}
	s2 := an.ExecStats()
	if s2.Hits != s1.Hits+1 || s2.Computes != s1.Computes {
		t.Fatalf("canonically identical query missed the cache: hits %d->%d computes %d->%d", s1.Hits, s2.Hits, s1.Computes, s2.Computes)
	}

	// Append to a meter outside the selection: still a hit.
	if err := st.Append(3, store.Sample{TS: vqlBase + 48*3600, Value: 9}); err != nil {
		t.Fatal(err)
	}
	status, _ = postQuery(t, srv.URL, q)
	if status != http.StatusOK {
		t.Fatal("query after unrelated append failed")
	}
	s3 := an.ExecStats()
	if s3.Computes != s2.Computes {
		t.Fatalf("append outside the selection forced a recompute (computes %d->%d)", s2.Computes, s3.Computes)
	}

	// Append to a selected meter: fingerprint moves, result recomputes.
	if err := st.Append(1, store.Sample{TS: vqlBase + 48*3600, Value: 100}); err != nil {
		t.Fatal(err)
	}
	status, third := postQuery(t, srv.URL, q)
	if status != http.StatusOK {
		t.Fatal("query after selected append failed")
	}
	s4 := an.ExecStats()
	if s4.Computes != s3.Computes+1 {
		t.Fatalf("append inside the selection did not invalidate (computes %d->%d)", s3.Computes, s4.Computes)
	}
	if third["selection_fingerprint"] == first["selection_fingerprint"] {
		t.Fatal("selection fingerprint unchanged after appending to a selected meter")
	}
	// The appended sample lands outside the explicit window, so the rows
	// themselves are unchanged — only the version moved.
	if fmt.Sprint(third["rows"]) != fmt.Sprint(first["rows"]) {
		t.Fatalf("rows changed for out-of-window append: %v vs %v", third["rows"], first["rows"])
	}
}

// TestQueryConcurrentWithAppends runs VQL queries concurrently with
// streaming appends (run under -race in CI) and asserts cache-version
// consistency: any two responses carrying the same selection fingerprint
// must carry identical rows.
func TestQueryConcurrentWithAppends(t *testing.T) {
	srv, _, st := newVQLTestServer(t)
	const q = "SELECT meter, sum(value), count(*) FROM meters WHERE meter IN (1, 2, 3) GROUP BY meter"

	stop := make(chan struct{})
	var appender sync.WaitGroup
	// Streaming appender: meters 1 and 3 receive new samples until the
	// queriers are done.
	appender.Add(1)
	go func() {
		defer appender.Done()
		ts := vqlBase + 48*3600
		// Capped so an unthrottled writer cannot grow the scans unboundedly
		// while the queriers run.
		for i := 0; i < 20000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := int64(1)
			if i%2 == 1 {
				id = 3
			}
			if err := st.Append(id, store.Sample{TS: ts, Value: 1}); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			ts += 60
		}
	}()

	var queriers sync.WaitGroup
	byFingerprint := sync.Map{} // fingerprint -> rows (rendered)
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < 25; i++ {
				status, out := postQuery(t, srv.URL, q)
				if status != http.StatusOK {
					t.Errorf("query status = %d: %v", status, out)
					return
				}
				fp := fmt.Sprint(out["selection_fingerprint"])
				rows := fmt.Sprint(out["rows"])
				if prev, loaded := byFingerprint.LoadOrStore(fp, rows); loaded && prev != rows {
					t.Errorf("two responses with fingerprint %s disagree:\n%s\nvs\n%s", fp, prev, rows)
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	appender.Wait()
}
