// Package api is VAP's presentation-facing logic layer: "RESTful APIs are
// implemented to exchange JSON-formatted data between client and server"
// (paper §2.2). It exposes the catalog, time series, dimension reduction,
// brushed pattern profiles, shift-pattern flow maps, server-rendered SVG
// views, and a Server-Sent-Events stream for the near-real-time demo.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vap/internal/core"
	"vap/internal/frontend"
	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
	"vap/internal/stream"
	"vap/internal/vql"
)

// Server wires the analyzer to HTTP handlers. All expensive results
// (embeddings, density maps) are memoized by the analyzer's execution
// engine, keyed by store data version plus canonical parameters, so
// brushing (which hits /api/patterns repeatedly) and repeated /view/
// renders of an unchanged dataset never recompute t-SNE or KDE, while any
// ingest invalidates stale entries precisely.
type Server struct {
	an  *core.Analyzer
	fc  *frontend.Core
	hub *stream.Hub
	cfg Config
}

// Config tunes the HTTP front door. The zero value selects the defaults.
type Config struct {
	// HandlerTimeout bounds one request's handler work — the single
	// configurable default that used to be hardcoded (twice) as 120s.
	// Governance query deadlines, when configured, supersede it
	// per-request with a tighter bound. <= 0 selects 120s.
	HandlerTimeout time.Duration
	// MaxIngestBytes caps one /api/ingest request body; beyond it the
	// request fails with 413 and the skip counts of the work already
	// applied. <= 0 selects 1 GiB.
	MaxIngestBytes int64
}

func (c *Config) defaults() {
	if c.HandlerTimeout <= 0 {
		c.HandlerTimeout = 120 * time.Second
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = 1 << 30
	}
}

// TenantHeader names the request's tenant for admission control;
// absent means govern.DefaultTenant.
const TenantHeader = "X-VAP-Tenant"

// NewServer returns a server over the analyzer with default Config. hub
// may be nil if the streaming endpoint is unused.
func NewServer(an *core.Analyzer, hub *stream.Hub) *Server {
	return NewServerWith(an, hub, Config{})
}

// NewServerWith returns a server with explicit front-door configuration.
func NewServerWith(an *core.Analyzer, hub *stream.Hub, cfg Config) *Server {
	cfg.defaults()
	return &Server{an: an, fc: frontend.NewCore(an), hub: hub, cfg: cfg}
}

// Core exposes the protocol-agnostic query core the HTTP codec runs on —
// the same instance a wire-protocol server over the same analyzer should
// share.
func (s *Server) Core() *frontend.Core { return s.fc }

// HandlerTimeout returns the effective per-request handler timeout after
// defaulting, so a co-hosted wire server can bound statements identically.
func (s *Server) HandlerTimeout() time.Duration { return s.cfg.HandlerTimeout }

// handlerCtx derives one request's working context: the tenant header
// stamped for admission control, bounded by the configured handler
// timeout.
func (s *Server) handlerCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := govern.WithTenant(r.Context(), r.Header.Get(TenantHeader))
	return context.WithTimeout(ctx, s.cfg.HandlerTimeout)
}

// writeGovErr maps the admission controller's typed rejections onto the
// HTTP taxonomy — the classification itself lives in frontend.MapError,
// shared with the wire server — and reports whether it handled err.
func writeGovErr(w http.ResponseWriter, err error) bool {
	switch frontend.MapError(err).Kind {
	case frontend.KindCost, frontend.KindShed:
		writeStmtErr(w, err)
		return true
	}
	return false
}

// Routes registers all endpoints on a new mux.
func (s *Server) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", s.handleHealth)
	mux.HandleFunc("/api/customers", s.handleCustomers)
	mux.HandleFunc("/api/series", s.handleSeries)
	mux.HandleFunc("/api/reduce", s.handleReduce)
	mux.HandleFunc("/api/patterns", s.handlePatterns)
	mux.HandleFunc("/api/flow", s.handleFlow)
	mux.HandleFunc("/api/ingest", s.handleIngest)
	mux.HandleFunc("/api/stats", s.handleStats)
	mux.HandleFunc("/api/stats/series", s.handleSeriesStats)
	mux.HandleFunc("/api/admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("/api/exec", s.handleExec)
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/stream", s.handleStream)
	mux.HandleFunc("/view/map.svg", s.handleMapSVG)
	mux.HandleFunc("/view/series.svg", s.handleSeriesSVG)
	mux.HandleFunc("/view/scatter.svg", s.handleScatterSVG)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// --- helpers ---------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func qFloat(r *http.Request, key string, def float64) float64 {
	if v := r.URL.Query().Get(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func qInt64(r *http.Request, key string, def int64) int64 {
	if v := r.URL.Query().Get(key); v != "" {
		if f, err := strconv.ParseInt(v, 10, 64); err == nil {
			return f
		}
	}
	return def
}

func qStr(r *http.Request, key, def string) string {
	if v := r.URL.Query().Get(key); v != "" {
		return v
	}
	return def
}

// parseSelection reads bbox=minLon,minLat,maxLon,maxLat, zone=..., ids=1,2,3
// and from/to (Unix seconds or a date/time string — the same literals the
// VQL time predicates accept). Malformed values are a 400, never a silent
// fall-back to the default selection.
func parseSelection(r *http.Request) (query.Selection, error) {
	var sel query.Selection
	if bbox := r.URL.Query().Get("bbox"); bbox != "" {
		parts := strings.Split(bbox, ",")
		if len(parts) != 4 {
			return sel, fmt.Errorf("api: bbox wants 4 comma-separated numbers")
		}
		var vals [4]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return sel, fmt.Errorf("api: bad bbox component %q", p)
			}
			vals[i] = f
		}
		// Shared with the VQL bbox predicate: finite, in lon/lat range,
		// min <= max (so a NaN or swapped-corner box cannot silently
		// select nothing).
		if err := vql.ValidBBox(vals[0], vals[1], vals[2], vals[3]); err != nil {
			return sel, fmt.Errorf("api: bad bbox: %w", err)
		}
		box := geo.NewBBox(
			geo.Point{Lon: vals[0], Lat: vals[1]},
			geo.Point{Lon: vals[2], Lat: vals[3]})
		sel.BBox = &box
	}
	if zone := r.URL.Query().Get("zone"); zone != "" {
		sel.Zone = store.ZoneType(zone)
	}
	if ids := r.URL.Query().Get("ids"); ids != "" {
		for _, p := range strings.Split(ids, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return sel, fmt.Errorf("api: bad meter id %q", p)
			}
			sel.MeterIDs = append(sel.MeterIDs, id)
		}
	}
	var err error
	if sel.From, err = qTime(r, "from"); err != nil {
		return sel, err
	}
	if sel.To, err = qTime(r, "to"); err != nil {
		return sel, err
	}
	if sel.From != 0 && sel.To != 0 && sel.To <= sel.From {
		return sel, fmt.Errorf("api: empty time window [%d, %d)", sel.From, sel.To)
	}
	return sel, nil
}

// qTime parses a time parameter through the shared VQL time-literal
// validator (Unix seconds or a date/time string). Absent means 0
// (unconstrained); malformed is an error. An explicit bound of exactly
// Unix epoch 0 is rejected rather than silently collapsing into the
// query.Selection 0-as-unset sentinel (and thereby dropping the
// constraint).
func qTime(r *http.Request, key string) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, nil
	}
	ts, err := vql.ParseTime(v)
	if err != nil {
		return 0, fmt.Errorf("api: bad %s parameter: %w", key, err)
	}
	if ts == 0 {
		return 0, fmt.Errorf("api: %s at Unix epoch 0 is not representable; use 1, a negative bound, or omit the parameter", key)
	}
	return ts, nil
}

// --- handlers ----------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "service": "vap"})
}

// dataVersion assembles the two-level version stamp handlers attach to
// responses: the store-wide mutation counter plus the O(shards) global
// fingerprint over the per-shard versions.
func (s *Server) dataVersion() stream.DataVersion {
	st := s.an.Store()
	return stream.DataVersion{Global: st.Version(), Fingerprint: st.GlobalFingerprint()}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.an.Store().Stats()
	rec := s.an.Store().Recovery()
	first, last, ok := s.an.Store().TimeBounds()
	var snapAge int64 = -1 // -1: no snapshot has completed in this process
	if st.LastSnapshotUnix > 0 {
		snapAge = time.Now().Unix() - st.LastSnapshotUnix
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"meters":           st.Meters,
		"samples":          st.Samples,
		"compressed_bytes": st.CompressedBytes,
		"raw_bytes":        st.RawBytes,
		"compression":      ratio(st.RawBytes, st.CompressedBytes),
		"shards":           st.Shards,
		"data_from":        first,
		"data_to":          last,
		"has_data":         ok,
		"data_version":     s.dataVersion(),
		// Durability: live WAL footprint (0/0 for in-memory stores) and
		// how stale the latest snapshot is.
		"wal_segments":          st.WALSegments,
		"wal_bytes":             st.WALBytes,
		"last_snapshot_unix":    st.LastSnapshotUnix,
		"last_snapshot_age_sec": snapAge,
		// Rollup tiers: per-resolution bucket counts and byte footprint
		// (empty when the store was opened with rollups disabled).
		"rollups": st.Rollups,
		// Recovery: how long the last Open took and its snapshot/WAL
		// breakdown, so restart regressions are visible, not inferred.
		"last_recovery_ms": rec.TotalMS,
		"recovery":         rec,
		// Governance: per-tenant admission counters, live gauges, and the
		// queue-wait histograms.
		"governance": s.an.Gov().Snapshot(),
	})
}

// handleSeriesStats returns the per-series statistics the cost-based VQL
// planner reads (sample/block counts, time bounds, compressed footprint,
// version), filtered by the standard selection parameters (ids, zone,
// bbox). Stats come from append-time chunk metadata, so the endpoint never
// decodes data — it is cheap enough to poll.
func (s *Server) handleSeriesStats(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ids, err := s.an.Engine().ResolveMeters(sel)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	stats := s.an.Store().SeriesStats(ids)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":        len(stats),
		"series":       stats,
		"data_version": s.dataVersion(),
	})
}

// handleAdminSnapshot triggers a durability snapshot on demand (POST).
// The snapshot runs without blocking writers; when it completes, covered
// WAL segments are retired and — if streaming is enabled — a snapshot
// event is broadcast to SSE subscribers.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("api: snapshot trigger is POST-only"))
		return
	}
	st := s.an.Store()
	start := time.Now()
	if err := st.Snapshot(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNoDurability) {
			status = http.StatusConflict // in-memory store: nothing to snapshot
		}
		writeErr(w, status, err)
		return
	}
	segs, bytes := st.WALStats()
	if s.hub != nil {
		s.hub.Publish(stream.Event{
			Kind:        stream.KindSnapshot,
			WALSegments: segs,
			WALBytes:    bytes,
			DataVersion: s.dataVersion(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":             "ok",
		"duration_ms":        time.Since(start).Milliseconds(),
		"wal_segments":       segs,
		"wal_bytes":          bytes,
		"last_snapshot_unix": st.LastSnapshotUnix(),
		"data_version":       s.dataVersion(),
	})
}

// handleExec reports the execution engine's cache and parallelism state:
// the operational view of "is the interactive path actually hitting the
// memoized embeddings".
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	es := s.an.ExecStats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"workers":        s.an.Exec().Workers(),
		"cache_entries":  s.an.Exec().Len(),
		"cache_hits":     es.Hits,
		"cache_misses":   es.Misses,
		"computes":       es.Computes,
		"dedups":         es.Dedups,
		"evictions":      es.Evictions,
		"shards":         s.an.Store().NumShards(),
		"shard_versions": s.an.Store().ShardVersions(),
		"data_version":   s.dataVersion(),
	})
}

func ratio(raw, comp int) float64 {
	if comp == 0 {
		return 0
	}
	return float64(raw) / float64(comp)
}

func (s *Server) handleCustomers(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ids, err := s.an.Engine().ResolveMeters(sel)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	cat := s.an.Store().Catalog()
	out := make([]store.Meter, 0, len(ids))
	for _, id := range ids {
		if m, ok := cat.Get(id); ok {
			out = append(out, m)
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"count": len(out), "customers": out})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	id := qInt64(r, "id", 0)
	if id == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: id parameter required"))
		return
	}
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g, err := query.ParseGranularity(qStr(r, "granularity", "daily"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	buckets, err := s.an.Engine().MeterSeries(id, sel, g, query.AggFunc(qStr(r, "agg", "mean")))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "granularity": g, "buckets": buckets})
}

// reduceView computes (or returns the memoized) typical-pattern view for
// the request's parameters. Caching, in-flight deduplication, and
// version-based invalidation all live in the analyzer's execution engine.
func (s *Server) reduceView(r *http.Request) (*core.TypicalView, error) {
	sel, err := parseSelection(r)
	if err != nil {
		return nil, err
	}
	cfg := core.TypicalConfig{
		Selection:       sel,
		Method:          reduce.Method(qStr(r, "method", "tsne")),
		Metric:          reduce.Metric(qStr(r, "metric", "pearson")),
		Granularity:     query.Granularity(qStr(r, "granularity", "daily")),
		Seed:            qInt64(r, "seed", 42),
		UseDailyProfile: qStr(r, "profile", "") == "daily",
	}
	ctx, cancel := s.handlerCtx(r)
	defer cancel()
	return s.an.TypicalPatterns(ctx, cfg)
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	v, err := s.reduceView(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handlePatterns applies a brush (bx0,by0,bx1,by1 in [0,1]) to the reduced
// view and returns the group profile — the S1 interaction.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	v, err := s.reduceView(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	brush := core.Brush{
		MinX: qFloat(r, "bx0", 0), MinY: qFloat(r, "by0", 0),
		MaxX: qFloat(r, "bx1", 1), MaxY: qFloat(r, "by1", 1),
	}
	ids, rowIdx, err := v.SelectBrush(brush)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	prof, err := v.Profile(rowIdx)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"selected": len(ids),
		"profile":  prof,
	})
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g, err := query.ParseGranularity(qStr(r, "granularity", "4hourly"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t1 := qInt64(r, "t1", 0)
	t2 := qInt64(r, "t2", 0)
	if t1 == 0 || t2 == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: t1 and t2 parameters required"))
		return
	}
	res, err := s.an.ShiftPatternsCtx(r.Context(), core.ShiftConfig{
		Selection:         sel,
		T1:                t1,
		T2:                t2,
		Granularity:       g,
		IntensityQuantile: qFloat(r, "quantile", 0),
		GridCols:          int(qInt64(r, "cols", 96)),
		GridRows:          int(qInt64(r, "rows", 96)),
		Kernel:            kde.Kernel(qStr(r, "kernel", "gaussian")),
		OD:                core.ODMode(qStr(r, "od", "matching")),
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleStream serves Server-Sent Events with the live density summaries.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("api: streaming not enabled"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("api: streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	ch, cancel := s.hub.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			name := e.Kind
			if name == "" {
				name = stream.KindIngest
			}
			payload, _ := json.Marshal(e)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, payload)
			fl.Flush()
		}
	}
}
