package api

// Regression tests for the ingest body caps: the seed read r.Body with no
// size bound, so one giant NDJSON line (no '\n') or an over-declared
// binary frame ballooned memory. Every violation must come back as 413
// with the skip counts of the work already applied, never as an OOM.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vap/internal/core"
	"vap/internal/store"
)

// newCappedServer starts a server whose ingest body cap is tiny, so the
// limit paths trigger without multi-GiB test bodies.
func newCappedServer(t *testing.T, maxBytes int64) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewServerWith(core.NewAnalyzer(st), nil, Config{MaxIngestBytes: maxBytes}).Routes())
	t.Cleanup(srv.Close)
	return srv, st
}

// TestIngestDeclaredBodyTooLarge: a Content-Length beyond the cap fails
// up front — before the body is read, admitted, or any line applied.
func TestIngestDeclaredBodyTooLarge(t *testing.T) {
	srv, st := newCappedServer(t, 1024)
	body := strings.Repeat("x", 4096)
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/x-ndjson", []byte(body))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%v), want 413", code, out)
	}
	if n := st.Stats().Meters; n != 0 {
		t.Fatalf("over-declared body mutated the store: %d meters", n)
	}
}

// TestIngestChunkedBodyOverCap: with no Content-Length (chunked transfer)
// the MaxBytesReader backstop must trip mid-stream. Lines read before the
// cap are applied and their counts reported alongside the 413, so the
// sender can split and resume instead of re-sending.
func TestIngestChunkedBodyOverCap(t *testing.T) {
	srv, st := newCappedServer(t, 4096)
	var body bytes.Buffer
	body.WriteString(`{"meter":1,"lon":12.5,"lat":55.6,"zone":"residential"}` + "\n")
	body.WriteString(`{"meter":1,"samples":[{"ts":60,"v":1},{"ts":120,"v":2}]}` + "\n")
	for body.Len() < 8192 {
		body.WriteString(`{"meter":999,"ts":9999999999,"v":1}` + "\n")
	}
	// Wrapping the reader hides its length, so net/http sends chunked and
	// the pre-read Content-Length check cannot fire.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/ingest", struct{ io.Reader }{&body})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	out := decodeBody(t, resp.Body)
	if out["meters"] != 1.0 {
		t.Errorf("413 response must report the meter applied before the cap: %v", out)
	}
	if out["samples"].(float64) < 2 {
		t.Errorf("413 response must report samples applied before the cap: %v", out)
	}
	if n := st.Stats().Meters; n != 1 {
		t.Errorf("store has %d meters, want the 1 applied pre-cap", n)
	}
}

// TestIngestOversizedNDJSONLine: one line larger than the per-line cap —
// the "no newline ever arrives" attack — is a 413 from the scanner's
// buffer bound, with earlier lines' work reported.
func TestIngestOversizedNDJSONLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >16MiB body")
	}
	srv, st := newIngestServer(t, store.Options{})
	var body bytes.Buffer
	body.WriteString(`{"meter":7,"lon":1,"lat":2,"zone":"industrial"}` + "\n")
	body.WriteString(`{"meter":7,"zone":"`)
	body.Write(bytes.Repeat([]byte{'a'}, ingestMaxLine+1)) // never a '\n'
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/x-ndjson", body.Bytes())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%v), want 413 for an oversized line", code, out)
	}
	if out["meters"] != 1.0 {
		t.Errorf("pre-line work missing from 413 report: %v", out)
	}
	if n := st.Stats().Meters; n != 1 {
		t.Errorf("store has %d meters, want 1", n)
	}
}

// TestIngestOversizedBinaryFrame: a VAPB sample frame declaring more than
// the per-frame cap is a 413 (split the batch), and frames before it are
// applied and reported.
func TestIngestOversizedBinaryFrame(t *testing.T) {
	srv, st := newIngestServer(t, store.Options{})
	var b []byte
	b = append(b, "VAPB"...)
	b = append(b, ingestFrameMeter)
	b = binary.LittleEndian.AppendUint64(b, 3)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(12.5))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(55.6))
	b = binary.LittleEndian.AppendUint16(b, 11)
	b = append(b, "residential"...)
	b = append(b, ingestFrameSamples)
	b = binary.LittleEndian.AppendUint64(b, 3)
	b = binary.LittleEndian.AppendUint32(b, 2)
	for i, v := range []float64{1, 2} {
		b = binary.LittleEndian.AppendUint64(b, uint64(60*(i+1)))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	// A frame header declaring ingestMaxBatch+1 samples with no payload.
	b = append(b, ingestFrameSamples)
	b = binary.LittleEndian.AppendUint64(b, 3)
	b = binary.LittleEndian.AppendUint32(b, ingestMaxBatch+1)
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/octet-stream", b)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%v), want 413 for an oversized frame", code, out)
	}
	if out["meters"] != 1.0 || out["samples"] != 2.0 {
		t.Errorf("pre-frame work missing from 413 report: %v", out)
	}
	if n, _ := st.SeriesLen(3); n != 2 {
		t.Errorf("meter 3 has %d samples, want the 2 applied pre-frame", n)
	}
}

func decodeBody(t *testing.T, r io.Reader) map[string]interface{} {
	t.Helper()
	var out map[string]interface{}
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}
