package api

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"vap/internal/geo"
	"vap/internal/govern"
	"vap/internal/store"
)

// POST /api/ingest is the batched ingest front door: external writers
// stream meter registrations and sample batches in one request body and
// the server rides Store.AppendBatch + WAL group commit, so the wire path
// gets the same ~10x batch amortization the embedded API has. Two body
// encodings share the handler, sniffed from the first four bytes:
//
//   - NDJSON (anything not starting with "VAPB"): one JSON object per
//     line. {"meter":1,"lon":..,"lat":..,"zone":".."} registers a meter;
//     {"meter":1,"ts":..,"v":..} appends one sample;
//     {"meter":1,"samples":[{"ts":..,"v":..},...]} appends a batch.
//   - Binary ("VAPB" magic, little-endian): frames of
//     0x01 meterID(int64) lon(f64) lat(f64) zoneLen(u16) zone — register
//     0x02 meterID(int64) n(u32) then n x (ts int64, value f64) — append
//
// Out-of-order samples and appends to unregistered meters are counted and
// skipped (the response reports both), not failed: replayed NDJSON files
// and at-least-once senders routinely overlap what the store already
// holds. Malformed input is a 400 with the offending line/frame; store
// failures (closed store, WAL errors) are a 500 and abort the request.
// `?sync=1` forces a group commit before replying, so a 200 means every
// accepted sample is fsynced.

// ingestBinaryMagic marks the compact binary framing.
var ingestBinaryMagic = [4]byte{'V', 'A', 'P', 'B'}

const (
	ingestFrameMeter   = 0x01
	ingestFrameSamples = 0x02
	// ingestMaxBatch bounds one binary frame's sample count (16 MiB of
	// payload) so a corrupt length prefix cannot provoke a huge allocation.
	ingestMaxBatch = 1 << 20
	// ingestMaxLine bounds one NDJSON line.
	ingestMaxLine = 16 << 20
)

// ingestLine is the NDJSON union row: registration when lon/lat are
// present, sample(s) otherwise.
type ingestLine struct {
	Meter   *int64         `json:"meter"`
	TS      *int64         `json:"ts"`
	V       *float64       `json:"v"`
	Samples []store.Sample `json:"samples"`
	Lon     *float64       `json:"lon"`
	Lat     *float64       `json:"lat"`
	Zone    string         `json:"zone"`
}

// ingestReport tallies one request's work.
type ingestReport struct {
	Meters       int64 `json:"meters"`
	Samples      int64 `json:"samples"`
	OutOfOrder   int64 `json:"skipped_out_of_order"`
	UnknownMeter int64 `json:"skipped_unknown_meter"`
}

// errIngestBad wraps client-side input errors (400, not 500).
type errIngestBad struct{ err error }

func (e errIngestBad) Error() string { return e.err.Error() }
func (e errIngestBad) Unwrap() error { return e.err }

// errIngestTooLarge wraps size-cap violations (413): a frame or line the
// caller must split, not retry verbatim.
type errIngestTooLarge struct{ err error }

func (e errIngestTooLarge) Error() string { return e.err.Error() }
func (e errIngestTooLarge) Unwrap() error { return e.err }

// capReader records whether the body cap fired. MaxBytesReader returns
// the final in-budget bytes *alongside* its error, so the scanner can
// hand a truncated line to the JSON parser and fail with a parse error
// before anyone observes the cap — the recorder lets the handler classify
// that as 413 (split the upload), not 400 (malformed input).
type capReader struct {
	r   io.Reader
	hit bool
}

func (c *capReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		c.hit = true
	}
	return n, err
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("api: ingest is POST-only"))
		return
	}
	// A declared over-limit body fails before reading (or admitting) it.
	if r.ContentLength > s.cfg.MaxIngestBytes {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("api: ingest body of %d bytes exceeds the %d-byte limit", r.ContentLength, s.cfg.MaxIngestBytes))
		return
	}
	// Ingest admission: writes rank between interactive reads and
	// analytics scans; the declared body size (bounded by the cap) reserves
	// against the memory budget while the batch applies.
	estMem := r.ContentLength
	if estMem <= 0 {
		estMem = 64 << 10 // chunked encoding: a nominal reservation
	}
	ctx := govern.WithTenant(r.Context(), r.Header.Get(TenantHeader))
	grant, gerr := s.an.Gov().Admit(ctx, govern.Request{
		Tenant: govern.TenantFrom(ctx),
		Class:  govern.ClassIngest,
		EstMem: estMem,
	})
	if gerr != nil {
		if !writeGovErr(w, gerr) {
			writeErr(w, http.StatusServiceUnavailable, gerr)
		}
		return
	}
	defer grant.Release()

	start := time.Now()
	st := s.an.Store()
	// MaxBytesReader is the backstop the Content-Length check above cannot
	// provide for chunked bodies: reading past the cap fails the request
	// with a typed *http.MaxBytesError and closes the connection.
	capped := &capReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes)}
	br := bufio.NewReaderSize(capped, 1<<16)
	var rep ingestReport
	magic, _ := br.Peek(4)
	var err error
	if len(magic) == 4 && [4]byte(magic) == ingestBinaryMagic {
		err = s.ingestBinary(br, st, &rep)
	} else {
		err = s.ingestNDJSON(br, st, &rep)
	}
	if err != nil {
		var tooBig errIngestTooLarge
		var mbe *http.MaxBytesError
		var bad errIngestBad
		status := http.StatusInternalServerError
		switch {
		case capped.hit, errors.As(err, &tooBig), errors.As(err, &mbe), errors.Is(err, bufio.ErrTooLong):
			status = http.StatusRequestEntityTooLarge
		case errors.As(err, &bad):
			status = http.StatusBadRequest
		}
		// Failed requests still report the work already applied — samples
		// before the offending line/frame are in the store (and possibly
		// the WAL); the caller needs the counts to resume, not re-send.
		writeJSON(w, status, map[string]interface{}{
			"error":                 err.Error(),
			"meters":                rep.Meters,
			"samples":               rep.Samples,
			"skipped_out_of_order":  rep.OutOfOrder,
			"skipped_unknown_meter": rep.UnknownMeter,
		})
		return
	}
	if r.URL.Query().Get("sync") == "1" {
		if err := st.Sync(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	elapsed := time.Since(start)
	perSec := float64(0)
	if elapsed > 0 {
		perSec = float64(rep.Samples) / elapsed.Seconds()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":                "ok",
		"meters":                rep.Meters,
		"samples":               rep.Samples,
		"skipped_out_of_order":  rep.OutOfOrder,
		"skipped_unknown_meter": rep.UnknownMeter,
		"duration_ms":           elapsed.Milliseconds(),
		"samples_per_sec":       perSec,
		"synced":                r.URL.Query().Get("sync") == "1",
		"data_version":          s.dataVersion(),
	})
}

// ingestSamples applies one meter's batch, folding the two skippable
// rejections into the report. AppendBatch stops at the first out-of-order
// sample; the remainder of that batch is skipped (an at-least-once sender
// re-sending history hits exactly this) rather than failing the request.
func ingestSamples(st *store.Store, id int64, smps []store.Sample, rep *ingestReport) error {
	if len(smps) == 0 {
		return nil
	}
	n, err := st.AppendBatch(id, smps)
	rep.Samples += int64(n)
	switch {
	case err == nil:
	case errors.Is(err, store.ErrOutOfOrder):
		rep.OutOfOrder += int64(len(smps) - n)
	case errors.Is(err, store.ErrUnknownMeter):
		rep.UnknownMeter += int64(len(smps))
	default:
		return err
	}
	return nil
}

// ingestNDJSON consumes the newline-delimited JSON form.
func (s *Server) ingestNDJSON(br *bufio.Reader, st *store.Store, rep *ingestReport) error {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), ingestMaxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l ingestLine
		if err := json.Unmarshal(line, &l); err != nil {
			return errIngestBad{fmt.Errorf("api: ingest line %d: %w", lineNo, err)}
		}
		if l.Meter == nil {
			return errIngestBad{fmt.Errorf("api: ingest line %d: missing \"meter\"", lineNo)}
		}
		switch {
		case l.Lon != nil || l.Lat != nil:
			if l.Lon == nil || l.Lat == nil {
				return errIngestBad{fmt.Errorf("api: ingest line %d: registration needs both lon and lat", lineNo)}
			}
			m := store.Meter{ID: *l.Meter, Location: geo.Point{Lon: *l.Lon, Lat: *l.Lat}, Zone: store.ZoneType(l.Zone)}
			if err := st.PutMeter(m); err != nil {
				if errors.Is(err, store.ErrClosed) {
					return err
				}
				return errIngestBad{fmt.Errorf("api: ingest line %d: %w", lineNo, err)}
			}
			rep.Meters++
		case len(l.Samples) > 0:
			if err := ingestSamples(st, *l.Meter, l.Samples, rep); err != nil {
				return err
			}
		case l.TS != nil:
			if l.V == nil {
				return errIngestBad{fmt.Errorf("api: ingest line %d: sample needs \"v\"", lineNo)}
			}
			if err := ingestSamples(st, *l.Meter, []store.Sample{{TS: *l.TS, Value: *l.V}}, rep); err != nil {
				return err
			}
		default:
			return errIngestBad{fmt.Errorf("api: ingest line %d: neither registration (lon/lat), samples, nor ts", lineNo)}
		}
	}
	if err := sc.Err(); err != nil {
		return errIngestBad{fmt.Errorf("api: ingest line %d: %w", lineNo+1, err)}
	}
	return nil
}

// ingestBinary consumes the compact binary framing.
func (s *Server) ingestBinary(br *bufio.Reader, st *store.Store, rep *ingestReport) error {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return errIngestBad{fmt.Errorf("api: ingest: short magic: %w", err)}
	}
	var scratch []store.Sample
	frame := 0
	for {
		frame++
		typ, err := br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return errIngestBad{fmt.Errorf("api: ingest frame %d: %w", frame, err)}
		}
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return errIngestBad{fmt.Errorf("api: ingest frame %d: truncated meter id: %w", frame, err)}
		}
		id := int64(binary.LittleEndian.Uint64(hdr[:]))
		switch typ {
		case ingestFrameMeter:
			var body [18]byte // lon, lat, zoneLen
			if _, err := io.ReadFull(br, body[:]); err != nil {
				return errIngestBad{fmt.Errorf("api: ingest frame %d: truncated meter body: %w", frame, err)}
			}
			lon := math.Float64frombits(binary.LittleEndian.Uint64(body[0:]))
			lat := math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
			zlen := binary.LittleEndian.Uint16(body[16:])
			zone := make([]byte, zlen)
			if _, err := io.ReadFull(br, zone); err != nil {
				return errIngestBad{fmt.Errorf("api: ingest frame %d: truncated zone: %w", frame, err)}
			}
			m := store.Meter{ID: id, Location: geo.Point{Lon: lon, Lat: lat}, Zone: store.ZoneType(zone)}
			if err := st.PutMeter(m); err != nil {
				if errors.Is(err, store.ErrClosed) {
					return err
				}
				return errIngestBad{fmt.Errorf("api: ingest frame %d: %w", frame, err)}
			}
			rep.Meters++
		case ingestFrameSamples:
			var cnt [4]byte
			if _, err := io.ReadFull(br, cnt[:]); err != nil {
				return errIngestBad{fmt.Errorf("api: ingest frame %d: truncated sample count: %w", frame, err)}
			}
			n := binary.LittleEndian.Uint32(cnt[:])
			if n > ingestMaxBatch {
				return errIngestTooLarge{fmt.Errorf("api: ingest frame %d: batch of %d exceeds the %d-sample frame limit", frame, n, ingestMaxBatch)}
			}
			if cap(scratch) < int(n) {
				scratch = make([]store.Sample, n)
			}
			smps := scratch[:n]
			var pair [16]byte
			for i := range smps {
				if _, err := io.ReadFull(br, pair[:]); err != nil {
					return errIngestBad{fmt.Errorf("api: ingest frame %d: truncated sample %d: %w", frame, i, err)}
				}
				smps[i] = store.Sample{
					TS:    int64(binary.LittleEndian.Uint64(pair[0:])),
					Value: math.Float64frombits(binary.LittleEndian.Uint64(pair[8:])),
				}
			}
			if err := ingestSamples(st, id, smps, rep); err != nil {
				return err
			}
		default:
			return errIngestBad{fmt.Errorf("api: ingest frame %d: unknown frame type 0x%02x", frame, typ)}
		}
	}
}
